// renamectl — the registry driver CLI.
//
// One binary to explore and exercise everything the registry knows, without
// writing a bench: list the facet catalogs, dump the typed option schemas
// (the same Registry::describe() data docs/SPEC_GRAMMAR.md's tables are
// rendered from), and run one-off Workload scenarios that emit the standard
// machine-readable BenchReport (schema renamelib.bench_report.v1), so a CLI
// experiment lands in the same bench_compare.py pipeline as the benches.
//
//   renamectl list [--facet=counter|renaming|readable]
//   renamectl describe [NAME] [--facet=...]
//   renamectl events                      # the instrumentation-site catalog
//   renamectl run --facet=counter --spec=striped:stripes=16 --threads=8 \
//                 --ops=1000 --backend=hardware --json=-
//   renamectl run --smoke --json=FILE     # deterministic all-entries matrix
//   renamectl run --spec=... --events     # + per-site event counts/rates
//
// `run` executes the facet's standard workload (counters: next(); renamings:
// hold-all acquires; readables: a 2:1 increment/read mix) under the chosen
// backend and emits one report run with the *canonical* spec string.
// `run --smoke` without --spec sweeps every registered entry of every facet
// at defaults on the simulated backend — fully deterministic (seeded
// adversary, step-count latencies), which is what makes the stored
// bench/baselines/smoke.json comparable across machines and commits.
//
// Exit codes: 0 success, 1 validation failure inside a run, 2 usage or spec
// errors (unknown names/keys surface the registry's did-you-mean messages).
#include <charconv>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/report.h"
#include "api/spec.h"
#include "api/workload.h"
#include "obs/event_bus.h"
#include "obs/sites.h"
#include "stats/latency_recorder.h"

namespace {

using namespace renamelib;

int usage(std::ostream& out, int code) {
  out << "usage:\n"
         "  renamectl list [--facet=counter|renaming|readable]\n"
         "  renamectl describe [NAME] [--facet=...]\n"
         "  renamectl events\n"
         "  renamectl run [--facet=F --spec=S] [--threads=N] [--ops=N]\n"
         "                [--backend=simulated|hardware|proc]\n"
         "                [--sched=random|roundrobin|obstruction]\n"
         "                [--seed=N] [--crashes=N] [--name=LABEL]\n"
         "                [--json=FILE|-] [--smoke] [--events]\n"
         "\n"
         "  list      entry catalog per facet (name, family, guarantees)\n"
         "  describe  typed option schemas (key, type, default, doc)\n"
         "  events    the instrumentation-site catalog (obs/sites.h): the\n"
         "            names --events tables and report 'events' keys use\n"
         "  run       one Workload scenario -> BenchReport JSON; --smoke\n"
         "            without --spec runs the deterministic all-entries\n"
         "            simulated matrix (the stored baseline's generator);\n"
         "            --events records per-site event counts on the obs\n"
         "            event bus and attaches them to the report runs;\n"
         "            --backend=proc forks --threads OS processes over a\n"
         "            shared-memory arena (telemetry gossip-merged, and\n"
         "            --crashes=N SIGKILLs N workers mid-run for real)\n";
  return code;
}

/// Parsed --key=value / --flag command line (after the subcommand).
class Args {
 public:
  Args(int argc, char** argv, int from) {
    for (int i = from; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_.emplace_back(arg.substr(2), "");
      } else {
        kv_.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    }
  }

  std::optional<std::string> get(const std::string& key) {
    for (auto& [k, v] : kv_) {
      if (k == key) {
        seen_.push_back(k);
        return v;
      }
    }
    return std::nullopt;
  }

  std::uint64_t get_u64(const std::string& key, std::uint64_t def) {
    const auto v = get(key);
    if (!v.has_value()) return def;
    // Full-match from_chars: "-1", "10xyz", and "" are usage errors (exit
    // 2), not modular wraps or silent prefixes.
    std::uint64_t out = 0;
    const auto [ptr, ec] =
        std::from_chars(v->data(), v->data() + v->size(), out);
    if (ec != std::errc{} || ptr != v->data() + v->size()) {
      throw std::invalid_argument("--" + key + " needs an unsigned integer, "
                                  "got '" + *v + "'");
    }
    return out;
  }

  bool flag(const std::string& key) { return get(key).has_value(); }

  const std::vector<std::string>& positional() const { return positional_; }

  /// Throws on flags nobody consumed — typos must not silently no-op.
  void reject_unknown() const {
    for (const auto& [k, v] : kv_) {
      bool used = false;
      for (const auto& s : seen_) used |= (s == k);
      if (!used) throw std::invalid_argument("unknown flag '--" + k + "'");
    }
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
  std::vector<std::string> seen_;
  std::vector<std::string> positional_;
};

std::vector<api::Facet> facets_from(Args& args) {
  const auto facet = args.get("facet");
  if (facet.has_value()) return {api::facet_from_name(*facet)};
  return {api::Facet::kCounter, api::Facet::kRenaming, api::Facet::kReadable};
}

// ---------------------------------------------------------------- list ---

std::string guarantees(const api::EntryDescription& e) {
  if (e.facet != api::Facet::kRenaming) return e.consistency;
  std::string out = e.adaptive ? "adaptive" : "non-adaptive";
  if (e.reusable) out += ", reusable";
  return out;
}

int cmd_list(Args& args) {
  const auto facets = facets_from(args);
  args.reject_unknown();
  for (const api::Facet facet : facets) {
    std::cout << "facet " << api::facet_name(facet) << ":\n";
    for (const auto& e : api::Registry::global().describe(facet)) {
      std::string line = "  " + e.name;
      line.append(line.size() < 20 ? 20 - line.size() : 1, ' ');
      line += std::string(api::family_name(e.family)) + " | " + guarantees(e);
      std::cout << line << "\n      " << e.summary << "\n";
    }
  }
  return 0;
}

// ------------------------------------------------------------ describe ---

void describe_entry(const api::EntryDescription& e) {
  std::cout << api::facet_name(e.facet) << " '" << e.name << "' ("
            << api::family_name(e.family) << ", " << guarantees(e) << ")\n"
            << "  " << e.summary << "\n";
  if (e.options.empty()) {
    std::cout << "  options: none\n";
    return;
  }
  std::cout << "  options:\n";
  for (const auto& o : e.options) {
    std::cout << "    " << o.key << " = " << o.def << "  [" << o.type_text()
              << "]\n        " << o.doc << "\n";
  }
}

int cmd_describe(Args& args) {
  const auto facets = facets_from(args);
  const auto& names = args.positional();
  args.reject_unknown();
  if (names.empty()) {
    for (const api::Facet facet : facets) {
      for (const auto& e : api::Registry::global().describe(facet)) {
        describe_entry(e);
      }
    }
    return 0;
  }
  for (const auto& name : names) {
    bool found = false;
    std::string first_error;
    for (const api::Facet facet : facets) {
      try {
        describe_entry(api::Registry::global().describe(facet, name));
        found = true;
      } catch (const std::invalid_argument& e) {
        if (first_error.empty()) first_error = e.what();
      }
    }
    if (!found) throw std::invalid_argument(first_error);
  }
  return 0;
}

// -------------------------------------------------------------- events ---

int cmd_events(Args& args) {
  args.reject_unknown();
  std::cout << "instrumentation sites (report 'events' keys; see "
               "src/obs/sites.h):\n";
  for (std::size_t i = 1; i < obs::kSiteCount; ++i) {
    const auto site = static_cast<obs::Site>(i);
    std::string line = "  " + std::string(obs::site_name(site));
    line.append(line.size() < 22 ? 22 - line.size() : 1, ' ');
    std::cout << line << obs::site_doc(site) << "\n";
  }
  return 0;
}

// ----------------------------------------------------------------- run ---

/// One report run from a Workload result, exactly like the benches emit:
/// hardware runs carry wall-clock latency ("ns"), simulated runs the
/// paper-model per-op step distribution ("steps").
api::ReportRun to_report_run(std::string name, std::string spec,
                             const api::Scenario& s, const api::Run& run) {
  api::ReportRun r;
  r.name = std::move(name);
  r.spec = std::move(spec);
  r.backend = s.backend == api::Backend::kHardware    ? "hardware"
              : s.backend == api::Backend::kProc      ? "proc"
                                                      : "simulated";
  r.threads = s.nproc;
  r.ops = run.metrics.ops;
  r.ops_per_sec = run.metrics.ops_per_sec();
  if (s.backend != api::Backend::kSimulated) {
    // Hardware and proc are wall-clock backends; the proc latency section
    // is the gossip-merged per-process recording, not a coordinator sum.
    r.unit = "ns";
    r.latency = run.latency;
  } else {
    r.unit = "steps";
    r.latency = stats::LatencySnapshot::of(run.op_steps());
  }
  r.events = api::report_events(run.events);
  return r;
}

/// The --events human table: per-site counts and per-op rates of one run.
void print_events_table(std::ostream& out, const api::Run& run) {
  const auto sites = run.events.nonzero();
  if (sites.empty()) {
    out << "  events: none recorded\n";
    return;
  }
  const double ops = run.metrics.ops > 0
                         ? static_cast<double>(run.metrics.ops)
                         : 1.0;
  for (const auto& [site, count] : sites) {
    std::string line = "  " + std::string(obs::site_name(site));
    line.append(line.size() < 22 ? 22 - line.size() : 1, ' ');
    out << line << count << " (" << static_cast<double>(count) / ops
        << "/op)\n";
  }
}

/// Pre-flight for one-shot renamings: a hold-all run must fit the entry's
/// declared request budget, or the scenario would hang/overflow by design.
void check_renaming_budget(const api::Spec& spec, const api::Scenario& s) {
  const api::RenamingInfo* info =
      api::Registry::global().find_renaming(spec.name());
  const std::uint64_t attempted =
      static_cast<std::uint64_t>(s.nproc) * static_cast<std::uint64_t>(s.ops_per_proc);
  const std::uint64_t budget =
      static_cast<std::uint64_t>(info->max_requests(spec));
  if (attempted > budget) {
    throw std::invalid_argument(
        "scenario attempts " + std::to_string(attempted) + " acquires but '" +
        spec.print() + "' supports at most " + std::to_string(budget) +
        (info->reusable ? " concurrent holders" : " total requests") +
        " — lower --threads/--ops or raise the capacity option");
  }
}

api::Run run_one(api::Facet facet, const std::string& canonical,
                 const api::Scenario& s) {
  if (facet == api::Facet::kRenaming) {
    check_renaming_budget(api::Spec::parse(canonical), s);
  }
  return api::Workload::run_facet_spec(facet, canonical, s);
}

/// Default per-process op count per facet (matches the conformance suite's
/// proportions; readables need a multiple of 3 for a full inc/inc/read mix).
int default_ops(api::Facet facet) {
  switch (facet) {
    case api::Facet::kCounter: return 4;
    case api::Facet::kRenaming: return 2;
    case api::Facet::kReadable: return 6;
  }
  return 4;
}

int cmd_run(Args& args) {
  api::Scenario s;
  const std::uint64_t threads = args.get_u64("threads", 4);
  if (threads < 1 || threads > 4096) {
    throw std::invalid_argument("--threads must be in [1, 4096]");
  }
  s.nproc = static_cast<int>(threads);
  const auto backend = args.get("backend").value_or("simulated");
  if (backend == "hardware" || backend == "hw") {
    s.backend = api::Backend::kHardware;
  } else if (backend == "simulated" || backend == "sim") {
    s.backend = api::Backend::kSimulated;
  } else if (backend == "proc") {
    s.backend = api::Backend::kProc;
  } else {
    throw std::invalid_argument(
        "--backend must be simulated, hardware, or proc");
  }
  const auto sched = args.get("sched").value_or("random");
  if (sched == "roundrobin") {
    s.sched = api::Sched::kRoundRobin;
  } else if (sched == "obstruction") {
    s.sched = api::Sched::kObstruction;
  } else if (sched != "random") {
    throw std::invalid_argument(
        "--sched must be random, roundrobin, or obstruction");
  }
  s.seed = args.get_u64("seed", 1);
  s.crashes.max_crashes =
      static_cast<std::size_t>(args.get_u64("crashes", 0));
  if (s.crashes.enabled() && s.backend == api::Backend::kHardware) {
    throw std::invalid_argument(
        "--crashes requires --backend=simulated or proc (a hardware thread "
        "cannot be killed mid-protocol; a forked process can)");
  }
  const bool smoke = args.flag("smoke");
  const auto spec_arg = args.get("spec");
  const auto facet_arg = args.get("facet");
  const std::string label =
      args.get("name").value_or(smoke && !spec_arg ? "smoke" : "run");
  const auto json = args.get("json");
  if (json.has_value() && json->empty()) {
    // Argument-shape error: fail before any workload runs, not after.
    throw std::invalid_argument("--json needs a file path or '-'");
  }
  const bool ops_given = args.flag("ops");
  const std::uint64_t default_opcount = spec_arg && !smoke ? 64 : 0;
  std::uint64_t ops = args.get_u64("ops", default_opcount);
  if (ops_given && (ops < 1 || ops > (1u << 30))) {
    throw std::invalid_argument("--ops must be in [1, 2^30] per process");
  }
  const bool events = args.flag("events");
  args.reject_unknown();
  // Opt-in event recording: off, the obs hooks cost one relaxed load +
  // branch and reports keep their exact pre-events byte form (which is what
  // keeps the stored smoke baseline comparable).
  if (events) obs::EventBus::set_enabled(true);

  api::BenchReport report;
  report.bench = "renamectl";
  auto& reg = api::Registry::global();

  if (spec_arg.has_value()) {
    // One explicit scenario. canonical() validates against the schema, so a
    // typo fails here with the registry's did-you-mean before anything runs.
    const api::Facet facet = api::facet_from_name(facet_arg.value_or("counter"));
    const std::string canonical = reg.canonical(facet, *spec_arg);
    s.ops_per_proc = static_cast<int>(ops != 0 ? ops : default_ops(facet));
    const api::Run run = run_one(facet, canonical, s);
    report.runs.push_back(to_report_run(label, canonical, s, run));
    std::ostream& human = json == "-" ? std::cerr : std::cout;
    human << api::facet_name(facet) << " " << canonical << ": "
          << run.metrics.ops << " ops, mean " << run.metrics.mean_op_steps()
          << " steps/op";
    if (s.backend != api::Backend::kSimulated) {
      human << ", " << run.metrics.ops_per_sec() << " ops/sec, p99 "
            << run.latency.percentile(0.99) << " ns";
    }
    if (s.backend == api::Backend::kProc) {
      human << ", " << run.finished_procs << " procs finished";
      if (run.crashed_procs > 0) {
        human << " (" << run.crashed_procs << " killed)";
      }
      human << ", gossip converged in " << run.gossip_rounds << " rounds";
    }
    human << "\n";
    // On the proc backend both the metrics above and this table are the
    // gossip-merged aggregate — no coordinator ever summed the workers.
    if (events) print_events_table(human, run);
  } else {
    if (!smoke) {
      throw std::invalid_argument(
          "run needs --spec=... (one scenario) or --smoke (all-entries "
          "matrix)");
    }
    if (facet_arg.has_value() || s.backend != api::Backend::kSimulated) {
      throw std::invalid_argument(
          "the --smoke matrix is the deterministic simulated all-facets "
          "sweep; combine --smoke with --spec to shrink one scenario "
          "instead");
    }
    // The deterministic baseline matrix: every entry of every facet at its
    // default spec, simulated backend, fixed scenario — step counts depend
    // only on (seed, entry), so two runs of the same code produce identical
    // reports and bench/baselines/smoke.json stays comparable anywhere.
    obs::EventSnapshot matrix_events;
    api::Run matrix_totals;
    for (const api::Facet facet :
         {api::Facet::kCounter, api::Facet::kRenaming, api::Facet::kReadable}) {
      for (const auto& name : reg.list(facet)) {
        api::Scenario entry_s = s;
        entry_s.ops_per_proc =
            static_cast<int>(ops != 0 ? ops : default_ops(facet));
        const api::Run run = run_one(facet, name, entry_s);
        matrix_events.merge(run.events);
        matrix_totals.metrics.ops += run.metrics.ops;
        // The run name carries the facet: entries registered under several
        // facets (striped, the countnets) share spec/backend/threads/unit,
        // and bench_compare disambiguates such colliding configurations by
        // name — without this, removing one facet's entry would silently
        // re-pair the other against the wrong baseline row.
        report.runs.push_back(to_report_run(
            label + "/" + api::facet_name(facet), name, entry_s, run));
      }
    }
    // Coverage oracle: the matrix must touch 100% of the catalog. An entry
    // that registers but never runs here would drift out of the baseline
    // (and out of CI's regression net) silently — fail loudly instead.
    const std::size_t catalog = reg.describe().size();
    if (report.runs.size() != catalog) {
      throw std::runtime_error(
          "smoke matrix covered " + std::to_string(report.runs.size()) +
          " runs but the registry describes " + std::to_string(catalog) +
          " entries — a facet table is missing from the sweep");
    }
    std::ostream& human = json == "-" ? std::cerr : std::cout;
    human << "smoke matrix: " << report.runs.size() << " runs ("
          << s.nproc << " procs, simulated; covers " << catalog << "/"
          << catalog << " registry entries)\n";
    if (events) {
      matrix_totals.events = matrix_events;
      print_events_table(human, matrix_totals);
    }
  }

  if (json.has_value()) {
    if (*json == "-") {
      std::cout << report.to_json();
    } else {
      report.write_file(*json);
      std::ostream& human = std::cout;
      human << "wrote bench report: " << *json << " (" << report.runs.size()
            << " runs)\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(std::cerr, 2);
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    return usage(std::cout, 0);
  }
  Args args(argc, argv, 2);
  try {
    if (cmd == "list") return cmd_list(args);
    if (cmd == "describe") return cmd_describe(args);
    if (cmd == "events") return cmd_events(args);
    if (cmd == "run") return cmd_run(args);
    std::cerr << "unknown command '" << cmd << "'\n";
    return usage(std::cerr, 2);
  } catch (const std::invalid_argument& e) {
    std::cerr << "renamectl: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "renamectl: " << e.what() << "\n";
    return 1;
  }
}
