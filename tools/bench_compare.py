#!/usr/bin/env python3
"""Diff two renamelib bench reports with regression thresholds.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [options]
  bench_compare.py --validate FILE [FILE...]
  bench_compare.py --self-check

Modes:
  * compare (default): match runs by (bench, name, spec, backend, threads,
    unit) and flag regressions — throughput dropping more than
    --max-throughput-regress, or tail latency (p99) growing more than
    --max-p99-regress. Exits non-zero iff a regression was found.
  * --validate: schema-check report files (the structural checks below)
    without comparing. Exits non-zero on the first invalid file.
  * --self-check: run the built-in synthetic-report tests of the full
    parse/match/threshold path. Used as a ctest entry (label smoke).

Schema checks (renamelib.bench_report.v1):
  * top-level: schema/bench/git_describe strings, runs list,
  * per run: name/spec/backend/unit strings, threads/ops integers,
    ops_per_sec number, latency object,
  * per latency: count/min/max/p50/p90/p99/p999 integers, sum/sum_sq/mean
    numbers, buckets a list of [lower, upper, count] with counts summing to
    `count` and percentiles falling inside [min, max].
"""

import argparse
import json
import sys

SCHEMA = "renamelib.bench_report.v1"


class ReportError(Exception):
    """A report failed schema validation."""


def _require(cond, where, what):
    if not cond:
        raise ReportError(f"{where}: {what}")


def _is_uint(v):
    # bool is an int subclass in Python; the C++ parser rejects true/false
    # where integers are required, and the validators must agree.
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def _is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_report(doc, where="report"):
    """Structural validation of one parsed report; returns the doc."""
    _require(isinstance(doc, dict), where, "top level must be an object")
    _require(doc.get("schema") == SCHEMA, where,
             f"schema must be '{SCHEMA}', got {doc.get('schema')!r}")
    for key in ("bench", "git_describe"):
        _require(isinstance(doc.get(key), str), where, f"'{key}' must be a string")
    _require(isinstance(doc.get("runs"), list), where, "'runs' must be a list")
    for i, run in enumerate(doc["runs"]):
        rwhere = f"{where}.runs[{i}]"
        _require(isinstance(run, dict), rwhere, "must be an object")
        for key in ("name", "spec", "backend", "unit"):
            _require(isinstance(run.get(key), str), rwhere,
                     f"'{key}' must be a string")
        for key in ("threads", "ops"):
            _require(_is_uint(run.get(key)), rwhere,
                     f"'{key}' must be a non-negative integer")
        _require(_is_number(run.get("ops_per_sec")), rwhere,
                 "'ops_per_sec' must be a number")
        lat = run.get("latency")
        _require(isinstance(lat, dict), rwhere, "'latency' must be an object")
        for key in ("count", "min", "max", "p50", "p90", "p99", "p999"):
            _require(_is_uint(lat.get(key)), rwhere,
                     f"latency '{key}' must be a non-negative integer")
        for key in ("sum", "sum_sq", "mean"):
            _require(_is_number(lat.get(key)), rwhere,
                     f"latency '{key}' must be a number")
        _require(isinstance(lat.get("buckets"), list), rwhere,
                 "latency 'buckets' must be a list")
        total = 0
        prev_lower = -1
        for j, bucket in enumerate(lat["buckets"]):
            _require(isinstance(bucket, list) and len(bucket) == 3 and
                     all(_is_uint(v) for v in bucket),
                     rwhere, f"bucket[{j}] must be [lower, upper, count] ints")
            _require(bucket[0] > prev_lower, rwhere,
                     f"bucket[{j}] lower edges must be ascending")
            prev_lower = bucket[0]
            total += bucket[2]
        _require(total == lat["count"], rwhere,
                 f"bucket counts sum to {total}, latency count is {lat['count']}")
        if lat["count"] > 0:
            for key in ("p50", "p90", "p99", "p999"):
                _require(lat["min"] <= lat[key] <= lat["max"], rwhere,
                         f"latency '{key}'={lat[key]} outside "
                         f"[min={lat['min']}, max={lat['max']}]")
    return doc


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise ReportError(f"{path}: {e}") from e
    return validate_report(doc, where=path)


def run_key(doc, run, occurrence):
    return (doc["bench"], run["name"], run["spec"], run["backend"],
            run["threads"], run["unit"], occurrence)


def index_runs(doc):
    """Keyed runs; duplicate keys get an occurrence index so repeated
    configurations (e.g. the same spec measured in two tables) still pair up
    positionally."""
    seen = {}
    out = {}
    for run in doc["runs"]:
        base = run_key(doc, run, 0)[:-1]
        occurrence = seen.get(base, 0)
        seen[base] = occurrence + 1
        out[base + (occurrence,)] = run
    return out


def fmt_key(key):
    bench, name, spec, backend, threads, unit, occ = key
    spec_part = f" [{spec}]" if spec else ""
    occ_part = f" #{occ}" if occ else ""
    return f"{bench}/{name}{spec_part} ({backend}, k={threads}, {unit}){occ_part}"


def compare(baseline, current, max_tp_regress, max_p99_regress, out=sys.stdout):
    """Returns (regressions, compared, unmatched) and prints a row per pair."""
    base_runs = index_runs(baseline)
    cur_runs = index_runs(current)
    regressions = []
    compared = 0
    for key in sorted(base_runs):
        if key not in cur_runs:
            print(f"  MISSING  {fmt_key(key)} (in baseline only)", file=out)
            continue
        b, c = base_runs[key], cur_runs[key]
        compared += 1
        verdicts = []
        # Throughput: lower is worse. Only meaningful when both legs timed.
        if b["ops_per_sec"] > 0 and c["ops_per_sec"] > 0:
            delta = c["ops_per_sec"] / b["ops_per_sec"] - 1
            verdicts.append(f"ops/sec {delta:+.1%}")
            if delta < -max_tp_regress:
                regressions.append(
                    f"{fmt_key(key)}: throughput {b['ops_per_sec']:.0f} -> "
                    f"{c['ops_per_sec']:.0f} ({delta:+.1%}, limit "
                    f"-{max_tp_regress:.0%})")
        # Tail latency: higher is worse.
        if b["latency"]["count"] > 0 and c["latency"]["count"] > 0 \
                and b["latency"]["p99"] > 0:
            delta = c["latency"]["p99"] / b["latency"]["p99"] - 1
            verdicts.append(f"p99 {delta:+.1%}")
            if delta > max_p99_regress:
                regressions.append(
                    f"{fmt_key(key)}: p99 {b['latency']['p99']} -> "
                    f"{c['latency']['p99']} {b['unit']} ({delta:+.1%}, limit "
                    f"+{max_p99_regress:.0%})")
        print(f"  ok  {fmt_key(key)}: {', '.join(verdicts) or 'no timed axis'}",
              file=out)
    unmatched = [k for k in cur_runs if k not in base_runs]
    for key in sorted(unmatched):
        print(f"  NEW  {fmt_key(key)} (in current only)", file=out)
    return regressions, compared, unmatched


# ------------------------------------------------------------- self-check

def _synthetic(bench="bench_x", name="t", spec="s", ops_per_sec=1000.0,
               p99=100):
    """A minimal valid report with one run whose p99 lands exactly on p99."""
    return validate_report({
        "schema": SCHEMA, "bench": bench, "git_describe": "selfcheck",
        "runs": [{
            "name": name, "spec": spec, "backend": "hardware", "threads": 2,
            "ops": 100, "ops_per_sec": ops_per_sec, "unit": "ns",
            "latency": {
                "count": 100, "sum": 100.0 * p99, "sum_sq": 100.0 * p99 * p99,
                "min": p99, "max": p99, "mean": float(p99), "p50": p99,
                "p90": p99, "p99": p99, "p999": p99,
                "buckets": [[p99, p99 + 1, 100]],
            },
        }],
    }, where="synthetic")


def self_check():
    import io

    def diff(base, cur):
        return compare(base, cur, 0.25, 0.25, out=io.StringIO())

    # Identical reports: no regression.
    regs, compared, unmatched = diff(_synthetic(), _synthetic())
    assert not regs and compared == 1 and not unmatched, regs

    # Throughput drop beyond the threshold: flagged.
    regs, _, _ = diff(_synthetic(ops_per_sec=1000), _synthetic(ops_per_sec=500))
    assert len(regs) == 1 and "throughput" in regs[0], regs

    # Throughput gain: not flagged.
    regs, _, _ = diff(_synthetic(ops_per_sec=1000), _synthetic(ops_per_sec=2000))
    assert not regs, regs

    # p99 growth beyond the threshold: flagged.
    regs, _, _ = diff(_synthetic(p99=100), _synthetic(p99=200))
    assert len(regs) == 1 and "p99" in regs[0], regs

    # p99 improvement: not flagged.
    regs, _, _ = diff(_synthetic(p99=100), _synthetic(p99=50))
    assert not regs, regs

    # Unmatched runs warn but do not fail.
    base, cur = _synthetic(), _synthetic(name="other")
    regs, compared, unmatched = diff(base, cur)
    assert not regs and compared == 0 and len(unmatched) == 1

    # Schema violations are caught.
    for mutate in (
        lambda d: d.update(schema="nope"),
        lambda d: d["runs"][0].pop("ops_per_sec"),
        lambda d: d["runs"][0]["latency"]["buckets"][0].__setitem__(2, 7),
        lambda d: d["runs"][0]["latency"].__setitem__("p99", 10**9),
        # Booleans must not satisfy integer fields (C++ parser parity).
        lambda d: d["runs"][0].__setitem__("threads", True),
        lambda d: d["runs"][0]["latency"].__setitem__("count", True),
    ):
        doc = _synthetic()
        mutate(doc)
        try:
            validate_report(doc, where="mutated")
        except ReportError:
            pass
        else:
            raise AssertionError(f"mutation not caught: {mutate}")

    print("bench_compare self-check OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="BASELINE CURRENT (compare) "
                        "or report files (--validate)")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check the given files, do not compare")
    parser.add_argument("--self-check", action="store_true",
                        help="run the built-in synthetic-report tests")
    parser.add_argument("--max-throughput-regress", type=float, default=0.30,
                        metavar="FRAC",
                        help="max tolerated ops/sec drop (default 0.30)")
    parser.add_argument("--max-p99-regress", type=float, default=0.50,
                        metavar="FRAC",
                        help="max tolerated p99 growth (default 0.50)")
    args = parser.parse_args(argv)

    if args.self_check:
        return self_check()

    try:
        if args.validate:
            if not args.files:
                parser.error("--validate needs at least one file")
            for path in args.files:
                load_report(path)
                print(f"valid: {path}")
            return 0

        if len(args.files) != 2:
            parser.error("compare mode needs exactly BASELINE and CURRENT")
        baseline = load_report(args.files[0])
        current = load_report(args.files[1])
    except ReportError as e:
        print(f"INVALID REPORT: {e}", file=sys.stderr)
        return 2

    print(f"comparing {args.files[0]} ({baseline['git_describe']}) -> "
          f"{args.files[1]} ({current['git_describe']})")
    regressions, compared, _ = compare(
        baseline, current, args.max_throughput_regress, args.max_p99_regress)
    print(f"{compared} run(s) compared, {len(regressions)} regression(s)")
    for reg in regressions:
        print(f"REGRESSION: {reg}", file=sys.stderr)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
