#!/usr/bin/env python3
"""Diff two renamelib bench reports with regression thresholds.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [options]
  bench_compare.py --validate FILE [FILE...]
  bench_compare.py --self-check

Modes:
  * compare (default): match runs by *configuration* — (bench, canonical
    spec, backend, threads, unit) — and flag regressions: throughput
    dropping more than --max-throughput-regress, tail latency (p99)
    growing more than --max-p99-regress, or a per-op event rate (the
    optional "events" section: counts of contention/failure sites like
    cas_fail, divided by the run's ops) growing more than
    --max-event-rate-regress. Run *names* are labels, not
    identity: a bench may relabel its tables without orphaning history, and
    a spec spelled with reordered keys still matches (specs canonicalize
    exactly like C++ api::Spec — keys sorted, nested values bracketed iff
    they carry options). Runs without a spec fall back to their name.
    Exit codes: 0 no regression, 1 regression found, 2 invalid input or no
    comparable runs at all (two reports that share nothing are a usage
    error, not a clean pass).
  * --validate: schema-check report files (the structural checks below)
    without comparing. Exits non-zero on the first invalid file.
  * --self-check: run the built-in synthetic-report tests of the full
    parse/match/threshold path. Used as a ctest entry (label smoke).

Schema checks (renamelib.bench_report.v1):
  * top-level: schema/bench/git_describe strings, runs list,
  * per run: name/spec/backend/unit strings, threads/ops integers,
    ops_per_sec number, latency object; optional repeats (positive integer,
    bench --repeat=N: ops_per_sec/latency are the median repeat's) and cv
    (non-negative number, coefficient of variation of ops_per_sec across
    the repeats),
  * per latency: count/min/max/p50/p90/p99/p999 integers, sum/sum_sq/mean
    numbers, buckets a list of [lower, upper, count] with counts summing to
    `count` and percentiles falling inside [min, max],
  * optional per-run events: an object of site-name -> non-negative integer
    count (obs::site_name keys; absent when the run recorded none).
"""

import argparse
import json
import sys

SCHEMA = "renamelib.bench_report.v1"


class ReportError(Exception):
    """A report failed schema validation."""


def _require(cond, where, what):
    if not cond:
        raise ReportError(f"{where}: {what}")


def _is_uint(v):
    # bool is an int subclass in Python; the C++ parser rejects true/false
    # where integers are required, and the validators must agree.
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def _is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_report(doc, where="report"):
    """Structural validation of one parsed report; returns the doc."""
    _require(isinstance(doc, dict), where, "top level must be an object")
    _require(doc.get("schema") == SCHEMA, where,
             f"schema must be '{SCHEMA}', got {doc.get('schema')!r}")
    for key in ("bench", "git_describe"):
        _require(isinstance(doc.get(key), str), where, f"'{key}' must be a string")
    _require(isinstance(doc.get("runs"), list), where, "'runs' must be a list")
    for i, run in enumerate(doc["runs"]):
        rwhere = f"{where}.runs[{i}]"
        _require(isinstance(run, dict), rwhere, "must be an object")
        for key in ("name", "spec", "backend", "unit"):
            _require(isinstance(run.get(key), str), rwhere,
                     f"'{key}' must be a string")
        for key in ("threads", "ops"):
            _require(_is_uint(run.get(key)), rwhere,
                     f"'{key}' must be a non-negative integer")
        _require(_is_number(run.get("ops_per_sec")), rwhere,
                 "'ops_per_sec' must be a number")
        # Optional repeat metadata (absent in pre---repeat reports; the C++
        # parser defaults them to 1 / 0 the same way).
        if "repeats" in run:
            _require(_is_uint(run["repeats"]) and run["repeats"] >= 1, rwhere,
                     "'repeats' must be a positive integer")
        if "cv" in run:
            _require(_is_number(run["cv"]) and run["cv"] >= 0, rwhere,
                     "'cv' must be a non-negative number")
        lat = run.get("latency")
        _require(isinstance(lat, dict), rwhere, "'latency' must be an object")
        for key in ("count", "min", "max", "p50", "p90", "p99", "p999"):
            _require(_is_uint(lat.get(key)), rwhere,
                     f"latency '{key}' must be a non-negative integer")
        for key in ("sum", "sum_sq", "mean"):
            _require(_is_number(lat.get(key)), rwhere,
                     f"latency '{key}' must be a number")
        _require(isinstance(lat.get("buckets"), list), rwhere,
                 "latency 'buckets' must be a list")
        total = 0
        prev_lower = -1
        for j, bucket in enumerate(lat["buckets"]):
            _require(isinstance(bucket, list) and len(bucket) == 3 and
                     all(_is_uint(v) for v in bucket),
                     rwhere, f"bucket[{j}] must be [lower, upper, count] ints")
            _require(bucket[0] > prev_lower, rwhere,
                     f"bucket[{j}] lower edges must be ascending")
            prev_lower = bucket[0]
            total += bucket[2]
        _require(total == lat["count"], rwhere,
                 f"bucket counts sum to {total}, latency count is {lat['count']}")
        if lat["count"] > 0:
            for key in ("p50", "p90", "p99", "p999"):
                _require(lat["min"] <= lat[key] <= lat["max"], rwhere,
                         f"latency '{key}'={lat[key]} outside "
                         f"[min={lat['min']}, max={lat['max']}]")
        # Optional per-site event counts (absent when the run recorded none;
        # the C++ parser defaults them to empty the same way).
        if "events" in run:
            _require(isinstance(run["events"], dict), rwhere,
                     "'events' must be an object")
            for site, count in run["events"].items():
                _require(isinstance(site, str) and site, rwhere,
                         "event keys must be non-empty site names")
                _require(_is_uint(count), rwhere,
                         f"event '{site}' must be a non-negative integer")
    return doc


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise ReportError(f"{path}: {e}") from e
    return validate_report(doc, where=path)


def _split_top_level(text, sep):
    """Split at `sep` outside [...] brackets (mirrors api::Spec's parser)."""
    items, item, depth = [], "", 0
    for c in text:
        if c == "[":
            depth += 1
        if c == "]":
            depth -= 1
            if depth < 0:
                raise ValueError(f"unbalanced ']' in spec '{text}'")
        if c == sep and depth == 0:
            items.append(item)
            item = ""
        else:
            item += c
    if depth != 0:
        raise ValueError(f"unbalanced '[' in spec '{text}'")
    items.append(item)
    return items


def canonical_spec(spec):
    """The canonical form api::Spec::print emits: keys sorted at every
    nesting level, nested values bracketed iff they carry options. Reports
    written by current binaries are already canonical; canonicalizing here
    too keeps matching stable against hand-written or pre-v2 reports. A
    string that is not a well-formed spec passes through verbatim."""
    try:
        name, sep, rest = spec.partition(":")
        if not name or any(c in name for c in "[],="):
            return spec
        if not sep:
            return name
        options = []
        for item in _split_top_level(rest, ","):
            key, eq, value = item.partition("=")
            if not key or not eq:
                return spec
            if value.startswith("[") and value.endswith("]"):
                value = canonical_spec(value[1:-1])
                if ":" in value:
                    value = f"[{value}]"
            elif "[" in value or "]" in value:
                return spec
            elif ":" in value:
                value = f"[{canonical_spec(value)}]"
            options.append((key, value))
        if len(set(k for k, _ in options)) != len(options):
            return spec
        return name + ":" + ",".join(f"{k}={v}"
                                     for k, v in sorted(options))
    except ValueError:
        return spec


def run_key(doc, run, occurrence):
    # Identity is the measured configuration, not the table label; label-only
    # runs (spec == "") key on their name instead.
    config = canonical_spec(run["spec"]) if run["spec"] else "name:" + run["name"]
    return (doc["bench"], config, run["backend"], run["threads"], run["unit"],
            occurrence)


def index_runs(doc):
    """Keyed runs. When one configuration appears several times in a report
    (the same spec measured in two tables, or under two facets), the
    colliding runs are told apart by their *name* — stable under table
    reordering and entry removal, unlike positional pairing — and only
    same-config same-name repeats fall back to an occurrence index."""
    bases = {}
    for run in doc["runs"]:
        bases.setdefault(run_key(doc, run, 0)[:-1], []).append(run)
    out = {}
    for base, runs in bases.items():
        if len(runs) == 1:
            out[base + ("", 0)] = runs[0]
            continue
        seen = {}
        for run in runs:
            occurrence = seen.get(run["name"], 0)
            seen[run["name"]] = occurrence + 1
            out[base + (run["name"], occurrence)] = run
    return out


def fmt_key(key):
    bench, config, backend, threads, unit, name, occ = key
    name_part = f" '{name}'" if name else ""
    occ_part = f" #{occ}" if occ else ""
    return f"{bench}/{config}{name_part} ({backend}, k={threads}, {unit}){occ_part}"


def _event_rates(run):
    """Per-op rates of the run's recorded events ({} when none or ops==0)."""
    ops = run["ops"]
    if not ops:
        return {}
    return {site: count / ops
            for site, count in run.get("events", {}).items()}


def compare(baseline, current, max_tp_regress, max_p99_regress,
            max_event_regress=1.0, out=sys.stdout):
    """Returns (regressions, compared, unmatched) and prints a row per pair."""
    base_runs = index_runs(baseline)
    cur_runs = index_runs(current)
    regressions = []
    compared = 0
    for key in sorted(base_runs):
        if key not in cur_runs:
            print(f"  MISSING  {fmt_key(key)} (in baseline only)", file=out)
            continue
        b, c = base_runs[key], cur_runs[key]
        compared += 1
        verdicts = []
        # Throughput: lower is worse. Only meaningful when both legs timed.
        if b["ops_per_sec"] > 0 and c["ops_per_sec"] > 0:
            delta = c["ops_per_sec"] / b["ops_per_sec"] - 1
            verdicts.append(f"ops/sec {delta:+.1%}")
            # Median-of-N runs carry their own noise estimate; surface it so
            # a delta inside the measurement spread reads as such.
            if c.get("repeats", 1) > 1:
                verdicts.append(
                    f"median of {c['repeats']}, cv {c.get('cv', 0):.1%}")
            if delta < -max_tp_regress:
                regressions.append(
                    f"{fmt_key(key)}: throughput {b['ops_per_sec']:.0f} -> "
                    f"{c['ops_per_sec']:.0f} ({delta:+.1%}, limit "
                    f"-{max_tp_regress:.0%})")
        # Tail latency: higher is worse.
        if b["latency"]["count"] > 0 and c["latency"]["count"] > 0 \
                and b["latency"]["p99"] > 0:
            delta = c["latency"]["p99"] / b["latency"]["p99"] - 1
            verdicts.append(f"p99 {delta:+.1%}")
            if delta > max_p99_regress:
                regressions.append(
                    f"{fmt_key(key)}: p99 {b['latency']['p99']} -> "
                    f"{c['latency']['p99']} {b['unit']} ({delta:+.1%}, limit "
                    f"+{max_p99_regress:.0%})")
        # Event rates: the sites count contention and failure paths (lost
        # CASes, reclaims, drops), so a rising per-op rate is worse. Only
        # sites both legs recorded compare as ratios; sites new in one leg
        # are surfaced but not thresholded (no baseline rate to ratio on).
        b_rates, c_rates = _event_rates(b), _event_rates(c)
        if b_rates or c_rates:
            deltas = []
            for site in sorted(set(b_rates) | set(c_rates)):
                br, cr = b_rates.get(site), c_rates.get(site)
                if br and cr:
                    delta = cr / br - 1
                    deltas.append(f"{site} {delta:+.1%}")
                    if delta > max_event_regress:
                        regressions.append(
                            f"{fmt_key(key)}: event '{site}' rate "
                            f"{br:.4g}/op -> {cr:.4g}/op ({delta:+.1%}, "
                            f"limit +{max_event_regress:.0%})")
                else:
                    deltas.append(f"{site} "
                                  f"{'appeared' if cr else 'vanished'}")
            verdicts.append("events: " + ", ".join(deltas))
        print(f"  ok  {fmt_key(key)}: {', '.join(verdicts) or 'no timed axis'}",
              file=out)
    unmatched = [k for k in cur_runs if k not in base_runs]
    for key in sorted(unmatched):
        print(f"  NEW  {fmt_key(key)} (in current only)", file=out)
    return regressions, compared, unmatched


# ------------------------------------------------------------- self-check

def _synthetic(bench="bench_x", name="t", spec="s", ops_per_sec=1000.0,
               p99=100):
    """A minimal valid report with one run whose p99 lands exactly on p99."""
    return validate_report({
        "schema": SCHEMA, "bench": bench, "git_describe": "selfcheck",
        "runs": [{
            "name": name, "spec": spec, "backend": "hardware", "threads": 2,
            "ops": 100, "ops_per_sec": ops_per_sec, "unit": "ns",
            "latency": {
                "count": 100, "sum": 100.0 * p99, "sum_sq": 100.0 * p99 * p99,
                "min": p99, "max": p99, "mean": float(p99), "p50": p99,
                "p90": p99, "p99": p99, "p999": p99,
                "buckets": [[p99, p99 + 1, 100]],
            },
        }],
    }, where="synthetic")


def self_check():
    import io

    def diff(base, cur):
        return compare(base, cur, 0.25, 0.25, 1.0, out=io.StringIO())

    # Identical reports: no regression.
    regs, compared, unmatched = diff(_synthetic(), _synthetic())
    assert not regs and compared == 1 and not unmatched, regs

    # Throughput drop beyond the threshold: flagged.
    regs, _, _ = diff(_synthetic(ops_per_sec=1000), _synthetic(ops_per_sec=500))
    assert len(regs) == 1 and "throughput" in regs[0], regs

    # Throughput gain: not flagged.
    regs, _, _ = diff(_synthetic(ops_per_sec=1000), _synthetic(ops_per_sec=2000))
    assert not regs, regs

    # p99 growth beyond the threshold: flagged.
    regs, _, _ = diff(_synthetic(p99=100), _synthetic(p99=200))
    assert len(regs) == 1 and "p99" in regs[0], regs

    # p99 improvement: not flagged.
    regs, _, _ = diff(_synthetic(p99=100), _synthetic(p99=50))
    assert not regs, regs

    # Canonicalization mirrors api::Spec::print.
    assert canonical_spec("striped:stripes=8,elim=1") == \
        "striped:elim=1,stripes=8"
    assert canonical_spec("difftree:leaf=[striped:stripes=4,elim=1],depth=2") \
        == "difftree:depth=2,leaf=[striped:elim=1,stripes=8]".replace("8", "4")
    assert canonical_spec("difftree:leaf=[atomic_fai]") == \
        "difftree:leaf=atomic_fai"
    assert canonical_spec("difftree:leaf=striped:stripes=4") == \
        "difftree:leaf=[striped:stripes=4]"
    assert canonical_spec("not a spec") == "not a spec"
    assert canonical_spec("") == ""

    # Matching is by configuration: a renamed run with the same spec still
    # pairs, and reordered spec keys are one identity.
    regs, compared, unmatched = diff(
        _synthetic(name="old_label", spec="striped:stripes=8,elim=1"),
        _synthetic(name="new_label", spec="striped:elim=1,stripes=8"))
    assert not regs and compared == 1 and not unmatched

    # Runs without a spec fall back to their name.
    regs, compared, unmatched = diff(_synthetic(spec=""),
                                     _synthetic(spec="", name="other"))
    assert compared == 0 and len(unmatched) == 1

    # Colliding configurations (one spec measured twice, e.g. under two
    # facets) pair by run name, not position: reordering the runs must not
    # cross the pairs and fake a regression.
    base = _synthetic(name="counter", p99=100)
    base["runs"].append(_synthetic(name="readable", p99=200)["runs"][0])
    cur = _synthetic(name="readable", p99=200)
    cur["runs"].append(_synthetic(name="counter", p99=100)["runs"][0])
    regs, compared, unmatched = diff(base, cur)
    assert not regs and compared == 2 and not unmatched, regs

    # Unmatched runs warn but do not fail (compare() itself; main() turns an
    # *all*-unmatched comparison into exit 2).
    base, cur = _synthetic(), _synthetic(spec="other_spec")
    regs, compared, unmatched = diff(base, cur)
    assert not regs and compared == 0 and len(unmatched) == 1

    # Repeat metadata: optional, validated when present, surfaced in rows.
    doc = _synthetic()
    doc["runs"][0].update(repeats=5, cv=0.032)
    validate_report(doc, where="repeats")
    out = io.StringIO()
    regs, compared, _ = compare(doc, doc, 0.25, 0.25, out=out)
    assert not regs and compared == 1
    assert "median of 5" in out.getvalue() and "cv 3.2%" in out.getvalue(), \
        out.getvalue()

    # Events: optional, validated when present, diffed as per-op rates.
    doc = _synthetic()
    doc["runs"][0]["events"] = {"cas_fail": 50, "elim_pair": 10}
    validate_report(doc, where="events")
    # Same rates: no regression, rates surfaced in the row.
    out = io.StringIO()
    regs, compared, _ = compare(doc, doc, 0.25, 0.25, 1.0, out=out)
    assert not regs and compared == 1
    assert "cas_fail +0.0%" in out.getvalue(), out.getvalue()
    # Injected rate regression (50 -> 150 per 100 ops, beyond the 1.0
    # doubling limit): flagged, and naming the site.
    worse = _synthetic()
    worse["runs"][0]["events"] = {"cas_fail": 150, "elim_pair": 10}
    regs, _, _ = compare(doc, worse, 0.25, 0.25, 1.0, out=io.StringIO())
    assert len(regs) == 1 and "cas_fail" in regs[0], regs
    # Within the limit: not flagged. A site appearing only in one leg is
    # surfaced but never thresholded.
    better = _synthetic()
    better["runs"][0]["events"] = {"cas_fail": 60, "lease_seize": 3}
    out = io.StringIO()
    regs, _, _ = compare(doc, better, 0.25, 0.25, 1.0, out=out)
    assert not regs, regs
    assert "lease_seize appeared" in out.getvalue(), out.getvalue()
    assert "elim_pair vanished" in out.getvalue(), out.getvalue()
    # An event-less baseline against an evented current: no regression
    # (nothing to ratio against), still one comparable run.
    regs, compared, _ = diff(_synthetic(), doc)
    assert not regs and compared == 1, regs

    # Schema violations are caught.
    for mutate in (
        lambda d: d.update(schema="nope"),
        lambda d: d["runs"][0].pop("ops_per_sec"),
        lambda d: d["runs"][0]["latency"]["buckets"][0].__setitem__(2, 7),
        lambda d: d["runs"][0]["latency"].__setitem__("p99", 10**9),
        # Booleans must not satisfy integer fields (C++ parser parity).
        lambda d: d["runs"][0].__setitem__("threads", True),
        lambda d: d["runs"][0]["latency"].__setitem__("count", True),
        # Repeat metadata, when present, must be well-formed.
        lambda d: d["runs"][0].__setitem__("repeats", 0),
        lambda d: d["runs"][0].__setitem__("repeats", True),
        lambda d: d["runs"][0].__setitem__("cv", -0.1),
        # Events, when present, must be a site->count object.
        lambda d: d["runs"][0].__setitem__("events", [1, 2]),
        lambda d: d["runs"][0].__setitem__("events", {"cas_fail": -1}),
        lambda d: d["runs"][0].__setitem__("events", {"cas_fail": True}),
        lambda d: d["runs"][0].__setitem__("events", {"": 3}),
    ):
        doc = _synthetic()
        mutate(doc)
        try:
            validate_report(doc, where="mutated")
        except ReportError:
            pass
        else:
            raise AssertionError(f"mutation not caught: {mutate}")

    print("bench_compare self-check OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="BASELINE CURRENT (compare) "
                        "or report files (--validate)")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check the given files, do not compare")
    parser.add_argument("--self-check", action="store_true",
                        help="run the built-in synthetic-report tests")
    parser.add_argument("--max-throughput-regress", type=float, default=0.30,
                        metavar="FRAC",
                        help="max tolerated ops/sec drop (default 0.30)")
    parser.add_argument("--max-p99-regress", type=float, default=0.50,
                        metavar="FRAC",
                        help="max tolerated p99 growth (default 0.50)")
    parser.add_argument("--max-event-rate-regress", type=float, default=1.0,
                        metavar="FRAC",
                        help="max tolerated per-op event-rate growth for "
                        "sites present in both reports (default 1.0, i.e. "
                        "a doubling)")
    args = parser.parse_args(argv)

    if args.self_check:
        return self_check()

    try:
        if args.validate:
            if not args.files:
                parser.error("--validate needs at least one file")
            for path in args.files:
                load_report(path)
                print(f"valid: {path}")
            return 0

        if len(args.files) != 2:
            parser.error("compare mode needs exactly BASELINE and CURRENT")
        baseline = load_report(args.files[0])
        current = load_report(args.files[1])
    except ReportError as e:
        print(f"INVALID REPORT: {e}", file=sys.stderr)
        return 2

    print(f"comparing {args.files[0]} ({baseline['git_describe']}) -> "
          f"{args.files[1]} ({current['git_describe']})")
    regressions, compared, _ = compare(
        baseline, current, args.max_throughput_regress, args.max_p99_regress,
        args.max_event_rate_regress)
    print(f"{compared} run(s) compared, {len(regressions)} regression(s)")
    if compared == 0:
        # Nothing paired up: comparing disjoint reports would otherwise look
        # like a clean pass. Say exactly why nothing matched.
        print(f"NO COMPARABLE RUNS: {args.files[0]} "
              f"(bench={baseline['bench']!r}, {len(baseline['runs'])} runs) "
              f"and {args.files[1]} (bench={current['bench']!r}, "
              f"{len(current['runs'])} runs) share no "
              "(bench, spec, backend, threads, unit) key — are these "
              "reports from the same bench?", file=sys.stderr)
        return 2
    for reg in regressions:
        print(f"REGRESSION: {reg}", file=sys.stderr)
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
