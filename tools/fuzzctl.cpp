// fuzzctl — the spec/schedule fuzzer driver.
//
// Front end for src/fuzz: generate-and-check random (spec, scenario, seed)
// cases over every registered entry, with branch-style coverage feedback
// from the simulated runtime steering mutation, greedy shrinking on oracle
// failure, and a replayable JSON corpus (docs/FUZZING.md).
//
//   fuzzctl --smoke --seed=42 [--iters=N] [--out=DIR]
//   fuzzctl --fuzz --seed=7 --iters=2000 [--out=DIR]
//   fuzzctl replay FILE...
//
// `--smoke` is the CI gate: it runs the same budget TWICE with two
// independent fuzzer instances and byte-compares the summaries — the
// simulated backend makes a fuzzing session a pure function of its seed, so
// any divergence is a determinism regression — and additionally requires
// that every Registry::describe() entry actually executed. `--fuzz` is the
// open-ended bug-hunting mode (crank --iters). `replay` re-judges committed
// corpus repros verbatim through the same run_case the fuzzer used when it
// shrank them.
//
// Exit codes: 0 clean, 1 oracle failures / nondeterminism / coverage
// shortfall / failed replay, 2 usage errors.
#include <charconv>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/registry.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "obs/flight_recorder.h"

namespace {

using namespace renamelib;

int usage(std::ostream& out, int code) {
  out << "usage:\n"
         "  fuzzctl --smoke --seed=N [--iters=N] [--out=DIR]\n"
         "  fuzzctl --fuzz  --seed=N [--iters=N] [--out=DIR]\n"
         "  fuzzctl replay FILE...\n"
         "\n"
         "  --smoke   deterministic gate: runs the budget twice, compares\n"
         "            the runs byte-for-byte, and requires every registered\n"
         "            entry to have executed\n"
         "  --fuzz    one open-ended session (shrunk failures -> --out)\n"
         "  replay    re-judge corpus case files through run_case\n";
  return code;
}

/// Parsed --key=value / --flag command line.
class Args {
 public:
  Args(int argc, char** argv, int from) {
    for (int i = from; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_.emplace_back(arg.substr(2), "");
      } else {
        kv_.emplace_back(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    }
  }

  std::optional<std::string> get(const std::string& key) {
    for (auto& [k, v] : kv_) {
      if (k == key) {
        seen_.push_back(k);
        return v;
      }
    }
    return std::nullopt;
  }

  std::uint64_t get_u64(const std::string& key, std::uint64_t def) {
    const auto v = get(key);
    if (!v.has_value()) return def;
    std::uint64_t out = 0;
    const auto [ptr, ec] =
        std::from_chars(v->data(), v->data() + v->size(), out);
    if (ec != std::errc{} || ptr != v->data() + v->size()) {
      throw std::invalid_argument("--" + key + " needs an unsigned integer, "
                                  "got '" + *v + "'");
    }
    return out;
  }

  bool flag(const std::string& key) { return get(key).has_value(); }

  const std::vector<std::string>& positional() const { return positional_; }

  void reject_unknown() const {
    for (const auto& [k, v] : kv_) {
      bool used = false;
      for (const auto& s : seen_) used |= (s == k);
      if (!used) throw std::invalid_argument("unknown flag '--" + k + "'");
    }
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
  std::vector<std::string> seen_;
  std::vector<std::string> positional_;
};

/// Deterministic session report: pure function of the summary (no wall
/// clock, no paths that vary run-to-run), so --smoke can byte-compare it.
std::string summary_text(const fuzz::FuzzSummary& s) {
  std::ostringstream out;
  out << "iterations:        " << s.iterations << "\n"
      << "skipped:           " << s.skipped << "\n"
      << "interesting:       " << s.interesting << "\n"
      << "coverage features: " << s.coverage_features << "\n"
      << "entries covered:   " << s.entries_covered << "/" << s.entries_total
      << "\n"
      << "failures:          " << s.failures << "\n"
      << "fingerprint:       " << std::hex << s.fingerprint << std::dec
      << "\n";
  for (const auto& note : s.failure_notes) out << "FAIL " << note << "\n";
  return out.str();
}

fuzz::FuzzOptions options_from(Args& args, std::uint64_t default_iters) {
  fuzz::FuzzOptions o;
  o.seed = args.get_u64("seed", 1);
  o.iterations = static_cast<int>(args.get_u64("iters", default_iters));
  o.out_dir = args.get("out").value_or("");
  return o;
}

int cmd_smoke(Args& args) {
  const fuzz::FuzzOptions options = options_from(args, 200);
  args.reject_unknown();

  fuzz::Fuzzer first(options);
  const fuzz::FuzzSummary a = first.run();
  fuzz::Fuzzer second(options);
  const fuzz::FuzzSummary b = second.run();

  const std::string text = summary_text(a);
  std::cout << text;

  int rc = 0;
  if (summary_text(b) != text || a.fingerprint != b.fingerprint) {
    std::cerr << "NONDETERMINISTIC: two identically seeded runs diverged\n"
              << "--- second run ---\n"
              << summary_text(b);
    rc = 1;
  }
  if (a.entries_covered != a.entries_total) {
    std::cerr << "COVERAGE SHORTFALL: " << a.entries_covered << "/"
              << a.entries_total << " registry entries executed\n";
    rc = 1;
  }
  if (a.failures > 0) rc = 1;
  std::cout << (rc == 0 ? "SMOKE OK\n" : "SMOKE FAILED\n");
  return rc;
}

int cmd_fuzz(Args& args) {
  const fuzz::FuzzOptions options = options_from(args, 1000);
  args.reject_unknown();

  fuzz::Fuzzer fuzzer(options);
  const fuzz::FuzzSummary s = fuzzer.run();
  std::cout << summary_text(s);
  for (const auto& f : s.failure_files) {
    std::cout << "shrunk repro: " << f << "\n";
  }
  return s.failures > 0 ? 1 : 0;
}

int cmd_replay(const std::vector<std::string>& files) {
  if (files.empty()) {
    std::cerr << "replay: no corpus files given\n";
    return 2;
  }
  int rc = 0;
  for (const auto& path : files) {
    const fuzz::FuzzCase c = fuzz::load_case_file(path);
    const fuzz::CaseResult r = fuzz::run_case(c);
    if (!r.ran) {
      std::cout << "SKIP " << path << " (geometry cannot run)\n";
      continue;
    }
    if (r.ok) {
      std::cout << "PASS " << path << " (spec=" << c.spec << ")\n";
      continue;
    }
    rc = 1;
    std::cout << "FAIL " << path << " (spec=" << c.spec << ")\n";
    for (const auto& f : r.failures) {
      std::cout << "     " << f.oracle << ": " << f.detail << "\n";
    }
    // Post-mortem: run_case keeps the flight recorder on for the execution,
    // so its tail is the last events leading into the oracle failure.
    std::cout << obs::FlightRecorder::instance().format_tail();
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Force registry construction early so a registration bug is a clean
    // error, not a mid-session surprise.
    (void)api::Registry::global().describe();

    int from = 1;
    const bool replay =
        argc > 1 && std::string(argv[1]) == "replay" ? (from = 2, true)
                                                     : false;
    Args args(argc, argv, from);
    if (args.flag("help")) return usage(std::cout, 0);
    if (replay) {
      args.reject_unknown();
      return cmd_replay(args.positional());
    }
    if (args.flag("smoke")) return cmd_smoke(args);
    if (args.flag("fuzz")) return cmd_fuzz(args);
    return usage(std::cerr, 2);
  } catch (const std::invalid_argument& e) {
    std::cerr << "fuzzctl: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "fuzzctl: " << e.what() << "\n";
    return 1;
  }
}
