#!/usr/bin/env python3
"""Fails when any intra-repo markdown link is broken.

Scans every tracked *.md file for inline links/images `[text](target)` and
reference definitions `[label]: target`, resolves relative targets against
the containing file, and reports targets that do not exist. External links
(http/https/mailto) are skipped; `#anchor` targets are checked against the
target file's headings (GitHub slug rules, simplified).

Run from the repository root:  python3 tools/check_markdown_links.py
CI runs this in the docs job; CMake registers it as the `docs_links` test
when a Python interpreter is available.
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF_RE = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
SKIP_DIRS = {"build", "build-asan", "build-docs", ".git"}


def slugify(heading: str) -> str:
    """GitHub-style anchor slug (simplified: enough for this repo)."""
    s = re.sub(r"[`*_]", "", heading.strip().lower())
    s = re.sub(r"[^\w\- ]", "", s)
    return s.replace(" ", "-")


def headings_of(path: Path) -> set:
    return {slugify(h) for h in HEADING_RE.findall(path.read_text(encoding="utf-8"))}


def markdown_files(root: Path):
    for p in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in p.parts):
            yield p


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    broken = []
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8")
        targets = LINK_RE.findall(text) + REFDEF_RE.findall(text)
        for target in targets:
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            path_part, _, anchor = target.partition("#")
            dest = md if not path_part else (md.parent / path_part).resolve()
            if not dest.exists():
                broken.append(f"{md.relative_to(root)}: missing target '{target}'")
                continue
            if anchor and dest.suffix == ".md":
                if slugify(anchor) not in headings_of(dest):
                    broken.append(
                        f"{md.relative_to(root)}: no heading '#{anchor}' in "
                        f"'{path_part or md.name}'")
    if broken:
        print("Broken intra-repo markdown links:", file=sys.stderr)
        for b in broken:
            print(f"  {b}", file=sys.stderr)
        return 1
    count = len(list(markdown_files(root)))
    print(f"OK: all intra-repo links resolve across {count} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
