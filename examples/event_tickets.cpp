// Scenario: counting and ticketing (the paper's Sec. 8 applications).
//
//   * MonotoneCounter — a progress/metrics counter: cheap increments,
//     monotone-consistent reads (never below completed events, never above
//     started ones). Ideal for telemetry where linearizability is overkill.
//   * BoundedFetchAndIncrement — a ticket dispenser for a bounded batch:
//     hands out 0..m-1 exactly once each (then saturates), linearizably.
#include <cstdio>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "counting/bounded_fai.h"
#include "counting/monotone_counter.h"

int main() {
  using namespace renamelib;

  // ---------------------------------------------------------------------
  std::printf("— monotone event counter —\n");
  counting::MonotoneCounter events;
  {
    std::vector<std::thread> producers;
    for (int p = 0; p < 6; ++p) {
      producers.emplace_back([&, p] {
        Ctx ctx(p, 42 + p);
        for (int e = 0; e < 50; ++e) events.increment(ctx);
      });
    }
    // A concurrent monitor thread samples the counter while events pour in;
    // its samples are monotone.
    std::thread monitor([&] {
      Ctx ctx(100, 4242);
      std::uint64_t last = 0;
      bool monotone = true;
      for (int s = 0; s < 200; ++s) {
        const std::uint64_t v = events.read(ctx);
        monotone &= v >= last;
        last = v;
      }
      std::printf("  monitor: samples stayed monotone: %s, last sample %llu\n",
                  monotone ? "yes" : "NO",
                  static_cast<unsigned long long>(last));
    });
    for (auto& t : producers) t.join();
    monitor.join();
  }
  Ctx reader(101, 9);
  std::printf("  settled count: %llu (expected 300)\n\n",
              static_cast<unsigned long long>(events.read(reader)));

  // ---------------------------------------------------------------------
  std::printf("— bounded ticket dispenser (m = 32) —\n");
  counting::BoundedFetchAndIncrement tickets(32);
  std::mutex mu;
  std::set<std::uint64_t> handed_out;
  std::vector<std::thread> clerks;
  for (int c = 0; c < 8; ++c) {
    clerks.emplace_back([&, c] {
      Ctx ctx(c, 777 + c);
      for (int i = 0; i < 4; ++i) {
        const std::uint64_t ticket = tickets.fetch_and_increment(ctx);
        std::scoped_lock lock{mu};
        handed_out.insert(ticket);
      }
    });
  }
  for (auto& t : clerks) t.join();
  std::printf("  distinct tickets handed out: %zu (expected 32: 0..31)\n",
              handed_out.size());
  const bool dense = handed_out.size() == 32 && *handed_out.begin() == 0 &&
                     *handed_out.rbegin() == 31;
  std::printf("  dense range 0..31: %s\n", dense ? "yes" : "NO");

  Ctx extra(50, 3);
  std::printf("  33rd request (saturated): %llu (expected 31)\n",
              static_cast<unsigned long long>(
                  tickets.fetch_and_increment(extra)));
  return dense ? 0 : 1;
}
