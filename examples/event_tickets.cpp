// Scenario: counting and ticketing (the paper's Sec. 8 applications),
// wired through the public API.
//
//   * MonotoneCounter — a progress/metrics counter: cheap increments,
//     monotone-consistent reads (never below completed events, never above
//     started ones). Ideal for telemetry where linearizability is overkill.
//     Runs through the generic api::Workload hook.
//   * "bounded_fai:m=32" — a ticket dispenser for a bounded batch from the
//     registry: hands out 0..m-1 exactly once each (then saturates),
//     linearizably.
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "api/workload.h"
#include "counting/monotone_counter.h"

int main() {
  using namespace renamelib;

  // ---------------------------------------------------------------------
  std::printf("— monotone event counter —\n");
  counting::MonotoneCounter events;
  {
    // A concurrent monitor thread samples the counter while six producer
    // threads (driven by the Workload harness) pour events in; its samples
    // are monotone.
    std::thread monitor([&] {
      Ctx ctx(100, 4242);
      std::uint64_t last = 0;
      bool monotone = true;
      for (int s = 0; s < 200; ++s) {
        const std::uint64_t v = events.read(ctx);
        monotone &= v >= last;
        last = v;
      }
      std::printf("  monitor: samples stayed monotone: %s, last sample %llu\n",
                  monotone ? "yes" : "NO",
                  static_cast<unsigned long long>(last));
    });

    api::Scenario s;
    s.nproc = 6;
    s.ops_per_proc = 50;
    s.backend = api::Backend::kHardware;
    s.seed = 42;
    const api::Run run = api::Workload(s).run_ops([&](Ctx& ctx) {
      events.increment(ctx);
      return 0ULL;
    });
    monitor.join();
    std::printf("  producers: %llu increments, mean %.1f steps each\n",
                static_cast<unsigned long long>(run.metrics.ops),
                run.metrics.mean_op_steps());
  }
  Ctx reader(101, 9);
  std::printf("  settled count: %llu (expected 300)\n\n",
              static_cast<unsigned long long>(events.read(reader)));

  // ---------------------------------------------------------------------
  std::printf("— bounded ticket dispenser (m = 32) —\n");
  api::Scenario s;
  s.nproc = 8;
  s.ops_per_proc = 4;
  s.backend = api::Backend::kHardware;
  s.seed = 777;
  const api::Run run = api::Workload::run_counter_spec("bounded_fai:m=32", s);

  std::set<std::uint64_t> handed_out;
  for (const std::uint64_t t : run.values()) handed_out.insert(t);
  std::printf("  distinct tickets handed out: %zu (expected 32: 0..31)\n",
              handed_out.size());
  const bool dense = handed_out.size() == 32 && *handed_out.begin() == 0 &&
                     *handed_out.rbegin() == 31;
  std::printf("  dense range 0..31: %s\n", dense ? "yes" : "NO");

  const auto tickets = api::Registry::global().make_counter("bounded_fai:m=32");
  // Exhaust a fresh dispenser sequentially, then one more: saturation.
  Ctx clerk(50, 3);
  for (int i = 0; i < 32; ++i) (void)tickets->next(clerk);
  std::printf("  33rd request (saturated): %llu (expected 31)\n",
              static_cast<unsigned long long>(tickets->next(clerk)));
  return dense ? 0 : 1;
}
