// Explorer: visualize sorting networks and watch a renaming network route.
//
// Prints a Knuth-style ASCII diagram of small sorting networks, the stage
// geometry of the Sec. 6.1 adaptive construction, and then traces one
// process's path through a renaming network comparator by comparator.
#include <cstdio>
#include <string>
#include <vector>

#include "adaptive/sandwich.h"
#include "renaming/renaming_network.h"
#include "sortnet/bitonic.h"
#include "sortnet/comparator_network.h"
#include "sortnet/insertion.h"
#include "sortnet/odd_even_merge.h"
#include "sortnet/verify.h"

namespace {

/// Knuth diagram: one row per wire, one column per layer; '|' marks a
/// comparator between its two wires.
void draw(const renamelib::sortnet::ComparatorNetwork& net, const char* title) {
  const auto layers = net.layer_of_comparators();
  const std::size_t depth = net.depth();
  std::vector<std::string> rows(net.width(), std::string(3 * depth, ' '));
  // Track how many comparators already drawn per layer column to offset
  // overlapping comparators within one layer.
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& c = net.comparator(i);
    const std::size_t col = 3 * layers[i];
    for (std::uint32_t w = c.lo; w <= c.hi; ++w) {
      rows[w][col] = (w == c.lo) ? 'x' : (w == c.hi ? 'x' : '|');
    }
  }
  std::printf("%s  (width %zu, size %zu, depth %zu, sorts: %s)\n", title,
              net.width(), net.size(), net.depth(),
              renamelib::sortnet::is_sorting_network_exhaustive(net) ? "yes"
                                                                     : "no");
  for (std::size_t w = 0; w < rows.size(); ++w) {
    std::printf("  w%-2zu --%s--\n", w, rows[w].c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace renamelib;

  draw(sortnet::insertion_sort(4), "insertion sort, n=4");
  draw(sortnet::odd_even_merge_sort(8), "Batcher odd-even mergesort, n=8");
  draw(sortnet::bitonic_sort(8), "bitonic (standardized), n=8");

  std::printf("adaptive construction stages (Sec. 6.1):\n");
  std::printf("  %-6s %-12s %-8s %-14s\n", "stage", "width w_j", "l_j",
              "A_j/C_j width");
  for (int j = 1; j <= adaptive::StageGeometry::kMaxStage; ++j) {
    std::printf("  %-6d %-12llu %-8llu %-14llu\n", j,
                static_cast<unsigned long long>(adaptive::StageGeometry::width(j)),
                static_cast<unsigned long long>(adaptive::StageGeometry::ell(j)),
                static_cast<unsigned long long>(
                    adaptive::StageGeometry::sandwich_width(j)));
  }

  std::printf("\nrouting trace through a width-8 renaming network:\n");
  renaming::RenamingNetwork net(sortnet::odd_even_merge_sort(8),
                                renaming::ComparatorKind::kHardware);
  // Pre-occupy ports 2 and 5 so our traced process meets competition.
  Ctx other1(1, 2), other2(2, 3);
  (void)net.rename(other1, 2);
  (void)net.rename(other2, 5);

  Ctx mine(0, 1);
  const auto routed = net.rename_counted(mine, 7);
  std::printf("  process on input port 7 with 2 processes already renamed:\n");
  std::printf("  traversed %llu comparators, exited on port %llu (name %llu)\n",
              static_cast<unsigned long long>(routed.comparators),
              static_cast<unsigned long long>(routed.name),
              static_cast<unsigned long long>(routed.name));
  std::printf("  (the two earlier arrivals hold names 1 and 2; ours is 3)\n");
  return routed.name == 3 ? 0 : 1;
}
