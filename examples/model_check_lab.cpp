// Model-check lab: exhaustively verify a safety property over EVERY
// schedule, then watch the explorer catch a deliberately broken protocol.
//
// The simulator's explorer enumerates all adversarial interleavings of a
// small execution (coin flips fixed per seed). Here: (1) the two-process
// test-and-set's "at most one winner" over every schedule, (2) a buggy
// check-then-act "lock" where the explorer finds and prints the exact
// interleaving that breaks it.
#include <atomic>
#include <cstdio>
#include <memory>

#include "sim/explore.h"
#include "tas/two_process_tas.h"

int main() {
  using namespace renamelib;

  std::printf("— exhaustive check: 2-process TAS, at most one winner —\n");
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    struct State {
      tas::TwoProcessTas tas;
      std::atomic<int> wins{0};
    };
    auto state = std::make_shared<State>();
    sim::ExploreOptions options;
    options.seed = seed;
    options.max_depth = 14;
    options.max_executions = 3000;
    const auto result = sim::explore_schedules(
        2,
        [&] {
          state = std::make_shared<State>();
          auto s = state;
          return [s](Ctx& ctx) {
            if (s->tas.compete(ctx, ctx.pid())) s->wins.fetch_add(1);
          };
        },
        [&](const sim::SimResult&) { return state->wins.load() <= 1; },
        options);
    std::printf("  seed %llu: %llu executions explored, %s\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(result.executions),
                result.invariant_violated ? "VIOLATION (bug!)" : "all safe");
  }

  std::printf("\n— the same tool on a broken check-then-act lock —\n");
  struct Broken {
    Register<int> flag{0};
    std::atomic<int> inside{0};
  };
  auto broken = std::make_shared<Broken>();
  const auto result = sim::explore_schedules(
      2,
      [&] {
        broken = std::make_shared<Broken>();
        auto s = broken;
        return [s](Ctx& ctx) {
          if (s->flag.load(ctx) == 0) {  // check ...
            s->flag.store(ctx, 1);       // ... then act: classic race
            s->inside.fetch_add(1);
          }
        };
      },
      [&](const sim::SimResult&) { return broken->inside.load() <= 1; });
  if (result.invariant_violated) {
    std::printf("  violation found after %llu executions; schedule: ",
                static_cast<unsigned long long>(result.executions));
    for (int pid : result.counterexample) std::printf("p%d ", pid);
    std::printf("\n  (both processes passed the check before either wrote — "
                "the explorer hands you the exact interleaving.)\n");
  } else {
    std::printf("  unexpectedly found no violation\n");
    return 1;
  }
  return 0;
}
