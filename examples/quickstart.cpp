// Quickstart: adaptive strong renaming in five minutes.
//
// Eight threads arrive with sparse 64-bit identifiers (addresses, hashes,
// OS thread ids — anything unique) and leave with the names 1..8. Build &
// run:
//
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "renaming/adaptive_strong.h"

int main() {
  using namespace renamelib;

  // One shared renaming object. Hardware comparators make it deterministic
  // and fast on real machines (the paper's Sec. 1 Discussion); drop the
  // options for the registers-only randomized variant.
  renaming::AdaptiveStrongRenaming::Options options;
  options.comparators = renaming::AdaptiveComparatorKind::kHardware;
  renaming::AdaptiveStrongRenaming renaming(options);

  std::mutex print_mu;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each participant needs a Ctx: its step counter + private randomness.
      Ctx ctx(t, /*seed=*/0xC0FFEE + t);

      // A sparse, unique "initial name" — here a hash of the index; in real
      // code std::hash<std::thread::id> works too.
      const std::uint64_t sparse_id = 0x9e3779b97f4a7c15ULL * (t + 1);

      const std::uint64_t name = renaming.rename(ctx, sparse_id);

      std::scoped_lock lock{print_mu};
      std::printf("thread %d: initial id %016llx  ->  name %llu  (%llu steps)\n",
                  t, static_cast<unsigned long long>(sparse_id),
                  static_cast<unsigned long long>(name),
                  static_cast<unsigned long long>(ctx.steps()));
    });
  }
  for (auto& t : threads) t.join();

  std::printf(
      "\nAll %d threads received unique names in 1..%d — a tight, adaptive\n"
      "namespace, independent of how sparse the initial ids were.\n",
      kThreads, kThreads);
  return 0;
}
