// Quickstart: adaptive strong renaming in five minutes, through the public
// API: pick an implementation by spec string, run it on real threads with
// one scenario description, read one metrics contract.
//
//   cmake -B build && cmake --build build --target quickstart
//   ./build/quickstart
#include <cstdio>

#include "api/workload.h"

int main() {
  using namespace renamelib;

  // Any registered implementation would do — swap the spec string to race a
  // different algorithm (see Registry::global().list()). Hardware
  // comparators make the paper's algorithm deterministic and fast on real
  // machines (Sec. 1 Discussion); "adaptive_strong" alone gives the
  // registers-only randomized variant.
  const std::string spec = "adaptive_strong:tas=hw";

  api::Scenario scenario;
  scenario.nproc = 8;                        // eight real threads...
  scenario.backend = api::Backend::kHardware;  // ...not the simulator
  scenario.seed = 0xC0FFEE;

  const api::Run run = api::Workload::run_renaming_spec(spec, scenario);

  for (const auto& op : run.ops) {
    std::printf("thread %d  ->  name %llu  (%llu steps)\n", op.pid,
                static_cast<unsigned long long>(op.value),
                static_cast<unsigned long long>(op.steps));
  }
  std::printf(
      "\nAll %d threads received unique names in 1..%d — a tight, adaptive\n"
      "namespace (mean %.1f steps/op). Registered implementations:\n",
      scenario.nproc, scenario.nproc, run.metrics.mean_op_steps());
  for (const auto& name : api::Registry::global().list()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}
