// Scenario: compacting sparse thread identities into dense array slots.
//
// A classic systems problem the paper's introduction motivates: per-thread
// state (stats counters, hazard-pointer slots, epoch records) wants a dense
// index 0..k-1, but threads arrive with huge sparse ids and unknown k.
// Renaming solves exactly this: the registry below hands each worker a
// dense slot via adaptive strong renaming, then the workers bump per-slot
// counters with zero false sharing and a reader aggregates.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "counting/monotone_counter.h"
#include "renaming/adaptive_strong.h"

namespace {

struct alignas(64) Slot {
  std::atomic<std::uint64_t> work_items{0};
};

class ThreadRegistry {
 public:
  explicit ThreadRegistry(std::size_t max_threads) : slots_(max_threads) {
    renamelib::renaming::AdaptiveStrongRenaming::Options options;
    options.comparators =
        renamelib::renaming::AdaptiveComparatorKind::kHardware;
    renaming_ =
        std::make_unique<renamelib::renaming::AdaptiveStrongRenaming>(options);
  }

  /// Registers the calling thread; returns its dense slot (0-based).
  std::size_t register_thread(renamelib::Ctx& ctx, std::uint64_t sparse_id) {
    const std::uint64_t name = renaming_->rename(ctx, sparse_id);
    return static_cast<std::size_t>(name - 1);  // names are 1..k
  }

  Slot& slot(std::size_t i) { return slots_[i]; }
  std::size_t capacity() const { return slots_.size(); }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& s : slots_) sum += s.work_items.load();
    return sum;
  }

 private:
  std::vector<Slot> slots_;
  std::unique_ptr<renamelib::renaming::AdaptiveStrongRenaming> renaming_;
};

}  // namespace

int main() {
  constexpr int kWorkers = 12;
  constexpr int kItemsPerWorker = 10000;
  ThreadRegistry registry(64);  // provisioned for up to 64 threads

  std::vector<std::size_t> assigned(kWorkers);
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      renamelib::Ctx ctx(w, 1000 + w);
      // Sparse identity: in production, e.g. hash of std::this_thread::get_id().
      const std::uint64_t sparse = 0xABCDEF1234567ULL * (w + 7);
      const std::size_t slot = registry.register_thread(ctx, sparse);
      assigned[w] = slot;
      for (int i = 0; i < kItemsPerWorker; ++i) {
        registry.slot(slot).work_items.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : workers) t.join();

  std::printf("worker -> dense slot assignments:\n");
  for (int w = 0; w < kWorkers; ++w) {
    std::printf("  worker %2d -> slot %zu  (%llu items)\n", w, assigned[w],
                static_cast<unsigned long long>(
                    registry.slot(assigned[w]).work_items.load()));
  }
  std::printf("\ntotal work items: %llu (expected %d)\n",
              static_cast<unsigned long long>(registry.total()),
              kWorkers * kItemsPerWorker);
  std::printf("slots used: %d of %zu provisioned — the namespace adapted to "
              "the actual thread count.\n",
              kWorkers, registry.capacity());
  return registry.total() == static_cast<std::uint64_t>(kWorkers) * kItemsPerWorker
             ? 0
             : 1;
}
