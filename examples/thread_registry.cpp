// Scenario: compacting sparse thread identities into dense array slots.
//
// A classic systems problem the paper's introduction motivates: per-thread
// state (stats counters, hazard-pointer slots, epoch records) wants a dense
// index 0..k-1, but threads arrive with huge sparse ids and unknown k.
// Renaming solves exactly this, and the api::IRenaming facet covers both
// lifetimes of the problem:
//
//   * a STATIC pool registers each worker once — one-shot adaptive strong
//     renaming hands out slots 0..k-1 and the namespace adapts to the
//     actual thread count,
//   * an ELASTIC pool has workers come and go — `longlived` recycles a
//     released worker's slot for the next arrival, so the slot array stays
//     O(max concurrent workers) across unboundedly many worker lifetimes.
#include <atomic>
#include <cstdio>
#include <set>
#include <thread>
#include <vector>

#include "api/registry.h"

namespace {

struct alignas(64) Slot {
  std::atomic<std::uint64_t> work_items{0};
};

/// Dense per-thread slots over any api::IRenaming spec: acquire() on
/// register, release() on unregister (a no-op slot-hold for one-shot specs).
class ThreadRegistry {
 public:
  ThreadRegistry(const std::string& spec, std::size_t max_threads)
      : slots_(max_threads),
        renaming_(renamelib::api::Registry::global().make_renaming(spec)) {}

  /// Registers the calling thread; returns its dense slot (0-based).
  std::size_t register_thread(renamelib::Ctx& ctx) {
    return static_cast<std::size_t>(renaming_->acquire(ctx) - 1);
  }

  /// Unregisters: reusable specs recycle the slot for the next arrival.
  void unregister_thread(renamelib::Ctx& ctx, std::size_t slot) {
    renaming_->release(ctx, static_cast<std::uint64_t>(slot) + 1);
  }

  Slot& slot(std::size_t i) { return slots_[i]; }
  std::size_t capacity() const { return slots_.size(); }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& s : slots_) sum += s.work_items.load();
    return sum;
  }

 private:
  std::vector<Slot> slots_;
  std::unique_ptr<renamelib::api::IRenaming> renaming_;
};

bool static_pool() {
  constexpr int kWorkers = 12;
  constexpr int kItemsPerWorker = 10000;
  // One-shot: every worker registers exactly once, deterministic hardware
  // comparators, names adapt to the actual participant count.
  ThreadRegistry registry("adaptive_strong:tas=hw", 64);

  std::vector<std::size_t> assigned(kWorkers);
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      renamelib::Ctx ctx(w, 1000 + w);
      const std::size_t slot = registry.register_thread(ctx);
      assigned[w] = slot;
      for (int i = 0; i < kItemsPerWorker; ++i) {
        registry.slot(slot).work_items.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : workers) t.join();

  std::printf("static pool: worker -> dense slot assignments:\n");
  for (int w = 0; w < kWorkers; ++w) {
    std::printf("  worker %2d -> slot %zu  (%llu items)\n", w, assigned[w],
                static_cast<unsigned long long>(
                    registry.slot(assigned[w]).work_items.load()));
  }
  std::printf("total work items: %llu (expected %d); slots used: %d of %zu "
              "provisioned — the namespace adapted to the thread count.\n\n",
              static_cast<unsigned long long>(registry.total()),
              kWorkers * kItemsPerWorker, kWorkers, registry.capacity());
  return registry.total() ==
         static_cast<std::uint64_t>(kWorkers) * kItemsPerWorker;
}

bool elastic_pool() {
  constexpr int kWaves = 6;
  constexpr int kWorkersPerWave = 8;
  constexpr int kItemsPerWorker = 1000;
  // Long-lived: workers release their slot on exit, so 48 worker lifetimes
  // reuse the slots of at most 8 concurrent workers.
  ThreadRegistry registry("longlived:cap=64", 64);

  std::set<std::size_t> slots_ever_used;
  std::atomic<std::uint64_t> max_slot{0};
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::size_t> used(kWorkersPerWave);
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkersPerWave; ++w) {
      workers.emplace_back([&, wave, w] {
        renamelib::Ctx ctx(w, 5000 + wave * 100 + w);
        const std::size_t slot = registry.register_thread(ctx);
        used[w] = slot;
        std::uint64_t seen = max_slot.load();
        while (slot > seen && !max_slot.compare_exchange_weak(seen, slot)) {
        }
        for (int i = 0; i < kItemsPerWorker; ++i) {
          registry.slot(slot).work_items.fetch_add(1,
                                                   std::memory_order_relaxed);
        }
        registry.unregister_thread(ctx, slot);
      });
    }
    for (auto& t : workers) t.join();
    slots_ever_used.insert(used.begin(), used.end());
  }

  std::printf("elastic pool: %d worker lifetimes over %d waves used %zu "
              "distinct slots (max slot index %llu of %zu provisioned) — "
              "released slots were recycled.\n",
              kWaves * kWorkersPerWave, kWaves, slots_ever_used.size(),
              static_cast<unsigned long long>(max_slot.load()),
              registry.capacity());
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kWaves) * kWorkersPerWave * kItemsPerWorker;
  std::printf("total work items: %llu (expected %llu)\n",
              static_cast<unsigned long long>(registry.total()),
              static_cast<unsigned long long>(expected));
  // Reuse must actually happen: far fewer distinct slots than lifetimes.
  return registry.total() == expected &&
         slots_ever_used.size() <
             static_cast<std::size_t>(kWaves) * kWorkersPerWave;
}

}  // namespace

int main() {
  const bool a = static_pool();
  const bool b = elastic_pool();
  return (a && b) ? 0 : 1;
}
