// Adversary lab: watch the strong adaptive adversary at work.
//
// Runs a two-process test-and-set under different adversarial schedulers in
// the deterministic simulator and prints the execution traces — the exact
// linearization the adversary chose, the coin flips, and who won. This is
// the model of Sec. 2 made tangible: same code, different adversaries,
// different (but always safe) outcomes.
#include <cstdio>
#include <memory>

#include "sim/executor.h"
#include "tas/two_process_tas.h"

namespace {

void run_under(const char* title,
               std::unique_ptr<renamelib::sim::Adversary> adversary,
               std::uint64_t seed) {
  using namespace renamelib;
  tas::TwoProcessTas tas;
  int wins[2] = {-1, -1};
  sim::RunOptions options;
  options.seed = seed;
  options.record_trace = true;
  auto result = sim::run_simulation(
      2,
      [&](Ctx& ctx) { wins[ctx.pid()] = tas.compete(ctx, ctx.pid()) ? 1 : 0; },
      *adversary, options);

  std::printf("=== %s (seed %llu) ===\n", title,
              static_cast<unsigned long long>(seed));
  std::printf("%s", result.trace.to_string(24).c_str());
  std::printf("outcome: p0 %s, p1 %s | steps: p0=%llu p1=%llu | coin flips: "
              "p0=%llu p1=%llu\n\n",
              wins[0] == 1 ? "WON " : "lost", wins[1] == 1 ? "WON " : "lost",
              static_cast<unsigned long long>(result.procs[0].steps),
              static_cast<unsigned long long>(result.procs[1].steps),
              static_cast<unsigned long long>(result.procs[0].coin_flips),
              static_cast<unsigned long long>(result.procs[1].coin_flips));
}

}  // namespace

int main() {
  using namespace renamelib::sim;
  run_under("round-robin (fair) adversary",
            std::make_unique<RoundRobinAdversary>(), 7);
  run_under("random adversary", std::make_unique<RandomAdversary>(99), 7);
  run_under("obstruction adversary (solo bursts of 6)",
            std::make_unique<ObstructionAdversary>(6), 7);
  run_under("label-starving adversary (stalls 2tas/compete steps of p0... "
            "until p1 is done)",
            std::make_unique<LabelStarvingAdversary>("2tas", 5), 7);

  // Crash adversary: kill process 0 after 2 steps; process 1 must still win.
  {
    using namespace renamelib;
    tas::TwoProcessTas tas;
    int wins[2] = {-1, -1};
    std::vector<std::int64_t> crash_at = {2, -1};
    sim::CrashAdversary adversary(std::make_unique<sim::RoundRobinAdversary>(),
                                  crash_at, 1);
    sim::RunOptions options;
    options.seed = 7;
    options.record_trace = true;
    auto result = sim::run_simulation(
        2,
        [&](Ctx& ctx) { wins[ctx.pid()] = tas.compete(ctx, ctx.pid()) ? 1 : 0; },
        adversary, options);
    std::printf("=== crash adversary (p0 dies after 2 steps) ===\n");
    std::printf("%s", result.trace.to_string(24).c_str());
    std::printf("outcome: p0 %s, p1 %s\n",
                result.procs[0].crashed ? "CRASHED" : "?",
                wins[1] == 1 ? "WON" : "lost");
  }
  return 0;
}
