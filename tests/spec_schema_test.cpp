// Schema-driven conformance sweep: the registry's typed option schemas are
// themselves part of the public contract, so they are tested *generically* —
// the suite iterates Registry::describe() and asserts, for every registered
// entry of every facet, that
//
//   * the catalog covers the entry (describe() == list(), per facet, with a
//     non-empty summary and a valid family/consistency label),
//   * every declared option is accepted at its boundary values (ints at
//     min and max, pow2 ints at their power-of-two endpoints, bools at 0
//     and 1, enums at every choice, nested specs at their default) — the
//     object actually constructs, so a schema range wider than what the
//     factory tolerates cannot ship,
//   * one undeclared key is rejected with the uniform unknown-key error,
//   * specs round-trip canonically: parse(print(s)).print() == print(s),
//     and scrambled key order converges to the same canonical string.
//
// Because the sweep is driven by the schemas, a new registration (or a new
// option on an existing one) is boundary-tested with zero new test code —
// the same leverage the facet conformance suite gives object semantics,
// applied to the configuration surface.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/spec.h"

namespace renamelib::api {
namespace {

/// Constructs `spec` under `entry.facet`; the object's destruction is part
/// of the check (a boundary geometry must not blow up either way).
void expect_constructs(const EntryDescription& entry, const Spec& spec) {
  auto& reg = Registry::global();
  switch (entry.facet) {
    case Facet::kCounter:
      EXPECT_NE(reg.make_counter(spec), nullptr) << spec.print();
      break;
    case Facet::kRenaming:
      EXPECT_NE(reg.make_renaming(spec), nullptr) << spec.print();
      break;
    case Facet::kReadable:
      EXPECT_NE(reg.make_readable(spec), nullptr) << spec.print();
      break;
  }
}

/// One spec per boundary value of `option` (everything else defaulted).
std::vector<Spec> boundary_specs(const EntryDescription& entry,
                                 const OptionSchema& option) {
  std::vector<Spec> out;
  const auto with = [&](std::string value) {
    Spec s(entry.name);
    s.set(option.key, SpecValue(std::move(value)));
    return s;
  };
  switch (option.type) {
    case OptionSchema::Type::kInt:
      out.push_back(with(std::to_string(option.min)));
      out.push_back(with(std::to_string(option.max)));
      break;
    case OptionSchema::Type::kBool:
      out.push_back(with("0"));
      out.push_back(with("1"));
      break;
    case OptionSchema::Type::kEnum:
      for (const auto& choice : option.choices) out.push_back(with(choice));
      break;
    case OptionSchema::Type::kSpec: {
      Spec s(entry.name);
      s.set(option.key, SpecValue(Spec::parse(option.def)));
      out.push_back(std::move(s));
      break;
    }
  }
  return out;
}

class SchemaSweep : public ::testing::TestWithParam<EntryDescription> {};

struct EntryName {
  std::string operator()(
      const ::testing::TestParamInfo<EntryDescription>& info) const {
    std::string out = info.param.name;
    for (char& c : out) {
      if (c == '-') c = '_';
    }
    return out + "_" + facet_name(info.param.facet)[0] +
           std::to_string(static_cast<int>(info.param.facet));
  }
};

TEST_P(SchemaSweep, CatalogEntryIsComplete) {
  const EntryDescription& entry = GetParam();
  EXPECT_FALSE(entry.summary.empty()) << entry.name;
  EXPECT_NE(std::string(family_name(entry.family)), "?") << entry.name;
  if (entry.facet == Facet::kRenaming) {
    // The renaming facet's contract is uniqueness/tightness, not a
    // consistency level.
    EXPECT_TRUE(entry.consistency.empty()) << entry.name;
  } else {
    EXPECT_FALSE(entry.consistency.empty()) << entry.name;
    EXPECT_NE(entry.consistency, "?") << entry.name;
  }
  for (const auto& option : entry.options) {
    EXPECT_FALSE(option.doc.empty()) << entry.name << ":" << option.key;
    EXPECT_FALSE(option.type_text().empty()) << entry.name << ":" << option.key;
  }
  // describe(facet, name) resolves the same entry.
  const EntryDescription one =
      Registry::global().describe(entry.facet, entry.name);
  EXPECT_EQ(one.name, entry.name);
  EXPECT_EQ(one.options.size(), entry.options.size());
}

TEST_P(SchemaSweep, EveryDeclaredOptionAcceptsItsBoundaryValues) {
  const EntryDescription& entry = GetParam();
  // The bare default spec must construct...
  expect_constructs(entry, Spec(entry.name));
  // ...and so must every option at each of its boundary values: the schema
  // *is* the promise that these geometries work.
  for (const auto& option : entry.options) {
    for (const Spec& spec : boundary_specs(entry, option)) {
      SCOPED_TRACE(spec.print());
      EXPECT_NO_THROW(expect_constructs(entry, spec));
    }
  }
}

TEST_P(SchemaSweep, OneUndeclaredKeyIsRejected) {
  const EntryDescription& entry = GetParam();
  Spec spec(entry.name);
  spec.set("zz_not_a_key", SpecValue("1"));
  try {
    Registry::global().validate(entry.facet, spec);
    FAIL() << entry.name << ": undeclared key accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("zz_not_a_key"), std::string::npos) << msg;
    EXPECT_NE(msg.find("valid keys"), std::string::npos) << msg;
  }
}

TEST_P(SchemaSweep, SpecsRoundTripCanonically) {
  const EntryDescription& entry = GetParam();
  // A spec exercising every declared option at its default.
  Spec all(entry.name);
  for (const auto& option : entry.options) {
    if (option.type == OptionSchema::Type::kSpec) {
      all.set(option.key, SpecValue(Spec::parse(option.def)));
    } else {
      all.set(option.key, SpecValue(option.def));
    }
  }
  Registry::global().validate(entry.facet, all);
  const std::string canonical = all.print();
  // parse(print) is a fixed point...
  EXPECT_EQ(Spec::parse(canonical).print(), canonical) << entry.name;
  // ...and key order does not matter: feeding the options back in reverse
  // converges to the same canonical string.
  Spec reversed(entry.name);
  for (auto it = all.options().rbegin(); it != all.options().rend(); ++it) {
    reversed.set(it->first, it->second);
  }
  EXPECT_EQ(reversed.print(), canonical) << entry.name;
}

INSTANTIATE_TEST_SUITE_P(Registry, SchemaSweep,
                         ::testing::ValuesIn(Registry::global().describe()),
                         EntryName{});

// ----------------------------------------------------- catalog coverage ---

TEST(RegistryDescribe, CoversEveryRegisteredEntryOfEveryFacet) {
  const auto& reg = Registry::global();
  std::size_t total = 0;
  for (const Facet facet :
       {Facet::kCounter, Facet::kRenaming, Facet::kReadable}) {
    const auto names = reg.list(facet);
    const auto entries = reg.describe(facet);
    ASSERT_EQ(entries.size(), names.size()) << facet_name(facet);
    for (std::size_t i = 0; i < names.size(); ++i) {
      EXPECT_EQ(entries[i].name, names[i]) << facet_name(facet);
      EXPECT_EQ(entries[i].facet, facet);
    }
    total += names.size();
  }
  EXPECT_EQ(reg.describe().size(), total);
  EXPECT_EQ(reg.list().size(), total);
}

TEST(RegistryDescribe, RenamingFlagsMatchTheInfoTable) {
  const auto& reg = Registry::global();
  for (const auto& entry : reg.describe(Facet::kRenaming)) {
    const RenamingInfo* info = reg.find_renaming(entry.name);
    ASSERT_NE(info, nullptr) << entry.name;
    EXPECT_EQ(entry.adaptive, info->adaptive) << entry.name;
    EXPECT_EQ(entry.reusable, info->reusable) << entry.name;
  }
}

TEST(RegistryDescribe, UnknownNameThrowsTheUniformError) {
  EXPECT_THROW(Registry::global().describe(Facet::kCounter, "no_such"),
               std::invalid_argument);
  try {
    Registry::global().describe(Facet::kCounter, "stripd");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'striped'?"),
              std::string::npos)
        << e.what();
  }
}

// -------------------------------------------------------- schema sanity ---

TEST(OptionSchema, RegistrationRejectsMalformedSchemas) {
  Registry reg;  // scratch registry: registration-time checks fire in add_*
  // Enum default outside its choices.
  EXPECT_THROW(
      reg.add_counter(CounterInfo{
          .name = "bad_enum",
          .options = {OptionSchema::choice("tas", "nope", {"rnd", "hw"}, "d")},
          .make = [](const Spec&) -> std::unique_ptr<ICounter> {
            return nullptr;
          }}),
      std::invalid_argument);
  // Int default outside its range.
  EXPECT_THROW(reg.add_counter(CounterInfo{
                   .name = "bad_range",
                   .options = {OptionSchema::u64("n", 0, 1, 8, "d")},
                   .make = [](const Spec&) -> std::unique_ptr<ICounter> {
                     return nullptr;
                   }}),
               std::invalid_argument);
  // Duplicate option keys.
  EXPECT_THROW(reg.add_counter(CounterInfo{
                   .name = "bad_dup",
                   .options = {OptionSchema::u64("n", 1, 1, 8, "d"),
                               OptionSchema::u64("n", 2, 1, 8, "d")},
                   .make = [](const Spec&) -> std::unique_ptr<ICounter> {
                     return nullptr;
                   }}),
               std::invalid_argument);
  // A well-formed schema registers fine in the scratch registry.
  EXPECT_NO_THROW(reg.add_counter(CounterInfo{
      .name = "ok",
      .options = {OptionSchema::u64("n", 4, 1, 8, "d")},
      .make = [](const Spec&) -> std::unique_ptr<ICounter> {
        return nullptr;
      }}));
}

}  // namespace
}  // namespace renamelib::api
