// Tests for sorting networks: generators (Batcher odd-even, bitonic,
// insertion, transposition) against the zero-one principle, the Knuth
// standardization, lazy-vs-materialized odd-even equivalence, depth/size
// formulas, and the AKS depth model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include "core/rng.h"
#include "sortnet/aks_model.h"
#include "sortnet/bitonic.h"
#include "sortnet/comparator_network.h"
#include "sortnet/insertion.h"
#include "sortnet/odd_even_merge.h"
#include "sortnet/verify.h"

namespace renamelib::sortnet {
namespace {

TEST(ComparatorNetwork, ApplySortsPair) {
  ComparatorNetwork net(2);
  net.add(1, 0);  // order-insensitive add
  std::vector<int> v{9, 3};
  net.apply(v);
  EXPECT_EQ(v, (std::vector<int>{3, 9}));
  EXPECT_EQ(net.depth(), 1u);
  EXPECT_EQ(net.size(), 1u);
}

TEST(ComparatorNetwork, AppendShiftsWires) {
  ComparatorNetwork inner(2);
  inner.add(0, 1);
  ComparatorNetwork outer(4);
  outer.append(inner, 2);
  EXPECT_EQ(outer.comparator(0), (Comparator{2, 3}));
}

TEST(ComparatorNetwork, DepthAndLayers) {
  ComparatorNetwork net(4);
  net.add(0, 1);
  net.add(2, 3);  // parallel with previous
  net.add(1, 2);  // depends on both
  EXPECT_EQ(net.depth(), 2u);
  const auto layers = net.layer_of_comparators();
  EXPECT_EQ(layers, (std::vector<std::size_t>{0, 0, 1}));
}

TEST(ComparatorNetwork, PerWireRouting) {
  ComparatorNetwork net(3);
  net.add(0, 1);
  net.add(1, 2);
  const auto pw = net.per_wire();
  EXPECT_EQ(pw[0], (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(pw[1], (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(pw[2], (std::vector<std::uint32_t>{1}));
}

class SortsAllWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortsAllWidths, OddEvenMergeExhaustive) {
  const std::size_t width = GetParam();
  EXPECT_TRUE(is_sorting_network_exhaustive(odd_even_merge_sort(width)))
      << "width " << width;
}

TEST_P(SortsAllWidths, InsertionExhaustive) {
  const std::size_t width = GetParam();
  EXPECT_TRUE(is_sorting_network_exhaustive(insertion_sort(width)));
}

TEST_P(SortsAllWidths, TranspositionExhaustive) {
  const std::size_t width = GetParam();
  EXPECT_TRUE(is_sorting_network_exhaustive(odd_even_transposition(width)));
}

INSTANTIATE_TEST_SUITE_P(Widths, SortsAllWidths,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12,
                                           13, 15, 16));

class BitonicWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitonicWidths, StandardizedBitonicSorts) {
  const std::size_t width = GetParam();
  const ComparatorNetwork net = bitonic_sort(width);
  EXPECT_TRUE(is_sorting_network_exhaustive(net)) << "width " << width;
  // Standardization preserves size: n/2 * log(n) * (log(n)+1) / 2.
  const std::size_t lg = static_cast<std::size_t>(std::log2(width));
  EXPECT_EQ(net.size(), width * lg * (lg + 1) / 4);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitonicWidths, ::testing::Values(2, 4, 8, 16));

TEST(Bitonic, LargeWidthRandomized) {
  const ComparatorNetwork net = bitonic_sort(128);
  EXPECT_TRUE(is_sorting_network_randomized(net, 3000, 42));
}

TEST(OddEven, LargeWidthRandomized) {
  for (std::size_t width : {31, 64, 100, 128, 200, 256}) {
    EXPECT_TRUE(
        is_sorting_network_randomized(odd_even_merge_sort(width), 2000, 7))
        << "width " << width;
  }
}

TEST(OddEven, SortsRandomPermutations) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t width = 2 + rng.below(120);
    auto net = odd_even_merge_sort(width);
    std::vector<std::uint64_t> v(width);
    std::iota(v.begin(), v.end(), 0);
    // Fisher-Yates with our RNG.
    for (std::size_t i = width - 1; i > 0; --i) {
      std::swap(v[i], v[rng.below(i + 1)]);
    }
    net.apply(v);
    EXPECT_TRUE(std::is_sorted(v.begin(), v.end())) << "width " << width;
  }
}

TEST(Verify, DetectsNonSortingNetwork) {
  ComparatorNetwork net(4);
  net.add(0, 1);
  net.add(2, 3);  // misses cross pairs
  EXPECT_FALSE(is_sorting_network_exhaustive(net));
  EXPECT_FALSE(is_sorting_network_randomized(net, 200, 1));
  EXPECT_NE(find_unsorted_witness(net), UINT64_MAX);
}

TEST(Verify, WitnessIsNoneForSortingNetwork) {
  EXPECT_EQ(find_unsorted_witness(odd_even_merge_sort(8)), UINT64_MAX);
}

// ------------------------------------------------ lazy == materialized ---

class LazyEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LazyEquivalence, LazyMatchesMaterializedComparators) {
  const std::size_t width = GetParam();
  const ComparatorNetwork net = odd_even_merge_sort(width);
  const LazyOddEven lazy(width);

  // Collect lazy comparators phase by phase (sorted by lo within a phase,
  // which matches generation order).
  std::vector<Comparator> lazy_comps;
  for (std::uint32_t phase = 0; phase < lazy.phase_count(); ++phase) {
    std::vector<Comparator> in_phase;
    for (std::uint64_t wire = 0; wire < width; ++wire) {
      const auto hit = lazy.hit(wire, phase);
      if (hit && hit->is_lo) {
        in_phase.push_back(Comparator{static_cast<std::uint32_t>(wire),
                                      static_cast<std::uint32_t>(hit->partner)});
      }
    }
    std::sort(in_phase.begin(), in_phase.end(),
              [](const Comparator& a, const Comparator& b) { return a.lo < b.lo; });
    lazy_comps.insert(lazy_comps.end(), in_phase.begin(), in_phase.end());
  }
  ASSERT_EQ(lazy_comps.size(), net.size()) << "width " << width;
  for (std::size_t i = 0; i < lazy_comps.size(); ++i) {
    EXPECT_EQ(lazy_comps[i], net.comparator(i)) << "index " << i;
  }
}

TEST_P(LazyEquivalence, HiSideQueriesAgree) {
  const std::size_t width = GetParam();
  const LazyOddEven lazy(width);
  for (std::uint32_t phase = 0; phase < lazy.phase_count(); ++phase) {
    for (std::uint64_t wire = 0; wire < width; ++wire) {
      const auto hit = lazy.hit(wire, phase);
      if (!hit) continue;
      // The partner must see the mirrored hit.
      const auto mirror = lazy.hit(hit->partner, phase);
      ASSERT_TRUE(mirror.has_value());
      EXPECT_EQ(mirror->partner, wire);
      EXPECT_NE(mirror->is_lo, hit->is_lo);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LazyEquivalence,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 12, 16, 24, 32, 63,
                                           64, 100));

TEST(LazyOddEven, PhaseParamsEnumerateBatcherOrder) {
  const LazyOddEven lazy(8);  // padded 8 => t=3 => 6 phases
  ASSERT_EQ(lazy.phase_count(), 6u);
  const std::pair<std::uint64_t, std::uint64_t> expected[] = {
      {1, 1}, {2, 2}, {2, 1}, {4, 4}, {4, 2}, {4, 1}};
  for (std::uint32_t i = 0; i < 6; ++i) {
    const auto ph = lazy.phase_params(i);
    EXPECT_EQ(ph.p, expected[i].first);
    EXPECT_EQ(ph.k, expected[i].second);
  }
}

TEST(LazyOddEven, HugeWidthQueriesWork) {
  // The whole point: queries at width 2^32 without materialization.
  const LazyOddEven lazy(1ULL << 32);
  EXPECT_EQ(lazy.phase_count(), 32u * 33 / 2);
  // Wire 0 meets a comparator in the very first phase (p=1,k=1: pair (0,1)).
  const auto hit = lazy.hit(0, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->partner, 1u);
  EXPECT_TRUE(hit->is_lo);
}

// ------------------------------------------------------------ AKS model ---

TEST(AksModel, DepthIsLogarithmicAndHugeConstant) {
  AksModel model;
  EXPECT_DOUBLE_EQ(model.depth(2), model.depth_constant);
  EXPECT_NEAR(model.depth(1024) / model.depth(2), 10.0, 1e-9);
  // Batcher beats the AKS model at any practical width.
  EXPECT_LT(batcher_depth(1 << 20), model.depth(1 << 20));
  EXPECT_EQ(model.batcher_crossover(), SIZE_MAX);
}

TEST(AksModel, TinyConstantCrossover) {
  AksModel model;
  model.depth_constant = 3;  // hypothetical great AKS
  // t > 2a-1 = 5 => crossover at 2^5.
  EXPECT_EQ(model.batcher_crossover(), 32u);
  EXPECT_GT(batcher_depth(1 << 10), model.depth(1 << 10));
}

TEST(BatcherDepth, MatchesMaterializedNetworks) {
  for (std::size_t width : {4, 8, 16, 32, 64}) {
    EXPECT_EQ(batcher_depth(width),
              static_cast<double>(odd_even_merge_sort(width).depth()))
        << "width " << width;
  }
}

TEST(Standardize, HandlesReversedSequences) {
  // A deliberately reversed 2-wire "network" still sorts after
  // standardization.
  std::vector<DirectedComparator> comps{{1, 0}, {0, 1}};
  const ComparatorNetwork net = standardize(2, comps);
  EXPECT_TRUE(is_sorting_network_exhaustive(net));
}

}  // namespace
}  // namespace renamelib::sortnet
