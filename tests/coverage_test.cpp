// Edge-case and diagnostics coverage across modules: the small surfaces the
// primary suites do not reach (string rendering, dot output, validators,
// counters reset, degenerate widths, single-process simulations, option
// bounds).
#include <gtest/gtest.h>

#include <sstream>

#include "core/ctx.h"
#include "core/register.h"
#include "counting/max_register.h"
#include "renaming/renaming_network.h"
#include "renaming/validate.h"
#include "sim/executor.h"
#include "sortnet/comparator_network.h"
#include "sortnet/insertion.h"
#include "sortnet/odd_even_merge.h"
#include "sortnet/verify.h"
#include "splitter/splitter_tree.h"
#include "tas/rat_race_tas.h"

namespace renamelib {
namespace {

TEST(OpKind, AllKindsHaveNames) {
  EXPECT_STREQ(to_string(OpKind::kLoad), "load");
  EXPECT_STREQ(to_string(OpKind::kStore), "store");
  EXPECT_STREQ(to_string(OpKind::kCas), "cas");
  EXPECT_STREQ(to_string(OpKind::kExchange), "exchange");
  EXPECT_STREQ(to_string(OpKind::kFetchAdd), "fetch_add");
  EXPECT_STREQ(to_string(OpKind::kFetchOr), "fetch_or");
  EXPECT_STREQ(to_string(OpKind::kTestAndSet), "test_and_set");
}

TEST(Ctx, ResetCountersClearsEverything) {
  Ctx ctx(0, 1);
  Register<int> reg(0);
  reg.store(ctx, 1);
  (void)ctx.rng().coin();
  reg.store(ctx, 2);
  EXPECT_GT(ctx.steps(), 0u);
  ctx.reset_counters();
  EXPECT_EQ(ctx.steps(), 0u);
  EXPECT_EQ(ctx.shared_steps(), 0u);
  EXPECT_EQ(ctx.coin_flips(), 0u);
}

TEST(Ctx, CoinBatchBoundariesAreSharedOps) {
  Ctx ctx(0, 1);
  Register<int> reg(0);
  // Coins with no interleaved shared op: one batch.
  (void)ctx.rng().coin();
  (void)ctx.rng().coin();
  EXPECT_EQ(ctx.steps(), 1u);
  reg.load(ctx);
  (void)ctx.rng().coin();
  EXPECT_EQ(ctx.steps(), 3u);  // batch + load + new batch
}

TEST(Simulator, SingleProcessRunsFine) {
  Register<int> reg(0);
  sim::RoundRobinAdversary adversary;
  auto result = sim::run_simulation(
      1, [&](Ctx& ctx) { reg.store(ctx, 7); }, adversary);
  EXPECT_EQ(result.finished_count(), 1u);
  EXPECT_EQ(reg.peek(), 7);
}

TEST(Simulator, BodyWithNoSharedStepsFinishes) {
  sim::RoundRobinAdversary adversary;
  auto result = sim::run_simulation(3, [&](Ctx&) { /* pure local */ }, adversary);
  EXPECT_EQ(result.finished_count(), 3u);
  EXPECT_EQ(result.total_granted_steps, 0u);
}

TEST(Simulator, MixedFinishersAndLoopers) {
  // One process finishes immediately; others take steps. The scheduler must
  // not wait on the finished one.
  Register<int> reg(0);
  sim::RoundRobinAdversary adversary;
  auto result = sim::run_simulation(
      3,
      [&](Ctx& ctx) {
        if (ctx.pid() == 0) return;
        for (int i = 0; i < 5; ++i) reg.fetch_add(ctx, 1);
      },
      adversary);
  EXPECT_EQ(result.finished_count(), 3u);
  EXPECT_EQ(reg.peek(), 10);
}

TEST(ComparatorNetwork, DotOutputMentionsAllWires) {
  auto net = sortnet::insertion_sort(3);
  const std::string dot = net.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("in0"), std::string::npos);
  EXPECT_NE(dot.find("in2"), std::string::npos);
}

TEST(ComparatorNetwork, TracePathLengthCountsTouches) {
  sortnet::ComparatorNetwork net(3);
  net.add(0, 1);
  net.add(1, 2);
  EXPECT_EQ(net.trace_path_length(0), 1u);
  EXPECT_EQ(net.trace_path_length(1), 2u);
  EXPECT_EQ(net.trace_path_length(2), 1u);
}

TEST(ComparatorNetwork, WidthOneIsTriviallySorted) {
  sortnet::ComparatorNetwork net(1);
  EXPECT_EQ(net.depth(), 0u);
  std::vector<int> v{5};
  net.apply(v);
  EXPECT_EQ(v[0], 5);
  EXPECT_TRUE(sortnet::is_sorting_network_exhaustive(net));
}

TEST(Validate, EmptySetsAreValid) {
  EXPECT_TRUE(renaming::check_unique({}).ok);
  EXPECT_TRUE(renaming::check_tight({}, 0).ok);
}

TEST(Validate, ErrorMessagesNameTheProblem) {
  const auto dup = renaming::check_unique({3, 3});
  EXPECT_NE(dup.error.find("duplicate"), std::string::npos);
  const auto range = renaming::check_tight({5}, 4);
  EXPECT_NE(range.error.find("exceeds"), std::string::npos);
}

TEST(MaxRegister, CapacityRoundsToPowerOfTwo) {
  counting::MaxRegister reg(10);  // rounds to 16
  EXPECT_EQ(reg.capacity(), 16u);
  Ctx ctx(0, 1);
  reg.write_max(ctx, 15);
  EXPECT_EQ(reg.read(ctx), 15u);
}

TEST(MaxRegister, CapacityTwoDegenerate) {
  counting::MaxRegister reg(2);
  Ctx ctx(0, 1);
  EXPECT_EQ(reg.read(ctx), 0u);
  reg.write_max(ctx, 1);
  EXPECT_EQ(reg.read(ctx), 1u);
}

TEST(SplitterTree, NodeAtUnmaterializedReturnsNull) {
  splitter::SplitterTree tree;
  EXPECT_EQ(tree.node_at(2), nullptr);  // children not created yet
  EXPECT_NE(tree.node_at(1), nullptr);  // root always exists
}

TEST(RatRace, MaterializationGrowsWithContention) {
  tas::RatRaceTas solo_tas;
  Ctx solo(0, 1);
  (void)solo_tas.test_and_set(solo);
  const std::size_t solo_nodes = solo_tas.materialized();

  tas::RatRaceTas busy_tas;
  sim::RandomAdversary adversary(5);
  (void)sim::run_simulation(
      16, [&](Ctx& ctx) { (void)busy_tas.test_and_set(ctx); }, adversary);
  EXPECT_GE(busy_tas.materialized(), solo_nodes);
}

TEST(RenamingNetwork, RejectsOutOfRangePort) {
  renaming::RenamingNetwork net(sortnet::odd_even_merge_sort(8));
  EXPECT_EQ(net.initial_namespace(), 8u);
  Ctx ctx(0, 1);
  EXPECT_DEATH((void)net.rename(ctx, 9), "initial name out of");
}

TEST(Register, PeekPokeAreQuiescentAndUncounted) {
  Register<int> reg(1);
  Ctx ctx(0, 1);
  reg.poke(5);
  EXPECT_EQ(reg.peek(), 5);
  EXPECT_EQ(ctx.shared_steps(), 0u);
}

TEST(Trace, EmptyTraceRenders) {
  sim::Trace trace;
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.steps_of(0), 0u);
  std::ostringstream os;
  os << trace;
  EXPECT_TRUE(os.str().empty());
}

TEST(Trace, TruncatesLongListings) {
  sim::Trace trace;
  for (int i = 0; i < 300; ++i) trace.record_step(0, StepInfo{});
  const std::string s = trace.to_string(10);
  EXPECT_NE(s.find("more"), std::string::npos);
}

}  // namespace
}  // namespace renamelib
