// Escrow lease broker: unit protocol checks plus the crash-reclaim suite.
//
//   * broker protocol — range serving order, watermark advances, saturation
//     on a bounded inner dispenser, pool escrow round-trips,
//   * reclaim safety — seizing a live-but-idle holder must never duplicate
//     a position (false positives are free by construction),
//   * kill-mid-refill (CrashAdversary) — victims crash holding partially
//     drained leases; survivors keep uniqueness, quiescent reclaim returns
//     every unreturned range to the pool, and churn drains to holders()==0.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include "api/leases.h"
#include "api/registry.h"
#include "api/workload.h"
#include "lease/lease_broker.h"

namespace renamelib::lease {
namespace {

using api::Backend;
using api::Registry;
using api::Scenario;
using api::Workload;

/// Broker over a trivial meta-level ticket source (unit tests only; the
/// simulator suites below mint through registered inner dispensers).
LeaseBroker::Options unit_options(std::uint32_t quota, std::uint32_t window) {
  LeaseBroker::Options o;
  o.procs = 4;
  o.quota = quota;
  o.window = window;
  o.pool_slots = 4;
  o.reclaim_period = 0;  // explicit reclaim() only
  return o;
}

TEST(LeaseBroker, ServesEachLeasedRangeInOrder) {
  std::atomic<std::uint64_t> tickets{0};
  LeaseBroker broker(unit_options(8, 2),
                     [&](Ctx&) { return tickets.fetch_add(1); });
  Ctx ctx(0, 7);
  // Positions stream in-order within a range, ranges in mint order.
  for (std::uint64_t i = 0; i < 24; ++i) {
    EXPECT_EQ(broker.serve(ctx), i);
  }
  const auto s = broker.stats();
  EXPECT_EQ(s.local_serves, 24u);
  EXPECT_EQ(s.refills, 3u);
  EXPECT_EQ(s.minted, 3u);
  EXPECT_EQ(s.pool_grants, 0u);
  // quota 8, window 2: the install grants 2, then 3 advances per lease.
  EXPECT_EQ(s.advances, 9u);
}

TEST(LeaseBroker, DistinctPidsServeDisjointRanges) {
  std::atomic<std::uint64_t> tickets{0};
  LeaseBroker broker(unit_options(4, 4),
                     [&](Ctx&) { return tickets.fetch_add(1); });
  Ctx a(0, 1), b(1, 2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(seen.insert(broker.serve(a)).second);
    EXPECT_TRUE(seen.insert(broker.serve(b)).second);
  }
  // 16 unique positions out of 4 leased ranges, nothing beyond them.
  EXPECT_EQ(*seen.rbegin(), 15u);
}

TEST(LeaseBroker, SaturatesWhenTheInnerDispenserRunsOut) {
  std::atomic<std::uint64_t> tickets{0};
  LeaseBroker::Options o = unit_options(4, 4);
  o.ticket_limit = 2;  // bounded inner: tickets 0 and 1, then repeats
  LeaseBroker broker(o, [&](Ctx&) {
    const std::uint64_t t = tickets.fetch_add(1);
    return t < 2 ? t : 1;  // saturating inner keeps returning its last value
  });
  Ctx ctx(0, 3);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(broker.serve(ctx), i);
  // Ticket 1 is indistinguishable from inner saturation, so the broker pins
  // the saturating value instead of risking duplicate positions.
  EXPECT_EQ(broker.serve(ctx), 7u);
  EXPECT_EQ(broker.serve(ctx), 7u);
}

TEST(LeaseBroker, QuiescentDoubleReclaimSeizesPartialLeases) {
  std::atomic<std::uint64_t> tickets{0};
  LeaseBroker broker(unit_options(8, 2),
                     [&](Ctx&) { return tickets.fetch_add(1); });
  Ctx holder(0, 5), reclaimer(1, 6);
  // Drain 3 of 8 positions: granted watermark sits at 4 (install 2 + one
  // advance of 2), tail [4, 8) still escrowed in the slot.
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(broker.serve(holder), i);
  // Scan 1 records the slot word, scan 2 sees it unchanged and seizes.
  EXPECT_EQ(broker.reclaim(reclaimer), 0u);
  EXPECT_EQ(broker.reclaim(reclaimer), 1u);
  const auto s = broker.stats();
  EXPECT_EQ(s.reclaimed_ranges, 1u);
  EXPECT_EQ(s.reclaimed_positions, 4u);
  EXPECT_EQ(s.dropped_ranges, 0u);
  // The seized tail serves the next refill before any fresh mint.
  EXPECT_EQ(broker.serve(reclaimer), 4u);
  EXPECT_EQ(broker.stats().pool_grants, 1u);
  EXPECT_EQ(broker.stats().minted, 1u);
}

TEST(LeaseBroker, SeizingALiveHolderNeverDuplicatesPositions) {
  std::atomic<std::uint64_t> tickets{0};
  LeaseBroker broker(unit_options(8, 2),
                     [&](Ctx&) { return tickets.fetch_add(1); });
  Ctx holder(0, 5), reclaimer(1, 6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 3; ++i) seen.insert(broker.serve(holder));
  // False-positive seizure: the holder is idle, not crashed.
  (void)broker.reclaim(reclaimer);
  ASSERT_EQ(broker.reclaim(reclaimer), 1u);
  // The live holder keeps its granted window [cursor, granted), then its
  // next advance fails (epoch moved) and it refills — every position still
  // unique across both pids, the seized tail included.
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(seen.insert(broker.serve(holder)).second) << "i=" << i;
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(seen.insert(broker.serve(reclaimer)).second) << "i=" << i;
  }
}

TEST(LeaseBroker, PoolOverflowDropsInsteadOfBlocking) {
  std::atomic<std::uint64_t> tickets{0};
  LeaseBroker::Options o = unit_options(8, 2);
  o.pool_slots = 1;
  LeaseBroker broker(o, [&](Ctx&) { return tickets.fetch_add(1); });
  Ctx a(0, 1), b(1, 2), c(2, 3), reclaimer(3, 4);
  // Three partially drained leases, one pool slot: two seizures must drop.
  (void)broker.serve(a);
  (void)broker.serve(b);
  (void)broker.serve(c);
  (void)broker.reclaim(reclaimer);
  EXPECT_EQ(broker.reclaim(reclaimer), 3u);
  const auto s = broker.stats();
  EXPECT_EQ(s.reclaimed_ranges, 3u);
  EXPECT_EQ(s.dropped_ranges, 2u);
}

// --------------------------------------------------- kill-mid-refill suite ---

/// Crash scenario whose thresholds reach past the refill steps (mint +
/// install), so seed-chosen victims die *holding* partially drained leases,
/// not just before ever installing one.
Scenario crash_scenario(int nproc, int ops, std::uint64_t seed,
                        std::uint64_t crash_step_max = 6) {
  Scenario s;
  s.nproc = nproc;
  s.ops_per_proc = ops;
  s.backend = Backend::kSimulated;
  s.seed = seed;
  s.crashes.max_crashes = 2;
  s.crashes.crash_step_max = crash_step_max;
  return s;
}

TEST(LeaseCrashReclaim, VictimsLeasesAreSeizedAndReissuedAfterCrashStorm) {
  // quota 8 / window 2 over six pids; reclaim=2 also exercises in-run scans
  // under the adversary. Victims crash mid-lease; survivors' and victims'
  // committed values stay unique, and quiescent double-reclaim returns every
  // unreturned tail to the pool, where a fresh pid can be served from it.
  std::uint64_t storms_with_seizures = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto counter = Registry::global().make_counter(
        "lease:quota=8,window=2,procs=8,reclaim=2,inner=[atomic_fai]");
    auto* adapter = dynamic_cast<api::LeasedCounterAdapter*>(counter.get());
    ASSERT_NE(adapter, nullptr);

    const Scenario s = crash_scenario(6, 8, seed);
    const api::Run run = Workload(s).run(*counter);
    ASSERT_EQ(run.crashed_procs, 2u) << "seed=" << seed;

    const std::uint64_t attempted =
        static_cast<std::uint64_t>(s.nproc) * s.ops_per_proc;
    std::set<std::uint64_t> seen;
    for (const std::uint64_t v : run.values()) {
      ASSERT_TRUE(seen.insert(v).second)
          << "seed=" << seed << ": duplicate value " << v;
      ASSERT_LT(v, attempted * 8) << "seed=" << seed;
    }

    // Quiescent reclaim: two scans seize every partially drained lease —
    // the crashed holders' in-flight ranges included.
    Ctx quiescent(7, 100 + seed);
    (void)adapter->impl().reclaim(quiescent);
    (void)adapter->impl().reclaim(quiescent);
    const auto stats = adapter->impl().stats();
    if (stats.reclaimed_ranges > 0) storms_with_seizures += 1;

    // A third scan at quiescence finds nothing left to seize.
    EXPECT_EQ(adapter->impl().reclaim(quiescent), 0u) << "seed=" << seed;

    // Reissue: a fresh pid's serves must come from escrowed ranges (no new
    // mint while the pool is stocked) and stay unique against everything
    // the run handed out.
    if (stats.reclaimed_positions > stats.dropped_ranges * 8) {
      const std::uint64_t minted_before = stats.minted;
      const std::uint64_t v = adapter->impl().serve(quiescent);
      EXPECT_TRUE(seen.insert(v).second) << "seed=" << seed;
      EXPECT_EQ(adapter->impl().stats().minted, minted_before)
          << "seed=" << seed << ": refill minted despite a stocked pool";
    }
  }
  // Thresholds in [1, 6] reach past mint+install for most victims: across
  // six storms at least one lease must have died partially drained.
  EXPECT_GT(storms_with_seizures, 0u);
}

TEST(LeaseCrashReclaim, ChurnDrainsToZeroHoldersUnderCrashes) {
  // Renaming facet, acquire/release churn under crash injection. A victim
  // can only die inside an acquire's shared steps (release is pid-private),
  // so its held count never leaks: after the run every name is back on a
  // free stack and holders() is exactly zero.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto obj = Registry::global().make_renaming(
        "lease:quota=4,procs=8,reclaim=0,inner=[longlived:cap=64]");
    auto* adapter = dynamic_cast<api::LeasedRenamingAdapter*>(obj.get());
    ASSERT_NE(adapter, nullptr);

    // Churn acquires are zero-step after the first (free-stack pops), so
    // thresholds must land inside the first acquire's refill steps — the
    // literal kill-mid-refill schedule.
    const Scenario s = crash_scenario(6, 12, seed, /*crash_step_max=*/3);
    const api::Run run = Workload(s).run_ops([&obj](Ctx& ctx) {
      const std::uint64_t n = obj->acquire(ctx);
      obj->release(ctx, n);
      return n;
    });
    ASSERT_EQ(run.crashed_procs, 2u) << "seed=" << seed;

    EXPECT_EQ(obj->holders(), 0u) << "seed=" << seed;
    // Names recycle through the pid-private free stacks and stay within the
    // quota-scaled inner bound.
    const auto values = run.values();
    const std::set<std::uint64_t> distinct(values.begin(), values.end());
    EXPECT_LT(distinct.size(), values.size()) << "seed=" << seed;
    for (const std::uint64_t v : values) {
      EXPECT_GE(v, 1u) << "seed=" << seed;
      EXPECT_LE(v, 4u * 64u) << "seed=" << seed;
    }
  }
}

TEST(LeaseCrashReclaim, HoldAllAcquiresStayUniqueUnderCrashes) {
  // Hold-all under crashes: survivors' names unique and quota-bounded, and
  // holders() counts exactly the completed acquires (victims die inside an
  // acquire, never between the serve and the held-count bump).
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto obj = Registry::global().make_renaming(
        "lease:quota=4,procs=8,reclaim=0,inner=[longlived:cap=64]");
    const Scenario s = crash_scenario(6, 4, seed);
    const api::Run run = Workload(s).run(*obj);
    ASSERT_EQ(run.crashed_procs, 2u) << "seed=" << seed;

    const auto values = run.values();
    const std::set<std::uint64_t> distinct(values.begin(), values.end());
    EXPECT_EQ(distinct.size(), values.size()) << "seed=" << seed;
    EXPECT_EQ(obj->holders(), values.size()) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace renamelib::lease
