// Unit tests for the sharded counter family (src/sharded): striped counter
// statistic + dispenser modes, diffracting-tree routing, and the shared
// elimination layer. Registry-level conformance (dense prefixes under both
// backends across the spec sweep) lives in api_conformance_test.cpp; this
// file checks the native-object contracts the facade does not see —
// read-monotonicity of the striped combine, exact sequential value order,
// leaf routing, capacity composition, and elimination fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "api/registry.h"
#include "api/sharded_counters.h"
#include "api/workload.h"
#include "sharded/diffracting_tree.h"
#include "sharded/elimination.h"
#include "sharded/striped_counter.h"

namespace renamelib::sharded {
namespace {

// ------------------------------------------------------- striped counter ---

TEST(StripedCounter, SequentialNextHandsOutConsecutiveValues) {
  for (const std::size_t stripes : {1u, 3u, 8u}) {
    StripedCounter c({.stripes = stripes});
    Ctx ctx(0, 7);
    for (std::uint64_t i = 0; i < 50; ++i) {
      EXPECT_EQ(c.next(ctx), i) << "stripes=" << stripes;
    }
  }
}

TEST(StripedCounter, IncrementAndReadCombineAcrossStripes) {
  StripedCounter c({.stripes = 4});
  // Distinct pids land on distinct stripes; read() combines them all.
  for (int pid = 0; pid < 6; ++pid) {
    Ctx ctx(pid, 11 + static_cast<std::uint64_t>(pid));
    c.increment(ctx);
    c.increment(ctx);
  }
  Ctx reader(0, 3);
  EXPECT_EQ(c.read(reader), 12u);
}

TEST(StripedCounter, ReadIsMonotoneUnderTheAdversarialSimulator) {
  // One reader process interleaved with three incrementers under the
  // adversarial scheduler: successive combines must never go backwards, and
  // never overshoot the true total.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    StripedCounter c({.stripes = 8});
    std::vector<std::uint64_t> reads;  // written only by pid 3's body
    api::Scenario s;
    s.nproc = 4;
    s.backend = api::Backend::kSimulated;
    s.sched = api::Sched::kRandom;
    s.seed = seed;
    const api::Run run = api::Workload(s).run_body([&](Ctx& ctx) {
      if (ctx.pid() == 3) {
        for (int i = 0; i < 16; ++i) reads.push_back(c.read(ctx));
      } else {
        for (int i = 0; i < 10; ++i) c.increment(ctx);
      }
    });
    ASSERT_EQ(run.finished_procs, 4u);
    ASSERT_EQ(reads.size(), 16u);
    EXPECT_TRUE(std::is_sorted(reads.begin(), reads.end()))
        << "seed=" << seed;
    EXPECT_LE(reads.back(), 30u);
    Ctx quiescent(0, 1);
    EXPECT_EQ(c.read(quiescent), 30u);
  }
}

TEST(StripedCounter, EliminationFallsBackWhenAlone) {
  // A lone process can never pair: every next() must time out of the
  // elimination layer and still produce the right value.
  StripedCounter c({.stripes = 4, .elimination = true, .elim_spins = 2});
  Ctx ctx(0, 5);
  for (std::uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(c.next(ctx), i);
  }
}

TEST(StripedCounter, EliminationKeepsValuesDenseUnderHardwareThreads) {
  // Contention stress: pairing must serve both partners exactly once.
  StripedCounter c({.stripes = 8, .elimination = true, .elim_width = 2});
  api::Scenario s;
  s.nproc = 4;
  s.backend = api::Backend::kHardware;
  s.seed = 99;
  const api::Run run = api::Workload(s).run_body([&](Ctx& ctx) {
    for (int i = 0; i < 200; ++i) c.next(ctx);
  });
  ASSERT_EQ(run.finished_procs, 4u);
  // Re-run the dispenser once more: the next value proves 800 were consumed.
  Ctx ctx(0, 1);
  std::vector<std::uint64_t> tail;
  for (int i = 0; i < 8; ++i) tail.push_back(c.next(ctx));
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i], 800 + i);
  }
}

// ------------------------------------------------------ diffracting tree ---

api::Registry& reg() { return api::Registry::global(); }

TEST(DiffractingTree, SequentialNextHandsOutConsecutiveValues) {
  for (const bool prism : {false, true}) {
    DiffractingTreeCounter tree(
        {.depth = 2, .prism = prism, .prism_spins = 2},
        [] { return reg().make_counter("atomic_fai"); });
    EXPECT_EQ(tree.leaves(), 4u);
    Ctx ctx(0, 13);
    for (std::uint64_t i = 0; i < 40; ++i) {
      EXPECT_EQ(tree.next(ctx), i) << "prism=" << prism;
    }
  }
}

TEST(DiffractingTree, CapacityComposesFromBoundedLeaves) {
  const auto bounded = reg().make_counter("difftree:depth=1,leaf=[bounded_fai:m=64]");
  EXPECT_EQ(bounded->capacity(), 128u);
  const auto unbounded = reg().make_counter("difftree:depth=2");
  EXPECT_EQ(unbounded->capacity(), api::ICounter::kUnbounded);
}

TEST(DiffractingTree, ConcurrentValuesStayDenseWithPrisms) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    DiffractingTreeCounter tree(
        {.depth = 3}, [] { return reg().make_counter("atomic_fai"); });
    api::Scenario s;
    s.nproc = 8;
    s.ops_per_proc = 6;
    s.backend = api::Backend::kSimulated;
    s.seed = seed;
    const api::Run run =
        api::Workload(s).run_ops([&](Ctx& ctx) { return tree.next(ctx); });
    std::vector<std::uint64_t> sorted = run.values();
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(sorted.size(), 48u);
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      ASSERT_EQ(sorted[i], i) << "seed=" << seed;
    }
  }
}

// ----------------------------------------------------- elimination layer ---

TEST(EliminationArray, LoneProcessAlwaysFallsThrough) {
  EliminationArray ea({.width = 1, .spins = 3, .payload = false});
  Ctx ctx(0, 17);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ea.try_collide(ctx).role, EliminationArray::Role::kNone);
  }
}

TEST(EliminationArray, PairsDeliverExactlyOnceUnderTheSimulator) {
  // Pairing check under the step-granular adversarial scheduler: every
  // collision must produce exactly one leader and one waiter, and every
  // delivered payload must reach exactly its waiter. The leader sends a
  // distinct token; received and sent totals must match exactly.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    EliminationArray ea({.width = 1, .spins = 8, .payload = true});
    std::atomic<std::uint64_t> delivered_sum{0};
    std::atomic<std::uint64_t> sent_sum{0};
    std::atomic<int> pairs{0};
    api::Scenario s;
    s.nproc = 3;
    s.backend = api::Backend::kSimulated;
    s.sched = api::Sched::kRandom;
    s.seed = seed;
    api::Workload(s).run_body([&](Ctx& ctx) {
      for (std::uint64_t i = 1; i <= 40; ++i) {
        const auto c = ea.try_collide(ctx);
        if (c.role == EliminationArray::Role::kLeader) {
          const std::uint64_t token =
              static_cast<std::uint64_t>(ctx.pid()) * 1000 + i;
          // A false return means the waiter timed out of the handoff and
          // reclaimed: the leader keeps the value, nothing was handed over.
          if (ea.deliver(ctx, c, token)) {
            sent_sum.fetch_add(token);
            pairs.fetch_add(1);
          }
        } else if (c.role == EliminationArray::Role::kWaiter) {
          delivered_sum.fetch_add(c.value);
        }
      }
    });
    EXPECT_EQ(delivered_sum.load(), sent_sum.load()) << "seed=" << seed;
    // Three processes hammering a width-1 array under random scheduling:
    // collisions must land (deterministic per seed).
    EXPECT_GT(pairs.load(), 0) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace renamelib::sharded
