// Registry-driven conformance suite: every registered implementation, both
// backends, one set of checks.
//
//   * counters — values are a dense prefix {0..N-1}; linearizable ones are
//     additionally machine-checked with the Wing–Gong checker on recorded
//     concurrent histories; quiescent/dense ones must still hand out a
//     permutation of the prefix,
//   * renamings — uniqueness and namespace tightness (renaming/validate.h)
//     against each entry's declared name_bound,
//   * the registry itself — enumeration, spec grammar (including nested
//     bracketed values), error paths and error-message quality,
//   * the sharded family — an extra sweep over stripe counts, tree depths,
//     elimination settings, and composed leaf specs.
//
// Because the suite iterates Registry::list(), a newly registered
// implementation is conformance-tested with zero new test code.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>

#include "api/registry.h"
#include "api/workload.h"
#include "renaming/validate.h"
#include "sim/linearizability.h"

namespace renamelib::api {
namespace {

// ------------------------------------------------------------- registry ---

TEST(Registry, ListsAtLeastSixImplementationsAcrossFourFamilies) {
  const auto& reg = Registry::global();
  EXPECT_GE(reg.list().size(), 6u);
  std::set<std::string> families;
  for (const auto& r : reg.renamings()) families.insert(family_name(r.family));
  for (const auto& c : reg.counters()) families.insert(family_name(c.family));
  EXPECT_GE(families.size(), 4u);
  // The families the paper's machinery spans must all be present.
  EXPECT_TRUE(families.count("renaming"));
  EXPECT_TRUE(families.count("fai-counting"));
  EXPECT_TRUE(families.count("counting-network"));
  EXPECT_TRUE(families.count("sharded"));
}

TEST(Registry, SpecGrammarRoundTrip) {
  const Spec s = parse_spec("bounded_fai:m=64,tas=hw");
  EXPECT_EQ(s.name, "bounded_fai");
  EXPECT_EQ(s.params.get_u64("m", 0), 64u);
  EXPECT_EQ(s.params.get("tas", ""), "hw");

  const Spec bare = parse_spec("adaptive_strong");
  EXPECT_EQ(bare.name, "adaptive_strong");
  EXPECT_TRUE(bare.params.entries().empty());
}

TEST(Registry, RejectsMalformedAndUnknownSpecs) {
  auto& reg = Registry::global();
  EXPECT_THROW(parse_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_spec(":m=1"), std::invalid_argument);
  EXPECT_THROW(parse_spec("x:notakv"), std::invalid_argument);
  EXPECT_THROW(reg.make_counter("no_such_counter"), std::invalid_argument);
  EXPECT_THROW(reg.make_renaming("no_such_renaming"), std::invalid_argument);
  // Typo'd key: rejected, not silently defaulted.
  EXPECT_THROW(reg.make_counter("bounded_fai:bogus=1"), std::invalid_argument);
  // Non-power-of-two geometry.
  EXPECT_THROW(reg.make_counter("bounded_fai:m=3"), std::invalid_argument);
  EXPECT_THROW(reg.make_counter("bounded_fai:m=x"), std::invalid_argument);
  // Wrong kind: a renaming name is not a counter and vice versa.
  EXPECT_THROW(reg.make_counter("adaptive_strong"), std::invalid_argument);
  EXPECT_THROW(reg.make_renaming("bounded_fai"), std::invalid_argument);
}

TEST(Registry, UnknownKeyErrorsListTheValidKeys) {
  auto& reg = Registry::global();
  // A typo'd key must name the keys the family accepts, not just echo the
  // spec back.
  try {
    reg.make_counter("bounded_fai:bogus=1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
    EXPECT_NE(msg.find("valid keys"), std::string::npos) << msg;
    EXPECT_NE(msg.find("m"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tas"), std::string::npos) << msg;
  }
  try {
    reg.make_counter("difftree:leef=x");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("leaf"), std::string::npos) << msg;
    EXPECT_NE(msg.find("depth"), std::string::npos) << msg;
  }
  // A spec with no params at all says so rather than listing nothing.
  try {
    reg.make_counter("atomic_fai:x=1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no params"), std::string::npos)
        << e.what();
  }
}

TEST(Registry, NestedSpecValuesSurviveBracketing) {
  // Commas inside [...] belong to the nested spec, and one bracket layer is
  // stripped so the enclosing implementation can resolve the value directly.
  const Spec s = parse_spec("difftree:depth=2,leaf=[striped:stripes=8,elim=1]");
  EXPECT_EQ(s.name, "difftree");
  EXPECT_EQ(s.params.get_u64("depth", 0), 2u);
  EXPECT_EQ(s.params.get("leaf", ""), "striped:stripes=8,elim=1");

  // Unbracketed nested specs still work when they carry no comma.
  const Spec bare = parse_spec("difftree:leaf=bounded_fai");
  EXPECT_EQ(bare.params.get("leaf", ""), "bounded_fai");

  // Unbalanced brackets are malformed, not silently reinterpreted.
  EXPECT_THROW(parse_spec("difftree:leaf=[striped"), std::invalid_argument);
  EXPECT_THROW(parse_spec("difftree:leaf=striped]"), std::invalid_argument);

  // The composite constructs, and a bogus leaf fails with the registry's
  // own unknown-name error.
  auto& reg = Registry::global();
  EXPECT_NE(reg.make_counter("difftree:depth=1,leaf=[striped:stripes=4]"),
            nullptr);
  EXPECT_THROW(reg.make_counter("difftree:leaf=no_such_leaf"),
               std::invalid_argument);
  // A renaming is not a valid leaf counter.
  EXPECT_THROW(reg.make_counter("difftree:leaf=adaptive_strong"),
               std::invalid_argument);
}

TEST(Registry, ConstructsEveryBuiltinWithCustomParams) {
  auto& reg = Registry::global();
  EXPECT_NE(reg.make_counter("bounded_fai:m=64,tas=hw"), nullptr);
  EXPECT_NE(reg.make_counter("bitonic_countnet:w=8"), nullptr);
  EXPECT_NE(reg.make_renaming("bit_batching:n=32,tas=ratrace"), nullptr);
  EXPECT_NE(reg.make_renaming("renaming_network:w=16,tas=hw"), nullptr);
  EXPECT_NE(reg.make_renaming("linear_probe:cap=128"), nullptr);
  EXPECT_NE(reg.make_renaming("moir_anderson:n=16"), nullptr);
  EXPECT_NE(reg.make_counter("striped:stripes=8,elim=1,elim_width=2"), nullptr);
  EXPECT_NE(reg.make_counter("difftree:depth=2,prism=0"), nullptr);
}

// ---------------------------------------------------- shared param sweep ---

struct ParamName {
  template <typename T>
  std::string operator()(const ::testing::TestParamInfo<T>& info) const {
    const auto& [name, backend] = info.param;
    return name + (backend == Backend::kHardware ? "_hw" : "_sim");
  }
};

std::vector<std::tuple<std::string, Backend>> sweep(
    const std::vector<std::string>& names) {
  std::vector<std::tuple<std::string, Backend>> out;
  for (const auto& n : names) {
    out.emplace_back(n, Backend::kSimulated);
    out.emplace_back(n, Backend::kHardware);
  }
  return out;
}

std::vector<std::string> registered_counters() {
  std::vector<std::string> out;
  for (const auto& c : Registry::global().counters()) out.push_back(c.name);
  return out;
}

std::vector<std::string> registered_renamings() {
  std::vector<std::string> out;
  for (const auto& r : Registry::global().renamings()) out.push_back(r.name);
  return out;
}

// ------------------------------------------------------------- counters ---

class CounterConformance
    : public ::testing::TestWithParam<std::tuple<std::string, Backend>> {};

TEST_P(CounterConformance, DenseValuesAndLinearizability) {
  const auto& [name, backend] = GetParam();
  const CounterInfo* info = Registry::global().find_counter(name);
  ASSERT_NE(info, nullptr);

  // The registry's declared consistency and the adapter's own must agree —
  // the Wing–Gong check below is keyed off the registry entry.
  {
    const auto counter = Registry::global().make_counter(name);
    ASSERT_EQ(counter->consistency(), info->consistency) << name;
  }

  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto counter = Registry::global().make_counter(name);
    Scenario s;
    s.nproc = 4;
    s.ops_per_proc = 2;
    s.backend = backend;
    s.seed = seed + 1;
    s.record_history = (info->consistency == Consistency::kLinearizable);
    const api::Run run = Workload(s).run(*counter);

    const std::size_t total =
        static_cast<std::size_t>(s.nproc) * s.ops_per_proc;
    ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(s.nproc));
    ASSERT_EQ(run.ops.size(), total);
    ASSERT_LT(total, counter->capacity()) << "scenario must not saturate";

    // Every counter family hands out a dense prefix once quiescent.
    std::vector<std::uint64_t> sorted = run.values();
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < total; ++i) {
      EXPECT_EQ(sorted[i], i) << name << " seed=" << seed;
    }

    // Unified metrics sanity.
    EXPECT_EQ(run.metrics.ops, total);
    EXPECT_GT(run.metrics.steps, 0u);
    EXPECT_GE(run.metrics.steps, run.metrics.shared_steps);
    EXPECT_LE(run.metrics.max_op_steps, run.metrics.steps);
    EXPECT_LE(run.metrics.max_proc_steps, run.metrics.steps);
    EXPECT_GE(run.metrics.mean_op_steps(), 1.0);

    if (info->consistency == Consistency::kLinearizable) {
      const std::uint64_t m = counter->capacity() == ICounter::kUnbounded
                                  ? (1ULL << 40)
                                  : counter->capacity();
      sim::BoundedFaiSpec spec(m);
      EXPECT_TRUE(sim::is_linearizable(run.history, spec))
          << name << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, CounterConformance,
                         ::testing::ValuesIn(sweep(registered_counters())),
                         ParamName{});

// --------------------------------------------------- sharded spec sweep ---

// The registered-name sweep above already covers `striped` and `difftree`
// at default params; this sweep exercises the geometry and composition axes
// (stripe counts, tree depths, elimination/prism toggles, nested leaves)
// under both backends.
class ShardedSpecConformance
    : public ::testing::TestWithParam<std::tuple<std::string, Backend>> {};

struct SpecName {
  template <typename T>
  std::string operator()(const ::testing::TestParamInfo<T>& info) const {
    const auto& [spec, backend] = info.param;
    std::string out;
    for (const char c : spec) {
      out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
    }
    return out + (backend == Backend::kHardware ? "_hw" : "_sim");
  }
};

TEST_P(ShardedSpecConformance, DenseValuePrefix) {
  const auto& [spec, backend] = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto counter = Registry::global().make_counter(spec);
    ASSERT_EQ(counter->consistency(), Consistency::kQuiescent) << spec;
    Scenario s;
    s.nproc = 6;
    s.ops_per_proc = 4;
    s.backend = backend;
    s.seed = seed + 1;
    const api::Run run = Workload(s).run(*counter);

    const std::size_t total = static_cast<std::size_t>(s.nproc) * s.ops_per_proc;
    ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(s.nproc));
    ASSERT_EQ(run.ops.size(), total);
    ASSERT_LT(total, counter->capacity()) << spec;

    std::vector<std::uint64_t> sorted = run.values();
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < total; ++i) {
      ASSERT_EQ(sorted[i], i) << spec << " seed=" << seed;
    }
    EXPECT_EQ(run.metrics.ops, total);
    EXPECT_GT(run.metrics.steps, 0u);
    EXPECT_GE(run.metrics.steps, run.metrics.shared_steps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ShardedSpecConformance,
    ::testing::ValuesIn(sweep({
        "striped:stripes=1",
        "striped:stripes=16",
        "striped:stripes=64,elim=1",
        "striped:stripes=8,elim=1,elim_width=1,elim_spins=2",
        "difftree:depth=1",
        "difftree:depth=3",
        "difftree:depth=2,prism=0",
        "difftree:depth=2,leaf=[striped:stripes=4]",
        "difftree:depth=1,leaf=[bounded_fai:m=64]",
        "difftree:depth=2,leaf=[difftree:depth=1,prism=0]",
    })),
    SpecName{});

// ------------------------------------------------------------ renamings ---

class RenamingConformance
    : public ::testing::TestWithParam<std::tuple<std::string, Backend>> {};

TEST_P(RenamingConformance, UniqueAndTightNames) {
  const auto& [name, backend] = GetParam();
  const RenamingInfo* info = Registry::global().find_renaming(name);
  ASSERT_NE(info, nullptr);

  const Params defaults;  // run under each entry's default geometry
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Scenario s;
    s.nproc = 4;
    s.ops_per_proc = 2;
    s.backend = backend;
    s.seed = seed + 1;
    const int requests = s.nproc * s.ops_per_proc;
    ASSERT_LE(requests, info->max_requests(defaults));

    const auto obj = Registry::global().make_renaming(name);
    const api::Run run = Workload(s).run(*obj);

    ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(s.nproc));
    ASSERT_EQ(run.ops.size(), static_cast<std::size_t>(requests));

    const auto unique = renaming::check_unique(run.values());
    EXPECT_TRUE(unique.ok) << name << " seed=" << seed << ": " << unique.error;
    const auto tight = renaming::check_tight(
        run.values(), info->name_bound(requests, defaults));
    EXPECT_TRUE(tight.ok) << name << " seed=" << seed << ": " << tight.error;

    EXPECT_EQ(run.metrics.ops, static_cast<std::uint64_t>(requests));
    EXPECT_GT(run.metrics.steps, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Registry, RenamingConformance,
                         ::testing::ValuesIn(sweep(registered_renamings())),
                         ParamName{});

// --------------------------------------------------- adaptivity contract ---

TEST(RenamingConformance, AdaptiveEntriesDeclareKOnlyBounds) {
  // Entries marked adaptive must have a name bound independent of any
  // provisioned size param; non-adaptive ones depend on their n.
  const Params defaults;
  for (const auto& r : Registry::global().renamings()) {
    if (r.adaptive) {
      EXPECT_LE(r.name_bound(2, defaults), 3u) << r.name;
    } else {
      EXPECT_GT(r.name_bound(2, defaults), 3u) << r.name;
    }
  }
}

}  // namespace
}  // namespace renamelib::api
