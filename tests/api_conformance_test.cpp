// Facet-driven conformance suite: every registered implementation of every
// facet, every schedule, one set of checks per facet.
//
//   * counter facet — values are a dense prefix {0..N-1}; linearizable ones
//     are additionally machine-checked with the Wing–Gong checker on
//     recorded concurrent histories; quiescent/dense ones must still hand
//     out a permutation of the prefix; escrow-leased ones are checked for
//     uniqueness within the quota-rounded bound instead of density,
//   * renaming facet — uniqueness and namespace tightness
//     (renaming/validate.h) against each entry's declared name_bound, plus
//     concurrent-holder and reuse checks for the long-lived family,
//   * readable facet — per-process read monotonicity, read bounds
//     (completed <= reads <= started increments), quiescent exactness, and
//     Wing–Gong on inc/read histories for linearizable entries,
//   * the registry itself — facet enumeration, spec grammar (including
//     nested bracketed values), error paths and error-message quality,
//   * the sharded family — an extra sweep over stripe counts, tree depths,
//     elimination settings, and composed leaf specs.
//
// Every sweep runs under three schedules: hardware threads, the adversarial
// simulator, and the simulator with crash injection (Scenario::crashes
// wrapping sim::CrashAdversary) — under crashes the surviving processes'
// invariants must still hold. Because the suite iterates the Registry's
// facet tables, a newly registered implementation is conformance-tested
// with zero new test code.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <iostream>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <tuple>

#include "api/registry.h"
#include "api/workload.h"
#include "combining/combining_funnel.h"
#include "obs/flight_recorder.h"
#include "renaming/validate.h"
#include "sharded/striped_counter.h"
#include "sim/linearizability.h"

namespace renamelib::api {
namespace {

// Post-mortem instrumentation: the whole suite runs with the flight
// recorder on, and a failing test prints the tail of the event stream that
// led into it — which interleaving of grants, CAS losses, and reclaims the
// rejected execution actually took. Fresh ring per test so the tail never
// shows a previous test's events.
class FlightTailOnFailure : public ::testing::EmptyTestEventListener {
  void OnTestStart(const ::testing::TestInfo&) override {
    obs::FlightRecorder::instance().reset();
    obs::FlightRecorder::set_enabled(true);
  }
  void OnTestEnd(const ::testing::TestInfo& info) override {
    obs::FlightRecorder::set_enabled(false);
    if (info.result() != nullptr && info.result()->Failed()) {
      std::cout << obs::FlightRecorder::instance().format_tail();
    }
  }
};

[[maybe_unused]] const int kFlightListenerInstalled = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new FlightTailOnFailure);
  return 0;
}();

// ------------------------------------------------------------- registry ---

TEST(Registry, ExposesThreeFacets) {
  const auto& reg = Registry::global();
  const auto facets = reg.facets();
  ASSERT_GE(facets.size(), 3u);
  EXPECT_NE(std::find(facets.begin(), facets.end(), Facet::kCounter),
            facets.end());
  EXPECT_NE(std::find(facets.begin(), facets.end(), Facet::kRenaming),
            facets.end());
  EXPECT_NE(std::find(facets.begin(), facets.end(), Facet::kReadable),
            facets.end());

  // Acceptance names: the long-lived family and the readable counters are
  // resolvable by spec string through their facets.
  EXPECT_NE(reg.find_renaming("longlived"), nullptr);
  EXPECT_NE(reg.find_readable("monotone"), nullptr);
  EXPECT_NE(reg.find_readable("maxregtree"), nullptr);
  EXPECT_NE(reg.find_readable("striped"), nullptr);
  EXPECT_NE(reg.make_renaming("longlived:cap=64"), nullptr);
  EXPECT_NE(reg.make_readable("monotone"), nullptr);
  EXPECT_NE(reg.make_readable("maxregtree:n=8,cap=1024"), nullptr);
  EXPECT_NE(reg.make_readable("striped:stripes=8"), nullptr);
}

TEST(Registry, NamesAreUniquePerFacetNotRegistryWide) {
  const auto& reg = Registry::global();
  // "striped" plays two roles: dispenser counter and readable statistic
  // counter — same name, two facets, two distinct objects.
  EXPECT_NE(reg.find_counter("striped"), nullptr);
  EXPECT_NE(reg.find_readable("striped"), nullptr);
  const auto dispenser = reg.make_counter("striped:stripes=8");
  const auto statistic = reg.make_readable("striped:stripes=8");
  ASSERT_NE(dispenser, nullptr);
  ASSERT_NE(statistic, nullptr);
  // But it is not a renaming.
  EXPECT_THROW(reg.make_renaming("striped"), std::invalid_argument);
}

TEST(Registry, ListsAtLeastSixImplementationsAcrossFiveFamilies) {
  const auto& reg = Registry::global();
  EXPECT_GE(reg.list().size(), 6u);
  EXPECT_GE(reg.list(Facet::kCounter).size(), 4u);
  EXPECT_GE(reg.list(Facet::kRenaming).size(), 5u);
  EXPECT_GE(reg.list(Facet::kReadable).size(), 3u);
  std::set<std::string> families;
  for (const auto& r : reg.renamings()) families.insert(family_name(r.family));
  for (const auto& c : reg.counters()) families.insert(family_name(c.family));
  for (const auto& d : reg.readables()) families.insert(family_name(d.family));
  // The families the paper's machinery spans must all be present.
  EXPECT_TRUE(families.count("renaming"));
  EXPECT_TRUE(families.count("fai-counting"));
  EXPECT_TRUE(families.count("counting-network"));
  EXPECT_TRUE(families.count("sharded"));
  EXPECT_TRUE(families.count("baseline"));
}

TEST(Registry, SpecGrammarRoundTrip) {
  const Spec s = Spec::parse("bounded_fai:tas=hw,m=64");
  EXPECT_EQ(s.name(), "bounded_fai");
  EXPECT_EQ(s.get_u64("m", 0), 64u);
  EXPECT_EQ(s.get("tas", ""), "hw");
  // Canonical print sorts keys, so spellings that configure the same object
  // are one identifier — and parse(print()) is a fixed point.
  EXPECT_EQ(s.print(), "bounded_fai:m=64,tas=hw");
  EXPECT_EQ(Spec::parse(s.print()).print(), s.print());

  const Spec bare = Spec::parse("adaptive_strong");
  EXPECT_EQ(bare.name(), "adaptive_strong");
  EXPECT_TRUE(bare.options().empty());
  EXPECT_EQ(bare.print(), "adaptive_strong");
}

TEST(Registry, SpecBuilderIsTheConstructionSide) {
  const Spec s = SpecBuilder("difftree")
                     .opt("depth", 2)
                     .opt("leaf", SpecBuilder("striped").opt("stripes", 8))
                     .build();
  EXPECT_EQ(s.print(), "difftree:depth=2,leaf=[striped:stripes=8]");
  EXPECT_EQ(s.get_spec("leaf", "atomic_fai").get_u64("stripes", 0), 8u);
  EXPECT_NE(Registry::global().make_counter(s), nullptr);
  EXPECT_THROW(SpecBuilder("striped").opt("stripes", 4).opt("stripes", 8),
               std::invalid_argument);
  // Grammar metacharacters cannot enter a Spec programmatically either —
  // that is what makes the parse(print) round-trip guarantee total.
  EXPECT_THROW(SpecBuilder("x").opt("k", "a,b"), std::invalid_argument);
  EXPECT_THROW(SpecBuilder("x").opt("k", "a:b"), std::invalid_argument);
  EXPECT_THROW(SpecBuilder("x").opt("k", "[a]"), std::invalid_argument);
  EXPECT_THROW(SpecBuilder("x").opt("k=v", "1"), std::invalid_argument);
}

TEST(Registry, RejectsMalformedAndUnknownSpecs) {
  auto& reg = Registry::global();
  EXPECT_THROW(Spec::parse(""), std::invalid_argument);
  EXPECT_THROW(Spec::parse(":m=1"), std::invalid_argument);
  EXPECT_THROW(Spec::parse("x:notakv"), std::invalid_argument);
  EXPECT_THROW(reg.make_counter("no_such_counter"), std::invalid_argument);
  EXPECT_THROW(reg.make_renaming("no_such_renaming"), std::invalid_argument);
  EXPECT_THROW(reg.make_readable("no_such_readable"), std::invalid_argument);
  // Typo'd key: rejected, not silently defaulted.
  EXPECT_THROW(reg.make_counter("bounded_fai:bogus=1"), std::invalid_argument);
  EXPECT_THROW(reg.make_readable("maxregtree:bogus=1"), std::invalid_argument);
  // Non-power-of-two geometry.
  EXPECT_THROW(reg.make_counter("bounded_fai:m=3"), std::invalid_argument);
  EXPECT_THROW(reg.make_counter("bounded_fai:m=x"), std::invalid_argument);
  // Wrong facet: a renaming name is not a counter and vice versa.
  EXPECT_THROW(reg.make_counter("adaptive_strong"), std::invalid_argument);
  EXPECT_THROW(reg.make_renaming("bounded_fai"), std::invalid_argument);
  EXPECT_THROW(reg.make_readable("bounded_fai"), std::invalid_argument);
}

TEST(Registry, WrongFacetErrorsNameTheFacetThatKnowsTheName) {
  auto& reg = Registry::global();
  // Asking the wrong facet is a one-read fix: the error names where the
  // spec actually lives.
  try {
    reg.make_counter("adaptive_strong");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown counter"), std::string::npos) << msg;
    EXPECT_NE(msg.find("renaming facet"), std::string::npos) << msg;
  }
  try {
    reg.make_renaming("monotone");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("readable-counter facet"),
              std::string::npos)
        << e.what();
  }
  try {
    reg.make_renaming("striped");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    // Registered under both other facets; the hint lists both.
    EXPECT_NE(msg.find("counter"), std::string::npos) << msg;
    EXPECT_NE(msg.find("readable-counter"), std::string::npos) << msg;
  }
}

TEST(Registry, UnknownKeyErrorsListTheValidKeys) {
  auto& reg = Registry::global();
  // A typo'd key must name the keys the family accepts, not just echo the
  // spec back.
  try {
    reg.make_counter("bounded_fai:bogus=1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
    EXPECT_NE(msg.find("valid keys"), std::string::npos) << msg;
    EXPECT_NE(msg.find("m"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tas"), std::string::npos) << msg;
  }
  try {
    reg.make_counter("difftree:leef=x");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("leaf"), std::string::npos) << msg;
    EXPECT_NE(msg.find("depth"), std::string::npos) << msg;
  }
  try {
    reg.make_renaming("longlived:capacity=8");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cap"), std::string::npos)
        << e.what();
  }
  // A spec with no options at all says so rather than listing nothing.
  try {
    reg.make_counter("atomic_fai:x=1");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no options"), std::string::npos)
        << e.what();
  }
}

TEST(Registry, UnknownNamesAndKeysSuggestTheClosestSpelling) {
  auto& reg = Registry::global();
  // Typos within edit distance 2 get a did-you-mean, uniformly for entry
  // names and option keys, on every facet.
  try {
    reg.make_counter("stripd");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'striped'?"),
              std::string::npos)
        << e.what();
  }
  try {
    reg.make_counter("striped:stripse=8");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'stripes'?"),
              std::string::npos)
        << e.what();
  }
  try {
    reg.make_renaming("adaptiv_strong");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'adaptive_strong'?"),
              std::string::npos)
        << e.what();
  }
  try {
    reg.make_readable("maxregtree:caap=64");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'cap'?"),
              std::string::npos)
        << e.what();
  }
  // Distance > 2: no wild guess, just the valid alternatives.
  try {
    reg.make_renaming("longlived:capacity=8");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()).find("did you mean"), std::string::npos)
        << e.what();
  }
}

TEST(Registry, ValidatesTypedOptionValues) {
  auto& reg = Registry::global();
  // Enum values outside the declared choices name them.
  try {
    reg.make_counter("bounded_fai:tas=foo");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("one of {rnd, hw}"), std::string::npos) << msg;
  }
  // Range violations name the accepted interval.
  try {
    reg.make_counter("striped:stripes=9999");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("[1, 4096]"), std::string::npos)
        << e.what();
  }
  // Booleans are 0/1; nested specs where a scalar belongs are rejected.
  EXPECT_THROW(reg.make_counter("striped:elim=2"), std::invalid_argument);
  EXPECT_THROW(reg.make_counter("striped:stripes=[striped]"),
               std::invalid_argument);
  // validate() is the construction-free check renamectl and tools use.
  EXPECT_NO_THROW(reg.validate(Facet::kCounter,
                               Spec::parse("difftree:leaf=[striped:elim=1]")));
  EXPECT_THROW(reg.validate(Facet::kCounter, Spec::parse("difftree:leaf=[x]")),
               std::invalid_argument);
  // canonical() = validate + stable identifier.
  EXPECT_EQ(reg.canonical(Facet::kCounter, "striped:elim=1,stripes=8"),
            "striped:elim=1,stripes=8");
  EXPECT_EQ(reg.canonical(Facet::kCounter, "striped:stripes=8,elim=1"),
            "striped:elim=1,stripes=8");
}

TEST(Registry, NestedSpecValuesSurviveBracketing) {
  // Commas inside [...] belong to the nested spec, which parses into a
  // first-class AST node the enclosing implementation reads directly.
  const Spec s =
      Spec::parse("difftree:depth=2,leaf=[striped:stripes=8,elim=1]");
  EXPECT_EQ(s.name(), "difftree");
  EXPECT_EQ(s.get_u64("depth", 0), 2u);
  ASSERT_TRUE(s.find("leaf") != nullptr && s.find("leaf")->is_spec());
  const Spec& leaf = s.find("leaf")->spec();
  EXPECT_EQ(leaf.name(), "striped");
  EXPECT_EQ(leaf.get_u64("stripes", 0), 8u);
  // Canonical print sorts keys at every nesting level.
  EXPECT_EQ(s.print(), "difftree:depth=2,leaf=[striped:elim=1,stripes=8]");
  EXPECT_EQ(Spec::parse(s.print()).print(), s.print());

  // Unbracketed nested specs still work when they carry no comma, and a
  // bare-name nested value canonicalizes without brackets.
  const Spec bare = Spec::parse("difftree:leaf=bounded_fai");
  EXPECT_EQ(bare.get_spec("leaf", "").name(), "bounded_fai");
  EXPECT_EQ(Spec::parse("difftree:leaf=[bounded_fai]").print(),
            "difftree:leaf=bounded_fai");
  EXPECT_EQ(Spec::parse("difftree:leaf=striped:stripes=4").print(),
            "difftree:leaf=[striped:stripes=4]");

  // Unbalanced brackets are malformed, not silently reinterpreted.
  EXPECT_THROW(Spec::parse("difftree:leaf=[striped"), std::invalid_argument);
  EXPECT_THROW(Spec::parse("difftree:leaf=striped]"), std::invalid_argument);

  // The composite constructs, and a bogus leaf fails with the registry's
  // own unknown-name error.
  auto& reg = Registry::global();
  EXPECT_NE(reg.make_counter("difftree:depth=1,leaf=[striped:stripes=4]"),
            nullptr);
  EXPECT_THROW(reg.make_counter("difftree:leaf=no_such_leaf"),
               std::invalid_argument);
  // A renaming is not a valid leaf counter.
  EXPECT_THROW(reg.make_counter("difftree:leaf=adaptive_strong"),
               std::invalid_argument);
}

TEST(Registry, ConstructsEveryBuiltinWithCustomParams) {
  auto& reg = Registry::global();
  EXPECT_NE(reg.make_counter("bounded_fai:m=64,tas=hw"), nullptr);
  EXPECT_NE(reg.make_counter("bitonic_countnet:w=8"), nullptr);
  EXPECT_NE(reg.make_renaming("bit_batching:n=32,tas=ratrace"), nullptr);
  EXPECT_NE(reg.make_renaming("renaming_network:w=16,tas=hw"), nullptr);
  EXPECT_NE(reg.make_renaming("linear_probe:cap=128"), nullptr);
  EXPECT_NE(reg.make_renaming("moir_anderson:n=16"), nullptr);
  EXPECT_NE(reg.make_renaming("longlived:cap=32"), nullptr);
  EXPECT_NE(reg.make_counter("striped:stripes=8,elim=1,elim_width=2"), nullptr);
  EXPECT_NE(reg.make_counter("difftree:depth=2,prism=0"), nullptr);
  EXPECT_NE(reg.make_readable("monotone:tas=hw"), nullptr);
  EXPECT_NE(reg.make_readable("maxregtree:n=16,cap=4096"), nullptr);
  EXPECT_NE(reg.make_readable("striped:stripes=4"), nullptr);
}

// ---------------------------------------------------- shared mode sweep ---

/// One schedule of the three-way sweep: hardware threads, the adversarial
/// simulator, or the simulator with crash injection.
enum class Mode { kSim, kHardware, kCrash };

const char* mode_suffix(Mode m) {
  switch (m) {
    case Mode::kSim: return "_sim";
    case Mode::kHardware: return "_hw";
    case Mode::kCrash: return "_crash";
  }
  return "_?";
}

/// Scenario for `mode`; crash mode kills `max_crashes` seed-chosen victims
/// within their first `crash_step_max` shared steps. Callers size
/// ops_per_proc so every victim still has work at its threshold — then the
/// crash count is exact, not best-effort.
Scenario scenario_for(Mode mode, int nproc, int ops_per_proc,
                      std::uint64_t seed, std::size_t max_crashes = 1,
                      std::uint64_t crash_step_max = 2) {
  Scenario s;
  s.nproc = nproc;
  s.ops_per_proc = ops_per_proc;
  s.backend = mode == Mode::kHardware ? Backend::kHardware : Backend::kSimulated;
  s.seed = seed;
  if (mode == Mode::kCrash) {
    s.crashes.max_crashes = max_crashes;
    s.crashes.crash_step_max = crash_step_max;
  }
  return s;
}

struct ParamName {
  template <typename T>
  std::string operator()(const ::testing::TestParamInfo<T>& info) const {
    const auto& [name, mode] = info.param;
    return name + mode_suffix(mode);
  }
};

std::vector<std::tuple<std::string, Mode>> sweep(
    const std::vector<std::string>& names) {
  std::vector<std::tuple<std::string, Mode>> out;
  for (const auto& n : names) {
    out.emplace_back(n, Mode::kSim);
    out.emplace_back(n, Mode::kHardware);
    out.emplace_back(n, Mode::kCrash);
  }
  return out;
}

// ------------------------------------------------------------- counters ---

/// Per-process value slack of an escrow-family entry, read off its schema:
/// the lease family withholds at most one `quota`-sized range per pid, the
/// combining front-end at most one `max_combine`-sized in-flight sweep per
/// elected combiner (of which there is at most one per pid).
std::uint64_t escrow_slack(const CounterInfo& info) {
  for (const auto& o : info.options) {
    if (o.key == "quota" || o.key == "max_combine") return std::stoull(o.def);
  }
  ADD_FAILURE() << info.name << " declares no escrow range/sweep option";
  return 0;
}

class CounterConformance
    : public ::testing::TestWithParam<std::tuple<std::string, Mode>> {};

TEST_P(CounterConformance, DenseValuesAndLinearizability) {
  const auto& [name, mode] = GetParam();
  const CounterInfo* info = Registry::global().find_counter(name);
  ASSERT_NE(info, nullptr);

  // The registry's declared consistency and the adapter's own must agree —
  // the Wing–Gong check below is keyed off the registry entry.
  {
    const auto counter = Registry::global().make_counter(name);
    ASSERT_EQ(counter->consistency(), info->consistency) << name;
  }

  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto counter = Registry::global().make_counter(name);
    // Crash mode: every counter op costs >= 1 shared step, so with 4 ops per
    // process and thresholds in [1, 2] both victims are killed mid-run.
    const Scenario s = scenario_for(mode, 4, mode == Mode::kCrash ? 4 : 2,
                                    seed + 1, /*max_crashes=*/2);
    Workload workload = [&] {
      Scenario with_history = s;
      with_history.record_history =
          (mode != Mode::kCrash &&
           info->consistency == Consistency::kLinearizable);
      return Workload(with_history);
    }();
    const api::Run run = workload.run(*counter);

    const std::size_t attempted =
        static_cast<std::size_t>(s.nproc) * s.ops_per_proc;
    ASSERT_LT(attempted, counter->capacity()) << "scenario must not saturate";

    if (mode == Mode::kCrash) {
      // Exactly the planned crashes happened; survivors completed all ops,
      // and victims contributed only the ops they finished before dying.
      ASSERT_EQ(run.crashed_procs, 2u) << name << " seed=" << seed;
      ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(s.nproc) - 2);
      ASSERT_GE(run.ops.size(),
                run.finished_procs * static_cast<std::size_t>(s.ops_per_proc));
      ASSERT_LT(run.ops.size(), attempted);
      // Crashed operations may have consumed values, so the survivors'
      // values need not be a dense prefix — but they must stay unique and
      // within the started-operation bound. Escrow-leased entries hand out
      // positions from quota-sized per-pid ranges, so their bound is the
      // quota-rounded one: every value lies inside some minted range, and at
      // most one range per pid is in flight.
      const std::uint64_t crash_bound =
          info->consistency == Consistency::kEscrow
              ? attempted +
                    static_cast<std::uint64_t>(s.nproc) * escrow_slack(*info)
              : attempted;
      std::set<std::uint64_t> unique;
      for (const std::uint64_t v : run.values()) {
        EXPECT_TRUE(unique.insert(v).second)
            << name << " seed=" << seed << ": duplicate value " << v;
        EXPECT_LT(v, crash_bound) << name << " seed=" << seed;
      }
      EXPECT_EQ(run.metrics.ops, run.ops.size());
      continue;
    }

    ASSERT_EQ(run.crashed_procs, 0u);
    ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(s.nproc));
    ASSERT_EQ(run.ops.size(), attempted);

    if (info->consistency == Consistency::kEscrow) {
      // Escrow-leased values are unique and quota-bounded, never dense: each
      // pid's partially drained lease withholds the tail of its range.
      const std::uint64_t bound =
          attempted +
          static_cast<std::uint64_t>(s.nproc) * escrow_slack(*info);
      std::set<std::uint64_t> unique;
      for (const std::uint64_t v : run.values()) {
        EXPECT_TRUE(unique.insert(v).second)
            << name << " seed=" << seed << ": duplicate value " << v;
        EXPECT_LT(v, bound) << name << " seed=" << seed;
      }
    } else {
      // Every other counter family hands out a dense prefix once quiescent.
      std::vector<std::uint64_t> sorted = run.values();
      std::sort(sorted.begin(), sorted.end());
      for (std::size_t i = 0; i < attempted; ++i) {
        EXPECT_EQ(sorted[i], i) << name << " seed=" << seed;
      }
    }

    // Unified metrics sanity.
    EXPECT_EQ(run.metrics.ops, attempted);
    EXPECT_GT(run.metrics.steps, 0u);
    EXPECT_GE(run.metrics.steps, run.metrics.shared_steps);
    EXPECT_LE(run.metrics.max_op_steps, run.metrics.steps);
    EXPECT_LE(run.metrics.max_proc_steps, run.metrics.steps);
    if (info->consistency != Consistency::kEscrow) {
      // Locally served lease ops cost zero shared steps, so the escrow
      // family legitimately undercuts the 1-step/op floor.
      EXPECT_GE(run.metrics.mean_op_steps(), 1.0);
    }

    if (info->consistency == Consistency::kLinearizable) {
      const std::uint64_t m = counter->capacity() == ICounter::kUnbounded
                                  ? (1ULL << 40)
                                  : counter->capacity();
      sim::BoundedFaiSpec spec(m);
      EXPECT_TRUE(sim::is_linearizable(run.history, spec))
          << name << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, CounterConformance,
    ::testing::ValuesIn(sweep(Registry::global().list(Facet::kCounter))),
    ParamName{});

// --------------------------------------------------- sharded spec sweep ---

// The registered-name sweep above already covers `striped` and `difftree`
// at default params; this sweep exercises the geometry and composition axes
// (stripe counts, tree depths, elimination/prism toggles, nested leaves)
// under all three schedules.
class ShardedSpecConformance
    : public ::testing::TestWithParam<std::tuple<std::string, Mode>> {};

struct SpecName {
  template <typename T>
  std::string operator()(const ::testing::TestParamInfo<T>& info) const {
    const auto& [spec, mode] = info.param;
    std::string out;
    for (const char c : spec) {
      out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
    }
    return out + mode_suffix(mode);
  }
};

TEST_P(ShardedSpecConformance, DenseValuePrefix) {
  const auto& [spec, mode] = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto counter = Registry::global().make_counter(spec);
    ASSERT_EQ(counter->consistency(), Consistency::kQuiescent) << spec;
    const Scenario s = scenario_for(mode, 6, 4, seed + 1, /*max_crashes=*/2);
    const api::Run run = Workload(s).run(*counter);

    const std::size_t attempted =
        static_cast<std::size_t>(s.nproc) * s.ops_per_proc;
    ASSERT_LT(attempted, counter->capacity()) << spec;

    if (mode == Mode::kCrash) {
      ASSERT_EQ(run.crashed_procs, 2u) << spec << " seed=" << seed;
      ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(s.nproc) - 2);
      // Payload elimination is crash-tolerant (bounded handoff, waiter-side
      // reclaim — sharded/elimination.h) but may orphan one ticket per
      // crashed process: a parked waiter that died before consuming its
      // leader's delivery shifts later values up by one.
      const std::uint64_t slack =
          spec.find("elim=1") != std::string::npos ? 2u : 0u;
      std::set<std::uint64_t> unique;
      for (const std::uint64_t v : run.values()) {
        ASSERT_TRUE(unique.insert(v).second)
            << spec << " seed=" << seed << ": duplicate value " << v;
        ASSERT_LT(v, attempted + slack) << spec << " seed=" << seed;
      }
      continue;
    }

    ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(s.nproc));
    ASSERT_EQ(run.ops.size(), attempted);

    std::vector<std::uint64_t> sorted = run.values();
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < attempted; ++i) {
      ASSERT_EQ(sorted[i], i) << spec << " seed=" << seed;
    }
    EXPECT_EQ(run.metrics.ops, attempted);
    EXPECT_GT(run.metrics.steps, 0u);
    EXPECT_GE(run.metrics.steps, run.metrics.shared_steps);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ShardedSpecConformance,
    ::testing::ValuesIn(sweep({
        "striped:stripes=1",
        "striped:stripes=16",
        "striped:stripes=64,elim=1",
        "striped:stripes=8,elim=1,elim_width=1,elim_spins=2",
        "difftree:depth=1",
        "difftree:depth=3",
        "difftree:depth=2,prism=0",
        "difftree:depth=2,leaf=[striped:stripes=4]",
        "difftree:depth=1,leaf=[bounded_fai:m=64]",
        "difftree:depth=2,leaf=[difftree:depth=1,prism=0]",
    })),
    SpecName{});

// --------------------------------------------------- combine spec sweep ---

// The combining front-end over every inner family, under all three
// schedules. Combined values are never dense in real time (the spill pool
// withholds reclaimed runs, timeouts fall through to direct mints), so the
// facet promise is the escrow one: uniqueness within the doubled-demand
// bound. Every request for k values triggers at most one combiner-side mint
// of <= k and at most one direct mint of <= k on its behalf, so the inner
// mints at most 2T values after requests totalling T — with a lease inner,
// the lease's own per-pid quota slack stacks on top.
class CombineSpecConformance
    : public ::testing::TestWithParam<std::tuple<std::string, Mode>> {};

TEST_P(CombineSpecConformance, UniqueValuesWithinDoubledDemand) {
  const auto& [spec, mode] = GetParam();
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto counter = Registry::global().make_counter(spec);
    ASSERT_EQ(counter->consistency(), Consistency::kEscrow) << spec;
    // Crash mode: thresholds up to 12 shared steps land crashes anywhere in
    // the publish/elect/sweep window, including mid-sweep with the combiner
    // lock held (the dedicated CombineCrash test pins that case down).
    const Scenario s = scenario_for(mode, 6, 4, seed + 1, /*max_crashes=*/2,
                                    /*crash_step_max=*/12);
    const api::Run run = Workload(s).run(*counter);

    const std::size_t attempted =
        static_cast<std::size_t>(s.nproc) * s.ops_per_proc;
    const std::uint64_t lease_slack =
        spec.find("lease") != std::string::npos
            ? static_cast<std::uint64_t>(s.nproc) * 64
            : 0u;
    const std::uint64_t bound = 2 * attempted + lease_slack;

    if (mode == Mode::kCrash) {
      ASSERT_EQ(run.crashed_procs, 2u) << spec << " seed=" << seed;
      ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(s.nproc) - 2);
    } else {
      ASSERT_EQ(run.crashed_procs, 0u);
      ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(s.nproc));
      ASSERT_EQ(run.ops.size(), attempted);
    }

    std::set<std::uint64_t> unique;
    for (const std::uint64_t v : run.values()) {
      ASSERT_TRUE(unique.insert(v).second)
          << spec << " seed=" << seed << ": duplicate value " << v;
      ASSERT_LT(v, bound) << spec << " seed=" << seed;
    }
    EXPECT_EQ(run.metrics.ops, run.ops.size());
    EXPECT_GT(run.metrics.steps, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, CombineSpecConformance,
    ::testing::ValuesIn(sweep({
        "combine:inner=atomic_fai",
        "combine:slots=4,spin=16,inner=[striped:stripes=8]",
        "combine:max_combine=8,inner=[difftree:depth=2]",
        "combine:slots=2,inner=[striped:stripes=4,elim=1]",
        "combine:inner=[lease:inner=[striped:stripes=4]]",
    })),
    SpecName{});

// The crash case the sweep above cannot pin down: the elected combiner dies
// *mid-sweep*, still holding the combiner lock. At quiescence the lock is
// observably stuck, the funnel has degraded to pass-through (later requests
// time out of PENDING and mint directly), and the orphan bound mirrors the
// striped-elimination one: the dead combiner strands at most its in-flight
// work list (<= max(max_combine, its own published want) values — get_one
// publishes want=1 here, so <= max_combine) plus the claims it never
// answered;
// every surviving waiter's bounded reclaim gets it a direct value, so
// survivors always complete with unique values inside the doubled-demand
// bound.
TEST(CombineCrash, CombinerDeathMidSweepDegradesToPassThrough) {
  bool saw_stuck_lock = false;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    sharded::StripedCounter inner(sharded::StripedCounter::Options{
        .stripes = 8});
    combining::CombiningFunnel funnel(
        combining::CombiningFunnel::Options{.slots = 4, .spin = 16,
                                            .max_combine = 8},
        [&inner](Ctx& ctx, std::uint64_t k, std::vector<ValueRange>& out) {
          std::vector<sharded::StripedCounter::Run> batch;
          inner.next_batch(ctx, k, batch);
          for (const auto& run : batch) {
            out.push_back(ValueRange{run.base, run.stride, run.count});
          }
        },
        [&inner](Ctx& ctx) { return inner.next(ctx); });

    Scenario s;
    s.nproc = 6;
    // Enough ops that every victim outlasts its crash threshold: even the
    // cheapest (delivered) request costs several shared steps.
    s.ops_per_proc = 8;
    s.backend = Backend::kSimulated;
    s.seed = seed;
    s.crashes.max_crashes = 2;
    s.crashes.crash_step_max = 24;  // deep enough to land inside a sweep
    const api::Run run = Workload(s).run_ops(
        [&funnel](Ctx& ctx) { return funnel.get_one(ctx); });

    ASSERT_EQ(run.crashed_procs, 2u) << "seed=" << seed;
    ASSERT_EQ(run.finished_procs, 4u) << "seed=" << seed;

    const std::size_t attempted =
        static_cast<std::size_t>(s.nproc) * s.ops_per_proc;
    std::set<std::uint64_t> unique;
    for (const std::uint64_t v : run.values()) {
      ASSERT_TRUE(unique.insert(v).second)
          << "seed=" << seed << ": duplicate value " << v;
      ASSERT_LT(v, 2 * attempted) << "seed=" << seed;
    }
    saw_stuck_lock = saw_stuck_lock || funnel.lock_held();
  }
  // The seed range must actually exercise the mid-sweep death at least once;
  // if the protocol or the crash plan shifts, re-tune crash_step_max.
  EXPECT_TRUE(saw_stuck_lock)
      << "no seed in range crashed an elected combiner mid-sweep";
}

// ------------------------------------------------------------ renamings ---

class RenamingConformance
    : public ::testing::TestWithParam<std::tuple<std::string, Mode>> {};

TEST_P(RenamingConformance, UniqueAndTightNames) {
  const auto& [name, mode] = GetParam();
  const RenamingInfo* info = Registry::global().find_renaming(name);
  ASSERT_NE(info, nullptr);

  const Spec defaults;  // run under each entry's default geometry
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    // Hold-all scenario: every acquire keeps its name, so uniqueness and
    // tightness are checkable from the value set. Crash mode: acquires cost
    // >= 1 shared step each, so 4 ops per process outlast thresholds in
    // [1, 2] and the single victim is killed mid-run.
    const Scenario s =
        scenario_for(mode, 4, mode == Mode::kCrash ? 4 : 2, seed + 1);
    const int attempted = s.nproc * s.ops_per_proc;
    ASSERT_LE(attempted, info->max_requests(defaults));

    const auto obj = Registry::global().make_renaming(name);
    const api::Run run = Workload(s).run(*obj);

    if (mode == Mode::kCrash) {
      ASSERT_EQ(run.crashed_procs, 1u) << name << " seed=" << seed;
      ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(s.nproc) - 1);
    } else {
      ASSERT_EQ(run.crashed_procs, 0u);
      ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(s.nproc));
      ASSERT_EQ(run.ops.size(), static_cast<std::size_t>(attempted));
      // Nothing was released, so every acquired name is still held.
      EXPECT_EQ(obj->holders(), static_cast<std::uint64_t>(attempted)) << name;
    }

    // Survivors' names are unique and within the bound for the started
    // requests — crashes may strand names but never violate either.
    const auto unique = renaming::check_unique(run.values());
    EXPECT_TRUE(unique.ok) << name << " seed=" << seed << ": " << unique.error;
    const auto tight = renaming::check_tight(
        run.values(), info->name_bound(attempted, defaults));
    EXPECT_TRUE(tight.ok) << name << " seed=" << seed << ": " << tight.error;

    EXPECT_EQ(run.metrics.ops, run.ops.size());
    EXPECT_GT(run.metrics.steps, 0u);
  }
}

TEST_P(RenamingConformance, ReusableEntriesRecycleReleasedNames) {
  const auto& [name, mode] = GetParam();
  const RenamingInfo* info = Registry::global().find_renaming(name);
  ASSERT_NE(info, nullptr);
  {
    const auto probe = Registry::global().make_renaming(name);
    ASSERT_EQ(probe->reusable(), info->reusable) << name;
  }
  if (!info->reusable) return;  // churn is meaningless for one-shot entries

  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    // Churn scenario: each operation acquires and immediately releases, so
    // at most nproc names are concurrently held even though far more
    // requests run than max_requests would allow a hold-all run.
    const Scenario s = scenario_for(mode, 6, 12, seed + 1);
    const auto obj = Registry::global().make_renaming(name);
    const api::Run run = Workload(s).run_ops([&obj](Ctx& ctx) {
      const std::uint64_t n = obj->acquire(ctx);
      obj->release(ctx, n);
      return n;
    });

    if (mode == Mode::kCrash) {
      ASSERT_EQ(run.crashed_procs, 1u) << name << " seed=" << seed;
      // A holder that crashed between acquire and release leaks exactly its
      // own name; everyone else drained.
      EXPECT_LE(obj->holders(), 1u) << name << " seed=" << seed;
    } else {
      ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(s.nproc));
      EXPECT_EQ(obj->holders(), 0u) << name << " seed=" << seed;
    }

    // Names recycle: far fewer distinct names than completed acquires
    // (72 acquires over at most nproc concurrent holders), and every name
    // stays within the entry's hard bound for nproc concurrent holders.
    // (The *whp* O(holders) smallness is asserted by the long-lived unit
    // tests; here the facet only promises the every-execution bound.)
    const Spec defaults;
    const auto values = run.values();
    const std::set<std::uint64_t> distinct(values.begin(), values.end());
    EXPECT_LT(distinct.size(), values.size()) << name << " seed=" << seed;
    const std::uint64_t bound = info->name_bound(s.nproc, defaults);
    for (const std::uint64_t v : values) {
      EXPECT_GE(v, 1u) << name << " seed=" << seed;
      EXPECT_LE(v, bound) << name << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, RenamingConformance,
    ::testing::ValuesIn(sweep(Registry::global().list(Facet::kRenaming))),
    ParamName{});

// --------------------------------------------------- adaptivity contract ---

TEST(RenamingConformance, AdaptiveEntriesDeclareKOnlyBounds) {
  // Entries marked adaptive must have a name bound independent of any
  // provisioned size param; non-adaptive ones depend on their n.
  const Spec defaults;
  for (const auto& r : Registry::global().renamings()) {
    if (r.adaptive) {
      EXPECT_LE(r.name_bound(2, defaults), 3u) << r.name;
    } else {
      EXPECT_GT(r.name_bound(2, defaults), 3u) << r.name;
    }
  }
}

// ------------------------------------------------------------- readables ---

class ReadableConformance
    : public ::testing::TestWithParam<std::tuple<std::string, Mode>> {};

TEST_P(ReadableConformance, MonotoneReadsWithinIncrementBounds) {
  const auto& [name, mode] = GetParam();
  const ReadableInfo* info = Registry::global().find_readable(name);
  ASSERT_NE(info, nullptr);

  {
    const auto counter = Registry::global().make_readable(name);
    ASSERT_EQ(counter->consistency(), info->consistency) << name;
  }

  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto counter = Registry::global().make_readable(name);
    // Mixed workload: Workload::run makes every third op a read. Crash
    // mode: 6 ops per process (each >= 1 shared step) outlast thresholds
    // in [1, 2].
    Scenario s = scenario_for(mode, 4, 6, seed + 1);
    ASSERT_LE(s.nproc, counter->max_procs()) << name;
    s.record_history = (mode != Mode::kCrash &&
                        info->consistency == Consistency::kLinearizable);
    const api::Run run = Workload(s).run(*counter);

    const std::size_t inc_per_proc = 4, read_per_proc = 2;  // of 6 ops
    const std::uint64_t attempted_incs =
        static_cast<std::uint64_t>(s.nproc) * inc_per_proc;
    const std::uint64_t completed_incs = run.values_of("inc").size();

    if (mode == Mode::kCrash) {
      ASSERT_EQ(run.crashed_procs, 1u) << name << " seed=" << seed;
      ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(s.nproc) - 1);
    } else {
      ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(s.nproc));
      ASSERT_EQ(completed_incs, attempted_incs);
      ASSERT_EQ(run.values_of("read").size(),
                static_cast<std::size_t>(s.nproc) * read_per_proc);
    }

    // Reads never exceed the started increments, and each process's own
    // reads are non-decreasing (they never overlap each other).
    std::map<int, std::uint64_t> last_read;
    for (const auto& op : run.ops) {
      if (op.kind != "read") continue;
      EXPECT_LE(op.value, attempted_incs) << name << " seed=" << seed;
      auto [it, fresh] = last_read.try_emplace(op.pid, op.value);
      if (!fresh) {
        EXPECT_GE(op.value, it->second)
            << name << " seed=" << seed << " pid=" << op.pid
            << ": reads went backwards";
        it->second = op.value;
      }
    }

    // Quiescent exactness: a fresh read sees every completed increment and
    // nothing beyond the started ones (crashed increments may or may not
    // have landed).
    Ctx quiescent_ctx(0, /*seed=*/987 + seed);
    const std::uint64_t final_read = counter->read(quiescent_ctx);
    EXPECT_GE(final_read, completed_incs) << name << " seed=" << seed;
    EXPECT_LE(final_read, attempted_incs) << name << " seed=" << seed;
    if (mode != Mode::kCrash) {
      EXPECT_EQ(final_read, completed_incs) << name << " seed=" << seed;
    }

    EXPECT_EQ(run.metrics.ops, run.ops.size());
    EXPECT_GT(run.metrics.steps, 0u);

    if (s.record_history) {
      sim::CounterSpec spec;
      EXPECT_TRUE(sim::is_linearizable(run.history, spec))
          << name << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ReadableConformance,
    ::testing::ValuesIn(sweep(Registry::global().list(Facet::kReadable))),
    ParamName{});

// ------------------------------------------------------ harness contract ---

TEST(WorkloadMetrics, HardwareRunsReportWallClockThroughput) {
  Scenario s;
  s.nproc = 4;
  s.ops_per_proc = 8;
  s.backend = Backend::kHardware;
  s.seed = 7;
  const api::Run run = Workload::run_counter_spec("atomic_fai", s);
  ASSERT_EQ(run.ops.size(), 32u);
  EXPECT_GT(run.metrics.wall_seconds, 0.0);
  EXPECT_GT(run.metrics.ops_per_sec(), 0.0);
  // The latency recording holds every op (clock granularity can zero out an
  // individual sample, but not the whole run's maximum).
  ASSERT_EQ(run.latency.count(), 32u);
  EXPECT_GT(run.latency.max(), 0u);
  EXPECT_LE(run.latency.percentile(0.50), run.latency.percentile(0.99));
}

TEST(WorkloadMetrics, DroppingOpSamplesKeepsMetricsAndLatency) {
  Scenario s;
  s.nproc = 2;
  s.ops_per_proc = 16;
  s.backend = Backend::kHardware;
  s.seed = 11;
  s.keep_op_samples = false;
  const api::Run run = Workload::run_counter_spec("atomic_fai", s);
  EXPECT_TRUE(run.ops.empty());
  EXPECT_EQ(run.metrics.ops, 32u);
  EXPECT_EQ(run.latency.count(), 32u);
  EXPECT_GT(run.metrics.ops_per_sec(), 0.0);
}

TEST(WorkloadMetrics, BatchedRunsServeEveryValueOfEachRangedMint) {
  // batch > 1 routes run(ICounter&) through next_range; with ops_per_proc
  // not divisible by batch the tail refill requests exactly the remainder,
  // so every minted value is served and the handed set stays a dense prefix.
  for (const Backend backend : {Backend::kSimulated, Backend::kHardware}) {
    Scenario s;
    s.nproc = 4;
    s.ops_per_proc = 10;
    s.batch = 4;
    s.backend = backend;
    s.seed = 5;
    const api::Run run =
        Workload::run_counter_spec("striped:stripes=4", s);
    ASSERT_EQ(run.ops.size(), 40u);
    std::vector<std::uint64_t> sorted = run.values();
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      ASSERT_EQ(sorted[i], i) << "backend=" << static_cast<int>(backend);
    }
  }
}

TEST(WorkloadMetrics, SimulatedRunsHaveNoWallClock) {
  Scenario s;
  s.nproc = 2;
  s.ops_per_proc = 2;
  s.backend = Backend::kSimulated;
  const api::Run run = Workload::run_counter_spec("atomic_fai", s);
  EXPECT_EQ(run.metrics.wall_seconds, 0.0);
  EXPECT_EQ(run.metrics.ops_per_sec(), 0.0);
  EXPECT_EQ(run.latency.count(), 0u);
}

}  // namespace
}  // namespace renamelib::api
