// Tests for the observability layer (src/obs/): the gate's disabled-path
// no-op contract, event-bus shard merging, snapshot delta arithmetic, the
// flight recorder's wrap-around consistency, and the report schema's
// optional per-run events section (round-trip plus old-report parse
// compatibility).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "api/report.h"
#include "api/workload.h"
#include "obs/emit.h"

namespace renamelib::obs {
namespace {

/// Every obs consumer off, bus and ring cleared — each test starts from the
/// process-default state regardless of what ran before it.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_all(); }
  void TearDown() override { reset_all(); }

  static void reset_all() {
    Gate::set(Gate::kCoverage, false);
    Gate::set(Gate::kBus, false);
    Gate::set(Gate::kRecorder, false);
    EventBus::instance().reset();
    FlightRecorder::instance().reset();
  }
};

TEST_F(ObsTest, DisabledEmitIsANoOpOnEveryConsumer) {
  ASSERT_EQ(Gate::mask(), 0u);
  for (int i = 0; i < 100; ++i) {
    emit(Site::kCasFail, static_cast<std::uint64_t>(i));
    emit_for(Site::kSchedCrash, 7, 3);
  }
  EXPECT_TRUE(EventBus::instance().snapshot().empty());
  EXPECT_EQ(FlightRecorder::instance().recorded(), 0u);
  EXPECT_TRUE(FlightRecorder::instance().dump().empty());
  EXPECT_EQ(FlightRecorder::instance().format_tail(), "");
}

TEST_F(ObsTest, GateBitsAreIndependent) {
  EventBus::set_enabled(true);
  EXPECT_TRUE(EventBus::enabled());
  EXPECT_FALSE(FlightRecorder::enabled());
  emit(Site::kElimPair, 1);
  EXPECT_EQ(EventBus::instance().snapshot().count(Site::kElimPair), 1u);
  EXPECT_EQ(FlightRecorder::instance().recorded(), 0u);

  EventBus::set_enabled(false);
  FlightRecorder::set_enabled(true);
  emit(Site::kElimPair, 2);
  EXPECT_EQ(EventBus::instance().snapshot().count(Site::kElimPair), 1u);
  EXPECT_EQ(FlightRecorder::instance().recorded(), 1u);
}

TEST_F(ObsTest, BusMergesPerThreadShardsExactly) {
  EventBus::set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        EventBus::instance().count(Site::kCasFail);
        if (i % 2 == 0) EventBus::instance().count(Site::kElimPair);
      }
    });
  }
  for (auto& t : threads) t.join();
  const EventSnapshot snap = EventBus::instance().snapshot();
  EXPECT_EQ(snap.count(Site::kCasFail),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.count(Site::kElimPair),
            static_cast<std::uint64_t>(kThreads) * kPerThread / 2);
  EXPECT_EQ(snap.total(), snap.count(Site::kCasFail) +
                              snap.count(Site::kElimPair));
}

TEST_F(ObsTest, SnapshotDeltaMergeAndNonzero) {
  EventSnapshot a;
  a.set(Site::kCasFail, 10);
  a.set(Site::kLeaseSeize, 3);
  EventSnapshot b;
  b.set(Site::kCasFail, 4);
  b.set(Site::kElimPair, 5);

  EventSnapshot sum = a;
  sum.merge(b);
  EXPECT_EQ(sum.count(Site::kCasFail), 14u);
  EXPECT_EQ(sum.count(Site::kElimPair), 5u);
  EXPECT_EQ(sum.count(Site::kLeaseSeize), 3u);
  EXPECT_EQ(sum.total(), 22u);

  const EventSnapshot delta = sum - b;
  EXPECT_EQ(delta, a);

  // Saturating: a reset between two snapshots cannot wrap a delta negative.
  const EventSnapshot floor = b - sum;
  EXPECT_EQ(floor.count(Site::kCasFail), 0u);
  EXPECT_EQ(floor.count(Site::kElimPair), 0u);
  EXPECT_TRUE(floor.empty());

  // nonzero() is the sparse ascending-site form reports serialize.
  const auto sparse = a.nonzero();
  ASSERT_EQ(sparse.size(), 2u);
  EXPECT_EQ(sparse[0].first, Site::kCasFail);
  EXPECT_EQ(sparse[0].second, 10u);
  EXPECT_EQ(sparse[1].first, Site::kLeaseSeize);
  EXPECT_EQ(sparse[1].second, 3u);
}

// The per-thread shards of a simulated run merge to exactly the serial
// count: every op through a width-4 bitonic network crosses depth(4) = 3
// balancers, so nproc * ops_per_proc ops emit exactly 3x that many
// kNetBalancer events — no sampling, no loss, no double counting.
TEST_F(ObsTest, SimulatedRunCountsEqualSerialExpectation) {
  EventBus::set_enabled(true);
  api::Scenario s;
  s.nproc = 4;
  s.ops_per_proc = 8;
  s.backend = api::Backend::kSimulated;
  s.seed = 7;
  const api::Run run = api::Workload::run_counter_spec("bitonic_countnet:w=4", s);
  ASSERT_EQ(run.metrics.ops, 32u);
  EXPECT_EQ(run.events.count(Site::kNetBalancer), 32u * 3u);
  // The sched_point site fires once per granted step of the simulation.
  EXPECT_GT(run.events.count(Site::kSchedPoint), 0u);

  // Run::events is a delta: a second identical run reports its own counts,
  // not the accumulated bus totals, and determinism makes them identical.
  const api::Run again = api::Workload::run_counter_spec("bitonic_countnet:w=4", s);
  EXPECT_EQ(again.events, run.events);
}

TEST_F(ObsTest, FlightRecorderWrapKeepsNewestEntriesInOrder) {
  FlightRecorder::set_enabled(true);
  constexpr std::uint64_t kTotal = FlightRecorder::kCapacity * 2 + 57;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    emit_for(Site::kCombineSweep, i, static_cast<int>(i % 5));
  }
  EXPECT_EQ(FlightRecorder::instance().recorded(), kTotal);
  const auto tail = FlightRecorder::instance().dump();
  ASSERT_EQ(tail.size(), FlightRecorder::kCapacity);
  // Oldest retained entry first, consecutive seqs, features intact.
  const std::uint64_t first = kTotal - FlightRecorder::kCapacity;
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i].seq, first + i);
    EXPECT_EQ(tail[i].site, Site::kCombineSweep);
    EXPECT_EQ(tail[i].feature, first + i);
    EXPECT_EQ(tail[i].pid, static_cast<int>((first + i) % 5));
  }
  const std::string text = FlightRecorder::instance().format_tail(4);
  EXPECT_NE(text.find("combine_sweep"), std::string::npos);
  EXPECT_NE(text.find("#" + std::to_string(kTotal - 1)), std::string::npos);
}

TEST_F(ObsTest, ThreadPidScopeTagsAndRestores) {
  FlightRecorder::set_enabled(true);
  {
    ThreadPidScope outer(2);
    emit(Site::kElimPair, 0);
    {
      ThreadPidScope inner(9);
      emit(Site::kElimPair, 1);
    }
    emit(Site::kElimPair, 2);
  }
  emit(Site::kElimPair, 3);  // back to the -1 harness default
  const auto tail = FlightRecorder::instance().dump();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_EQ(tail[0].pid, 2);
  EXPECT_EQ(tail[1].pid, 9);
  EXPECT_EQ(tail[2].pid, 2);
  EXPECT_EQ(tail[3].pid, -1);
}

TEST_F(ObsTest, ReportEventsRoundTripAndStayOptional) {
  api::BenchReport report;
  report.bench = "bench_obs";
  report.git_describe = "v0-test";
  api::ReportRun with;
  with.name = "evented";
  with.spec = "";
  with.backend = "simulated";
  with.threads = 2;
  with.ops = 10;
  with.unit = "steps";
  with.latency = stats::LatencySnapshot::of({1, 2, 3});
  EventSnapshot snap;
  snap.set(Site::kCasFail, 17);
  snap.set(Site::kElimPair, 5);
  with.events = api::report_events(snap);
  report.runs.push_back(with);
  api::ReportRun without = with;
  without.name = "plain";
  without.events.clear();
  report.runs.push_back(without);

  const std::string json = report.to_json();
  // Only the evented run carries the section; event-less runs keep the
  // pre-events byte form.
  EXPECT_NE(json.find("\"events\": {\"cas_fail\": 17, \"elim_pair\": 5}"),
            std::string::npos);
  EXPECT_EQ(json.find("\"events\""), json.rfind("\"events\""));

  const api::BenchReport parsed = api::BenchReport::from_json(json);
  ASSERT_EQ(parsed.runs.size(), 2u);
  EXPECT_EQ(parsed.runs[0].events, with.events);
  EXPECT_TRUE(parsed.runs[1].events.empty());
  EXPECT_EQ(parsed.to_json(), json);
}

TEST_F(ObsTest, OldReportsWithoutEventsStillParse) {
  // A pre-events report (exactly what older binaries wrote): parses, events
  // default to empty, and re-emission reproduces the old bytes.
  api::BenchReport old_style;
  old_style.bench = "bench_old";
  old_style.git_describe = "v0-old";
  api::ReportRun r;
  r.name = "t";
  r.spec = "";
  r.backend = "simulated";
  r.threads = 1;
  r.ops = 3;
  r.unit = "steps";
  r.latency = stats::LatencySnapshot::of({4, 4, 9});
  old_style.runs.push_back(r);
  const std::string json = old_style.to_json();
  ASSERT_EQ(json.find("\"events\""), std::string::npos);

  const api::BenchReport parsed = api::BenchReport::from_json(json);
  ASSERT_EQ(parsed.runs.size(), 1u);
  EXPECT_TRUE(parsed.runs[0].events.empty());
  EXPECT_EQ(parsed.to_json(), json);
}

TEST_F(ObsTest, ReportEventsRejectMalformedCounts) {
  const std::string bad =
      "{\"schema\": \"renamelib.bench_report.v1\", \"bench\": \"b\", "
      "\"git_describe\": \"g\", \"runs\": [{\"name\": \"t\", \"spec\": \"\", "
      "\"backend\": \"simulated\", \"threads\": 1, \"ops\": 1, "
      "\"ops_per_sec\": 0, \"unit\": \"steps\", \"latency\": {\"count\": 0, "
      "\"sum\": 0, \"sum_sq\": 0, \"min\": 0, \"max\": 0, \"buckets\": []}, "
      "\"events\": {\"cas_fail\": -3}}]}";
  EXPECT_THROW(api::BenchReport::from_json(bad), std::invalid_argument);
  const std::string not_object = [&] {
    std::string s = bad;
    const auto pos = s.find("{\"cas_fail\": -3}");
    return s.replace(pos, std::string("{\"cas_fail\": -3}").size(), "[3]");
  }();
  EXPECT_THROW(api::BenchReport::from_json(not_object), std::invalid_argument);
}

TEST_F(ObsTest, SiteNamesAreStableAndDocumented) {
  // Names key report JSON; ids key coverage features. Spot-check the pinned
  // values so an accidental renumber/rename fails here, not in a baseline
  // diff three commits later.
  EXPECT_EQ(static_cast<std::uint32_t>(Site::kCasFail), 3u);
  EXPECT_EQ(static_cast<std::uint32_t>(Site::kCombineDrop), 16u);
  EXPECT_EQ(static_cast<std::uint32_t>(Site::kSplitterDown), 20u);
  EXPECT_STREQ(site_name(Site::kCasFail), "cas_fail");
  EXPECT_STREQ(site_name(Site::kNetBalancer), "net_balancer");
  for (std::size_t i = 1; i < kSiteCount; ++i) {
    const auto site = static_cast<Site>(i);
    EXPECT_STRNE(site_name(site), "unknown") << i;
    EXPECT_STRNE(site_doc(site), "unknown site") << i;
  }
}

}  // namespace
}  // namespace renamelib::obs
