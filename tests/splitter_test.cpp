// Tests for splitters, the randomized splitter tree, and TempName (stage 1
// of the adaptive strong renaming algorithm): safety (at most one stop per
// splitter, unique names), solo behaviour, and the w.h.p. O(log k) depth /
// poly(k) name bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/executor.h"
#include "splitter/splitter.h"
#include "splitter/splitter_tree.h"
#include "splitter/temp_name.h"

namespace renamelib::splitter {
namespace {

TEST(Splitter, SoloStops) {
  Splitter splitter;
  Ctx ctx(0, 1);
  EXPECT_EQ(splitter.acquire(ctx, 1), SplitterOutcome::kStop);
  EXPECT_TRUE(splitter.occupied());
  EXPECT_EQ(splitter.owner(), 1u);
  EXPECT_EQ(ctx.shared_steps(), 5u);  // door, closed?, closed!, door?, owner
}

TEST(Splitter, SequentialSecondDoesNotStop) {
  Splitter splitter;
  Ctx a(0, 1), b(1, 2);
  EXPECT_EQ(splitter.acquire(a, 1), SplitterOutcome::kStop);
  EXPECT_EQ(splitter.acquire(b, 2), SplitterOutcome::kRight);
}

class SplitterAdversarial : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SplitterAdversarial, AtMostOneStopNotAllSameDirection) {
  const std::uint64_t seed = GetParam();
  Splitter splitter;
  const int n = 6;
  std::vector<SplitterOutcome> outcome(n, SplitterOutcome::kDown);
  sim::RandomAdversary adversary(seed);
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      n,
      [&](Ctx& ctx) {
        outcome[ctx.pid()] =
            splitter.acquire(ctx, static_cast<std::uint64_t>(ctx.pid()) + 1);
      },
      adversary, options);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(n));
  int stops = 0, rights = 0, downs = 0;
  for (auto o : outcome) {
    stops += o == SplitterOutcome::kStop;
    rights += o == SplitterOutcome::kRight;
    downs += o == SplitterOutcome::kDown;
  }
  EXPECT_LE(stops, 1);
  // Splitter property: not all k processes can leave in the same non-stop
  // direction.
  EXPECT_LT(rights, n);
  EXPECT_LT(downs, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitterAdversarial,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(SplitterTree, SoloAcquiresRoot) {
  SplitterTree tree;
  Ctx ctx(0, 1);
  const Acquisition acq = tree.acquire(ctx, 1);
  EXPECT_EQ(acq.node_index, 1u);
  EXPECT_EQ(acq.depth, 0);
}

TEST(SplitterTree, SequentialAcquisitionsDistinctNodes) {
  SplitterTree tree;
  std::set<std::uint64_t> nodes;
  for (int p = 0; p < 50; ++p) {
    Ctx ctx(p, static_cast<std::uint64_t>(p) + 100);
    const Acquisition acq = tree.acquire(ctx, static_cast<std::uint64_t>(p) + 1);
    EXPECT_TRUE(nodes.insert(acq.node_index).second)
        << "node " << acq.node_index << " acquired twice";
  }
}

TEST(SplitterTree, NodeAtFindsMaterializedNodes) {
  SplitterTree tree;
  Ctx ctx(0, 7);
  (void)tree.acquire(ctx, 1);
  EXPECT_NE(tree.node_at(1), nullptr);
  EXPECT_TRUE(tree.node_at(1)->splitter.occupied());
}

class SplitterTreeConcurrent
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SplitterTreeConcurrent, UniqueNodesAndLogDepth) {
  const auto [nproc, seed] = GetParam();
  SplitterTree tree;
  std::vector<Acquisition> acq(nproc);
  sim::RandomAdversary adversary(seed * 7 + 1);
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      nproc,
      [&](Ctx& ctx) {
        acq[ctx.pid()] =
            tree.acquire(ctx, static_cast<std::uint64_t>(ctx.pid()) + 1);
      },
      adversary, options);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(nproc));
  std::set<std::uint64_t> nodes;
  int max_depth = 0;
  for (const auto& a : acq) {
    EXPECT_TRUE(nodes.insert(a.node_index).second);
    max_depth = std::max(max_depth, a.depth);
  }
  // Depth is O(log k) w.h.p.; allow a generous constant for small k.
  const double bound = 6.0 * std::log2(static_cast<double>(nproc) + 2) + 4;
  EXPECT_LE(max_depth, bound) << "k=" << nproc << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SplitterTreeConcurrent,
                         ::testing::Combine(::testing::Values(2, 4, 8, 16, 32),
                                            ::testing::Range<std::uint64_t>(0, 6)));

TEST(TempName, UniqueAndPolynomialInK) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    TempName temp;
    const int k = 24;
    std::vector<std::uint64_t> names(k, 0);
    sim::RandomAdversary adversary(seed + 50);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        k,
        [&](Ctx& ctx) {
          names[ctx.pid()] =
              temp.get_name(ctx, static_cast<std::uint64_t>(ctx.pid()) + 1);
        },
        adversary, options);
    ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
    std::set<std::uint64_t> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(k));
    // Names <= k^c w.h.p.; c = 4 is a very generous envelope for k = 24.
    for (auto n : names) EXPECT_LE(n, static_cast<std::uint64_t>(k) * k * k * k);
  }
}

TEST(TempName, StepComplexityLogarithmic) {
  // Mean TempName cost should grow mildly with k (O(log k) w.h.p.).
  auto mean_steps = [](int k) {
    double total = 0;
    const int kRuns = 6;
    for (int run = 0; run < kRuns; ++run) {
      TempName temp;
      sim::RandomAdversary adversary(static_cast<std::uint64_t>(run) + 9);
      sim::RunOptions options;
      options.seed = static_cast<std::uint64_t>(run) + 1;
      auto result = sim::run_simulation(
          k,
          [&](Ctx& ctx) {
            (void)temp.get_name(ctx, static_cast<std::uint64_t>(ctx.pid()) + 1);
          },
          adversary, options);
      total += static_cast<double>(result.total_proc_steps()) / k;
    }
    return total / kRuns;
  };
  const double small = mean_steps(4);
  const double big = mean_steps(32);
  EXPECT_LT(big, small * 5.0);  // 8x processes, far less than 8x steps
}

}  // namespace
}  // namespace renamelib::splitter
