// The multi-process backend end to end: forked workers over a shared arena,
// gossip-merged telemetry, and real SIGKILL crash injection.
//
//   * crash-free exactness — the gossip-merged aggregate equals the
//     per-process sums bit-for-bit (op counts, step sums, latency count),
//     convergence observed in exactly 3 rounds,
//   * event oracle — bitonic_countnet's balancer traversals are
//     data-independent, so the gossip-merged kNetBalancer count must equal
//     ops × depth exactly, for any process count,
//   * conformance sweep — registered dispensers whose shared state is fully
//     allocated at construction keep their facet predicates under
//     backend=proc (structures that grow shared state mid-operation would
//     silently degrade to private pages after fork and are excluded),
//   * kill-victim lease reclaim — a worker SIGKILLed at a seed-derived op
//     count leaves survivors passing the unchanged churn predicates, and
//     quiescent reclaim drains the victim's escrowed ranges to
//     holders() == 0 (the ISSUE's acceptance schedule).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/leases.h"
#include "api/registry.h"
#include "api/workload.h"
#include "lease/lease_broker.h"
#include "obs/event_bus.h"
#include "obs/sites.h"
#include "proc/proc_backend.h"
#include "proc/shm_arena.h"

namespace renamelib::proc {
namespace {

using api::Backend;
using api::Registry;

using api::Scenario;
using api::Workload;

Scenario proc_scenario(int nproc, int ops, std::uint64_t seed) {
  Scenario s;
  s.backend = Backend::kProc;
  s.nproc = nproc;
  s.ops_per_proc = ops;
  s.seed = seed;
  return s;
}

TEST(ProcBackend, CrashFreeCounterAggregateIsExact) {
  const Scenario s = proc_scenario(4, 64, 11);
  const api::Run run = Workload::run_counter_spec("atomic_fai", s);
  const std::uint64_t total = 4 * 64;

  // The gossip-merged op count equals the per-process sums bit-for-bit:
  // every ring sample is accounted for, nothing double-counted.
  EXPECT_EQ(run.metrics.ops, total);
  EXPECT_EQ(run.ops.size(), total);
  EXPECT_EQ(run.gossip_rounds, 3u);
  EXPECT_EQ(run.finished_procs, 4u);
  EXPECT_EQ(run.crashed_procs, 0u);
  EXPECT_EQ(run.proc_steps.size(), 4u);
  EXPECT_GT(run.metrics.wall_seconds, 0.0);
  EXPECT_EQ(run.latency.count(), total);

  // Summing the per-op ring samples reproduces the gossiped step total.
  std::uint64_t step_sum = 0;
  for (const api::OpSample& op : run.ops) step_sum += op.steps;
  EXPECT_EQ(step_sum, run.metrics.steps);

  // A shared fetch-add hands out exactly [0, total): N processes minting
  // from one counter word proves the arena pages really are shared.
  const auto values = run.values();
  const std::set<std::uint64_t> distinct(values.begin(), values.end());
  EXPECT_EQ(distinct.size(), total);
  EXPECT_EQ(*distinct.begin(), 0u);
  EXPECT_EQ(*distinct.rbegin(), total - 1);

  // Each process published its full ring, attributed to its own pid.
  std::map<int, std::uint64_t> per_pid;
  for (const api::OpSample& op : run.ops) per_pid[op.pid] += 1;
  ASSERT_EQ(per_pid.size(), 4u);
  for (const auto& [pid, n] : per_pid) {
    EXPECT_EQ(n, 64u) << "pid " << pid;
  }
}

TEST(ProcBackend, GossipMergedEventsMatchTheBalancerOracle) {
  // kNetBalancer fires once per balancer traversal and bitonic networks are
  // data-independent: every op crosses exactly `depth` balancers, so the
  // event count is a closed-form oracle. Derive depth from a 1-process run,
  // then demand the 4-process gossip-merged count match it exactly.
  obs::EventBus::set_enabled(true);
  obs::EventBus::instance().reset();

  const api::Run r1 =
      Workload::run_counter_spec("bitonic_countnet", proc_scenario(1, 8, 3));
  const std::uint64_t traversals1 = r1.events.count(obs::Site::kNetBalancer);
  ASSERT_GT(traversals1, 0u);
  ASSERT_EQ(traversals1 % 8, 0u);
  const std::uint64_t depth = traversals1 / 8;

  const api::Run r4 =
      Workload::run_counter_spec("bitonic_countnet", proc_scenario(4, 8, 3));
  EXPECT_EQ(r4.events.count(obs::Site::kNetBalancer), depth * 4 * 8);
  EXPECT_EQ(r4.gossip_rounds, 3u);

  obs::EventBus::set_enabled(false);
}

TEST(ProcConformance, CountersStayDistinctUnderProc) {
  for (const char* spec : {"atomic_fai", "striped"}) {
    const Scenario s = proc_scenario(4, 32, 17);
    const api::Run run = Workload::run_counter_spec(spec, s);
    EXPECT_EQ(run.metrics.ops, 128u) << spec;
    EXPECT_EQ(run.ops.size(), 128u) << spec;
    EXPECT_EQ(run.gossip_rounds, 3u) << spec;
    const auto values = run.values();
    const std::set<std::uint64_t> distinct(values.begin(), values.end());
    EXPECT_EQ(distinct.size(), values.size())
        << spec << ": duplicate counter value under backend=proc";
  }
}

TEST(ProcConformance, RenamingsStayUniqueUnderProc) {
  for (const char* spec :
       {"longlived:cap=64",
        "lease:quota=4,procs=8,reclaim=0,inner=[longlived:cap=64]"}) {
    const Scenario s = proc_scenario(4, 8, 23);
    const api::Run run = Workload::run_renaming_spec(spec, s);
    EXPECT_EQ(run.ops.size(), 32u) << spec;
    EXPECT_EQ(run.gossip_rounds, 3u) << spec;
    // Hold-all acquires: every name unique, names start at 1.
    const auto values = run.values();
    const std::set<std::uint64_t> distinct(values.begin(), values.end());
    EXPECT_EQ(distinct.size(), values.size())
        << spec << ": duplicate name under backend=proc";
    EXPECT_GE(*distinct.begin(), 1u) << spec;
  }
}

TEST(ProcConformance, ReadableMixKeepsItsKindsUnderProc) {
  // "striped", not "monotone": the monotone counter's adaptive renaming
  // grows shared nodes mid-operation, and memory a worker allocates after
  // fork() is private to it — siblings chasing such a pointer fault. The
  // sweep is restricted to construction-time-allocated structures (the
  // documented proc-safety contract).
  const Scenario s = proc_scenario(4, 30, 29);
  const api::Run run = Workload::run_readable_spec("striped", s);
  EXPECT_EQ(run.ops.size(), 120u);
  EXPECT_EQ(run.gossip_rounds, 3u);
  // 2:1 inc/read mix (every third op reads): 20 incs + 10 reads per process,
  // kinds round-tripped through the shared kind table.
  EXPECT_EQ(run.values_of("inc").size(), 80u);
  EXPECT_EQ(run.values_of("read").size(), 40u);
  // Reads observe at most the total increments.
  for (const std::uint64_t v : run.values_of("read")) {
    EXPECT_LE(v, 80u);
  }
}

TEST(ProcCrash, VictimDiesBySigkillAndSurvivorsStayExact) {
  Scenario s = proc_scenario(6, 24, 41);
  s.crashes.max_crashes = 2;
  const api::Run run = Workload::run_counter_spec("atomic_fai", s);

  EXPECT_EQ(run.crashed_procs, 2u);
  EXPECT_EQ(run.finished_procs, 4u);
  EXPECT_EQ(run.gossip_rounds, 3u);
  // Gossip aggregates are survivors-only (dead processes cannot gossip):
  // exactly the four finishers' ops.
  EXPECT_EQ(run.metrics.ops, 4u * 24u);
  // The crash-surviving rings additionally carry the victims' completed
  // ops: more samples than the gossiped count, fewer than a full run.
  EXPECT_GT(run.ops.size(), 4u * 24u);
  EXPECT_LT(run.ops.size(), 6u * 24u);
  // Uniqueness must hold across survivors *and* the victims' published
  // ops — a SIGKILLed process's minted values were really handed out.
  const auto values = run.values();
  const std::set<std::uint64_t> distinct(values.begin(), values.end());
  EXPECT_EQ(distinct.size(), values.size());
}

TEST(ProcCrash, KilledLeaseHolderEscrowIsReclaimedToZeroHolders) {
  // The ISSUE's acceptance schedule: kill -9 a worker mid-churn, then show
  // (a) survivors pass the unchanged facet predicates and (b) the victim's
  // escrowed range is returned by quiescent reclaim, draining holders() to
  // exactly zero. The object is built under an explicit ArenaScope (not
  // run_*_spec) because it must outlive the run for the parent-side
  // reclaim — the manual placement pattern run_*_spec automates.
  Registry::global();  // materialize the registry outside the arena
  Scenario s = proc_scenario(6, 12, 5);
  s.crashes.max_crashes = 2;

  ShmArena arena(default_arena_bytes(s), s.seed);
  std::unique_ptr<api::IRenaming> obj;
  {
    ArenaScope scope(arena);
    obj = Registry::global().make_renaming(
        "lease:quota=4,procs=8,reclaim=0,inner=[longlived:cap=64]");
  }
  auto* adapter = dynamic_cast<api::LeasedRenamingAdapter*>(obj.get());
  ASSERT_NE(adapter, nullptr);

  const api::Run run = Workload(s).run_ops([&obj](Ctx& ctx) {
    const std::uint64_t n = obj->acquire(ctx);
    obj->release(ctx, n);
    return n;
  });
  EXPECT_EQ(run.crashed_procs, 2u);
  EXPECT_EQ(run.finished_procs, 4u);
  EXPECT_EQ(run.gossip_rounds, 3u);

  // Unchanged facet predicates over the churn: names stay in the
  // quota-scaled inner bound, for survivors and victims alike.
  for (const std::uint64_t v : run.values()) {
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 4u * 64u);
  }

  // Quiescent reclaim seizes every partially drained lease — the SIGKILLed
  // holders' escrowed ranges included; a third scan finds nothing left.
  Ctx quiescent(7, 105);
  (void)adapter->impl().reclaim(quiescent);
  (void)adapter->impl().reclaim(quiescent);
  EXPECT_EQ(adapter->impl().reclaim(quiescent), 0u);
  EXPECT_EQ(obj->holders(), 0u);

  // Arena discipline: the placed object dies before its arena.
  obj.reset();
}

}  // namespace
}  // namespace renamelib::proc
