// The fuzzer's own test surface (src/fuzz, docs/FUZZING.md), in four
// layers:
//
//   1. Oracle self-tests: every conformance predicate is fed hand-seeded
//      *violating* inputs — a duplicate name, a non-monotone read sequence,
//      a dense-prefix gap, an escrow over-issue — and must reject them. An
//      oracle that silently accepts garbage would make every green fuzzing
//      session meaningless, so the oracles are tested before anything they
//      guard.
//   2. Generator validity: schema-driven generation only ever mints specs
//      the registry validates, canonically printed, and sanitize() is
//      idempotent (shrinking and replay depend on that fixpoint).
//   3. Harness determinism: identically seeded sessions produce identical
//      coverage fingerprints and summaries.
//   4. The end-to-end mutation check: an injected always-wrong oracle must
//      be caught, shrunk to a near-minimal case, and written out as a
//      corpus file that replays to the same failure.
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/registry.h"
#include "core/rng.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "fuzz/generator.h"
#include "fuzz/oracles.h"

namespace renamelib::fuzz {
namespace {

using api::Facet;

// ------------------------------------------------------ oracle self-tests ---

TEST(Oracles, DensePrefixAcceptsPermutations) {
  EXPECT_TRUE(check_dense_prefix({}).ok);
  EXPECT_TRUE(check_dense_prefix({0}).ok);
  EXPECT_TRUE(check_dense_prefix({2, 0, 1, 3}).ok);
}

TEST(Oracles, DensePrefixRejectsGapAndDuplicate) {
  const OracleResult gap = check_dense_prefix({0, 2, 3});
  EXPECT_FALSE(gap.ok);
  EXPECT_EQ(gap.oracle, "dense_prefix");
  EXPECT_NE(gap.detail.find("gap"), std::string::npos) << gap.detail;

  const OracleResult dup = check_dense_prefix({0, 1, 1});
  EXPECT_FALSE(dup.ok);
  EXPECT_NE(dup.detail.find("duplicate"), std::string::npos) << dup.detail;
}

TEST(Oracles, UniqueBounded) {
  EXPECT_TRUE(check_unique_bounded({5, 0, 2}, 6).ok);
  EXPECT_FALSE(check_unique_bounded({1, 1}, 6).ok);
  EXPECT_FALSE(check_unique_bounded({6}, 6).ok);
}

TEST(Oracles, EscrowBoundFlagsOverIssue) {
  // attempted=2, 1 pid, quota=64: bound 66. 70 is an over-issue.
  EXPECT_TRUE(check_escrow_bound({0, 65}, 2, 1, 64).ok);
  const OracleResult over = check_escrow_bound({0, 70}, 2, 1, 64);
  EXPECT_FALSE(over.ok);
  EXPECT_EQ(over.oracle, "escrow_bound");
  EXPECT_NE(over.detail.find("over-issue"), std::string::npos) << over.detail;
  EXPECT_FALSE(check_escrow_bound({3, 3}, 2, 1, 64).ok);  // duplicates too
}

TEST(Oracles, RenamingNamesRejectDuplicateAndLoose) {
  EXPECT_TRUE(check_renaming_names({1, 2}, 2).ok);
  const OracleResult dup = check_renaming_names({1, 1}, 5);
  EXPECT_FALSE(dup.ok);
  EXPECT_EQ(dup.oracle, "renaming_unique");
  const OracleResult loose = check_renaming_names({1, 3}, 2);
  EXPECT_FALSE(loose.ok);
  EXPECT_EQ(loose.oracle, "renaming_tight");
}

TEST(Oracles, ReadableReadsRejectNonMonotoneAndOverCount) {
  const auto read = [](int pid, std::uint64_t v) {
    api::OpSample s;
    s.pid = pid;
    s.value = v;
    s.kind = "read";
    return s;
  };
  EXPECT_TRUE(check_readable_reads({read(0, 1), read(1, 3), read(0, 2)}, 4).ok);

  // pid 0's own reads go backwards: 3 then 2.
  const OracleResult back =
      check_readable_reads({read(0, 3), read(1, 1), read(0, 2)}, 4);
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.oracle, "readable_monotone");

  const OracleResult over = check_readable_reads({read(0, 5)}, 4);
  EXPECT_FALSE(over.ok);
  EXPECT_EQ(over.oracle, "readable_bound");
}

TEST(Oracles, QuiescentRead) {
  EXPECT_TRUE(check_quiescent_read(4, 4, 4, false).ok);
  EXPECT_FALSE(check_quiescent_read(3, 4, 4, false).ok);  // lost an inc
  EXPECT_FALSE(check_quiescent_read(5, 4, 4, false).ok);  // invented one
  EXPECT_TRUE(check_quiescent_read(4, 3, 5, true).ok);    // crash slack
  EXPECT_FALSE(check_quiescent_read(2, 3, 5, true).ok);
  EXPECT_FALSE(check_quiescent_read(6, 3, 5, true).ok);
}

TEST(Oracles, Holders) {
  EXPECT_TRUE(check_holders(1, 0, 1).ok);
  EXPECT_FALSE(check_holders(2, 0, 1).ok);
  EXPECT_FALSE(check_holders(0, 1, 3).ok);
}

// ------------------------------------------------------- corpus round-trip ---

TEST(Corpus, SerializeParseRoundTrip) {
  FuzzCase c;
  c.facet = Facet::kRenaming;
  c.spec = "longlived:cap=16";
  c.work = Work::kChurn;
  c.nproc = 6;
  c.ops_per_proc = 12;
  c.sched = api::Sched::kObstruction;
  c.seed = 99;
  c.max_crashes = 1;
  c.crash_step_max = 3;
  c.arrival = api::Arrival::kBursty;
  c.think_max = 2;
  c.burst_max = 2;
  c.read_period = 4;
  c.note = "escaped \"quote\" and back\\slash";
  const std::string text = serialize_case(c);
  const FuzzCase parsed = parse_case(text);
  EXPECT_EQ(serialize_case(parsed), text);
  EXPECT_EQ(parsed.note, c.note);
  EXPECT_EQ(case_hash(parsed), case_hash(c));
}

TEST(Corpus, ParserRejectsMalformedDocuments) {
  EXPECT_THROW(parse_case("{}"), std::invalid_argument);  // missing format
  EXPECT_THROW(parse_case("{\"format\": \"renamelib.fuzz_case.v1\"}"),
               std::invalid_argument);  // missing spec
  FuzzCase c;
  c.spec = "atomic_fai";
  std::string text = serialize_case(c);
  text.insert(text.rfind('}'), ",\n  \"mystery\": 1\n");
  EXPECT_THROW(parse_case(text), std::invalid_argument);  // unknown key
}

// ------------------------------------------------------ generator validity ---

TEST(Generator, MintsOnlyValidCanonicalSpecs) {
  const api::Registry& reg = api::Registry::global();
  Generator gen(reg);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const FuzzCase c = gen.random_case(rng);
    SCOPED_TRACE(serialize_case(c));
    const api::Spec spec = api::Spec::parse(c.spec);
    ASSERT_NO_THROW(reg.validate(c.facet, spec));
    // Canonical fixpoint: what the generator emits is what reports key on.
    EXPECT_EQ(reg.canonical(c.facet, c.spec), c.spec);
    // Sanitize idempotence: shrinking and replay re-sanitize freely.
    FuzzCase again = c;
    gen.sanitize(again);
    EXPECT_EQ(serialize_case(again), serialize_case(c));
  }
}

TEST(Generator, MutantsStayValid) {
  const api::Registry& reg = api::Registry::global();
  Generator gen(reg);
  Rng rng(19);
  FuzzCase c = gen.random_case(rng);
  for (int i = 0; i < 60; ++i) {
    c = gen.mutate(c, rng);
    SCOPED_TRACE(serialize_case(c));
    ASSERT_NO_THROW(reg.validate(c.facet, api::Spec::parse(c.spec)));
    EXPECT_GE(c.nproc, 1);
    EXPECT_GE(c.ops_per_proc, 1);
    EXPECT_LT(c.max_crashes, static_cast<std::size_t>(c.nproc));
  }
}

// -------------------------------------------------------- run_case basics ---

TEST(RunCase, EveryCatalogEntryPassesAtDefaults) {
  const api::Registry& reg = api::Registry::global();
  Generator gen(reg);
  for (const auto& entry : gen.catalog()) {
    FuzzCase c;
    c.facet = entry.facet;
    c.spec = entry.name;
    c.nproc = 3;
    c.ops_per_proc = 2;
    c.sched = api::Sched::kRoundRobin;
    c.seed = 5;
    gen.sanitize(c);
    SCOPED_TRACE(serialize_case(c));
    const CaseResult r = run_case(c);
    ASSERT_TRUE(r.ran);
    EXPECT_TRUE(r.ok) << (r.failures.empty()
                              ? std::string("?")
                              : r.failures.front().oracle + ": " +
                                    r.failures.front().detail);
  }
}

TEST(RunCase, RejectsInvalidSpecAndHostileGeometry) {
  FuzzCase c;
  c.spec = "no_such_counter";
  EXPECT_THROW(run_case(c), std::invalid_argument);

  c.spec = "lease:procs=2";
  c.nproc = 4;  // broker would abort on pid >= procs; must throw instead
  EXPECT_THROW(run_case(c), std::invalid_argument);
}

TEST(RunCase, LeaseRenamingShedsClientsInsteadOfOverSubscribingInner) {
  // bit_batching:n=2 serves exactly two acquires ever; the broker pins one
  // inner name per client's refill, so a third client would drive the inner
  // past its request budget — a RENAMELIB_ENSURE abort, not an oracle
  // failure. The harness must shed clients (here: to zero, i.e. skip).
  FuzzCase c;
  c.facet = api::Facet::kRenaming;
  c.spec = "lease:inner=[bit_batching:n=2],procs=8";
  c.nproc = 6;
  c.ops_per_proc = 8;
  const CaseResult skipped = run_case(c);
  EXPECT_FALSE(skipped.ran);

  // With a roomy inner the same geometry runs and judges clean.
  c.spec = "lease:inner=[bit_batching:n=1024],procs=8";
  const CaseResult roomy = run_case(c);
  ASSERT_TRUE(roomy.ran);
  EXPECT_TRUE(roomy.ok) << (roomy.failures.empty()
                                ? std::string("?")
                                : roomy.failures.front().oracle + ": " +
                                      roomy.failures.front().detail);
}

// ----------------------------------------------------- harness determinism ---

TEST(Fuzzer, IdenticallySeededSessionsAreIdentical) {
  FuzzOptions o;
  o.seed = 11;
  o.iterations = 40;
  const FuzzSummary a = Fuzzer(o).run();
  const FuzzSummary b = Fuzzer(o).run();
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.interesting, b.interesting);
  EXPECT_EQ(a.coverage_features, b.coverage_features);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.entries_covered, b.entries_covered);
  EXPECT_EQ(a.failures, 0) << (a.failure_notes.empty()
                                   ? std::string()
                                   : a.failure_notes.front());
  EXPECT_EQ(a.entries_covered, a.entries_total);
}

// ----------------------------------------------- injected-bug mutation check ---

// Inject a deliberately wrong invariant — "atomic_fai never hands out the
// value 0" — and require the full pipeline to respond: catch it, shrink the
// case to a near-minimal geometry, and emit a corpus file whose replay still
// fails under the injection and passes without it.
TEST(Fuzzer, InjectedOracleBugIsCaughtShrunkAndReplayable) {
  const ExtraOracle injected = [](const FuzzCase& c,
                                  const std::vector<std::uint64_t>& values) {
    if (c.facet == Facet::kCounter &&
        api::Spec::parse(c.spec).name() == "atomic_fai") {
      for (const std::uint64_t v : values) {
        if (v == 0) {
          return OracleResult::fail("injected", "atomic_fai handed out 0");
        }
      }
    }
    return OracleResult::pass("injected");
  };

  const std::string out_dir =
      (std::filesystem::temp_directory_path() /
       ("renamelib-fuzz-mutation-" + std::to_string(::getpid())))
          .string();
  FuzzOptions o;
  o.seed = 42;
  o.iterations = 25;
  o.out_dir = out_dir;
  o.shrink_budget = 60;
  o.extra_oracle = injected;
  const FuzzSummary s = Fuzzer(o).run();

  EXPECT_GE(s.failures, 1);
  ASSERT_FALSE(s.failure_files.empty());

  const FuzzCase repro = load_case_file(s.failure_files.front());
  EXPECT_NE(repro.note.find("injected"), std::string::npos) << repro.note;

  // Shrunk near-minimal: one process, one op reproduces "handed out 0".
  const CaseResult with_bug = run_case(repro, injected);
  ASSERT_TRUE(with_bug.ran);
  EXPECT_FALSE(with_bug.ok);
  EXPECT_LE(with_bug.attempted, 4u);

  // Without the injection the same case is clean — the failure was the
  // injected oracle, not the library.
  const CaseResult clean = run_case(repro);
  ASSERT_TRUE(clean.ran);
  EXPECT_TRUE(clean.ok);

  std::filesystem::remove_all(out_dir);
}

}  // namespace
}  // namespace renamelib::fuzz
