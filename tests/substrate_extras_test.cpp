// Tests for the deterministic Moir–Anderson grid renaming, the adaptive
// collect of [25], and the periodic counting network.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "countnet/periodic.h"
#include "renaming/moir_anderson.h"
#include "renaming/validate.h"
#include "sim/executor.h"
#include "splitter/collect.h"

namespace renamelib {
namespace {

// --------------------------------------------------------- MoirAnderson ---

TEST(MoirAnderson, SoloGetsNameOneInOneSplitter) {
  renaming::MoirAndersonRenaming ma(8);
  Ctx ctx(0, 1);
  const auto out = ma.rename_instrumented(ctx, 42);
  EXPECT_EQ(out.name, 1u);
  EXPECT_EQ(out.moves, 1u);
}

TEST(MoirAnderson, DeterministicNoCoins) {
  renaming::MoirAndersonRenaming ma(8);
  Ctx ctx(0, 1);
  (void)ma.rename(ctx, 7);
  EXPECT_EQ(ctx.coin_flips(), 0u);
}

TEST(MoirAnderson, SequentialNamesFollowDiagonals) {
  // Sequential processes: each sees only STOP/RIGHT outcomes along row 0;
  // names follow the diagonal numbering of column c: c(c+1)/2 + 1.
  renaming::MoirAndersonRenaming ma(8);
  std::vector<std::uint64_t> names;
  for (int p = 0; p < 5; ++p) {
    Ctx ctx(p, p + 1);
    names.push_back(ma.rename(ctx, p + 1));
  }
  EXPECT_EQ(names, (std::vector<std::uint64_t>{1, 2, 4, 7, 11}));
}

class MoirAndersonSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MoirAndersonSweep, UniqueWithinQuadraticNamespace) {
  const auto [k, seed] = GetParam();
  renaming::MoirAndersonRenaming ma(static_cast<std::size_t>(k));
  std::vector<renaming::MoirAndersonRenaming::Outcome> outs(k);
  sim::RandomAdversary adversary(seed * 3 + 1);
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      k,
      [&](Ctx& ctx) {
        outs[ctx.pid()] = ma.rename_instrumented(
            ctx, static_cast<std::uint64_t>(ctx.pid()) + 1);
      },
      adversary, options);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
  std::vector<std::uint64_t> names;
  for (const auto& o : outs) {
    names.push_back(o.name);
    // Walk length bounded by the triangle diameter.
    EXPECT_LE(o.moves, static_cast<std::uint64_t>(k));
  }
  const auto check = renaming::check_tight(
      names, static_cast<std::uint64_t>(k) * (k + 1) / 2);
  EXPECT_TRUE(check.ok) << check.error << " k=" << k << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, MoirAndersonSweep,
                         ::testing::Combine(::testing::Values(2, 4, 8, 16, 32),
                                            ::testing::Range<std::uint64_t>(0, 6)));

TEST(MoirAnderson, AdaptiveNamespaceDespiteLargeGrid) {
  // Grid provisioned for 64 but only k=5 participate: names stay within
  // 5*6/2 = 15 even under adversarial schedules.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    renaming::MoirAndersonRenaming ma(64);
    const int k = 5;
    std::vector<std::uint64_t> names(k, 0);
    sim::RandomAdversary adversary(seed + 13);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        k,
        [&](Ctx& ctx) { names[ctx.pid()] = ma.rename(ctx, ctx.pid() + 1); },
        adversary, options);
    ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
    EXPECT_TRUE(renaming::check_tight(names, 15).ok) << "seed " << seed;
  }
}

// -------------------------------------------------------------- Collect ---

TEST(AdaptiveCollect, StoreThenCollectSeesValue) {
  splitter::AdaptiveCollect collect;
  Ctx ctx(0, 1);
  const auto h = collect.register_process(ctx, 42);
  collect.store(ctx, h, 1000);
  const auto view = collect.collect(ctx);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0], (std::pair<std::uint64_t, std::uint64_t>{42, 1000}));
}

TEST(AdaptiveCollect, LatestValueWins) {
  splitter::AdaptiveCollect collect;
  Ctx ctx(0, 1);
  const auto h = collect.register_process(ctx, 7);
  collect.store(ctx, h, 1);
  collect.store(ctx, h, 2);
  collect.store(ctx, h, 3);
  const auto view = collect.collect(ctx);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0].second, 3u);
}

TEST(AdaptiveCollect, ConcurrentStoresAllVisibleAfterQuiescence) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    splitter::AdaptiveCollect collect;
    const int k = 10;
    sim::RandomAdversary adversary(seed * 5 + 3);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        k,
        [&](Ctx& ctx) {
          const std::uint64_t id = static_cast<std::uint64_t>(ctx.pid()) + 1;
          const auto h = collect.register_process(ctx, id);
          collect.store(ctx, h, id * 100);
        },
        adversary, options);
    ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
    Ctx reader(k, 777);
    auto view = collect.collect(reader);
    ASSERT_EQ(view.size(), static_cast<std::size_t>(k)) << "seed " << seed;
    std::sort(view.begin(), view.end());
    for (int p = 0; p < k; ++p) {
      EXPECT_EQ(view[p].first, static_cast<std::uint64_t>(p) + 1);
      EXPECT_EQ(view[p].second, (static_cast<std::uint64_t>(p) + 1) * 100);
    }
  }
}

TEST(AdaptiveCollect, CollectSeesOnlyCompleteStores) {
  // A registered process that never stored must not appear.
  splitter::AdaptiveCollect collect;
  Ctx a(0, 1), b(1, 2);
  (void)collect.register_process(a, 10);
  const auto hb = collect.register_process(b, 20);
  collect.store(b, hb, 5);
  const auto view = collect.collect(b);
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0].first, 20u);
}

TEST(AdaptiveCollect, AdaptiveCost) {
  // Collect cost scales with participants, not a provisioned maximum.
  splitter::AdaptiveCollect collect;
  Ctx ctx(0, 3);
  const auto h = collect.register_process(ctx, 1);
  collect.store(ctx, h, 9);
  ctx.reset_counters();
  (void)collect.collect(ctx);
  EXPECT_LE(ctx.shared_steps(), 16u) << "solo collect must be O(1)-ish";
}

// ------------------------------------------------------------- Periodic ---

TEST(PeriodicBlock, SingleBlockStructure) {
  const auto block = countnet::periodic_block(4);
  // Block[4]: two Block[2] (even/odd pairs) + neighbor layer = 4 balancers.
  EXPECT_EQ(block.size(), 4u);
}

class PeriodicStepProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(PeriodicStepProperty, SequentialTokens) {
  const auto [width, tokens] = GetParam();
  countnet::CountingNetwork net = countnet::periodic_counting_network(width);
  Ctx ctx(0, 11);
  for (int t = 0; t < tokens; ++t) {
    (void)net.next_value(ctx, static_cast<std::size_t>(t) % width);
  }
  EXPECT_TRUE(net.has_step_property())
      << "width " << width << " tokens " << tokens;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PeriodicStepProperty,
    ::testing::Combine(::testing::Values<std::size_t>(2, 4, 8),
                       ::testing::Values(1, 5, 8, 17, 32)));

TEST(Periodic, ConcurrentQuiescentStepProperty) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    countnet::CountingNetwork net = countnet::periodic_counting_network(8);
    const int k = 6;
    sim::RandomAdversary adversary(seed + 21);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        k,
        [&](Ctx& ctx) {
          for (int i = 0; i < 3; ++i) {
            (void)net.next_value(ctx, static_cast<std::size_t>(ctx.pid()) % 8);
          }
        },
        adversary, options);
    ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
    EXPECT_TRUE(net.has_step_property()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace renamelib
