// Cross-cutting property tests.
//
// One harness, every renaming implementation: the paper's correctness
// properties (uniqueness; tightness where claimed) must hold for EVERY
// algorithm x adversary x seed combination, including crash injection.
// Plus algebraic properties of the sorting-network layer (composition,
// pruning detection) and accounting invariants of the simulator.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <string>

#include "renaming/adaptive_strong.h"
#include "renaming/bit_batching.h"
#include "renaming/linear_probe.h"
#include "renaming/moir_anderson.h"
#include "renaming/renaming_network.h"
#include "renaming/validate.h"
#include "sim/executor.h"
#include "sortnet/insertion.h"
#include "sortnet/odd_even_merge.h"
#include "sortnet/verify.h"
#include "tas/two_process_tas.h"

namespace renamelib {
namespace {

// ----------------------------------------------- all-renaming harness ---

struct AlgoSpec {
  std::string name;
  /// Factory: fresh instance sized for k participants.
  std::function<std::unique_ptr<renaming::IRenaming>(int k)> make;
  /// Namespace bound the algorithm guarantees for k participants.
  std::function<std::uint64_t(int k)> bound;
  /// Whether initial ids feed the algorithm (ports must be <= M for the
  /// bounded renaming network).
  bool bounded_ports = false;
};

std::vector<AlgoSpec> all_algorithms() {
  std::vector<AlgoSpec> specs;
  specs.push_back(
      {"adaptive_strong",
       [](int) { return std::make_unique<renaming::AdaptiveStrongRenaming>(); },
       [](int k) { return static_cast<std::uint64_t>(k); }, false});
  specs.push_back({"bitbatching",
                   [](int k) {
                     return std::make_unique<renaming::BitBatching>(
                         std::max(k, 2), renaming::SlotTasKind::kHardware);
                   },
                   [](int k) { return static_cast<std::uint64_t>(std::max(k, 2)); },
                   false});
  specs.push_back({"linear_probe",
                   [](int k) {
                     return std::make_unique<renaming::LinearProbeRenaming>(
                         static_cast<std::uint64_t>(k) * 2);
                   },
                   [](int k) { return static_cast<std::uint64_t>(k); }, false});
  specs.push_back({"moir_anderson",
                   [](int k) {
                     return std::make_unique<renaming::MoirAndersonRenaming>(
                         static_cast<std::size_t>(k));
                   },
                   [](int k) {
                     return static_cast<std::uint64_t>(k) * (k + 1) / 2;
                   },
                   false});
  specs.push_back({"renaming_network",
                   [](int k) {
                     return std::make_unique<renaming::RenamingNetwork>(
                         sortnet::odd_even_merge_sort(
                             std::max<std::size_t>(static_cast<std::size_t>(k), 2)));
                   },
                   [](int k) { return static_cast<std::uint64_t>(k); }, true});
  return specs;
}

class EveryAlgorithm
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(EveryAlgorithm, UniqueWithinClaimedNamespace) {
  const auto [algo_index, k, seed] = GetParam();
  const AlgoSpec spec = all_algorithms()[static_cast<std::size_t>(algo_index)];
  auto renaming = spec.make(k);
  std::vector<std::uint64_t> names(k, 0);
  sim::RandomAdversary adversary(seed * 101 + 7);
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      k,
      [&](Ctx& ctx) {
        const std::uint64_t id = static_cast<std::uint64_t>(ctx.pid()) + 1;
        names[ctx.pid()] = renaming->rename(ctx, id);
      },
      adversary, options);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
  const auto check = renaming::check_tight(names, spec.bound(k));
  EXPECT_TRUE(check.ok) << spec.name << ": " << check.error << " k=" << k
                        << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, EveryAlgorithm,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(2, 5, 9, 16),
                                            ::testing::Range<std::uint64_t>(0, 4)));

class EveryAlgorithmCrash
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(EveryAlgorithmCrash, SurvivorsUniqueUnderCrashes) {
  const auto [algo_index, seed] = GetParam();
  const AlgoSpec spec = all_algorithms()[static_cast<std::size_t>(algo_index)];
  const int k = 10;
  auto renaming = spec.make(k);
  std::vector<std::uint64_t> names(k, 0);
  std::vector<std::int64_t> crash_at(k, -1);
  crash_at[1] = 2;
  crash_at[4] = 6;
  crash_at[7] = 11;
  sim::CrashAdversary adversary(std::make_unique<sim::RandomAdversary>(seed + 5),
                                crash_at, 3);
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      k,
      [&](Ctx& ctx) {
        names[ctx.pid()] = renaming->rename(
            ctx, static_cast<std::uint64_t>(ctx.pid()) + 1);
      },
      adversary, options);
  std::vector<std::uint64_t> survivors;
  for (int p = 0; p < k; ++p) {
    if (result.procs[p].finished) survivors.push_back(names[p]);
  }
  const auto check = renaming::check_unique(survivors);
  EXPECT_TRUE(check.ok) << spec.name << ": " << check.error;
  for (auto n : survivors) EXPECT_LE(n, spec.bound(k)) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, EveryAlgorithmCrash,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range<std::uint64_t>(0, 6)));

// ----------------------------------------------- sorting-network algebra ---

TEST(NetworkAlgebra, SortingThenSortingStillSorts) {
  // Appending any comparator sequence to a sorting network preserves
  // sortedness (comparators cannot unsort); exhaustively checked.
  auto net = sortnet::odd_even_merge_sort(8);
  net.append(sortnet::insertion_sort(8), 0);
  EXPECT_TRUE(sortnet::is_sorting_network_exhaustive(net));
}

TEST(NetworkAlgebra, PrefixOfSorterUsuallyDoesNotSort) {
  // Dropping the last comparator of an optimal-size network must break it
  // (otherwise it was not optimal). Build a truncated copy.
  const auto full = sortnet::odd_even_merge_sort(8);
  sortnet::ComparatorNetwork truncated(8);
  for (std::size_t i = 0; i + 1 < full.size(); ++i) {
    truncated.add(full.comparator(i).lo, full.comparator(i).hi);
  }
  EXPECT_FALSE(sortnet::is_sorting_network_exhaustive(truncated));
}

TEST(NetworkAlgebra, ApplyIsIdempotentOnSortedInput) {
  auto net = sortnet::odd_even_merge_sort(16);
  std::vector<int> v(16);
  for (int i = 0; i < 16; ++i) v[i] = i;
  auto w = v;
  net.apply(w);
  EXPECT_EQ(w, v);
}

TEST(NetworkAlgebra, SortingIsPermutationInvariant) {
  Rng rng(31);
  auto net = sortnet::odd_even_merge_sort(12);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint64_t> v(12);
    for (auto& x : v) x = rng.below(100);
    auto sorted_by_net = v;
    net.apply(sorted_by_net);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(sorted_by_net, v);
  }
}

// ------------------------------------------------- simulator accounting ---

TEST(Accounting, TraceStepsMatchProcessCounters) {
  Register<int> reg(0);
  sim::RandomAdversary adversary(3);
  sim::RunOptions options;
  options.seed = 4;
  options.record_trace = true;
  auto result = sim::run_simulation(
      4,
      [&](Ctx& ctx) {
        for (int i = 0; i < 2 + ctx.pid(); ++i) reg.fetch_add(ctx, 1);
      },
      adversary, options);
  for (int p = 0; p < 4; ++p) {
    EXPECT_EQ(result.trace.steps_of(p), result.procs[p].shared_steps) << p;
  }
  EXPECT_EQ(result.total_granted_steps, result.trace.size());
}

TEST(Accounting, GrantedEqualsSumOfSharedSteps) {
  tas::TwoProcessTas t;
  sim::RandomAdversary adversary(9);
  sim::RunOptions options;
  options.seed = 2;
  auto result = sim::run_simulation(
      2, [&](Ctx& ctx) { (void)t.compete(ctx, ctx.pid()); }, adversary, options);
  std::uint64_t total = 0;
  for (const auto& p : result.procs) total += p.shared_steps;
  EXPECT_EQ(result.total_granted_steps, total);
}

TEST(Accounting, StepsNeverBelowSharedSteps) {
  // steps() = shared + coin batches >= shared_steps().
  renaming::AdaptiveStrongRenaming renaming;
  Ctx ctx(0, 8);
  (void)renaming.rename(ctx, 1);
  EXPECT_GE(ctx.steps(), ctx.shared_steps());
  EXPECT_LE(ctx.steps(), ctx.shared_steps() + ctx.coin_flips());
}

}  // namespace
}  // namespace renamelib
