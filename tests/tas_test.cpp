// Tests for test-and-set objects: the two-process TAS invariants (at most
// one winner, no double-loss, solo wins), RatRace's n-process guarantees,
// and behaviour under adversarial schedules and crashes.
#include <gtest/gtest.h>

#include <memory>

#include "sim/executor.h"
#include "tas/hardware_tas.h"
#include "tas/rat_race_tas.h"
#include "tas/two_process_tas.h"

namespace renamelib::tas {
namespace {

// ---------------------------------------------------------------- 2TAS ---

TEST(TwoProcessTas, SoloProcessWins) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    TwoProcessTas tas;
    Ctx ctx(0, seed);
    EXPECT_TRUE(tas.compete(ctx, 0));
  }
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    TwoProcessTas tas;
    Ctx ctx(0, seed);
    EXPECT_TRUE(tas.compete(ctx, 1));
  }
}

TEST(TwoProcessTas, LateArrivalLoses) {
  TwoProcessTas tas;
  Ctx winner(0, 1), loser(1, 2);
  EXPECT_TRUE(tas.compete(winner, 0));
  EXPECT_FALSE(tas.compete(loser, 1));
}

class TwoProcessTasSchedules
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(TwoProcessTasSchedules, ExactlyOneWinnerUnderAdversary) {
  const auto [seed, strategy] = GetParam();
  TwoProcessTas tas;
  int wins[2] = {0, 0};
  int finished[2] = {0, 0};
  std::unique_ptr<sim::Adversary> adversary;
  switch (strategy) {
    case 0:
      adversary = std::make_unique<sim::RoundRobinAdversary>();
      break;
    case 1:
      adversary = std::make_unique<sim::RandomAdversary>(seed * 31 + 7);
      break;
    default:
      adversary = std::make_unique<sim::ObstructionAdversary>(3);
      break;
  }
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      2,
      [&](Ctx& ctx) {
        wins[ctx.pid()] = tas.compete(ctx, ctx.pid()) ? 1 : 0;
        finished[ctx.pid()] = 1;
      },
      *adversary, options);
  ASSERT_EQ(result.finished_count(), 2u);
  // Exactly one winner; in particular never two winners and never two losers.
  EXPECT_EQ(wins[0] + wins[1], 1) << "seed=" << seed << " strategy=" << strategy;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoProcessTasSchedules,
    ::testing::Combine(::testing::Range<std::uint64_t>(0, 25),
                       ::testing::Values(0, 1, 2)));

TEST(TwoProcessTas, WinnerCrashMeansOtherStillDecides) {
  // Crash side 0 early; side 1 must still terminate (and win, running solo
  // afterwards or having lost to a crashed winner is impossible here since
  // the winner never completed: our implementation lets side 1 win).
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    TwoProcessTas tas;
    int outcome1 = -1;
    std::vector<std::int64_t> crash_at = {2, -1};
    sim::CrashAdversary adversary(std::make_unique<sim::RoundRobinAdversary>(),
                                  crash_at, 1);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        2,
        [&](Ctx& ctx) {
          const bool won = tas.compete(ctx, ctx.pid());
          if (ctx.pid() == 1) outcome1 = won ? 1 : 0;
        },
        adversary, options);
    EXPECT_TRUE(result.procs[0].crashed);
    EXPECT_TRUE(result.procs[1].finished);
    EXPECT_NE(outcome1, -1);
  }
}

TEST(TwoProcessTas, ExpectedStepsAreConstant) {
  // Solo expected cost is O(1); average over many instances must be small.
  double total_steps = 0;
  const int kRuns = 200;
  for (int run = 0; run < kRuns; ++run) {
    TwoProcessTas tas;
    Ctx ctx(0, static_cast<std::uint64_t>(run) + 1);
    EXPECT_TRUE(tas.compete(ctx, run % 2));
    total_steps += static_cast<double>(ctx.steps());
  }
  EXPECT_LT(total_steps / kRuns, 20.0);
}

// ----------------------------------------------------------- HardwareTas ---

TEST(HardwareTas, FirstWinsRestLose) {
  HardwareTas tas;
  Ctx a(0, 1), b(1, 2), c(2, 3);
  EXPECT_TRUE(tas.test_and_set(a));
  EXPECT_FALSE(tas.test_and_set(b));
  EXPECT_FALSE(tas.test_and_set(c));
  EXPECT_TRUE(tas.taken());
  EXPECT_EQ(a.shared_steps(), 1u);  // unit cost
}

TEST(HardwareTas, ExactlyOneWinnerConcurrent) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    HardwareTas tas;
    std::vector<int> wins(6, 0);
    sim::RandomAdversary adversary(seed);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        6, [&](Ctx& ctx) { wins[ctx.pid()] = tas.test_and_set(ctx) ? 1 : 0; },
        adversary, options);
    ASSERT_EQ(result.finished_count(), 6u);
    int total = 0;
    for (int w : wins) total += w;
    EXPECT_EQ(total, 1);
  }
}

// -------------------------------------------------------------- RatRace ---

TEST(RatRaceTas, SoloProcessWinsCheaply) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RatRaceTas tas;
    Ctx ctx(0, seed);
    EXPECT_TRUE(tas.test_and_set(ctx));
    EXPECT_LT(ctx.steps(), 60u) << "solo RatRace should be O(1)-ish";
  }
}

class RatRaceSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(RatRaceSweep, AtMostOneWinnerAllDecide) {
  const auto [nproc, seed] = GetParam();
  RatRaceTas tas;
  std::vector<int> wins(nproc, 0);
  sim::RandomAdversary adversary(seed * 131 + 17);
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      nproc, [&](Ctx& ctx) { wins[ctx.pid()] = tas.test_and_set(ctx) ? 1 : 0; },
      adversary, options);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(nproc));
  int total = 0;
  for (int w : wins) total += w;
  EXPECT_EQ(total, 1) << "n=" << nproc << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RatRaceSweep,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8, 16, 32),
                                            ::testing::Range<std::uint64_t>(0, 8)));

TEST(RatRaceTas, CrashTolerant) {
  // Crash half the processes at random points; survivors all decide and at
  // most one process (possibly a crashed one) won.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    RatRaceTas tas;
    const int n = 8;
    std::vector<int> wins(n, 0);
    std::vector<std::int64_t> crash_at(n, -1);
    for (int p = 0; p < n / 2; ++p) crash_at[p] = 2 + static_cast<int>(seed);
    sim::CrashAdversary adversary(std::make_unique<sim::RandomAdversary>(seed),
                                  crash_at, n / 2);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        n, [&](Ctx& ctx) { wins[ctx.pid()] = tas.test_and_set(ctx) ? 1 : 0; },
        adversary, options);
    EXPECT_EQ(result.finished_count() + result.crashed_count(),
              static_cast<std::size_t>(n));
    int total = 0;
    for (int w : wins) total += w;
    EXPECT_LE(total, 1);
    // Some survivor exists and all survivors decided.
    EXPECT_GE(result.finished_count(), static_cast<std::size_t>(n / 2));
  }
}

TEST(RatRaceTas, AdaptiveStepComplexity) {
  // Steps should grow ~log^2 k, not linearly: compare k=4 vs k=32 averages.
  auto mean_steps = [](int nproc) {
    double total = 0;
    const int kRuns = 10;
    for (int run = 0; run < kRuns; ++run) {
      RatRaceTas tas;
      sim::RandomAdversary adversary(static_cast<std::uint64_t>(run));
      sim::RunOptions options;
      options.seed = static_cast<std::uint64_t>(run) + 1;
      auto result = sim::run_simulation(
          nproc, [&](Ctx& ctx) { (void)tas.test_and_set(ctx); }, adversary,
          options);
      total += static_cast<double>(result.total_proc_steps()) / nproc;
    }
    return total / kRuns;
  };
  const double small = mean_steps(4);
  const double big = mean_steps(32);
  // 8x the processes should cost far less than 8x the steps per process.
  EXPECT_LT(big, small * 6.0);
}

}  // namespace
}  // namespace renamelib::tas
