// The proc backend's telemetry algebra and gossip protocol, without forking:
//
//   * merge algebra — EventSnapshot / LatencySnapshot / Metrics merges are
//     commutative, associative, and order-insensitive (the property that
//     makes the telemetry gossip-able at all),
//   * POD round-trips — the shared-memory mirrors (MetricsPod, LatencyPod,
//     EventsPod) reproduce the rich types bit-for-bit, so nothing is lost
//     crossing the process boundary,
//   * constant convergence — run_gossip_inproc over N ∈ {1, 2, 4, 8, 16}
//     converges in exactly 3 rounds and every node's fold equals a
//     directly-summed oracle on every field, bucket, and event cell.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "api/metrics.h"
#include "obs/event_bus.h"
#include "proc/gossip.h"
#include "proc/mailbox.h"
#include "stats/latency_recorder.h"

namespace renamelib::proc {
namespace {

/// Deterministic value scrambler (splitmix64 finalizer): the tests need
/// varied, reproducible payloads, not randomness.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Integer-valued samples keep the double moments exact, so "bit-for-bit"
/// below means literal operator== on sums, not a tolerance.
stats::LatencySnapshot latency_of(std::uint64_t seed, int samples) {
  stats::LatencySnapshot s;
  for (int i = 0; i < samples; ++i) {
    s.add(mix(seed + static_cast<std::uint64_t>(i)) % 1'000'000);
  }
  return s;
}

obs::EventSnapshot events_of(std::uint64_t seed) {
  obs::EventSnapshot s;
  for (std::size_t i = 0; i < obs::kSiteCount; ++i) {
    s.set(static_cast<obs::Site>(i), mix(seed * 31 + i) % 1000);
  }
  return s;
}

api::Metrics metrics_of(std::uint64_t seed) {
  api::Metrics m;
  m.ops = mix(seed) % 500 + 1;
  m.steps = mix(seed + 1) % 5000 + m.ops;
  m.shared_steps = mix(seed + 2) % 2000;
  m.coin_flips = mix(seed + 3) % 300;
  m.max_op_steps = mix(seed + 4) % 64 + 1;
  m.max_proc_steps = mix(seed + 5) % 9000 + 1;
  return m;
}

Contribution contribution_of(int origin) {
  const std::uint64_t s = 0x1000 + static_cast<std::uint64_t>(origin) * 977;
  Contribution c;
  c.origin = static_cast<std::uint32_t>(origin);
  c.finished = 1;
  c.proc_steps = static_cast<double>(mix(s + 6) % 100'000);
  c.end_ns = mix(s + 7) % 1'000'000'000;
  c.metrics.store(metrics_of(s));
  c.latency.store(latency_of(s, 40 + origin));
  c.events.store(events_of(s));
  return c;
}

void expect_latency_eq(const stats::LatencySnapshot& a,
                       const stats::LatencySnapshot& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.sum_sq(), b.sum_sq());
  for (std::size_t i = 0; i < stats::LatencyBuckets::kCount; ++i) {
    ASSERT_EQ(a.bucket(i), b.bucket(i)) << "bucket " << i;
  }
}

void expect_metrics_eq(const api::Metrics& a, const api::Metrics& b) {
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.shared_steps, b.shared_steps);
  EXPECT_EQ(a.coin_flips, b.coin_flips);
  EXPECT_EQ(a.max_op_steps, b.max_op_steps);
  EXPECT_EQ(a.max_proc_steps, b.max_proc_steps);
}

TEST(MergeAlgebra, EventMergeIsCommutativeAndAssociative) {
  const obs::EventSnapshot a = events_of(1), b = events_of(2), c = events_of(3);

  obs::EventSnapshot ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  EXPECT_EQ(ab, ba);

  obs::EventSnapshot ab_c = ab, bc = b;
  ab_c.merge(c);
  bc.merge(c);
  obs::EventSnapshot a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);
}

TEST(MergeAlgebra, LatencyMergeIsOrderInsensitive) {
  std::vector<stats::LatencySnapshot> parts;
  for (int i = 0; i < 4; ++i) parts.push_back(latency_of(100 + i, 30 + i));

  stats::LatencySnapshot forward, reverse, pairwise;
  for (int i = 0; i < 4; ++i) forward.merge(parts[static_cast<std::size_t>(i)]);
  for (int i = 3; i >= 0; --i) reverse.merge(parts[static_cast<std::size_t>(i)]);
  stats::LatencySnapshot left = parts[0], right = parts[2];
  left.merge(parts[1]);
  right.merge(parts[3]);
  pairwise = left;
  pairwise.merge(right);

  expect_latency_eq(forward, reverse);
  expect_latency_eq(forward, pairwise);
}

TEST(MergeAlgebra, MetricsMergeIsOrderInsensitive) {
  const api::Metrics a = metrics_of(11), b = metrics_of(12), c = metrics_of(13);
  api::Metrics forward, reverse;
  forward.merge(a);
  forward.merge(b);
  forward.merge(c);
  reverse.merge(c);
  reverse.merge(b);
  reverse.merge(a);
  expect_metrics_eq(forward, reverse);
}

TEST(MergeAlgebra, LatencyPodRoundTripIsExact) {
  const stats::LatencySnapshot snap = latency_of(7, 200);
  LatencyPod pod;
  pod.store(snap);
  expect_latency_eq(pod.load(), snap);
}

TEST(MergeAlgebra, EventsPodRoundTripIsExact) {
  const obs::EventSnapshot snap = events_of(9);
  EventsPod pod;
  pod.store(snap);
  EXPECT_EQ(pod.load(), snap);
}

TEST(MergeAlgebra, MetricsPodRoundTripsThroughMergeInto) {
  const api::Metrics m = metrics_of(21);
  MetricsPod pod;
  pod.store(m);
  api::Metrics back;
  pod.merge_into(back);
  expect_metrics_eq(back, m);
}

/// The acceptance bar for the gossip merger: for every N, the protocol
/// observes convergence in exactly 3 rounds (publish, exchange, confirm) and
/// every participant's fold equals the directly-summed oracle bit-for-bit.
TEST(GossipConvergence, ThreeRoundsAndExactFoldForAllN) {
  for (const int n : {1, 2, 4, 8, 16}) {
    std::vector<Contribution> contribs;
    for (int i = 0; i < n; ++i) contribs.push_back(contribution_of(i));

    // Oracle: one direct fold in ascending-origin order, no gossip involved.
    api::Metrics om;
    stats::LatencySnapshot ol;
    obs::EventSnapshot oe;
    std::vector<double> osteps;
    std::uint64_t oend = 0;
    for (const Contribution& c : contribs) {
      c.metrics.merge_into(om);
      ol.merge(c.latency.load());
      oe.merge(c.events.load());
      osteps.push_back(c.proc_steps);
      if (c.end_ns > oend) oend = c.end_ns;
    }

    const GossipOutcome out = run_gossip_inproc(contribs);
    EXPECT_EQ(out.rounds, 3u) << "n=" << n;
    ASSERT_EQ(out.folds.size(), static_cast<std::size_t>(n)) << "n=" << n;
    for (int i = 0; i < n; ++i) {
      const GossipFold& f = out.folds[static_cast<std::size_t>(i)];
      expect_metrics_eq(f.metrics, om);
      expect_latency_eq(f.latency, ol);
      EXPECT_EQ(f.events, oe) << "n=" << n << " node=" << i;
      EXPECT_EQ(f.proc_steps, osteps) << "n=" << n << " node=" << i;
      EXPECT_EQ(f.finished, static_cast<std::size_t>(n));
      EXPECT_EQ(f.max_end_ns, oend);
    }
  }
}

/// Re-running an exchange round must not double-count the additive payloads:
/// entry replication is copy-if-unknown, which is idempotent.
TEST(GossipConvergence, RepeatedExchangeIsIdempotent) {
  const int n = 4;
  std::vector<char> storage(GossipGrid::bytes_for(n) + 64);
  void* base = storage.data();
  // Align the wrapped region to the 64-byte stride the grid assumes.
  auto addr = reinterpret_cast<std::uintptr_t>(base);
  base = reinterpret_cast<void*>((addr + 63) & ~std::uintptr_t{63});
  GossipGrid g(base, n);
  g.construct();

  const std::uint64_t everyone = (1ULL << n) - 1;
  std::vector<Contribution> contribs;
  for (int i = 0; i < n; ++i) contribs.push_back(contribution_of(i));
  for (int i = 0; i < n; ++i) {
    gossip_publish(g, i, contribs[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < n; ++i) gossip_exchange(g, i, everyone, 2);
  const GossipFold once = gossip_fold(g, 0, everyone);
  // A whole spurious extra round: every fold must be unchanged.
  for (int i = 0; i < n; ++i) gossip_exchange(g, i, everyone, 3);
  const GossipFold twice = gossip_fold(g, 0, everyone);

  expect_metrics_eq(once.metrics, twice.metrics);
  expect_latency_eq(once.latency, twice.latency);
  EXPECT_EQ(once.events, twice.events);
  EXPECT_EQ(once.proc_steps, twice.proc_steps);
}

}  // namespace
}  // namespace renamelib::proc
