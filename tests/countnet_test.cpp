// Tests for counting networks (Sec. 3 related work, executable):
// the step property of the bitonic counting network under sequential and
// adversarial concurrent token streams, value uniqueness in quiescent use,
// and the Attiya et al. [27] observation that a sorting network counts when
// at most one token enters per wire — which is exactly the renaming-network
// use of Sec. 5.
#include <gtest/gtest.h>

#include <set>

#include "countnet/counting_network.h"
#include "sim/executor.h"
#include "sortnet/odd_even_merge.h"
#include "sortnet/verify.h"

namespace renamelib::countnet {
namespace {

TEST(Balancer, AlternatesPorts) {
  Balancer b;
  Ctx ctx(0, 1);
  EXPECT_EQ(b.traverse(ctx), 0);
  EXPECT_EQ(b.traverse(ctx), 1);
  EXPECT_EQ(b.traverse(ctx), 0);
  EXPECT_EQ(b.tokens(), 3u);
}

class BitonicStepProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(BitonicStepProperty, SequentialTokensKeepStepProperty) {
  const auto [width, tokens] = GetParam();
  CountingNetwork net = CountingNetwork::bitonic(width);
  Ctx ctx(0, 7);
  for (int t = 0; t < tokens; ++t) {
    (void)net.next_value(ctx, static_cast<std::size_t>(t) % width);
  }
  EXPECT_TRUE(net.has_step_property())
      << "width " << width << " tokens " << tokens;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitonicStepProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 4, 8, 16),
                       ::testing::Values(1, 3, 7, 16, 33, 64)));

TEST(BitonicCounting, SequentialValuesAreConsecutive) {
  CountingNetwork net = CountingNetwork::bitonic(8);
  Ctx ctx(0, 3);
  std::set<std::uint64_t> values;
  for (int t = 0; t < 40; ++t) {
    values.insert(net.next_value(ctx, static_cast<std::size_t>(t) % 8));
  }
  ASSERT_EQ(values.size(), 40u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 39u);
}

class BitonicConcurrent
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BitonicConcurrent, QuiescentStepPropertyAndUniqueValues) {
  const auto [k, seed] = GetParam();
  CountingNetwork net = CountingNetwork::bitonic(8);
  const int per = 4;
  std::vector<std::vector<std::uint64_t>> got(k);
  sim::RandomAdversary adversary(seed * 3 + 2);
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      k,
      [&](Ctx& ctx) {
        for (int i = 0; i < per; ++i) {
          got[ctx.pid()].push_back(
              net.next_value(ctx, static_cast<std::size_t>(ctx.pid()) % 8));
        }
      },
      adversary, options);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
  // Quiescence: all tokens exited, step property must hold.
  EXPECT_TRUE(net.has_step_property()) << "k=" << k << " seed=" << seed;
  // Values are unique and form 0..k*per-1.
  std::set<std::uint64_t> all;
  for (const auto& v : got) all.insert(v.begin(), v.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(k) * per);
  EXPECT_EQ(*all.begin(), 0u);
  EXPECT_EQ(*all.rbegin(), static_cast<std::uint64_t>(k) * per - 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitonicConcurrent,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Range<std::uint64_t>(0, 6)));

TEST(SortingNetworkAsCounting, OneTokenPerWireObservation) {
  // [27]: a sorting network counts when at most one token enters per wire:
  // with t tokens on distinct wires, the outputs are exactly wires 0..t-1.
  // (This is precisely the Sec. 5 renaming-network behaviour.)
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    CountingNetwork net{sortnet::odd_even_merge_sort(8)};
    const int k = 5;  // tokens on wires 0,1,...,k-1? use spread wires
    std::vector<std::uint64_t> outs(k, 99);
    sim::RandomAdversary adversary(seed + 9);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        k,
        [&](Ctx& ctx) {
          const std::size_t wire = static_cast<std::size_t>(ctx.pid()) + 2;
          outs[ctx.pid()] = net.traverse(ctx, wire);
        },
        adversary, options);
    ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
    std::set<std::uint64_t> unique(outs.begin(), outs.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(k));
    for (auto o : outs) EXPECT_LT(o, static_cast<std::uint64_t>(k));
  }
}

TEST(SortingNetworkAsCounting, MultiTokenBreaksForNonCountingWirings) {
  // The converse of [27]: with many tokens per wire, a sorting network need
  // not balance. We do not assert failure for a specific wiring (some
  // sorting networks do balance some streams); we assert that the *bitonic
  // counting network* keeps the step property on the same stream, which is
  // the meaningful comparison.
  CountingNetwork bitonic = CountingNetwork::bitonic(4);
  Ctx ctx(0, 5);
  for (int t = 0; t < 9; ++t) (void)bitonic.next_value(ctx, 0);  // one wire!
  EXPECT_TRUE(bitonic.has_step_property());
}

}  // namespace
}  // namespace renamelib::countnet
