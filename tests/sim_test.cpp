// Tests for the adversarial simulator: scheduling strategies, crash
// injection, step accounting, traces, and the step-limit safety valve.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/register.h"
#include "sim/executor.h"

namespace renamelib::sim {
namespace {

TEST(RoundRobin, CyclesThroughPendingProcesses) {
  Register<int> reg(0);
  RoundRobinAdversary adversary;
  RunOptions options;
  options.record_trace = true;
  auto result = run_simulation(
      3, [&](Ctx& ctx) { reg.load(ctx); reg.load(ctx); }, adversary, options);
  ASSERT_EQ(result.trace.size(), 6u);
  // Perfect interleaving: 0,1,2,0,1,2.
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result.trace.events()[i].pid, static_cast<int>(i % 3));
  }
}

TEST(Obstruction, RunsFavoredSolo) {
  Register<int> reg(0);
  ObstructionAdversary adversary(/*budget=*/4);
  RunOptions options;
  options.record_trace = true;
  auto result = run_simulation(
      2, [&](Ctx& ctx) { for (int i = 0; i < 4; ++i) reg.load(ctx); }, adversary,
      options);
  // First 4 granted steps all go to process 0.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(result.trace.events()[i].pid, 0);
  }
  EXPECT_EQ(result.finished_count(), 2u);
}

TEST(RandomAdversary, DifferentSeedsDifferentSchedules) {
  auto schedule = [](std::uint64_t adversary_seed) {
    Register<int> reg(0);
    RandomAdversary adversary(adversary_seed);
    RunOptions options;
    options.record_trace = true;
    auto result = run_simulation(
        4, [&](Ctx& ctx) { for (int i = 0; i < 8; ++i) reg.load(ctx); },
        adversary, options);
    std::vector<int> pids;
    for (const auto& ev : result.trace.events()) pids.push_back(ev.pid);
    return pids;
  };
  EXPECT_EQ(schedule(1), schedule(1));
  EXPECT_NE(schedule(1), schedule(2));
}

TEST(CrashAdversary, KillsAtRequestedStepAndOthersFinish) {
  Register<std::uint64_t> reg(0);
  // Crash process 0 after its 3rd shared step.
  std::vector<std::int64_t> crash_at = {3, -1, -1};
  CrashAdversary adversary(std::make_unique<RoundRobinAdversary>(), crash_at, 1);
  auto result = run_simulation(
      3, [&](Ctx& ctx) { for (int i = 0; i < 10; ++i) reg.fetch_add(ctx, 1); },
      adversary);
  EXPECT_EQ(result.crashed_count(), 1u);
  EXPECT_TRUE(result.procs[0].crashed);
  EXPECT_EQ(result.procs[0].shared_steps, 3u);
  EXPECT_TRUE(result.procs[1].finished);
  EXPECT_TRUE(result.procs[2].finished);
  EXPECT_EQ(reg.peek(), 3u + 10u + 10u);
}

TEST(CrashAdversary, RespectsMaxCrashes) {
  Register<std::uint64_t> reg(0);
  std::vector<std::int64_t> crash_at = {1, 1, 1, 1};
  CrashAdversary adversary(std::make_unique<RoundRobinAdversary>(), crash_at, 2);
  auto result = run_simulation(
      4, [&](Ctx& ctx) { for (int i = 0; i < 5; ++i) reg.fetch_add(ctx, 1); },
      adversary);
  EXPECT_EQ(result.crashed_count(), 2u);
  EXPECT_EQ(result.finished_count(), 2u);
}

TEST(LabelStarving, StarvesLabeledSteps) {
  Register<int> a(0);
  Register<int> b(0);
  LabelStarvingAdversary adversary("victim", /*seed=*/3);
  RunOptions options;
  options.record_trace = true;
  auto result = run_simulation(
      2,
      [&](Ctx& ctx) {
        if (ctx.pid() == 0) {
          LabelScope scope{ctx, "victim/phase"};
          for (int i = 0; i < 3; ++i) a.load(ctx);
        } else {
          for (int i = 0; i < 3; ++i) b.load(ctx);
        }
      },
      adversary, options);
  // All of process 1's steps are granted before any of process 0's.
  const auto& events = result.trace.events();
  std::size_t first_p0 = events.size();
  std::size_t last_p1 = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].pid == 0) first_p0 = std::min(first_p0, i);
    if (events[i].pid == 1) last_p1 = std::max(last_p1, i);
  }
  EXPECT_GT(first_p0, last_p1);
}

TEST(StepLimit, AbortsRunawayExecutions) {
  Register<int> reg(0);
  RoundRobinAdversary adversary;
  RunOptions options;
  options.max_total_steps = 100;
  auto result = run_simulation(
      2, [&](Ctx& ctx) { for (;;) reg.load(ctx); }, adversary, options);
  EXPECT_TRUE(result.hit_step_limit);
  EXPECT_EQ(result.crashed_count(), 2u);
  EXPECT_LE(result.total_granted_steps, 100u);
}

TEST(SimResult, Accounting) {
  Register<int> reg(0);
  RoundRobinAdversary adversary;
  auto result = run_simulation(
      3,
      [&](Ctx& ctx) {
        reg.load(ctx);
        (void)ctx.rng().coin();
        reg.load(ctx);
      },
      adversary);
  EXPECT_EQ(result.total_granted_steps, 6u);
  EXPECT_EQ(result.total_proc_steps(), 9u);  // 2 shared + 1 coin batch each
  EXPECT_EQ(result.max_proc_steps(), 3u);
}

TEST(Trace, RendersAndCounts) {
  Register<int> reg(0);
  RoundRobinAdversary adversary;
  RunOptions options;
  options.record_trace = true;
  auto result = run_simulation(
      2, [&](Ctx& ctx) { reg.store(ctx, 1); }, adversary, options);
  EXPECT_EQ(result.trace.steps_of(0), 1u);
  EXPECT_EQ(result.trace.steps_of(1), 1u);
  EXPECT_NE(result.trace.to_string().find("store"), std::string::npos);
}

TEST(Executor, SharedObjectsLinearizeInGrantOrder) {
  // With a round-robin adversary and one fetch_add each, the observed
  // pre-increment values are exactly 0..n-1 in pid order.
  Register<std::uint64_t> reg(0);
  std::vector<std::uint64_t> observed(4, 0);
  RoundRobinAdversary adversary;
  auto result = run_simulation(
      4, [&](Ctx& ctx) { observed[ctx.pid()] = reg.fetch_add(ctx, 1); },
      adversary);
  ASSERT_EQ(result.finished_count(), 4u);
  for (std::uint64_t p = 0; p < 4; ++p) EXPECT_EQ(observed[p], p);
}

}  // namespace
}  // namespace renamelib::sim
