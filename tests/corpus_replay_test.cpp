// Replays every committed fuzz repro in tests/corpus/ verbatim through the
// same run_case the fuzzer used when it shrank them (docs/FUZZING.md). A
// repro that stops parsing, stops running, or starts failing means either a
// regression of the bug it pinned or a corpus-format break — both are
// exactly what this gate exists to catch. The directory is compiled in as
// RENAMELIB_CORPUS_DIR so the test runs from any build directory.
#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/corpus.h"
#include "fuzz/fuzzer.h"
#include "obs/flight_recorder.h"

#ifndef RENAMELIB_CORPUS_DIR
#error "RENAMELIB_CORPUS_DIR must point at tests/corpus (see CMakeLists.txt)"
#endif

namespace renamelib::fuzz {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(RENAMELIB_CORPUS_DIR)) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusReplay, CorpusIsSeeded) {
  // The corpus ships with committed regression repros; an empty directory
  // means the checkout (or the compiled-in path) is broken.
  EXPECT_GE(corpus_files().size(), 3u);
}

TEST(CorpusReplay, EveryCommittedReproReplaysClean) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path);
    const FuzzCase c = load_case_file(path);
    EXPECT_FALSE(c.note.empty())
        << "corpus cases must say what they regressed";
    const CaseResult r = run_case(c);
    ASSERT_TRUE(r.ran) << "committed repro geometry must be runnable";
    // run_case leaves the flight recorder holding this execution's event
    // tail; on a failing oracle, print the post-mortem timeline.
    EXPECT_TRUE(r.ok) << (r.failures.empty()
                              ? std::string("?")
                              : r.failures.front().oracle + ": " +
                                    r.failures.front().detail)
                      << "\n"
                      << obs::FlightRecorder::instance().format_tail();
  }
}

}  // namespace
}  // namespace renamelib::fuzz
