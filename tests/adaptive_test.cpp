// Tests for the Sec. 6.1 adaptive sorting network: stage geometry, the
// sandwich lemma (Lemma 2), materialized stages sort (Theorem 2), the lazy
// traversal agrees exactly with the materialized network, and traversal
// lengths respect the O(log^c max(n,m)) bound.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "adaptive/adaptive_network.h"
#include "adaptive/sandwich.h"
#include "sortnet/insertion.h"
#include "sortnet/odd_even_merge.h"
#include "sortnet/verify.h"

namespace renamelib::adaptive {
namespace {

using sortnet::ComparatorNetwork;

TEST(StageGeometry, WidthsSquareUp) {
  EXPECT_EQ(StageGeometry::width(0), 2u);
  EXPECT_EQ(StageGeometry::width(1), 4u);
  EXPECT_EQ(StageGeometry::width(2), 16u);
  EXPECT_EQ(StageGeometry::width(3), 256u);
  EXPECT_EQ(StageGeometry::width(4), 65536u);
  EXPECT_EQ(StageGeometry::width(5), 1ULL << 32);
}

TEST(StageGeometry, EllAndSandwichWidth) {
  EXPECT_EQ(StageGeometry::ell(1), 1u);
  EXPECT_EQ(StageGeometry::ell(2), 2u);
  EXPECT_EQ(StageGeometry::ell(3), 8u);
  EXPECT_EQ(StageGeometry::sandwich_width(1), 3u);
  EXPECT_EQ(StageGeometry::sandwich_width(2), 14u);
  EXPECT_EQ(StageGeometry::sandwich_width(3), 248u);
}

TEST(StageGeometry, OwningStage) {
  EXPECT_EQ(StageGeometry::owning_stage(1), 0);
  EXPECT_EQ(StageGeometry::owning_stage(2), 1);
  EXPECT_EQ(StageGeometry::owning_stage(3), 2);
  EXPECT_EQ(StageGeometry::owning_stage(8), 2);
  EXPECT_EQ(StageGeometry::owning_stage(9), 3);
  EXPECT_EQ(StageGeometry::owning_stage(128), 3);
  EXPECT_EQ(StageGeometry::owning_stage(129), 4);
  EXPECT_EQ(StageGeometry::owning_stage(32768), 4);
  EXPECT_EQ(StageGeometry::owning_stage(32769), 5);
}

TEST(Sandwich, GenericCompositionSorts) {
  // Lemma 2 with arbitrary (verified) component networks and several ell.
  for (std::size_t m : {4, 6, 8}) {
    for (std::size_t k : {4, 6}) {
      if (k > m) continue;
      for (std::size_t ell = 1; ell <= k / 2; ++ell) {
        const auto a = sortnet::odd_even_merge_sort(m);
        const auto b = sortnet::insertion_sort(k);
        const auto abc = sandwich(a, b, a, ell);
        EXPECT_EQ(abc.width(), ell + m);
        EXPECT_TRUE(sortnet::is_sorting_network_exhaustive(abc))
            << "m=" << m << " k=" << k << " ell=" << ell;
      }
    }
  }
}

TEST(Sandwich, MaterializedStagesSort) {
  // S_1 (width 4) and S_2 (width 16) exhaustively; S_3 (width 256) via
  // randomized + threshold checks.
  EXPECT_TRUE(sortnet::is_sorting_network_exhaustive(materialize_stage(0)));
  EXPECT_TRUE(sortnet::is_sorting_network_exhaustive(materialize_stage(1)));
  EXPECT_TRUE(sortnet::is_sorting_network_exhaustive(materialize_stage(2)));
  EXPECT_TRUE(
      sortnet::is_sorting_network_randomized(materialize_stage(3), 1500, 11));
}

TEST(Sandwich, StageDepthPolylog) {
  // Theorem 2 with c = 2 (Batcher base): depth of S_j = O(log^2 w_j).
  for (int j = 1; j <= 3; ++j) {
    const auto net = materialize_stage(j);
    const double logw = std::log2(static_cast<double>(net.width()));
    EXPECT_LE(static_cast<double>(net.depth()), 3.0 * logw * logw)
        << "stage " << j;
  }
}

// ------------------------------------------------- lazy vs materialized ---

/// Drives a value through the *materialized* network from `wire` using
/// `decide(step_index)` to resolve each comparator met; returns (exit wire,
/// comparators met). Mirrors RenamingNetwork's routing rule.
std::pair<std::uint64_t, std::uint64_t> route_materialized(
    const ComparatorNetwork& net, std::uint64_t wire0,
    const std::function<bool(std::uint64_t)>& decide) {
  const auto per_wire = net.per_wire();
  std::uint32_t wire = static_cast<std::uint32_t>(wire0);
  std::uint64_t met = 0;
  std::size_t next = 0;
  for (;;) {
    const auto& list = per_wire[wire];
    auto it = std::lower_bound(list.begin(), list.end(),
                               static_cast<std::uint32_t>(next));
    if (it == list.end()) break;
    const auto& c = net.comparator(*it);
    const bool up = decide(met);
    ++met;
    wire = up ? c.lo : c.hi;
    next = *it + 1;
  }
  return {wire, met};
}

class LazyRouteEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(LazyRouteEquivalence, RouteMatchesMaterializedStage) {
  // For every input port of S_j and several deterministic decision policies,
  // the lazy walk and the materialized network visit the same number of
  // comparators and exit on the same wire.
  const int stage = GetParam();
  const ComparatorNetwork net = materialize_stage(stage);
  const AdaptiveNetwork lazy;
  const std::uint64_t half = StageGeometry::width(stage) / 2;

  for (int policy = 0; policy < 4; ++policy) {
    auto decide_by_index = [&](std::uint64_t i) {
      switch (policy) {
        case 0: return true;                    // always win
        case 1: return false;                   // always lose
        case 2: return i % 2 == 0;              // alternate
        default: return (i * 2654435761u) % 3 == 0;  // pseudo-random
      }
    };
    // Only ports <= w_j/2 are *external* inputs of the infinite network that
    // stay within S_j (deeper ports route through larger stages). Paths that
    // exit S_j below w_j/2 would continue into C_{j+1} in the infinite
    // network (not realizable without other winners), so compare only
    // contained paths — and do not run the lazy walk on escaping ones.
    for (std::uint64_t port = 1; port <= half; ++port) {
      auto [mat_wire, mat_met] =
          route_materialized(net, port - 1, decide_by_index);
      if (mat_wire + 1 > half) continue;
      std::uint64_t lazy_met = 0;
      const std::uint64_t lazy_out = lazy.route(
          port, [&](const CompRef&, bool) { return decide_by_index(lazy_met++); });
      EXPECT_EQ(lazy_out, mat_wire + 1)
          << "stage=" << stage << " port=" << port << " policy=" << policy;
      EXPECT_EQ(lazy_met, mat_met)
          << "stage=" << stage << " port=" << port << " policy=" << policy;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Stages, LazyRouteEquivalence, ::testing::Values(1, 2, 3));

TEST(AdaptiveNetwork, SequentialFirstWinsYieldsArrivalOrder) {
  // Sequential processes with first-arrival-wins comparators: the i-th
  // arrival must exit at port i (this is the renaming-network execution in
  // the absence of concurrency). Exercise ports across stage boundaries,
  // including very large temporary names.
  AdaptiveNetwork net;
  std::map<std::uint64_t, std::map<std::uint64_t, int>> winners;  // comp -> taken
  std::set<std::uint64_t> used_ports;
  std::vector<std::uint64_t> ports = {1,  2,   3,    7,    8,     9,   100,
                                      200, 255, 4000, 32768, 40000, 100000};
  std::uint64_t arrival = 0;
  for (std::uint64_t port : ports) {
    ++arrival;
    const std::uint64_t out = net.route(port, [&](const CompRef& c, bool) {
      auto& cell = winners[c.component][c.key()];
      if (cell == 0) {
        cell = 1;  // first visitor wins
        return true;
      }
      return false;
    });
    EXPECT_EQ(out, arrival) << "port " << port;
  }
}

TEST(AdaptiveNetwork, PathLengthPolylogInPort) {
  // Theorem 2: a value entering port n and leaving at port m traverses
  // O(log^2 max(n, m)) comparators with the Batcher base. Winners exit near
  // the top, so solo traversals bound by log^2(port).
  AdaptiveNetwork net;
  auto always_win = [](const CompRef&, bool) { return true; };
  for (std::uint64_t port :
       {2u, 3u, 8u, 16u, 100u, 128u, 1000u, 32768u, 1000000u}) {
    const std::uint64_t len = net.path_length(port, always_win);
    const double logp = std::log2(static_cast<double>(port) + 2);
    EXPECT_LE(static_cast<double>(len), 6.0 * logp * logp + 8) << "port " << port;
    // Solo winner exits at port 1.
    EXPECT_EQ(net.route(port, always_win), 1u);
  }
}

TEST(AdaptiveNetwork, BoundedLossStreakStillExits) {
  // A value can only lose to winners; emulate up to L losses followed by
  // wins (the realizable pattern for a process overtaken by L others). The
  // walk must terminate at a port bounded by the losses it suffered.
  AdaptiveNetwork net;
  for (std::uint64_t losses : {0u, 1u, 3u, 7u, 15u}) {
    for (std::uint64_t port : {1u, 2u, 5u, 8u, 128u, 5000u}) {
      std::uint64_t remaining = losses;
      const std::uint64_t out = net.route(port, [&](const CompRef&, bool) {
        if (remaining > 0) {
          --remaining;
          return false;
        }
        return true;
      });
      EXPECT_GE(out, 1u);
      if (losses == 0) {
        EXPECT_EQ(out, 1u) << "an all-winning value exits at the top";
      } else {
        // Losses push the value down only boundedly: a loss inside a wide
        // sandwich wing can drop it past one stage boundary, but with L
        // losses it stays within one stage of the region owning port L+1.
        const int stage =
            std::min(StageGeometry::owning_stage(losses + 1) + 1,
                     StageGeometry::kMaxStage);
        EXPECT_LE(out, StageGeometry::width(stage) / 2)
            << "port " << port << " losses " << losses;
      }
    }
  }
}

}  // namespace
}  // namespace renamelib::adaptive
