// Tests for the extension modules: pairwise and optimal-small sorting
// networks (as renaming-network bases too), the unbounded fetch-and-
// increment, and end-to-end determinism of full algorithm stacks under the
// simulator (same seed + adversary => identical outcome).
#include <gtest/gtest.h>

#include <set>

#include "counting/unbounded_fai.h"
#include "renaming/adaptive_strong.h"
#include "renaming/bit_batching.h"
#include "renaming/renaming_network.h"
#include "renaming/validate.h"
#include "sim/executor.h"
#include "sortnet/odd_even_merge.h"
#include "sortnet/optimal_small.h"
#include "sortnet/pairwise.h"
#include "sortnet/verify.h"

namespace renamelib {
namespace {

// ------------------------------------------------------------- pairwise ---

class PairwiseWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PairwiseWidths, SortsExhaustively) {
  const std::size_t width = GetParam();
  EXPECT_TRUE(sortnet::is_sorting_network_exhaustive(sortnet::pairwise_sort(width)))
      << "width " << width;
}

INSTANTIATE_TEST_SUITE_P(Widths, PairwiseWidths, ::testing::Values(1, 2, 4, 8, 16));

TEST(Pairwise, LargeWidthRandomized) {
  EXPECT_TRUE(
      sortnet::is_sorting_network_randomized(sortnet::pairwise_sort(128), 3000, 5));
}

TEST(Pairwise, SameSizeAsBatcherFamily) {
  // Pairwise and odd-even have identical size n*log(n)*(log(n)-1)/4 + n - 1.
  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    EXPECT_EQ(sortnet::pairwise_sort(n).size(),
              sortnet::odd_even_merge_sort(n).size())
        << "n=" << n;
  }
}

// -------------------------------------------------------- optimal small ---

class OptimalSmallWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OptimalSmallWidths, SortsExhaustively) {
  const std::size_t width = GetParam();
  EXPECT_TRUE(
      sortnet::is_sorting_network_exhaustive(sortnet::optimal_small_sort(width)))
      << "width " << width;
}

TEST_P(OptimalSmallWidths, NotWorseThanBatcher) {
  const std::size_t width = GetParam();
  if (width < 2) return;
  const auto opt = sortnet::optimal_small_sort(width);
  const auto batcher = sortnet::odd_even_merge_sort(width);
  EXPECT_LE(opt.size(), batcher.size()) << "width " << width;
}

INSTANTIATE_TEST_SUITE_P(Widths, OptimalSmallWidths,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

TEST(OptimalSmall, KnownOptimalSizes) {
  EXPECT_EQ(sortnet::optimal_small_sort(4).size(), 5u);
  EXPECT_EQ(sortnet::optimal_small_sort(5).size(), 9u);
  EXPECT_EQ(sortnet::optimal_small_sort(6).size(), 12u);
  EXPECT_EQ(sortnet::optimal_small_sort(7).size(), 16u);
  EXPECT_EQ(sortnet::optimal_small_sort(8).size(), 19u);
}

TEST(OptimalSmall, WorksAsRenamingNetworkBase) {
  for (std::size_t width : {5u, 8u, 12u}) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      renaming::RenamingNetwork net(sortnet::optimal_small_sort(width));
      const int k = static_cast<int>(width);
      std::vector<std::uint64_t> names(k, 0);
      sim::RandomAdversary adversary(seed + width);
      sim::RunOptions options;
      options.seed = seed;
      auto result = sim::run_simulation(
          k,
          [&](Ctx& ctx) {
            names[ctx.pid()] =
                net.rename(ctx, static_cast<std::uint64_t>(ctx.pid()) + 1);
          },
          adversary, options);
      ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
      EXPECT_TRUE(renaming::check_tight(names, width).ok)
          << "width " << width << " seed " << seed;
    }
  }
}

// -------------------------------------------------------- unbounded fai ---

TEST(UnboundedFai, SequentialNoGapsAcrossEpochs) {
  counting::UnboundedFetchAndIncrement fai;
  Ctx ctx(0, 1);
  for (std::uint64_t expected = 0; expected < 40; ++expected) {
    EXPECT_EQ(fai.fetch_and_increment(ctx), expected);
  }
  // First epoch capacity 8, second 16: 40 values span >= 3 epochs.
  EXPECT_GE(fai.current_epoch(), 2u);
}

class UnboundedFaiSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(UnboundedFaiSweep, ConcurrentValuesExactPrefix) {
  const auto [k, seed] = GetParam();
  counting::UnboundedFetchAndIncrement fai;
  const int per = 3;
  std::vector<std::vector<std::uint64_t>> got(k);
  sim::RandomAdversary adversary(seed * 13 + 7);
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      k,
      [&](Ctx& ctx) {
        for (int i = 0; i < per; ++i) {
          got[ctx.pid()].push_back(fai.fetch_and_increment(ctx));
        }
      },
      adversary, options);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
  std::set<std::uint64_t> all;
  for (const auto& v : got) all.insert(v.begin(), v.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(k) * per);
  EXPECT_EQ(*all.begin(), 0u);
  EXPECT_EQ(*all.rbegin(), static_cast<std::uint64_t>(k) * per - 1);
  // Per process, values must be strictly increasing (program order).
  for (const auto& v : got) {
    for (std::size_t i = 1; i < v.size(); ++i) EXPECT_GT(v[i], v[i - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnboundedFaiSweep,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Range<std::uint64_t>(0, 6)));

// ---------------------------------------------------------- determinism ---

TEST(Determinism, FullRenamingStackReproducible) {
  auto run = [](std::uint64_t seed) {
    renaming::AdaptiveStrongRenaming renaming;
    const int k = 10;
    std::vector<std::uint64_t> names(k, 0);
    sim::RandomAdversary adversary(4242);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        k,
        [&](Ctx& ctx) { names[ctx.pid()] = renaming.rename(ctx, ctx.pid() + 1); },
        adversary, options);
    EXPECT_EQ(result.finished_count(), static_cast<std::size_t>(k));
    names.push_back(result.total_granted_steps);  // include schedule length
    return names;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(Determinism, BitBatchingReproducible) {
  auto run = [](std::uint64_t seed) {
    renaming::BitBatching bb(32, renaming::SlotTasKind::kHardware);
    std::vector<std::uint64_t> names(32, 0);
    sim::RandomAdversary adversary(99);
    sim::RunOptions options;
    options.seed = seed;
    (void)sim::run_simulation(
        32, [&](Ctx& ctx) { names[ctx.pid()] = bb.rename(ctx, 0); }, adversary,
        options);
    return names;
  };
  EXPECT_EQ(run(3), run(3));
}

}  // namespace
}  // namespace renamelib
