// Tests for the long-lived renaming extension: uniqueness among concurrent
// holders, reuse after release (names stay small across unboundedly many
// acquire/release cycles — the property one-shot renaming cannot give), and
// adaptive acquisition cost.
#include <gtest/gtest.h>

#include <set>

#include "renaming/long_lived.h"
#include "sim/executor.h"

namespace renamelib::renaming {
namespace {

TEST(LongLived, SoloAcquireReleaseReuse) {
  LongLivedRenaming names(16);
  Ctx ctx(0, 1);
  std::set<std::uint64_t> seen;
  for (int cycle = 0; cycle < 100; ++cycle) {
    const std::uint64_t n = names.acquire(ctx);
    ASSERT_GE(n, 1u);
    ASSERT_LE(n, 16u);
    seen.insert(n);
    names.release(ctx, n);
  }
  EXPECT_EQ(names.holders(), 0u);
  // A single holder keeps drawing from a constant-size prefix.
  EXPECT_LE(*seen.rbegin(), 4u);
}

TEST(LongLived, ConcurrentHoldersDistinct) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    LongLivedRenaming names(64);
    const int k = 12;
    std::vector<std::uint64_t> held(k, 0);
    sim::RandomAdversary adversary(seed * 3 + 5);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        k, [&](Ctx& ctx) { held[ctx.pid()] = names.acquire(ctx); }, adversary,
        options);
    ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
    std::set<std::uint64_t> unique(held.begin(), held.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(k));
    EXPECT_EQ(names.holders(), static_cast<std::uint64_t>(k));
  }
}

TEST(LongLived, ChurnKeepsNamespaceSmall) {
  // k processes cycle acquire/release many times; every held name must stay
  // well below capacity because releases recycle the namespace.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    LongLivedRenaming names(256);
    const int k = 8;
    std::vector<std::uint64_t> max_name(k, 0);
    sim::RandomAdversary adversary(seed + 31);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        k,
        [&](Ctx& ctx) {
          for (int cycle = 0; cycle < 25; ++cycle) {
            const std::uint64_t n = names.acquire(ctx);
            max_name[ctx.pid()] = std::max(max_name[ctx.pid()], n);
            names.release(ctx, n);
          }
        },
        adversary, options);
    ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
    for (int p = 0; p < k; ++p) {
      // With k = 8 concurrent holders max, names O(k) w.h.p.: generous 8x.
      EXPECT_LE(max_name[p], 64u) << "pid " << p << " seed " << seed;
    }
    EXPECT_EQ(names.holders(), 0u);
  }
}

TEST(LongLived, AdaptiveAcquisitionCost) {
  // Acquisition probes scale with holders, not capacity: a lone process on a
  // huge namespace pays O(1) probes.
  LongLivedRenaming names(1 << 16);
  Ctx ctx(0, 9);
  double total_probes = 0;
  const int kCycles = 50;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    const auto out = names.acquire_instrumented(ctx);
    total_probes += static_cast<double>(out.probes);
    names.release(ctx, out.name);
  }
  EXPECT_LT(total_probes / kCycles, 4.0);
}

TEST(LongLived, CrashedHolderLeaksOnlyItsName) {
  // A holder that crashes never releases: its name stays taken, everyone
  // else keeps cycling fine (graceful degradation, paper's crash model).
  LongLivedRenaming names(64);
  std::vector<std::int64_t> crash_at = {6, -1, -1, -1};
  sim::CrashAdversary adversary(std::make_unique<sim::RandomAdversary>(3),
                                crash_at, 1);
  sim::RunOptions options;
  options.seed = 11;
  auto result = sim::run_simulation(
      4,
      [&](Ctx& ctx) {
        for (int cycle = 0; cycle < 10; ++cycle) {
          const std::uint64_t n = names.acquire(ctx);
          names.release(ctx, n);
        }
      },
      adversary, options);
  EXPECT_EQ(result.crashed_count(), 1u);
  // At most one leaked holder slot.
  EXPECT_LE(names.holders(), 1u);
}

TEST(LongLived, CapacityExhaustionSweepStillWorks) {
  // Fill all but one slot, then the last acquire must find the hole via the
  // deterministic sweep.
  LongLivedRenaming names(8);
  Ctx ctx(0, 2);
  std::vector<std::uint64_t> held;
  for (int i = 0; i < 7; ++i) held.push_back(names.acquire(ctx));
  const std::uint64_t last = names.acquire(ctx);
  EXPECT_GE(last, 1u);
  EXPECT_LE(last, 8u);
  std::set<std::uint64_t> all(held.begin(), held.end());
  all.insert(last);
  EXPECT_EQ(all.size(), 8u);
}

}  // namespace
}  // namespace renamelib::renaming
