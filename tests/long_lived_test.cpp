// Tests for the long-lived renaming extension: uniqueness among concurrent
// holders, reuse after release (names stay small across unboundedly many
// acquire/release cycles — the property one-shot renaming cannot give), and
// adaptive acquisition cost.
//
// Scheduling goes through the api facade: concurrent, churn, and crash
// scenarios run as `longlived` specs under api::Workload (the facet-driven
// conformance suite adds the generic uniqueness/tightness sweep on top).
// Only the assertions that need the native object — instrumented probe
// counts and the deterministic capacity sweep — drive LongLivedRenaming
// directly.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "api/workload.h"
#include "renaming/long_lived.h"

namespace renamelib::renaming {
namespace {

api::Scenario sim_scenario(int nproc, int ops_per_proc, std::uint64_t seed) {
  api::Scenario s;
  s.nproc = nproc;
  s.ops_per_proc = ops_per_proc;
  s.backend = api::Backend::kSimulated;
  s.seed = seed;
  return s;
}

TEST(LongLived, SoloAcquireReleaseReuse) {
  LongLivedRenaming names(16);
  Ctx ctx(0, 1);
  std::set<std::uint64_t> seen;
  for (int cycle = 0; cycle < 100; ++cycle) {
    const std::uint64_t n = names.acquire(ctx);
    ASSERT_GE(n, 1u);
    ASSERT_LE(n, 16u);
    seen.insert(n);
    names.release(ctx, n);
  }
  EXPECT_EQ(names.holders(), 0u);
  // A single holder keeps drawing from a constant-size prefix.
  EXPECT_LE(*seen.rbegin(), 4u);
}

TEST(LongLived, ConcurrentHoldersDistinct) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto names = api::Registry::global().make_renaming("longlived:cap=64");
    const int k = 12;
    // Hold-all run: every process acquires once and keeps the name.
    const api::Run run = api::Workload(sim_scenario(k, 1, seed + 1)).run(*names);
    ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(k));
    const auto held = run.values();
    const std::set<std::uint64_t> unique(held.begin(), held.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(k));
    EXPECT_EQ(names->holders(), static_cast<std::uint64_t>(k));
  }
}

TEST(LongLived, ChurnKeepsNamespaceSmall) {
  // k processes cycle acquire/release many times; every held name must stay
  // well below capacity because releases recycle the namespace.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto names =
        api::Registry::global().make_renaming("longlived:cap=256");
    const int k = 8;
    const api::Run run =
        api::Workload(sim_scenario(k, 25, seed + 1)).run_ops([&](Ctx& ctx) {
          const std::uint64_t n = names->acquire(ctx);
          names->release(ctx, n);
          return n;
        });
    ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(k));
    // With k = 8 concurrent holders max, names O(k) w.h.p.: generous 8x.
    const auto values = run.values();
    ASSERT_FALSE(values.empty());
    EXPECT_LE(*std::max_element(values.begin(), values.end()), 64u)
        << "seed " << seed;
    EXPECT_EQ(names->holders(), 0u);
  }
}

TEST(LongLived, AdaptiveAcquisitionCost) {
  // Acquisition probes scale with holders, not capacity: a lone process on a
  // huge namespace pays O(1) probes.
  LongLivedRenaming names(1 << 16);
  Ctx ctx(0, 9);
  double total_probes = 0;
  const int kCycles = 50;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    const auto out = names.acquire_instrumented(ctx);
    total_probes += static_cast<double>(out.probes);
    names.release(ctx, out.name);
  }
  EXPECT_LT(total_probes / kCycles, 4.0);
}

TEST(LongLived, CrashedHolderLeaksOnlyItsName) {
  // A holder that crashes never releases: its name stays taken, everyone
  // else keeps cycling fine (graceful degradation, paper's crash model).
  // The crash plan is the harness's seed-derived injection, not a hand-built
  // sim::CrashAdversary.
  const auto names = api::Registry::global().make_renaming("longlived:cap=64");
  api::Scenario s = sim_scenario(4, 10, 11);
  s.crashes.max_crashes = 1;
  s.crashes.crash_step_max = 6;
  const api::Run run = api::Workload(s).run_ops([&](Ctx& ctx) {
    const std::uint64_t n = names->acquire(ctx);
    names->release(ctx, n);
    return n;
  });
  EXPECT_EQ(run.crashed_procs, 1u);
  EXPECT_EQ(run.finished_procs, 3u);
  // At most one leaked holder slot.
  EXPECT_LE(names->holders(), 1u);
}

TEST(LongLived, CapacityExhaustionSweepStillWorks) {
  // Fill all but one slot, then the last acquire must find the hole via the
  // deterministic sweep.
  LongLivedRenaming names(8);
  Ctx ctx(0, 2);
  std::vector<std::uint64_t> held;
  for (int i = 0; i < 7; ++i) held.push_back(names.acquire(ctx));
  const std::uint64_t last = names.acquire(ctx);
  EXPECT_GE(last, 1u);
  EXPECT_LE(last, 8u);
  std::set<std::uint64_t> all(held.begin(), held.end());
  all.insert(last);
  EXPECT_EQ(all.size(), 8u);
}

}  // namespace
}  // namespace renamelib::renaming
