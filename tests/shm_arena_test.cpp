// ShmArena lifecycle and the operator-new routing layer:
//
//   * allocation — alignment, containment, bump accounting,
//   * hygiene — the /dev/shm name is unlinked before the constructor
//     returns, and a planted stale segment under the exact next name is
//     discarded (never reattached) with a fresh segment created in place,
//   * routing — inside an ArenaScope the *global* operator new lands
//     allocations (including container internals) in the arena; operator
//     delete of arena memory is a no-op and plain heap traffic is untouched,
//   * sharing — a fork()ed child's writes through an arena pointer are
//     visible to the parent (the property the whole proc backend rests on).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "proc/shm_arena.h"

namespace renamelib::proc {
namespace {

/// Linux maps POSIX shm names onto /dev/shm/<name minus the leading slash>.
bool dev_shm_entry_exists(const std::string& shm_name) {
  return ::access(("/dev/shm" + shm_name).c_str(), F_OK) == 0;
}

TEST(ShmArena, AllocAlignsContainsAndAccounts) {
  ShmArena arena(1 << 20, /*tag=*/0x11);
  EXPECT_GE(arena.capacity(), std::size_t{1} << 20);
  const std::size_t used0 = arena.used();

  void* a = arena.alloc(100, 64);
  void* b = arena.alloc(8, 4096);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 4096, 0u);
  EXPECT_TRUE(arena.contains(a));
  EXPECT_TRUE(arena.contains(b));
  EXPECT_GT(arena.used(), used0 + 100);

  int on_stack = 0;
  EXPECT_FALSE(arena.contains(&on_stack));
  EXPECT_FALSE(arena_owns(&on_stack));
}

TEST(ShmArena, NameIsUnlinkedBeforeConstructionReturns) {
  ShmArena arena(1 << 16, /*tag=*/0x22);
  // The kernel object is alive (we can allocate and touch pages) but the
  // name is already gone: no exit path can leak a /dev/shm entry.
  auto* word = static_cast<std::uint64_t*>(arena.alloc(sizeof(std::uint64_t), 8));
  *word = 42;
  EXPECT_FALSE(dev_shm_entry_exists(arena.name()));
}

TEST(ShmArena, DiscardsPlantedStaleSegmentInsteadOfReattaching) {
  // Names are pid + tag + a process-local counter, so the next arena's name
  // is predictable from this probe's: same prefix, counter + 1.
  const std::uint64_t tag = 0xABC;
  std::string next_name;
  {
    ShmArena probe(1 << 14, tag);
    const std::string name = probe.name();
    const auto dash = name.rfind('-');
    ASSERT_NE(dash, std::string::npos);
    const std::uint64_t ctr = std::strtoull(name.c_str() + dash + 1, nullptr, 10);
    next_name = name.substr(0, dash + 1) + std::to_string(ctr + 1);
  }

  // Plant a stale segment under the predicted name, as a SIGKILLed prior
  // run (after pid reuse) would have left it.
  int fd = ::shm_open(next_name.c_str(), O_CREAT | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 4096), 0);
  ::close(fd);
  ASSERT_TRUE(dev_shm_entry_exists(next_name));

  // The constructor must hit EEXIST, refuse to reattach, and create fresh.
  ShmArena arena(1 << 14, tag);
  EXPECT_EQ(arena.name(), next_name);
  EXPECT_FALSE(dev_shm_entry_exists(next_name));
  void* p = arena.alloc(64, 64);
  EXPECT_TRUE(arena.contains(p));
}

TEST(ShmArena, ScopeRoutesGlobalOperatorNew) {
  ShmArena arena(1 << 20, /*tag=*/0x33);
  int* outside = new int(1);
  EXPECT_FALSE(arena_owns(outside));

  {
    ArenaScope scope(arena);
    EXPECT_EQ(ShmArena::current(), &arena);

    auto* p = new std::uint64_t(7);
    EXPECT_TRUE(arena.contains(p));
    EXPECT_TRUE(arena_owns(p));
    delete p;  // no-op for arena memory (dropped wholesale at unmap)

    // Container internals route too: both the vector header and its buffer
    // must land in the arena, or a forked process would see a private copy.
    auto* v = new std::vector<int>();
    v->resize(1024, 3);
    EXPECT_TRUE(arena.contains(v));
    EXPECT_TRUE(arena.contains(v->data()));
    delete v;  // dtor runs; both frees are arena no-ops
  }

  // Outside the scope, allocation is plain heap again.
  int* after = new int(3);
  EXPECT_FALSE(arena_owns(after));
  delete after;
  delete outside;
}

TEST(ShmArena, CurrentTracksNestedArenasLifo) {
  EXPECT_EQ(ShmArena::current(), nullptr);
  {
    ShmArena outer(1 << 16, 0x44);
    EXPECT_EQ(ShmArena::current(), &outer);
    {
      ShmArena inner(1 << 16, 0x45);
      EXPECT_EQ(ShmArena::current(), &inner);
      EXPECT_TRUE(arena_owns(inner.alloc(8, 8)));
      EXPECT_TRUE(arena_owns(outer.alloc(8, 8)));
    }
    EXPECT_EQ(ShmArena::current(), &outer);
  }
  EXPECT_EQ(ShmArena::current(), nullptr);
}

TEST(ShmArena, WritesAreSharedAcrossFork) {
  ShmArena arena(1 << 16, /*tag=*/0x55);
  auto* flag = new (arena.alloc(sizeof(std::atomic<std::uint64_t>), 64))
      std::atomic<std::uint64_t>(0);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    flag->store(0xC0FFEE, std::memory_order_release);
    std::_Exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  EXPECT_EQ(flag->load(std::memory_order_acquire), 0xC0FFEEu);
}

}  // namespace
}  // namespace renamelib::proc
