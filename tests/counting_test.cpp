// Tests for the counting applications (Sec. 8): max registers, the
// monotone-consistent counter (Lemma 4, including the paper's
// non-linearizability scenario), l-test-and-set (Lemma 5), the m-valued
// fetch-and-increment (Theorem 6), and the baselines.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "api/counters.h"
#include "api/workload.h"
#include "counting/baselines.h"
#include "counting/bounded_fai.h"
#include "counting/l_test_and_set.h"
#include "counting/max_register.h"
#include "counting/monotone_counter.h"
#include "sim/executor.h"

namespace renamelib::counting {
namespace {

// ----------------------------------------------------------- MaxRegister ---

TEST(MaxRegister, SequentialSemantics) {
  MaxRegister reg(64);
  Ctx ctx(0, 1);
  EXPECT_EQ(reg.read(ctx), 0u);
  reg.write_max(ctx, 5);
  EXPECT_EQ(reg.read(ctx), 5u);
  reg.write_max(ctx, 3);  // smaller: no effect
  EXPECT_EQ(reg.read(ctx), 5u);
  reg.write_max(ctx, 63);
  EXPECT_EQ(reg.read(ctx), 63u);
}

TEST(MaxRegister, AllValuesRoundTrip) {
  for (std::uint64_t v = 0; v < 32; ++v) {
    MaxRegister reg(32);
    Ctx ctx(0, 1);
    reg.write_max(ctx, v);
    EXPECT_EQ(reg.read(ctx), v);
  }
}

TEST(MaxRegister, LogarithmicCost) {
  MaxRegister reg(1 << 16);
  Ctx ctx(0, 1);
  reg.write_max(ctx, 12345);
  const auto w = ctx.shared_steps();
  EXPECT_LE(w, 16u);  // one switch access per level
  (void)reg.read(ctx);
  EXPECT_LE(ctx.shared_steps() - w, 16u);
}

class MaxRegisterConcurrent : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxRegisterConcurrent, ReadsNeverExceedMaxWrittenAndConverge) {
  const std::uint64_t seed = GetParam();
  MaxRegister reg(256);
  const int n = 8;
  std::vector<std::uint64_t> final_read(n, 0);
  sim::RandomAdversary adversary(seed);
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      n,
      [&](Ctx& ctx) {
        const std::uint64_t mine = 10 * (ctx.pid() + 1) + ctx.rng().below(10);
        reg.write_max(ctx, mine);
        final_read[ctx.pid()] = reg.read(ctx);
      },
      adversary, options);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(n));
  Ctx reader(n, 999);
  const std::uint64_t settled = reg.read(reader);
  EXPECT_GE(settled, 10ull * n);  // the largest write is visible
  for (auto r : final_read) {
    EXPECT_LE(r, settled);  // never above the eventual max
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxRegisterConcurrent,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(MaxRegister, ReadAfterOwnWriteSeesAtLeastOwnValue) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    MaxRegister reg(128);
    const int n = 6;
    std::vector<bool> ok(n, false);
    sim::RandomAdversary adversary(seed * 3 + 1);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        n,
        [&](Ctx& ctx) {
          const std::uint64_t mine = 1 + ctx.pid() * 7;
          reg.write_max(ctx, mine);
          ok[ctx.pid()] = reg.read(ctx) >= mine;
        },
        adversary, options);
    ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) EXPECT_TRUE(ok[p]) << "pid " << p;
  }
}

TEST(UnboundedMaxRegister, CrossesBucketBoundaries) {
  UnboundedMaxRegister reg;
  Ctx ctx(0, 1);
  EXPECT_EQ(reg.read(ctx), 0u);
  for (std::uint64_t v : {1u, 2u, 3u, 4u, 7u, 8u, 1000u, 65536u, 1000000u}) {
    reg.write_max(ctx, v);
    EXPECT_EQ(reg.read(ctx), v);
  }
  reg.write_max(ctx, 5);  // stale write
  EXPECT_EQ(reg.read(ctx), 1000000u);
}

// ------------------------------------------------------ MonotoneCounter ---

TEST(MonotoneCounter, SequentialCounts) {
  MonotoneCounter counter;
  Ctx ctx(0, 1);
  EXPECT_EQ(counter.read(ctx), 0u);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    counter.increment(ctx);
    EXPECT_EQ(counter.read(ctx), i);
  }
}

class MonotoneCounterConcurrent
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MonotoneCounterConcurrent, MonotoneConsistency) {
  // Lemma 4's three properties, checked per process: reads are monotone;
  // a read is >= completed increments at its start and <= started increments.
  const auto [n, seed] = GetParam();
  MonotoneCounter counter;
  Register<std::uint64_t> started(0), completed(0);
  struct Obs {
    std::uint64_t value, started_after, completed_before;
  };
  std::vector<std::vector<Obs>> per_proc(n);
  std::vector<bool> monotone(n, true);
  sim::RandomAdversary adversary(seed * 13 + 5);
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      n,
      [&](Ctx& ctx) {
        const int ops = 3;
        std::uint64_t last = 0;
        for (int i = 0; i < ops; ++i) {
          started.fetch_add(ctx, 1);
          counter.increment(ctx);
          completed.fetch_add(ctx, 1);
          const std::uint64_t completed_before = completed.load(ctx);
          const std::uint64_t v = counter.read(ctx);
          const std::uint64_t started_after = started.load(ctx);
          per_proc[ctx.pid()].push_back(Obs{v, started_after, completed_before});
          if (v < last) monotone[ctx.pid()] = false;
          last = v;
        }
      },
      adversary, options);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    EXPECT_TRUE(monotone[p]) << "per-process reads must be monotone";
    for (const auto& obs : per_proc[p]) {
      // The read is anchored between increments known-complete before it
      // started and increments started before it returned.
      EXPECT_GE(obs.value, obs.completed_before);
      EXPECT_LE(obs.value, obs.started_after);
    }
  }
  // Final settled value equals total increments.
  Ctx reader(n, 12345);
  EXPECT_EQ(counter.read(reader), static_cast<std::uint64_t>(n) * 3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MonotoneCounterConcurrent,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Range<std::uint64_t>(0, 5)));

TEST(MonotoneCounter, PaperNonLinearizabilityScenario) {
  // Sec. 8.1: p2 increments and gets name 2 only if another increment (p1)
  // is in flight; a read between p2's completion and p1's completion already
  // returns 2, and a read after p1 completes still returns 2 — so p1's
  // increment cannot be linearized. We reproduce the schedule with the
  // obstruction-style control the simulator gives us: p1 starts (takes a few
  // steps), p2 completes, reads occur, p1 finishes.
  MonotoneCounter counter;
  std::vector<std::uint64_t> reads;

  // Phase control via a shared register: crude but deterministic with the
  // round-robin adversary and fixed step layout is fragile; instead run
  // sequentially with two contexts and interleave manually through the
  // hardware-mode API (no scheduler needed for this fixed schedule).
  Ctx p1(0, 11), p2(1, 22), r(2, 33);

  // p1 starts an increment: performs its renaming but is "paused" before
  // writing the max register. We emulate by doing the rename directly.
  // p2 then runs a complete increment.
  // For this scenario use the counter's internals indirectly: p2 increments
  // fully twice? The paper needs concurrent naming; emulate by having p1
  // and p2 both rename before either writes.
  // Simplest faithful emulation: use instrumented API.
  // p1 rename (gets some name), p2 rename (gets the other), p2 writes,
  // read R1, p1 writes, read R2.
  // With sequential renames p1 gets 1 and p2 gets 2 — matching the paper's
  // assignment where p1 holds the smaller name.
  (void)counter;  // replaced by explicit objects below

  renaming::AdaptiveStrongRenaming renaming;
  UnboundedMaxRegister max;
  const std::uint64_t name1 = renaming.rename(p1, 100);  // p1 in-flight
  const std::uint64_t name2 = renaming.rename(p2, 200);
  ASSERT_EQ(name1, 1u);
  ASSERT_EQ(name2, 2u);
  max.write_max(p2, name2);  // p2 completes first
  reads.push_back(max.read(r));  // R1, after p2, before p1 completes
  max.write_max(p1, name1);  // p1 completes
  reads.push_back(max.read(r));  // R2
  EXPECT_EQ(reads[0], 2u);
  EXPECT_EQ(reads[1], 2u);
  // Both reads return 2 although an increment completed strictly between
  // them: not linearizable as a counter — exactly the paper's argument.
}

// ---------------------------------------------------------- LTestAndSet ---

class LTasSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(LTasSweep, ExactlyMinLKWinners) {
  // Runs through the unified api::Workload harness (generic run_ops hook).
  const auto [l, k, seed] = GetParam();
  LTestAndSet ltas(static_cast<std::uint64_t>(l));
  api::Scenario s;
  s.nproc = k;
  s.ops_per_proc = 1;
  s.seed = seed;
  const auto run = api::Workload(s).run_ops(
      [&](Ctx& ctx) { return ltas.test_and_set(ctx) ? 1ULL : 0ULL; });
  ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(k));
  int winners = 0;
  for (const std::uint64_t v : run.values()) winners += static_cast<int>(v);
  EXPECT_EQ(winners, std::min(l, k)) << "l=" << l << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LTasSweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 4, 8),
                                            ::testing::Values(1, 2, 5, 8, 12),
                                            ::testing::Range<std::uint64_t>(0, 3)));

TEST(LTestAndSet, DoorwayExcludesLateArrivals) {
  // Sequential: l winners, then a loser closes the doorway; every later
  // arrival must observe the closed doorway and lose in O(1).
  LTestAndSet ltas(2);
  Ctx a(0, 1), b(1, 2), c(2, 3), d(3, 4);
  EXPECT_TRUE(ltas.test_and_set(a));
  EXPECT_TRUE(ltas.test_and_set(b));
  EXPECT_FALSE(ltas.test_and_set(c));  // closes doorway
  const std::uint64_t steps_before = d.shared_steps();
  EXPECT_FALSE(ltas.test_and_set(d));
  EXPECT_EQ(d.shared_steps() - steps_before, 1u);  // single doorway read
}

// ------------------------------------------------------------ BoundedFai ---

TEST(BoundedFai, SequentialHandsOutConsecutiveValues) {
  BoundedFetchAndIncrement fai(16);
  Ctx ctx(0, 1);
  for (std::uint64_t expected = 0; expected < 16; ++expected) {
    EXPECT_EQ(fai.fetch_and_increment(ctx), expected);
  }
  // Saturation: keeps returning m-1.
  EXPECT_EQ(fai.fetch_and_increment(ctx), 15u);
  EXPECT_EQ(fai.fetch_and_increment(ctx), 15u);
}

class BoundedFaiSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(BoundedFaiSweep, ConcurrentValuesAreDistinctPrefix) {
  // Runs the ICounter adapter under the unified api::Workload harness.
  const auto [m, k, seed] = GetParam();
  api::BoundedFaiCounter counter(static_cast<std::uint64_t>(m));
  api::Scenario s;
  s.nproc = k;
  s.ops_per_proc = 1;
  s.seed = seed;
  const auto run = api::Workload(s).run(counter);
  ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(k));
  // k <= m concurrent ops must receive exactly {0, ..., k-1}.
  std::vector<std::uint64_t> sorted = run.values();
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < k; ++i) {
    EXPECT_EQ(sorted[i], static_cast<std::uint64_t>(i))
        << "m=" << m << " k=" << k << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoundedFaiSweep,
                         ::testing::Combine(::testing::Values(8, 16, 32),
                                            ::testing::Values(2, 4, 8),
                                            ::testing::Range<std::uint64_t>(0, 3)));

TEST(BoundedFai, MixedSequentialAndSaturation) {
  BoundedFetchAndIncrement fai(4);
  Ctx a(0, 1), b(1, 2);
  std::set<std::uint64_t> seen;
  seen.insert(fai.fetch_and_increment(a));
  seen.insert(fai.fetch_and_increment(b));
  seen.insert(fai.fetch_and_increment(a));
  seen.insert(fai.fetch_and_increment(b));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(fai.fetch_and_increment(a), 3u);  // saturated
}

// ------------------------------------------------------------- Baselines ---

TEST(AtomicCounter, Works) {
  AtomicCounter counter;
  Ctx ctx(0, 1);
  counter.increment(ctx);
  counter.increment(ctx);
  EXPECT_EQ(counter.read(ctx), 2u);
  EXPECT_EQ(counter.fetch_and_increment(ctx), 2u);
}

TEST(MaxRegTreeCounter, SequentialAndConcurrent) {
  {
    MaxRegTreeCounter counter(4, 1 << 10);
    Ctx ctx(0, 1);
    for (int i = 0; i < 5; ++i) counter.increment(ctx);
    EXPECT_EQ(counter.read(ctx), 5u);
  }
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const int n = 8;
    MaxRegTreeCounter counter(n, 1 << 10);
    sim::RandomAdversary adversary(seed);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        n,
        [&](Ctx& ctx) {
          for (int i = 0; i < 4; ++i) counter.increment(ctx);
        },
        adversary, options);
    ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(n));
    Ctx reader(0, 99);
    EXPECT_EQ(counter.read(reader), static_cast<std::uint64_t>(n) * 4);
  }
}

}  // namespace
}  // namespace renamelib::counting
