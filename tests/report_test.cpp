// Tests for the machine-readable bench report contract (api/report.h):
// lossless JSON round-trip, schema rejection of malformed input, and the
// file I/O path every bench binary drives behind --json=FILE.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "api/report.h"
#include "stats/latency_recorder.h"

namespace renamelib::api {
namespace {

BenchReport sample_report() {
  BenchReport report;
  report.bench = "bench_unit";
  report.git_describe = "v0-test";
  ReportRun hw;
  hw.name = "shootout";
  hw.spec = "difftree:depth=2,leaf=[striped:stripes=4]";
  hw.backend = "hardware";
  hw.threads = 8;
  hw.ops = 4096;
  hw.ops_per_sec = 1.25e6;
  hw.unit = "ns";
  hw.latency =
      stats::LatencySnapshot::of({120, 140, 155, 900, 1e6, 7.5e9, 30, 120});
  report.runs.push_back(hw);
  ReportRun sim;
  sim.name = "steps \"quoted\"\nline";  // exercises string escaping
  sim.spec = "";
  sim.backend = "simulated";
  sim.threads = 4;
  sim.ops = 12;
  sim.ops_per_sec = 0;
  sim.unit = "steps";
  sim.latency = stats::LatencySnapshot::of({3, 3, 4, 17});
  report.runs.push_back(sim);
  return report;
}

TEST(BenchReport, JsonRoundTripIsLossless) {
  const BenchReport report = sample_report();
  const std::string json = report.to_json();
  const BenchReport parsed = BenchReport::from_json(json);

  EXPECT_EQ(parsed.bench, report.bench);
  EXPECT_EQ(parsed.git_describe, report.git_describe);
  ASSERT_EQ(parsed.runs.size(), report.runs.size());
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    const ReportRun& a = report.runs[i];
    const ReportRun& b = parsed.runs[i];
    EXPECT_EQ(b.name, a.name);
    EXPECT_EQ(b.spec, a.spec);
    EXPECT_EQ(b.backend, a.backend);
    EXPECT_EQ(b.threads, a.threads);
    EXPECT_EQ(b.ops, a.ops);
    EXPECT_DOUBLE_EQ(b.ops_per_sec, a.ops_per_sec);
    EXPECT_EQ(b.unit, a.unit);
    EXPECT_EQ(b.latency.count(), a.latency.count());
    EXPECT_EQ(b.latency.min(), a.latency.min());
    EXPECT_EQ(b.latency.max(), a.latency.max());
    EXPECT_DOUBLE_EQ(b.latency.sum(), a.latency.sum());
    EXPECT_DOUBLE_EQ(b.latency.sum_sq(), a.latency.sum_sq());
    for (const double p : {0.5, 0.9, 0.99, 0.999}) {
      EXPECT_EQ(b.latency.percentile(p), a.latency.percentile(p)) << p;
    }
  }
  // Emit(parse(emit(x))) is byte-identical: %.17g doubles round-trip and the
  // field order is fixed, so diffs between report files mean data changes.
  EXPECT_EQ(parsed.to_json(), json);
}

TEST(BenchReport, EmptyRunsRoundTrip) {
  BenchReport report;
  report.bench = "bench_empty";
  const BenchReport parsed = BenchReport::from_json(report.to_json());
  EXPECT_EQ(parsed.bench, "bench_empty");
  EXPECT_TRUE(parsed.runs.empty());
  EXPECT_EQ(parsed.to_json(), report.to_json());
}

TEST(BenchReport, BuildStampIsNonEmpty) {
  EXPECT_FALSE(BenchReport::build_git_describe().empty());
  EXPECT_EQ(sample_report().to_json().find("\"schema\""), 4u);  // leads the file
}

TEST(BenchReport, RejectsMalformedInput) {
  EXPECT_THROW(BenchReport::from_json("not json"), std::invalid_argument);
  EXPECT_THROW(BenchReport::from_json("{\"schema\": \"other.v9\"}"),
               std::invalid_argument);
  // Truncated document.
  const std::string json = sample_report().to_json();
  EXPECT_THROW(BenchReport::from_json(json.substr(0, json.size() / 2)),
               std::invalid_argument);
  // Bucket counts disagreeing with the latency count must not parse: the
  // snapshot would silently misreport percentiles.
  std::string tampered = json;
  const auto pos = tampered.find("\"count\": 8");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 10, "\"count\": 9");
  EXPECT_THROW(BenchReport::from_json(tampered), std::invalid_argument);
  // Partially-numeric tokens must not silently truncate ("3e5e6" -> 3e5).
  std::string bad_number = json;
  const auto ops_pos = bad_number.find("\"ops_per_sec\": 1250000");
  ASSERT_NE(ops_pos, std::string::npos);
  bad_number.replace(ops_pos, 22, "\"ops_per_sec\": 3e5e6.2");
  EXPECT_THROW(BenchReport::from_json(bad_number), std::invalid_argument);
  // A min outside the lowest non-empty bucket must not parse: percentile()
  // clamps to min, so a tampered min would inflate every percentile.
  std::string bad_min = json;
  const auto min_pos = bad_min.find("\"min\": 30");
  ASSERT_NE(min_pos, std::string::npos);
  bad_min.replace(min_pos, 9, "\"min\": 99");
  EXPECT_THROW(BenchReport::from_json(bad_min), std::invalid_argument);
}

TEST(BenchReport, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "report_test.json";
  const BenchReport report = sample_report();
  report.write_file(path);
  const BenchReport parsed = BenchReport::read_file(path);
  EXPECT_EQ(parsed.to_json(), report.to_json());
  std::remove(path.c_str());
  EXPECT_THROW(BenchReport::read_file(path), std::runtime_error);
}

}  // namespace
}  // namespace renamelib::api
