// Tests for the stats module (summary, growth fitting, tables, histograms,
// the concurrent latency recorder) — the instruments the experiment benches
// rely on must themselves be correct.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "stats/fit.h"
#include "stats/histogram.h"
#include "stats/latency_recorder.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace renamelib::stats {
namespace {

TEST(Summary, BasicMoments) {
  const auto s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summary, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const auto s = summarize({7});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 7.0);
}

TEST(Summary, PercentilesNearestRank) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(v, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.90), 90.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.00), 100.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.00), 1.0);
}

TEST(LinearFit, ExactLine) {
  const auto f = fit_linear({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 1 + 2x
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(GrowthFit, RecognizesLogarithmic) {
  std::vector<double> x, y;
  for (double v : {4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    x.push_back(v);
    y.push_back(7.5 * std::log2(v));
  }
  const auto f = fit_growth(x, y);
  EXPECT_EQ(f.model, "log");
  EXPECT_NEAR(f.constant, 7.5, 0.1);
  EXPECT_GT(f.r2, 0.999);
}

TEST(GrowthFit, RecognizesLogSquared) {
  std::vector<double> x, y;
  for (double v : {4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    x.push_back(v);
    const double lg = std::log2(v);
    y.push_back(2.0 * lg * lg);
  }
  const auto f = fit_growth(x, y);
  EXPECT_EQ(f.model, "log^2");
  EXPECT_NEAR(f.constant, 2.0, 0.05);
}

TEST(GrowthFit, RecognizesLinear) {
  std::vector<double> x, y;
  for (double v : {4.0, 16.0, 64.0, 256.0, 1024.0}) {
    x.push_back(v);
    y.push_back(0.5 * v + 1);
  }
  EXPECT_EQ(fit_growth(x, y).model, "linear");
}

TEST(PolylogRatio, FlatForMatchingExponent) {
  std::vector<double> x, y;
  for (double v : {16.0, 64.0, 256.0, 1024.0}) {
    x.push_back(v);
    const double lg = std::log2(v);
    y.push_back(3.0 * lg * lg);
  }
  EXPECT_NEAR(polylog_ratio(x, y, 2.0), 3.0, 1e-9);
}

TEST(Table, AlignsAndCsv) {
  Table t({"a", "long header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long header"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "a,long header\n1,2\n333,4\n");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(10, 3);  // [0,10) [10,20) [20,30) + overflow
  h.add_all({1, 5, 15, 25, 99});
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  const std::string render = h.render();
  EXPECT_NE(render.find('#'), std::string::npos);
  EXPECT_NE(render.find("overflow"), std::string::npos);
}

TEST(Histogram, NegativeClampsToFirstBucket) {
  Histogram h(1, 2);
  h.add(-5);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(LatencyBuckets, GeometryIsContiguousAndInvertible) {
  // Exhaustive over the exact range, then sampled across every octave: the
  // bucket index is monotone, edges invert, and every value lands inside
  // its bucket's [lower, upper) window.
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 4096; ++v) {
    const std::size_t i = LatencyBuckets::index_of(v);
    EXPECT_GE(i, prev);
    EXPECT_LE(i - prev, 1u) << "gap at " << v;
    prev = i;
    EXPECT_LE(LatencyBuckets::lower(i), v);
    EXPECT_GT(LatencyBuckets::upper(i), v);
  }
  for (int shift = 12; shift < 64; ++shift) {
    for (const std::uint64_t v :
         {1ull << shift, (1ull << shift) + 1, (1ull << shift) * 2 - 1}) {
      const std::size_t i = LatencyBuckets::index_of(v);
      ASSERT_LT(i, LatencyBuckets::kCount);
      EXPECT_LE(LatencyBuckets::lower(i), v);
      const std::uint64_t upper = LatencyBuckets::upper(i);
      if (upper != 0) {  // 0 marks the bucket ending past uint64 max
        EXPECT_GT(upper, v);
        // Relative bucket width is the resolution claim: <= 1/kSubBuckets.
        EXPECT_LE(static_cast<double>(upper - LatencyBuckets::lower(i)),
                  static_cast<double>(LatencyBuckets::lower(i)) /
                          LatencyBuckets::kSubBuckets +
                      1.0);
      }
    }
  }
  EXPECT_EQ(LatencyBuckets::index_of(~0ull), LatencyBuckets::kCount - 1);
}

TEST(LatencyRecorder, PercentilesMatchSortedOracleWithinOneBucket) {
  // The acceptance bar: on 1e6 heavy-tailed samples, every reported
  // percentile resolves to exactly the log-bucket holding the nearest-rank
  // sample of the sorted oracle.
  constexpr std::size_t kSamples = 1'000'000;
  constexpr int kThreads = 8;
  std::vector<std::vector<std::uint64_t>> parts(kThreads);
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> heavy(/*m=*/8.0, /*s=*/2.0);
  std::vector<std::uint64_t> all;
  all.reserve(kSamples);
  for (std::size_t i = 0; i < kSamples; ++i) {
    const auto v = static_cast<std::uint64_t>(heavy(rng));
    parts[i % kThreads].push_back(v);
    all.push_back(v);
  }

  LatencyRecorder recorder(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, &parts, t] {
      for (const std::uint64_t v : parts[static_cast<std::size_t>(t)]) {
        recorder.record(t, v);
      }
    });
  }
  for (auto& th : threads) th.join();
  const LatencySnapshot snap = recorder.snapshot();

  std::sort(all.begin(), all.end());
  ASSERT_EQ(snap.count(), kSamples);
  EXPECT_EQ(snap.min(), all.front());
  EXPECT_EQ(snap.max(), all.back());
  for (const double p : {0.50, 0.90, 0.99, 0.999}) {
    const std::uint64_t oracle =
        all[static_cast<std::size_t>(std::ceil(p * kSamples)) - 1];
    const std::uint64_t got = snap.percentile(p);
    EXPECT_EQ(LatencyBuckets::index_of(got), LatencyBuckets::index_of(oracle))
        << "p=" << p << " got=" << got << " oracle=" << oracle;
    // The reported value is the bucket's lower edge: never above the oracle,
    // and within one bucket width (<= 1/kSubBuckets relative) below it.
    EXPECT_LE(got, oracle);
    EXPECT_GT(LatencyBuckets::upper(LatencyBuckets::index_of(got)), oracle);
  }
}

TEST(LatencyRecorder, ConcurrentRecordingIsDeterministic) {
  // Fixed per-thread sequences recorded concurrently, twice: both snapshots
  // equal each other and the sequential reference bucket-for-bucket —
  // concurrency must not lose or double-count anything.
  constexpr int kThreads = 6;
  constexpr int kPerThread = 50'000;
  auto value_of = [](int t, int i) {
    // Spread across several octaves, deterministic per (t, i).
    return static_cast<std::uint64_t>((i % 1021) + 1)
           << (static_cast<unsigned>(t * 3 + i % 5) % 40);
  };

  std::vector<double> reference;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      reference.push_back(static_cast<double>(value_of(t, i)));
    }
  }
  const LatencySnapshot expected = LatencySnapshot::of(reference);

  for (int round = 0; round < 2; ++round) {
    LatencyRecorder recorder(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&recorder, &value_of, t] {
        for (int i = 0; i < kPerThread; ++i) {
          recorder.record(t, value_of(t, i));
        }
      });
    }
    for (auto& th : threads) th.join();
    const LatencySnapshot snap = recorder.snapshot();
    ASSERT_EQ(snap.count(), expected.count());
    EXPECT_EQ(snap.min(), expected.min());
    EXPECT_EQ(snap.max(), expected.max());
    EXPECT_DOUBLE_EQ(snap.sum(), expected.sum());
    for (std::size_t i = 0; i < LatencyBuckets::kCount; ++i) {
      ASSERT_EQ(snap.bucket(i), expected.bucket(i)) << "bucket " << i;
    }
  }
}

TEST(LatencySnapshot, MergeEqualsRecordingEverythingInOne) {
  const std::vector<double> a{1, 5, 900, 1e7, 3.2e9};
  const std::vector<double> b{2, 5, 1e12, 7};
  LatencySnapshot merged = LatencySnapshot::of(a);
  merged.merge(LatencySnapshot::of(b));

  std::vector<double> both = a;
  both.insert(both.end(), b.begin(), b.end());
  const LatencySnapshot direct = LatencySnapshot::of(both);
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.min(), direct.min());
  EXPECT_EQ(merged.max(), direct.max());
  EXPECT_DOUBLE_EQ(merged.sum(), direct.sum());
  for (std::size_t i = 0; i < LatencyBuckets::kCount; ++i) {
    ASSERT_EQ(merged.bucket(i), direct.bucket(i));
  }
}

TEST(LatencySnapshot, NoOverflowLossAtExtremeValues) {
  // The fixed-width Histogram folds these into one overflow count; the
  // log-bucketed snapshot must keep them distinguishable and queryable.
  LatencySnapshot snap;
  snap.add(0);
  snap.add(~0ull);
  snap.add(1ull << 62);
  EXPECT_EQ(snap.count(), 3u);
  EXPECT_EQ(snap.max(), ~0ull);
  EXPECT_EQ(snap.percentile(0.0), 0u);
  const std::uint64_t p100 = snap.percentile(1.0);
  EXPECT_EQ(LatencyBuckets::index_of(p100), LatencyBuckets::index_of(~0ull));
  // Relative resolution survives at the top of the range.
  EXPECT_GE(p100, ~0ull - (~0ull >> LatencyBuckets::kSubBits));
}

TEST(LatencySnapshot, SummaryAgreesWithExactSummarize) {
  std::vector<double> samples;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(1, 5e6);
  for (int i = 0; i < 20'000; ++i) samples.push_back(std::floor(u(rng)));
  const Summary exact = summarize(samples);
  const Summary approx = LatencySnapshot::of(samples).to_summary();
  EXPECT_EQ(approx.count, exact.count);
  EXPECT_DOUBLE_EQ(approx.min, exact.min);
  EXPECT_DOUBLE_EQ(approx.max, exact.max);
  EXPECT_NEAR(approx.mean, exact.mean, 1e-6);
  EXPECT_NEAR(approx.stddev, exact.stddev, exact.stddev * 1e-9 + 1e-6);
  // Percentiles within one log-bucket: lower edge <= exact < upper edge.
  for (const auto [got, want] : {std::pair{approx.p50, exact.p50},
                                 std::pair{approx.p90, exact.p90},
                                 std::pair{approx.p99, exact.p99}}) {
    EXPECT_LE(got, want);
    EXPECT_GE(got, want * (1.0 - 1.0 / LatencyBuckets::kSubBuckets) - 1);
  }
}

TEST(LatencySnapshot, PercentilesClampToRecordedMin) {
  // All samples share one bucket whose lower edge (1216) undershoots the
  // actual minimum: percentiles must report the min, not the edge, so the
  // serialized min <= p* <= max invariant holds for report consumers.
  const LatencySnapshot snap =
      LatencySnapshot::of(std::vector<double>(8, 1234));
  ASSERT_LT(LatencyBuckets::lower(LatencyBuckets::index_of(1234)), 1234u);
  for (const double p : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(snap.percentile(p), 1234u) << p;
  }
}

TEST(LatencySnapshot, EmptyIsWellDefined) {
  const LatencySnapshot snap;
  EXPECT_EQ(snap.count(), 0u);
  EXPECT_EQ(snap.min(), 0u);
  EXPECT_EQ(snap.max(), 0u);
  EXPECT_EQ(snap.percentile(0.99), 0u);
  EXPECT_EQ(snap.to_summary().count, 0u);
  EXPECT_TRUE(snap.nonzero_buckets().empty());
}

}  // namespace
}  // namespace renamelib::stats
