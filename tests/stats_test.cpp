// Tests for the stats module (summary, growth fitting, tables, histograms) —
// the instruments the experiment benches rely on must themselves be correct.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "stats/fit.h"
#include "stats/histogram.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace renamelib::stats {
namespace {

TEST(Summary, BasicMoments) {
  const auto s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summary, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const auto s = summarize({7});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 7.0);
}

TEST(Summary, PercentilesNearestRank) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(v, 0.50), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.90), 90.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.99), 99.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.00), 100.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.00), 1.0);
}

TEST(LinearFit, ExactLine) {
  const auto f = fit_linear({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 1 + 2x
  EXPECT_NEAR(f.intercept, 1.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(GrowthFit, RecognizesLogarithmic) {
  std::vector<double> x, y;
  for (double v : {4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    x.push_back(v);
    y.push_back(7.5 * std::log2(v));
  }
  const auto f = fit_growth(x, y);
  EXPECT_EQ(f.model, "log");
  EXPECT_NEAR(f.constant, 7.5, 0.1);
  EXPECT_GT(f.r2, 0.999);
}

TEST(GrowthFit, RecognizesLogSquared) {
  std::vector<double> x, y;
  for (double v : {4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    x.push_back(v);
    const double lg = std::log2(v);
    y.push_back(2.0 * lg * lg);
  }
  const auto f = fit_growth(x, y);
  EXPECT_EQ(f.model, "log^2");
  EXPECT_NEAR(f.constant, 2.0, 0.05);
}

TEST(GrowthFit, RecognizesLinear) {
  std::vector<double> x, y;
  for (double v : {4.0, 16.0, 64.0, 256.0, 1024.0}) {
    x.push_back(v);
    y.push_back(0.5 * v + 1);
  }
  EXPECT_EQ(fit_growth(x, y).model, "linear");
}

TEST(PolylogRatio, FlatForMatchingExponent) {
  std::vector<double> x, y;
  for (double v : {16.0, 64.0, 256.0, 1024.0}) {
    x.push_back(v);
    const double lg = std::log2(v);
    y.push_back(3.0 * lg * lg);
  }
  EXPECT_NEAR(polylog_ratio(x, y, 2.0), 3.0, 1e-9);
}

TEST(Table, AlignsAndCsv) {
  Table t({"a", "long header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long header"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "a,long header\n1,2\n333,4\n");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(10, 3);  // [0,10) [10,20) [20,30) + overflow
  h.add_all({1, 5, 15, 25, 99});
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  const std::string render = h.render();
  EXPECT_NE(render.find('#'), std::string::npos);
  EXPECT_NE(render.find("overflow"), std::string::npos);
}

TEST(Histogram, NegativeClampsToFirstBucket) {
  Histogram h(1, 2);
  h.add(-5);
  EXPECT_EQ(h.bucket(0), 1u);
}

}  // namespace
}  // namespace renamelib::stats
