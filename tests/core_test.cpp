// Unit tests for src/core: RNG determinism, step accounting, registers, and
// the scheduler gate handshake (exercised through the simulator).
#include <gtest/gtest.h>

#include <set>

#include "core/ctx.h"
#include "core/register.h"
#include "core/rng.h"
#include "sim/executor.h"

namespace renamelib {
namespace {

TEST(Rng, DeterministicStreams) {
  Rng a(42), b(42), c(43);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, BelowIsInRangeAndCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, DeriveDiffersBySalt) {
  EXPECT_NE(Rng::derive(1, 0), Rng::derive(1, 1));
  EXPECT_EQ(Rng::derive(1, 5), Rng::derive(1, 5));
}

TEST(Ctx, CountsSharedSteps) {
  Ctx ctx(0, 1);
  Register<int> reg(0);
  EXPECT_EQ(ctx.shared_steps(), 0u);
  reg.store(ctx, 5);
  EXPECT_EQ(reg.load(ctx), 5);
  EXPECT_EQ(ctx.shared_steps(), 2u);
}

TEST(Ctx, CoinBatchesCountAsOneStep) {
  Ctx ctx(0, 1);
  Register<int> reg(0);
  // Three coin flips between two shared ops count as one step (paper Sec. 2).
  reg.store(ctx, 1);
  (void)ctx.rng().coin();
  (void)ctx.rng().coin();
  (void)ctx.rng().coin();
  reg.store(ctx, 2);
  EXPECT_EQ(ctx.shared_steps(), 2u);
  EXPECT_EQ(ctx.coin_flips(), 3u);
  EXPECT_EQ(ctx.steps(), 3u);  // 2 shared + 1 coin batch
}

TEST(Ctx, MintTokenUniqueAndPidTagged) {
  Ctx a(3, 1), b(4, 1);
  std::set<std::uint64_t> tokens;
  for (int i = 0; i < 100; ++i) {
    tokens.insert(a.mint_token());
    tokens.insert(b.mint_token());
  }
  EXPECT_EQ(tokens.size(), 200u);
}

TEST(Register, CompareExchangeSemantics) {
  Ctx ctx(0, 1);
  Register<int> reg(10);
  int expected = 5;
  EXPECT_FALSE(reg.compare_exchange(ctx, expected, 99));
  EXPECT_EQ(expected, 10);
  EXPECT_TRUE(reg.compare_exchange(ctx, expected, 99));
  EXPECT_EQ(reg.load(ctx), 99);
}

TEST(Register, FetchAddAndExchange) {
  Ctx ctx(0, 1);
  Register<std::uint64_t> reg(0);
  EXPECT_EQ(reg.fetch_add(ctx, 3), 0u);
  EXPECT_EQ(reg.fetch_add(ctx, 4), 3u);
  EXPECT_EQ(reg.exchange(ctx, 100), 7u);
  EXPECT_EQ(reg.load(ctx), 100u);
}

TEST(RegisterArray, BoundsAndInit) {
  RegisterArray<int> arr(4, 7);
  EXPECT_EQ(arr.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(arr[i].peek(), 7);
}

TEST(LabelScope, NestsAndRestores) {
  Ctx ctx(0, 1);
  EXPECT_STREQ(ctx.label(), "");
  {
    LabelScope outer{ctx, "outer"};
    EXPECT_STREQ(ctx.label(), "outer");
    {
      LabelScope inner{ctx, "inner"};
      EXPECT_STREQ(ctx.label(), "inner");
    }
    EXPECT_STREQ(ctx.label(), "outer");
  }
  EXPECT_STREQ(ctx.label(), "");
}

// --- simulator smoke tests (full coverage in sim_test.cpp) ---------------

TEST(Simulator, RunsToCompletionAndCountsSteps) {
  Register<std::uint64_t> shared(0);
  sim::RoundRobinAdversary adversary;
  auto result = sim::run_simulation(
      4,
      [&](Ctx& ctx) {
        for (int i = 0; i < 10; ++i) shared.fetch_add(ctx, 1);
      },
      adversary);
  EXPECT_EQ(result.finished_count(), 4u);
  EXPECT_EQ(result.total_granted_steps, 40u);
  EXPECT_EQ(shared.peek(), 40u);
  for (const auto& p : result.procs) EXPECT_EQ(p.shared_steps, 10u);
}

TEST(Simulator, DeterministicGivenSeedAndAdversary) {
  auto run = [](std::uint64_t seed) {
    Register<std::uint64_t> shared(0);
    sim::RandomAdversary adversary(99);
    sim::RunOptions options;
    options.seed = seed;
    options.record_trace = true;
    auto result = sim::run_simulation(
        3,
        [&](Ctx& ctx) {
          for (int i = 0; i < 5; ++i) {
            if (ctx.rng().coin()) shared.fetch_add(ctx, 1);
            shared.load(ctx);
          }
        },
        adversary, options);
    std::vector<int> pids;
    for (const auto& ev : result.trace.events()) pids.push_back(ev.pid);
    return pids;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace renamelib
