// Tests for the wakeup reduction (Sec. 7): exactly one process wakes, it is
// only ever the last one to be "fully informed" (name k), and the measured
// cost of the reduction respects — and is compared against — the
// Omega(c log k) analytic bound of Theorem 5.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/executor.h"
#include "wakeup/wakeup.h"

namespace renamelib::wakeup {
namespace {

class WakeupSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(WakeupSweep, ExactlyOneProcessReturnsOne) {
  const auto [k, seed] = GetParam();
  WakeupFromRenaming wakeup(static_cast<std::uint64_t>(k));
  std::vector<int> woke(k, 0);
  sim::RandomAdversary adversary(seed * 3 + 1);
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      k, [&](Ctx& ctx) { woke[ctx.pid()] = wakeup.wake(ctx, ctx.pid() + 1); },
      adversary, options);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
  int total = 0;
  for (int w : woke) total += w;
  // All k processes terminated, so by tightness exactly one got name k.
  EXPECT_EQ(total, 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WakeupSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                                            ::testing::Range<std::uint64_t>(0, 5)));

TEST(Wakeup, WakerOnlyAfterEveryoneStepped) {
  // The process that returns 1 holds name k; in our runs its return comes
  // after all k processes took at least one step (they all finished here).
  WakeupFromRenaming wakeup(4);
  std::vector<int> woke(4, 0);
  sim::RoundRobinAdversary adversary;
  auto result = sim::run_simulation(
      4, [&](Ctx& ctx) { woke[ctx.pid()] = wakeup.wake(ctx, ctx.pid() + 1); },
      adversary);
  for (const auto& p : result.procs) EXPECT_GE(p.shared_steps, 1u);
  EXPECT_EQ(woke[0] + woke[1] + woke[2] + woke[3], 1);
}

TEST(Wakeup, AnalyticBoundGrowsLogarithmically) {
  EXPECT_DOUBLE_EQ(step_lower_bound(1.0, 2), 1.0);
  EXPECT_DOUBLE_EQ(step_lower_bound(1.0, 1024), 10.0);
  EXPECT_DOUBLE_EQ(step_lower_bound(0.5, 1024), 5.0);
  EXPECT_DOUBLE_EQ(step_lower_bound(1.0, 1), 0.0);
}

TEST(Wakeup, MeasuredCostDominatesLowerBound) {
  // Theorem 5 sanity: our (optimal-up-to-constants) algorithm's measured
  // mean step count must sit above the analytic lower bound for every k.
  for (int k : {2, 4, 8, 16}) {
    double total = 0;
    const int kRuns = 4;
    for (int run = 0; run < kRuns; ++run) {
      WakeupFromRenaming wakeup(static_cast<std::uint64_t>(k));
      sim::RandomAdversary adversary(static_cast<std::uint64_t>(run) + 5);
      sim::RunOptions options;
      options.seed = static_cast<std::uint64_t>(run) + 1;
      auto result = sim::run_simulation(
          k, [&](Ctx& ctx) { (void)wakeup.wake(ctx, ctx.pid() + 1); },
          adversary, options);
      total += static_cast<double>(result.total_proc_steps()) / k;
    }
    const double mean = total / kRuns;
    EXPECT_GE(mean, step_lower_bound(1.0, static_cast<std::uint64_t>(k)))
        << "k=" << k;
  }
}

}  // namespace
}  // namespace renamelib::wakeup
