// Tests for the renaming algorithms:
//   * RenamingNetwork (Sec. 5, Theorem 1): uniqueness and tightness under
//     round-robin / random / obstruction / crash adversaries, both TAS kinds;
//   * BitBatching (Sec. 4, Lemma 1): uniqueness, stage-1 termination w.h.p.,
//     probe bounds;
//   * LinearProbeRenaming: baseline correctness and linear cost;
//   * AdaptiveStrongRenaming (Sec. 6.2, Theorem 3): adaptive tightness,
//     polylog steps, crash tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "renaming/adaptive_strong.h"
#include "renaming/bit_batching.h"
#include "renaming/linear_probe.h"
#include "renaming/renaming_network.h"
#include "renaming/validate.h"
#include "sim/executor.h"
#include "sortnet/odd_even_merge.h"

namespace renamelib::renaming {
namespace {

std::unique_ptr<sim::Adversary> make_adversary(int strategy, std::uint64_t seed) {
  switch (strategy) {
    case 0:
      return std::make_unique<sim::RoundRobinAdversary>();
    case 1:
      return std::make_unique<sim::RandomAdversary>(seed * 1337 + 1);
    default:
      return std::make_unique<sim::ObstructionAdversary>(5);
  }
}

// ------------------------------------------------------------- validate ---

TEST(Validate, DetectsDuplicatesZeroAndRange) {
  EXPECT_TRUE(check_unique({1, 2, 3}).ok);
  EXPECT_FALSE(check_unique({1, 2, 2}).ok);
  EXPECT_FALSE(check_unique({0, 1}).ok);
  EXPECT_TRUE(check_tight({3, 1, 2}, 3).ok);
  EXPECT_FALSE(check_tight({1, 4}, 3).ok);
}

// ------------------------------------------------------ RenamingNetwork ---

class RenamingNetworkSweep
    : public ::testing::TestWithParam<
          std::tuple<int, int, std::uint64_t, ComparatorKind>> {};

TEST_P(RenamingNetworkSweep, TightAndUnique) {
  const auto [width_and_k, strategy, seed, kind] = GetParam();
  const int width = width_and_k >> 8;
  const int k = width_and_k & 0xff;
  RenamingNetwork net(sortnet::odd_even_merge_sort(width), kind);
  std::vector<std::uint64_t> names(k, 0);
  // Spread the k participants across distinct input ports: pid i enters at
  // port 1 + i * (width / k).
  auto adversary = make_adversary(strategy, seed);
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      k,
      [&](Ctx& ctx) {
        const std::uint64_t port =
            1 + static_cast<std::uint64_t>(ctx.pid()) * (width / k);
        names[ctx.pid()] = net.rename(ctx, port);
      },
      *adversary, options);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
  const auto check = check_tight(names, k);
  EXPECT_TRUE(check.ok) << check.error << " width=" << width << " k=" << k
                        << " strategy=" << strategy << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RenamingNetworkSweep,
    ::testing::Combine(
        // (width << 8) | k
        ::testing::Values((8 << 8) | 1, (8 << 8) | 4, (8 << 8) | 8,
                          (16 << 8) | 5, (16 << 8) | 16, (32 << 8) | 8,
                          (32 << 8) | 32),
        ::testing::Values(0, 1, 2), ::testing::Range<std::uint64_t>(0, 4),
        ::testing::Values(ComparatorKind::kRandomized,
                          ComparatorKind::kHardware)));

TEST(RenamingNetwork, SoloGetsNameOne) {
  RenamingNetwork net(sortnet::odd_even_merge_sort(64));
  for (std::uint64_t port : {1u, 2u, 17u, 64u}) {
    RenamingNetwork fresh(sortnet::odd_even_merge_sort(64));
    Ctx ctx(0, port * 11 + 1);
    EXPECT_EQ(fresh.rename(ctx, port), 1u) << "port " << port;
  }
}

TEST(RenamingNetwork, PathBoundedByDepth) {
  const auto base = sortnet::odd_even_merge_sort(64);
  const std::size_t depth = base.depth();
  RenamingNetwork net(base);
  Ctx ctx(0, 3);
  const auto routed = net.rename_counted(ctx, 40);
  EXPECT_LE(routed.comparators, depth);
}

TEST(RenamingNetwork, CrashedParticipantsDoNotBreakTightness) {
  // k participants, some crash mid-route; survivors' names must be unique.
  // (Crashed processes may have blocked low names — the paper's tightness is
  // over participants, i.e. survivors get names <= k_participants.)
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const int k = 10, width = 32;
    RenamingNetwork net(sortnet::odd_even_merge_sort(width));
    std::vector<std::uint64_t> names(k, 0);
    std::vector<std::int64_t> crash_at(k, -1);
    crash_at[0] = 4;
    crash_at[1] = 9;
    sim::CrashAdversary adversary(
        std::make_unique<sim::RandomAdversary>(seed + 3), crash_at, 2);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        k,
        [&](Ctx& ctx) {
          const std::uint64_t port = 1 + 3 * static_cast<std::uint64_t>(ctx.pid());
          names[ctx.pid()] = net.rename(ctx, port);
        },
        adversary, options);
    std::vector<std::uint64_t> survivor_names;
    for (int p = 0; p < k; ++p) {
      if (result.procs[p].finished) survivor_names.push_back(names[p]);
    }
    const auto check = check_unique(survivor_names);
    EXPECT_TRUE(check.ok) << check.error;
    for (auto n : survivor_names) EXPECT_LE(n, static_cast<std::uint64_t>(k));
  }
}

// ---------------------------------------------------------- BitBatching ---

TEST(BitBatching, BatchLayoutMatchesFigure1) {
  BitBatching bb(64, SlotTasKind::kHardware);
  // n = 64, log2 = 6 => l = floor(log2(64/6)) = 3.
  ASSERT_EQ(bb.batch_count(), 3u);
  EXPECT_EQ(bb.batch_begin(1), 0u);
  EXPECT_EQ(bb.batch_end(1), 32u);   // first half
  EXPECT_EQ(bb.batch_begin(2), 32u);
  EXPECT_EQ(bb.batch_end(2), 48u);   // next quarter
  EXPECT_EQ(bb.batch_begin(3), 48u);
  EXPECT_EQ(bb.batch_end(3), 64u);   // tail batch
}

class BitBatchingSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(BitBatchingSweep, UniqueNamesWithinN) {
  const auto [n, strategy, seed] = GetParam();
  BitBatching bb(static_cast<std::uint64_t>(n), SlotTasKind::kHardware);
  std::vector<std::uint64_t> names(n, 0);
  auto adversary = make_adversary(strategy, seed);
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      n, [&](Ctx& ctx) { names[ctx.pid()] = bb.rename(ctx, 0); }, *adversary,
      options);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(n));
  const auto check = check_tight(names, static_cast<std::uint64_t>(n));
  EXPECT_TRUE(check.ok) << check.error << " n=" << n << " strategy=" << strategy;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitBatchingSweep,
                         ::testing::Combine(::testing::Values(4, 8, 16, 32, 64),
                                            ::testing::Values(0, 1, 2),
                                            ::testing::Range<std::uint64_t>(0, 3)));

TEST(BitBatching, RatRaceSlotsFullParticipation) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const int n = 16;
    BitBatching bb(n, SlotTasKind::kRatRace);
    std::vector<std::uint64_t> names(n, 0);
    sim::RandomAdversary adversary(seed + 21);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        n, [&](Ctx& ctx) { names[ctx.pid()] = bb.rename(ctx, 0); }, adversary,
        options);
    ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(n));
    EXPECT_TRUE(check_tight(names, n).ok);
  }
}

TEST(BitBatching, Stage2IsRareAndProbesPolylog) {
  // Lemma 1: stage 1 suffices w.h.p.; Corollary 1: O(log^2 n) probes.
  const int n = 128;
  int stage2 = 0;
  double max_probes = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    BitBatching bb(n, SlotTasKind::kHardware);
    std::vector<BitBatching::Outcome> outs(n);
    sim::RandomAdversary adversary(seed);
    sim::RunOptions options;
    options.seed = seed + 1;
    auto result = sim::run_simulation(
        n, [&](Ctx& ctx) { outs[ctx.pid()] = bb.rename_instrumented(ctx); },
        adversary, options);
    ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(n));
    for (const auto& o : outs) {
      stage2 += o.entered_stage2 ? 1 : 0;
      max_probes = std::max(max_probes, static_cast<double>(o.probes));
    }
  }
  EXPECT_EQ(stage2, 0) << "stage 2 should be unreachable w.h.p.";
  const double log2n = std::log2(n);
  EXPECT_LE(max_probes, 3 * log2n * log2n + 2 * log2n);
}

TEST(BitBatching, PartialParticipationStillUnique) {
  // Fewer participants than n (non-adaptive object, k < n is allowed).
  const int n = 64, k = 10;
  BitBatching bb(n, SlotTasKind::kHardware);
  std::vector<std::uint64_t> names(k, 0);
  sim::RandomAdversary adversary(5);
  auto result = sim::run_simulation(
      k, [&](Ctx& ctx) { names[ctx.pid()] = bb.rename(ctx, 0); }, adversary);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
  EXPECT_TRUE(check_tight(names, n).ok);  // names within 1..n, not 1..k
}

// ---------------------------------------------------------- LinearProbe ---

TEST(LinearProbe, AdaptiveTightNamesLinearCost) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const int k = 12;
    LinearProbeRenaming lp(64);
    std::vector<LinearProbeRenaming::Outcome> outs(k);
    sim::RandomAdversary adversary(seed);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        k, [&](Ctx& ctx) { outs[ctx.pid()] = lp.rename_instrumented(ctx); },
        adversary, options);
    ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
    std::vector<std::uint64_t> names;
    for (const auto& o : outs) {
      names.push_back(o.name);
      EXPECT_EQ(o.probes, o.name);  // probes == acquired index: linear cost
    }
    EXPECT_TRUE(check_tight(names, k).ok);
  }
}

// --------------------------------------------------- AdaptiveStrong -------

class AdaptiveStrongSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(AdaptiveStrongSweep, AdaptiveTightNames) {
  const auto [k, strategy, seed] = GetParam();
  AdaptiveStrongRenaming renaming;
  std::vector<std::uint64_t> names(k, 0);
  auto adversary = make_adversary(strategy, seed);
  sim::RunOptions options;
  options.seed = seed;
  auto result = sim::run_simulation(
      k,
      [&](Ctx& ctx) {
        // Unbounded initial namespace: arbitrary 64-bit ids.
        const std::uint64_t id =
            0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(ctx.pid()) + 1);
        names[ctx.pid()] = renaming.rename(ctx, id);
      },
      *adversary, options);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
  const auto check = check_tight(names, static_cast<std::uint64_t>(k));
  EXPECT_TRUE(check.ok) << check.error << " k=" << k << " strategy=" << strategy
                        << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AdaptiveStrongSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 16,
                                                              24, 32),
                                            ::testing::Values(0, 1, 2),
                                            ::testing::Range<std::uint64_t>(0, 4)));

TEST(AdaptiveStrong, SoloProcessGetsNameOneCheaply) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    AdaptiveStrongRenaming renaming;
    Ctx ctx(0, seed);
    const auto out = renaming.rename_instrumented(ctx, 42);
    EXPECT_EQ(out.name, 1u);
    EXPECT_EQ(out.temp_name, 1u);  // solo acquires the root splitter
    EXPECT_LT(ctx.steps(), 80u);
  }
}

TEST(AdaptiveStrong, HardwareComparatorsDeterministicMode) {
  AdaptiveStrongRenaming::Options options;
  options.comparators = AdaptiveComparatorKind::kHardware;
  AdaptiveStrongRenaming renaming(options);
  const int k = 12;
  std::vector<std::uint64_t> names(k, 0);
  sim::RandomAdversary adversary(3);
  auto result = sim::run_simulation(
      k,
      [&](Ctx& ctx) {
        names[ctx.pid()] = renaming.rename(ctx, ctx.pid() + 1000);
      },
      adversary);
  ASSERT_EQ(result.finished_count(), static_cast<std::size_t>(k));
  EXPECT_TRUE(check_tight(names, k).ok);
}

TEST(AdaptiveStrong, StepComplexityPolylogInK) {
  // Theorem 3 shape check: mean steps grow far slower than k.
  auto mean_steps = [](int k) {
    double total = 0;
    const int kRuns = 5;
    for (int run = 0; run < kRuns; ++run) {
      AdaptiveStrongRenaming renaming;
      sim::RandomAdversary adversary(static_cast<std::uint64_t>(run) + 71);
      sim::RunOptions options;
      options.seed = static_cast<std::uint64_t>(run) + 1;
      auto result = sim::run_simulation(
          k, [&](Ctx& ctx) { (void)renaming.rename(ctx, ctx.pid() + 1); },
          adversary, options);
      total += static_cast<double>(result.total_proc_steps()) / k;
    }
    return total / kRuns;
  };
  const double at8 = mean_steps(8);
  const double at64 = mean_steps(64);
  EXPECT_LT(at64, at8 * 4.0) << "8x contention must cost << 8x steps";
}

TEST(AdaptiveStrong, CrashToleranceSurvivorsUnique) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const int k = 12;
    AdaptiveStrongRenaming renaming;
    std::vector<std::uint64_t> names(k, 0);
    std::vector<std::int64_t> crash_at(k, -1);
    crash_at[0] = 3;
    crash_at[1] = 8;
    crash_at[2] = 15;
    sim::CrashAdversary adversary(
        std::make_unique<sim::RandomAdversary>(seed + 4), crash_at, 3);
    sim::RunOptions options;
    options.seed = seed;
    auto result = sim::run_simulation(
        k,
        [&](Ctx& ctx) { names[ctx.pid()] = renaming.rename(ctx, ctx.pid() + 1); },
        adversary, options);
    std::vector<std::uint64_t> survivors;
    for (int p = 0; p < k; ++p) {
      if (result.procs[p].finished) survivors.push_back(names[p]);
    }
    const auto check = check_unique(survivors);
    EXPECT_TRUE(check.ok) << check.error;
    for (auto n : survivors) EXPECT_LE(n, static_cast<std::uint64_t>(k));
  }
}

TEST(AdaptiveStrong, ManySequentialRequestsStayTight) {
  // One process minting many identities (the counter workload): request r
  // must receive name r.
  AdaptiveStrongRenaming renaming;
  Ctx ctx(0, 5);
  for (std::uint64_t r = 1; r <= 40; ++r) {
    EXPECT_EQ(renaming.rename(ctx, ctx.mint_token()), r);
  }
}

}  // namespace
}  // namespace renamelib::renaming
