// Exhaustive schedule exploration tests: CHESS-style verification of the
// paper's safety properties over EVERY interleaving of small executions
// (with coin flips fixed per seed), plus unit tests of the explorer itself.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/register.h"
#include "counting/max_register.h"
#include "renaming/renaming_network.h"
#include "sim/explore.h"
#include "splitter/splitter.h"
#include "sortnet/optimal_small.h"
#include "tas/two_process_tas.h"

namespace renamelib::sim {
namespace {

TEST(ReplayAdversary, FollowsScriptThenFallsBack) {
  Register<int> reg(0);
  ReplayAdversary adversary({1, 1, 0});
  RunOptions options;
  options.record_trace = true;
  auto result = run_simulation(
      2, [&](Ctx& ctx) { reg.load(ctx); reg.load(ctx); }, adversary, options);
  const auto& ev = result.trace.events();
  ASSERT_EQ(ev.size(), 4u);
  EXPECT_EQ(ev[0].pid, 1);
  EXPECT_EQ(ev[1].pid, 1);
  EXPECT_EQ(ev[2].pid, 0);
  EXPECT_EQ(ev[3].pid, 0);  // fallback: lowest pending
  EXPECT_TRUE(adversary.on_script());
}

TEST(Explore, CountsAllInterleavingsOfIndependentSteps) {
  // 2 processes x 2 steps each: C(4,2) = 6 maximal schedules; the DFS visits
  // every tree node (prefix), so executions > 6, but every maximal schedule
  // is covered. We verify coverage by collecting final trace pid-sequences.
  auto shared = std::make_shared<Register<int>>(0);
  std::set<std::vector<int>> sequences;
  auto result = explore_schedules(
      2,
      [&] {
        return [shared](Ctx& ctx) {
          shared->load(ctx);
          shared->load(ctx);
        };
      },
      [&](const SimResult& run) {
        (void)run;
        return true;
      });
  EXPECT_FALSE(result.invariant_violated);
  // Tree of decisions: 1 (root) + 2 + 4 + 6 + 6 = 19 prefixes... exact node
  // count depends on completion; just sanity-check the order of magnitude.
  EXPECT_GE(result.executions, 6u);
  EXPECT_LE(result.executions, 40u);
}

TEST(Explore, FindsInjectedViolation) {
  // Deliberately broken "mutex": two processes both read 0 then write 1; a
  // schedule interleaving the reads lets both enter. The explorer must find
  // it and report a counterexample.
  struct State {
    Register<int> flag{0};
    std::atomic<int> entered{0};
  };
  auto state = std::make_shared<State>();
  auto result = explore_schedules(
      2,
      [&] {
        state = std::make_shared<State>();  // fresh per run
        auto s = state;
        return [s](Ctx& ctx) {
          if (s->flag.load(ctx) == 0) {
            s->flag.store(ctx, 1);
            s->entered.fetch_add(1);
          }
        };
      },
      [&](const SimResult&) { return state->entered.load() <= 1; });
  EXPECT_TRUE(result.invariant_violated);
  EXPECT_FALSE(result.counterexample.empty());
}

class TwoProcessTasExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TwoProcessTasExhaustive, AtMostOneWinnerOverAllSchedules) {
  // THE safety property, model-checked: for this seed's coin flips, no
  // schedule whatsoever yields two winners or two losers.
  const std::uint64_t seed = GetParam();
  struct State {
    tas::TwoProcessTas tas;
    std::atomic<int> wins{0};
    std::atomic<int> losses{0};
  };
  auto state = std::make_shared<State>();
  ExploreOptions options;
  options.seed = seed;
  options.max_depth = 16;
  options.max_executions = 4000;
  auto result = explore_schedules(
      2,
      [&] {
        state = std::make_shared<State>();
        auto s = state;
        return [s](Ctx& ctx) {
          if (s->tas.compete(ctx, ctx.pid())) {
            s->wins.fetch_add(1);
          } else {
            s->losses.fetch_add(1);
          }
        };
      },
      [&](const SimResult& run) {
        if (run.finished_count() == 2) {
          // Both decided: exactly one winner.
          return state->wins.load() == 1 && state->losses.load() == 1;
        }
        return state->wins.load() <= 1;
      },
      options);
  EXPECT_FALSE(result.invariant_violated)
      << "seed " << seed << " counterexample size "
      << result.counterexample.size();
  EXPECT_GT(result.executions, 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TwoProcessTasExhaustive,
                         ::testing::Range<std::uint64_t>(1, 5));

TEST(SplitterExhaustive, AtMostOneStopOverAllSchedules) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    struct State {
      splitter::Splitter splitter;
      std::atomic<int> stops{0};
    };
    auto state = std::make_shared<State>();
    ExploreOptions options;
    options.seed = seed;
    options.max_depth = 12;
    options.max_executions = 6000;
    auto result = explore_schedules(
        3,
        [&] {
          state = std::make_shared<State>();
          auto s = state;
          return [s](Ctx& ctx) {
            if (s->splitter.acquire(ctx, ctx.pid() + 1) ==
                splitter::SplitterOutcome::kStop) {
              s->stops.fetch_add(1);
            }
          };
        },
        [&](const SimResult&) { return state->stops.load() <= 1; }, options);
    EXPECT_FALSE(result.invariant_violated) << "seed " << seed;
    EXPECT_GT(result.executions, 100u);
  }
}

TEST(MaxRegisterExhaustive, NeverExceedsMaxWrite) {
  struct State {
    counting::MaxRegister reg{8};
    std::atomic<bool> bad{false};
  };
  auto state = std::make_shared<State>();
  ExploreOptions options;
  options.max_depth = 20;
  options.max_executions = 6000;
  auto result = explore_schedules(
      2,
      [&] {
        state = std::make_shared<State>();
        auto s = state;
        return [s](Ctx& ctx) {
          const std::uint64_t mine = ctx.pid() == 0 ? 3 : 6;
          s->reg.write_max(ctx, mine);
          const std::uint64_t v = s->reg.read(ctx);
          // Own write visible; never above the global max write (6).
          if (v < mine || v > 6) s->bad.store(true);
        };
      },
      [&](const SimResult&) { return !state->bad.load(); }, options);
  EXPECT_FALSE(result.invariant_violated);
  EXPECT_GT(result.executions, 50u);
}

TEST(RenamingNetworkExhaustive, TightOverAllSchedulesTinyNetwork) {
  // Width-4 optimal network, 2 participants: every schedule must produce
  // names {1, 2}.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    struct State {
      renaming::RenamingNetwork net{sortnet::optimal_small_sort(4),
                                    renaming::ComparatorKind::kHardware};
      std::array<std::atomic<std::uint64_t>, 2> names{};
    };
    auto state = std::make_shared<State>();
    ExploreOptions options;
    options.seed = seed;
    options.max_depth = 20;
    options.max_executions = 6000;
    auto result = explore_schedules(
        2,
        [&] {
          state = std::make_shared<State>();
          auto s = state;
          return [s](Ctx& ctx) {
            s->names[ctx.pid()].store(
                s->net.rename(ctx, static_cast<std::uint64_t>(ctx.pid()) * 2 + 1));
          };
        },
        [&](const SimResult& run) {
          if (run.finished_count() < 2) return true;
          const auto a = state->names[0].load();
          const auto b = state->names[1].load();
          return a != b && a >= 1 && a <= 2 && b >= 1 && b <= 2;
        },
        options);
    EXPECT_FALSE(result.invariant_violated) << "seed " << seed;
    // Hardware comparators cost ~3 shared steps per process: small trees.
    EXPECT_GT(result.executions, 10u);
  }
}

}  // namespace
}  // namespace renamelib::sim
