// Tests for the Wing–Gong linearizability checker itself, and — the point —
// machine-checked linearizability of the paper's objects on real concurrent
// histories: l-test-and-set (Lemma 5), bounded fetch-and-increment
// (Theorem 6), the unbounded extension, and the max register [17]. Also a
// *negative* check: the monotone counter's non-linearizable histories are
// correctly rejected by the counter spec while passing monotone checks.
#include <gtest/gtest.h>

#include "api/counters.h"
#include "api/workload.h"
#include "counting/bounded_fai.h"
#include "counting/l_test_and_set.h"
#include "counting/max_register.h"
#include "counting/monotone_counter.h"
#include "counting/unbounded_fai.h"
#include "sim/executor.h"
#include "sim/linearizability.h"

namespace renamelib::sim {
namespace {

Operation make_op(int pid, const char* kind, std::uint64_t arg,
                  std::uint64_t result, std::uint64_t inv, std::uint64_t res) {
  Operation op;
  op.pid = pid;
  op.kind = kind;
  op.arg = arg;
  op.result = result;
  op.invoked = inv;
  op.responded = res;
  return op;
}

// --------------------------------------------------- checker unit tests ---

TEST(Checker, AcceptsSequentialLegalHistory) {
  LTasSpec spec(1);
  std::vector<Operation> h{make_op(0, "tas", 0, 1, 1, 2),
                           make_op(1, "tas", 0, 0, 3, 4)};
  EXPECT_TRUE(is_linearizable(h, spec));
}

TEST(Checker, RejectsSequentialIllegalHistory) {
  LTasSpec spec(1);
  // The second non-overlapping op also claims a win: impossible for l = 1.
  std::vector<Operation> h{make_op(0, "tas", 0, 1, 1, 2),
                           make_op(1, "tas", 0, 1, 3, 4)};
  EXPECT_FALSE(is_linearizable(h, spec));
}

TEST(Checker, UsesOverlapFreedom) {
  // Two overlapping fai ops may linearize in either order; the recorded
  // results force the reversed one.
  BoundedFaiSpec spec(4);
  std::vector<Operation> h{make_op(0, "fai", 0, 1, 1, 10),
                           make_op(1, "fai", 0, 0, 2, 9)};
  EXPECT_TRUE(is_linearizable(h, spec));
}

TEST(Checker, RespectsRealTimeOrder) {
  // Non-overlapping ops with decreasing fai values: must be rejected.
  BoundedFaiSpec spec(4);
  std::vector<Operation> h{make_op(0, "fai", 0, 1, 1, 2),
                           make_op(1, "fai", 0, 0, 3, 4)};
  EXPECT_FALSE(is_linearizable(h, spec));
}

TEST(Checker, MaxRegisterSpecBasics) {
  MaxRegisterSpec spec;
  std::vector<Operation> good{make_op(0, "write_max", 5, 0, 1, 2),
                              make_op(1, "read", 0, 5, 3, 4),
                              make_op(0, "write_max", 3, 0, 5, 6),
                              make_op(1, "read", 0, 5, 7, 8)};
  EXPECT_TRUE(is_linearizable(good, spec));
  std::vector<Operation> bad{make_op(0, "write_max", 5, 0, 1, 2),
                             make_op(1, "read", 0, 3, 3, 4)};
  EXPECT_FALSE(is_linearizable(bad, spec));
}

TEST(Checker, CounterSpecDetectsSkippedIncrement) {
  CounterSpec spec;
  // inc completes, then two sequential reads both return the pre-inc value 1
  // after another inc completed in between: the paper's non-linearizable
  // pattern shape.
  std::vector<Operation> h{make_op(0, "inc", 0, 0, 1, 2),
                           make_op(2, "read", 0, 1, 3, 4),
                           make_op(1, "inc", 0, 0, 5, 6),
                           make_op(2, "read", 0, 1, 7, 8)};
  EXPECT_FALSE(is_linearizable(h, spec));
}

// ------------------------------------------- real concurrent histories ---

class LTasLinearizable
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(LTasLinearizable, ConcurrentHistoriesLinearize) {
  // The api::Workload harness records the history (kind "tas" so the
  // sequential spec recognizes the operations).
  const auto [l, k, seed] = GetParam();
  counting::LTestAndSet ltas(static_cast<std::uint64_t>(l));
  api::Scenario s;
  s.nproc = k;
  s.ops_per_proc = 1;
  s.seed = seed;
  s.record_history = true;
  s.history_kind = "tas";
  const auto run = api::Workload(s).run_ops(
      [&](Ctx& ctx) { return ltas.test_and_set(ctx) ? 1ULL : 0ULL; });
  ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(k));
  LTasSpec spec(static_cast<std::uint64_t>(l));
  EXPECT_TRUE(is_linearizable(run.history, spec))
      << "l=" << l << " k=" << k << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LTasLinearizable,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(3, 6, 9),
                                            ::testing::Range<std::uint64_t>(0, 6)));

class FaiLinearizable
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(FaiLinearizable, BoundedFaiHistoriesLinearize) {
  // ICounter adapter + api::Workload with history recording.
  const auto [k, seed] = GetParam();
  api::BoundedFaiCounter counter(16);
  api::Scenario s;
  s.nproc = k;
  s.ops_per_proc = 2;
  s.seed = seed;
  s.record_history = true;
  const auto run = api::Workload(s).run(counter);
  ASSERT_EQ(run.finished_procs, static_cast<std::size_t>(k));
  BoundedFaiSpec spec(16);
  EXPECT_TRUE(is_linearizable(run.history, spec))
      << "k=" << k << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FaiLinearizable,
                         ::testing::Combine(::testing::Values(2, 4, 6),
                                            ::testing::Range<std::uint64_t>(0, 8)));

TEST(FaiLinearizable, SaturatedHistoriesLinearize) {
  // k ops on a tiny m: saturation values must still linearize.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    api::BoundedFaiCounter counter(4);
    api::Scenario s;
    s.nproc = 6;
    s.ops_per_proc = 1;
    s.seed = seed;
    s.record_history = true;
    const auto run = api::Workload(s).run(counter);
    ASSERT_EQ(run.finished_procs, 6u);
    BoundedFaiSpec spec(4);
    EXPECT_TRUE(is_linearizable(run.history, spec)) << "seed " << seed;
  }
}

TEST(UnboundedFaiLinearizable, CrossEpochHistoriesLinearize) {
  // First epoch holds 8 values; 6 processes x 2 ops = 12 ops cross into the
  // second epoch. An unbounded FAI linearizes iff results are a permutation
  // of 0..11 consistent with real time — use the bounded spec with a huge m.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    api::UnboundedFaiCounter counter;
    api::Scenario s;
    s.nproc = 6;
    s.ops_per_proc = 2;
    s.seed = seed;
    s.record_history = true;
    const auto run = api::Workload(s).run(counter);
    ASSERT_EQ(run.finished_procs, 6u);
    BoundedFaiSpec spec(1ULL << 40);
    EXPECT_TRUE(is_linearizable(run.history, spec)) << "seed " << seed;
    EXPECT_GE(counter.impl().current_epoch(), 1u)
        << "history did not cross an epoch";
  }
}

TEST(MaxRegisterLinearizable, ConcurrentHistoriesLinearize) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    counting::MaxRegister reg(64);
    HistoryRecorder recorder;
    RandomAdversary adversary(seed * 3 + 7);
    RunOptions options;
    options.seed = seed;
    auto result = run_simulation(
        4,
        [&](Ctx& ctx) {
          const std::uint64_t mine = 3 + 5 * static_cast<std::uint64_t>(ctx.pid());
          std::uint64_t t = recorder.invoke();
          reg.write_max(ctx, mine);
          recorder.respond(ctx.pid(), "write_max", mine, 0, t);
          t = recorder.invoke();
          const std::uint64_t v = reg.read(ctx);
          recorder.respond(ctx.pid(), "read", 0, v, t);
        },
        adversary, options);
    ASSERT_EQ(result.finished_count(), 4u);
    MaxRegisterSpec spec;
    EXPECT_TRUE(is_linearizable(recorder.history(), spec)) << "seed " << seed;
  }
}

TEST(MonotoneCounterNonLinearizable, PaperScenarioRejectedByCounterSpec) {
  // The Sec. 8.1 schedule as a recorded history. Three increments: p3's is
  // in flight throughout (it is what let p2 draw name 2); p2 completes, R1
  // reads 2, then p1 runs a complete increment (obtaining name 1, possible
  // in a renaming network), and R2 still reads 2. Under the exact-counter
  // spec: R1 = 2 forces p3's pending increment before R1, and p1's
  // increment must precede R2 (real time), so R2 >= 3 — contradiction. The
  // checker must reject: this is the formal content of "our counter is
  // monotone-consistent but not linearizable".
  std::vector<Operation> h{
      make_op(3, "inc", 0, 0, 0, 20),   // p3: in flight the whole time
      make_op(2, "inc", 0, 0, 1, 4),    // p2 completes with name 2
      make_op(4, "read", 0, 2, 5, 6),   // R1 = 2
      make_op(1, "inc", 0, 0, 7, 8),    // p1 runs entirely between the reads
      make_op(4, "read", 0, 2, 9, 10),  // R2 = 2 again
  };
  CounterSpec spec;
  EXPECT_FALSE(is_linearizable(h, spec));

  // Control: with R2 = 3 the same schedule is linearizable.
  h[4].result = 3;
  EXPECT_TRUE(is_linearizable(h, spec));
}

TEST(HistoryRecorder, ClockOrdersNonOverlappingOps) {
  HistoryRecorder recorder;
  const std::uint64_t t1 = recorder.invoke();
  recorder.respond(0, "a", 0, 0, t1);
  const std::uint64_t t2 = recorder.invoke();
  recorder.respond(1, "b", 0, 0, t2);
  const auto h = recorder.history();
  ASSERT_EQ(h.size(), 2u);
  EXPECT_LT(h[0].responded, h[1].invoked);
}

}  // namespace
}  // namespace renamelib::sim
