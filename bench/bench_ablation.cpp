// Ablation studies for the design choices DESIGN.md calls out:
//   (a) the sorting-network base of a renaming network (odd-even vs
//       standardized bitonic vs pairwise vs optimal-small),
//   (b) the two comparator arbitration flavors (randomized registers-only
//       vs unit-cost hardware TAS),
//   (c) TempName stage-1 cost vs network stage-2 cost inside the adaptive
//       algorithm (what the splitter tree buys and what it costs),
//   (d) the long-lived extension's probe cost vs holder count.
#include "bench_common.h"
#include "renaming/adaptive_strong.h"
#include "renaming/long_lived.h"
#include "renaming/renaming_network.h"
#include "renaming/validate.h"
#include "sortnet/bitonic.h"
#include "sortnet/odd_even_merge.h"
#include "sortnet/optimal_small.h"
#include "sortnet/pairwise.h"

namespace renamelib {
namespace {

void base_network_ablation() {
  bench::print_header(
      "Ablation (a): sorting-network base of a renaming network",
      "Width-8 and width-16 renaming with all participants; mean steps per "
      "process (randomized comparators, adversarial simulation).");
  stats::Table table({"base", "width", "size", "depth", "mean steps",
                      "p99 steps"});
  struct Base {
    const char* name;
    sortnet::ComparatorNetwork net;
  };
  for (std::size_t width : bench::sweep_or_first<std::size_t>({8, 16})) {
    std::vector<Base> bases;
    bases.push_back({"odd-even", sortnet::odd_even_merge_sort(width)});
    bases.push_back({"bitonic", sortnet::bitonic_sort(width)});
    bases.push_back({"pairwise", sortnet::pairwise_sort(width)});
    if (width <= 12) {
      bases.push_back({"optimal", sortnet::optimal_small_sort(width)});
    }
    for (auto& base : bases) {
      const std::size_t size = base.net.size();
      const std::size_t depth = base.net.depth();
      const int k = static_cast<int>(width);
      std::vector<std::uint64_t> names(k, 0);
      std::vector<double> all;
      for (std::uint64_t run = 0; run < bench::pick<std::uint64_t>(4, 2); ++run) {
        renaming::RenamingNetwork fresh{sortnet::ComparatorNetwork(base.net)};
        auto steps = bench::run_simulated(k, run * 97 + width, [&](Ctx& ctx) {
          names[ctx.pid()] =
              fresh.rename(ctx, static_cast<std::uint64_t>(ctx.pid()) + 1);
        });
        all.insert(all.end(), steps.begin(), steps.end());
        const auto check = renaming::check_tight(names, width);
        if (!check.ok) {
          std::cerr << "VALIDATION FAILED: " << check.error << "\n";
          std::exit(1);
        }
      }
      const auto s = stats::summarize(all);
      bench::report_samples("base_network/" + std::string(base.name), "",
                            "simulated", k, all);
      table.add_row({base.name, std::to_string(width), std::to_string(size),
                     std::to_string(depth), stats::Table::num(s.mean),
                     stats::Table::num(s.p99)});
    }
  }
  table.print(std::cout);
}

void arbitration_ablation() {
  bench::print_header(
      "Ablation (b): comparator arbitration flavor",
      "Width-64 renaming network, k = 64: randomized registers-only TAS vs "
      "unit-cost hardware TAS (deterministic).");
  stats::Table table({"arbitration", "mean steps", "p99 steps", "max steps"});
  for (const auto kind : {renaming::ComparatorKind::kRandomized,
                          renaming::ComparatorKind::kHardware}) {
    std::vector<double> all;
    for (std::uint64_t run = 0; run < bench::pick<std::uint64_t>(4, 1); ++run) {
      renaming::RenamingNetwork net(sortnet::odd_even_merge_sort(64), kind);
      auto steps = bench::run_simulated(64, run * 31 + 5, [&](Ctx& ctx) {
        (void)net.rename(ctx, static_cast<std::uint64_t>(ctx.pid()) + 1);
      });
      all.insert(all.end(), steps.begin(), steps.end());
    }
    const auto s = stats::summarize(all);
    table.add_row(
        {kind == renaming::ComparatorKind::kRandomized ? "randomized" : "hardware",
         stats::Table::num(s.mean), stats::Table::num(s.p99),
         stats::Table::num(s.max, 0)});
  }
  table.print(std::cout);
}

void stage_breakdown() {
  bench::print_header(
      "Ablation (c): TempName (stage 1) vs network walk (stage 2)",
      "Step share of each stage of the adaptive algorithm. Stage 1 buys an "
      "unbounded initial namespace; the table shows what it costs.");
  stats::Table table({"k", "total steps", "stage1 share %", "stage2 comps",
                      "temp retries"});
  for (int k : bench::sweep_or_first<int>({4, 16, 64})) {
    renaming::AdaptiveStrongRenaming renaming;
    std::vector<renaming::AdaptiveStrongRenaming::Outcome> outs(k);
    std::vector<double> stage1_steps(k, 0);
    auto steps = bench::run_simulated(k, k * 7 + 9, [&](Ctx& ctx) {
      const std::uint64_t before = ctx.steps();
      // rename_instrumented reports comparators; approximate the stage-1
      // share by charging non-comparator steps to stage 1 (each randomized
      // comparator costs >= 2 steps; we report the conservative label-based
      // split below via comparators * 2 as a stage-2 floor).
      outs[ctx.pid()] = renaming.rename_instrumented(ctx, ctx.pid() + 1);
      stage1_steps[ctx.pid()] = static_cast<double>(ctx.steps() - before);
    });
    double total = 0, comps = 0, retries = 0;
    for (int p = 0; p < k; ++p) {
      total += stage1_steps[p];
      comps += static_cast<double>(outs[p].comparators);
      retries += static_cast<double>(outs[p].temp_retries);
    }
    const double stage2_floor = comps * 2;  // >= 2 register ops per comparator
    const double share1 = 100.0 * (total - stage2_floor) / total;
    table.add_row({std::to_string(k), stats::Table::num(total / k),
                   stats::Table::num(share1, 1), stats::Table::num(comps / k),
                   stats::Table::num(retries, 0)});
    (void)steps;
  }
  table.print(std::cout);
}

void long_lived_probes() {
  bench::print_header(
      "Ablation (d): long-lived renaming probe cost vs holders",
      "Mean probes per acquire with h concurrent holders on a 4096-slot "
      "table; claim O(log h) probes, independent of capacity.");
  stats::Table table({"holders", "mean probes", "max name seen"});
  for (int holders : bench::pick<std::vector<int>>({1, 4, 16, 64, 256}, {1, 16})) {
    renaming::LongLivedRenaming names(4096);
    Ctx ctx(0, 77);
    // Pre-occupy `holders - 1` slots.
    std::vector<std::uint64_t> held;
    for (int i = 0; i + 1 < holders; ++i) held.push_back(names.acquire(ctx));
    double probes = 0;
    std::uint64_t max_name = 0;
    const int kCycles = 60;
    for (int c = 0; c < kCycles; ++c) {
      const auto out = names.acquire_instrumented(ctx);
      probes += static_cast<double>(out.probes);
      max_name = std::max(max_name, out.name);
      names.release(ctx, out.name);
    }
    table.add_row({std::to_string(holders), stats::Table::num(probes / kCycles),
                   std::to_string(max_name)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace renamelib

int main(int argc, char** argv) {
  renamelib::bench::parse_args(argc, argv);
  renamelib::base_network_ablation();
  renamelib::arbitration_ablation();
  renamelib::stage_breakdown();
  renamelib::long_lived_probes();
  return renamelib::bench::finish();
}
