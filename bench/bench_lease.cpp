// Experiment: the escrow-leased ID service (src/lease) — batching turns a
// shared dispenser's per-op synchronization into a per-range cost.
//
// Regenerates:
//   * the quota amortization curve: paper-model shared steps per op shrink
//     roughly as 1/quota once a leased range serves thread-locally (exact
//     counts, adversarial simulation),
//   * the 16-thread hardware throughput shootout: lease:quota=Q over a
//     striped inner vs the bare inner spec. The lease fast path is a few
//     nanoseconds, so this leg times tight loops around ICounter::next
//     directly — a per-op clock read would dwarf the thing being measured.
//     Full preset validates the headline claim: quota=64 beats the bare
//     inner by >= 5x ops/sec,
//   * the crash-storm reclaim ledger: seed-chosen victims die holding
//     partially drained leases; survivors stay unique and the quiescent
//     double-reclaim returns every unreturned tail to the escrow pool.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/leases.h"
#include "api/registry.h"
#include "api/workload.h"
#include "bench_common.h"
#include "lease/lease_broker.h"

namespace renamelib {
namespace {

using api::Registry;
using api::Scenario;
using api::Workload;

/// Exits non-zero unless `values` are pairwise distinct and below `bound`.
void check_unique_bounded(std::vector<std::uint64_t> values,
                          std::uint64_t bound, const std::string& where) {
  std::sort(values.begin(), values.end());
  if (std::adjacent_find(values.begin(), values.end()) != values.end()) {
    std::cerr << "VALIDATION FAILED: duplicate leased position (" << where
              << ")\n";
    std::exit(1);
  }
  if (!values.empty() && values.back() >= bound) {
    std::cerr << "VALIDATION FAILED: position " << values.back()
              << " exceeds the escrow bound " << bound << " (" << where
              << ")\n";
    std::exit(1);
  }
}

// ------------------------------------------------------ quota amortization ---

void amortization_table() {
  bench::print_header(
      "Quota amortization (adversarial simulation, exact step counts)",
      "One leased range of Q positions pays one refill (mint + install) and "
      "~Q/window watermark advances, then serves locally: shared steps per "
      "op must fall as the quota grows.");
  stats::Table table({"quota", "k", "ops", "shared steps", "shared/op",
                      "mean op steps", "refills", "advances", "minted"});
  const int k = 8;
  const int ops = bench::pick(32, 4);
  std::vector<double> shared_per_op;
  for (const std::uint64_t quota :
       bench::sweep_or_first<std::uint64_t>({1, 8, 64, 256})) {
    const std::string spec =
        "lease:quota=" + std::to_string(quota) + ",inner=[atomic_fai]";
    const auto counter = Registry::global().make_counter(spec);
    auto* adapter = dynamic_cast<api::LeasedCounterAdapter*>(counter.get());
    if (adapter == nullptr) {
      std::cerr << "VALIDATION FAILED: '" << spec
                << "' did not build a LeasedCounterAdapter\n";
      std::exit(1);
    }
    const auto s = bench::sim_scenario(k, ops, 17 + quota);
    const api::Run run = Workload(s).run(*counter);
    const std::uint64_t total =
        static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(ops);
    check_unique_bounded(run.values(),
                         total + static_cast<std::uint64_t>(k) * quota,
                         "sim quota=" + std::to_string(quota));
    const auto stats = adapter->impl().stats();
    const double per_op =
        static_cast<double>(run.metrics.shared_steps) / static_cast<double>(total);
    shared_per_op.push_back(per_op);
    table.add_row({std::to_string(quota), std::to_string(k),
                   std::to_string(total),
                   std::to_string(run.metrics.shared_steps),
                   stats::Table::num(per_op, 3),
                   stats::Table::num(run.metrics.mean_op_steps(), 3),
                   std::to_string(stats.refills),
                   std::to_string(stats.advances),
                   std::to_string(stats.minted)});
    bench::report_run("amortization", spec, s, run);
  }
  table.print(std::cout);
  // The curve only exists with more than one sweep point (full preset).
  if (shared_per_op.size() > 1 &&
      shared_per_op.back() >= shared_per_op.front()) {
    std::cerr << "VALIDATION FAILED: shared steps per op did not fall from "
              << shared_per_op.front() << " (quota=1) to "
              << shared_per_op.back() << " (largest quota)\n";
    std::exit(1);
  }
}

// ------------------------------------------------- hardware throughput leg ---

struct TimedRun {
  double ops_per_sec = 0;
  std::uint64_t total_ops = 0;
  std::vector<double> ns_per_op;  ///< per-thread mean latency samples
  api::ICounter* counter = nullptr;
};

/// Times `threads` tight loops of counter->next() around a start barrier and
/// validates uniqueness of everything handed out. Returns wall-clock
/// throughput; `keep` receives the constructed counter for stats probing.
TimedRun timed_throughput(const std::string& spec, int threads, int ops,
                          std::uint64_t seed,
                          std::unique_ptr<api::ICounter>* keep) {
  *keep = Registry::global().make_counter(spec);
  api::ICounter* counter = keep->get();
  std::vector<std::vector<std::uint64_t>> values(
      static_cast<std::size_t>(threads));
  TimedRun result;
  result.ns_per_op.resize(static_cast<std::size_t>(threads));
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int p = 0; p < threads; ++p) {
    pool.emplace_back([&, p] {
      Ctx ctx(p, Rng::derive(seed, static_cast<std::uint64_t>(p)));
      auto& mine = values[static_cast<std::size_t>(p)];
      mine.resize(static_cast<std::size_t>(ops));
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < ops; ++i) {
        mine[static_cast<std::size_t>(i)] = counter->next(ctx);
      }
      const auto t1 = std::chrono::steady_clock::now();
      result.ns_per_op[static_cast<std::size_t>(p)] =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()) /
          static_cast<double>(ops);
    });
  }
  while (ready.load() != threads) std::this_thread::yield();
  const auto w0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& t : pool) t.join();
  const auto w1 = std::chrono::steady_clock::now();
  result.total_ops =
      static_cast<std::uint64_t>(threads) * static_cast<std::uint64_t>(ops);
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(w1 - w0)
          .count();
  result.ops_per_sec = secs > 0 ? static_cast<double>(result.total_ops) / secs
                                : 0;
  result.counter = counter;

  std::vector<std::uint64_t> all;
  all.reserve(result.total_ops);
  for (const auto& v : values) all.insert(all.end(), v.begin(), v.end());
  const std::uint64_t quota = api::Spec::parse(spec).get_u64("quota", 0);
  check_unique_bounded(
      std::move(all),
      result.total_ops + static_cast<std::uint64_t>(threads) * quota,
      "hw " + spec);
  return result;
}

/// Appends one hardware throughput run to the bench report. The latency
/// recording carries the per-thread mean ns/op samples: the loops are timed
/// at thread granularity precisely because per-op clock reads would dominate
/// the lease fast path.
void report_throughput(const std::string& spec, int threads,
                       const TimedRun& run) {
  api::ReportRun r;
  r.name = "lease_throughput";
  r.spec = spec;
  r.backend = "hardware";
  r.threads = threads;
  r.ops = run.total_ops;
  r.ops_per_sec = run.ops_per_sec;
  r.unit = "ns";
  r.latency = stats::LatencySnapshot::of(run.ns_per_op);
  bench::g_report.runs.push_back(std::move(r));
}

void throughput_table() {
  bench::print_header(
      "16-thread hardware shootout: leased striped vs bare striped",
      "Tight next() loops on real threads. The lease serves thread-locally "
      "until the range drains, so its per-op cost is a cursor bump; the "
      "bare inner pays its shared synchronization every op. Claim: quota=64 "
      "reaches >= 5x the bare inner's ops/sec (validated in the full "
      "preset).");
  const int threads = bench::pick(16, 4);
  const int ops = bench::pick(200'000, 2'000);
  const std::string inner = "striped:stripes=8";

  stats::Table table({"spec", "ops/sec", "speedup", "thread mean ns/op",
                      "refills", "advances", "minted"});
  std::unique_ptr<api::ICounter> keep;
  const TimedRun bare = timed_throughput(inner, threads, ops, 1009, &keep);
  const auto mean_ns = [](const TimedRun& r) {
    double sum = 0;
    for (const double v : r.ns_per_op) sum += v;
    return r.ns_per_op.empty() ? 0 : sum / static_cast<double>(r.ns_per_op.size());
  };
  table.add_row({inner, stats::Table::num(bare.ops_per_sec, 0), "1.00",
                 stats::Table::num(mean_ns(bare), 1), "-", "-", "-"});
  report_throughput(inner, threads, bare);

  double speedup_at_64 = 0;
  for (const std::uint64_t quota :
       bench::pick<std::vector<std::uint64_t>>({1, 8, 64, 256}, {64})) {
    const std::string spec =
        "lease:quota=" + std::to_string(quota) + ",inner=[" + inner + "]";
    const TimedRun leased =
        timed_throughput(spec, threads, ops, 2003 + quota, &keep);
    const double speedup =
        bare.ops_per_sec > 0 ? leased.ops_per_sec / bare.ops_per_sec : 0;
    if (quota == 64) speedup_at_64 = speedup;
    auto* adapter = dynamic_cast<api::LeasedCounterAdapter*>(keep.get());
    const auto s = adapter != nullptr ? adapter->impl().stats()
                                      : lease::LeaseBroker::Stats{};
    table.add_row({spec, stats::Table::num(leased.ops_per_sec, 0),
                   stats::Table::num(speedup, 2),
                   stats::Table::num(mean_ns(leased), 1),
                   std::to_string(s.refills), std::to_string(s.advances),
                   std::to_string(s.minted)});
    report_throughput(spec, threads, leased);
  }
  table.print(std::cout);
  std::cout << "(speedup = leased ops/sec over the bare inner's. The smoke "
               "preset shrinks threads and ops and skips the ratio gate — "
               "thread counts that fit a loaded CI core are too noisy to "
               "assert a multiplier on.)\n";
  if (!bench::g_smoke && speedup_at_64 < 5.0) {
    std::cerr << "VALIDATION FAILED: lease:quota=64 reached only "
              << speedup_at_64 << "x the bare inner (claim: >= 5x)\n";
    std::exit(1);
  }
}

// ----------------------------------------------------- crash-storm reclaim ---

void crash_reclaim_table() {
  bench::print_header(
      "Crash-storm reclaim ledger (CrashAdversary, simulated)",
      "Two of six processes die at seed-drawn shared-step thresholds — "
      "inside refills, holding partially drained leases. Survivors stay "
      "unique; the quiescent double-reclaim seizes every unreturned tail "
      "and a third scan finds nothing.");
  const std::string spec =
      "lease:quota=8,window=2,procs=8,reclaim=2,inner=[atomic_fai]";
  stats::Table table({"seed", "crashed", "values", "reclaimed ranges",
                      "reclaimed positions", "dropped", "pool grants"});
  std::uint64_t storms_with_seizures = 0;
  const std::uint64_t seeds = bench::pick<std::uint64_t>(6, 2);
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    const auto counter = Registry::global().make_counter(spec);
    auto* adapter = dynamic_cast<api::LeasedCounterAdapter*>(counter.get());
    Scenario s = bench::sim_scenario(6, 8, seed);
    s.crashes.max_crashes = 2;
    s.crashes.crash_step_max = 6;
    const api::Run run = Workload(s).run(*counter);
    const std::uint64_t attempted =
        static_cast<std::uint64_t>(s.nproc) * s.ops_per_proc;
    check_unique_bounded(run.values(), attempted * 8,
                         "crash seed=" + std::to_string(seed));

    Ctx quiescent(7, 400 + seed);
    (void)adapter->impl().reclaim(quiescent);
    (void)adapter->impl().reclaim(quiescent);
    if (adapter->impl().reclaim(quiescent) != 0) {
      std::cerr << "VALIDATION FAILED: third quiescent reclaim still seized "
                   "a lease (seed=" << seed << ")\n";
      std::exit(1);
    }
    const auto stats = adapter->impl().stats();
    if (stats.reclaimed_ranges > 0) storms_with_seizures += 1;
    table.add_row({std::to_string(seed), std::to_string(run.crashed_procs),
                   std::to_string(run.values().size()),
                   std::to_string(stats.reclaimed_ranges),
                   std::to_string(stats.reclaimed_positions),
                   std::to_string(stats.dropped_ranges),
                   std::to_string(stats.pool_grants)});
    bench::report_run("lease_crash", spec, s, run);
  }
  table.print(std::cout);
  if (storms_with_seizures == 0) {
    std::cerr << "VALIDATION FAILED: no storm left a partially drained lease "
                 "to seize — crash thresholds are not reaching the refill\n";
    std::exit(1);
  }
}

}  // namespace
}  // namespace renamelib

int main(int argc, char** argv) {
  renamelib::bench::parse_args(argc, argv);
  renamelib::amortization_table();
  renamelib::throughput_table();
  renamelib::crash_reclaim_table();
  return renamelib::bench::finish();
}
