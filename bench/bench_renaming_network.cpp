// Experiment: Sec. 5 (Theorem 1, Corollary 3) — renaming from a sorting
// network with bounded initial namespace M.
//
// Regenerates, per M:
//   * tightness/uniqueness validation for k <= M participants,
//   * per-process comparators traversed vs the network depth bound,
//   * per-process steps (randomized TAS comparators) vs expected O(depth),
//   * the Batcher depth (measured) against the AKS model projection the
//     paper's O(log M) claim would use.
#include "bench_common.h"
#include "renaming/renaming_network.h"
#include "renaming/validate.h"
#include "sortnet/aks_model.h"
#include "sortnet/odd_even_merge.h"

namespace renamelib {
namespace {

void depth_vs_models() {
  bench::print_header(
      "Cor. 3 depth: constructible Batcher vs AKS projection",
      "Renaming cost == network depth. AKS gives O(log M) with an enormous "
      "constant (model: 1830*log2 M); Batcher gives log^2-ish depth that is "
      "far smaller at every feasible M — the trade the paper discusses.");
  sortnet::AksModel aks;
  stats::Table table({"M", "batcher depth", "batcher size", "AKS model depth"});
  for (std::size_t m : {8u, 16u, 64u, 256u, 1024u}) {
    const auto net = sortnet::odd_even_merge_sort(m);
    table.add_row({std::to_string(m), std::to_string(net.depth()),
                   std::to_string(net.size()),
                   stats::Table::num(aks.depth(m), 0)});
  }
  table.print(std::cout);
}

void rename_costs() {
  bench::print_header(
      "Thm. 1 / Cor. 3: renaming network execution (adversarial simulation)",
      "k participants on random distinct ports of a width-M Batcher renaming "
      "network. Claims: names exactly 1..k; comparators on any path <= "
      "depth; steps O(depth) expected (randomized 2-process TAS).");
  stats::Table table({"M", "k", "depth", "mean comps", "max comps",
                      "mean steps", "p99 steps", "tight"});
  struct Config {
    std::size_t m;
    int k;
  };
  for (const Config cfg : {Config{16, 4}, Config{16, 16}, Config{64, 8},
                           Config{64, 64}, Config{256, 32}, Config{256, 128}}) {
    const auto base = sortnet::odd_even_merge_sort(cfg.m);
    const std::size_t depth = base.depth();
    renaming::RenamingNetwork net(base);
    std::vector<renaming::RenamingNetwork::Routed> routed(cfg.k);
    // Distinct ports spread over 1..M.
    auto steps = bench::run_simulated(cfg.k, cfg.m * 31 + cfg.k, [&](Ctx& ctx) {
      const std::uint64_t port =
          1 + static_cast<std::uint64_t>(ctx.pid()) * (cfg.m / cfg.k);
      routed[ctx.pid()] = net.rename_counted(ctx, port);
    });
    std::vector<double> comps;
    std::vector<std::uint64_t> names;
    for (const auto& r : routed) {
      comps.push_back(static_cast<double>(r.comparators));
      names.push_back(r.name);
    }
    const auto cs = stats::summarize(comps);
    const auto ss = stats::summarize(steps);
    bench::report_samples("rename_costs/M=" + std::to_string(cfg.m), "",
                          "simulated", cfg.k, steps);
    const auto check =
        renaming::check_tight(names, static_cast<std::uint64_t>(cfg.k));
    table.add_row({std::to_string(cfg.m), std::to_string(cfg.k),
                   std::to_string(depth), stats::Table::num(cs.mean),
                   stats::Table::num(cs.max, 0), stats::Table::num(ss.mean),
                   stats::Table::num(ss.p99), check.ok ? "yes" : "NO"});
    if (!check.ok) {
      std::cerr << "VALIDATION FAILED: " << check.error << "\n";
      std::exit(1);
    }
  }
  table.print(std::cout);
}

void hardware_comparators() {
  bench::print_header(
      "Sec. 1 Discussion: deterministic renaming with hardware TAS",
      "Same networks with unit-cost hardware comparators: steps == "
      "comparators traversed, deterministic.");
  stats::Table table({"M", "k", "depth", "mean steps", "max steps", "tight"});
  for (std::size_t m : {64u, 256u, 1024u}) {
    const int k = static_cast<int>(m / 2);
    const auto base = sortnet::odd_even_merge_sort(m);
    renaming::RenamingNetwork net(base, renaming::ComparatorKind::kHardware);
    std::vector<std::uint64_t> names(k, 0);
    auto steps = bench::run_hardware(k, m, [&](Ctx& ctx) {
      const std::uint64_t port = 1 + static_cast<std::uint64_t>(ctx.pid()) * 2;
      names[ctx.pid()] = net.rename(ctx, port);
    });
    const auto s = stats::summarize(steps);
    const auto check = renaming::check_tight(names, static_cast<std::uint64_t>(k));
    table.add_row({std::to_string(m), std::to_string(k),
                   std::to_string(base.depth()), stats::Table::num(s.mean),
                   stats::Table::num(s.max, 0), check.ok ? "yes" : "NO"});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace renamelib

int main(int argc, char** argv) {
  renamelib::bench::parse_args(argc, argv);
  renamelib::depth_vs_models();
  renamelib::rename_costs();
  renamelib::hardware_comparators();
  return renamelib::bench::finish();
}
