// Experiment: Sec. 8.2 (Lemma 5, Theorem 6) — l-test-and-set and the
// m-valued fetch-and-increment.
//
// Regenerates:
//   * l-TAS winner counts (exactly min(l,k)) and O(log k) expected cost,
//   * the O(log k log m) fetch-and-increment surface: per-op steps swept
//     over both m and k, with the steps/(log k * log m) ratio that should
//     stay bounded,
//   * a cross-family shootout swept over thread counts: every registered
//     counter — including the sharded striped/difftree family — on the same
//     scenarios, the N+M wiring the api registry buys.
#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "api/workload.h"
#include "bench_common.h"
#include "counting/l_test_and_set.h"

namespace renamelib {
namespace {

using bench::sim_scenario;

void ltas_table() {
  bench::print_header(
      "Lemma 5: l-test-and-set (adversarial simulation)",
      "Exactly min(l, k) winners in every execution; expected O(log k) steps.");
  stats::Table table({"l", "k", "winners", "mean steps", "p99 steps"});
  for (int l : bench::sweep_or_first<int>({1, 2, 8})) {
    for (int k : bench::sweep_or_first<int>({4, 16, 48})) {
      counting::LTestAndSet ltas(static_cast<std::uint64_t>(l));
      const auto run =
          api::Workload(sim_scenario(k, 1, static_cast<std::uint64_t>(l * 100 + k)))
              .run_ops([&](Ctx& ctx) {
                return ltas.test_and_set(ctx) ? 1ULL : 0ULL;
              });
      int winners = 0;
      for (const std::uint64_t v : run.values()) {
        winners += static_cast<int>(v);
      }
      const auto s = stats::summarize(run.op_steps());
      table.add_row({std::to_string(l), std::to_string(k),
                     std::to_string(winners), stats::Table::num(s.mean),
                     stats::Table::num(s.p99)});
      if (winners != std::min(l, k)) {
        std::cerr << "VALIDATION FAILED: winners=" << winners << " l=" << l
                  << " k=" << k << "\n";
        std::exit(1);
      }
    }
  }
  table.print(std::cout);
}

void fai_surface() {
  bench::print_header(
      "Thm. 6: m-valued fetch-and-increment cost surface",
      "Per-op steps vs (m, k); claim O(log k log m) expected. The ratio "
      "steps/(log2 k * log2 m) should stay bounded across the sweep.");
  stats::Table table({"m", "k", "mean steps", "p99 steps",
                      "steps/(log k*log m)", "values 0..k-1"});
  for (std::uint64_t m : bench::sweep_or_first<std::uint64_t>({8, 64, 1024})) {
    for (int k : bench::sweep_or_first<int>({2, 8, 24})) {
      const auto run = api::Workload::run_counter_spec(
          "bounded_fai:m=" + std::to_string(m),
          sim_scenario(k, 1, m * 13 + static_cast<std::uint64_t>(k)));
      std::vector<std::uint64_t> sorted = run.values();
      std::sort(sorted.begin(), sorted.end());
      if (sorted.size() != static_cast<std::size_t>(k)) {
        std::cerr << "VALIDATION FAILED: " << sorted.size() << " of " << k
                  << " ops completed (m=" << m << ")\n";
        std::exit(1);
      }
      // k <= m: values must be exactly {0..k-1}. k > m: the first m ops take
      // {0..m-1} and the object saturates, returning m-1 for the rest.
      bool prefix = true;
      for (int i = 0; i < k; ++i) {
        const std::uint64_t expected =
            std::min<std::uint64_t>(static_cast<std::uint64_t>(i), m - 1);
        prefix &= sorted[static_cast<std::size_t>(i)] == expected;
      }
      const auto s = stats::summarize(run.op_steps());
      const double denom =
          std::log2(static_cast<double>(k) + 1) * std::log2(static_cast<double>(m));
      table.add_row({std::to_string(m), std::to_string(k),
                     stats::Table::num(s.mean), stats::Table::num(s.p99),
                     stats::Table::num(s.mean / denom, 3),
                     prefix ? "yes" : "NO"});
      if (!prefix) {
        std::cerr << "VALIDATION FAILED: non-prefix values (m=" << m
                  << " k=" << k << ")\n";
        std::exit(1);
      }
    }
  }
  table.print(std::cout);
}

/// Validates that `run` handed out exactly {0..N-1}; exits non-zero if not.
void check_dense(const api::Run& run, const std::string& spec, int k,
                 const char* backend) {
  std::vector<std::uint64_t> sorted = run.values();
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != i) {
      std::cerr << "VALIDATION FAILED: non-dense values for '" << spec
                << "' at k=" << k << " (" << backend << ")\n";
      std::exit(1);
    }
  }
}

/// Escrow dispensers (the lease facade) hand out leased ranges: values are
/// unique and below completed + k*quota, but never dense — leased positions
/// left in partially drained ranges are only reclaimed, not re-sequenced.
/// Exits non-zero on a violation.
void check_escrow(const api::Run& run, const std::string& spec, int k,
                  const char* backend) {
  std::vector<std::uint64_t> sorted = run.values();
  std::sort(sorted.begin(), sorted.end());
  const api::Spec parsed = api::Spec::parse(spec);
  std::uint64_t bound;
  if (parsed.name() == "combine") {
    // The combining funnel's escrow is doubled-demand, not quota-refill:
    // each request triggers at most one combined and one direct inner mint
    // on its behalf, so the (dense, default atomic_fai) inner hands out
    // fewer than 2 * completed values.
    bound = 2 * sorted.size();
  } else {
    const std::uint64_t quota = parsed.get_u64("quota", 64);
    bound = sorted.size() + static_cast<std::uint64_t>(k) * quota;
  }
  const bool unique =
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
  if (!unique || (!sorted.empty() && sorted.back() >= bound)) {
    std::cerr << "VALIDATION FAILED: escrow values not unique/bounded for '"
              << spec << "' at k=" << k << " (" << backend << ")\n";
    std::exit(1);
  }
}

void counter_shootout() {
  bench::print_header(
      "Registry shootout: every counter family, swept over thread counts",
      "Each registered counter (plus tuned sharded variants) runs the same "
      "scenarios at k = 2, 8, 16 processes, on both backends. Cost-model "
      "columns come from the 2 ops/proc adversarial simulation (exact step "
      "counts); the wall-clock columns from a hardware run on real threads "
      "(ops/sec across all threads, per-op latency percentiles). One "
      "facade, one metrics contract: renaming-backed FAI vs counting "
      "networks vs sharded stripes/trees vs the 1-step atomic reference.");

  // Every registered counter at default params, then the sharded variants
  // the defaults do not cover (elimination on, deeper tree, composed leaf).
  std::vector<std::string> specs;
  for (const auto& info : api::Registry::global().counters()) {
    specs.push_back(info.name);
  }
  specs.push_back("striped:stripes=16,elim=1");
  specs.push_back("difftree:depth=2,leaf=[striped:stripes=4]");
  specs.push_back("difftree:depth=3,leaf=[bounded_fai:m=64]");
  specs.push_back("lease:quota=64,inner=[striped:stripes=8]");

  stats::Table table({"spec", "family", "consistency", "k", "mean op steps",
                      "max op steps", "shared steps", "coin flips",
                      "hw ops/sec", "hw p50 ns", "hw p99 ns"});
  for (const auto& spec : specs) {
    const api::CounterInfo* info =
        api::Registry::global().find_counter(api::Spec::parse(spec).name());
    const std::uint64_t capacity =
        api::Registry::global().make_counter(spec)->capacity();
    for (int k : bench::sweep_or_first<int>({2, 8, 16})) {
      const auto sim_s = sim_scenario(k, 2, 42 + static_cast<std::uint64_t>(k));
      const auto run = api::Workload::run_counter_spec(spec, sim_s);
      // Every counter family must hand out a dense prefix at quiescence —
      // except escrow dispensers, whose leased batches are unique and
      // bounded but deliberately sparse. The shootout doubles as a
      // cross-family sanity check either way.
      const bool escrow = info->consistency == api::Consistency::kEscrow;
      if (escrow) {
        check_escrow(run, spec, k, "sim");
      } else {
        check_dense(run, spec, k, "sim");
      }

      // Hardware wall-clock leg: same object, real threads, enough ops for
      // the clock to resolve — capped below any saturation bound so the
      // dense-prefix validation applies here too.
      std::uint64_t hw_ops = bench::pick<std::uint64_t>(256, 8);
      if (capacity != api::ICounter::kUnbounded) {
        hw_ops = std::min(hw_ops, (capacity - 1) / static_cast<std::uint64_t>(k));
      }
      const auto hw_scenario = bench::hw_scenario(
          k, static_cast<int>(hw_ops), 91 + static_cast<std::uint64_t>(k));
      // Median-of---repeat: the reported run is the median repeat, and the
      // validation below applies to exactly that run's values.
      const auto hw = bench::run_counter_median("shootout", spec, hw_scenario);
      if (escrow) {
        check_escrow(hw, spec, k, "hw");
      } else {
        check_dense(hw, spec, k, "hw");
      }
      // Latency percentiles come from the run's log-bucketed recording
      // (Run::latency) — tail-faithful, no overflow bucket.
      const auto lat = hw.latency.to_summary();

      table.add_row({spec, api::family_name(info->family),
                     api::consistency_name(info->consistency),
                     std::to_string(k),
                     stats::Table::num(run.metrics.mean_op_steps()),
                     std::to_string(run.metrics.max_op_steps),
                     std::to_string(run.metrics.shared_steps),
                     std::to_string(run.metrics.coin_flips),
                     stats::Table::num(hw.metrics.ops_per_sec(), 0),
                     stats::Table::num(lat.p50, 0),
                     stats::Table::num(lat.p99, 0)});
      bench::report_run("shootout", spec, sim_s, run);
    }
  }
  table.print(std::cout);
  std::cout << "(Saturation semantics: a bounded object keeps returning m-1 "
               "once exhausted; both sweeps stay below capacity. Sharded "
               "specs trade paper-model steps for spread-out contention: "
               "compare their shared-step totals against bounded_fai's at "
               "the same k, and their hw ops/sec against atomic_fai's. "
               "Wall-clock columns are hardware-backend only — the "
               "simulator serializes steps, so its wall time is "
               "meaningless.)\n";
}

}  // namespace
}  // namespace renamelib

int main(int argc, char** argv) {
  renamelib::bench::parse_args(argc, argv);
  renamelib::ltas_table();
  renamelib::fai_surface();
  renamelib::counter_shootout();
  return renamelib::bench::finish();
}
