// Experiment: Sec. 8.2 (Lemma 5, Theorem 6) — l-test-and-set and the
// m-valued fetch-and-increment.
//
// Regenerates:
//   * l-TAS winner counts (exactly min(l,k)) and O(log k) expected cost,
//   * the O(log k log m) fetch-and-increment surface: per-op steps swept
//     over both m and k, with the steps/(log k * log m) ratio that should
//     stay bounded,
//   * comparison against the 1-step atomic fetch-and-add reference.
#include "bench_common.h"
#include "counting/baselines.h"
#include "counting/bounded_fai.h"
#include "counting/l_test_and_set.h"

namespace renamelib {
namespace {

void ltas_table() {
  bench::print_header(
      "Lemma 5: l-test-and-set (adversarial simulation)",
      "Exactly min(l, k) winners in every execution; expected O(log k) steps.");
  stats::Table table({"l", "k", "winners", "mean steps", "p99 steps"});
  for (int l : {1, 2, 8}) {
    for (int k : {4, 16, 48}) {
      counting::LTestAndSet ltas(static_cast<std::uint64_t>(l));
      std::vector<int> won(k, 0);
      auto steps = bench::run_simulated(
          k, static_cast<std::uint64_t>(l * 100 + k),
          [&](Ctx& ctx) { won[ctx.pid()] = ltas.test_and_set(ctx) ? 1 : 0; });
      int winners = 0;
      for (int w : won) winners += w;
      const auto s = stats::summarize(steps);
      table.add_row({std::to_string(l), std::to_string(k),
                     std::to_string(winners), stats::Table::num(s.mean),
                     stats::Table::num(s.p99)});
      if (winners != std::min(l, k)) {
        std::cerr << "VALIDATION FAILED: winners=" << winners << " l=" << l
                  << " k=" << k << "\n";
        std::exit(1);
      }
    }
  }
  table.print(std::cout);
}

void fai_surface() {
  bench::print_header(
      "Thm. 6: m-valued fetch-and-increment cost surface",
      "Per-op steps vs (m, k); claim O(log k log m) expected. The ratio "
      "steps/(log2 k * log2 m) should stay bounded across the sweep.");
  stats::Table table({"m", "k", "mean steps", "p99 steps",
                      "steps/(log k*log m)", "values 0..k-1"});
  for (std::uint64_t m : {8u, 64u, 1024u}) {
    for (int k : {2, 8, 24}) {
      counting::BoundedFetchAndIncrement fai(m);
      std::vector<std::uint64_t> values(k, 0);
      auto steps = bench::run_simulated(
          k, m * 13 + static_cast<std::uint64_t>(k),
          [&](Ctx& ctx) { values[ctx.pid()] = fai.fetch_and_increment(ctx); });
      std::vector<std::uint64_t> sorted = values;
      std::sort(sorted.begin(), sorted.end());
      // k <= m: values must be exactly {0..k-1}. k > m: the first m ops take
      // {0..m-1} and the object saturates, returning m-1 for the rest.
      bool prefix = true;
      for (int i = 0; i < k; ++i) {
        const std::uint64_t expected =
            std::min<std::uint64_t>(static_cast<std::uint64_t>(i), m - 1);
        prefix &= sorted[i] == expected;
      }
      const auto s = stats::summarize(steps);
      const double denom =
          std::log2(static_cast<double>(k) + 1) * std::log2(static_cast<double>(m));
      table.add_row({std::to_string(m), std::to_string(k),
                     stats::Table::num(s.mean), stats::Table::num(s.p99),
                     stats::Table::num(s.mean / denom, 3),
                     prefix ? "yes" : "NO"});
      if (!prefix) {
        std::cerr << "VALIDATION FAILED: non-prefix values (m=" << m
                  << " k=" << k << ")\n";
        std::exit(1);
      }
    }
  }
  table.print(std::cout);
}

void saturation_and_baseline() {
  bench::print_header(
      "Thm. 6 extras: saturation semantics + atomic reference",
      "After m operations the object pins at m-1; an atomic fetch-and-add "
      "costs exactly 1 step/op (the hardware reference point).");
  {
    counting::BoundedFetchAndIncrement fai(8);
    Ctx ctx(0, 5);
    stats::Table table({"op #", "value"});
    for (int i = 1; i <= 10; ++i) {
      table.add_row({std::to_string(i),
                     std::to_string(fai.fetch_and_increment(ctx))});
    }
    table.print(std::cout);
  }
  {
    counting::AtomicCounter atomic;
    Ctx ctx(0, 6);
    const std::uint64_t before = ctx.steps();
    for (int i = 0; i < 100; ++i) (void)atomic.fetch_and_increment(ctx);
    std::cout << "atomic f&i steps/op: "
              << (static_cast<double>(ctx.steps() - before) / 100) << "\n";
  }
}

}  // namespace
}  // namespace renamelib

int main() {
  renamelib::ltas_table();
  renamelib::fai_surface();
  renamelib::saturation_and_baseline();
  return 0;
}
