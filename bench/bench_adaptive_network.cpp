// Experiment: Fig. 2 / Sec. 6.1 (Lemma 2, Theorem 2) — the adaptive
// ("sandwich") sorting network.
//
// Regenerates:
//   * the stage geometry table (w_j, l_j, m_j — Fig. 2's A/B/C widths),
//   * zero-one verification of materialized stages (Lemma 2 / Thm. 2),
//   * traversal length vs input port: a value entering port n and exiting
//     at port m crosses O(log^c max(n,m)) comparators (c = 2 for Batcher),
//     measured via the lazy walk with first-arrival comparators.
#include <map>

#include "adaptive/adaptive_network.h"
#include "adaptive/sandwich.h"
#include "bench_common.h"
#include "sortnet/verify.h"

namespace renamelib {
namespace {

using adaptive::AdaptiveNetwork;
using adaptive::CompRef;
using adaptive::StageGeometry;

void geometry() {
  bench::print_header("Fig. 2 geometry: stages of the adaptive network",
                      "w_j = w_{j-1}^2 (width), l_j = w_{j-1}/2 (exposed B "
                      "ports), m_j = w_j - l_j (A_j/C_j width).");
  stats::Table table({"stage j", "w_j", "l_j", "m_j (A/C width)",
                      "A_j phases (Batcher)"});
  AdaptiveNetwork net;
  for (int j = 1; j <= StageGeometry::kMaxStage; ++j) {
    table.add_row({std::to_string(j), std::to_string(StageGeometry::width(j)),
                   std::to_string(StageGeometry::ell(j)),
                   std::to_string(StageGeometry::sandwich_width(j)),
                   std::to_string(net.wing(j).phase_count())});
  }
  table.print(std::cout);
}

void verification() {
  bench::print_header(
      "Lemma 2 / Thm. 2: materialized stages are sorting networks",
      "Zero-one principle: exhaustive for S_0..S_2, randomized (threshold + "
      "3000 random vectors) for S_3 (width 256).");
  stats::Table table({"stage", "width", "size", "depth", "verified"});
  for (int j = 0; j <= 3; ++j) {
    const auto net = adaptive::materialize_stage(j);
    const bool ok =
        net.width() <= 16
            ? sortnet::is_sorting_network_exhaustive(net)
            : sortnet::is_sorting_network_randomized(net, 3000, 2024);
    table.add_row({std::to_string(j), std::to_string(net.width()),
                   std::to_string(net.size()), std::to_string(net.depth()),
                   ok ? "yes" : "NO"});
    if (!ok) std::exit(1);
  }
  table.print(std::cout);
}

void traversal_cost() {
  bench::print_header(
      "Thm. 2: traversal length vs entry port (lazy walk)",
      "k sequential arrivals on ports 1..k with first-arrival comparators; "
      "the i-th arrival exits at port i. Max path length should track "
      "log^2(max port) (Batcher base: c = 2), not the network width.");
  stats::Table table(
      {"max port", "mean comps", "max comps", "max/log^2(port)"});
  for (std::uint64_t kmax : {4u, 16u, 64u, 256u, 1024u, 8192u, 65536u}) {
    AdaptiveNetwork net;
    std::map<std::uint32_t, std::map<std::uint64_t, int>> winners;
    std::vector<double> lens;
    // Arrivals on ports 1..kmax sampled geometrically (all would be O(k^2)).
    std::uint64_t expect = 0;
    for (std::uint64_t port = 1; port <= kmax; port = port < 16 ? port + 1 : port * 2) {
      ++expect;
      std::uint64_t met = 0;
      const std::uint64_t out =
          net.route(port, [&](const CompRef& c, bool) {
            ++met;
            auto& cell = winners[c.component][c.key()];
            if (cell == 0) {
              cell = 1;
              return true;
            }
            return false;
          });
      if (out != expect) {
        std::cerr << "VALIDATION FAILED: arrival " << expect << " exited at "
                  << out << "\n";
        std::exit(1);
      }
      lens.push_back(static_cast<double>(met));
    }
    const auto s = stats::summarize(lens);
    bench::report_samples("traversal/kmax=" + std::to_string(kmax), "",
                          "analytic", 1, lens, "comparators");
    const double lg = std::log2(static_cast<double>(kmax));
    table.add_row({std::to_string(kmax), stats::Table::num(s.mean),
                   stats::Table::num(s.max, 0),
                   stats::Table::num(s.max / (lg * lg), 3)});
  }
  table.print(std::cout);
  std::cout << "(The last column staying bounded is Theorem 2's "
               "O(log^2 max(n,m)) with the Batcher base; an AKS base would "
               "remove one log factor.)\n";
}

void memory_footprint() {
  bench::print_header(
      "Adaptivity of space: comparators materialized on demand",
      "The lazy network materializes arbitration state only on touched "
      "comparators; entering port 2^20 costs polylog comparators although "
      "the enclosing stage has ~2^32 wires.");
  stats::Table table({"entry port", "comparators touched", "exit port"});
  for (std::uint64_t port : {1ull << 4, 1ull << 10, 1ull << 16, 1ull << 20,
                             1ull << 28}) {
    AdaptiveNetwork net;
    std::uint64_t met = 0;
    const std::uint64_t out = net.route(
        port, [&](const CompRef&, bool) { ++met; return true; });
    table.add_row({std::to_string(port), std::to_string(met),
                   std::to_string(out)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace renamelib

int main(int argc, char** argv) {
  renamelib::bench::parse_args(argc, argv);
  renamelib::geometry();
  renamelib::verification();
  renamelib::traversal_cost();
  renamelib::memory_footprint();
  return renamelib::bench::finish();
}
