// Experiment: hardware-mode throughput (google-benchmark, real threads).
//
// The paper's Discussion notes the constructions become deterministic and
// practical with hardware TAS; this bench measures wall-clock throughput of
// the counting objects and their baselines on real std::atomic hardware.
// (On a single-core host the thread sweep mostly measures the sequential
// fast path plus scheduler effects; the step-complexity benches are the
// primary evidence for the paper's claims.)
#include <benchmark/benchmark.h>

#include <atomic>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/report.h"
#include "counting/baselines.h"
#include "counting/bounded_fai.h"
#include "counting/max_register.h"
#include "counting/monotone_counter.h"
#include "tas/hardware_tas.h"

namespace renamelib {
namespace {

thread_local std::unique_ptr<Ctx> tls_ctx;

Ctx& ctx_for_thread(int thread_index) {
  if (!tls_ctx) {
    tls_ctx = std::make_unique<Ctx>(thread_index,
                                    0x1234 + static_cast<std::uint64_t>(thread_index));
  }
  return *tls_ctx;
}

void BM_AtomicCounterIncrement(benchmark::State& state) {
  static counting::AtomicCounter counter;
  Ctx& ctx = ctx_for_thread(state.thread_index());
  for (auto _ : state) {
    counter.increment(ctx);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtomicCounterIncrement)->Threads(1)->Threads(2)->Threads(4);

void BM_MonotoneCounterIncrement(benchmark::State& state) {
  static counting::MonotoneCounter counter;
  Ctx& ctx = ctx_for_thread(state.thread_index());
  for (auto _ : state) {
    counter.increment(ctx);
  }
  state.SetItemsProcessed(state.iterations());
}
// Fixed iteration budget: every increment consumes fresh splitter-tree nodes
// (one-shot renaming requests), so unbounded auto-iteration would grow the
// tree without bound.
BENCHMARK(BM_MonotoneCounterIncrement)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Iterations(3000);

void BM_MonotoneCounterRead(benchmark::State& state) {
  static counting::MonotoneCounter counter;
  Ctx& ctx = ctx_for_thread(state.thread_index());
  counter.increment(ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.read(ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonotoneCounterRead)->Threads(1)->Threads(2);

void BM_MaxRegisterWrite(benchmark::State& state) {
  static counting::MaxRegister reg(1 << 20);
  Ctx& ctx = ctx_for_thread(state.thread_index());
  std::uint64_t v = 0;
  for (auto _ : state) {
    reg.write_max(ctx, (v++) % ((1 << 20) - 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaxRegisterWrite)->Threads(1)->Threads(2);

void BM_MaxRegisterRead(benchmark::State& state) {
  static counting::MaxRegister reg(1 << 20);
  Ctx& ctx = ctx_for_thread(state.thread_index());
  reg.write_max(ctx, 999);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.read(ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaxRegisterRead)->Threads(1)->Threads(2);

void BM_BoundedFaiSaturated(benchmark::State& state) {
  // Past saturation the object is a fixed tree walk: steady-state cost.
  static counting::BoundedFetchAndIncrement fai(64);
  Ctx& ctx = ctx_for_thread(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fai.fetch_and_increment(ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundedFaiSaturated)->Threads(1)->Threads(2);

void BM_HardwareTas(benchmark::State& state) {
  Ctx& ctx = ctx_for_thread(state.thread_index());
  for (auto _ : state) {
    tas::HardwareTas t;
    benchmark::DoNotOptimize(t.test_and_set(ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HardwareTas)->Threads(1);

/// Console reporter that additionally collects every iteration run into an
/// api::BenchReport, mapping this binary onto the repo-wide --json contract.
/// google-benchmark only reports aggregate times, so the runs carry
/// throughput with an empty latency recording.
class ReportingConsoleReporter : public benchmark::ConsoleReporter {
 public:
  explicit ReportingConsoleReporter(api::BenchReport* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    // Only plain iteration runs are collected (no aggregates). Error/skip
    // state is deliberately not inspected: its field names changed across
    // google-benchmark releases, and none of these benchmarks use
    // SkipWithError.
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      api::ReportRun r;
      r.name = run.benchmark_name();
      r.backend = "hardware";
      r.threads = static_cast<int>(run.threads);
      r.ops = static_cast<std::uint64_t>(run.iterations);
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        r.ops_per_sec = it->second.value;
      } else if (run.real_accumulated_time > 0) {
        r.ops_per_sec =
            static_cast<double>(run.iterations) / run.real_accumulated_time;
      }
      out_->runs.push_back(std::move(r));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

 private:
  api::BenchReport* out_;
};

}  // namespace
}  // namespace renamelib

// Custom main instead of BENCHMARK_MAIN(): the repo-wide --smoke contract
// maps onto google-benchmark's own flags (one tiny repetition per benchmark)
// and --json=FILE onto a collecting reporter, so the CI smoke job can run
// every bench binary the same way.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  std::string json_path;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (i > 0 && arg == "--smoke") {
      smoke = true;
    } else if (i > 0 && arg.rfind("--json=", 0) == 0) {
      json_path = std::string(arg.substr(7));
      if (json_path.empty()) {
        std::cerr << "--json needs a file path\n";
        return 2;
      }
    } else {
      args.push_back(argv[i]);
    }
  }
  static char min_time[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time);
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  renamelib::api::BenchReport report;
  report.bench = "bench_throughput";
  renamelib::ReportingConsoleReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    report.write_file(json_path);
    std::cout << "wrote bench report: " << json_path << " ("
              << report.runs.size() << " runs)\n";
  }
  return 0;
}
