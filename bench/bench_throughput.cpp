// Experiment: hardware-mode throughput (google-benchmark, real threads).
//
// The paper's Discussion notes the constructions become deterministic and
// practical with hardware TAS; this bench measures wall-clock throughput of
// the counting objects and their baselines on real std::atomic hardware.
// (On a single-core host the thread sweep mostly measures the sequential
// fast path plus scheduler effects; the step-complexity benches are the
// primary evidence for the paper's claims.)
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string_view>
#include <vector>

#include "counting/baselines.h"
#include "counting/bounded_fai.h"
#include "counting/max_register.h"
#include "counting/monotone_counter.h"
#include "tas/hardware_tas.h"

namespace renamelib {
namespace {

thread_local std::unique_ptr<Ctx> tls_ctx;

Ctx& ctx_for_thread(int thread_index) {
  if (!tls_ctx) {
    tls_ctx = std::make_unique<Ctx>(thread_index,
                                    0x1234 + static_cast<std::uint64_t>(thread_index));
  }
  return *tls_ctx;
}

void BM_AtomicCounterIncrement(benchmark::State& state) {
  static counting::AtomicCounter counter;
  Ctx& ctx = ctx_for_thread(state.thread_index());
  for (auto _ : state) {
    counter.increment(ctx);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtomicCounterIncrement)->Threads(1)->Threads(2)->Threads(4);

void BM_MonotoneCounterIncrement(benchmark::State& state) {
  static counting::MonotoneCounter counter;
  Ctx& ctx = ctx_for_thread(state.thread_index());
  for (auto _ : state) {
    counter.increment(ctx);
  }
  state.SetItemsProcessed(state.iterations());
}
// Fixed iteration budget: every increment consumes fresh splitter-tree nodes
// (one-shot renaming requests), so unbounded auto-iteration would grow the
// tree without bound.
BENCHMARK(BM_MonotoneCounterIncrement)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Iterations(3000);

void BM_MonotoneCounterRead(benchmark::State& state) {
  static counting::MonotoneCounter counter;
  Ctx& ctx = ctx_for_thread(state.thread_index());
  counter.increment(ctx);
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.read(ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonotoneCounterRead)->Threads(1)->Threads(2);

void BM_MaxRegisterWrite(benchmark::State& state) {
  static counting::MaxRegister reg(1 << 20);
  Ctx& ctx = ctx_for_thread(state.thread_index());
  std::uint64_t v = 0;
  for (auto _ : state) {
    reg.write_max(ctx, (v++) % ((1 << 20) - 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaxRegisterWrite)->Threads(1)->Threads(2);

void BM_MaxRegisterRead(benchmark::State& state) {
  static counting::MaxRegister reg(1 << 20);
  Ctx& ctx = ctx_for_thread(state.thread_index());
  reg.write_max(ctx, 999);
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.read(ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MaxRegisterRead)->Threads(1)->Threads(2);

void BM_BoundedFaiSaturated(benchmark::State& state) {
  // Past saturation the object is a fixed tree walk: steady-state cost.
  static counting::BoundedFetchAndIncrement fai(64);
  Ctx& ctx = ctx_for_thread(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(fai.fetch_and_increment(ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundedFaiSaturated)->Threads(1)->Threads(2);

void BM_HardwareTas(benchmark::State& state) {
  Ctx& ctx = ctx_for_thread(state.thread_index());
  for (auto _ : state) {
    tas::HardwareTas t;
    benchmark::DoNotOptimize(t.test_and_set(ctx));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HardwareTas)->Threads(1);

}  // namespace
}  // namespace renamelib

// Custom main instead of BENCHMARK_MAIN(): the repo-wide --smoke contract
// maps onto google-benchmark's own flags (one tiny repetition per benchmark)
// so the CI smoke job can run every bench binary the same way.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::string_view(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  static char min_time[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time);
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
