// Experiment: Sec. 2 substrate claims — the test-and-set implementations the
// paper builds on.
//
// Regenerates:
//   * Tromp-Vitanyi-style 2-process TAS: expected O(1) steps, geometric tail
//     (distribution table),
//   * RatRace adaptive TAS: steps vs k with the O(log^2 k) w.h.p. claim,
//   * hardware TAS: unit cost.
#include "bench_common.h"
#include "tas/hardware_tas.h"
#include "tas/rat_race_tas.h"
#include "tas/two_process_tas.h"

namespace renamelib {
namespace {

void two_process_distribution() {
  bench::print_header(
      "Sec. 2: two-process TAS step distribution",
      "Contended pairs under adversarial simulation; expected O(1), w.h.p. "
      "O(log n) (geometric tail).");
  std::vector<double> winner_steps, loser_steps, all;
  const int kRuns = 400;
  for (int run = 0; run < kRuns; ++run) {
    tas::TwoProcessTas t;
    std::vector<std::uint64_t> steps(2, 0);
    std::vector<int> won(2, 0);
    sim::RandomAdversary adversary(static_cast<std::uint64_t>(run) * 3 + 1);
    sim::RunOptions options;
    options.seed = static_cast<std::uint64_t>(run) + 1;
    auto result = sim::run_simulation(
        2,
        [&](Ctx& ctx) {
          won[ctx.pid()] = t.compete(ctx, ctx.pid()) ? 1 : 0;
        },
        adversary, options);
    for (int p = 0; p < 2; ++p) {
      const double s = static_cast<double>(result.procs[p].steps);
      (won[p] ? winner_steps : loser_steps).push_back(s);
      all.push_back(s);
    }
  }
  const auto w = stats::summarize(winner_steps);
  const auto l = stats::summarize(loser_steps);
  const auto a = stats::summarize(all);
  bench::report_samples("two_process_tas", "", "simulated", 2, all);
  stats::Table table({"role", "mean", "p50", "p90", "p99", "max"});
  auto row = [&](const char* name, const stats::Summary& s) {
    table.add_row({name, stats::Table::num(s.mean), stats::Table::num(s.p50),
                   stats::Table::num(s.p90), stats::Table::num(s.p99),
                   stats::Table::num(s.max, 0)});
  };
  row("winner", w);
  row("loser", l);
  row("all", a);
  table.print(std::cout);
}

void ratrace_scaling() {
  bench::print_header(
      "Sec. 2: RatRace adaptive TAS scaling",
      "Steps per process vs k under adversarial simulation; claim O(log^2 k) "
      "w.h.p. — the ratio column should stay bounded.");
  stats::Table table({"k", "mean steps", "p99 steps", "max steps",
                      "mean/log^2 k"});
  std::vector<double> xs, ys;
  for (int k : {2, 4, 8, 16, 32, 64, 128}) {
    std::vector<double> all;
    const int kRuns = 5;
    for (int run = 0; run < kRuns; ++run) {
      tas::RatRaceTas t;
      auto steps = bench::run_simulated(
          k, static_cast<std::uint64_t>(run) * 1000 + k,
          [&](Ctx& ctx) { (void)t.test_and_set(ctx); });
      all.insert(all.end(), steps.begin(), steps.end());
    }
    const auto s = stats::summarize(all);
    bench::report_samples("ratrace", "", "simulated", k, all);
    const double lg = std::log2(static_cast<double>(k) + 1);
    table.add_row({std::to_string(k), stats::Table::num(s.mean),
                   stats::Table::num(s.p99), stats::Table::num(s.max, 0),
                   stats::Table::num(s.mean / (lg * lg), 3)});
    xs.push_back(static_cast<double>(k));
    ys.push_back(s.mean);
  }
  table.print(std::cout);
  const auto fit = stats::fit_growth(xs, ys);
  std::cout << "growth fit: " << fit.model << " (R^2 "
            << stats::Table::num(fit.r2, 3) << ")\n";
}

void hardware_unit_cost() {
  bench::print_header("Sec. 2: hardware TAS", "Unit cost per operation.");
  tas::HardwareTas t;
  Ctx ctx(0, 1);
  (void)t.test_and_set(ctx);
  std::cout << "steps for one test_and_set: " << ctx.steps() << "\n";
}

}  // namespace
}  // namespace renamelib

int main(int argc, char** argv) {
  renamelib::bench::parse_args(argc, argv);
  renamelib::two_process_distribution();
  renamelib::ratrace_scaling();
  renamelib::hardware_unit_cost();
  return renamelib::bench::finish();
}
