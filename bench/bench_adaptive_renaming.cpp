// Experiment: Sec. 6.2 (Theorem 3) — adaptive strong renaming.
//
// Regenerates, per contention k (with an unbounded 64-bit initial
// namespace):
//   * tightness validation (names exactly 1..k),
//   * temporary-name magnitude (stage 1: poly(k) w.h.p.),
//   * comparators traversed (stage 2: O(log^2 k) with the Batcher base;
//     an AKS base would give O(log k)),
//   * per-process steps, with growth fit and the steps/log^2(k) ratio that
//     should stay bounded.
#include <cstring>

#include "bench_common.h"
#include "renaming/adaptive_strong.h"
#include "renaming/validate.h"

namespace renamelib {
namespace {

void adaptive_costs(bool simulated) {
  bench::print_header(
      simulated ? "Thm. 3 (adversarial simulation)" : "Thm. 3 (hardware threads)",
      "Adaptive strong renaming: names 1..k from unbounded initial ids; "
      "steps should grow polylogarithmically in k.");
  stats::Table table({"k", "mean steps", "p99 steps", "max steps",
                      "mean comps", "max temp name", "steps/log^2 k", "tight"});
  std::vector<double> xs, ys;
  const auto ks = simulated ? std::vector<int>{2, 4, 8, 16, 32, 64, 128}
                            : std::vector<int>{2, 8, 32, 128, 512};
  for (int k : ks) {
    renaming::AdaptiveStrongRenaming renaming;
    std::vector<renaming::AdaptiveStrongRenaming::Outcome> outs(k);
    auto body = [&](Ctx& ctx) {
      const std::uint64_t id =
          0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(ctx.pid()) + 1);
      outs[ctx.pid()] = renaming.rename_instrumented(ctx, id);
    };
    const auto steps = simulated
                           ? bench::run_simulated(k, static_cast<std::uint64_t>(k), body)
                           : bench::run_hardware(k, static_cast<std::uint64_t>(k), body);
    std::vector<std::uint64_t> names;
    std::vector<double> comps;
    std::uint64_t max_temp = 0;
    for (const auto& o : outs) {
      names.push_back(o.name);
      comps.push_back(static_cast<double>(o.comparators));
      max_temp = std::max(max_temp, o.temp_name);
    }
    const auto check = renaming::check_tight(names, static_cast<std::uint64_t>(k));
    if (!check.ok) {
      std::cerr << "VALIDATION FAILED: " << check.error << " (k=" << k << ")\n";
      std::exit(1);
    }
    const auto ss = stats::summarize(steps);
    bench::report_samples(simulated ? "thm3/simulated" : "thm3/hardware",
                          "adaptive_strong",
                          simulated ? "simulated" : "hardware", k, steps);
    const auto cs = stats::summarize(comps);
    const double lg = std::log2(static_cast<double>(k) + 1);
    table.add_row({std::to_string(k), stats::Table::num(ss.mean),
                   stats::Table::num(ss.p99), stats::Table::num(ss.max, 0),
                   stats::Table::num(cs.mean), std::to_string(max_temp),
                   stats::Table::num(ss.mean / (lg * lg), 3), "yes"});
    xs.push_back(static_cast<double>(k));
    ys.push_back(ss.mean);
  }
  table.print(std::cout);
  const auto fit = stats::fit_growth(xs, ys);
  std::cout << "growth fit for mean steps: " << fit.model << " (constant "
            << stats::Table::num(fit.constant, 2) << ", R^2 "
            << stats::Table::num(fit.r2, 3) << ")\n"
            << "(Theorem 3 claims O(log k) expected with AKS; with the "
               "constructible Batcher base expect ~log^2.)\n";
}

void deterministic_mode() {
  bench::print_header(
      "Sec. 1 Discussion: deterministic adaptive renaming (hardware TAS)",
      "Same algorithm with unit-cost hardware comparators.");
  stats::Table table({"k", "mean steps", "max steps", "tight"});
  for (int k : {8, 64, 256}) {
    renaming::AdaptiveStrongRenaming::Options options;
    options.comparators = renaming::AdaptiveComparatorKind::kHardware;
    renaming::AdaptiveStrongRenaming renaming(options);
    std::vector<std::uint64_t> names(k, 0);
    auto steps = bench::run_hardware(k, k * 3 + 1, [&](Ctx& ctx) {
      names[ctx.pid()] = renaming.rename(ctx, ctx.pid() + 1);
    });
    const auto s = stats::summarize(steps);
    const auto check = renaming::check_tight(names, static_cast<std::uint64_t>(k));
    table.add_row({std::to_string(k), stats::Table::num(s.mean),
                   stats::Table::num(s.max, 0), check.ok ? "yes" : "NO"});
    if (!check.ok) std::exit(1);
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace renamelib

int main(int argc, char** argv) {
  renamelib::bench::parse_args(argc, argv);
  renamelib::adaptive_costs(/*simulated=*/true);
  if (!renamelib::bench::g_smoke) renamelib::adaptive_costs(/*simulated=*/false);
  renamelib::deterministic_mode();
  return renamelib::bench::finish();
}
