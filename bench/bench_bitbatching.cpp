// Experiment: Fig. 1 / Sec. 4 (Lemma 1, Corollaries 1-2) — BitBatching.
//
// Regenerates, per n:
//   * the batch layout of Fig. 1 (sizes halving down to ~log n),
//   * per-process TAS probes (claim: O(log^2 n) w.h.p., Lemma 1),
//   * stage-2 entries (claim: none, w.h.p.),
//   * total TAS operations (claim: O(n log n), Cor. 2),
//   * per-process steps with unit-cost TAS slots and growth-shape fit.
#include <cstring>

#include "bench_common.h"
#include "renaming/bit_batching.h"
#include "renaming/validate.h"

namespace renamelib {
namespace {

void batch_layout() {
  bench::print_header("Fig. 1: batch layout",
                      "Batch B_i sizes: n/2, n/4, ..., with the tail batch of "
                      "size ~log n (paper Sec. 4).");
  stats::Table table({"n", "batches", "sizes (first..last)"});
  for (std::uint64_t n : {64u, 256u, 1024u, 4096u}) {
    renaming::BitBatching bb(n, renaming::SlotTasKind::kHardware);
    std::string sizes;
    for (std::size_t i = 1; i <= bb.batch_count(); ++i) {
      if (!sizes.empty()) sizes += ", ";
      sizes += std::to_string(bb.batch_end(i) - bb.batch_begin(i));
    }
    table.add_row({std::to_string(n), std::to_string(bb.batch_count()), sizes});
  }
  table.print(std::cout);
}

void probe_complexity(bool simulated) {
  bench::print_header(
      simulated ? "Lemma 1 / Cor. 1 (adversarial simulation)"
                : "Lemma 1 / Cor. 1 (hardware threads)",
      "Per-process TAS probes vs n; claim O(log^2 n) w.h.p., stage 2 never "
      "entered. probes/log^2(n) should stay bounded.");
  stats::Table table({"n", "k", "mean probes", "p99 probes", "max", "stage2",
                      "probes/log^2 n", "total TAS ops", "total/(n log n)"});
  std::vector<double> xs, ys;
  const std::vector<std::uint64_t> ns =
      simulated ? std::vector<std::uint64_t>{16, 32, 64, 128}
                : std::vector<std::uint64_t>{16, 64, 256, 1024, 4096};
  for (std::uint64_t n : ns) {
    const int k = static_cast<int>(n);  // full participation
    renaming::BitBatching bb(n, renaming::SlotTasKind::kHardware);
    std::vector<renaming::BitBatching::Outcome> outs(k);
    auto body = [&](Ctx& ctx) { outs[ctx.pid()] = bb.rename_instrumented(ctx); };
    if (simulated) {
      (void)bench::run_simulated(k, n, body);
    } else {
      (void)bench::run_hardware(k, n, body);
    }
    std::vector<double> probes;
    double total = 0;
    int stage2 = 0;
    std::vector<std::uint64_t> names;
    for (const auto& o : outs) {
      probes.push_back(static_cast<double>(o.probes));
      total += static_cast<double>(o.probes);
      stage2 += o.entered_stage2 ? 1 : 0;
      names.push_back(o.name);
    }
    const auto check = renaming::check_tight(names, n);
    if (!check.ok) {
      std::cerr << "VALIDATION FAILED: " << check.error << "\n";
      std::exit(1);
    }
    const auto s = stats::summarize(probes);
    bench::report_samples(simulated ? "probes/simulated" : "probes/hardware",
                          "bit_batching:n=" + std::to_string(n),
                          simulated ? "simulated" : "hardware", k, probes,
                          "probes");
    const double log2n = std::log2(static_cast<double>(n));
    table.add_row({std::to_string(n), std::to_string(k),
                   stats::Table::num(s.mean), stats::Table::num(s.p99),
                   stats::Table::num(s.max), std::to_string(stage2),
                   stats::Table::num(s.mean / (log2n * log2n), 3),
                   stats::Table::num(total, 0),
                   stats::Table::num(total / (n * log2n), 3)});
    xs.push_back(static_cast<double>(n));
    ys.push_back(s.mean);
  }
  table.print(std::cout);
  const auto fit = stats::fit_growth(xs, ys);
  std::cout << "growth fit for mean probes: " << fit.model
            << " (constant " << stats::Table::num(fit.constant, 2)
            << ", R^2 " << stats::Table::num(fit.r2, 3) << ")\n";
}

void ratrace_slots() {
  bench::print_header(
      "Cor. 1 full stack (RatRace slots, adversarial simulation)",
      "Per-process *steps* (register ops + coin batches) with randomized "
      "RatRace TAS slots as in the paper; claim O(log^3 n loglog n) w.h.p.");
  stats::Table table({"n=k", "mean steps", "p99 steps", "max steps",
                      "steps/log^3 n"});
  for (std::uint64_t n : {16u, 32u, 64u}) {
    const int k = static_cast<int>(n);
    renaming::BitBatching bb(n, renaming::SlotTasKind::kRatRace);
    auto steps = bench::run_simulated(
        k, n + 1, [&](Ctx& ctx) { (void)bb.rename(ctx, 0); });
    const auto s = stats::summarize(steps);
    const double lg = std::log2(static_cast<double>(n));
    table.add_row({std::to_string(n), stats::Table::num(s.mean),
                   stats::Table::num(s.p99), stats::Table::num(s.max),
                   stats::Table::num(s.mean / (lg * lg * lg), 3)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace renamelib

int main(int argc, char** argv) {
  renamelib::bench::parse_args(argc, argv);
  renamelib::batch_layout();
  renamelib::probe_complexity(/*simulated=*/true);
  if (!renamelib::bench::g_smoke) renamelib::probe_complexity(/*simulated=*/false);
  renamelib::ratrace_slots();
  return renamelib::bench::finish();
}
