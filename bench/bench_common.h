// Shared helpers for the experiment benches.
//
// Each bench binary regenerates one of the paper's figures / complexity
// claims as a table (see DESIGN.md's per-experiment index). Step counts come
// from two sources:
//   * simulated mode (adversarial scheduler, exact counts) for k <= ~128,
//   * hardware mode (real threads) for larger sweeps and throughput.
//
// Every bench binary accepts --smoke: a tiny preset (shrunk sweeps and
// iteration counts) that still runs every table and every validation check,
// exiting non-zero on failure. CI and ctest run the smoke preset so a bench
// that stops building — or starts producing invalid values — fails loudly
// instead of silently rotting.
//
// Every bench binary also accepts --json=FILE: alongside the human-readable
// tables, the bench collects api::BenchReport runs (report_run /
// report_samples below) and writes the machine-readable report on exit
// (finish, the last statement of every main). tools/bench_compare.py diffs
// two such files; the CI bench-smoke job uploads them as artifacts, turning
// every PR's perf claim into a recorded trajectory.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/report.h"
#include "api/workload.h"
#include "core/ctx.h"
#include "obs/event_bus.h"
#include "sim/executor.h"
#include "stats/fit.h"
#include "stats/latency_recorder.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace renamelib::bench {

/// True after parse_args saw --smoke: benches shrink their presets.
inline bool g_smoke = false;

/// Repeat count from --repeat=N (default 1). Benches that measure through
/// run_counter_median run each configuration N times and report the repeat
/// with the median throughput, plus the across-repeat coefficient of
/// variation — one real measurement with an honest noise estimate, instead
/// of a synthetic average.
inline int g_repeat = 1;

/// Output path of --json=FILE ("" when not given).
inline std::string g_json_path;

/// The report this binary accumulates; finish() writes it when --json was
/// given. parse_args sets the bench name from argv[0].
inline api::BenchReport g_report;

/// Parses the common bench flags (--smoke and --json=FILE); call first
/// thing in main(). Unknown flags abort with a usage message so typos do
/// not silently run the full preset.
inline void parse_args(int argc, char** argv) {
  const std::string argv0 = argv[0];
  const auto slash = argv0.find_last_of('/');
  g_report.bench = slash == std::string::npos ? argv0 : argv0.substr(slash + 1);
  for (int i = 1; i < argc; ++i) {
    // --quick predates --smoke; both select the shrunk preset.
    if (std::strcmp(argv[i], "--smoke") == 0 ||
        std::strcmp(argv[i], "--quick") == 0) {
      g_smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      g_json_path = argv[i] + 7;
      if (g_json_path.empty()) {
        std::cerr << "--json needs a file path\n";
        std::exit(2);
      }
    } else if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      char* end = nullptr;
      const long n = std::strtol(argv[i] + 9, &end, 10);
      if (end == argv[i] + 9 || *end != '\0' || n < 1 || n > 1000) {
        std::cerr << "--repeat needs an integer in [1, 1000]\n";
        std::exit(2);
      }
      g_repeat = static_cast<int>(n);
    } else if (std::strcmp(argv[i], "--events") == 0) {
      // Opt-in per-run event recording (obs::EventBus): report runs gain an
      // "events" section. Off by default so the tracked perf gates measure
      // the disabled-hook configuration.
      obs::EventBus::set_enabled(true);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--smoke] [--json=FILE] [--repeat=N] [--events]\n"
                << "unknown flag '" << argv[i] << "'\n";
      std::exit(2);
    }
  }
  if (g_smoke) std::cout << "[smoke preset]\n";
}

/// Appends one report run from a Workload result. Hardware runs report
/// wall-clock latency ("ns", Run::latency); simulated runs report the
/// paper-model per-op step distribution ("steps").
inline void report_run(std::string name, std::string spec,
                       const api::Scenario& s, const api::Run& run,
                       int repeats = 1, double cv = 0) {
  api::ReportRun r;
  r.name = std::move(name);
  r.spec = std::move(spec);
  r.backend = s.backend == api::Backend::kHardware ? "hardware" : "simulated";
  r.threads = s.nproc;
  r.ops = run.metrics.ops;
  r.ops_per_sec = run.metrics.ops_per_sec();
  r.repeats = repeats;
  r.cv = cv;
  if (s.backend == api::Backend::kHardware) {
    r.unit = "ns";
    r.latency = run.latency;
  } else {
    r.unit = "steps";
    r.latency = stats::LatencySnapshot::of(run.op_steps());
  }
  r.events = api::report_events(run.events);
  g_report.runs.push_back(std::move(r));
}

/// Runs `spec` under `s` --repeat times (per-repeat derived seeds, a fresh
/// object each time) and reports the repeat whose throughput is the median
/// of the N, with the across-repeat ops/sec coefficient of variation. The
/// returned run is the reported (median) one — validations a bench performs
/// on it apply to exactly the numbers that land in the report.
inline api::Run run_counter_median(const std::string& name,
                                   const std::string& spec, api::Scenario s) {
  std::vector<api::Run> runs;
  std::vector<double> tps;
  runs.reserve(static_cast<std::size_t>(g_repeat));
  for (int rep = 0; rep < g_repeat; ++rep) {
    api::Scenario rs = s;
    rs.seed = s.seed + static_cast<std::uint64_t>(rep) * 7919;
    runs.push_back(api::Workload::run_counter_spec(spec, rs));
    tps.push_back(runs.back().metrics.ops_per_sec());
  }
  std::vector<std::size_t> order(runs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return tps[a] < tps[b]; });
  // Even N: the lower-middle repeat, so the report always carries a real
  // measurement.
  const std::size_t mid = order[(order.size() - 1) / 2];
  double cv = 0;
  if (runs.size() > 1) {
    double mean = 0;
    for (const double t : tps) mean += t;
    mean /= static_cast<double>(tps.size());
    if (mean > 0) {
      double var = 0;
      for (const double t : tps) var += (t - mean) * (t - mean);
      var /= static_cast<double>(tps.size());
      cv = std::sqrt(var) / mean;
    }
  }
  report_run(name, spec, s, runs[mid], static_cast<int>(runs.size()), cv);
  return std::move(runs[mid]);
}

/// Appends one report run from a raw sample vector (per-process step counts
/// from run_hardware/run_simulated, analytic bound values, ...).
inline void report_samples(std::string name, std::string spec,
                           std::string backend, int threads,
                           const std::vector<double>& samples,
                           std::string unit = "steps") {
  api::ReportRun r;
  r.name = std::move(name);
  r.spec = std::move(spec);
  r.backend = std::move(backend);
  r.threads = threads;
  r.latency = stats::LatencySnapshot::of(samples);
  r.ops = r.latency.count();
  r.unit = std::move(unit);
  g_report.runs.push_back(std::move(r));
}

/// Writes the accumulated report when --json was given. Call as the last
/// statement of main: `return bench::finish();`.
inline int finish() {
  if (g_json_path.empty()) return 0;
  g_report.write_file(g_json_path);
  std::cout << "wrote bench report: " << g_json_path << " ("
            << g_report.runs.size() << " runs)\n";
  return 0;
}

/// `full` normally, `smoke` under --smoke.
template <typename T>
T pick(T full, T smoke) {
  return g_smoke ? smoke : full;
}

/// The sweep values for one axis: the full list, or just its first element
/// under --smoke (the smallest config still exercises the code path).
template <typename T>
std::vector<T> sweep_or_first(std::vector<T> full) {
  if (g_smoke && full.size() > 1) full.resize(1);
  return full;
}

/// Runs `body` on `nproc` real threads (hardware mode) and returns the
/// per-process paper-model step counts.
inline std::vector<double> run_hardware(int nproc, std::uint64_t seed,
                                        const std::function<void(Ctx&)>& body) {
  std::vector<double> steps(nproc, 0);
  std::vector<std::thread> threads;
  threads.reserve(nproc);
  for (int p = 0; p < nproc; ++p) {
    threads.emplace_back([&, p] {
      Ctx ctx(p, Rng::derive(seed, static_cast<std::uint64_t>(p)));
      body(ctx);
      steps[p] = static_cast<double>(ctx.steps());
    });
  }
  for (auto& t : threads) t.join();
  return steps;
}

/// Runs `body` under the adversarial simulator and returns per-process
/// paper-model step counts (finished processes only).
inline std::vector<double> run_simulated(int nproc, std::uint64_t seed,
                                         const std::function<void(Ctx&)>& body) {
  sim::RandomAdversary adversary(seed * 7919 + 13);
  sim::RunOptions options;
  options.seed = seed;
  const auto result = sim::run_simulation(nproc, body, adversary, options);
  std::vector<double> steps;
  steps.reserve(nproc);
  for (const auto& p : result.procs) {
    if (p.finished) steps.push_back(static_cast<double>(p.steps));
  }
  return steps;
}

inline void print_header(const char* experiment, const char* claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

/// A simulated-backend api::Scenario: k processes, `ops` operations each.
inline api::Scenario sim_scenario(int k, int ops, std::uint64_t seed) {
  api::Scenario s;
  s.nproc = k;
  s.ops_per_proc = ops;
  s.backend = api::Backend::kSimulated;
  s.seed = seed;
  return s;
}

/// A hardware-backend api::Scenario: k real threads, `ops` operations each.
/// The resulting Run carries wall-clock throughput (Metrics::ops_per_sec)
/// and the tail-faithful per-op latency recording (Run::latency).
/// The latency sample period scales with the op count (~256 samples per
/// process, every op below that), so long throughput runs are not dominated
/// by the two clock reads per sampled op while short runs keep exact
/// recordings. Scenario::latency_sample_period applies uniformly in the
/// hardware loop; benches needing every-op sampling on long runs can
/// override the field after calling this.
inline api::Scenario hw_scenario(int k, int ops, std::uint64_t seed) {
  api::Scenario s;
  s.nproc = k;
  s.ops_per_proc = ops;
  s.backend = api::Backend::kHardware;
  s.seed = seed;
  s.latency_sample_period = std::max(1, ops / 256);
  return s;
}

}  // namespace renamelib::bench
