// Shared helpers for the experiment benches.
//
// Each bench binary regenerates one of the paper's figures / complexity
// claims as a table (see DESIGN.md's per-experiment index). Step counts come
// from two sources:
//   * simulated mode (adversarial scheduler, exact counts) for k <= ~128,
//   * hardware mode (real threads) for larger sweeps and throughput.
//
// Every bench binary accepts --smoke: a tiny preset (shrunk sweeps and
// iteration counts) that still runs every table and every validation check,
// exiting non-zero on failure. CI and ctest run the smoke preset so a bench
// that stops building — or starts producing invalid values — fails loudly
// instead of silently rotting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <iostream>
#include <thread>
#include <vector>

#include "api/workload.h"
#include "core/ctx.h"
#include "sim/executor.h"
#include "stats/fit.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace renamelib::bench {

/// True after parse_args saw --smoke: benches shrink their presets.
inline bool g_smoke = false;

/// Parses the common bench flags (currently just --smoke); call first thing
/// in main(). Unknown flags abort with a usage message so typos do not
/// silently run the full preset.
inline void parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    // --quick predates --smoke; both select the shrunk preset.
    if (std::strcmp(argv[i], "--smoke") == 0 ||
        std::strcmp(argv[i], "--quick") == 0) {
      g_smoke = true;
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke]\n"
                << "unknown flag '" << argv[i] << "'\n";
      std::exit(2);
    }
  }
  if (g_smoke) std::cout << "[smoke preset]\n";
}

/// `full` normally, `smoke` under --smoke.
template <typename T>
T pick(T full, T smoke) {
  return g_smoke ? smoke : full;
}

/// The sweep values for one axis: the full list, or just its first element
/// under --smoke (the smallest config still exercises the code path).
template <typename T>
std::vector<T> sweep_or_first(std::vector<T> full) {
  if (g_smoke && full.size() > 1) full.resize(1);
  return full;
}

/// Runs `body` on `nproc` real threads (hardware mode) and returns the
/// per-process paper-model step counts.
inline std::vector<double> run_hardware(int nproc, std::uint64_t seed,
                                        const std::function<void(Ctx&)>& body) {
  std::vector<double> steps(nproc, 0);
  std::vector<std::thread> threads;
  threads.reserve(nproc);
  for (int p = 0; p < nproc; ++p) {
    threads.emplace_back([&, p] {
      Ctx ctx(p, Rng::derive(seed, static_cast<std::uint64_t>(p)));
      body(ctx);
      steps[p] = static_cast<double>(ctx.steps());
    });
  }
  for (auto& t : threads) t.join();
  return steps;
}

/// Runs `body` under the adversarial simulator and returns per-process
/// paper-model step counts (finished processes only).
inline std::vector<double> run_simulated(int nproc, std::uint64_t seed,
                                         const std::function<void(Ctx&)>& body) {
  sim::RandomAdversary adversary(seed * 7919 + 13);
  sim::RunOptions options;
  options.seed = seed;
  const auto result = sim::run_simulation(nproc, body, adversary, options);
  std::vector<double> steps;
  steps.reserve(nproc);
  for (const auto& p : result.procs) {
    if (p.finished) steps.push_back(static_cast<double>(p.steps));
  }
  return steps;
}

inline void print_header(const char* experiment, const char* claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

/// A simulated-backend api::Scenario: k processes, `ops` operations each.
inline api::Scenario sim_scenario(int k, int ops, std::uint64_t seed) {
  api::Scenario s;
  s.nproc = k;
  s.ops_per_proc = ops;
  s.backend = api::Backend::kSimulated;
  s.seed = seed;
  return s;
}

/// A hardware-backend api::Scenario: k real threads, `ops` operations each.
/// The resulting Run carries wall-clock throughput (Metrics::ops_per_sec)
/// and per-op latency samples (Run::op_latencies_ns).
inline api::Scenario hw_scenario(int k, int ops, std::uint64_t seed) {
  api::Scenario s;
  s.nproc = k;
  s.ops_per_proc = ops;
  s.backend = api::Backend::kHardware;
  s.seed = seed;
  return s;
}

}  // namespace renamelib::bench
