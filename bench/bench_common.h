// Shared helpers for the experiment benches.
//
// Each bench binary regenerates one of the paper's figures / complexity
// claims as a table (see DESIGN.md's per-experiment index). Step counts come
// from two sources:
//   * simulated mode (adversarial scheduler, exact counts) for k <= ~128,
//   * hardware mode (real threads) for larger sweeps and throughput.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <iostream>
#include <thread>
#include <vector>

#include "api/workload.h"
#include "core/ctx.h"
#include "sim/executor.h"
#include "stats/fit.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace renamelib::bench {

/// Runs `body` on `nproc` real threads (hardware mode) and returns the
/// per-process paper-model step counts.
inline std::vector<double> run_hardware(int nproc, std::uint64_t seed,
                                        const std::function<void(Ctx&)>& body) {
  std::vector<double> steps(nproc, 0);
  std::vector<std::thread> threads;
  threads.reserve(nproc);
  for (int p = 0; p < nproc; ++p) {
    threads.emplace_back([&, p] {
      Ctx ctx(p, Rng::derive(seed, static_cast<std::uint64_t>(p)));
      body(ctx);
      steps[p] = static_cast<double>(ctx.steps());
    });
  }
  for (auto& t : threads) t.join();
  return steps;
}

/// Runs `body` under the adversarial simulator and returns per-process
/// paper-model step counts (finished processes only).
inline std::vector<double> run_simulated(int nproc, std::uint64_t seed,
                                         const std::function<void(Ctx&)>& body) {
  sim::RandomAdversary adversary(seed * 7919 + 13);
  sim::RunOptions options;
  options.seed = seed;
  const auto result = sim::run_simulation(nproc, body, adversary, options);
  std::vector<double> steps;
  steps.reserve(nproc);
  for (const auto& p : result.procs) {
    if (p.finished) steps.push_back(static_cast<double>(p.steps));
  }
  return steps;
}

inline void print_header(const char* experiment, const char* claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

/// A simulated-backend api::Scenario: k processes, `ops` operations each.
inline api::Scenario sim_scenario(int k, int ops, std::uint64_t seed) {
  api::Scenario s;
  s.nproc = k;
  s.ops_per_proc = ops;
  s.backend = api::Backend::kSimulated;
  s.seed = seed;
  return s;
}

}  // namespace renamelib::bench
