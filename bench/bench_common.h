// Shared helpers for the experiment benches.
//
// Each bench binary regenerates one of the paper's figures / complexity
// claims as a table (see DESIGN.md's per-experiment index). Step counts come
// from two sources:
//   * simulated mode (adversarial scheduler, exact counts) for k <= ~128,
//   * hardware mode (real threads) for larger sweeps and throughput.
//
// Every bench binary accepts --smoke: a tiny preset (shrunk sweeps and
// iteration counts) that still runs every table and every validation check,
// exiting non-zero on failure. CI and ctest run the smoke preset so a bench
// that stops building — or starts producing invalid values — fails loudly
// instead of silently rotting.
//
// Every bench binary also accepts --json=FILE: alongside the human-readable
// tables, the bench collects api::BenchReport runs (report_run /
// report_samples below) and writes the machine-readable report on exit
// (finish, the last statement of every main). tools/bench_compare.py diffs
// two such files; the CI bench-smoke job uploads them as artifacts, turning
// every PR's perf claim into a recorded trajectory.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "api/report.h"
#include "api/workload.h"
#include "core/ctx.h"
#include "sim/executor.h"
#include "stats/fit.h"
#include "stats/latency_recorder.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace renamelib::bench {

/// True after parse_args saw --smoke: benches shrink their presets.
inline bool g_smoke = false;

/// Output path of --json=FILE ("" when not given).
inline std::string g_json_path;

/// The report this binary accumulates; finish() writes it when --json was
/// given. parse_args sets the bench name from argv[0].
inline api::BenchReport g_report;

/// Parses the common bench flags (--smoke and --json=FILE); call first
/// thing in main(). Unknown flags abort with a usage message so typos do
/// not silently run the full preset.
inline void parse_args(int argc, char** argv) {
  const std::string argv0 = argv[0];
  const auto slash = argv0.find_last_of('/');
  g_report.bench = slash == std::string::npos ? argv0 : argv0.substr(slash + 1);
  for (int i = 1; i < argc; ++i) {
    // --quick predates --smoke; both select the shrunk preset.
    if (std::strcmp(argv[i], "--smoke") == 0 ||
        std::strcmp(argv[i], "--quick") == 0) {
      g_smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      g_json_path = argv[i] + 7;
      if (g_json_path.empty()) {
        std::cerr << "--json needs a file path\n";
        std::exit(2);
      }
    } else {
      std::cerr << "usage: " << argv[0] << " [--smoke] [--json=FILE]\n"
                << "unknown flag '" << argv[i] << "'\n";
      std::exit(2);
    }
  }
  if (g_smoke) std::cout << "[smoke preset]\n";
}

/// Appends one report run from a Workload result. Hardware runs report
/// wall-clock latency ("ns", Run::latency); simulated runs report the
/// paper-model per-op step distribution ("steps").
inline void report_run(std::string name, std::string spec,
                       const api::Scenario& s, const api::Run& run) {
  api::ReportRun r;
  r.name = std::move(name);
  r.spec = std::move(spec);
  r.backend = s.backend == api::Backend::kHardware ? "hardware" : "simulated";
  r.threads = s.nproc;
  r.ops = run.metrics.ops;
  r.ops_per_sec = run.metrics.ops_per_sec();
  if (s.backend == api::Backend::kHardware) {
    r.unit = "ns";
    r.latency = run.latency;
  } else {
    r.unit = "steps";
    r.latency = stats::LatencySnapshot::of(run.op_steps());
  }
  g_report.runs.push_back(std::move(r));
}

/// Appends one report run from a raw sample vector (per-process step counts
/// from run_hardware/run_simulated, analytic bound values, ...).
inline void report_samples(std::string name, std::string spec,
                           std::string backend, int threads,
                           const std::vector<double>& samples,
                           std::string unit = "steps") {
  api::ReportRun r;
  r.name = std::move(name);
  r.spec = std::move(spec);
  r.backend = std::move(backend);
  r.threads = threads;
  r.latency = stats::LatencySnapshot::of(samples);
  r.ops = r.latency.count();
  r.unit = std::move(unit);
  g_report.runs.push_back(std::move(r));
}

/// Writes the accumulated report when --json was given. Call as the last
/// statement of main: `return bench::finish();`.
inline int finish() {
  if (g_json_path.empty()) return 0;
  g_report.write_file(g_json_path);
  std::cout << "wrote bench report: " << g_json_path << " ("
            << g_report.runs.size() << " runs)\n";
  return 0;
}

/// `full` normally, `smoke` under --smoke.
template <typename T>
T pick(T full, T smoke) {
  return g_smoke ? smoke : full;
}

/// The sweep values for one axis: the full list, or just its first element
/// under --smoke (the smallest config still exercises the code path).
template <typename T>
std::vector<T> sweep_or_first(std::vector<T> full) {
  if (g_smoke && full.size() > 1) full.resize(1);
  return full;
}

/// Runs `body` on `nproc` real threads (hardware mode) and returns the
/// per-process paper-model step counts.
inline std::vector<double> run_hardware(int nproc, std::uint64_t seed,
                                        const std::function<void(Ctx&)>& body) {
  std::vector<double> steps(nproc, 0);
  std::vector<std::thread> threads;
  threads.reserve(nproc);
  for (int p = 0; p < nproc; ++p) {
    threads.emplace_back([&, p] {
      Ctx ctx(p, Rng::derive(seed, static_cast<std::uint64_t>(p)));
      body(ctx);
      steps[p] = static_cast<double>(ctx.steps());
    });
  }
  for (auto& t : threads) t.join();
  return steps;
}

/// Runs `body` under the adversarial simulator and returns per-process
/// paper-model step counts (finished processes only).
inline std::vector<double> run_simulated(int nproc, std::uint64_t seed,
                                         const std::function<void(Ctx&)>& body) {
  sim::RandomAdversary adversary(seed * 7919 + 13);
  sim::RunOptions options;
  options.seed = seed;
  const auto result = sim::run_simulation(nproc, body, adversary, options);
  std::vector<double> steps;
  steps.reserve(nproc);
  for (const auto& p : result.procs) {
    if (p.finished) steps.push_back(static_cast<double>(p.steps));
  }
  return steps;
}

inline void print_header(const char* experiment, const char* claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

/// A simulated-backend api::Scenario: k processes, `ops` operations each.
inline api::Scenario sim_scenario(int k, int ops, std::uint64_t seed) {
  api::Scenario s;
  s.nproc = k;
  s.ops_per_proc = ops;
  s.backend = api::Backend::kSimulated;
  s.seed = seed;
  return s;
}

/// A hardware-backend api::Scenario: k real threads, `ops` operations each.
/// The resulting Run carries wall-clock throughput (Metrics::ops_per_sec)
/// and the tail-faithful per-op latency recording (Run::latency).
inline api::Scenario hw_scenario(int k, int ops, std::uint64_t seed) {
  api::Scenario s;
  s.nproc = k;
  s.ops_per_proc = ops;
  s.backend = api::Backend::kHardware;
  s.seed = seed;
  return s;
}

}  // namespace renamelib::bench
