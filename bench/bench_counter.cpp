// Experiment: Sec. 8.1 (Lemma 4) — the monotone-consistent counter.
//
// Regenerates:
//   * increment cost vs v (number of increments): claim O(log v) expected,
//   * comparison against the [17]-style linearizable MaxRegTreeCounter,
//     which costs an extra log factor — "who wins" must favor the paper's
//     counter, by a factor growing with n,
//   * read cost (max-register read: O(log v)).
//
// Harness and metrics go through api::Workload / api::Metrics; the monotone
// counter itself is not an ICounter (increment returns no value), so it runs
// through the generic run_ops hook — same scenarios, same cost contract.
#include <cmath>

#include "api/workload.h"
#include "bench_common.h"
#include "counting/baselines.h"
#include "counting/monotone_counter.h"

namespace renamelib {
namespace {

using bench::sim_scenario;

void increment_cost() {
  bench::print_header(
      "Lemma 4: monotone counter increment cost vs total increments",
      "k processes perform v/k increments each (simulation); per-increment "
      "steps should grow ~log v (expected), not linearly.");
  stats::Table table({"k", "total v", "mean inc steps", "p99 inc steps",
                      "steps/log2 v", "final read"});
  for (int k : bench::sweep_or_first<int>({2, 4, 8, 16, 32})) {
    const int per = 6;
    counting::MonotoneCounter counter;
    const auto scenario =
        sim_scenario(k, per, static_cast<std::uint64_t>(k) * 11 + 3);
    const auto run = api::Workload(scenario).run_ops([&](Ctx& ctx) {
      counter.increment(ctx);
      return 0ULL;
    });
    bench::report_run("increment_cost", "monotone", scenario, run);
    const auto s = stats::summarize(run.op_steps());
    const double v_total = static_cast<double>(k) * per;
    Ctx reader(k, 4242);
    const std::uint64_t final_value = counter.read(reader);
    table.add_row({std::to_string(k), stats::Table::num(v_total, 0),
                   stats::Table::num(s.mean), stats::Table::num(s.p99),
                   stats::Table::num(s.mean / std::log2(v_total), 3),
                   std::to_string(final_value)});
    if (final_value != static_cast<std::uint64_t>(v_total)) {
      std::cerr << "VALIDATION FAILED: settled counter value mismatch\n";
      std::exit(1);
    }
  }
  table.print(std::cout);
}

void vs_linearizable_baseline() {
  bench::print_header(
      "Sec. 8.1 comparison: monotone (ours) vs linearizable [17] counter",
      "Same workload on both counters. The paper's claim is asymptotic: "
      "O(log v) vs O(log^2 n)-flavor. At laptop-scale k our randomized "
      "renaming constants dominate, so the honest signal is the *trend* of "
      "the ratio (growing with k) plus the deterministic hardware-TAS "
      "variant, where renaming comparators cost one step each.");
  stats::Table table({"k", "monotone mean inc", "monotone(hw tas)",
                      "[17] tree mean inc", "ratio vs rnd", "ratio vs hw"});
  for (int k : bench::sweep_or_first<int>({2, 4, 8, 16, 32})) {
    const int per = 5;

    counting::MonotoneCounter mono;
    const auto mono_run =
        api::Workload(sim_scenario(k, per, static_cast<std::uint64_t>(k) * 7 + 1))
            .run_ops([&](Ctx& ctx) {
              mono.increment(ctx);
              return 0ULL;
            });

    renaming::AdaptiveStrongRenaming::Options hw_options;
    hw_options.comparators = renaming::AdaptiveComparatorKind::kHardware;
    counting::MonotoneCounter mono_hw(hw_options);
    const auto mono_hw_run =
        api::Workload(sim_scenario(k, per, static_cast<std::uint64_t>(k) * 7 + 3))
            .run_ops([&](Ctx& ctx) {
              mono_hw.increment(ctx);
              return 0ULL;
            });

    counting::MaxRegTreeCounter tree(k, 1 << 20);
    const auto tree_run =
        api::Workload(sim_scenario(k, per, static_cast<std::uint64_t>(k) * 7 + 2))
            .run_ops([&](Ctx& ctx) {
              tree.increment(ctx);
              return 0ULL;
            });

    const double mono_mean = mono_run.metrics.mean_op_steps();
    const double mono_hw_mean = mono_hw_run.metrics.mean_op_steps();
    const double tree_mean = tree_run.metrics.mean_op_steps();
    table.add_row({std::to_string(k), stats::Table::num(mono_mean),
                   stats::Table::num(mono_hw_mean), stats::Table::num(tree_mean),
                   stats::Table::num(tree_mean / mono_mean, 2),
                   stats::Table::num(tree_mean / mono_hw_mean, 2)});
  }
  table.print(std::cout);
  std::cout << "(The paper's advantage is asymptotic; at small k the "
               "renaming constants dominate, so the ratios start below 1 and "
               "must *grow* with k — the hardware-TAS column crosses first.)\n";
}

void read_cost() {
  bench::print_header("Lemma 4: read cost",
                      "Reads are a max-register read: O(log v).");
  stats::Table table({"v", "read steps"});
  counting::MonotoneCounter counter;
  Ctx ctx(0, 99);
  for (std::uint64_t target : bench::pick<std::vector<std::uint64_t>>(
           {4, 16, 64, 256}, {4, 16})) {
    while (counter.read(ctx) < target) counter.increment(ctx);
    const std::uint64_t before = ctx.steps();
    (void)counter.read(ctx);
    table.add_row({std::to_string(target),
                   std::to_string(ctx.steps() - before)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace renamelib

int main(int argc, char** argv) {
  renamelib::bench::parse_args(argc, argv);
  renamelib::increment_cost();
  renamelib::vs_linearizable_baseline();
  renamelib::read_cost();
  return renamelib::bench::finish();
}
