// Experiment: flat-combining front-end (src/combining) — the classic
// latency-for-throughput trade applied to the paper's dispensers.
//
// Regenerates:
//   * the exact-density accounting the funnel's escrow promises: at
//     quiescence with zero drops, values handed to callers plus values
//     drained from the spill pool are exactly the inner dispenser's minted
//     prefix {0..M-1} — validated on both backends, per-op and batched,
//   * a simulated-backend anatomy table: shared-step totals for the bare
//     inner vs the funnel per-op vs the funnel batched, next to the funnel's
//     own sweep statistics (how many publications one combiner answered),
//   * the tracked hardware throughput gate: `combine:slots=16,
//     inner=[striped:stripes=8]` on the batched next_range path must clear
//     2x the bare striped counter's per-op ops/sec at 16 threads. The full
//     preset enforces the gate (exit 1); the nightly CI job diffs the
//     emitted report against the stored baseline in bench/baselines/.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "api/combining.h"
#include "api/registry.h"
#include "api/workload.h"
#include "bench_common.h"

namespace renamelib {
namespace {

using bench::sim_scenario;

/// Registry-built combined counter, downcast so the bench can reach the
/// native funnel (stats / drain). Exits if the registry wiring changed.
std::pair<std::unique_ptr<api::ICounter>, api::CombinedCounterAdapter*>
make_combined(const std::string& spec) {
  auto counter = api::Registry::global().make_counter(spec);
  auto* combined = dynamic_cast<api::CombinedCounterAdapter*>(counter.get());
  if (combined == nullptr) {
    std::cerr << "VALIDATION FAILED: registry no longer builds '" << spec
              << "' as CombinedCounterAdapter\n";
    std::exit(1);
  }
  return {std::move(counter), combined};
}

/// Handed ∪ drained must be exactly {0..M-1} when nothing was dropped:
/// every value the inner minted was either delivered to a caller or parked
/// in the spill pool. Exits non-zero on a violation; returns M.
std::size_t check_density_with_drain(const api::Run& run,
                                     api::CombinedCounterAdapter& combined,
                                     const std::string& what) {
  std::vector<std::uint64_t> values = run.values();
  Ctx ctx(0, Rng::derive(0xD12A17, 97));
  std::vector<api::ValueRange> drained;
  combined.impl().drain(ctx, drained);
  std::size_t drained_count = 0;
  for (const auto& r : drained) {
    for (std::uint64_t i = 0; i < r.count; ++i) values.push_back(r.at(i));
    drained_count += static_cast<std::size_t>(r.count);
  }
  std::sort(values.begin(), values.end());
  const auto st = combined.impl().stats();
  if (st.dropped_values == 0) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (values[i] != i) {
        std::cerr << "VALIDATION FAILED: " << what << ": handed+drained is "
                  << "not the dense prefix (position " << i << " holds "
                  << values[i] << ")\n";
        std::exit(1);
      }
    }
  } else {
    // Pool overflow orphans values (counted, never double-handed): fall
    // back to uniqueness + the minted-total bound.
    const bool unique =
        std::adjacent_find(values.begin(), values.end()) == values.end();
    const std::uint64_t minted =
        values.size() + st.dropped_values;
    if (!unique || (!values.empty() && values.back() >= minted)) {
      std::cerr << "VALIDATION FAILED: " << what
                << ": dropped values broke uniqueness/bound\n";
      std::exit(1);
    }
  }
  return drained_count;
}

void density_table() {
  bench::print_header(
      "Escrow accounting: handed ∪ drained = the inner's dense mint prefix",
      "Every value the funnel's inner minted is either handed to a caller or "
      "recoverable from the spill pool at quiescence (zero drops ⇒ exact "
      "density). Both backends, per-op and batched publication.");
  const std::string spec =
      "combine:slots=8,spin=32,max_combine=32,inner=[striped:stripes=8]";
  stats::Table table({"backend", "k", "batch", "handed", "drained", "spilled",
                      "dropped", "combines"});
  for (const bool hardware : {false, true}) {
    for (int k : bench::sweep_or_first<int>({4, 8, 16})) {
      for (int batch : bench::sweep_or_first<int>({1, 8})) {
        auto [counter, combined] = make_combined(spec);
        const int ops = bench::pick(48, 6);
        api::Scenario s =
            hardware
                ? bench::hw_scenario(k, ops, 11 + static_cast<std::uint64_t>(k))
                : sim_scenario(k, ops, 11 + static_cast<std::uint64_t>(k));
        s.batch = batch;
        const auto run = api::Workload(s).run(*counter);
        const std::string what = std::string(hardware ? "hw" : "sim") +
                                 " k=" + std::to_string(k) +
                                 " batch=" + std::to_string(batch);
        const std::size_t drained =
            check_density_with_drain(run, *combined, what);
        const auto st = combined->impl().stats();
        table.add_row({hardware ? "hardware" : "simulated", std::to_string(k),
                       std::to_string(batch),
                       std::to_string(run.values().size()),
                       std::to_string(drained),
                       std::to_string(st.spilled_values),
                       std::to_string(st.dropped_values),
                       std::to_string(st.combines)});
        bench::report_run(batch > 1 ? "density_batched" : "density_per_op",
                          spec, s, run);
      }
    }
  }
  table.print(std::cout);
}

void anatomy_table() {
  bench::print_header(
      "Funnel anatomy (adversarial simulation): shared crossings saved",
      "The funnel trades per-op shared-object crossings for publication-slot "
      "traffic: one combiner crosses once per sweep (a single ranged mint) "
      "on behalf of every claimed publication. Exact step counts, k = 8.");
  const int k = 8;
  const int ops = bench::pick(16, 4);
  const std::string bare = "striped:stripes=8";
  const std::string comb = "combine:slots=16,inner=[striped:stripes=8]";
  stats::Table table({"spec", "batch", "shared steps", "mean op steps",
                      "combines", "combined reqs", "direct mints"});
  struct Leg {
    const char* name;
    const std::string& spec;
    int batch;
  };
  for (const Leg& leg : {Leg{"anatomy_bare", bare, 1},
                         Leg{"anatomy_combine_per_op", comb, 1},
                         Leg{"anatomy_combine_batched", comb, 16}}) {
    api::Scenario s = sim_scenario(k, ops, 23);
    s.batch = leg.batch;
    auto counter = api::Registry::global().make_counter(leg.spec);
    const auto run = api::Workload(s).run(*counter);
    std::string combines = "-", reqs = "-", direct = "-";
    if (auto* combined =
            dynamic_cast<api::CombinedCounterAdapter*>(counter.get())) {
      const auto st = combined->impl().stats();
      combines = std::to_string(st.combines);
      reqs = std::to_string(st.combined_requests);
      direct = std::to_string(st.direct_mints);
    }
    table.add_row({leg.spec, std::to_string(leg.batch),
                   std::to_string(run.metrics.shared_steps),
                   stats::Table::num(run.metrics.mean_op_steps()), combines,
                   reqs, direct});
    bench::report_run(leg.name, leg.spec, s, run);
  }
  table.print(std::cout);
}

/// Values of an escrow (combine) run: unique and below twice the completed
/// count. Exits non-zero on a violation.
void check_combine_values(const api::Run& run, const std::string& what) {
  std::vector<std::uint64_t> sorted = run.values();
  std::sort(sorted.begin(), sorted.end());
  // Doubled-demand escrow: the inner mints M < 2N values for N requests,
  // and the striped inner's minted set is the dense prefix {0..M-1} at
  // quiescence, so every handed value is below 2N.
  const std::uint64_t bound = 2 * sorted.size();
  const bool unique =
      std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
  if (!unique || (!sorted.empty() && sorted.back() >= bound)) {
    std::cerr << "VALIDATION FAILED: " << what
              << ": combine values not unique/bounded\n";
    std::exit(1);
  }
}

void throughput_gate() {
  bench::print_header(
      "Tracked hardware gate: batched funnel vs bare striped, 16 threads",
      "The perf claim this bench exists to track: the flat-combining "
      "front-end on its batched next_range path must clear 2x the bare "
      "striped counter's per-op throughput. Per-op funnel and batched bare "
      "legs isolate how much each mechanism (publication amortization, "
      "ranged minting) contributes.");
  const int k = bench::pick(16, 4);
  const int ops = bench::pick(20000, 64);
  // One publication round per next_range refill: the funnel serves the
  // publisher's whole want in one sweep, so a larger batch amortizes the
  // slot protocol further without changing the escrow accounting.
  const int batch = 256;
  const std::string bare = "striped:stripes=8";
  const std::string comb = "combine:slots=16,inner=[striped:stripes=8]";

  struct Leg {
    const char* name;
    const std::string& spec;
    int batch;
  };
  const Leg legs[] = {Leg{"gate_bare_per_op", bare, 1},
                      Leg{"gate_bare_batched", bare, batch},
                      Leg{"gate_combine_per_op", comb, 1},
                      Leg{"gate_combine_batched", comb, batch}};
  stats::Table table(
      {"leg", "spec", "batch", "ops/sec", "p50 ns", "p99 ns", "vs bare"});
  double bare_tps = 0, gate_tps = 0;
  for (const Leg& leg : legs) {
    // Validation pass first: a shorter sampled run whose values we can
    // actually inspect (dense for the bare dispenser, unique and
    // doubled-demand-bounded for the funnel).
    {
      api::Scenario v = bench::hw_scenario(
          k, bench::pick(2000, 64), 67 + static_cast<std::uint64_t>(leg.batch));
      v.batch = leg.batch;
      const auto vrun = api::Workload::run_counter_spec(leg.spec, v);
      if (leg.spec == comb) {
        check_combine_values(vrun, leg.name);
      } else {
        // Bare striped, per-op or fully-consumed batches: dense at
        // quiescence.
        std::vector<std::uint64_t> sorted = vrun.values();
        std::sort(sorted.begin(), sorted.end());
        for (std::size_t i = 0; i < sorted.size(); ++i) {
          if (sorted[i] != i) {
            std::cerr << "VALIDATION FAILED: " << leg.name << " not dense\n";
            std::exit(1);
          }
        }
      }
    }
    // Timed pass: throughput mode — per-op sample retention off, so the
    // measured loop is the dispenser protocol, not the harness's sample
    // vector. Latency still records at the sampled period.
    api::Scenario s = bench::hw_scenario(
        k, ops, 31 + static_cast<std::uint64_t>(leg.batch));
    s.batch = leg.batch;
    s.keep_op_samples = false;
    const auto run = bench::run_counter_median(leg.name, leg.spec, s);
    const double tps = run.metrics.ops_per_sec();
    if (leg.spec == bare && leg.batch == 1) bare_tps = tps;
    if (leg.spec == comb && leg.batch > 1) gate_tps = tps;
    const auto lat = run.latency.to_summary();
    table.add_row({leg.name, leg.spec, std::to_string(leg.batch),
                   stats::Table::num(tps, 0), stats::Table::num(lat.p50, 0),
                   stats::Table::num(lat.p99, 0),
                   bare_tps > 0 ? stats::Table::num(tps / bare_tps, 2) + "x"
                                : "-"});
  }
  table.print(std::cout);
  const double ratio = bare_tps > 0 ? gate_tps / bare_tps : 0;
  std::cout << "gate: combine batched / bare per-op = "
            << stats::Table::num(ratio, 2) << "x (target >= 2x)\n";
  // The smoke preset's runs are too short for stable wall-clock ratios;
  // the full preset (nightly CI, committed reports) enforces the claim.
  if (!bench::g_smoke && ratio < 2.0) {
    std::cerr << "VALIDATION FAILED: batched combining gate below 2x ("
              << stats::Table::num(ratio, 2) << "x)\n";
    std::exit(1);
  }
}

}  // namespace
}  // namespace renamelib

int main(int argc, char** argv) {
  renamelib::bench::parse_args(argc, argv);
  renamelib::density_table();
  renamelib::anatomy_table();
  renamelib::throughput_gate();
  return renamelib::bench::finish();
}
