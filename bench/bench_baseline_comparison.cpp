// Experiment: Sec. 1 / Sec. 3 — the headline comparison.
//
// Regenerates the "who wins" table motivating the paper: per-process cost of
// every registered renaming implementation (linear probing Theta(k),
// BitBatching O(log^2 n), Moir–Anderson Theta(k), renaming networks, and the
// adaptive strong algorithm at polylog(k)) — all with unit-cost TAS
// arbitration so the probe counts are comparable. The crossover should
// appear by k ~ 8-16 and widen exponentially.
//
// All wiring goes through the api facade: implementations are spec strings,
// runs are api::Workload scenarios, costs are api::Metrics — adding a new
// renaming to the registry adds a column here with no new harness code.
#include <algorithm>
#include <cstdint>

#include "api/workload.h"
#include "bench_common.h"

namespace renamelib {
namespace {

std::uint64_t next_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Spec strings for a k-participant comparison, unit-cost TAS everywhere.
/// Geometry params are the only per-implementation knowledge the bench
/// needs; construction, execution, and metering are generic.
std::vector<std::string> specs_for(int k) {
  return {
      "linear_probe:cap=" + std::to_string(2 * k),
      "bit_batching:n=" + std::to_string(std::max(k, 4)) + ",tas=hw",
      "moir_anderson:n=" + std::to_string(k),
      "renaming_network:w=" + std::to_string(next_pow2(std::max(k, 2))) +
          ",tas=hw",
      "adaptive_strong:tas=hw",
  };
}

double mean_steps(const char* table_name, const std::string& spec, int k,
                  std::uint64_t seed, api::Backend backend) {
  api::Scenario s;
  s.nproc = k;
  s.ops_per_proc = 1;
  s.backend = backend;
  s.seed = seed;
  const auto run = api::Workload::run_renaming_spec(spec, s);
  bench::report_samples(table_name, spec,
                        backend == api::Backend::kHardware ? "hardware"
                                                           : "simulated",
                        k, run.proc_steps);
  return stats::summarize(run.proc_steps).mean;
}

void who_wins() {
  bench::print_header(
      "Sec. 1: every registered renaming, head to head",
      "Mean per-process steps, unit-cost TAS comparators/slots, adversarial "
      "simulation. Expected shape: linear probing and Moir-Anderson grow ~k; "
      "the network-based algorithms stay polylogarithmic; adaptive strong "
      "also works with unbounded initial names.");
  // Header and rows must share one column source: derive the header names
  // from specs_for at a valid k and re-check them against every row's specs.
  std::vector<std::string> columns;
  for (const auto& spec : specs_for(2)) {
    columns.push_back(api::Spec::parse(spec).name());
  }
  std::vector<std::string> header{"k"};
  header.insert(header.end(), columns.begin(), columns.end());
  header.push_back("linear/adaptive");
  stats::Table table(header);
  for (int k : {2, 4, 8, 16, 32, 64, 128}) {
    std::vector<std::string> row{std::to_string(k)};
    double linear = 0, adaptive = 0;
    std::uint64_t salt = 1;
    const auto specs = specs_for(k);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      const std::string name = api::Spec::parse(specs[i]).name();
      if (i >= columns.size() || name != columns[i]) {
        std::cerr << "VALIDATION FAILED: column mismatch at k=" << k << "\n";
        std::exit(1);
      }
      const double mean =
          mean_steps("who_wins", specs[i], k,
                     static_cast<std::uint64_t>(k) + salt++,
                     api::Backend::kSimulated);
      if (name == "linear_probe") linear = mean;
      if (name == "adaptive_strong") adaptive = mean;
      row.push_back(stats::Table::num(mean));
    }
    row.push_back(stats::Table::num(linear / adaptive, 2));
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "(Linear probing counts one step per probed TAS: mean ~k/2 "
               "probes plus the winning probe. Moir-Anderson is the "
               "deterministic splitter-grid baseline: register steps grow "
               "~k, and its namespace is k(k+1)/2, not 1..k.)\n";
}

void crossover_at_scale() {
  bench::print_header(
      "Sec. 1 crossover at scale (hardware threads)",
      "Larger k (real threads, unit-cost TAS everywhere): linear probing's "
      "Theta(k) overtakes the adaptive algorithm's polylog cost.");
  stats::Table table({"k", "linear probe", "adaptive strong",
                      "linear/adaptive"});
  for (int k : {64, 128, 256, 512, 1024}) {
    const double lp_mean = mean_steps(
        "crossover", "linear_probe:cap=" + std::to_string(2 * k), k,
        static_cast<std::uint64_t>(k) + 11, api::Backend::kHardware);
    const double ad_mean = mean_steps(
        "crossover", "adaptive_strong:tas=hw", k,
        static_cast<std::uint64_t>(k) + 12, api::Backend::kHardware);
    table.add_row({std::to_string(k), stats::Table::num(lp_mean),
                   stats::Table::num(ad_mean),
                   stats::Table::num(lp_mean / ad_mean, 2)});
  }
  table.print(std::cout);
  std::cout << "(The ratio crossing 1 marks the paper's asymptotic win: "
               "beyond it, linear probing loses ground exponentially.)\n";
}

void adaptivity() {
  bench::print_header(
      "Adaptivity: k participants, huge potential namespace",
      "Adaptive strong renaming cost depends on k only; BitBatching must be "
      "provisioned for n and its cost follows log^2 n even at low "
      "contention.");
  stats::Table table({"k", "n provisioned", "bitbatching steps",
                      "adaptive steps"});
  const int n = 1024;
  for (int k : {2, 8, 32}) {
    const double bb_mean = mean_steps(
        "adaptivity", "bit_batching:n=" + std::to_string(n) + ",tas=hw", k,
        static_cast<std::uint64_t>(k) * 5 + 1, api::Backend::kSimulated);
    const double ad_mean =
        mean_steps("adaptivity", "adaptive_strong:tas=hw", k,
                   static_cast<std::uint64_t>(k) * 5 + 2,
                   api::Backend::kSimulated);
    table.add_row({std::to_string(k), std::to_string(n),
                   stats::Table::num(bb_mean), stats::Table::num(ad_mean)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace renamelib

int main(int argc, char** argv) {
  renamelib::bench::parse_args(argc, argv);
  renamelib::who_wins();
  renamelib::crossover_at_scale();
  renamelib::adaptivity();
  return renamelib::bench::finish();
}
