// Experiment: Sec. 1 / Sec. 3 — the headline comparison.
//
// Regenerates the "who wins" table motivating the paper: per-process cost of
//   * LinearProbeRenaming (classic baseline [4, 11]): Theta(k),
//   * BitBatching (Sec. 4): O(log^2 n) probes, non-adaptive,
//   * AdaptiveStrongRenaming (Sec. 6.2): polylog(k), adaptive + tight.
// All with unit-cost TAS arbitration so the probe counts are comparable.
// The crossover should appear by k ~ 8-16 and widen exponentially.
#include "bench_common.h"
#include "renaming/adaptive_strong.h"
#include "renaming/bit_batching.h"
#include "renaming/linear_probe.h"
#include "renaming/moir_anderson.h"

namespace renamelib {
namespace {

void who_wins() {
  bench::print_header(
      "Sec. 1: linear probing vs BitBatching vs adaptive strong renaming",
      "Mean per-process steps, unit-cost TAS comparators/slots, adversarial "
      "simulation. Expected shape: linear grows ~k; the other two stay "
      "polylogarithmic; adaptive also works with unbounded initial names.");
  stats::Table table({"k", "linear probe", "bitbatching(n=k)",
                      "adaptive strong", "moir-anderson det.",
                      "linear/adaptive"});
  for (int k : {2, 4, 8, 16, 32, 64, 128}) {
    renaming::LinearProbeRenaming lp(static_cast<std::uint64_t>(k) * 2);
    auto lp_steps = bench::run_simulated(
        k, static_cast<std::uint64_t>(k) + 1,
        [&](Ctx& ctx) { (void)lp.rename(ctx, ctx.pid() + 1); });

    renaming::MoirAndersonRenaming ma(static_cast<std::size_t>(k));
    auto ma_steps = bench::run_simulated(
        k, static_cast<std::uint64_t>(k) + 4,
        [&](Ctx& ctx) { (void)ma.rename(ctx, ctx.pid() + 1); });

    renaming::BitBatching bb(static_cast<std::uint64_t>(std::max(k, 4)),
                             renaming::SlotTasKind::kHardware);
    auto bb_steps = bench::run_simulated(
        k, static_cast<std::uint64_t>(k) + 2,
        [&](Ctx& ctx) { (void)bb.rename(ctx, ctx.pid() + 1); });

    renaming::AdaptiveStrongRenaming::Options options;
    options.comparators = renaming::AdaptiveComparatorKind::kHardware;
    renaming::AdaptiveStrongRenaming adaptive(options);
    auto ad_steps = bench::run_simulated(
        k, static_cast<std::uint64_t>(k) + 3,
        [&](Ctx& ctx) { (void)adaptive.rename(ctx, ctx.pid() + 1); });

    const double lp_mean = stats::summarize(lp_steps).mean;
    const double bb_mean = stats::summarize(bb_steps).mean;
    const double ad_mean = stats::summarize(ad_steps).mean;
    const double ma_mean = stats::summarize(ma_steps).mean;
    table.add_row({std::to_string(k), stats::Table::num(lp_mean),
                   stats::Table::num(bb_mean), stats::Table::num(ad_mean),
                   stats::Table::num(ma_mean),
                   stats::Table::num(lp_mean / ad_mean, 2)});
  }
  table.print(std::cout);
  std::cout << "(Linear probing counts one step per probed TAS: mean ~k/2 "
               "probes plus the winning probe. Moir-Anderson is the "
               "deterministic splitter-grid baseline: register steps grow "
               "~k, and its namespace is k(k+1)/2, not 1..k.)\n";
}

void crossover_at_scale() {
  bench::print_header(
      "Sec. 1 crossover at scale (hardware threads)",
      "Larger k (real threads, unit-cost TAS everywhere): linear probing's "
      "Theta(k) overtakes the adaptive algorithm's polylog cost.");
  stats::Table table({"k", "linear probe", "adaptive strong",
                      "linear/adaptive"});
  for (int k : {64, 128, 256, 512, 1024}) {
    renaming::LinearProbeRenaming lp(static_cast<std::uint64_t>(k) * 2);
    auto lp_steps = bench::run_hardware(
        k, static_cast<std::uint64_t>(k) + 11,
        [&](Ctx& ctx) { (void)lp.rename(ctx, ctx.pid() + 1); });

    renaming::AdaptiveStrongRenaming::Options options;
    options.comparators = renaming::AdaptiveComparatorKind::kHardware;
    renaming::AdaptiveStrongRenaming adaptive(options);
    auto ad_steps = bench::run_hardware(
        k, static_cast<std::uint64_t>(k) + 12,
        [&](Ctx& ctx) { (void)adaptive.rename(ctx, ctx.pid() + 1); });

    const double lp_mean = stats::summarize(lp_steps).mean;
    const double ad_mean = stats::summarize(ad_steps).mean;
    table.add_row({std::to_string(k), stats::Table::num(lp_mean),
                   stats::Table::num(ad_mean),
                   stats::Table::num(lp_mean / ad_mean, 2)});
  }
  table.print(std::cout);
  std::cout << "(The ratio crossing 1 marks the paper's asymptotic win: "
               "beyond it, linear probing loses ground exponentially.)\n";
}

void adaptivity() {
  bench::print_header(
      "Adaptivity: k participants, huge potential namespace",
      "Adaptive strong renaming cost depends on k only; BitBatching must be "
      "provisioned for n and its cost follows log^2 n even at low "
      "contention.");
  stats::Table table({"k", "n provisioned", "bitbatching steps",
                      "adaptive steps"});
  const int n = 1024;
  for (int k : {2, 8, 32}) {
    renaming::BitBatching bb(n, renaming::SlotTasKind::kHardware);
    auto bb_steps = bench::run_simulated(
        k, static_cast<std::uint64_t>(k) * 5 + 1,
        [&](Ctx& ctx) { (void)bb.rename(ctx, ctx.pid() + 1); });

    renaming::AdaptiveStrongRenaming::Options options;
    options.comparators = renaming::AdaptiveComparatorKind::kHardware;
    renaming::AdaptiveStrongRenaming adaptive(options);
    auto ad_steps = bench::run_simulated(
        k, static_cast<std::uint64_t>(k) * 5 + 2,
        [&](Ctx& ctx) { (void)adaptive.rename(ctx, ctx.pid() + 1); });

    table.add_row({std::to_string(k), std::to_string(n),
                   stats::Table::num(stats::summarize(bb_steps).mean),
                   stats::Table::num(stats::summarize(ad_steps).mean)});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace renamelib

int main() {
  renamelib::who_wins();
  renamelib::crossover_at_scale();
  renamelib::adaptivity();
  return 0;
}
