// Experiment: IRenaming churn — acquire/release throughput across the whole
// renaming facet (the ROADMAP's churn bench, next to the shootout).
//
// Every registry entry runs the same acquire+release cycle through the
// Workload harness: the long-lived family recycles names (real churn), the
// one-shot protocols treat release as a no-op and run a bounded acquire
// sweep (their namespace is finite — ops are capped by the entry's
// max_requests). Two legs per entry and thread count:
//   * adversarial simulation — exact paper-model step distribution,
//   * hardware threads — wall-clock ops/sec with tail-faithful latency
//     percentiles from the lock-free LatencyRecorder (Run::latency).
// A third, high-volume leg churns the long-lived table with per-op samples
// dropped (Scenario::keep_op_samples = false): memory stays O(1) in the op
// count and validation goes through IRenaming::holders.
//
// Validations (exit non-zero on failure):
//   * reusable entries: every name within name_bound(k) and holders() == 0
//     once every acquire was released,
//   * one-shot entries: all acquired names unique and within
//     name_bound(total requests).
#include <algorithm>
#include <string>
#include <vector>

#include "api/workload.h"
#include "bench_common.h"

namespace renamelib {
namespace {

/// Acquire+release cycle; returns the acquired name (one-shot releases are
/// no-ops, so the same body serves both families).
api::Run churn_run(api::IRenaming& obj, const api::Scenario& s) {
  return api::Workload(s).run_ops([&obj](Ctx& ctx) {
    const std::uint64_t name = obj.acquire(ctx);
    obj.release(ctx, name);
    return name;
  });
}

void validate(const api::RenamingInfo& info, const api::Run& run,
              api::IRenaming& obj, int k, const char* backend) {
  const api::Spec defaults;
  const auto names = run.values();
  if (info.reusable) {
    // Churn recycles: at quiescence nothing is held, and every name stays
    // within the entry's bound for k concurrent holders.
    if (obj.holders() != 0) {
      std::cerr << "VALIDATION FAILED: " << info.name << " (" << backend
                << ") holders=" << obj.holders() << " after full release\n";
      std::exit(1);
    }
    const std::uint64_t bound = info.name_bound(k, defaults);
    for (const std::uint64_t n : names) {
      if (n < 1 || n > bound) {
        std::cerr << "VALIDATION FAILED: " << info.name << " (" << backend
                  << ") name " << n << " outside 1.." << bound << "\n";
        std::exit(1);
      }
    }
  } else {
    // One-shot: names are permanent, so the whole run must be distinct and
    // within the bound for `names.size()` dense-id requests.
    std::vector<std::uint64_t> sorted = names;
    std::sort(sorted.begin(), sorted.end());
    const std::uint64_t bound =
        info.name_bound(static_cast<int>(sorted.size()), defaults);
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0 && sorted[i] == sorted[i - 1]) {
        std::cerr << "VALIDATION FAILED: " << info.name << " (" << backend
                  << ") duplicate name " << sorted[i] << "\n";
        std::exit(1);
      }
      if (sorted[i] < 1 || sorted[i] > bound) {
        std::cerr << "VALIDATION FAILED: " << info.name << " (" << backend
                  << ") name " << sorted[i] << " outside 1.." << bound << "\n";
        std::exit(1);
      }
    }
  }
}

void churn_table() {
  bench::print_header(
      "IRenaming churn: acquire/release throughput, every facet entry",
      "Cost-model columns from the adversarial simulation; wall-clock "
      "columns (ops/sec across threads, latency percentiles from the "
      "log-bucketed recorder) from hardware threads. 'churn' mode recycles "
      "names via release; 'one-shot' entries acquire from their finite "
      "namespace with no-op releases.");
  stats::Table table({"spec", "mode", "k", "ops", "mean steps", "p99 steps",
                      "hw ops/sec", "hw p50 ns", "hw p99 ns", "hw p999 ns"});
  const api::Spec defaults;
  std::vector<double> churn_k, churn_p99;  // reusable entries' tail growth
  for (const auto& info : api::Registry::global().renamings()) {
    const std::string& spec = info.name;
    for (int k : bench::sweep_or_first<int>({2, 4, 8})) {
      // Per-process op budget: reusable entries churn freely; one-shot
      // namespaces cap the total request count.
      int ops = bench::pick(info.reusable ? 512 : 48, 4);
      const int max_requests = info.max_requests(defaults);
      if (!info.reusable && max_requests / k < ops) ops = max_requests / k;
      if (ops < 1) continue;

      const auto sim_s =
          bench::sim_scenario(k, ops, 17 * static_cast<std::uint64_t>(k) + 5);
      const auto sim_obj = api::Registry::global().make_renaming(spec);
      const auto sim = churn_run(*sim_obj, sim_s);
      validate(info, sim, *sim_obj, k, "sim");
      bench::report_run("churn/simulated", spec, sim_s, sim);

      const auto hw_s =
          bench::hw_scenario(k, ops, 23 * static_cast<std::uint64_t>(k) + 7);
      const auto hw_obj = api::Registry::global().make_renaming(spec);
      const auto hw = churn_run(*hw_obj, hw_s);
      validate(info, hw, *hw_obj, k, "hw");
      bench::report_run("churn/hardware", spec, hw_s, hw);

      if (info.reusable) {
        // Snapshot percentiles feed the growth fitting directly: the claim
        // under test is O(log k) probes per acquire, tail included.
        churn_k.push_back(static_cast<double>(k));
        churn_p99.push_back(static_cast<double>(
            stats::LatencySnapshot::of(sim.op_steps()).percentile(0.99)));
      }
      const auto ss = stats::summarize(sim.op_steps());
      table.add_row(
          {spec, info.reusable ? "churn" : "one-shot", std::to_string(k),
           std::to_string(sim.metrics.ops), stats::Table::num(ss.mean),
           stats::Table::num(ss.p99),
           stats::Table::num(hw.metrics.ops_per_sec(), 0),
           std::to_string(hw.latency.percentile(0.50)),
           std::to_string(hw.latency.percentile(0.99)),
           std::to_string(hw.latency.percentile(0.999))});
    }
  }
  table.print(std::cout);
  if (churn_k.size() >= 3) {
    const auto fit = stats::fit_growth(churn_k, churn_p99);
    std::cout << "growth fit for reusable-entry p99 churn steps: " << fit.model
              << " (constant " << stats::Table::num(fit.constant, 2)
              << ", R^2 " << stats::Table::num(fit.r2, 3) << ")\n";
  }
  std::cout << "(One-shot entries consume their namespace, so their ops are "
               "capped by max_requests; the long-lived family is the only "
               "one whose throughput is sustainable — which is the Sec. 9 "
               "point this bench records.)\n";
}

void longlived_hot_loop() {
  bench::print_header(
      "Long-lived churn, high volume (per-op samples dropped)",
      "Sustained acquire/release cycles against one longlived table, "
      "Scenario::keep_op_samples = false: Run::ops stays empty, metrics and "
      "the latency recording stay exact, validation goes through holders().");
  stats::Table table({"cap", "k", "ops", "ops/sec", "p50 ns", "p99 ns",
                      "p999 ns", "max ns"});
  for (int k : bench::sweep_or_first<int>({2, 8})) {
    const std::string spec = "longlived:cap=1024";
    api::Scenario s = bench::hw_scenario(k, bench::pick(20000, 32),
                                         41 * static_cast<std::uint64_t>(k));
    s.keep_op_samples = false;
    const auto obj = api::Registry::global().make_renaming(spec);
    const auto run = churn_run(*obj, s);
    if (!run.ops.empty() || obj->holders() != 0) {
      std::cerr << "VALIDATION FAILED: hot loop kept samples or leaked names "
                << "(ops=" << run.ops.size() << " holders=" << obj->holders()
                << ")\n";
      std::exit(1);
    }
    if (run.metrics.ops !=
        static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(s.ops_per_proc)) {
      std::cerr << "VALIDATION FAILED: hot loop op count mismatch\n";
      std::exit(1);
    }
    bench::report_run("churn/hot", spec, s, run);
    table.add_row({"1024", std::to_string(k), std::to_string(run.metrics.ops),
                   stats::Table::num(run.metrics.ops_per_sec(), 0),
                   std::to_string(run.latency.percentile(0.50)),
                   std::to_string(run.latency.percentile(0.99)),
                   std::to_string(run.latency.percentile(0.999)),
                   std::to_string(run.latency.max())});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace renamelib

int main(int argc, char** argv) {
  renamelib::bench::parse_args(argc, argv);
  renamelib::churn_table();
  renamelib::longlived_hot_loop();
  return renamelib::bench::finish();
}
