// Experiment: Sec. 7 (Theorems 4-5, Corollary 4) — the Omega(c log k) lower
// bound and the optimality of the adaptive algorithm.
//
// Regenerates the comparison the paper's optimality claim rests on: the
// measured expected step complexity of (a) the wakeup reduction and (b) the
// adaptive renaming algorithm itself, against the analytic c*log2(k) bound.
// The claim verified: measured >= bound everywhere (validity) and measured /
// bound stays within a polylog envelope (near-optimality; exactly O(1) with
// an AKS base, one extra log with Batcher).
#include "bench_common.h"
#include "renaming/adaptive_strong.h"
#include "wakeup/wakeup.h"

namespace renamelib {
namespace {

void bound_vs_measured() {
  bench::print_header(
      "Thm. 5: Omega(c log k) vs measured adaptive renaming cost",
      "Measured mean steps (simulation, c = 1) must dominate log2(k); the "
      "ratio column shows the polylog gap (1 with AKS, ~log k * const with "
      "Batcher + TempName).");
  stats::Table table({"k", "lower bound c*log2(k)", "wakeup mean steps",
                      "renaming mean steps", "renaming/bound"});
  for (int k : bench::sweep_or_first<int>({2, 4, 8, 16, 32, 64})) {
    const double bound = wakeup::step_lower_bound(1.0, static_cast<std::uint64_t>(k));

    double wakeup_total = 0;
    const int kRuns = bench::pick(5, 2);
    for (int run = 0; run < kRuns; ++run) {
      wakeup::WakeupFromRenaming wk(static_cast<std::uint64_t>(k));
      auto steps = bench::run_simulated(
          k, static_cast<std::uint64_t>(run) * 100 + k,
          [&](Ctx& ctx) { (void)wk.wake(ctx, ctx.pid() + 1); });
      for (double s : steps) wakeup_total += s;
    }
    const double wakeup_mean = wakeup_total / (kRuns * k);

    double rename_total = 0;
    std::vector<double> rename_steps;
    for (int run = 0; run < kRuns; ++run) {
      renaming::AdaptiveStrongRenaming renaming;
      auto steps = bench::run_simulated(
          k, static_cast<std::uint64_t>(run) * 37 + k + 5,
          [&](Ctx& ctx) { (void)renaming.rename(ctx, ctx.pid() + 1); });
      rename_steps.insert(rename_steps.end(), steps.begin(), steps.end());
      for (double s : steps) rename_total += s;
    }
    bench::report_samples("thm5/renaming", "adaptive_strong", "simulated", k,
                          rename_steps);
    const double rename_mean = rename_total / (kRuns * k);

    table.add_row({std::to_string(k), stats::Table::num(bound),
                   stats::Table::num(wakeup_mean),
                   stats::Table::num(rename_mean),
                   stats::Table::num(bound > 0 ? rename_mean / bound : 0, 2)});
    if (rename_mean < bound) {
      std::cerr << "VALIDATION FAILED: measured cost below the lower bound\n";
      std::exit(1);
    }
  }
  table.print(std::cout);
}

void fai_bound() {
  bench::print_header(
      "Cor. 4: fetch-and-increment lower bound",
      "Any f&i terminating with probability c costs Omega(c log k); the "
      "analytic bound per k and c.");
  stats::Table table({"k", "c=1.0", "c=0.5", "c=0.1"});
  for (int k : bench::sweep_or_first<int>({2, 8, 64, 1024})) {
    table.add_row({std::to_string(k),
                   stats::Table::num(wakeup::step_lower_bound(1.0, k)),
                   stats::Table::num(wakeup::step_lower_bound(0.5, k)),
                   stats::Table::num(wakeup::step_lower_bound(0.1, k))});
  }
  table.print(std::cout);
}

}  // namespace
}  // namespace renamelib

int main(int argc, char** argv) {
  renamelib::bench::parse_args(argc, argv);
  renamelib::bound_vs_measured();
  renamelib::fai_bound();
  return renamelib::bench::finish();
}
