/// \file
/// \brief POSIX shared-memory arena: the placement layer that puts a
/// registry-built shared object (and the proc backend's mailboxes, gossip
/// tables, and barriers) into memory that survives fork() as *shared* pages.
///
/// The multi-process backend (proc_backend.h) runs one OS process per
/// scenario pid. fork() gives children copy-on-write copies of the parent's
/// heap, so an object constructed with plain `new` silently degrades into N
/// private counters. The arena fixes that at the allocation layer instead of
/// rewriting any structure: an ArenaScope routes the *global* operator
/// new/delete through a bump allocator over one shm_open/mmap(MAP_SHARED)
/// mapping, so `Registry::make_counter(...)` executed inside the scope lands
/// every internal allocation — RegisterArrays, stripe slots, lease slot
/// words, vtable-carrying adapter objects — in shared memory. Children
/// inherit the mapping at the same address, so vtable pointers and interior
/// pointers stay valid in every process; the structures themselves are flat
/// std::atomic words (lock-free ⇒ address-free per [atomics.lockfree]), so
/// the cross-process semantics are the ones the paper assumes.
///
/// Lifecycle discipline (the part that keeps /dev/shm clean):
///   * names are uniquified by pid + caller tag + a process-local counter,
///     so two concurrent runs can never collide on a segment;
///   * the segment is created O_CREAT|O_EXCL — attaching to a *stale* arena
///     left by a killed prior run is detected (EEXIST, or a nonzero magic in
///     freshly mapped pages) and refused: the stale name is unlinked and a
///     fresh segment created, never silently reattached (RENAMELIB_ENSURE);
///   * the name is shm_unlink()ed immediately after mmap succeeds. The
///     kernel keeps the pages alive until the last unmap, children inherit
///     the mapping through fork without ever needing the name, and a parent
///     killed at *any* later point (SIGKILL included) cannot leak a segment.
///     The short open→unlink window is additionally covered by a registered
///     atexit cleanup and by unlink-before-throw on every constructor error
///     path.
///
/// Deallocation: operator delete of an arena pointer is a no-op (the arena
/// is dropped wholesale at unmap). Objects allocated from an arena must be
/// destroyed before the arena itself — after unmap the address range can be
/// recycled by malloc, and a late free of an arena pointer would corrupt the
/// allocator. The proc harness enforces this ordering by scoping the object
/// inside the arena's lifetime.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace renamelib::proc {

/// One shared-memory bump arena (see file comment for the lifecycle).
class ShmArena {
 public:
  /// Creates a fresh shared segment of `bytes` (rounded up to the page
  /// size). `tag` feeds the name (callers pass the scenario seed so a
  /// segment is attributable in diagnostics). Throws std::runtime_error on
  /// OS-level failure; refuses stale segments (see file comment).
  explicit ShmArena(std::size_t bytes, std::uint64_t tag = 0);

  /// Unmaps the segment (the already-unlinked kernel object dies with the
  /// last unmap — the children's inherited mappings count).
  ~ShmArena();

  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  /// Bump-allocates `bytes` at `align` from the shared region. Cross-process
  /// safe (atomic bump), never reused until the arena dies. Aborts via
  /// RENAMELIB_ENSURE when the arena is exhausted.
  void* alloc(std::size_t bytes, std::size_t align);

  /// True iff `p` points into this arena's mapping.
  bool contains(const void* p) const noexcept;

  /// Mapped capacity in bytes (allocatable region, header excluded).
  std::size_t capacity() const noexcept { return data_bytes_; }
  /// Bytes already bump-allocated.
  std::size_t used() const noexcept;

  /// The (already unlinked) shm name this arena was created under — kept for
  /// diagnostics only; no process can reattach by name.
  const std::string& name() const noexcept { return name_; }

  /// The most recently constructed still-live arena (nullptr outside a proc
  /// run). The proc backend lays its mailboxes/gossip region out here.
  static ShmArena* current() noexcept;

 private:
  std::string name_;
  void* base_ = nullptr;        ///< mapping base (header at offset 0)
  std::size_t map_bytes_ = 0;   ///< total mapping length
  std::size_t data_bytes_ = 0;  ///< allocatable bytes after the header
};

/// Routes the global operator new through `arena` for the current thread
/// while in scope — the construction window in which registry factories
/// place a shared object into the arena. Scopes nest LIFO per thread.
///
/// Lazily-constructed process singletons (Registry::global(), the obs
/// event bus) must be materialized *before* opening a scope, or their
/// one-time allocations would land in — and die with — the arena; the scope
/// constructor defensively touches the known obs singletons itself.
class ArenaScope {
 public:
  explicit ArenaScope(ShmArena& arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  ShmArena* saved_;
};

/// True iff `p` lies inside any live arena (the operator-delete range test;
/// one relaxed load when no arena has ever existed).
bool arena_owns(const void* p) noexcept;

}  // namespace renamelib::proc
