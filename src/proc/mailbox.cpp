#include "proc/mailbox.h"

#include <cstring>
#include <new>

#include "core/assert.h"
#include "proc/gossip.h"

namespace renamelib::proc {
namespace {
std::size_t align64(std::size_t v) { return (v + 63) & ~std::size_t{63}; }
}  // namespace

std::size_t Layout::bytes_for(int nproc, int ring_ops) {
  const auto n = static_cast<std::size_t>(nproc);
  std::size_t b = align64(sizeof(Control));
  b += n * align64(sizeof(Mailbox));
  b += align64(n * static_cast<std::size_t>(ring_ops) * sizeof(OpSlot));
  b += GossipGrid::bytes_for(nproc);
  return b + 64 * (n + 8);  // per-allocation alignment slack
}

Layout Layout::create(ShmArena& arena, int nproc, int ring_ops) {
  RENAMELIB_ENSURE(nproc >= 1 && nproc <= kMaxProcs,
                   "proc backend supports 1..kMaxProcs processes");
  RENAMELIB_ENSURE(ring_ops >= 0, "negative ring capacity");
  Layout l;
  l.nproc = nproc;
  l.ring_ops = ring_ops;
  l.control = new (arena.alloc(sizeof(Control), 64)) Control();
  l.mailboxes = static_cast<Mailbox*>(
      arena.alloc(sizeof(Mailbox) * static_cast<std::size_t>(nproc), 64));
  for (int p = 0; p < nproc; ++p) new (&l.mailboxes[p]) Mailbox();
  if (ring_ops > 0) {
    const std::size_t ring_bytes = static_cast<std::size_t>(nproc) *
                                   static_cast<std::size_t>(ring_ops) *
                                   sizeof(OpSlot);
    l.rings = static_cast<OpSlot*>(arena.alloc(ring_bytes, 64));
    std::memset(static_cast<void*>(l.rings), 0, ring_bytes);
  }
  l.gossip = arena.alloc(GossipGrid::bytes_for(nproc), 64);
  GossipGrid grid(l.gossip, nproc);
  grid.construct();
  return l;
}

}  // namespace renamelib::proc
