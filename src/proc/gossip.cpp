#include "proc/gossip.h"

#include <cstring>
#include <memory>
#include <new>

#include "core/assert.h"

namespace renamelib::proc {
namespace {

constexpr std::size_t kNodeStride = ((sizeof(GossipNode) + 63) / 64) * 64;
constexpr std::size_t kEntryStride = ((sizeof(GossipEntry) + 63) / 64) * 64;

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  // FNV-1a over the 8 bytes of v.
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv_double(std::uint64_t h, double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return fnv(h, bits);
}

std::uint64_t hash_contribution(std::uint64_t h, const Contribution& c) {
  h = fnv(h, c.origin);
  h = fnv(h, c.finished);
  h = fnv_double(h, c.proc_steps);
  h = fnv(h, c.end_ns);
  h = fnv(h, c.metrics.ops);
  h = fnv(h, c.metrics.steps);
  h = fnv(h, c.metrics.shared_steps);
  h = fnv(h, c.metrics.coin_flips);
  h = fnv(h, c.metrics.max_op_steps);
  h = fnv(h, c.metrics.max_proc_steps);
  h = fnv(h, c.latency.count);
  h = fnv(h, c.latency.min);
  h = fnv(h, c.latency.max);
  h = fnv_double(h, c.latency.sum);
  h = fnv_double(h, c.latency.sum_sq);
  for (std::size_t i = 0; i < stats::LatencyBuckets::kCount; ++i) {
    // Dense histograms are mostly zero: hash (index, count) of the nonzero
    // buckets only — position-exact, O(nonzero) work.
    if (c.latency.buckets[i] != 0) {
      h = fnv(h, i);
      h = fnv(h, c.latency.buckets[i]);
    }
  }
  for (std::size_t i = 0; i < obs::kSiteCount; ++i) {
    if (c.events.counts[i] != 0) {
      h = fnv(h, i);
      h = fnv(h, c.events.counts[i]);
    }
  }
  return h;
}

}  // namespace

GossipGrid::GossipGrid(void* base, int n)
    : base_(static_cast<char*>(base)), n_(n) {
  RENAMELIB_ENSURE(n > 0 && n <= kMaxProcs,
                   "gossip grid needs 1..kMaxProcs participants");
  RENAMELIB_ENSURE((reinterpret_cast<std::uintptr_t>(base) & 63) == 0,
                   "gossip grid storage must be 64-byte aligned");
}

std::size_t GossipGrid::bytes_for(int n) {
  const auto un = static_cast<std::size_t>(n);
  return un * kNodeStride + un * un * kEntryStride;
}

void GossipGrid::construct() {
  for (int i = 0; i < n_; ++i) {
    new (&node(i)) GossipNode();
    for (int o = 0; o < n_; ++o) new (&entry(i, o)) GossipEntry();
  }
}

GossipNode& GossipGrid::node(int i) {
  return *reinterpret_cast<GossipNode*>(base_ +
                                        static_cast<std::size_t>(i) * kNodeStride);
}

const GossipNode& GossipGrid::node(int i) const {
  return const_cast<GossipGrid*>(this)->node(i);
}

GossipEntry& GossipGrid::entry(int i, int origin) {
  char* entries = base_ + static_cast<std::size_t>(n_) * kNodeStride;
  const std::size_t ix =
      static_cast<std::size_t>(i) * static_cast<std::size_t>(n_) +
      static_cast<std::size_t>(origin);
  return *reinterpret_cast<GossipEntry*>(entries + ix * kEntryStride);
}

const GossipEntry& GossipGrid::entry(int i, int origin) const {
  return const_cast<GossipGrid*>(this)->entry(i, origin);
}

std::uint64_t gossip_fingerprint(const GossipGrid& g, int i,
                                 std::uint64_t participants) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  std::uint64_t known = 0;
  for (int o = 0; o < g.n(); ++o) {
    if ((participants >> o & 1) == 0) continue;
    const GossipEntry& e = g.entry(i, o);
    if (e.valid.load(std::memory_order_acquire) == 0) continue;
    known |= 1ULL << o;
    h = hash_contribution(h, e.c);
  }
  return fnv(h, known);
}

void gossip_publish(GossipGrid& g, int i, const Contribution& own) {
  GossipEntry& e = g.entry(i, i);
  e.c = own;
  e.valid.store(1, std::memory_order_release);
  GossipNode& n = g.node(i);
  n.known.store(1ULL << i, std::memory_order_relaxed);
  n.fingerprint.store(gossip_fingerprint(g, i, 1ULL << i),
                      std::memory_order_relaxed);
  n.round.store(1, std::memory_order_release);
}

void gossip_exchange(GossipGrid& g, int i, std::uint64_t participants,
                     std::uint64_t r) {
  std::uint64_t known = g.node(i).known.load(std::memory_order_relaxed);
  for (int peer = 0; peer < g.n(); ++peer) {
    if (peer == i || (participants >> peer & 1) == 0) continue;
    for (int o = 0; o < g.n(); ++o) {
      if ((participants >> o & 1) == 0) continue;
      if (known >> o & 1) continue;  // copy-if-unknown: idempotent
      const GossipEntry& src = g.entry(peer, o);
      if (src.valid.load(std::memory_order_acquire) == 0) continue;
      GossipEntry& dst = g.entry(i, o);
      dst.c = src.c;
      dst.valid.store(1, std::memory_order_release);
      known |= 1ULL << o;
    }
  }
  GossipNode& n = g.node(i);
  n.known.store(known, std::memory_order_relaxed);
  n.fingerprint.store(gossip_fingerprint(g, i, participants),
                      std::memory_order_relaxed);
  n.round.store(r, std::memory_order_release);
}

bool gossip_converged(const GossipGrid& g, std::uint64_t participants,
                      std::uint64_t r) {
  bool have_fp = false;
  std::uint64_t fp = 0;
  for (int p = 0; p < g.n(); ++p) {
    if ((participants >> p & 1) == 0) continue;
    const GossipNode& n = g.node(p);
    if (n.round.load(std::memory_order_acquire) < r) return false;
    if (n.known.load(std::memory_order_relaxed) != participants) return false;
    const std::uint64_t f = n.fingerprint.load(std::memory_order_relaxed);
    if (!have_fp) {
      fp = f;
      have_fp = true;
    } else if (f != fp) {
      return false;
    }
  }
  return have_fp;
}

GossipFold gossip_fold(const GossipGrid& g, int i, std::uint64_t participants) {
  GossipFold fold;
  for (int o = 0; o < g.n(); ++o) {
    if ((participants >> o & 1) == 0) continue;
    const GossipEntry& e = g.entry(i, o);
    RENAMELIB_ENSURE(e.valid.load(std::memory_order_acquire) != 0,
                     "gossip fold on a non-converged table");
    const Contribution& c = e.c;
    c.metrics.merge_into(fold.metrics);
    fold.latency.merge(c.latency.load());
    fold.events.merge(c.events.load());
    if (c.finished != 0) {
      fold.proc_steps.push_back(c.proc_steps);
      fold.finished += 1;
    }
    if (c.end_ns > fold.max_end_ns) fold.max_end_ns = c.end_ns;
  }
  return fold;
}

GossipOutcome run_gossip_inproc(const std::vector<Contribution>& contribs) {
  const int n = static_cast<int>(contribs.size());
  const std::size_t bytes = GossipGrid::bytes_for(n);
  struct AlignedFree {
    void operator()(void* p) const { ::operator delete(p, std::align_val_t(64)); }
  };
  std::unique_ptr<void, AlignedFree> storage(
      ::operator new(bytes, std::align_val_t(64)));
  GossipGrid g(storage.get(), n);
  g.construct();

  std::uint64_t participants = 0;
  for (int i = 0; i < n; ++i) participants |= 1ULL << i;

  // Phase-stepped protocol: every node completes round r before any node
  // starts r+1 — the sequential equivalent of the shm barrier.
  for (int i = 0; i < n; ++i) gossip_publish(g, i, contribs[static_cast<std::size_t>(i)]);
  std::uint64_t rounds = 1;
  bool converged = false;
  for (std::uint64_t r = 2; r <= kMaxGossipRounds && !converged; ++r) {
    for (int i = 0; i < n; ++i) gossip_exchange(g, i, participants, r);
    rounds = r;
    // The confirmation read is itself a communication round.
    if (gossip_converged(g, participants, r)) {
      rounds = r + 1;
      converged = true;
    }
  }
  RENAMELIB_ENSURE(converged, "in-process gossip failed to converge");
  GossipOutcome out;
  out.rounds = rounds;
  for (int i = 0; i < n; ++i) {
    g.node(i).done_rounds.store(rounds, std::memory_order_relaxed);
    out.folds.push_back(gossip_fold(g, i, participants));
  }
  return out;
}

}  // namespace renamelib::proc
