/// \file
/// \brief The shared-memory wire format of the proc backend: POD mirrors of
/// the mergeable telemetry types (api::Metrics, stats::LatencySnapshot,
/// obs::EventSnapshot), per-process mailboxes, crash-surviving op rings, and
/// the control block (start barrier, crash plan, gossip release) — laid out
/// into a ShmArena by Layout::create.
///
/// Everything here is trivially-copyable, fixed-size, and self-contained
/// (no pointers), because these structures are written in one process and
/// read in another: a Contribution is copied *whole* between gossip tables,
/// and an OpSlot written by a worker that is then SIGKILLed must still parse
/// in the parent. The POD↔rich-type conversions are exact — LatencyPod
/// round-trips through LatencySnapshot::from_parts bit-for-bit, which is
/// what makes the gossip-merged aggregate equal the per-process sums
/// exactly (the acceptance bar for this backend).
#pragma once

#include <atomic>
#include <cstdint>

#include "api/metrics.h"
#include "obs/event_bus.h"
#include "proc/shm_arena.h"
#include "stats/latency_recorder.h"

namespace renamelib::proc {

/// Upper bound on Scenario::nproc for the proc backend: participant and
/// origin sets travel as one u64 bitmask through the gossip protocol.
inline constexpr int kMaxProcs = 64;

/// Operation-kind string table in the control block. The harness uses at
/// most five kinds per run ({history_kind, "fai", "rename", "inc", "read"}).
inline constexpr int kMaxKinds = 8;
inline constexpr int kKindLen = 24;

/// POD mirror of api::Metrics (wall_seconds excluded: wall time is computed
/// parent-side from the shared start stamp and the gossiped end stamps).
struct MetricsPod {
  std::uint64_t ops = 0;
  std::uint64_t steps = 0;
  std::uint64_t shared_steps = 0;
  std::uint64_t coin_flips = 0;
  std::uint64_t max_op_steps = 0;
  std::uint64_t max_proc_steps = 0;

  void store(const api::Metrics& m) {
    ops = m.ops;
    steps = m.steps;
    shared_steps = m.shared_steps;
    coin_flips = m.coin_flips;
    max_op_steps = m.max_op_steps;
    max_proc_steps = m.max_proc_steps;
  }

  /// Folds this partial into `m` with api::Metrics::merge semantics
  /// (sums for totals, maxima for the max_* fields).
  void merge_into(api::Metrics& m) const {
    api::Metrics o;
    o.ops = ops;
    o.steps = steps;
    o.shared_steps = shared_steps;
    o.coin_flips = coin_flips;
    o.max_op_steps = max_op_steps;
    o.max_proc_steps = max_proc_steps;
    m.merge(o);
  }
};

/// POD mirror of stats::LatencySnapshot: dense log-bucket counts plus the
/// exact moments. load() rebuilds through from_parts, so the round-trip is
/// exact (same buckets, same moments, bit-for-bit).
struct LatencyPod {
  std::uint64_t count = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double sum = 0;
  double sum_sq = 0;
  std::uint64_t buckets[stats::LatencyBuckets::kCount] = {};

  void store(const stats::LatencySnapshot& s) {
    count = s.count();
    min = s.min();
    max = s.max();
    sum = s.sum();
    sum_sq = s.sum_sq();
    for (std::size_t i = 0; i < stats::LatencyBuckets::kCount; ++i) {
      buckets[i] = s.bucket(i);
    }
  }

  stats::LatencySnapshot load() const {
    std::vector<stats::LatencySnapshot::Bar> bars;
    for (std::size_t i = 0; i < stats::LatencyBuckets::kCount; ++i) {
      if (buckets[i] != 0) {
        bars.push_back({stats::LatencyBuckets::lower(i),
                        stats::LatencyBuckets::upper(i), buckets[i]});
      }
    }
    return stats::LatencySnapshot::from_parts(count, sum, sum_sq, min, max,
                                              bars);
  }
};

/// POD mirror of obs::EventSnapshot (the per-site monotone counters).
struct EventsPod {
  std::uint64_t counts[obs::kSiteCount] = {};

  void store(const obs::EventSnapshot& s) {
    for (std::size_t i = 0; i < obs::kSiteCount; ++i) {
      counts[i] = s.count(static_cast<obs::Site>(i));
    }
  }

  obs::EventSnapshot load() const {
    obs::EventSnapshot s;
    for (std::size_t i = 0; i < obs::kSiteCount; ++i) {
      s.set(static_cast<obs::Site>(i), counts[i]);
    }
    return s;
  }
};

/// One process's finished-run result, keyed by origin pid — the replication
/// unit of the gossip protocol. The payloads are *additive* (not
/// idempotent), so gossip never merges two Contributions into one: nodes
/// replicate whole per-origin entries (copy-if-unknown, which *is*
/// idempotent) and fold them exactly once at the end.
struct Contribution {
  std::uint32_t origin = 0;    ///< pid whose run this describes
  std::uint32_t finished = 1;  ///< body ran to completion
  double proc_steps = 0;       ///< the process's total paper-model steps
  std::uint64_t end_ns = 0;    ///< steady-clock stamp at publication
  MetricsPod metrics;
  LatencyPod latency;
  EventsPod events;
};

/// One completed operation in a process's crash-surviving ring. Written
/// slot-first, then announced by a release-increment of
/// Mailbox::published_ops — so every announced slot is fully written even
/// if the writer is SIGKILLed one instruction later.
struct OpSlot {
  std::uint64_t value = 0;
  std::uint64_t steps = 0;
  std::uint32_t kind = 0;  ///< index into Control::kinds
  std::uint32_t pad = 0;
};

/// Per-process mailbox: crash-visible progress flags plus the finished-run
/// Contribution.
struct alignas(64) Mailbox {
  /// Ops announced into this process's ring (survives SIGKILL of the owner).
  std::atomic<std::uint64_t> published_ops{0};
  /// The owner is a crash victim spinning at its seed-derived crash point,
  /// waiting for the parent's SIGKILL.
  std::atomic<std::uint32_t> parked{0};
  /// The Contribution below is complete (set with release ordering last).
  std::atomic<std::uint32_t> ready{0};
  Contribution contrib;
};

/// The shared control block: start barrier, wall-clock origin, crash plan,
/// survivor set, and the gossip release flag.
struct alignas(64) Control {
  /// Sense-reversing barrier (start of run, then between gossip rounds).
  std::atomic<std::uint32_t> bar_count{0};
  std::atomic<std::uint32_t> bar_sense{0};
  /// Steady-clock stamp taken by the barrier releaser at the start barrier —
  /// CLOCK_MONOTONIC is system-wide, so workers' end stamps subtract cleanly.
  std::atomic<std::uint64_t> start_ns{0};
  /// Parent → survivors: the survivor set is final, gossip may begin.
  std::atomic<std::uint32_t> gossip_go{0};
  /// Bitmask of surviving pids (valid once gossip_go is set).
  std::atomic<std::uint64_t> participants{0};
  /// Seed-derived crash plan, written by the parent before fork: pid p parks
  /// for SIGKILL after completing crash_at[p] operations; 0 = survivor.
  std::int64_t crash_at[kMaxProcs] = {};
  /// Operation-kind string table (OpSlot::kind indexes it).
  std::uint32_t nkinds = 0;
  char kinds[kMaxKinds][kKindLen] = {};
};

/// Resolved addresses of the proc backend's shared regions inside a
/// ShmArena. Plain pointers are valid in parent and children alike because
/// fork() preserves the mapping address.
struct Layout {
  Control* control = nullptr;
  Mailbox* mailboxes = nullptr;  ///< nproc mailboxes
  OpSlot* rings = nullptr;       ///< nproc * ring_ops slots; null when ring_ops == 0
  void* gossip = nullptr;        ///< GossipGrid storage (gossip.h)
  int nproc = 0;
  int ring_ops = 0;  ///< ring capacity per process (0 = op samples off)

  Mailbox& mail(int p) const { return mailboxes[p]; }
  OpSlot* ring(int p) const {
    return rings + static_cast<std::size_t>(p) * static_cast<std::size_t>(ring_ops);
  }

  /// Carves all regions out of `arena` and placement-constructs them.
  static Layout create(ShmArena& arena, int nproc, int ring_ops);
  /// Bytes create() will consume (for arena sizing).
  static std::size_t bytes_for(int nproc, int ring_ops);
};

}  // namespace renamelib::proc
