#include "proc/shm_arena.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <stdexcept>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include "core/assert.h"
#include "fuzz/coverage.h"
#include "obs/event_bus.h"
#include "obs/flight_recorder.h"

namespace renamelib::proc {
namespace {

/// Magic stamped into a fresh segment's header once this process owns it. A
/// freshly created (O_EXCL) segment is all-zero; seeing this value in pages
/// we just created means the kernel handed us a stale object — refuse it.
constexpr std::uint64_t kArenaMagic = 0x524e4d4c41524e41ULL;  // "RNMLARNA"

struct ArenaHeader {
  std::atomic<std::uint64_t> magic;
  std::atomic<std::uint64_t> next;  ///< bump offset, relative to data start
};

constexpr std::size_t kHeaderBytes = 64;  // keeps data region cache-aligned
static_assert(sizeof(ArenaHeader) <= kHeaderBytes);

/// Live-arena ranges for the operator-delete ownership test. Slots are
/// claimed on construction and zeroed on destruction so a malloc that later
/// recycles the unmapped address range is not misclassified.
constexpr int kMaxLiveArenas = 8;
struct LiveRange {
  std::atomic<std::uintptr_t> base{0};
  std::atomic<std::size_t> size{0};
};
LiveRange g_live[kMaxLiveArenas];
std::atomic<bool> g_any_arena{false};

/// LIFO of live arenas; top is ShmArena::current().
std::atomic<ShmArena*> g_stack[kMaxLiveArenas];
std::atomic<int> g_depth{0};

/// Names created but not yet unlinked (the open→unlink window only): a
/// best-effort atexit sweep for exits inside that window. SIGKILL during the
/// window is the one gap; it is a few instructions wide by construction.
char g_pending_name[kMaxLiveArenas][NAME_MAX];
std::atomic<bool> g_pending[kMaxLiveArenas];
std::atomic<bool> g_atexit_registered{false};

void cleanup_pending_names() {
  for (int i = 0; i < kMaxLiveArenas; ++i) {
    if (g_pending[i].load(std::memory_order_acquire)) {
      ::shm_unlink(g_pending_name[i]);
      g_pending[i].store(false, std::memory_order_release);
    }
  }
}

int register_pending(const std::string& name) {
  if (!g_atexit_registered.exchange(true, std::memory_order_acq_rel)) {
    std::atexit(&cleanup_pending_names);
  }
  for (int i = 0; i < kMaxLiveArenas; ++i) {
    bool expect = false;
    if (g_pending[i].compare_exchange_strong(expect, true,
                                             std::memory_order_acq_rel)) {
      std::snprintf(g_pending_name[i], sizeof(g_pending_name[i]), "%s",
                    name.c_str());
      return i;
    }
  }
  return -1;  // more in-flight creations than slots: fall back to no cover
}

void clear_pending(int slot) {
  if (slot >= 0) g_pending[slot].store(false, std::memory_order_release);
}

/// The thread's active arena for operator-new routing. Constant-initialized:
/// the replaced operator new runs before any dynamic initializer.
thread_local ShmArena* tl_active = nullptr;

std::size_t round_up(std::size_t v, std::size_t align) {
  return (v + align - 1) & ~(align - 1);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

ShmArena::ShmArena(std::size_t bytes, std::uint64_t tag) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  char buf[NAME_MAX];
  std::snprintf(buf, sizeof(buf), "/renamelib-%ld-%llx-%llu",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(tag),
                static_cast<unsigned long long>(n));
  name_ = buf;

  const long page = ::sysconf(_SC_PAGESIZE);
  map_bytes_ = round_up(kHeaderBytes + bytes, static_cast<std::size_t>(page));
  data_bytes_ = map_bytes_ - kHeaderBytes;

  const int pending = register_pending(name_);
  int fd = ::shm_open(name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0 && errno == EEXIST) {
    // A stale segment from a killed prior run under our exact name (possible
    // only after pid reuse). Never reattach: discard it and create fresh.
    std::fprintf(stderr,
                 "renamelib: discarding stale shm segment %s from a dead "
                 "prior run\n",
                 name_.c_str());
    ::shm_unlink(name_.c_str());
    fd = ::shm_open(name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  }
  if (fd < 0) {
    clear_pending(pending);
    throw_errno("shm_open(" + name_ + ")");
  }
  if (::ftruncate(fd, static_cast<off_t>(map_bytes_)) != 0) {
    ::close(fd);
    ::shm_unlink(name_.c_str());
    clear_pending(pending);
    throw_errno("ftruncate(" + name_ + ")");
  }
  base_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                 0);
  ::close(fd);
  if (base_ == MAP_FAILED) {
    base_ = nullptr;
    ::shm_unlink(name_.c_str());
    clear_pending(pending);
    throw_errno("mmap(" + name_ + ")");
  }
  // Unlink immediately: the kernel object now lives exactly as long as the
  // last mapping (children inherit the mapping through fork), so no exit
  // path — parent SIGKILL included — can leak a /dev/shm entry.
  ::shm_unlink(name_.c_str());
  clear_pending(pending);

  auto* h = reinterpret_cast<ArenaHeader*>(base_);
  RENAMELIB_ENSURE(h->magic.load(std::memory_order_acquire) == 0,
                   "shm arena: freshly created segment carries a live magic "
                   "word — refusing to silently reattach a stale arena");
  h->next.store(0, std::memory_order_relaxed);
  h->magic.store(kArenaMagic, std::memory_order_release);

  // Publish the range for arena_owns(), then push onto the live stack.
  int slot = -1;
  for (int i = 0; i < kMaxLiveArenas; ++i) {
    std::uintptr_t expect = 0;
    if (g_live[i].base.compare_exchange_strong(
            expect, reinterpret_cast<std::uintptr_t>(base_),
            std::memory_order_acq_rel)) {
      g_live[i].size.store(map_bytes_, std::memory_order_release);
      slot = i;
      break;
    }
  }
  RENAMELIB_ENSURE(slot >= 0, "shm arena: too many live arenas");
  g_any_arena.store(true, std::memory_order_release);
  const int d = g_depth.fetch_add(1, std::memory_order_acq_rel);
  RENAMELIB_ENSURE(d < kMaxLiveArenas, "shm arena: live-arena stack overflow");
  g_stack[d].store(this, std::memory_order_release);
}

ShmArena::~ShmArena() {
  const int d = g_depth.fetch_sub(1, std::memory_order_acq_rel) - 1;
  RENAMELIB_ENSURE(d >= 0 && g_stack[d].load(std::memory_order_acquire) == this,
                   "shm arena: arenas must be destroyed LIFO");
  g_stack[d].store(nullptr, std::memory_order_release);
  for (int i = 0; i < kMaxLiveArenas; ++i) {
    if (g_live[i].base.load(std::memory_order_acquire) ==
        reinterpret_cast<std::uintptr_t>(base_)) {
      g_live[i].size.store(0, std::memory_order_release);
      g_live[i].base.store(0, std::memory_order_release);
      break;
    }
  }
  ::munmap(base_, map_bytes_);
}

void* ShmArena::alloc(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (align < alignof(std::max_align_t)) align = alignof(std::max_align_t);
  auto* h = reinterpret_cast<ArenaHeader*>(base_);
  std::uint64_t cur = h->next.load(std::memory_order_relaxed);
  std::uint64_t aligned, end;
  do {
    // Align the *absolute* address, not the bump offset: data starts at
    // base_ + kHeaderBytes, and the mmap base is only page-aligned, so for
    // align in (kHeaderBytes, page] the two differ.
    aligned = round_up(cur + kHeaderBytes, align) - kHeaderBytes;
    end = aligned + bytes;
    RENAMELIB_ENSURE(end <= data_bytes_,
                     "shm arena exhausted — raise the arena size for this "
                     "scenario (default_arena_bytes)");
  } while (!h->next.compare_exchange_weak(cur, end, std::memory_order_acq_rel,
                                          std::memory_order_relaxed));
  return static_cast<char*>(base_) + kHeaderBytes + aligned;
}

bool ShmArena::contains(const void* p) const noexcept {
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  const auto b = reinterpret_cast<std::uintptr_t>(base_);
  return a >= b && a < b + map_bytes_;
}

std::size_t ShmArena::used() const noexcept {
  return reinterpret_cast<const ArenaHeader*>(base_)->next.load(
      std::memory_order_relaxed);
}

ShmArena* ShmArena::current() noexcept {
  const int d = g_depth.load(std::memory_order_acquire);
  return d > 0 ? g_stack[d - 1].load(std::memory_order_acquire) : nullptr;
}

ArenaScope::ArenaScope(ShmArena& arena) : saved_(tl_active) {
  // Materialize lazily-constructed obs singletons in private memory before
  // any allocation can be routed into the (mortal) arena.
  obs::EventBus::instance();
  obs::FlightRecorder::instance();
  fuzz::Coverage::instance();
  tl_active = &arena;
}

ArenaScope::~ArenaScope() { tl_active = saved_; }

bool arena_owns(const void* p) noexcept {
  if (!g_any_arena.load(std::memory_order_acquire)) return false;
  const auto a = reinterpret_cast<std::uintptr_t>(p);
  for (int i = 0; i < kMaxLiveArenas; ++i) {
    const std::uintptr_t b = g_live[i].base.load(std::memory_order_acquire);
    if (b == 0) continue;
    const std::size_t sz = g_live[i].size.load(std::memory_order_acquire);
    if (a >= b && a < b + sz) return true;
  }
  return false;
}

namespace detail {

void* route_new(std::size_t bytes, std::size_t align) noexcept {
  if (ShmArena* a = tl_active) return a->alloc(bytes, align);
  if (align > alignof(std::max_align_t)) {
    void* p = nullptr;
    if (::posix_memalign(&p, align, bytes == 0 ? align : bytes) != 0)
      return nullptr;
    return p;
  }
  return std::malloc(bytes == 0 ? 1 : bytes);
}

void route_delete(void* p) noexcept {
  if (p == nullptr || arena_owns(p)) return;  // arena memory dies wholesale
  std::free(p);
}

}  // namespace detail
}  // namespace renamelib::proc

// ---------------------------------------------------------------------------
// Global operator new/delete replacement. Outside an ArenaScope this is a
// thin veneer over malloc/free (one thread-local load, one range check with
// an early-out when no arena has ever existed); inside a scope, allocations
// land in the shared arena. All replaceable forms are covered so that
// alignas(64) structures, arrays, sized and nothrow deletes all route
// consistently.
// ---------------------------------------------------------------------------

namespace {
void* checked(void* p) {
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) {
  return checked(
      renamelib::proc::detail::route_new(n, alignof(std::max_align_t)));
}
void* operator new[](std::size_t n) {
  return checked(
      renamelib::proc::detail::route_new(n, alignof(std::max_align_t)));
}
void* operator new(std::size_t n, std::align_val_t al) {
  return checked(
      renamelib::proc::detail::route_new(n, static_cast<std::size_t>(al)));
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return checked(
      renamelib::proc::detail::route_new(n, static_cast<std::size_t>(al)));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return renamelib::proc::detail::route_new(n, alignof(std::max_align_t));
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return renamelib::proc::detail::route_new(n, alignof(std::max_align_t));
}
void* operator new(std::size_t n, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return renamelib::proc::detail::route_new(n, static_cast<std::size_t>(al));
}
void* operator new[](std::size_t n, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return renamelib::proc::detail::route_new(n, static_cast<std::size_t>(al));
}

void operator delete(void* p) noexcept {
  renamelib::proc::detail::route_delete(p);
}
void operator delete[](void* p) noexcept {
  renamelib::proc::detail::route_delete(p);
}
void operator delete(void* p, std::size_t) noexcept {
  renamelib::proc::detail::route_delete(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  renamelib::proc::detail::route_delete(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  renamelib::proc::detail::route_delete(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  renamelib::proc::detail::route_delete(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  renamelib::proc::detail::route_delete(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  renamelib::proc::detail::route_delete(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  renamelib::proc::detail::route_delete(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  renamelib::proc::detail::route_delete(p);
}
