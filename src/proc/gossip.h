/// \file
/// \brief Coordinator-free telemetry merge: all-to-all gossip over the
/// shared-memory mailboxes, converging in exactly 3 rounds.
///
/// Every worker finishes its run holding one Contribution — an *additive*
/// payload (op counts, latency buckets, event counters) keyed by its pid.
/// Additive payloads cannot be gossiped by naive re-merging: delivering the
/// same partial twice double-counts it. The protocol therefore replicates
/// whole per-origin entries with a copy-if-unknown rule, which *is*
/// idempotent, and folds each origin exactly once at the end. With the
/// all-to-all (complete-graph) exchange this pins the round count at a
/// constant, independent of N — the "Constant Convergence Theorem" shape
/// from SNIPPETS.md (algebraically mergeable state converges in 3 rounds):
///
///   round 1  publish: node i writes its own Contribution into its table
///            and announces (round=1, known={i}, fingerprint).
///   round 2  exchange: node i copies every entry it lacks from every
///            peer's table. All peers published in round 1, so after this
///            round every node's table is complete (diameter 1).
///   round 3  confirm: node i reads every peer's round-2 announcement and
///            observes (known == participants ∧ fingerprints agree)
///            everywhere — the merge is known-converged, not assumed.
///
/// Workers RENAMELIB_ENSURE convergence within kMaxGossipRounds and record
/// the observed count (Run::gossip_rounds); the in-process driver below lets
/// unit tests assert the exact-3 bound for any N against a directly-summed
/// oracle, without forking.
///
/// The parent never aggregates by reading workers' mailboxes: Run's
/// aggregate metrics are folded from a *converged gossip table* (any
/// survivor's — they are fingerprint-identical).
#pragma once

#include <cstdint>
#include <vector>

#include "proc/mailbox.h"

namespace renamelib::proc {

/// Rounds after which a worker declares the protocol broken. The theorem
/// says 3; the bound leaves headroom only for the ENSURE to be meaningful.
inline constexpr std::uint64_t kMaxGossipRounds = 6;

/// One node's gossip announcement: its last published round, the origin set
/// it knows, and a fingerprint of its table (order-independent by
/// construction — entries are hashed ascending by origin).
struct alignas(64) GossipNode {
  std::atomic<std::uint64_t> round{0};
  std::atomic<std::uint64_t> known{0};  ///< bitmask of origins in my table
  std::atomic<std::uint64_t> fingerprint{0};
  /// Rounds this node used until it *observed* convergence (set once, at the
  /// end; the parent asserts all nodes agree and the value is <= 3).
  std::atomic<std::uint64_t> done_rounds{0};
};

/// One replicated per-origin entry in a node's table. `valid` is set with
/// release ordering after the Contribution is fully copied.
struct alignas(64) GossipEntry {
  std::atomic<std::uint32_t> valid{0};
  Contribution c;
};

/// View over the gossip region: N announcement nodes plus an N×N table of
/// entries (entry(i, o) = node i's copy of origin o's Contribution). Works
/// over a ShmArena region (the proc backend) or private memory (unit
/// tests) — the protocol only needs the memory to be shared among the
/// participants.
class GossipGrid {
 public:
  /// Wraps `base` (at least bytes_for(n), 64-byte aligned) without owning it.
  GossipGrid(void* base, int n);

  /// Storage bytes for an N-participant grid.
  static std::size_t bytes_for(int n);

  /// Placement-constructs all nodes and entries in the wrapped storage.
  void construct();

  int n() const { return n_; }
  GossipNode& node(int i);
  const GossipNode& node(int i) const;
  GossipEntry& entry(int i, int origin);
  const GossipEntry& entry(int i, int origin) const;

 private:
  char* base_;
  int n_;
};

/// Round 1 for node i: installs its own Contribution and announces it.
void gossip_publish(GossipGrid& g, int i, const Contribution& own);

/// Round r >= 2 for node i: copy-if-unknown from every participant's table,
/// then announce (round=r, known, fingerprint). Idempotent per entry, so
/// re-running a round cannot double-count the additive payloads.
void gossip_exchange(GossipGrid& g, int i, std::uint64_t participants,
                     std::uint64_t r);

/// The confirmation read: true iff every participant has announced
/// round >= r with a complete origin set and all fingerprints agree.
bool gossip_converged(const GossipGrid& g, std::uint64_t participants,
                      std::uint64_t r);

/// Order-independent fingerprint of node i's table (FNV-1a over entries
/// ascending by origin; hashes fields, not raw bytes, so padding never
/// perturbs it).
std::uint64_t gossip_fingerprint(const GossipGrid& g, int i,
                                 std::uint64_t participants);

/// The exact fold of one converged table: every origin's Contribution merged
/// once through the snapshot algebra (Metrics::merge, LatencySnapshot::merge,
/// EventSnapshot::merge).
struct GossipFold {
  api::Metrics metrics;
  stats::LatencySnapshot latency;
  obs::EventSnapshot events;
  std::vector<double> proc_steps;  ///< per finished origin, ascending by pid
  std::size_t finished = 0;
  std::uint64_t max_end_ns = 0;
};
GossipFold gossip_fold(const GossipGrid& g, int i, std::uint64_t participants);

/// In-process protocol driver for unit tests: runs the full 3-round protocol
/// over private memory with a phase barrier between rounds (sequential node
/// stepping — the barrier semantics, without threads), and returns the
/// observed round count plus every node's fold. Callers assert
/// rounds == 3 (the theorem) and fold equality against a directly-summed
/// oracle.
struct GossipOutcome {
  std::uint64_t rounds = 0;
  std::vector<GossipFold> folds;  ///< one per participant, same order
};
GossipOutcome run_gossip_inproc(const std::vector<Contribution>& contribs);

}  // namespace renamelib::proc
