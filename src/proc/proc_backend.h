/// \file
/// \brief Backend::kProc — the multi-process execution substrate.
///
/// run_proc() fork()s Scenario::nproc worker processes over the current
/// ShmArena. The shared object under test was placement-constructed into
/// that arena (ArenaScope), so every process operates on the *same* flat
/// atomic words — the paper's asynchronous shared-memory processes made
/// literal, crash failures included:
///
///   parent                       worker p
///   ------                       --------
///   Layout::create(arena)
///   derive crash plan (seed)
///   fork() × N  ─────────────▶   start barrier (all N, stamps start_ns)
///                                metered op loop:
///                                  publish_op → ring[p] (crash-surviving)
///                                  victim at crash_at[p] ops: park, spin
///   poll parked victims
///   kill(SIGKILL) + reap   ───▶  (victim dies mid-run, for real)
///   poll survivors ready   ◀───  publish_done → mailbox Contribution
///   participants + gossip_go ─▶  3-round all-to-all gossip (gossip.h)
///   reap survivors (exit 0)◀───  _exit(0)
///   assert convergence ≤ 3 rounds
///   fold ONE converged table → Run
///
/// Aggregate metrics come exclusively from the gossip fold — the parent
/// never sums workers' mailboxes itself. The only direct mailbox reads are
/// the per-op sample rings (Run::ops), which necessarily include the
/// SIGKILLed victims' completed operations: dead processes cannot gossip,
/// but their published ops are exactly what the facet conformance
/// predicates must see (a killed worker's acquired names stay held).
///
/// Survivor results feed the *unchanged* conformance predicates; the lease
/// broker's epoch-tagged per-pid slots make a victim's escrowed range
/// reclaimable by any live process (LeaseBroker::reclaim), which the proc
/// crash tests assert drains holders() to zero.
#pragma once

#include <cstddef>
#include <functional>

#include "api/workload.h"
#include "proc/mailbox.h"

namespace renamelib::proc {

/// Arena bytes that comfortably hold the proc layout for `s` plus a
/// registry-built object (pages are touched lazily, so generous is cheap).
std::size_t default_arena_bytes(const api::Scenario& s);

/// Runs `body` (one call per process, pid-indexed Ctx) in s.nproc forked
/// processes over ShmArena::current(), then fills `run` from the
/// gossip-converged aggregate. Requires a live arena; the object the body
/// closes over must live inside it. Crash injection per s.crashes: victims
/// are SIGKILLed at seed-derived op counts, reaped, and counted in
/// run.crashed_procs.
void run_proc(const api::Scenario& s, const std::function<void(Ctx&)>& body,
              api::Run& run);

/// Worker-side publication hooks. current() is non-null exactly inside a
/// proc-backend child; the workload's metered loop routes its per-op and
/// end-of-run publication through it instead of the in-process mutex path.
class Worker {
 public:
  /// This process's hooks, or nullptr outside a proc worker.
  static Worker* current() noexcept;

  /// Publishes one completed op into the crash-surviving ring and then, if
  /// this worker is a crash victim that just reached its seed-derived op
  /// count, parks forever awaiting the parent's SIGKILL (never returns in
  /// that case).
  void publish_op(std::uint64_t value, std::uint64_t steps, const char* kind);

  /// Publishes the finished-run Contribution: metrics, the latency
  /// snapshot, the run's event-bus delta (relative to the fork point), and
  /// the process's total paper-model steps.
  void publish_done(const api::Metrics& m, const stats::LatencySnapshot& lat,
                    std::uint64_t proc_steps);

  /// Constructed once per child process by the backend's child entry point
  /// (captures the fork-time event-bus baseline); not for general use.
  Worker(const Layout& layout, int pid, std::int64_t crash_at);

 private:
  Layout layout_;
  int pid_;
  std::int64_t crash_at_;  ///< ops until park-for-SIGKILL; 0 = survivor
  std::uint64_t ops_done_ = 0;
  obs::EventSnapshot events_at_fork_;
  const char* last_kind_ = nullptr;  ///< memoized kind → table index
  std::uint32_t last_kind_ix_ = 0;
};

}  // namespace renamelib::proc
