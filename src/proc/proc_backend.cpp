#include "proc/proc_backend.h"

#include <bit>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "core/assert.h"
#include "core/rng.h"
#include "obs/emit.h"
#include "proc/gossip.h"

namespace renamelib::proc {
namespace {

Worker* g_worker = nullptr;

std::uint64_t now_ns() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// Supervision timeout: generous by default (covers sanitizer builds on
/// loaded CI), overridable for tests via RENAMELIB_PROC_TIMEOUT_MS.
std::uint64_t timeout_ns() {
  if (const char* e = std::getenv("RENAMELIB_PROC_TIMEOUT_MS")) {
    const long long ms = std::atoll(e);
    if (ms > 0) return static_cast<std::uint64_t>(ms) * 1'000'000ULL;
  }
  return 120'000'000'000ULL;  // 120 s
}

void brief_sleep() {
  timespec ts{0, 100'000};  // 100 us
  ::nanosleep(&ts, nullptr);
}

/// Sense-reversing barrier over the control block, used for the start line
/// (k = nproc; the releaser stamps the shared wall-clock origin) and between
/// gossip rounds (k = survivors). A stuck barrier aborts instead of hanging
/// the whole tree.
void barrier_wait(Control& ctl, std::uint32_t k, bool stamp_start) {
  const std::uint32_t sense = ctl.bar_sense.load(std::memory_order_acquire);
  if (ctl.bar_count.fetch_add(1, std::memory_order_acq_rel) + 1 == k) {
    if (stamp_start) ctl.start_ns.store(now_ns(), std::memory_order_relaxed);
    ctl.bar_count.store(0, std::memory_order_relaxed);
    ctl.bar_sense.store(sense ^ 1, std::memory_order_release);
    return;
  }
  const std::uint64_t deadline = now_ns() + timeout_ns();
  while (ctl.bar_sense.load(std::memory_order_acquire) == sense) {
    RENAMELIB_ENSURE(now_ns() < deadline,
                     "proc backend: barrier timed out (a sibling process "
                     "died or wedged)");
    brief_sleep();
  }
}

/// Seed-derived crash plan in *operation* counts: same victim selection
/// stream as the simulated backend (salt 0xC7A54), thresholds folded into
/// [1, ops_per_proc] so every victim provably reaches its park point.
std::vector<std::int64_t> derive_crash_plan(const api::Scenario& s) {
  std::vector<std::int64_t> crash_at(static_cast<std::size_t>(s.nproc), 0);
  if (!s.crashes.enabled()) return crash_at;
  Rng rng(Rng::derive(s.seed, /*salt=*/0xC7A54ULL));
  std::vector<int> pids(static_cast<std::size_t>(s.nproc));
  for (int p = 0; p < s.nproc; ++p) pids[static_cast<std::size_t>(p)] = p;
  for (std::size_t i = pids.size(); i > 1; --i) {
    std::swap(pids[i - 1], pids[rng.below(i)]);
  }
  const std::size_t victims =
      std::min(s.crashes.max_crashes, static_cast<std::size_t>(s.nproc));
  RENAMELIB_ENSURE(victims < static_cast<std::size_t>(s.nproc),
                   "proc backend needs at least one surviving process "
                   "(max_crashes < nproc)");
  const auto ops = static_cast<std::uint64_t>(s.ops_per_proc);
  for (std::size_t i = 0; i < victims; ++i) {
    const std::uint64_t draw = 1 + rng.below(s.crashes.crash_step_max);
    crash_at[static_cast<std::size_t>(pids[i])] =
        static_cast<std::int64_t>((draw - 1) % ops + 1);
  }
  return crash_at;
}

void fill_kind_table(Control& ctl, const api::Scenario& s) {
  const char* wanted[] = {"",    s.history_kind.c_str(), "fai",
                          "rename", "inc",               "read"};
  for (const char* k : wanted) {
    bool present = false;
    for (std::uint32_t i = 0; i < ctl.nkinds; ++i) {
      if (std::strcmp(ctl.kinds[i], k) == 0) {
        present = true;
        break;
      }
    }
    if (present) continue;
    RENAMELIB_ENSURE(ctl.nkinds < kMaxKinds, "kind table overflow");
    RENAMELIB_ENSURE(std::strlen(k) < kKindLen,
                     "operation kind name too long for the proc mailbox "
                     "kind table");
    std::snprintf(ctl.kinds[ctl.nkinds], kKindLen, "%s", k);
    ++ctl.nkinds;
  }
}

/// Worker-side epilogue: the 3-round gossip protocol (see gossip.h).
void run_gossip_as(const Layout& lay, int pid) {
  Control& ctl = *lay.control;
  const std::uint64_t deadline = now_ns() + timeout_ns();
  while (ctl.gossip_go.load(std::memory_order_acquire) == 0) {
    RENAMELIB_ENSURE(now_ns() < deadline,
                     "proc backend: worker timed out waiting for the gossip "
                     "release");
    brief_sleep();
  }
  const std::uint64_t participants =
      ctl.participants.load(std::memory_order_acquire);
  RENAMELIB_ENSURE((participants >> pid) & 1,
                   "surviving worker missing from the participant set");
  const auto k = static_cast<std::uint32_t>(std::popcount(participants));
  GossipGrid grid(lay.gossip, lay.nproc);
  gossip_publish(grid, pid, lay.mail(pid).contrib);
  barrier_wait(ctl, k, false);
  std::uint64_t rounds = 1;
  bool converged = false;
  for (std::uint64_t r = 2; r <= kMaxGossipRounds && !converged; ++r) {
    gossip_exchange(grid, pid, participants, r);
    barrier_wait(ctl, k, false);
    rounds = r;
    // All survivors read the same post-barrier state, so they reach the
    // same verdict — the confirmation read is the protocol's final round.
    if (gossip_converged(grid, participants, r)) {
      rounds = r + 1;
      converged = true;
    }
  }
  RENAMELIB_ENSURE(converged, "gossip failed to converge");
  RENAMELIB_ENSURE(rounds <= 3,
                   "gossip exceeded the constant 3-round convergence bound");
  grid.node(pid).done_rounds.store(rounds, std::memory_order_release);
}

[[noreturn]] void child_main(const Layout& lay, int pid,
                             const api::Scenario& s,
                             const std::function<void(Ctx&)>& body) {
  try {
    obs::ThreadPidScope pid_scope(pid);
    Worker worker(lay, pid, lay.control->crash_at[pid]);
    g_worker = &worker;
    Ctx ctx(pid, Rng::derive(s.seed, static_cast<std::uint64_t>(pid)));
    barrier_wait(*lay.control, static_cast<std::uint32_t>(s.nproc),
                 /*stamp_start=*/true);
    body(ctx);  // victims never return: publish_op parks them for SIGKILL
    run_gossip_as(lay, pid);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "renamelib proc worker %d: %s\n", pid, e.what());
    std::_Exit(70);
  } catch (...) {
    std::fprintf(stderr, "renamelib proc worker %d: unknown exception\n", pid);
    std::_Exit(70);
  }
  // _Exit, not exit: the child shares the parent's stdio buffers and atexit
  // list; running them here would duplicate output and tear down inherited
  // state the parent still owns.
  std::_Exit(0);
}

void fail_child_status(int pid, int status) {
  char why[96];
  if (WIFSIGNALED(status)) {
    std::snprintf(why, sizeof(why), "killed by signal %d", WTERMSIG(status));
  } else if (WIFEXITED(status)) {
    std::snprintf(why, sizeof(why), "exited with status %d",
                  WEXITSTATUS(status));
  } else {
    std::snprintf(why, sizeof(why), "unrecognized wait status %d", status);
  }
  std::fprintf(stderr, "renamelib proc backend: worker %d %s\n", pid, why);
  RENAMELIB_ENSURE(false, "proc backend: a worker process died unexpectedly");
}

}  // namespace

std::size_t default_arena_bytes(const api::Scenario& s) {
  const int ring_ops = s.keep_op_samples ? s.ops_per_proc : 0;
  // Generous object slack costs only address space: pages are demand-zero.
  return Layout::bytes_for(s.nproc, ring_ops) + (32u << 20);
}

Worker* Worker::current() noexcept { return g_worker; }

Worker::Worker(const Layout& layout, int pid, std::int64_t crash_at)
    : layout_(layout), pid_(pid), crash_at_(crash_at) {
  if (obs::EventBus::enabled()) {
    events_at_fork_ = obs::EventBus::instance().snapshot();
  }
}

void Worker::publish_op(std::uint64_t value, std::uint64_t steps,
                        const char* kind) {
  Mailbox& m = layout_.mail(pid_);
  if (layout_.ring_ops > 0) {
    const std::uint64_t ix = m.published_ops.load(std::memory_order_relaxed);
    RENAMELIB_ENSURE(ix < static_cast<std::uint64_t>(layout_.ring_ops),
                     "proc op ring overflow");
    if (kind != last_kind_) {
      const Control& ctl = *layout_.control;
      std::uint32_t found = kMaxKinds;
      for (std::uint32_t i = 0; i < ctl.nkinds; ++i) {
        if (std::strcmp(ctl.kinds[i], kind) == 0) {
          found = i;
          break;
        }
      }
      RENAMELIB_ENSURE(found < kMaxKinds,
                       "operation kind missing from the proc kind table");
      last_kind_ = kind;
      last_kind_ix_ = found;
    }
    OpSlot& slot = layout_.ring(pid_)[ix];
    slot.value = value;
    slot.steps = steps;
    slot.kind = last_kind_ix_;
    // Slot first, then the release-increment: an announced slot is fully
    // written even if this process is SIGKILLed on the next instruction.
    m.published_ops.store(ix + 1, std::memory_order_release);
  }
  ++ops_done_;
  if (crash_at_ > 0 && ops_done_ == static_cast<std::uint64_t>(crash_at_)) {
    // Crash point: completed exactly crash_at_ ops. Park visibly and wait
    // for the parent's SIGKILL — the op boundary makes the injection
    // deterministic while the kill itself is a real, unclean process death.
    m.parked.store(1, std::memory_order_release);
    for (;;) brief_sleep();
  }
}

void Worker::publish_done(const api::Metrics& m,
                          const stats::LatencySnapshot& lat,
                          std::uint64_t proc_steps) {
  Mailbox& mb = layout_.mail(pid_);
  Contribution& c = mb.contrib;
  c.origin = static_cast<std::uint32_t>(pid_);
  c.finished = 1;
  c.proc_steps = static_cast<double>(proc_steps);
  c.end_ns = now_ns();
  api::Metrics mm = m;
  mm.max_proc_steps = proc_steps;  // this process's total; fold takes the max
  c.metrics.store(mm);
  c.latency.store(lat);
  if (obs::EventBus::enabled()) {
    c.events.store(obs::EventBus::instance().snapshot() - events_at_fork_);
  }
  mb.ready.store(1, std::memory_order_release);
}

void run_proc(const api::Scenario& s, const std::function<void(Ctx&)>& body,
              api::Run& run) {
  ShmArena* arena = ShmArena::current();
  RENAMELIB_ENSURE(arena != nullptr,
                   "proc backend requires a live ShmArena (run through "
                   "Workload::run_*_spec, or construct the object under an "
                   "ArenaScope)");
  RENAMELIB_ENSURE(s.nproc <= kMaxProcs,
                   "proc backend supports at most kMaxProcs processes");
  const int ring_ops = s.keep_op_samples ? s.ops_per_proc : 0;
  const Layout lay = Layout::create(*arena, s.nproc, ring_ops);
  Control& ctl = *lay.control;
  fill_kind_table(ctl, s);
  const std::vector<std::int64_t> crash_at = derive_crash_plan(s);
  std::vector<int> victims;
  for (int p = 0; p < s.nproc; ++p) {
    ctl.crash_at[p] = crash_at[static_cast<std::size_t>(p)];
    if (crash_at[static_cast<std::size_t>(p)] > 0) victims.push_back(p);
  }

  // Flush before fork so buffered output is not duplicated into children.
  std::fflush(stdout);
  std::fflush(stderr);
  std::vector<pid_t> pids(static_cast<std::size_t>(s.nproc), -1);
  for (int p = 0; p < s.nproc; ++p) {
    const pid_t pid = ::fork();
    if (pid == 0) child_main(lay, p, s, body);  // never returns
    if (pid < 0) {
      for (int q = 0; q < p; ++q) ::kill(pids[static_cast<std::size_t>(q)], SIGKILL);
      RENAMELIB_ENSURE(false, "proc backend: fork failed");
    }
    pids[static_cast<std::size_t>(p)] = pid;
  }

  std::vector<bool> reaped(static_cast<std::size_t>(s.nproc), false);
  // Any child transition the parent did not orchestrate is a failure; this
  // is what turns a worker's abort/segfault into a diagnosable test failure
  // instead of a supervision timeout.
  auto check_unexpected = [&] {
    for (int p = 0; p < s.nproc; ++p) {
      if (reaped[static_cast<std::size_t>(p)]) continue;
      int status = 0;
      const pid_t w = ::waitpid(pids[static_cast<std::size_t>(p)], &status,
                                WNOHANG);
      if (w > 0) {
        reaped[static_cast<std::size_t>(p)] = true;
        fail_child_status(p, status);
      }
    }
  };
  const std::uint64_t deadline = now_ns() + timeout_ns();
  auto poll = [&](const std::function<bool()>& pred, const char* what) {
    while (!pred()) {
      check_unexpected();
      RENAMELIB_ENSURE(now_ns() < deadline, what);
      brief_sleep();
    }
  };

  // Phase 1 — real crash injection: wait for each victim to park at its
  // seed-derived op count, then SIGKILL and reap it.
  for (const int v : victims) {
    Mailbox& m = lay.mail(v);
    poll([&] { return m.parked.load(std::memory_order_acquire) != 0; },
         "proc backend: timed out waiting for a crash victim to reach its "
         "crash point");
    ::kill(pids[static_cast<std::size_t>(v)], SIGKILL);
    int status = 0;
    pid_t w;
    do {
      w = ::waitpid(pids[static_cast<std::size_t>(v)], &status, 0);
    } while (w < 0 && errno == EINTR);
    RENAMELIB_ENSURE(w == pids[static_cast<std::size_t>(v)] &&
                         WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL,
                     "proc backend: crash victim did not die by SIGKILL");
    reaped[static_cast<std::size_t>(v)] = true;
  }

  // Phase 2 — survivors publish their Contributions.
  std::uint64_t participants = 0;
  for (int p = 0; p < s.nproc; ++p) {
    if (crash_at[static_cast<std::size_t>(p)] > 0) continue;
    participants |= 1ULL << p;
    Mailbox& m = lay.mail(p);
    poll([&] { return m.ready.load(std::memory_order_acquire) != 0; },
         "proc backend: timed out waiting for a worker's contribution");
  }

  // Phase 3 — release the gossip: the survivor set is final.
  ctl.participants.store(participants, std::memory_order_release);
  ctl.gossip_go.store(1, std::memory_order_release);

  // Phase 4 — reap survivors (they _exit(0) after convergence).
  for (int p = 0; p < s.nproc; ++p) {
    if (reaped[static_cast<std::size_t>(p)]) continue;
    int status = 0;
    pid_t w;
    do {
      w = ::waitpid(pids[static_cast<std::size_t>(p)], &status, 0);
    } while (w < 0 && errno == EINTR);
    reaped[static_cast<std::size_t>(p)] = true;
    if (!(w > 0 && WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
      fail_child_status(p, status);
    }
  }

  // Phase 5 — verify convergence and fold ONE converged table into the Run.
  GossipGrid grid(lay.gossip, lay.nproc);
  RENAMELIB_ENSURE(gossip_converged(grid, participants, 2),
                   "proc backend: gossip tables not converged after all "
                   "survivors exited");
  std::uint64_t rounds = 0;
  int first_survivor = -1;
  for (int p = 0; p < s.nproc; ++p) {
    if ((participants >> p & 1) == 0) continue;
    if (first_survivor < 0) first_survivor = p;
    const std::uint64_t r =
        grid.node(p).done_rounds.load(std::memory_order_acquire);
    RENAMELIB_ENSURE(r != 0 && r <= 3,
                     "proc backend: a survivor exceeded the 3-round bound");
    RENAMELIB_ENSURE(rounds == 0 || rounds == r,
                     "proc backend: survivors disagree on the round count");
    rounds = r;
  }
  RENAMELIB_ENSURE(first_survivor >= 0, "proc backend: no survivors");
  const GossipFold fold = gossip_fold(grid, first_survivor, participants);
  run.metrics = fold.metrics;
  run.latency = fold.latency;
  run.events = fold.events;
  run.proc_steps = fold.proc_steps;
  run.finished_procs = fold.finished;
  run.crashed_procs = victims.size();
  run.gossip_rounds = rounds;
  const std::uint64_t start_ns = ctl.start_ns.load(std::memory_order_relaxed);
  if (fold.max_end_ns > start_ns && start_ns != 0) {
    run.metrics.wall_seconds =
        static_cast<double>(fold.max_end_ns - start_ns) / 1e9;
  }

  // Phase 6 — per-op samples from the crash-surviving rings (victims'
  // completed ops included; see the file comment in proc_backend.h).
  if (ring_ops > 0) {
    for (int p = 0; p < s.nproc; ++p) {
      const std::uint64_t n =
          lay.mail(p).published_ops.load(std::memory_order_acquire);
      const OpSlot* ring = lay.ring(p);
      for (std::uint64_t i = 0; i < n; ++i) {
        const OpSlot& slot = ring[i];
        RENAMELIB_ENSURE(slot.kind < ctl.nkinds,
                         "corrupt kind index in a proc op ring");
        run.ops.push_back(api::OpSample{p, slot.value, slot.steps,
                                        ctl.kinds[slot.kind]});
      }
    }
  }
}

}  // namespace renamelib::proc
