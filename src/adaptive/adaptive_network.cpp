#include "adaptive/adaptive_network.h"

#include "core/assert.h"

namespace renamelib::adaptive {

AdaptiveNetwork::AdaptiveNetwork() {
  wings_.reserve(StageGeometry::kMaxStage + 1);
  wings_.emplace_back(2);  // index 0: unused placeholder
  for (int j = 1; j <= StageGeometry::kMaxStage; ++j) {
    wings_.emplace_back(StageGeometry::sandwich_width(j));
  }
}

const sortnet::LazyOddEven& AdaptiveNetwork::wing(int stage) const {
  RENAMELIB_ENSURE(stage >= 1 && stage <= StageGeometry::kMaxStage,
                   "wing stage out of range");
  return wings_[static_cast<std::size_t>(stage)];
}

std::uint64_t AdaptiveNetwork::run_wing(std::uint32_t component, int stage,
                                        std::uint64_t local, const Decide& decide,
                                        std::uint64_t* count) const {
  // `local` is 1-based within the wing; LazyOddEven wires are 0-based.
  const sortnet::LazyOddEven& net = wings_[static_cast<std::size_t>(stage)];
  RENAMELIB_ENSURE(local >= 1 && local <= net.width(), "wing wire out of range");
  std::uint64_t wire = local - 1;
  for (std::uint32_t phase = 0; phase < net.phase_count(); ++phase) {
    const auto hit = net.hit(wire, phase);
    if (!hit) continue;
    const std::uint64_t lo = hit->is_lo ? wire : hit->partner;
    if (count != nullptr) ++*count;
    const bool up = decide(CompRef{component, phase, lo}, hit->is_lo);
    wire = up ? lo : (hit->is_lo ? hit->partner : wire);
    // If the value goes down and it entered on the hi side, it stays; if it
    // entered on the lo side and lost, it moves to the partner (hi) wire.
  }
  return wire + 1;
}

std::uint64_t AdaptiveNetwork::walk_s(int stage, std::uint64_t wire,
                                      const Decide& decide,
                                      std::uint64_t* count) const {
  if (stage == 0) {
    RENAMELIB_ENSURE(wire >= 1 && wire <= 2, "S_0 wire out of range");
    if (count != nullptr) ++*count;
    const bool up = decide(CompRef{CompRef::base_component(), 0, 0}, wire == 1);
    return up ? 1 : 2;
  }
  const std::uint64_t l = StageGeometry::ell(stage);
  const std::uint64_t w_prev = StageGeometry::width(stage - 1);
  RENAMELIB_ENSURE(wire >= 1 && wire <= StageGeometry::width(stage),
                   "S_j wire out of range");
  if (wire > l) {
    wire = l + run_wing(CompRef::a_component(stage), stage, wire - l, decide, count);
  }
  if (wire <= w_prev) {
    wire = walk_s(stage - 1, wire, decide, count);
  }
  if (wire > l) {
    wire = l + run_wing(CompRef::c_component(stage), stage, wire - l, decide, count);
  }
  return wire;
}

std::uint64_t AdaptiveNetwork::route_counting(std::uint64_t port,
                                              const Decide& decide,
                                              std::uint64_t* count) const {
  int stage = StageGeometry::owning_stage(port);
  std::uint64_t wire = walk_s(stage, port, decide, count);
  while (wire > StageGeometry::width(stage) / 2) {
    ++stage;
    RENAMELIB_ENSURE(stage <= StageGeometry::kMaxStage,
                     "value escaped beyond the maximum stage");
    const std::uint64_t l = StageGeometry::ell(stage);
    wire = l + run_wing(CompRef::c_component(stage), stage, wire - l, decide, count);
  }
  return wire;
}

std::uint64_t AdaptiveNetwork::route(std::uint64_t port, const Decide& decide) const {
  return route_counting(port, decide, nullptr);
}

std::uint64_t AdaptiveNetwork::path_length(std::uint64_t port,
                                           const Decide& decide) const {
  std::uint64_t count = 0;
  (void)route_counting(port, decide, &count);
  return count;
}

}  // namespace renamelib::adaptive
