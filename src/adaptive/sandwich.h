// The paper's Sec. 6.1 recursive "sandwich" construction.
//
// Stage geometry: w_0 = 2 and w_j = w_{j-1}^2; stage j >= 1 sandwiches the
// previous network S_{j-1} (as B) between two sorting networks A_j and C_j
// of width m_j = w_j - l_j, with l_j = w_{j-1}/2.
//
// Because of the composition's wiring (paper Fig. 2), the flat form is
// simply:  S_j = shift(A_j, l_j) ++ S_{j-1} ++ shift(C_j, l_j)  on w_j wires
// — no rewiring is needed, which Lemma 2's proof depends on and which makes
// both materialization (here, for verification) and lazy traversal
// (adaptive_network.h) straightforward.
//
// We use Batcher odd-even networks for A_j and C_j (the paper's constructible
// alternative to AKS; c = 2 in Theorem 2).
#pragma once

#include <cstdint>

#include "sortnet/comparator_network.h"

namespace renamelib::adaptive {

/// Stage geometry helpers. Stages above 5 would need w_6 = 2^64 wires;
/// kMaxStage = 5 supports input ports up to w_5/2 = 2^31, far beyond any
/// feasible contention.
struct StageGeometry {
  static constexpr int kMaxStage = 5;

  /// w_j: width of stage j (w_0 = 2, squaring each stage).
  static std::uint64_t width(int stage);

  /// l_j = w_{j-1}/2: ports of S_{j-1} exposed directly by stage j.
  static std::uint64_t ell(int stage);

  /// m_j = w_j - l_j: width of the A_j and C_j sandwich networks.
  static std::uint64_t sandwich_width(int stage);

  /// Smallest stage J with port <= w_J / 2 (1-based port). A value entering
  /// there never leaves S_J while it remains among the l smallest
  /// (paper Lemma 3), which caps its traversal at depth(S_J) — the source of
  /// the O(log^c max(n,m)) bound of Theorem 2.
  static int owning_stage(std::uint64_t port);
};

/// Generic sandwich composition (paper Fig. 2): B between A and C with B's
/// top `ell` ports exposed. Requires A.width == C.width and ell <= B.width/2;
/// result width = ell + A.width.
sortnet::ComparatorNetwork sandwich(const sortnet::ComparatorNetwork& a,
                                    const sortnet::ComparatorNetwork& b,
                                    const sortnet::ComparatorNetwork& c,
                                    std::size_t ell);

/// Materializes S_j as a flat comparator network (verification/benches only;
/// feasible for j <= 3, width 256).
sortnet::ComparatorNetwork materialize_stage(int stage);

}  // namespace renamelib::adaptive
