// Lazy traversal of the unbounded adaptive sorting network (Sec. 6.1).
//
// AdaptiveNetwork never materializes comparators. It decomposes the infinite
// network S_inf into components — the base S_0 plus the sandwich wings A_j
// and C_j (Batcher networks, addressed through LazyOddEven's O(1) per-phase
// wire queries) — and walks one value's path through them:
//
//   route(p):  J := owning_stage(p); wire := walk_S(J, p);
//              while wire > w_J/2:  J += 1; wire := l_J + run(C_J, wire-l_J)
//   walk_S(j, wire):                              // wire is an input of S_j
//     j = 0:  run the single base comparator
//     else:   if wire > l_j:      wire := l_j + run(A_j, wire - l_j)
//             if wire <= w_{j-1}: wire := walk_S(j-1, wire)
//             if wire > l_j:      wire := l_j + run(C_j, wire - l_j)
//
// Each comparator met is decided by a caller-supplied callback; for renaming
// the callback competes in a two-process test-and-set (renaming/), for
// verification it compares values. Comparators have stable canonical
// identities (component, phase, lo-wire), so concurrent walkers agree on
// which shared object arbitrates each comparator.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "adaptive/sandwich.h"
#include "sortnet/odd_even_merge.h"

namespace renamelib::adaptive {

/// Canonical identity of one comparator of the infinite network.
struct CompRef {
  /// Component id: 0 = base S_0; stage j >= 1: A_j = 2j-1, C_j = 2j.
  std::uint32_t component = 0;
  std::uint32_t phase = 0;  ///< phase within the component's Batcher network
  std::uint64_t lo = 0;     ///< component-local lo wire (0-based)

  friend bool operator==(const CompRef&, const CompRef&) = default;

  /// Stable 64-bit key (phase < 2^11, lo < 2^33 at kMaxStage).
  std::uint64_t key() const noexcept {
    return (static_cast<std::uint64_t>(phase) << 40) | lo;
  }

  static std::uint32_t base_component() { return 0; }
  static std::uint32_t a_component(int stage) {
    return static_cast<std::uint32_t>(2 * stage - 1);
  }
  static std::uint32_t c_component(int stage) {
    return static_cast<std::uint32_t>(2 * stage);
  }
  /// Total number of distinct component ids (for per-component tables).
  static constexpr std::uint32_t component_limit() {
    return 2 * StageGeometry::kMaxStage + 1;
  }
};

class AdaptiveNetwork {
 public:
  /// Decides a comparator on behalf of the walking value: return true if the
  /// value goes up (to the comparator's lo wire). `entered_lo` tells the
  /// callback which side the value arrived on — in a renaming network the lo
  /// side plays side 0 of the two-process TAS.
  using Decide = std::function<bool(const CompRef& comp, bool entered_lo)>;

  AdaptiveNetwork();

  /// Walks a value entering external input port `port` (1-based) to its
  /// output port (1-based). Every comparator met on the way is decided by
  /// `decide`. Thread-safe: all state is immutable after construction.
  std::uint64_t route(std::uint64_t port, const Decide& decide) const;

  /// Number of comparators on the path (same walk, counting only).
  /// `decide` semantics as in route().
  std::uint64_t path_length(std::uint64_t port, const Decide& decide) const;

  /// Lazy Batcher view for component A_j/C_j (width m_j).
  const sortnet::LazyOddEven& wing(int stage) const;

 private:
  std::uint64_t walk_s(int stage, std::uint64_t wire, const Decide& decide,
                       std::uint64_t* count) const;
  std::uint64_t run_wing(std::uint32_t component, int stage, std::uint64_t local,
                         const Decide& decide, std::uint64_t* count) const;

  std::uint64_t route_counting(std::uint64_t port, const Decide& decide,
                               std::uint64_t* count) const;

  // One LazyOddEven per stage, index 1..kMaxStage (A_j and C_j share the
  // geometry, not identity; index 0 is an unused placeholder).
  std::vector<sortnet::LazyOddEven> wings_;
};

}  // namespace renamelib::adaptive
