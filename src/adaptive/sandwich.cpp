#include "adaptive/sandwich.h"

#include "core/assert.h"
#include "sortnet/odd_even_merge.h"

namespace renamelib::adaptive {

std::uint64_t StageGeometry::width(int stage) {
  RENAMELIB_ENSURE(stage >= 0 && stage <= kMaxStage, "stage out of range");
  std::uint64_t w = 2;
  for (int j = 0; j < stage; ++j) w *= w;
  return w;
}

std::uint64_t StageGeometry::ell(int stage) {
  RENAMELIB_ENSURE(stage >= 1 && stage <= kMaxStage, "stage out of range");
  return width(stage - 1) / 2;
}

std::uint64_t StageGeometry::sandwich_width(int stage) {
  return width(stage) - ell(stage);
}

int StageGeometry::owning_stage(std::uint64_t port) {
  RENAMELIB_ENSURE(port >= 1, "ports are 1-based");
  for (int j = 0; j <= kMaxStage; ++j) {
    if (port <= width(j) / 2) return j;
  }
  RENAMELIB_ENSURE(false, "port exceeds w_maxstage/2 = 2^31");
}

sortnet::ComparatorNetwork sandwich(const sortnet::ComparatorNetwork& a,
                                    const sortnet::ComparatorNetwork& b,
                                    const sortnet::ComparatorNetwork& c,
                                    std::size_t ell) {
  RENAMELIB_ENSURE(a.width() == c.width(), "A and C must have equal width");
  RENAMELIB_ENSURE(ell <= b.width() / 2, "ell must be <= B.width/2 (Lemma 2)");
  RENAMELIB_ENSURE(b.width() <= ell + a.width(), "B must fit in the sandwich");
  sortnet::ComparatorNetwork net(ell + a.width());
  net.append(a, static_cast<std::uint32_t>(ell));
  net.append(b, 0);
  net.append(c, static_cast<std::uint32_t>(ell));
  return net;
}

sortnet::ComparatorNetwork materialize_stage(int stage) {
  RENAMELIB_ENSURE(stage >= 0 && stage <= 3,
                   "materializing beyond stage 3 (width 256) is impractical");
  if (stage == 0) {
    sortnet::ComparatorNetwork base(2);
    base.add(0, 1);
    return base;
  }
  const auto m = static_cast<std::size_t>(StageGeometry::sandwich_width(stage));
  const auto l = static_cast<std::size_t>(StageGeometry::ell(stage));
  const sortnet::ComparatorNetwork wing = sortnet::odd_even_merge_sort(m);
  return sandwich(wing, materialize_stage(stage - 1), wing, l);
}

}  // namespace renamelib::adaptive
