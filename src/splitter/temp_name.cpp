#include "splitter/temp_name.h"

namespace renamelib::splitter {

std::uint64_t TempName::get_name(Ctx& ctx, std::uint64_t id) {
  LabelScope label{ctx, "temp_name/get"};
  return tree_.acquire(ctx, id).node_index;
}

}  // namespace renamelib::splitter
