#include "splitter/splitter.h"

#include "core/assert.h"

namespace renamelib::splitter {

SplitterOutcome Splitter::acquire(Ctx& ctx, std::uint64_t id) {
  RENAMELIB_ENSURE(id != 0, "splitter ids must be nonzero");
  LabelScope label{ctx, "splitter/acquire"};

  door_.store(ctx, id);
  if (closed_.load(ctx) != 0) return SplitterOutcome::kRight;
  closed_.store(ctx, 1);
  if (door_.load(ctx) == id) {
    owner_.store(ctx, id);
    return SplitterOutcome::kStop;
  }
  return SplitterOutcome::kDown;
}

}  // namespace renamelib::splitter
