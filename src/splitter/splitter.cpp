#include "splitter/splitter.h"

#include "core/assert.h"
#include "obs/emit.h"

namespace renamelib::splitter {

SplitterOutcome Splitter::acquire(Ctx& ctx, std::uint64_t id) {
  RENAMELIB_ENSURE(id != 0, "splitter ids must be nonzero");
  LabelScope label{ctx, "splitter/acquire"};

  // Each outcome is its own site: the stop/right/down mix is the renaming
  // structure's contention signature, and which branch a given interleaving
  // takes is exactly what schedule fuzzing wants to distinguish.
  door_.store(ctx, id);
  if (closed_.load(ctx) != 0) {
    obs::emit(obs::Site::kSplitterRight, fuzz::Coverage::hash_str(ctx.label()));
    return SplitterOutcome::kRight;
  }
  closed_.store(ctx, 1);
  if (door_.load(ctx) == id) {
    owner_.store(ctx, id);
    obs::emit(obs::Site::kSplitterStop, fuzz::Coverage::hash_str(ctx.label()));
    return SplitterOutcome::kStop;
  }
  obs::emit(obs::Site::kSplitterDown, fuzz::Coverage::hash_str(ctx.label()));
  return SplitterOutcome::kDown;
}

}  // namespace renamelib::splitter
