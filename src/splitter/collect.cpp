#include "splitter/collect.h"

#include "core/assert.h"

namespace renamelib::splitter {

AdaptiveCollect::Cell& AdaptiveCollect::cell_for(std::uint64_t bfs_index) {
  std::scoped_lock lock{alloc_mu_};
  auto& slot = cells_[bfs_index];
  if (!slot) slot = std::make_unique<Cell>();
  return *slot;
}

AdaptiveCollect::Cell* AdaptiveCollect::find_cell(std::uint64_t bfs_index) {
  std::scoped_lock lock{alloc_mu_};
  const auto it = cells_.find(bfs_index);
  return it == cells_.end() ? nullptr : it->second.get();
}

AdaptiveCollect::Handle AdaptiveCollect::register_process(Ctx& ctx,
                                                          std::uint64_t id) {
  RENAMELIB_ENSURE(id != 0, "ids must be nonzero");
  LabelScope label{ctx, "collect/register"};
  const Acquisition acq = tree_.acquire(ctx, id);
  Cell& cell = cell_for(acq.node_index);
  cell.id.store(ctx, id);
  return Handle{acq.node_index};
}

void AdaptiveCollect::store(Ctx& ctx, const Handle& handle, std::uint64_t value) {
  RENAMELIB_ENSURE(handle.bfs != 0, "store before register_process");
  LabelScope label{ctx, "collect/store"};
  Cell& cell = cell_for(handle.bfs);
  cell.value.store(ctx, value);
  cell.valid.store(ctx, 1);  // value before valid: readers see complete cells
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> AdaptiveCollect::collect(
    Ctx& ctx) {
  LabelScope label{ctx, "collect/collect"};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  // Walk the materialized tree (allocator-level pointers; the per-cell reads
  // are counted protocol steps).
  std::vector<std::pair<const SplitterTree::Node*, std::uint64_t>> stack{
      {tree_.node_at(1), 1}};
  while (!stack.empty()) {
    const auto [node, bfs] = stack.back();
    stack.pop_back();
    if (node == nullptr) continue;
    if (Cell* cell = find_cell(bfs)) {
      if (cell->valid.load(ctx) != 0) {
        const std::uint64_t id = cell->id.load(ctx);
        const std::uint64_t value = cell->value.load(ctx);
        if (id != 0) out.emplace_back(id, value);
      }
    }
    for (int dir = 0; dir < 2; ++dir) {
      stack.push_back({node->child[dir].load(), 2 * bfs + dir});
    }
  }
  return out;
}

}  // namespace renamelib::splitter
