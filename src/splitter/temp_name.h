// TempName — stage one of the strong adaptive renaming algorithm (Sec. 6.2).
//
// Each process descends the randomized splitter tree and adopts the BFS
// index of the splitter it acquires as a *temporary* name. Guarantees
// (paper, citing [12, 25]):
//   (1) with k participants, names are in 1..k^c with probability
//       >= 1 - 1/k^{c-1} for a constant c > 1,
//   (2) step complexity is O(log k) w.h.p.
//
// Temporary names are unique in every execution (splitter safety), which is
// all the second stage needs for correctness; the polynomial bound only
// matters for complexity.
#pragma once

#include <cstdint>

#include "splitter/splitter_tree.h"

namespace renamelib::splitter {

class TempName {
 public:
  TempName() = default;

  /// Returns this process's unique temporary name (>= 1). `id` must be
  /// nonzero and unique per process (its original, unbounded identifier).
  std::uint64_t get_name(Ctx& ctx, std::uint64_t id);

  /// Underlying tree (diagnostics and tests).
  const SplitterTree& tree() const noexcept { return tree_; }

 private:
  SplitterTree tree_;
};

}  // namespace renamelib::splitter
