// Lamport/Moir–Anderson splitter.
//
// A splitter is a wait-free gadget built from two registers with the
// guarantees (for any number of concurrent acquirers):
//   * at most one process STOPs (acquires the splitter),
//   * if a process runs solo, it STOPs,
//   * not every process can receive the same non-STOP outcome: at most k-1
//     of k processes see RIGHT, and at most k-1 see DOWN.
//
// Randomized splitter trees (Attiya et al. [25]) send non-stopping processes
// to a uniformly random child, which yields acquisition depth O(log k)
// w.h.p.; this is the paper's TempName building block (Sec. 6.2 stage 1) and
// the backbone of the RatRace test-and-set [12].
#pragma once

#include <cstdint>

#include "core/register.h"

namespace renamelib::splitter {

enum class SplitterOutcome : std::uint8_t { kStop, kRight, kDown };

class Splitter {
 public:
  Splitter() = default;

  /// Runs the splitter protocol. `id` must be distinct per process (use
  /// pid + 1; 0 is reserved for "empty").
  SplitterOutcome acquire(Ctx& ctx, std::uint64_t id);

  /// Diagnostic: whether some process stopped here (quiescent reads only).
  bool occupied() const noexcept { return owner_.peek() != 0; }
  std::uint64_t owner() const noexcept { return owner_.peek(); }

 private:
  Register<std::uint64_t> door_{0};  ///< X in Lamport's formulation
  Register<std::uint8_t> closed_{0}; ///< Y in Lamport's formulation
  Register<std::uint64_t> owner_{0}; ///< records the stopper (diagnostics)
};

}  // namespace renamelib::splitter
