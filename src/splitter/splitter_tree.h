// Unbounded randomized splitter tree.
//
// Processes descend from the root; at each node they run the splitter. A
// STOP acquires the node; otherwise the process moves to a uniformly random
// child and retries. With k participants, the acquisition depth is O(log k)
// with high probability, so acquired node indices (breadth-first, 1-based)
// are poly(k) w.h.p. — exactly the TempName guarantee of Sec. 6.2.
//
// Nodes are materialized on demand. Node allocation is memory-allocator
// bookkeeping, not a protocol step: it uses a CAS on a node pointer that is
// not routed through Ctx, mirroring how the paper assumes an unbounded
// pre-allocated tree.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/register.h"
#include "splitter/splitter.h"

namespace renamelib::splitter {

/// Result of a descent.
struct Acquisition {
  std::uint64_t node_index = 0;  ///< 1-based BFS index (root = 1)
  int depth = 0;                 ///< root = 0
};

class SplitterTree {
 public:
  struct Node {
    Splitter splitter;
    std::atomic<Node*> child[2] = {nullptr, nullptr};
  };

  SplitterTree();
  ~SplitterTree();
  SplitterTree(const SplitterTree&) = delete;
  SplitterTree& operator=(const SplitterTree&) = delete;

  /// Descends until a splitter is acquired. `id` must be nonzero and unique
  /// per process. With k participants the acquisition height is at most k
  /// (paper, Sec. 6.2) and O(log k) with high probability thanks to the
  /// random descent [25].
  Acquisition acquire(Ctx& ctx, std::uint64_t id);

  /// Node lookup by BFS index (for tests/diagnostics); nullptr if that node
  /// was never materialized.
  const Node* node_at(std::uint64_t bfs_index) const;

  /// Number of materialized nodes (quiescent).
  std::size_t materialized() const noexcept { return node_count_.load(); }

 private:
  Node* child_of(Node* parent, int dir);

  std::unique_ptr<Node> root_;
  std::atomic<std::size_t> node_count_{1};
};

}  // namespace renamelib::splitter
