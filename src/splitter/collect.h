// Adaptive collect (Attiya, Kuhn, Plaxton, Wattenhofer, Wattenhofer [25] —
// the paper's reference for the randomized splitter tree).
//
// A collect object lets each process STORE a value and lets any process
// COLLECT the latest values of all processes that ever stored. The adaptive
// construction: each process acquires a node of the randomized splitter tree
// (exactly TempName's acquisition) and thereafter writes into that node's
// cell; a collect walks the materialized tree — O(k) nodes w.h.p. — instead
// of scanning an array sized for the maximum process count.
//
// This makes the [25] substrate behind TempName concrete and independently
// usable (adaptive participant snapshots).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "splitter/splitter_tree.h"

namespace renamelib::splitter {

class AdaptiveCollect {
 public:
  AdaptiveCollect() = default;

  /// Per-process slot handle returned by register_process.
  struct Handle {
    std::uint64_t bfs = 0;  ///< acquired tree node (1-based BFS index)
  };

  /// One-time registration: acquires a splitter-tree node (O(log k) steps
  /// w.h.p.) and claims its value cell. `id` must be nonzero and unique.
  Handle register_process(Ctx& ctx, std::uint64_t id);

  /// Publishes `value` in the registered slot: O(1) register writes.
  void store(Ctx& ctx, const Handle& handle, std::uint64_t value);

  /// Gathers (id, latest value) for every registered process whose store is
  /// visible. Cost proportional to the materialized tree: O(k) w.h.p.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> collect(Ctx& ctx);

 private:
  struct Cell {
    Register<std::uint64_t> id{0};
    Register<std::uint64_t> value{0};
    Register<std::uint8_t> valid{0};
  };

  Cell& cell_for(std::uint64_t bfs_index);
  Cell* find_cell(std::uint64_t bfs_index);

  SplitterTree tree_;
  std::mutex alloc_mu_;  ///< guards lazy cell allocation only
  std::unordered_map<std::uint64_t, std::unique_ptr<Cell>> cells_;
};

}  // namespace renamelib::splitter
