#include "splitter/splitter_tree.h"

#include <vector>

#include "core/assert.h"

namespace renamelib::splitter {

SplitterTree::SplitterTree() : root_(std::make_unique<Node>()) {}

SplitterTree::~SplitterTree() {
  // Iterative teardown of the lazily built tree (children are raw pointers
  // owned by the tree; the root is owned by root_).
  std::vector<Node*> stack;
  for (int dir = 0; dir < 2; ++dir) {
    if (Node* c = root_->child[dir].load()) stack.push_back(c);
  }
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    for (int dir = 0; dir < 2; ++dir) {
      if (Node* c = n->child[dir].load()) stack.push_back(c);
    }
    delete n;
  }
}

SplitterTree::Node* SplitterTree::child_of(Node* parent, int dir) {
  Node* existing = parent->child[dir].load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  auto fresh = std::make_unique<Node>();
  Node* expected = nullptr;
  if (parent->child[dir].compare_exchange_strong(expected, fresh.get(),
                                                 std::memory_order_acq_rel)) {
    node_count_.fetch_add(1, std::memory_order_relaxed);
    return fresh.release();
  }
  return expected;  // someone else installed first; ours is freed
}

Acquisition SplitterTree::acquire(Ctx& ctx, std::uint64_t id) {
  LabelScope label{ctx, "splitter_tree/acquire"};
  Node* node = root_.get();
  std::uint64_t bfs = 1;
  int depth = 0;
  for (;;) {
    if (node->splitter.acquire(ctx, id) == SplitterOutcome::kStop) {
      return Acquisition{bfs, depth};
    }
    const int dir = ctx.rng().coin() ? 1 : 0;
    node = child_of(node, dir);
    bfs = 2 * bfs + static_cast<std::uint64_t>(dir);
    ++depth;
  }
}

const SplitterTree::Node* SplitterTree::node_at(std::uint64_t bfs_index) const {
  RENAMELIB_ENSURE(bfs_index >= 1, "BFS indices are 1-based");
  // Recover the root->node path from the bits of the index.
  int bits = 63;
  while (bits > 0 && ((bfs_index >> bits) & 1) == 0) --bits;
  const Node* node = root_.get();
  for (int b = bits - 1; b >= 0 && node != nullptr; --b) {
    node = node->child[(bfs_index >> b) & 1].load();
  }
  return node;
}

}  // namespace renamelib::splitter
