#include "tas/hardware_tas.h"

// HardwareTas is fully inline; this TU anchors the module.
