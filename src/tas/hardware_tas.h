// Unit-cost hardware test-and-set.
//
// The paper states several bounds "also counting test-and-set operations as
// having unit cost" (Sec. 2) and notes that with hardware TAS the renaming
// network and its counters become deterministic (Sec. 1, Discussion).
// HardwareTas models exactly that: a single atomic exchange, one step.
#pragma once

#include <atomic>

#include "core/ctx.h"
#include "tas/tas.h"

namespace renamelib::tas {

class HardwareTas final : public ITas {
 public:
  HardwareTas() = default;

  /// One shared step: atomic exchange. First caller wins.
  bool test_and_set(Ctx& ctx) override {
    ctx.before_shared_op(OpKind::kTestAndSet, this);
    const bool won = !flag_.exchange(true, std::memory_order_seq_cst);
    ctx.after_shared_op();
    return won;
  }

  /// Quiescent inspection.
  bool taken() const noexcept { return flag_.load(std::memory_order_seq_cst); }

 private:
  std::atomic<bool> flag_{false};
};

/// Deterministic two-party interface over a HardwareTas, so it can be used
/// as a drop-in replacement for TwoProcessTas in renaming networks
/// (Sec. 1 Discussion: "can be made deterministic ... if two-process
/// test-and-set ... objects with unit cost are available in hardware").
class HardwareTwoProcessTas {
 public:
  bool compete(Ctx& ctx, int /*side*/) { return tas_.test_and_set(ctx); }

 private:
  HardwareTas tas_;
};

}  // namespace renamelib::tas
