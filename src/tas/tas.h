// Test-and-set interfaces.
//
// A (one-shot) test-and-set object supports a single operation per process,
// test_and_set(), returning true for exactly one caller (the winner). The
// paper builds renaming from three flavors:
//   * TwoProcessTas  — randomized, registers only, expected O(1) steps
//                      (Tromp–Vitányi [20]); used as the comparator of a
//                      renaming network,
//   * RatRaceTas     — randomized n-process adaptive TAS, O(log^2 k) steps
//                      w.h.p. (Alistarh et al. [12]); used by BitBatching,
//   * HardwareTas    — unit-cost atomic TAS, the paper's "available on most
//                      modern machines" remark (Sec. 2), which also makes the
//                      renaming network deterministic (Sec. 1 Discussion).
#pragma once

#include "core/ctx.h"

namespace renamelib::tas {

/// Interface for n-process one-shot test-and-set objects.
class ITas {
 public:
  virtual ~ITas() = default;

  /// Competes in the object. Returns true iff this process won. Each process
  /// calls this at most once per object.
  virtual bool test_and_set(Ctx& ctx) = 0;
};

}  // namespace renamelib::tas
