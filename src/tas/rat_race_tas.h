// RatRace — adaptive n-process randomized test-and-set (Alistarh et al.
// [12]), the implementation the paper plugs into BitBatching (Sec. 4) and
// cites for its O(log^2 k) w.h.p. step bound (Sec. 2).
//
// Structure (faithful to [12]):
//   1. Descent: the process walks a randomized splitter tree until it
//      acquires a node — depth O(log k) w.h.p.
//   2. Tournament climb: every tree node carries two two-process TAS
//      objects. champion(v) is the winner of owner_tas(v), played between
//      the winner of children_tas(v) (side 0: left- vs right-subtree
//      champion) and the process that acquired v's splitter (side 1). The
//      process climbs from its node toward the root, remaining in the race
//      while it keeps winning; the champion of the root wins the RatRace.
//
// At most one process wins (every edge is arbitrated by a two-process TAS
// with uniquely assigned sides); a solo process acquires the root splitter
// and wins immediately. Expected steps O(log k); O(log^2 k) w.h.p.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "splitter/splitter.h"
#include "tas/tas.h"
#include "tas/two_process_tas.h"

namespace renamelib::tas {

class RatRaceTas final : public ITas {
 public:
  RatRaceTas();
  ~RatRaceTas() override;
  RatRaceTas(const RatRaceTas&) = delete;
  RatRaceTas& operator=(const RatRaceTas&) = delete;

  /// Competes; returns true iff this process is the unique winner.
  /// Uses ctx.pid() (must be unique across participants) as splitter id.
  bool test_and_set(Ctx& ctx) override;

  /// Number of tree nodes materialized so far (quiescent diagnostic).
  std::size_t materialized() const noexcept { return node_count_.load(); }

 private:
  struct Node {
    splitter::Splitter splitter;
    TwoProcessTas children_tas;  ///< left-subtree champ (0) vs right (1)
    TwoProcessTas owner_tas;     ///< children champ (0) vs splitter owner (1)
    std::atomic<Node*> child[2] = {nullptr, nullptr};
  };

  Node* child_of(Node* parent, int dir);

  std::unique_ptr<Node> root_;
  std::atomic<std::size_t> node_count_{1};
};

}  // namespace renamelib::tas
