#include "tas/rat_race_tas.h"

#include <vector>

#include "core/assert.h"

namespace renamelib::tas {

RatRaceTas::RatRaceTas() : root_(std::make_unique<Node>()) {}

RatRaceTas::~RatRaceTas() {
  std::vector<Node*> stack;
  for (int dir = 0; dir < 2; ++dir) {
    if (Node* c = root_->child[dir].load()) stack.push_back(c);
  }
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    for (int dir = 0; dir < 2; ++dir) {
      if (Node* c = n->child[dir].load()) stack.push_back(c);
    }
    delete n;
  }
}

RatRaceTas::Node* RatRaceTas::child_of(Node* parent, int dir) {
  // Lazy materialization; a CAS at allocator level, not a protocol step
  // (the paper assumes the unbounded tree pre-exists in shared memory).
  Node* existing = parent->child[dir].load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  auto fresh = std::make_unique<Node>();
  Node* expected = nullptr;
  if (parent->child[dir].compare_exchange_strong(expected, fresh.get(),
                                                 std::memory_order_acq_rel)) {
    node_count_.fetch_add(1, std::memory_order_relaxed);
    return fresh.release();
  }
  return expected;
}

bool RatRaceTas::test_and_set(Ctx& ctx) {
  LabelScope label{ctx, "ratrace/tas"};
  const std::uint64_t id = static_cast<std::uint64_t>(ctx.pid()) + 1;

  // Phase 1: descend until a splitter is acquired, remembering the path.
  std::vector<std::pair<Node*, int>> path;  // (parent, direction taken)
  Node* node = root_.get();
  {
    LabelScope descend{ctx, "ratrace/descend"};
    while (node->splitter.acquire(ctx, id) != splitter::SplitterOutcome::kStop) {
      const int dir = ctx.rng().coin() ? 1 : 0;
      path.emplace_back(node, dir);
      node = child_of(node, dir);
    }
  }

  // Phase 2: tournament climb. As the owner of `node` we enter side 1 of its
  // owner TAS; from then on we are the champion of a subtree and play side 0.
  LabelScope climb{ctx, "ratrace/climb"};
  if (!node->owner_tas.compete(ctx, /*side=*/1)) return false;
  while (!path.empty()) {
    const auto [parent, dir] = path.back();
    path.pop_back();
    // Champion of parent's `dir` subtree: left champ is side 0.
    if (!parent->children_tas.compete(ctx, dir)) return false;
    if (!parent->owner_tas.compete(ctx, /*side=*/0)) return false;
  }
  return true;  // champion of the root
}

}  // namespace renamelib::tas
