#include "tas/two_process_tas.h"

#include "core/assert.h"

namespace renamelib::tas {

bool TwoProcessTas::compete(Ctx& ctx, int side) {
  RENAMELIB_ENSURE(side == 0 || side == 1, "side must be 0 or 1");
  LabelScope label{ctx, "2tas/compete"};
  Register<std::uint32_t>& mine = pos_[static_cast<std::size_t>(side)];
  Register<std::uint32_t>& theirs = pos_[static_cast<std::size_t>(1 - side)];

  std::uint32_t pos = 0;
  for (;;) {
    mine.store(ctx, pos);
    const std::uint32_t other = theirs.load(ctx);
    if (other >= pos + 1) return false;       // strictly behind: lose
    if (pos >= 2 && other <= pos - 2) return true;  // two ahead: win
    // Within one of each other: advance by a fair coin and race again.
    if (ctx.rng().coin()) ++pos;
  }
}

}  // namespace renamelib::tas
