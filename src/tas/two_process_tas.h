// Randomized wait-free two-process test-and-set from atomic registers.
//
// This is the racing ("pursuit") form of the Tromp–Vitányi algorithm [20]:
// each side owns a monotone position register. In each round a process
// publishes its position, reads the other side's position, and then
//   * loses if the other side is strictly ahead,
//   * wins if the other side is at least two behind,
//   * otherwise advances its position by a fair coin flip and retries.
//
// Properties (proved in tests under adversarial schedules):
//   * at most one side returns true; the two sides cannot both return false;
//   * a process running solo always wins;
//   * the gap performs a random walk with absorbing barriers, so the
//     algorithm terminates with probability 1, in expected O(1) steps and
//     O(log n) steps with high probability (P(undecided after r rounds)
//     decays geometrically);
//   * space is constant: two registers, regardless of the number of rounds.
#pragma once

#include <cstdint>

#include "core/register.h"

namespace renamelib::tas {

/// One-shot two-process test-and-set. The two callers must use distinct
/// sides 0 and 1 (in a renaming network: top wire = side 0).
class TwoProcessTas {
 public:
  TwoProcessTas() = default;

  /// Competes on behalf of `side` (0 or 1). Returns true iff won.
  /// Must be called at most once per side.
  bool compete(Ctx& ctx, int side);

  /// True iff some process has already lost this object (diagnostic only;
  /// not linearizable with ongoing compete() calls).
  bool decided() const noexcept { return pos_[0].peek() != pos_[1].peek(); }

 private:
  // pos_[s] is the latest position published by side s. Positions are
  // monotone and consecutive writes differ by at most 1, which the proof of
  // at-most-one-winner relies on. 2^32 tie rounds have probability ~2^-32
  // each of continuing, so overflow is unreachable in practice.
  RegisterArray<std::uint32_t> pos_{2, 0};
};

}  // namespace renamelib::tas
