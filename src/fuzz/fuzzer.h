/// \file
/// \brief The coverage-guided spec/schedule fuzzer: run, judge, shrink,
/// commit.
///
/// run_case() is the standalone judge — it constructs the case's object,
/// clamps the geometry to the object's own declared limits (capacity,
/// max_procs, renaming request budgets; idempotently, so a replayed case
/// re-clamps to the same execution), drives the facet workload (standard,
/// churn, or exhaustive schedule exploration), and evaluates every oracle
/// the entry's declared semantics imply. The corpus_replay test and
/// `fuzzctl replay` call exactly this function.
///
/// Fuzzer wraps run_case in the search loop:
///   1. catalog pass — one generated case per Registry::describe() entry,
///      so every registered implementation of every facet runs at least
///      once per session (the smoke gate asserts this),
///   2. coverage-guided pass — the remaining budget mutates "interesting"
///      inputs: after each run the global fuzz::Coverage map is folded into
///      (cell, log-bucket) features, and an input that produced a feature
///      this Fuzzer instance has never seen joins the mutation queue.
///
/// On an oracle failure the (spec, scenario, seed) triple is shrunk
/// greedily — fewer procs, fewer ops, no crashes/thinking, spec options
/// walked toward their schema minimum or dropped to defaults, nested inners
/// reduced — accepting any reduction that still fails, to a fixpoint or the
/// shrink budget. The minimized case is serialized into the output corpus
/// directory, ready to commit under tests/corpus/.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "fuzz/corpus.h"
#include "fuzz/generator.h"
#include "fuzz/oracles.h"

namespace renamelib::fuzz {

/// Judgement of one executed case.
struct CaseResult {
  /// False when the clamped geometry cannot run at all (e.g. a capacity-2
  /// dispenser cannot serve even one op per process) — skipped, not failed.
  bool ran = false;
  bool ok = true;
  std::vector<OracleResult> failures;  ///< failed oracles (empty when ok)
  std::uint64_t attempted = 0;         ///< operations started (post-clamp)
  std::size_t crashed_procs = 0;
  std::uint64_t coverage_fingerprint = 0;  ///< Coverage::fingerprint() of the run
};

/// An injectable extra invariant over a run's collected values — the
/// mutation self-check deliberately injects a failing one and asserts the
/// fuzzer catches, shrinks, and emits it.
using ExtraOracle =
    std::function<OracleResult(const FuzzCase&, const std::vector<std::uint64_t>&)>;

/// Runs one case standalone (coverage enabled, map reset first) and judges
/// it. Throws std::invalid_argument when the case's spec does not validate.
CaseResult run_case(const FuzzCase& c, const ExtraOracle& extra = nullptr);

/// Search-loop configuration.
struct FuzzOptions {
  std::uint64_t seed = 1;    ///< everything derives from this
  int iterations = 200;      ///< total cases to run (catalog pass included)
  std::string out_dir;       ///< shrunk failures land here; empty = don't write
  int shrink_budget = 250;   ///< max extra executions spent minimizing a failure
  ExtraOracle extra_oracle;  ///< injected invariant (see ExtraOracle)
};

/// What a fuzzing session did — every field deterministic in (options, build).
struct FuzzSummary {
  int iterations = 0;
  int skipped = 0;             ///< cases whose geometry could not run
  int interesting = 0;         ///< inputs that produced a new coverage feature
  int failures = 0;            ///< oracle failures (after shrinking)
  std::size_t entries_total = 0;    ///< Registry::describe() size
  std::size_t entries_covered = 0;  ///< entries that ran at least once
  std::size_t coverage_features = 0;  ///< distinct (cell, bucket) features seen
  std::uint64_t fingerprint = 0;   ///< order-sensitive combined coverage hash
  std::vector<std::string> failure_files;  ///< written corpus repro paths
  std::vector<std::string> failure_notes;  ///< one line per failure
};

/// The coverage-guided search loop (see file comment).
class Fuzzer {
 public:
  explicit Fuzzer(FuzzOptions options);

  /// Runs the session: catalog pass, then coverage-guided mutation.
  FuzzSummary run();

  /// Greedily minimizes a failing case (public for tests; run() calls it on
  /// every failure). Returns `c` unchanged when `c` does not fail.
  FuzzCase shrink(const FuzzCase& c, int budget) const;

 private:
  /// run_case + novelty accounting against this instance's seen-feature map.
  CaseResult run_tracked(const FuzzCase& c, std::size_t& new_features);
  void record_failure(const FuzzCase& c, const CaseResult& r,
                      FuzzSummary& summary);

  FuzzOptions options_;
  Generator generator_;
  Rng rng_;
  std::vector<std::uint8_t> seen_;  ///< max log-bucket seen per coverage cell
  std::vector<FuzzCase> queue_;     ///< interesting inputs, mutation pool
  std::uint64_t fingerprint_ = 0;
};

}  // namespace renamelib::fuzz
