#include "fuzz/generator.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace renamelib::fuzz {
namespace {

/// Generation-time ceiling for integer options: schemas allow up to 2^20,
/// but giant geometries (a million probe slots, a 2^10-leaf tree) only make
/// construction slow without reaching new protocol states at fuzz scale.
std::uint64_t generation_cap(const api::OptionSchema& o) {
  if (o.key == "depth") return 5;  // 2^depth leaves, each a nested subtree
  return 4096;
}

std::uint64_t pow2_at_most(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

bool is_reusable(const api::Registry& reg, const FuzzCase& c) {
  if (c.facet != api::Facet::kRenaming) return false;
  const api::Spec spec = api::Spec::parse(c.spec);
  const auto* info = reg.find_renaming(spec.name());
  return info != nullptr && info->reusable;
}

}  // namespace

Generator::Generator(const api::Registry& registry)
    : registry_(registry), catalog_(registry.describe()) {}

const api::EntryDescription* Generator::entry_of(
    api::Facet facet, const std::string& name) const {
  for (const auto& e : catalog_) {
    if (e.facet == facet && e.name == name) return &e;
  }
  return nullptr;
}

std::string Generator::random_int_value(const api::OptionSchema& o,
                                        Rng& rng) const {
  const std::uint64_t cap = std::max(o.min, std::min(o.max, generation_cap(o)));
  if (o.pow2) {
    const std::uint64_t hi = pow2_at_most(cap);
    std::vector<std::uint64_t> candidates{o.min, hi};
    if (o.min * 2 <= hi) candidates.push_back(o.min * 2);
    // A random interior power of two.
    std::uint64_t p = o.min;
    const std::uint64_t steps = rng.below(8);
    for (std::uint64_t i = 0; i < steps && p * 2 <= hi; ++i) p *= 2;
    candidates.push_back(p);
    return std::to_string(candidates[rng.below(candidates.size())]);
  }
  std::vector<std::uint64_t> candidates{o.min, cap};
  if (o.min + 1 <= cap) candidates.push_back(o.min + 1);
  candidates.push_back(o.min + rng.below(cap - o.min + 1));
  return std::to_string(candidates[rng.below(candidates.size())]);
}

api::Spec Generator::random_spec(const api::EntryDescription& entry, Rng& rng,
                                 int depth) const {
  api::Spec spec(entry.name);
  for (const auto& o : entry.options) {
    // Leaving an option out exercises the default path too.
    if (rng.below(10) < 4) continue;
    switch (o.type) {
      case api::OptionSchema::Type::kInt:
        spec.set(o.key, api::SpecValue(random_int_value(o, rng)));
        break;
      case api::OptionSchema::Type::kBool:
        spec.set(o.key, api::SpecValue(rng.coin() ? "1" : "0"));
        break;
      case api::OptionSchema::Type::kEnum:
        spec.set(o.key,
                 api::SpecValue(o.choices[rng.below(o.choices.size())]));
        break;
      case api::OptionSchema::Type::kSpec: {
        if (depth >= kMaxSpecDepth) break;  // stay on the default inner
        std::vector<const api::EntryDescription*> pool;
        for (const auto& e : catalog_) {
          if (e.facet == o.spec_facet) pool.push_back(&e);
        }
        if (pool.empty()) break;
        const auto* inner = pool[rng.below(pool.size())];
        spec.set(o.key,
                 api::SpecValue(random_spec(*inner, rng, depth + 1)));
        break;
      }
    }
  }
  return spec;
}

void Generator::random_scenario(FuzzCase& c, Rng& rng) const {
  c.nproc = 1 + static_cast<int>(rng.below(6));
  c.ops_per_proc = 1 + static_cast<int>(rng.below(8));
  c.sched = static_cast<api::Sched>(rng.below(3));
  c.seed = rng.next();
  if (c.nproc > 1 && rng.below(10) < 4) {
    c.max_crashes = 1 + rng.below(static_cast<std::uint64_t>(c.nproc - 1));
    c.crash_step_max = 1 + rng.below(6);
  } else {
    c.max_crashes = 0;
  }
  if (rng.below(10) < 4) {
    c.think_max = 1 + static_cast<int>(rng.below(4));
    c.arrival = rng.coin() ? api::Arrival::kBursty : api::Arrival::kSteady;
    c.burst_max = 1 + static_cast<int>(rng.below(4));
    // Half the arrival-shaped cases skew the pause draws hot-key style;
    // s in [0.5, 2.0) covers gentle through heavily concentrated.
    c.zipf_milli = rng.coin() ? 0 : 500 + rng.below(1500);
  } else {
    c.think_max = 0;
    c.arrival = api::Arrival::kSteady;
    c.zipf_milli = 0;
  }
  c.read_period = 1 + static_cast<int>(rng.below(4));
  c.work = Work::kStandard;
  if (c.facet != api::Facet::kReadable && rng.below(12) == 0) {
    c.work = Work::kExplore;
  } else if (c.facet == api::Facet::kRenaming && rng.below(10) < 4) {
    c.work = Work::kChurn;  // sanitize() reverts it for one-shot entries
  }
}

FuzzCase Generator::case_for_entry(const api::EntryDescription& entry,
                                   Rng& rng) const {
  FuzzCase c;
  c.facet = entry.facet;
  c.spec = random_spec(entry, rng, 1).print();
  random_scenario(c, rng);
  sanitize(c);
  return c;
}

FuzzCase Generator::random_case(Rng& rng) const {
  return case_for_entry(catalog_[rng.below(catalog_.size())], rng);
}

FuzzCase Generator::mutate(const FuzzCase& c, Rng& rng) const {
  FuzzCase m = c;
  const int tweaks = 1 + static_cast<int>(rng.below(3));
  for (int t = 0; t < tweaks; ++t) {
    switch (rng.below(10)) {
      case 0:
        m.nproc += static_cast<int>(rng.below(3)) - 1;
        break;
      case 1:
        m.ops_per_proc += static_cast<int>(rng.below(5)) - 2;
        break;
      case 2:
        if (m.max_crashes > 0) {
          m.max_crashes = 0;
        } else if (m.nproc > 1) {
          m.max_crashes = 1 + rng.below(static_cast<std::uint64_t>(m.nproc - 1));
          m.crash_step_max = 1 + rng.below(6);
        }
        break;
      case 3:
        m.seed = rng.next();
        break;
      case 4:
        m.sched = static_cast<api::Sched>(rng.below(3));
        break;
      case 5:
        m.think_max = static_cast<int>(rng.below(5));
        m.arrival = rng.coin() ? api::Arrival::kBursty : api::Arrival::kSteady;
        m.burst_max = 1 + static_cast<int>(rng.below(4));
        m.zipf_milli = rng.coin() ? 0 : 500 + rng.below(1500);
        break;
      case 6:
        m.read_period = 1 + static_cast<int>(rng.below(4));
        break;
      case 7:
        m.work = static_cast<Work>(rng.below(3));
        break;
      default: {
        // Re-roll the spec's options (same entry, fresh draw), or regrow it
        // entirely from the schema.
        const api::Spec spec = api::Spec::parse(m.spec);
        const auto* entry = entry_of(m.facet, spec.name());
        if (entry != nullptr) {
          m.spec = random_spec(*entry, rng, 1).print();
        }
        break;
      }
    }
  }
  sanitize(m);
  return m;
}

api::Spec Generator::repair_spec(const api::Spec& spec, api::Facet facet,
                                 int nproc) const {
  api::Spec out(spec.name());
  const bool is_lease = spec.name() == "lease";
  // Both escrow-style wrappers nest a same-facet inner whose budget their
  // demand multiplies: the lease by quota-sized refills, the combining
  // funnel by its doubled (combined + direct) mint accounting.
  const bool nests = is_lease || spec.name() == "combine";
  for (const auto& [key, value] : spec.options()) {
    if (value.is_spec()) {
      const api::Facet inner_facet =
          facet == api::Facet::kRenaming && nests ? api::Facet::kRenaming
                                                  : api::Facet::kCounter;
      api::Spec inner = repair_spec(value.spec(), inner_facet, nproc);
      // A bounded inner dispenser under a lease must not saturate mid-run:
      // the broker mints roughly attempted/quota + nproc tickets (the funnel
      // up to twice the attempted values), and a saturated mint pins the
      // saturating value (duplicates by design). A roomy m keeps every
      // generated geometry within the escrow oracle.
      if (nests && inner.name() == "bounded_fai" &&
          inner.get_u64("m", 1024) < 1024) {
        api::Spec roomy(inner.name());
        for (const auto& [ik, iv] : inner.options()) {
          if (ik == "m") continue;
          roomy.set(ik, iv);
        }
        roomy.set("m", api::SpecValue("1024"));
        inner = roomy;
      }
      // Same story for renaming inners: every refill pins one inner name
      // forever, so a tiny request budget (bit_batching:n=2, a small
      // linear_probe/longlived cap) cannot even seat one ticket per client.
      // Lift the budget knob to a roomy floor (all three schemas admit it).
      if (nests && inner_facet == api::Facet::kRenaming) {
        const char* budget_key =
            inner.name() == "bit_batching"
                ? "n"
                : (inner.name() == "linear_probe" ||
                           inner.name() == "longlived"
                       ? "cap"
                       : nullptr);
        if (budget_key != nullptr &&
            inner.get_u64(budget_key, 1024) < 1024) {
          api::Spec roomy(inner.name());
          for (const auto& [ik, iv] : inner.options()) {
            if (ik != budget_key) roomy.set(ik, iv);
          }
          roomy.set(budget_key, api::SpecValue("1024"));
          inner = roomy;
        }
      }
      out.set(key, api::SpecValue(inner));
      continue;
    }
    if (is_lease && key == "procs") {
      // The broker aborts on pid >= procs; lift the slot count to the
      // scenario's process count (schema max 4096 is far above any nproc).
      std::uint64_t procs = 128;
      try {
        procs = std::stoull(value.scalar());
      } catch (const std::exception&) {
      }
      if (procs < static_cast<std::uint64_t>(nproc)) {
        procs = static_cast<std::uint64_t>(nproc);
      }
      out.set(key, api::SpecValue(std::to_string(procs)));
      continue;
    }
    out.set(key, value);
  }
  return out;
}

void Generator::sanitize(FuzzCase& c) const {
  c.nproc = std::clamp(c.nproc, 1, 8);
  c.ops_per_proc = std::clamp(c.ops_per_proc, 1, 16);
  c.read_period = std::clamp(c.read_period, 1, 16);
  c.burst_max = std::clamp(c.burst_max, 1, 16);
  c.think_max = std::clamp(c.think_max, 0, 16);
  // s above 4 degenerates to "always the hottest key".
  if (c.zipf_milli > 4000) c.zipf_milli = 4000;
  if (c.nproc <= 1) c.max_crashes = 0;
  if (c.max_crashes >= static_cast<std::size_t>(c.nproc)) {
    c.max_crashes = static_cast<std::size_t>(c.nproc) - 1;
  }
  if (c.crash_step_max < 1) c.crash_step_max = 1;
  if (c.crash_step_max > 64) c.crash_step_max = 64;

  if (c.work == Work::kChurn && !is_reusable(registry_, c)) {
    c.work = Work::kStandard;
  }
  if (c.work == Work::kExplore) {
    if (c.facet == api::Facet::kReadable) c.work = Work::kStandard;
  }
  if (c.work == Work::kExplore) {
    // Exploration enumerates every schedule: keep the tree small, and crash
    // and think decisions out of it (they would multiply the branching
    // without adding states exploration cannot already reach).
    c.nproc = std::min(c.nproc, 3);
    c.ops_per_proc = std::min(c.ops_per_proc, 2);
    c.max_crashes = 0;
    c.think_max = 0;
  }
  // Zipf skew only shapes the think-pause draws: without pauses it is inert,
  // so zero it (this also covers kExplore, which just zeroed think_max).
  if (c.think_max == 0) c.zipf_milli = 0;

  try {
    api::Spec spec = api::Spec::parse(c.spec);
    spec = repair_spec(spec, c.facet, c.nproc);
    c.spec = registry_.canonical(c.facet, spec.print());
  } catch (const std::exception&) {
    // Unrepairable spec (never expected from our own generator): fall back
    // to the bare entry name, or the facet's first entry as a last resort.
    try {
      const api::Spec spec = api::Spec::parse(c.spec);
      c.spec = registry_.canonical(c.facet, spec.name());
    } catch (const std::exception&) {
      for (const auto& e : catalog_) {
        if (e.facet == c.facet) {
          c.spec = e.name;
          break;
        }
      }
    }
  }
}

}  // namespace renamelib::fuzz
