/// \file
/// \brief FuzzCase — the replayable (spec, scenario, seed) triple — and its
/// JSON corpus format.
///
/// A FuzzCase pins everything a generated execution depends on: the facet
/// and canonical spec text, the workload shape (standard facet workload,
/// acquire/release churn, or exhaustive schedule exploration), the scenario
/// geometry (procs, ops, adversary, crash plan, arrival shaping), and the
/// seed. Under the simulated backend that triple is a pure function — the
/// same case replays the same execution, byte for byte — which is what makes
/// shrunk failures committable: tests/corpus/*.json are FuzzCases serialized
/// in the flat `renamelib.fuzz_case.v1` format, replayed verbatim by the
/// corpus_replay ctest and by `fuzzctl replay`.
///
/// The format is deliberately flat (one JSON object, string/integer values
/// only) so the parser here stays a few dozen lines and diffs of committed
/// repros read naturally in review.
#pragma once

#include <cstdint>
#include <string>

#include "api/registry.h"
#include "api/workload.h"

namespace renamelib::fuzz {

/// Which workload the case drives through the harness.
enum class Work {
  kStandard,  ///< the facet's standard workload (next / hold-all / inc+read)
  kChurn,     ///< acquire+release per op (reusable renaming entries only)
  kExplore,   ///< exhaustive schedule enumeration via sim/explore
};

/// One replayable generated execution.
struct FuzzCase {
  api::Facet facet = api::Facet::kCounter;
  std::string spec;  ///< canonical spec text (api/spec.h)
  Work work = Work::kStandard;
  int nproc = 4;
  int ops_per_proc = 2;
  api::Sched sched = api::Sched::kRandom;
  std::uint64_t seed = 1;
  std::size_t max_crashes = 0;        ///< crash plan; 0 disables
  std::uint64_t crash_step_max = 2;   ///< crash thresholds in [1, this]
  api::Arrival arrival = api::Arrival::kSteady;
  int think_max = 0;    ///< scratch-register reads per pause, 0 disables
  int burst_max = 4;    ///< kBursty: ops per burst in [1, this]
  /// Scenario::zipf_s in fixed-point milli units (1500 = s of 1.5), keeping
  /// the corpus format integer-only. 0 keeps the arrival draws uniform;
  /// meaningful only with think_max > 0 (sanitize zeroes it otherwise).
  std::uint64_t zipf_milli = 0;
  int read_period = 3;  ///< readable facet: every Nth op reads
  std::string note;     ///< provenance (what this repro regressed), free text

  /// The Scenario this case runs under (always the simulated backend:
  /// replays must be deterministic).
  api::Scenario scenario() const;
};

/// Serializes `c` in the flat renamelib.fuzz_case.v1 JSON format.
std::string serialize_case(const FuzzCase& c);

/// Parses a renamelib.fuzz_case.v1 document; throws std::invalid_argument
/// naming the problem (bad format tag, unknown key, malformed value).
FuzzCase parse_case(const std::string& text);

/// Reads and parses one corpus file; throws std::runtime_error when the file
/// is unreadable, std::invalid_argument when it does not parse.
FuzzCase load_case_file(const std::string& path);

/// Serializes `c` into `path` (overwrites); throws std::runtime_error on
/// I/O failure.
void write_case_file(const FuzzCase& c, const std::string& path);

/// Stable content hash of a case (FNV-1a of its serialization) — the
/// filename suffix corpus writers use, reproducible across runs.
std::uint64_t case_hash(const FuzzCase& c);

}  // namespace renamelib::fuzz
