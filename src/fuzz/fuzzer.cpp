#include "fuzz/fuzzer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "api/registry.h"
#include "api/workload.h"
#include "core/ctx.h"
#include "fuzz/coverage.h"
#include "obs/flight_recorder.h"
#include "sim/explore.h"
#include "sim/linearizability.h"

namespace renamelib::fuzz {
namespace {

constexpr std::uint64_t kNoLimit = ~0ULL;

/// Exhaustive exploration must stay cheap per case: the sanitizer caps the
/// geometry at 3 procs x 2 ops, and these caps bound the enumeration even if
/// a hand-edited corpus case sneaks something larger in.
constexpr std::size_t kExploreMaxDepth = 48;
constexpr std::uint64_t kExploreMaxExecutions = 2000;

/// The broker aborts (by contract) on pid >= procs; a corpus case that was
/// hand-edited into that geometry must fail with a catchable error instead.
void guard_lease_procs(const api::Spec& spec, int nproc) {
  if (spec.name() == "lease" &&
      spec.get_u64("procs", 128) < static_cast<std::uint64_t>(nproc)) {
    throw std::invalid_argument(
        "fuzz case: lease procs= is below the scenario's nproc");
  }
  for (const auto& [key, value] : spec.options()) {
    if (value.is_spec()) guard_lease_procs(value.spec(), nproc);
  }
}

/// Elimination may orphan one in-flight ticket per crashed process (see
/// tests/api_conformance_test.cpp): that is declared slack, not a bug.
std::uint64_t elim_slack(const api::Spec& spec, std::size_t crashed) {
  return spec.print().find("elim=1") != std::string::npos ? crashed : 0;
}

/// Largest op count a counter spec can absorb without *any* layer
/// saturating. Saturation legitimately duplicates values (the paper's
/// saturating sequential spec), so the harness must stay clear of it for the
/// uniqueness oracles to be meaningful. Composite specs are walked
/// structurally: a lease mints at most ceil(A/quota) + nproc inner tickets,
/// a diffracting tree routes at most ceil(A/2^depth) + nproc ops to one
/// leaf; everything else is judged by its own constructed capacity().
std::uint64_t safe_counter_ops(const api::Registry& reg, const api::Spec& spec,
                               int nproc, std::size_t crashes) {
  const auto p = static_cast<std::uint64_t>(nproc);
  if (spec.name() == "combine") {
    // Every request for k values costs the inner at most 2k mints (one
    // combined, one direct after a timeout), so half the inner's safe op
    // count is combinable demand.
    const api::Spec inner = spec.get_spec("inner", "atomic_fai");
    const std::uint64_t inner_ops = safe_counter_ops(reg, inner, nproc, crashes);
    return inner_ops == kNoLimit ? kNoLimit : inner_ops / 2;
  }
  if (spec.name() == "lease") {
    const std::uint64_t quota = spec.get_u64("quota", 64);
    const api::Spec inner = spec.get_spec("inner", "atomic_fai");
    const std::uint64_t tickets = safe_counter_ops(reg, inner, nproc, crashes);
    if (tickets == kNoLimit) return kNoLimit;
    return tickets < p + 2 ? 0 : (tickets - p - 1) * quota;
  }
  if (spec.name() == "difftree") {
    const std::uint64_t leaves = 1ULL << spec.get_u64("depth", 3);
    const api::Spec leaf = spec.get_spec("leaf", "atomic_fai");
    const std::uint64_t per_leaf = safe_counter_ops(reg, leaf, nproc, crashes);
    if (per_leaf == kNoLimit) return kNoLimit;
    return per_leaf < p + 2 ? 0 : (per_leaf - p - 1) * leaves;
  }
  const std::uint64_t cap = reg.make_counter(spec)->capacity();
  if (cap == api::ICounter::kUnbounded) return kNoLimit;
  const std::uint64_t margin = 1 + crashes;
  return cap <= margin ? 0 : cap - margin;
}

/// Strict upper bound on the values an escrow-leased dispenser may hand out
/// for `planned` started ops: every value lies in a minted quota-sized
/// range, and at most ceil(planned/quota) + nproc ranges are ever minted
/// (pool reuse and seizes only recycle existing ranges). Recursing through
/// nested leases keeps the bound sound for lease-over-lease specs, which the
/// flat `attempted + nproc * quota` conformance bound is not.
std::uint64_t escrow_value_bound(const api::Spec& spec, std::uint64_t planned,
                                 int nproc, std::uint64_t slack) {
  if (spec.name() == "combine") {
    // The inner mints at most 2*planned values on the funnel's behalf
    // (combined + direct, see safe_counter_ops); every handed value comes
    // from that minted set.
    const api::Spec inner = spec.get_spec("inner", "atomic_fai");
    return escrow_value_bound(inner, 2 * planned, nproc, slack);
  }
  if (spec.name() == "lease") {
    const std::uint64_t quota = spec.get_u64("quota", 64);
    const api::Spec inner = spec.get_spec("inner", "atomic_fai");
    const std::uint64_t tickets =
        planned / quota + 1 + static_cast<std::uint64_t>(nproc);
    return escrow_value_bound(inner, tickets, nproc, slack) * quota;
  }
  if (spec.name() == "difftree") {
    // value = leaf_rank * leaves + leaf_idx, so the composed bound is the
    // leaf's rank bound scaled by the fan-out; each leaf absorbs at most
    // ceil(planned/leaves) + nproc ops.
    const std::uint64_t leaves = 1ULL << spec.get_u64("depth", 3);
    const api::Spec leaf = spec.get_spec("leaf", "atomic_fai");
    const std::uint64_t per_leaf =
        planned / leaves + 1 + static_cast<std::uint64_t>(nproc);
    return escrow_value_bound(leaf, per_leaf, nproc, slack) * leaves;
  }
  return planned + slack;
}

/// True when an escrow lease sits anywhere in the spec tree. A lease below
/// the top level (a difftree leaf, say) keeps its declared entry consistency
/// but its values are unique-but-sparse ranges all the same — density is
/// gone for good and the composed bound above is what uniqueness keys on.
bool has_escrow(const api::Spec& spec) {
  if (spec.name() == "lease" || spec.name() == "combine") return true;
  for (const auto& [key, value] : spec.options()) {
    if (value.is_spec() && has_escrow(value.spec())) return true;
  }
  return false;
}

/// Total acquires a renaming spec can absorb with `nproc` clients before
/// some layer over-subscribes a one-shot request budget — which is an abort
/// (caller contract on RenamingInfo::max_requests), not an oracle failure,
/// so the harness must stay strictly inside it. Only the lease wrapper needs
/// structural treatment: every refill pins one inner name forever and each
/// of the p clients can hold a partially-used lease, so serving A names
/// costs at most ceil(A/quota) + p inner acquires. max_requests alone is
/// nproc-blind and cannot express this (e.g. lease over bit_batching:n=2
/// advertises 128 requests but cannot seat a third client).
std::uint64_t safe_renaming_requests(const api::Registry& reg,
                                     const api::Spec& spec, int nproc) {
  if (spec.name() == "combine") {
    // As on the counter facet: at most two inner acquires per served name.
    const api::Spec inner = spec.get_spec("inner", "linear_probe");
    return safe_renaming_requests(reg, inner, nproc) / 2;
  }
  if (spec.name() != "lease") {
    const int budget = reg.find_renaming(spec.name())->max_requests(spec);
    return budget <= 0 ? 0 : static_cast<std::uint64_t>(budget);
  }
  const auto p = static_cast<std::uint64_t>(nproc);
  const std::uint64_t quota = spec.get_u64("quota", 64);
  const api::Spec inner = spec.get_spec("inner", "longlived");
  const std::uint64_t tickets = safe_renaming_requests(reg, inner, nproc);
  return tickets < p + 2 ? 0 : (tickets - p - 1) * quota;
}

/// The counter facet's value oracle, shared by the workload and explore
/// paths: escrow entries get the quota bound, everything else density once
/// quiescent, or uniqueness within the started-op bound under crashes.
OracleResult judge_counter_values(const api::Spec& spec,
                                  api::Consistency consistency,
                                  const std::vector<std::uint64_t>& values,
                                  std::uint64_t planned, int nproc,
                                  std::size_t crashed) {
  const std::uint64_t slack = elim_slack(spec, crashed);
  if (consistency == api::Consistency::kEscrow && spec.name() == "combine") {
    // The combining front-end has no per-pid quota ranges; its escrow
    // promise is uniqueness within the doubled-demand bound (timeouts fall
    // through to direct mints, the spill pool withholds reclaimed runs).
    return check_unique_bounded(
        values, escrow_value_bound(spec, planned, nproc, slack));
  }
  if (consistency == api::Consistency::kEscrow) {
    const std::uint64_t quota = spec.get_u64("quota", 64);
    const std::uint64_t bound = escrow_value_bound(spec, planned, nproc, slack);
    // check_escrow_bound reconstructs attempted + nproc * quota; feed it the
    // attempted that makes that expression our (nesting-sound) bound.
    return check_escrow_bound(
        values, bound - static_cast<std::uint64_t>(nproc) * quota, nproc,
        quota);
  }
  if (has_escrow(spec)) {
    // Escrow below the top level (e.g. difftree over a lease leaf): the
    // entry's declared consistency still says dense/linearizable, but the
    // leaf hands out sparse quota ranges — only uniqueness within the
    // composed bound survives the nesting.
    return check_unique_bounded(
        values, escrow_value_bound(spec, planned, nproc, slack));
  }
  if (crashed > 0) return check_unique_bounded(values, planned + slack);
  return check_dense_prefix(values);
}

void add_result(CaseResult& r, OracleResult oracle) {
  if (!oracle.ok) {
    r.ok = false;
    r.failures.push_back(std::move(oracle));
  }
}

std::string schedule_text(const std::vector<int>& schedule) {
  std::string out;
  for (const int pid : schedule) {
    if (!out.empty()) out += ',';
    out += std::to_string(pid);
  }
  return out;
}

/// Scenario for the clamped geometry (the case's own scenario with the
/// harness-derived proc/op counts substituted in).
api::Scenario clamped_scenario(const FuzzCase& c, int nproc, int ops,
                               std::size_t crashes) {
  api::Scenario s = c.scenario();
  s.nproc = nproc;
  s.ops_per_proc = ops;
  s.crashes.max_crashes = crashes;
  return s;
}

CaseResult run_counter_case(const api::Registry& reg, const api::Spec& spec,
                            const FuzzCase& c,
                            std::vector<std::uint64_t>& values_out) {
  const api::CounterInfo* info = reg.find_counter(spec.name());
  CaseResult r;

  // Walk nproc down until the spec can absorb at least one op per process
  // without saturating anywhere.
  int nproc = c.nproc;
  std::size_t crashes = c.max_crashes;
  std::uint64_t safe = 0;
  for (; nproc >= 1; --nproc) {
    crashes = std::min(crashes,
                       static_cast<std::size_t>(nproc > 1 ? nproc - 1 : 0));
    safe = safe_counter_ops(reg, spec, nproc, crashes);
    if (safe >= static_cast<std::uint64_t>(nproc)) break;
  }
  if (nproc < 1) return r;  // ran=false: nothing this spec can execute
  const int ops = static_cast<int>(std::min<std::uint64_t>(
      c.ops_per_proc, safe / static_cast<std::uint64_t>(nproc)));
  const std::uint64_t planned =
      static_cast<std::uint64_t>(nproc) * static_cast<std::uint64_t>(ops);
  r.ran = true;
  r.attempted = planned;

  if (c.work == Work::kExplore) {
    auto values = std::make_shared<std::vector<std::uint64_t>>();
    OracleResult verdict = OracleResult::pass("explore");
    const auto make_body = [&reg, &spec, values, ops] {
      values->clear();
      std::shared_ptr<api::ICounter> counter = reg.make_counter(spec);
      return std::function<void(Ctx&)>([counter, values, ops](Ctx& ctx) {
        for (int i = 0; i < ops; ++i) values->push_back(counter->next(ctx));
      });
    };
    const auto invariant = [&](const sim::SimResult&) {
      const OracleResult v = judge_counter_values(
          spec, info->consistency, *values, planned, nproc, /*crashed=*/0);
      if (!v.ok) verdict = v;
      return v.ok;
    };
    const sim::ExploreResult res = sim::explore_schedules(
        nproc, make_body, invariant,
        {c.seed, kExploreMaxDepth, kExploreMaxExecutions});
    if (res.invariant_violated) {
      verdict.detail +=
          " [schedule " + schedule_text(res.counterexample) + "]";
      add_result(r, verdict);
    }
    values_out = *values;
    return r;
  }

  const auto counter = reg.make_counter(spec);
  api::Scenario s = clamped_scenario(c, nproc, ops, crashes);
  // Nested escrow disqualifies the FAI spec the same way top-level kEscrow
  // does: handed-out values are sparse ranges, not successive ranks.
  const bool check_wg = info->consistency == api::Consistency::kLinearizable &&
                        crashes == 0 && planned <= 64 && !has_escrow(spec);
  s.record_history = check_wg;
  const api::Run run = api::Workload(s).run(*counter);
  r.crashed_procs = run.crashed_procs;
  values_out = run.values();

  add_result(r, judge_counter_values(spec, info->consistency, values_out,
                                     planned, nproc, run.crashed_procs));
  if (check_wg) {
    const std::uint64_t m = counter->capacity() == api::ICounter::kUnbounded
                                ? (1ULL << 40)
                                : counter->capacity();
    sim::BoundedFaiSpec fai(m);
    if (!sim::is_linearizable(run.history, fai)) {
      add_result(r, OracleResult::fail(
                        "wing_gong",
                        "history is not linearizable as a bounded FAI"));
    }
  }
  return r;
}

CaseResult run_renaming_case(const api::Registry& reg, const api::Spec& spec,
                             const FuzzCase& c,
                             std::vector<std::uint64_t>& values_out) {
  const api::RenamingInfo* info = reg.find_renaming(spec.name());
  const int max_requests = info->max_requests(spec);
  CaseResult r;
  if (max_requests < 1) return r;

  // Lease wrappers consume whole inner tickets per client; shed clients
  // until the structural acquire budget can seat everyone, or skip the case
  // if even one client would over-subscribe the inner.
  int nproc_cap = c.nproc;
  std::uint64_t safe = kNoLimit;
  if (spec.name() == "lease" || spec.name() == "combine") {
    while (nproc_cap > 0) {
      safe = safe_renaming_requests(reg, spec, nproc_cap);
      if (safe >= static_cast<std::uint64_t>(nproc_cap)) break;
      --nproc_cap;
    }
    if (nproc_cap == 0) return r;
  }

  if (c.work == Work::kChurn && info->reusable) {
    // Acquire-release cycles: concurrent holders never exceed nproc, so
    // nproc (not the op count) is what max_requests and name_bound key on.
    // Mints are still bounded by total acquires, so the lease acquire
    // budget caps the op count even though releases recycle outer names.
    const int nproc = std::min(nproc_cap, max_requests);
    const int ops =
        safe == kNoLimit
            ? c.ops_per_proc
            : std::max(1, static_cast<int>(std::min<std::uint64_t>(
                              c.ops_per_proc,
                              safe / static_cast<std::uint64_t>(nproc))));
    const std::size_t crashes = std::min(
        c.max_crashes, static_cast<std::size_t>(nproc > 1 ? nproc - 1 : 0));
    const std::uint64_t bound = info->name_bound(nproc, spec);
    std::shared_ptr<api::IRenaming> obj = reg.make_renaming(spec);
    r.ran = true;
    r.attempted = static_cast<std::uint64_t>(nproc) * ops;
    const api::Scenario s = clamped_scenario(c, nproc, ops, crashes);
    const api::Run run = api::Workload(s).run_ops([&obj](Ctx& ctx) {
      const std::uint64_t name = obj->acquire(ctx);
      obj->release(ctx, name);
      return name;
    });
    r.crashed_procs = run.crashed_procs;
    values_out = run.values();
    for (const std::uint64_t name : values_out) {
      if (name < 1 || name > bound) {
        add_result(r, OracleResult::fail(
                          "churn_name_range",
                          "name " + std::to_string(name) + " outside [1, " +
                              std::to_string(bound) + "] for " +
                              std::to_string(nproc) + " concurrent holders"));
        break;
      }
    }
    // A process killed between acquire and release leaks at most its one
    // in-flight name; with no crashes quiescence means zero holders.
    add_result(r, check_holders(obj->holders(), 0, run.crashed_procs));
    return r;
  }

  // Hold-all (and explore): every acquire counts against the request budget.
  int nproc = nproc_cap;
  int ops = c.ops_per_proc;
  if (nproc > max_requests) {
    nproc = max_requests;
    ops = 1;
  } else {
    ops = std::max(1, std::min(ops, max_requests / nproc));
  }
  if (safe != kNoLimit) {
    ops = std::max(1, static_cast<int>(std::min<std::uint64_t>(
                          ops, safe / static_cast<std::uint64_t>(nproc))));
  }
  const std::uint64_t planned =
      static_cast<std::uint64_t>(nproc) * static_cast<std::uint64_t>(ops);
  const std::uint64_t bound =
      info->name_bound(static_cast<int>(planned), spec);
  r.ran = true;
  r.attempted = planned;

  if (c.work == Work::kExplore) {
    auto names = std::make_shared<std::vector<std::uint64_t>>();
    OracleResult verdict = OracleResult::pass("explore");
    const auto make_body = [&reg, &spec, names, ops] {
      names->clear();
      std::shared_ptr<api::IRenaming> obj = reg.make_renaming(spec);
      return std::function<void(Ctx&)>([obj, names, ops](Ctx& ctx) {
        for (int i = 0; i < ops; ++i) names->push_back(obj->acquire(ctx));
      });
    };
    const auto invariant = [&](const sim::SimResult&) {
      const OracleResult v = check_renaming_names(*names, bound);
      if (!v.ok) verdict = v;
      return v.ok;
    };
    const sim::ExploreResult res = sim::explore_schedules(
        nproc, make_body, invariant,
        {c.seed, kExploreMaxDepth, kExploreMaxExecutions});
    if (res.invariant_violated) {
      verdict.detail +=
          " [schedule " + schedule_text(res.counterexample) + "]";
      add_result(r, verdict);
    }
    values_out = *names;
    return r;
  }

  const std::size_t crashes = std::min(
      c.max_crashes, static_cast<std::size_t>(nproc > 1 ? nproc - 1 : 0));
  std::shared_ptr<api::IRenaming> obj = reg.make_renaming(spec);
  const api::Scenario s = clamped_scenario(c, nproc, ops, crashes);
  const api::Run run = api::Workload(s).run(*obj);
  r.crashed_procs = run.crashed_procs;
  values_out = run.values();

  add_result(r, check_renaming_names(values_out, bound));
  // Completed acquires are held for good; crashed processes add at most
  // their in-flight acquire each, so holders lands in [completed, planned].
  add_result(r,
             check_holders(obj->holders(), run.ops.size(), planned));
  return r;
}

CaseResult run_readable_case(const api::Registry& reg, const api::Spec& spec,
                             const FuzzCase& c,
                             std::vector<std::uint64_t>& values_out) {
  const api::ReadableInfo* info = reg.find_readable(spec.name());
  const auto obj = reg.make_readable(spec);
  CaseResult r;

  const int period = std::max(1, c.read_period);
  const auto incs_of = [period](int nproc, int ops) {
    return static_cast<std::uint64_t>(nproc) *
           static_cast<std::uint64_t>(ops - ops / period);
  };
  int nproc = std::min(c.nproc, obj->max_procs());
  int ops = c.ops_per_proc;
  if (nproc < 1) return r;
  if (obj->capacity() != api::IReadableCounter::kUnbounded) {
    // Reads stay < capacity(); keep the increment total clear of it.
    while (ops > 1 && incs_of(nproc, ops) >= obj->capacity()) --ops;
    while (nproc > 1 && incs_of(nproc, ops) >= obj->capacity()) --nproc;
    if (incs_of(nproc, ops) >= obj->capacity()) return r;
  }
  const std::size_t crashes = std::min(
      c.max_crashes, static_cast<std::size_t>(nproc > 1 ? nproc - 1 : 0));
  const std::uint64_t planned =
      static_cast<std::uint64_t>(nproc) * static_cast<std::uint64_t>(ops);
  const std::uint64_t planned_incs = incs_of(nproc, ops);
  r.ran = true;
  r.attempted = planned;

  api::Scenario s = clamped_scenario(c, nproc, ops, crashes);
  // Nested escrow disqualifies the FAI spec the same way top-level kEscrow
  // does: handed-out values are sparse ranges, not successive ranks.
  const bool check_wg = info->consistency == api::Consistency::kLinearizable &&
                        crashes == 0 && planned <= 64 && !has_escrow(spec);
  s.record_history = check_wg;
  const api::Run run = api::Workload(s).run(*obj);
  r.crashed_procs = run.crashed_procs;
  values_out = run.values_of("read");

  add_result(r, check_readable_reads(run.ops, planned_incs));
  const std::uint64_t completed_incs = run.values_of("inc").size();
  Ctx quiet(0, Rng::derive(c.seed, 0x51E5CE));
  add_result(r, check_quiescent_read(obj->read(quiet), completed_incs,
                                     planned_incs, run.crashed_procs > 0));
  if (check_wg) {
    sim::CounterSpec counter_spec;
    if (!sim::is_linearizable(run.history, counter_spec)) {
      add_result(r, OracleResult::fail(
                        "wing_gong",
                        "inc/read history is not linearizable as a counter"));
    }
  }
  return r;
}

std::string hex8(std::uint64_t h) {
  std::ostringstream out;
  out << std::hex << std::setw(8) << std::setfill('0') << (h & 0xFFFFFFFFULL);
  return out.str();
}

std::string entry_key(const FuzzCase& c) {
  return std::string(api::facet_name(c.facet)) + "/" +
         api::Spec::parse(c.spec).name();
}

}  // namespace

CaseResult run_case(const FuzzCase& c, const ExtraOracle& extra) {
  const api::Registry& reg = api::Registry::global();
  const api::Spec spec = api::Spec::parse(c.spec);
  reg.validate(c.facet, spec);
  if (c.nproc < 1 || c.ops_per_proc < 1 || c.read_period < 1 ||
      c.burst_max < 1 || c.think_max < 0) {
    throw std::invalid_argument("fuzz case: non-positive scenario geometry");
  }
  guard_lease_procs(spec, c.nproc);

  Coverage::instance().reset();
  Coverage::set_enabled(true);
  // The flight recorder rides along with every fuzzed execution, so an
  // oracle failure (here or in fuzzctl replay) can dump the last events
  // leading up to it without re-running anything.
  obs::FlightRecorder::instance().reset();
  obs::FlightRecorder::set_enabled(true);
  CaseResult r;
  std::vector<std::uint64_t> values;
  try {
    switch (c.facet) {
      case api::Facet::kCounter:
        r = run_counter_case(reg, spec, c, values);
        break;
      case api::Facet::kRenaming:
        r = run_renaming_case(reg, spec, c, values);
        break;
      case api::Facet::kReadable:
        r = run_readable_case(reg, spec, c, values);
        break;
    }
  } catch (...) {
    Coverage::set_enabled(false);
    obs::FlightRecorder::set_enabled(false);
    throw;
  }
  Coverage::set_enabled(false);
  obs::FlightRecorder::set_enabled(false);
  r.coverage_fingerprint = Coverage::instance().fingerprint();

  if (extra && r.ran) {
    OracleResult er = extra(c, values);
    if (!er.ok) {
      r.ok = false;
      r.failures.push_back(std::move(er));
    }
  }
  return r;
}

Fuzzer::Fuzzer(FuzzOptions options)
    : options_(std::move(options)),
      generator_(api::Registry::global()),
      rng_(options_.seed),
      seen_(Coverage::kMapSize, 0) {}

CaseResult Fuzzer::run_tracked(const FuzzCase& c, std::size_t& new_features) {
  new_features = 0;
  if (std::getenv("RENAMELIB_FUZZ_TRACE") != nullptr) {
    std::fprintf(stderr, "fuzz-trace: %s\n", serialize_case(c).c_str());
    std::fflush(stderr);
  }
  CaseResult r;
  try {
    r = run_case(c, options_.extra_oracle);
  } catch (const std::exception& e) {
    r.ran = true;
    r.ok = false;
    r.failures.push_back(OracleResult::fail("harness", e.what()));
    return r;
  }
  if (!r.ran) return r;
  for (const auto& [cell, bucket] : Coverage::instance().observe()) {
    if (bucket > seen_[cell]) {
      seen_[cell] = bucket;
      ++new_features;
    }
  }
  fingerprint_ = Coverage::mix(fingerprint_ ^ r.coverage_fingerprint);
  return r;
}

FuzzCase Fuzzer::shrink(const FuzzCase& c, int budget) const {
  const auto fails = [&](const FuzzCase& candidate) {
    try {
      const CaseResult r = run_case(candidate, options_.extra_oracle);
      return r.ran && !r.ok;
    } catch (const std::exception&) {
      return true;  // a case that errors out still reproduces a defect
    }
  };
  if (budget <= 0) return c;
  --budget;
  if (!fails(c)) return c;

  // Candidate reductions, most aggressive first. Each is re-sanitized (the
  // sanitizer is idempotent), so a candidate is always a runnable case.
  const auto candidates = [this](const FuzzCase& cur) {
    std::vector<FuzzCase> out;
    const auto push = [&](FuzzCase cand) {
      generator_.sanitize(cand);
      out.push_back(std::move(cand));
    };
    FuzzCase t = cur;
    if (cur.nproc > 1) {
      t = cur; t.nproc = 1; push(t);
      t = cur; t.nproc = cur.nproc / 2; push(t);
      t = cur; t.nproc = cur.nproc - 1; push(t);
    }
    if (cur.ops_per_proc > 1) {
      t = cur; t.ops_per_proc = 1; push(t);
      t = cur; t.ops_per_proc = cur.ops_per_proc / 2; push(t);
      t = cur; t.ops_per_proc = cur.ops_per_proc - 1; push(t);
    }
    if (cur.max_crashes > 0) {
      t = cur; t.max_crashes = 0; push(t);
      t = cur; t.max_crashes = cur.max_crashes / 2; push(t);
      t = cur; t.crash_step_max = 1; push(t);
    }
    if (cur.think_max > 0) {
      t = cur; t.think_max = 0; t.arrival = api::Arrival::kSteady; push(t);
    }
    if (cur.burst_max > 1) { t = cur; t.burst_max = 1; push(t); }
    if (cur.facet == api::Facet::kReadable && cur.read_period > 1) {
      t = cur; t.read_period = cur.read_period - 1; push(t);
    }
    // Spec reductions: drop each option; walk integers down.
    try {
      const api::Spec spec = api::Spec::parse(cur.spec);
      for (const auto& [key, value] : spec.options()) {
        api::Spec dropped(spec.name());
        for (const auto& [k, v] : spec.options()) {
          if (k != key) dropped.set(k, v);
        }
        t = cur; t.spec = dropped.print(); push(t);
        if (!value.is_spec()) {
          std::uint64_t v = 0;
          try {
            v = std::stoull(value.scalar());
          } catch (const std::exception&) {
            continue;  // enum/bool scalars: dropping was the only reduction
          }
          for (const std::uint64_t smaller : {v / 2, std::uint64_t{1}}) {
            if (smaller == 0 || smaller >= v) continue;
            api::Spec walked(spec.name());
            for (const auto& [k, w] : spec.options()) {
              walked.set(k, k == key
                                ? api::SpecValue(std::to_string(smaller))
                                : w);
            }
            t = cur; t.spec = walked.print(); push(t);
          }
        }
      }
    } catch (const std::exception&) {
    }
    return out;
  };

  FuzzCase current = c;
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    const std::string current_text = serialize_case(current);
    for (const FuzzCase& cand : candidates(current)) {
      if (serialize_case(cand) == current_text) continue;
      if (budget-- <= 0) break;
      if (fails(cand)) {
        current = cand;
        improved = true;
        break;
      }
    }
  }
  return current;
}

void Fuzzer::record_failure(const FuzzCase& c, const CaseResult& r,
                            FuzzSummary& summary) {
  ++summary.failures;
  FuzzCase shrunk = shrink(c, options_.shrink_budget);
  std::string note;
  if (!r.failures.empty()) {
    note = r.failures.front().oracle + ": " + r.failures.front().detail;
  }
  // Re-run the minimized case for the *minimized* failure message (shrinking
  // can shift which oracle trips first).
  try {
    const CaseResult rr = run_case(shrunk, options_.extra_oracle);
    if (!rr.ok && !rr.failures.empty()) {
      note = rr.failures.front().oracle + ": " + rr.failures.front().detail;
    }
  } catch (const std::exception& e) {
    note = std::string("harness: ") + e.what();
  }
  if (note.size() > 240) note.resize(240);
  shrunk.note = note;

  std::string filename = std::string(api::facet_name(shrunk.facet)) + "-" +
                         api::Spec::parse(shrunk.spec).name() + "-" +
                         hex8(case_hash(shrunk)) + ".json";
  std::string where = "(not written)";
  if (!options_.out_dir.empty() && summary.failure_files.size() < 16) {
    std::filesystem::create_directories(options_.out_dir);
    const std::string path = options_.out_dir + "/" + filename;
    write_case_file(shrunk, path);
    summary.failure_files.push_back(path);
    where = path;
  }
  summary.failure_notes.push_back(where + ": spec=" + shrunk.spec + " — " +
                                  note);
}

FuzzSummary Fuzzer::run() {
  FuzzSummary summary;
  summary.entries_total = generator_.catalog().size();
  std::set<std::string> covered;
  std::size_t features_total = 0;

  const auto account = [&](const FuzzCase& c, const CaseResult& r,
                           std::size_t new_features) {
    ++summary.iterations;
    if (!r.ran) {
      ++summary.skipped;
      return;
    }
    try {
      covered.insert(entry_key(c));
    } catch (const std::exception&) {
    }
    features_total += new_features;
    if (new_features > 0) {
      ++summary.interesting;
      queue_.push_back(c);
    }
    if (!r.ok) record_failure(c, r, summary);
  };

  // Phase A: every registered entry runs at least once. A generated case can
  // legitimately be un-runnable (a capacity-2 spec cannot serve 4 procs);
  // retry with fresh draws, then fall back to the entry's default spec under
  // a minimal scenario, which always runs.
  for (const auto& entry : generator_.catalog()) {
    bool ran = false;
    for (int attempt = 0; attempt < 4 && !ran; ++attempt) {
      const FuzzCase c = generator_.case_for_entry(entry, rng_);
      std::size_t fresh = 0;
      const CaseResult r = run_tracked(c, fresh);
      account(c, r, fresh);
      ran = r.ran;
    }
    if (!ran) {
      FuzzCase fallback;
      fallback.facet = entry.facet;
      fallback.spec = entry.name;
      fallback.nproc = 2;
      fallback.ops_per_proc = 1;
      fallback.sched = api::Sched::kRoundRobin;
      fallback.seed = rng_.next();
      generator_.sanitize(fallback);
      std::size_t fresh = 0;
      const CaseResult r = run_tracked(fallback, fresh);
      account(fallback, r, fresh);
    }
  }

  // Phase B: coverage-guided mutation over the remaining budget.
  while (summary.iterations < options_.iterations) {
    const bool from_queue = !queue_.empty() && rng_.below(10) < 7;
    const FuzzCase c =
        from_queue
            ? generator_.mutate(queue_[rng_.below(queue_.size())], rng_)
            : generator_.random_case(rng_);
    std::size_t fresh = 0;
    const CaseResult r = run_tracked(c, fresh);
    account(c, r, fresh);
  }

  summary.entries_covered = covered.size();
  summary.coverage_features = features_total;
  summary.fingerprint = fingerprint_;
  return summary;
}

}  // namespace renamelib::fuzz
