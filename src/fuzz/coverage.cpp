#include "fuzz/coverage.h"

namespace renamelib::fuzz {

Coverage::Coverage()
    : map_(std::make_unique<std::atomic<std::uint32_t>[]>(kMapSize)) {
  for (std::size_t i = 0; i < kMapSize; ++i) {
    map_[i].store(0, std::memory_order_relaxed);
  }
}

Coverage& Coverage::instance() {
  static Coverage cov;
  return cov;
}

void Coverage::reset() {
  for (std::size_t i = 0; i < kMapSize; ++i) {
    map_[i].store(0, std::memory_order_relaxed);
  }
}

namespace {

/// AFL-style count bucket: 1, 2, 3, 4–7, 8–15, 16–31, 32–127, 128+.
std::uint8_t bucket_of(std::uint32_t count) noexcept {
  if (count <= 3) return static_cast<std::uint8_t>(count);
  if (count < 8) return 4;
  if (count < 16) return 5;
  if (count < 32) return 6;
  if (count < 128) return 7;
  return 8;
}

}  // namespace

std::vector<std::pair<std::uint32_t, std::uint8_t>> Coverage::observe() const {
  std::vector<std::pair<std::uint32_t, std::uint8_t>> out;
  for (std::size_t i = 0; i < kMapSize; ++i) {
    const std::uint32_t c = map_[i].load(std::memory_order_relaxed);
    if (c != 0) out.emplace_back(static_cast<std::uint32_t>(i), bucket_of(c));
  }
  return out;
}

std::uint64_t Coverage::fingerprint() const {
  // XOR of per-cell mixes: order-insensitive, so equal coverage sets compare
  // equal no matter the scan order.
  std::uint64_t fp = 0x5FD1E0A7C2F3B681ULL;
  for (const auto& [cell, bucket] : observe()) {
    fp ^= mix((static_cast<std::uint64_t>(cell) << 8) | bucket);
  }
  return fp;
}

}  // namespace renamelib::fuzz
