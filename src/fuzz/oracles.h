/// \file
/// \brief The facet conformance oracles, extracted as pure predicates.
///
/// These are the invariants tests/api_conformance_test.cpp asserts — dense
/// value prefixes, uniqueness under crash bounds, escrow lease bounds,
/// renaming uniqueness/tightness, readable-counter read monotonicity and
/// quiescent exactness — lifted out of gtest so the fuzzer (src/fuzz) can
/// evaluate them on generated executions and the oracle self-tests can feed
/// them hand-seeded *violating* inputs. Every check is a pure function of
/// collected values: no gtest, no workload types beyond OpSample, so a
/// failed OracleResult is attributable to exactly one predicate and one
/// input — which is what makes shrinking meaningful.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/workload.h"

namespace renamelib::fuzz {

/// Outcome of one oracle evaluation. `oracle` names the predicate that
/// produced it; `detail` explains a failure (empty when ok).
struct OracleResult {
  bool ok = true;
  std::string oracle;
  std::string detail;

  static OracleResult pass(std::string oracle) {
    return OracleResult{true, std::move(oracle), ""};
  }
  static OracleResult fail(std::string oracle, std::string detail) {
    return OracleResult{false, std::move(oracle), std::move(detail)};
  }
};

/// Quiescent counter density: `values` is a permutation of 0..N-1 (every
/// non-escrow counter facet once all processes finished).
OracleResult check_dense_prefix(const std::vector<std::uint64_t>& values);

/// Crash-mode counter safety: values unique and < `bound` (started ops plus
/// any declared orphan slack — crashes may strand values but never duplicate
/// them or overshoot the started-operation bound).
OracleResult check_unique_bounded(const std::vector<std::uint64_t>& values,
                                  std::uint64_t bound);

/// Escrow lease bound: values unique and < attempted + nproc * quota (each
/// pid's partially drained lease withholds at most the tail of one
/// quota-sized range). A value at or past the bound is an over-issue.
OracleResult check_escrow_bound(const std::vector<std::uint64_t>& values,
                                std::uint64_t attempted, int nproc,
                                std::uint64_t quota);

/// Renaming safety: names unique (>= 1 each) and within [1, bound]
/// (delegates to renaming/validate.h, the Sec. 2 invariants).
OracleResult check_renaming_names(const std::vector<std::uint64_t>& names,
                                  std::uint64_t bound);

/// Readable-counter read contract over a run's op samples: every "read" op
/// is <= `attempted_incs`, and each pid's own reads never go backwards.
OracleResult check_readable_reads(const std::vector<api::OpSample>& ops,
                                  std::uint64_t attempted_incs);

/// Readable-counter quiescent exactness: a post-run read sees every
/// completed increment and nothing beyond the started ones; without crashes
/// it is exact.
OracleResult check_quiescent_read(std::uint64_t final_read,
                                  std::uint64_t completed_incs,
                                  std::uint64_t attempted_incs, bool crashed);

/// Renaming holder accounting: `holders` within [lo, hi] (hold-all without
/// crashes: exactly the acquire count; churn: 0, or at most the crashed
/// processes' leaked names).
OracleResult check_holders(std::uint64_t holders, std::uint64_t lo,
                           std::uint64_t hi);

}  // namespace renamelib::fuzz
