#include "fuzz/oracles.h"

#include <algorithm>
#include <map>
#include <set>

#include "renaming/validate.h"

namespace renamelib::fuzz {
namespace {

std::string u64s(std::uint64_t v) { return std::to_string(v); }

}  // namespace

OracleResult check_dense_prefix(const std::vector<std::uint64_t>& values) {
  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != i) {
      return OracleResult::fail(
          "dense_prefix", "position " + u64s(i) + " holds " + u64s(sorted[i]) +
                              (i > 0 && sorted[i] == sorted[i - 1]
                                   ? " (duplicate)"
                                   : " (gap)"));
    }
  }
  return OracleResult::pass("dense_prefix");
}

OracleResult check_unique_bounded(const std::vector<std::uint64_t>& values,
                                  std::uint64_t bound) {
  std::set<std::uint64_t> seen;
  for (const std::uint64_t v : values) {
    if (!seen.insert(v).second) {
      return OracleResult::fail("unique_bounded", "duplicate value " + u64s(v));
    }
    if (v >= bound) {
      return OracleResult::fail(
          "unique_bounded", "value " + u64s(v) + " >= bound " + u64s(bound));
    }
  }
  return OracleResult::pass("unique_bounded");
}

OracleResult check_escrow_bound(const std::vector<std::uint64_t>& values,
                                std::uint64_t attempted, int nproc,
                                std::uint64_t quota) {
  const std::uint64_t bound =
      attempted + static_cast<std::uint64_t>(nproc) * quota;
  std::set<std::uint64_t> seen;
  for (const std::uint64_t v : values) {
    if (!seen.insert(v).second) {
      return OracleResult::fail("escrow_bound", "duplicate value " + u64s(v));
    }
    if (v >= bound) {
      return OracleResult::fail(
          "escrow_bound", "over-issue: value " + u64s(v) + " >= " +
                              u64s(attempted) + " + " + u64s(nproc) + "*" +
                              u64s(quota));
    }
  }
  return OracleResult::pass("escrow_bound");
}

OracleResult check_renaming_names(const std::vector<std::uint64_t>& names,
                                  std::uint64_t bound) {
  const auto unique = renaming::check_unique(names);
  if (!unique.ok) return OracleResult::fail("renaming_unique", unique.error);
  const auto tight = renaming::check_tight(names, bound);
  if (!tight.ok) return OracleResult::fail("renaming_tight", tight.error);
  return OracleResult::pass("renaming_unique_tight");
}

OracleResult check_readable_reads(const std::vector<api::OpSample>& ops,
                                  std::uint64_t attempted_incs) {
  std::map<int, std::uint64_t> last_read;
  for (const auto& op : ops) {
    if (op.kind != "read") continue;
    if (op.value > attempted_incs) {
      return OracleResult::fail(
          "readable_bound", "pid " + std::to_string(op.pid) + " read " +
                                u64s(op.value) + " > started increments " +
                                u64s(attempted_incs));
    }
    auto [it, fresh] = last_read.try_emplace(op.pid, op.value);
    if (!fresh) {
      if (op.value < it->second) {
        return OracleResult::fail(
            "readable_monotone",
            "pid " + std::to_string(op.pid) + " reads went backwards: " +
                u64s(it->second) + " then " + u64s(op.value));
      }
      it->second = op.value;
    }
  }
  return OracleResult::pass("readable_reads");
}

OracleResult check_quiescent_read(std::uint64_t final_read,
                                  std::uint64_t completed_incs,
                                  std::uint64_t attempted_incs, bool crashed) {
  if (final_read < completed_incs) {
    return OracleResult::fail(
        "quiescent_read", "final read " + u64s(final_read) +
                              " < completed increments " + u64s(completed_incs));
  }
  if (final_read > attempted_incs) {
    return OracleResult::fail(
        "quiescent_read", "final read " + u64s(final_read) +
                              " > started increments " + u64s(attempted_incs));
  }
  if (!crashed && final_read != completed_incs) {
    return OracleResult::fail(
        "quiescent_read", "crash-free final read " + u64s(final_read) +
                              " != completed increments " +
                              u64s(completed_incs));
  }
  return OracleResult::pass("quiescent_read");
}

OracleResult check_holders(std::uint64_t holders, std::uint64_t lo,
                           std::uint64_t hi) {
  if (holders < lo || holders > hi) {
    return OracleResult::fail(
        "holders", "holders() == " + u64s(holders) + ", expected in [" +
                       u64s(lo) + ", " + u64s(hi) + "]");
  }
  return OracleResult::pass("holders");
}

}  // namespace renamelib::fuzz
