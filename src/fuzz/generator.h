/// \file
/// \brief Schema-driven generation of valid FuzzCases.
///
/// The generator never hard-codes an implementation: it walks
/// Registry::describe() and mints random *valid* specs straight from the
/// typed option schemas — integers at and near their declared boundaries
/// (min, min+1, the default, a random interior point, and a capped maximum
/// that keeps construction cheap), every enum choice, both booleans, and
/// nested spec options recursing into the target facet's own catalog up to a
/// fixed depth. Scenarios pair the spec with adversarial geometry: crash
/// storms, think-time/bursty arrivals, hot read mixes, and (for small cases)
/// exhaustive schedule exploration via sim/explore.
///
/// sanitize() is the one place runtime invariants are enforced — the library
/// aborts (RENAMELIB_ENSURE) on geometry a schema cannot express, e.g. a
/// lease broker serving more pids than its procs= slots — so every generated
/// or mutated case passes through it before running. It is idempotent:
/// sanitizing a sanitized case changes nothing, which keeps shrinking and
/// replay stable.
#pragma once

#include <vector>

#include "api/registry.h"
#include "core/rng.h"
#include "fuzz/corpus.h"

namespace renamelib::fuzz {

/// Mints valid FuzzCases from the registry's own catalog.
class Generator {
 public:
  /// Deepest nested-spec chain a generated spec may carry (the outer spec
  /// counts as depth 1).
  static constexpr int kMaxSpecDepth = 3;

  explicit Generator(const api::Registry& registry);

  /// The catalog snapshot generation draws from.
  const std::vector<api::EntryDescription>& catalog() const {
    return catalog_;
  }

  /// A case exercising exactly `entry` (random options, random scenario) —
  /// the phase that guarantees every registered entry runs at least once.
  FuzzCase case_for_entry(const api::EntryDescription& entry, Rng& rng) const;

  /// A case for a uniformly random catalog entry.
  FuzzCase random_case(Rng& rng) const;

  /// A mutant of `c`: 1-3 tweaks drawn from {re-roll one spec option, drop
  /// one option, regrow a nested inner, bump geometry, toggle the crash
  /// plan, reshape arrivals, switch scheduler/workload, reseed}. Sanitized.
  FuzzCase mutate(const FuzzCase& c, Rng& rng) const;

  /// A random valid Spec for `entry`; `depth` counts this level (nested
  /// options stop recursing at kMaxSpecDepth).
  api::Spec random_spec(const api::EntryDescription& entry, Rng& rng,
                        int depth) const;

  /// Enforces every runtime invariant a case could trip (see file comment):
  /// geometry clamps, workload legality per facet/entry, lease procs= at
  /// least the scenario's nproc (recursively through nested specs), bounded
  /// inner dispensers under a lease wide enough not to saturate mid-run.
  /// Idempotent; falls back to the entry's bare default spec if the spec
  /// no longer validates after repair (never expected, but fuzzers assume
  /// the worst).
  void sanitize(FuzzCase& c) const;

 private:
  const api::EntryDescription* entry_of(api::Facet facet,
                                        const std::string& name) const;
  std::string random_int_value(const api::OptionSchema& o, Rng& rng) const;
  void random_scenario(FuzzCase& c, Rng& rng) const;
  api::Spec repair_spec(const api::Spec& spec, api::Facet facet,
                        int nproc) const;

  const api::Registry& registry_;
  std::vector<api::EntryDescription> catalog_;
};

}  // namespace renamelib::fuzz
