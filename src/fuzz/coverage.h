/// \file
/// \brief Branch-style execution coverage for the spec/schedule fuzzer.
///
/// A process-wide map of cheap counters, ticked from the interesting
/// decision points of the runtime — scheduler grants in the simulated
/// executor (which pid ran after which, on what kind of shared step, in
/// which protocol phase), CAS-failure paths in core/Register, elimination
/// pairings/handoffs/reclaims in the sharded layer, and the lease broker's
/// refill/pool-grant/seize events. The fuzzer (src/fuzz/fuzzer.h) resets the
/// map before each generated execution and afterwards folds the hit cells
/// into an AFL-style (cell, log-bucketed count) feature set: an input that
/// lights up a feature no previous input produced is "interesting" and kept
/// for mutation, which is what steers the search toward rare interleavings
/// instead of re-sampling the common ones.
///
/// The hooks are free when idle: every instrumentation site checks one
/// relaxed atomic flag and branches away, so benches and tests that never
/// enable coverage pay a load+branch on their *slow* paths only (the hooks
/// sit on failure/collision/refill paths, never on a fast path's success
/// branch). Hits are relaxed increments on a fixed-size array — safe from
/// any thread, and deterministic under the simulated backend because grants
/// serialize all shared-memory activity.
///
/// Features must be reproducible across process runs: NEVER feed raw
/// pointers into `hit` (allocation addresses vary run to run) — use pids,
/// step kinds, slot indices, and hash_str() of label strings.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "obs/sites.h"

namespace renamelib::fuzz {

/// Instrumentation site identifiers — the shared obs::Site catalog
/// (obs/sites.h is the single source of truth; the event bus and flight
/// recorder consume the same ids). The (site, feature) pair is hashed into
/// the map, so two sites never alias by construction alone — only by hash
/// collision, which the map size keeps rare.
using CovSite = obs::Site;

/// The process-wide coverage map. All methods are thread-safe; reset() and
/// observe() must not race with an ongoing instrumented execution (the
/// fuzzer calls them strictly between runs).
class Coverage {
 public:
  /// Counter cells in the map. Power of two; large enough that the few
  /// hundred distinct features a run can produce rarely collide.
  static constexpr std::size_t kMapSize = 1 << 15;

  /// The process-wide instance.
  static Coverage& instance();

  /// Turns the instrumentation hooks on or off (off is the default; the
  /// switch is the obs::Gate coverage bit, so obs::emit's single mask load
  /// covers the disabled cost of this consumer too).
  static void set_enabled(bool on) { obs::Gate::set(obs::Gate::kCoverage, on); }
  /// True iff hooks record hits.
  static bool enabled() { return obs::Gate::enabled(obs::Gate::kCoverage); }

  /// Zeroes every cell (start of one measured execution).
  void reset();

  /// Records one hit of `site` with a data-dependent `feature`.
  void hit(CovSite site, std::uint64_t feature) noexcept {
    const std::uint64_t h =
        mix(static_cast<std::uint64_t>(site) * 0x9E3779B97F4A7C15ULL ^ feature);
    map_[static_cast<std::size_t>(h & (kMapSize - 1))].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// The nonzero cells of the map as (cell index, log-bucketed count):
  /// counts are folded into AFL-style buckets 1, 2, 3, 4–7, 8–15, 16–31,
  /// 32–127, 128+ so "hit a few more times" is not endlessly novel.
  std::vector<std::pair<std::uint32_t, std::uint8_t>> observe() const;

  /// Order-insensitive hash of observe() — equal iff the bucketed coverage
  /// of two runs is equal. Used by determinism checks.
  std::uint64_t fingerprint() const;

  /// Stable FNV-1a hash of a NUL-terminated string (labels); never hash the
  /// pointer itself.
  static std::uint64_t hash_str(const char* s) noexcept {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (; s != nullptr && *s != '\0'; ++s) {
      h = (h ^ static_cast<unsigned char>(*s)) * 0x100000001B3ULL;
    }
    return h;
  }

  /// splitmix64 finalizer — the map's index mixer, public so callers can
  /// combine multi-part features before hitting.
  static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

 private:
  Coverage();

  std::unique_ptr<std::atomic<std::uint32_t>[]> map_;
};

/// Coverage-only hook (legacy spelling). New instrumentation sites should
/// call obs::emit (obs/emit.h), which fans out to the event bus and flight
/// recorder as well; cov_hit remains for call sites that are by construction
/// fuzzer-internal.
inline void cov_hit(CovSite site, std::uint64_t feature) noexcept {
  if (Coverage::enabled()) Coverage::instance().hit(site, feature);
}

}  // namespace renamelib::fuzz
