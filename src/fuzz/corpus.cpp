#include "fuzz/corpus.h"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace renamelib::fuzz {
namespace {

constexpr const char* kFormat = "renamelib.fuzz_case.v1";

const char* work_name(Work w) {
  switch (w) {
    case Work::kStandard: return "standard";
    case Work::kChurn: return "churn";
    case Work::kExplore: return "explore";
  }
  return "?";
}

Work work_from(const std::string& s) {
  if (s == "standard") return Work::kStandard;
  if (s == "churn") return Work::kChurn;
  if (s == "explore") return Work::kExplore;
  throw std::invalid_argument("fuzz case: unknown work '" + s + "'");
}

const char* sched_name(api::Sched s) {
  switch (s) {
    case api::Sched::kRandom: return "random";
    case api::Sched::kRoundRobin: return "round-robin";
    case api::Sched::kObstruction: return "obstruction";
  }
  return "?";
}

api::Sched sched_from(const std::string& s) {
  if (s == "random") return api::Sched::kRandom;
  if (s == "round-robin") return api::Sched::kRoundRobin;
  if (s == "obstruction") return api::Sched::kObstruction;
  throw std::invalid_argument("fuzz case: unknown sched '" + s + "'");
}

const char* arrival_name(api::Arrival a) {
  return a == api::Arrival::kBursty ? "bursty" : "steady";
}

api::Arrival arrival_from(const std::string& s) {
  if (s == "steady") return api::Arrival::kSteady;
  if (s == "bursty") return api::Arrival::kBursty;
  throw std::invalid_argument("fuzz case: unknown arrival '" + s + "'");
}

/// Escapes the two characters the writer can actually emit inside a string
/// (spec grammar forbids quotes/backslashes; notes are author-controlled,
/// but a stray quote must not corrupt the document).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Minimal parser for the flat v1 format: one object, string and unsigned
/// integer values. Not a general JSON parser by design.
std::map<std::string, std::string> parse_flat_object(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
  };
  const auto expect = [&](char c) {
    skip_ws();
    if (i >= text.size() || text[i] != c) {
      throw std::invalid_argument(std::string("fuzz case: expected '") + c +
                                  "' at offset " + std::to_string(i));
    }
    ++i;
  };
  const auto parse_string = [&] {
    expect('"');
    std::string out;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      out += text[i++];
    }
    expect('"');
    return out;
  };
  expect('{');
  skip_ws();
  if (i < text.size() && text[i] == '}') return kv;
  for (;;) {
    const std::string key = parse_string();
    expect(':');
    skip_ws();
    std::string value;
    if (i < text.size() && text[i] == '"') {
      value = parse_string();
    } else {
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) != 0)) {
        value += text[i++];
      }
      if (value.empty()) {
        throw std::invalid_argument(
            "fuzz case: expected a string or unsigned integer value for '" +
            key + "'");
      }
    }
    if (!kv.emplace(key, value).second) {
      throw std::invalid_argument("fuzz case: duplicate key '" + key + "'");
    }
    skip_ws();
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    break;
  }
  expect('}');
  return kv;
}

std::uint64_t take_u64(std::map<std::string, std::string>& kv,
                       const std::string& key, std::uint64_t def) {
  const auto it = kv.find(key);
  if (it == kv.end()) return def;
  const std::string v = it->second;
  kv.erase(it);
  try {
    return std::stoull(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("fuzz case: '" + key +
                                "' is not an unsigned integer: " + v);
  }
}

std::string take_str(std::map<std::string, std::string>& kv,
                     const std::string& key, const std::string& def) {
  const auto it = kv.find(key);
  if (it == kv.end()) return def;
  std::string v = it->second;
  kv.erase(it);
  return v;
}

}  // namespace

api::Scenario FuzzCase::scenario() const {
  api::Scenario s;
  s.nproc = nproc;
  s.ops_per_proc = ops_per_proc;
  s.backend = api::Backend::kSimulated;
  s.sched = sched;
  s.seed = seed;
  s.crashes.max_crashes = max_crashes;
  s.crashes.crash_step_max = crash_step_max;
  s.arrival = arrival;
  s.think_max = think_max;
  s.burst_max = burst_max;
  s.zipf_s = static_cast<double>(zipf_milli) / 1000.0;
  s.read_period = read_period;
  return s;
}

std::string serialize_case(const FuzzCase& c) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"format\": \"" << kFormat << "\",\n";
  out << "  \"facet\": \"" << api::facet_name(c.facet) << "\",\n";
  out << "  \"spec\": \"" << escape(c.spec) << "\",\n";
  out << "  \"work\": \"" << work_name(c.work) << "\",\n";
  out << "  \"nproc\": " << c.nproc << ",\n";
  out << "  \"ops_per_proc\": " << c.ops_per_proc << ",\n";
  out << "  \"sched\": \"" << sched_name(c.sched) << "\",\n";
  out << "  \"seed\": " << c.seed << ",\n";
  out << "  \"max_crashes\": " << c.max_crashes << ",\n";
  out << "  \"crash_step_max\": " << c.crash_step_max << ",\n";
  out << "  \"arrival\": \"" << arrival_name(c.arrival) << "\",\n";
  out << "  \"think_max\": " << c.think_max << ",\n";
  out << "  \"burst_max\": " << c.burst_max << ",\n";
  out << "  \"zipf_milli\": " << c.zipf_milli << ",\n";
  out << "  \"read_period\": " << c.read_period << ",\n";
  out << "  \"note\": \"" << escape(c.note) << "\"\n";
  out << "}\n";
  return out.str();
}

FuzzCase parse_case(const std::string& text) {
  auto kv = parse_flat_object(text);
  const std::string format = take_str(kv, "format", "");
  if (format != kFormat) {
    throw std::invalid_argument("fuzz case: unsupported format '" + format +
                                "' (want " + std::string(kFormat) + ")");
  }
  FuzzCase c;
  c.facet = api::facet_from_name(take_str(kv, "facet", "counter"));
  c.spec = take_str(kv, "spec", "");
  if (c.spec.empty()) throw std::invalid_argument("fuzz case: missing spec");
  c.work = work_from(take_str(kv, "work", "standard"));
  c.nproc = static_cast<int>(take_u64(kv, "nproc", 4));
  c.ops_per_proc = static_cast<int>(take_u64(kv, "ops_per_proc", 2));
  c.sched = sched_from(take_str(kv, "sched", "random"));
  c.seed = take_u64(kv, "seed", 1);
  c.max_crashes = static_cast<std::size_t>(take_u64(kv, "max_crashes", 0));
  c.crash_step_max = take_u64(kv, "crash_step_max", 2);
  c.arrival = arrival_from(take_str(kv, "arrival", "steady"));
  c.think_max = static_cast<int>(take_u64(kv, "think_max", 0));
  c.burst_max = static_cast<int>(take_u64(kv, "burst_max", 4));
  // Tolerant default: pre-zipf corpus files parse unchanged (uniform draws).
  c.zipf_milli = take_u64(kv, "zipf_milli", 0);
  c.read_period = static_cast<int>(take_u64(kv, "read_period", 3));
  c.note = take_str(kv, "note", "");
  if (!kv.empty()) {
    throw std::invalid_argument("fuzz case: unknown key '" +
                                kv.begin()->first + "'");
  }
  return c;
}

FuzzCase load_case_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read fuzz case: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_case(buf.str());
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(path + ": " + e.what());
  }
}

void write_case_file(const FuzzCase& c, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("cannot write fuzz case: " + path);
  out << serialize_case(c);
  if (!out) throw std::runtime_error("failed writing fuzz case: " + path);
}

std::uint64_t case_hash(const FuzzCase& c) {
  const std::string text = serialize_case(c);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char ch : text) {
    h = (h ^ static_cast<unsigned char>(ch)) * 0x100000001B3ULL;
  }
  return h;
}

}  // namespace renamelib::fuzz
