#include "lease/lease_broker.h"

#include "core/assert.h"
#include "obs/emit.h"

namespace renamelib::lease {
namespace {

// Slot word layout: epoch:16 | ticket:24 | granted:12 | end:12. Word 0 is
// the idle slot (installs always carry epoch >= 1). Pool entries reuse the
// ticket/granted/end fields with epoch 0; 0 doubles as the empty sentinel
// because a pushed range always has granted < end, so end >= 1.
constexpr std::uint64_t kFieldBits12 = 0xFFFULL;
constexpr std::uint64_t kTicketBits = 0xFFFFFFULL;
constexpr std::uint64_t kMaxTicket = kTicketBits;  // 2^24 - 1
constexpr std::uint64_t kPoolEmpty = 0;

constexpr std::uint64_t pack(std::uint64_t epoch, std::uint64_t ticket,
                             std::uint64_t granted, std::uint64_t end) {
  return (epoch & 0xFFFFULL) << 48 | (ticket & kTicketBits) << 24 |
         (granted & kFieldBits12) << 12 | (end & kFieldBits12);
}

constexpr std::uint64_t epoch_of(std::uint64_t w) { return w >> 48; }
constexpr std::uint64_t ticket_of(std::uint64_t w) {
  return (w >> 24) & kTicketBits;
}
constexpr std::uint64_t granted_of(std::uint64_t w) {
  return (w >> 12) & kFieldBits12;
}
constexpr std::uint64_t end_of(std::uint64_t w) { return w & kFieldBits12; }

std::uint64_t next_epoch(std::uint64_t w) {
  const std::uint64_t e = (epoch_of(w) + 1) & 0xFFFFULL;
  return e == 0 ? 1 : e;  // epoch 0 is reserved for the idle word
}

}  // namespace

LeaseBroker::LeaseBroker(Options options, Mint mint)
    : options_(options), mint_(std::move(mint)) {
  RENAMELIB_ENSURE(options_.procs >= 1, "lease broker needs >= 1 pid slot");
  RENAMELIB_ENSURE(options_.quota >= 1 && options_.quota <= 2048,
                   "lease quota must be in [1, 2048] (12-bit offsets)");
  if (options_.window == 0) {
    options_.window = options_.quota / 4 == 0 ? 1 : options_.quota / 4;
  }
  if (options_.window > options_.quota) options_.window = options_.quota;
  RENAMELIB_ENSURE(options_.pool_slots >= 1, "lease pool needs >= 1 slot");
  slots_ = std::make_unique<RegisterArray<std::uint64_t>>(
      static_cast<std::size_t>(options_.procs), 0);
  pool_ = std::make_unique<RegisterArray<std::uint64_t>>(options_.pool_slots,
                                                         kPoolEmpty);
  last_seen_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      static_cast<std::size_t>(options_.procs));
  for (int p = 0; p < options_.procs; ++p) last_seen_[p] = 0;
  local_ = std::make_unique<Local[]>(static_cast<std::size_t>(options_.procs));
}

std::uint64_t LeaseBroker::serve_slow(Ctx& ctx, Local& local) {
  const int pid = ctx.pid();
  for (;;) {
    if (local.cursor < local.limit) {
      // The granted window was replenished below: the position is
      // exclusively ours at zero shared steps (base/limit mirror the packed
      // slot word, unpacked once per install/advance — see serve()).
      local.serves += 1;
      return local.base + local.cursor++;
    }
    if (local.saturated) {
      // The inner dispenser is exhausted; pin the saturating value like any
      // bounded counter does.
      return static_cast<std::uint64_t>(options_.quota) *
                 options_.ticket_limit -
             1;
    }
    const std::uint64_t w = local.word;
    if (w != 0 && granted_of(w) < end_of(w)) {
      // Advance the watermark on our own slot; the CAS doubles as the
      // heartbeat reclaim scans watch.
      const std::uint64_t g = granted_of(w) + options_.window;
      const std::uint64_t capped = g > end_of(w) ? end_of(w) : g;
      std::uint64_t expected = w;
      const std::uint64_t desired =
          pack(epoch_of(w), ticket_of(w), capped, end_of(w));
      if ((*slots_)[static_cast<std::size_t>(pid)].compare_exchange(
              ctx, expected, desired)) {
        local.word = desired;
        local.limit = static_cast<std::uint32_t>(capped);
        local.advances += 1;
        continue;
      }
      // Seized: the observed word has end == granted under a newer epoch.
      // Everything below granted_of(w) was already ours and is spent
      // (cursor == granted here), so fall through to a refill.
      local.word = expected;
      continue;
    }
    refill(ctx, pid, local);
  }
}

void LeaseBroker::refill(Ctx& ctx, int pid, Local& local) {
  // Publish this pid into the reclaim scan's watermark before the lease can
  // exist: every installed slot sits at or below max_pid_.
  int seen = max_pid_.load(std::memory_order_relaxed);
  while (pid > seen &&
         !max_pid_.compare_exchange_weak(seen, pid, std::memory_order_relaxed)) {
  }
  const std::uint64_t n =
      refill_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.reclaim_period != 0 && n % options_.reclaim_period == 0) {
    (void)reclaim(ctx);
  }
  // Re-read the slot: a seizure may have bumped the epoch past our cache,
  // and the install below must move strictly forward from whatever is there.
  const std::uint64_t current =
      (*slots_)[static_cast<std::size_t>(pid)].load(ctx);
  std::uint64_t ticket = 0, from = 0, to = 0;
  std::uint64_t entry = 0;
  if (pool_pop(ctx, entry)) {
    ticket = ticket_of(entry);
    from = granted_of(entry);
    to = end_of(entry);
    local.pool_grants += 1;
    obs::emit(obs::Site::kLeaseRefillPool,
              static_cast<std::uint64_t>(pid) << 16 | (to - from));
  } else {
    ticket = mint_(ctx);
    if (options_.ticket_limit != 0 && ticket + 1 >= options_.ticket_limit) {
      // The inner dispenser saturated (bounded counters keep returning their
      // last value); reusing the ticket would duplicate positions.
      local.saturated = true;
      return;
    }
    RENAMELIB_ENSURE(ticket <= kMaxTicket,
                     "lease ticket space exhausted (24-bit tickets)");
    from = 0;
    to = options_.quota;
    local.minted += 1;
    obs::emit(obs::Site::kLeaseRefillMint, static_cast<std::uint64_t>(pid));
  }
  const std::uint64_t g = from + options_.window;
  const std::uint64_t capped = g > to ? to : g;
  const std::uint64_t word = pack(next_epoch(current), ticket, capped, to);
  (*slots_)[static_cast<std::size_t>(pid)].store(ctx, word);
  local.word = word;
  local.cursor = static_cast<std::uint32_t>(from);
  local.base = ticket * options_.quota;
  local.limit = static_cast<std::uint32_t>(capped);
  local.refills += 1;
}

bool LeaseBroker::pool_pop(Ctx& ctx, std::uint64_t& entry) {
  if (pool_hint_.load(std::memory_order_relaxed) <= 0) return false;
  for (std::size_t i = 0; i < options_.pool_slots; ++i) {
    std::uint64_t seen = (*pool_)[i].load(ctx);
    if (seen == kPoolEmpty) continue;
    if ((*pool_)[i].compare_exchange(ctx, seen, kPoolEmpty)) {
      entry = seen;
      pool_hint_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void LeaseBroker::pool_push(Ctx& ctx, std::uint64_t entry) {
  pool_hint_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < options_.pool_slots; ++i) {
    std::uint64_t expected = kPoolEmpty;
    if ((*pool_)[i].load(ctx) != kPoolEmpty) continue;
    if ((*pool_)[i].compare_exchange(ctx, expected, entry)) return;
  }
  // No free pool slot: the range leaks (bounded by pool_slots outstanding
  // reclaims; only reachable through seizures, never the clean path).
  pool_hint_.fetch_sub(1, std::memory_order_relaxed);
  local_[ctx.pid()].dropped_ranges += 1;
  obs::emit(obs::Site::kLeaseDrop, ticket_of(entry));
}

std::size_t LeaseBroker::reclaim(Ctx& ctx) {
  RENAMELIB_ENSURE(ctx.pid() >= 0 && ctx.pid() < options_.procs,
                   "pid exceeds the lease broker's procs= geometry");
  Local& mine = local_[ctx.pid()];
  std::size_t seized = 0;
  // No slot above the refill watermark was ever installed; scanning further
  // would only churn idle words.
  const int bound = max_pid_.load(std::memory_order_relaxed) + 1;
  for (int q = 0; q < bound; ++q) {
    std::uint64_t w = (*slots_)[static_cast<std::size_t>(q)].load(ctx);
    const std::uint64_t before =
        last_seen_[q].exchange(w, std::memory_order_relaxed);
    if (w == 0 || w != before) continue;  // idle, or made progress
    if (granted_of(w) >= end_of(w)) continue;  // nothing left to seize
    const std::uint64_t revoked =
        pack(next_epoch(w), ticket_of(w), granted_of(w), granted_of(w));
    std::uint64_t expected = w;
    if (!(*slots_)[static_cast<std::size_t>(q)].compare_exchange(
            ctx, expected, revoked)) {
      continue;  // the holder advanced or refilled first — it is alive
    }
    // The ungranted tail [granted, end) of ticket_of(w) is now ours; escrow
    // it for the next refill. (A crash between the seizure and this push
    // leaks the range — crash schedules tolerate holes.)
    pool_push(ctx, pack(0, ticket_of(w), granted_of(w), end_of(w)));
    last_seen_[q].store(revoked, std::memory_order_relaxed);
    seized += 1;
    mine.reclaimed_ranges += 1;
    mine.reclaimed_positions += end_of(w) - granted_of(w);
    obs::emit(obs::Site::kLeaseSeize, static_cast<std::uint64_t>(q) << 16 |
                                          (end_of(w) - granted_of(w)));
  }
  return seized;
}

LeaseBroker::Stats LeaseBroker::stats() const {
  Stats s;
  for (int p = 0; p < options_.procs; ++p) {
    const Local& l = local_[p];
    s.local_serves += l.serves;
    s.advances += l.advances;
    s.refills += l.refills;
    s.minted += l.minted;
    s.pool_grants += l.pool_grants;
    s.reclaimed_ranges += l.reclaimed_ranges;
    s.reclaimed_positions += l.reclaimed_positions;
    s.dropped_ranges += l.dropped_ranges;
  }
  return s;
}

}  // namespace renamelib::lease
