// Escrow range-leasing broker: batch-amortized id service over any dispenser.
//
// The POAC escrow-transaction idea applied to the paper's dispensers: instead
// of crossing the shared object on every request, a client pid leases a
// *range* of `quota` positions minted by one inner-dispenser operation
// (`mint` hands back ticket t, the lease covers positions
// [t*quota, (t+1)*quota)) and then serves requests thread-locally until the
// range drains. With proper quota sizing the local-serve rate approaches
// 1 - 1/quota, turning the contended hot path into a refill path crossed once
// per quota requests.
//
// Crash-aware reclaim is built into the grant representation. Each pid owns
// one word-sized *slot register* packing
//
//   epoch:16 | ticket:24 | granted:12 | end:12
//
// where [granted, end) is the still-ungranted tail of the lease (offsets
// within the ticket's range). The holder keeps its serve cursor in private
// memory and hands out positions below `granted` at zero shared steps; when
// the cursor reaches `granted` it *advances* the watermark by `window`
// positions with one CAS on its own (uncontended, padded) slot. That CAS is
// the heartbeat: a slot whose word is bit-identical across two reclaim scans
// belongs to a holder that served nothing in between — crashed, or idle. A
// reclaimer seizes such a lease by CASing `end := granted` with a bumped
// epoch and pushes the ungranted tail [granted, end) into a shared pool of
// free ranges, from which later refills are served before minting new
// tickets.
//
// The seizure race is decisive and *false positives are free*: the victim's
// next advance CAS fails (epoch moved), but everything below `granted` is
// still exclusively its own, so a live-but-idle holder merely drains its
// granted window and refills — no position is ever handed out twice, and no
// position a live holder could still serve is leaked. Only a genuinely
// crashed holder leaks, and then exactly its in-flight granted window
// [cursor, granted), which is unknowable without the dead pid's private
// cursor. The epoch bump protects the seizure CAS from A-B-A against a
// drain-and-refill that restores identical ticket/watermark bits.
//
// Every slot and pool access goes through core/Register: refills, advances,
// scans, and seizures cost paper-model steps and are schedulable (and
// crashable) by the simulator's adversary; local serves are private-memory
// reads, charged zero steps like any other local computation.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "core/ctx.h"
#include "core/register.h"

namespace renamelib::lease {

class LeaseBroker {
 public:
  /// Geometry and reclaim policy of the broker.
  struct Options {
    int procs = 128;          ///< max client pids (one slot each)
    std::uint32_t quota = 64; ///< positions per leased range, in [1, 2048]
    std::uint32_t window = 0; ///< positions granted per advance; 0 = quota/4
    std::size_t pool_slots = 16;  ///< escrow pool capacity (reclaimed ranges)
    /// Refills between stale-slot reclaim scans; 0 disables in-line reclaim
    /// (explicit reclaim() still works).
    std::uint64_t reclaim_period = 16;
    /// Tickets the inner dispenser can mint before saturating (a bounded
    /// inner counter keeps returning its last value); 0 = unbounded. Once
    /// the limit ticket appears, serve() saturates at quota*ticket_limit - 1.
    std::uint64_t ticket_limit = 0;
  };

  /// Mints one fresh range ticket from the inner dispenser (one shared
  /// crossing; e.g. ICounter::next or IRenaming::acquire - 1).
  using Mint = std::function<std::uint64_t(Ctx&)>;

  /// Running totals (meta-level diagnostics, not protocol state).
  struct Stats {
    std::uint64_t local_serves = 0;   ///< requests served at zero shared steps
    std::uint64_t advances = 0;       ///< watermark CASes (the heartbeat)
    std::uint64_t refills = 0;        ///< lease installs (pool or mint)
    std::uint64_t minted = 0;         ///< fresh tickets from the inner object
    std::uint64_t pool_grants = 0;    ///< refills served from reclaimed ranges
    std::uint64_t reclaimed_ranges = 0;     ///< successful seizures
    std::uint64_t reclaimed_positions = 0;  ///< positions returned to the pool
    std::uint64_t dropped_ranges = 0;       ///< seized with no free pool slot
  };

  LeaseBroker(Options options, Mint mint);

  /// Serves the next unique position for `ctx.pid()`: a private-memory
  /// cursor bump while the granted window lasts, an advance CAS on the own
  /// slot when it drains, a pool-or-mint refill when the lease is spent.
  /// The fast path lives here so callers inline it: a bounds check, a
  /// compare, and two adds — no shared access, no out-of-line call.
  std::uint64_t serve(Ctx& ctx) {
    const int pid = ctx.pid();
    RENAMELIB_ENSURE(pid >= 0 && pid < options_.procs,
                     "pid exceeds the lease broker's procs= geometry");
    Local& local = local_[pid];
    if (local.cursor < local.limit) {
      local.serves += 1;
      return local.base + local.cursor++;
    }
    return serve_slow(ctx, local);
  }

  /// One reclaim scan: seizes the ungranted tail of every lease whose slot
  /// word did not change since the previous scan observed it (see file
  /// comment — safe against live holders by construction). Returns the
  /// number of ranges seized. Two back-to-back calls at quiescence reclaim
  /// every partially-granted lease, crashed or idle.
  std::size_t reclaim(Ctx& ctx);

  /// Positions per leased range.
  std::uint32_t quota() const noexcept { return options_.quota; }

  /// Snapshot of the running totals (quiescently exact).
  Stats stats() const;

 private:
  /// Per-pid private state. The hot fields mirror the own slot word in
  /// unpacked form so the serve fast path is a compare and two adds — no
  /// shifts, no multiply, no shared access. Event counters live here too
  /// (owner-written, summed by stats()), keeping even the advance/refill
  /// paths free of shared statistics traffic. Padded so neighbouring pids
  /// never share a line.
  struct alignas(64) Local {
    std::uint64_t base = 0;    ///< ticket(word) * quota, cached at install
    std::uint32_t cursor = 0;  ///< next offset to serve, < limit
    std::uint32_t limit = 0;   ///< granted(word), cached at install/advance
    std::uint64_t word = 0;    ///< last own-slot word this pid installed/read
    bool saturated = false;    ///< ticket_limit hit; serve() pins the max
    std::uint64_t serves = 0;  ///< owner-written share of Stats::local_serves
    std::uint64_t advances = 0;
    std::uint64_t refills = 0;
    std::uint64_t minted = 0;
    std::uint64_t pool_grants = 0;
    std::uint64_t reclaimed_ranges = 0;
    std::uint64_t reclaimed_positions = 0;
    std::uint64_t dropped_ranges = 0;
  };

  std::uint64_t serve_slow(Ctx& ctx, Local& local);
  void refill(Ctx& ctx, int pid, Local& local);
  bool pool_pop(Ctx& ctx, std::uint64_t& entry);
  void pool_push(Ctx& ctx, std::uint64_t entry);

  Options options_;
  Mint mint_;
  std::unique_ptr<RegisterArray<std::uint64_t>> slots_;  ///< one per pid
  std::unique_ptr<RegisterArray<std::uint64_t>> pool_;   ///< free ranges
  /// Conservative pool-occupancy hint: bumped before a push, decremented
  /// after a pop, so 0 proves the pool empty and a refill skips the scan.
  /// Meta-level (zero steps), same status as a counting network's spray.
  std::atomic<std::int64_t> pool_hint_{0};
  /// Previous scan's observation per slot (meta-level reclaim heuristic;
  /// the seizure CAS itself is what arbitrates, so racy scans are safe).
  std::unique_ptr<std::atomic<std::uint64_t>[]> last_seen_;
  std::atomic<std::uint64_t> refill_count_{0};
  /// Highest pid that ever refilled: reclaim scans stop here instead of
  /// walking all `procs` slots (every lease passes through refill first, so
  /// no installed slot can hide above the watermark). Meta-level.
  std::atomic<int> max_pid_{-1};
  std::unique_ptr<Local[]> local_;
};

}  // namespace renamelib::lease
