/// \file
/// \brief The structured Spec AST: first-class, introspectable configuration
/// values for every registry object.
///
/// A spec describes one object as `name[:key=value,...]`. Spec v2 turns that
/// string into data: `Spec::parse` produces an AST — the implementation name
/// plus ordered key→value options, where a value is either a scalar string
/// or a *nested* Spec (bracketed, e.g. `difftree:leaf=[striped:stripes=8]`)
/// — and `Spec::print` renders the *canonical* text form: keys sorted,
/// nested values bracketed exactly when they carry options. Canonical
/// printing makes specs stable identifiers: two spellings that configure the
/// same object (`striped:elim=1,stripes=8` vs `striped:stripes=8,elim=1`)
/// print identically, so bench reports match across key reordering and
/// tools/bench_compare.py can pair runs by spec instead of by run label.
///
/// Grammar (full reference: docs/SPEC_GRAMMAR.md):
/// \verbatim
///   spec    ::= name [ ":" option { "," option } ]
///   option  ::= key "=" value
///   value   ::= "[" spec "]"          (nested spec; commas stay inside)
///             | scalar                (no top-level "," or "[ ]";
///                                      a scalar containing ":" is parsed
///                                      as a nested spec)
/// \endverbatim
///
/// `SpecBuilder` is the fluent construction side:
/// \code
///   const Spec s = SpecBuilder("difftree")
///                      .opt("depth", 3)
///                      .opt("leaf", SpecBuilder("striped").opt("stripes", 8))
///                      .build();
///   s.print();  // "difftree:depth=3,leaf=[striped:stripes=8]"
/// \endcode
///
/// Typed option *validation* (ranges, enums, nested facets) lives with the
/// registry's OptionSchema (api/registry.h); the AST itself only enforces
/// well-formedness: non-empty name, non-empty keys, no duplicate keys,
/// balanced brackets.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace renamelib::api {

class Spec;

/// One option value: a scalar string or a nested Spec. Copyable; nested
/// specs are shared immutably, so copies are cheap.
class SpecValue {
 public:
  /// Empty scalar.
  SpecValue() = default;
  /// A scalar value ("8", "hw", ...).
  SpecValue(std::string scalar) : scalar_(std::move(scalar)) {}
  /// \copydoc SpecValue(std::string)
  SpecValue(const char* scalar) : scalar_(scalar) {}
  /// A nested spec value (prints bracketed when it carries options).
  SpecValue(Spec nested);

  /// True iff this value is a nested Spec node.
  bool is_spec() const { return nested_ != nullptr; }

  /// The scalar text; throws std::invalid_argument on a nested value.
  const std::string& scalar() const;
  /// The nested Spec; throws std::invalid_argument on a scalar value.
  const Spec& spec() const;

  /// This value as a Spec: nested values verbatim, scalars promoted through
  /// Spec::parse ("atomic_fai" is the bare-name spec). Throws
  /// std::invalid_argument when the scalar is not a well-formed spec.
  Spec as_spec() const;

  /// Canonical text: scalars verbatim; nested specs bracketed iff they have
  /// options (so `leaf=[striped]` and `leaf=striped` print identically).
  std::string print() const;

 private:
  std::string scalar_;
  std::shared_ptr<const Spec> nested_;
};

/// A parsed spec: implementation name plus ordered key→value options.
class Spec {
 public:
  /// An empty spec (no name); only useful as a default-options carrier.
  Spec() = default;
  /// A bare-name spec with no options.
  explicit Spec(std::string name) : name_(std::move(name)) {}

  /// Parses `text` into an AST; throws std::invalid_argument on malformed
  /// input (empty name, missing '=', duplicate key, unbalanced brackets).
  static Spec parse(const std::string& text);

  /// Canonical text form: `name` or `name:k1=v1,...` with keys sorted
  /// byte-wise ascending and nested values via SpecValue::print. Guarantees
  /// `parse(print(s)).print() == s.print()` for every well-formed spec.
  std::string print() const;

  /// Implementation name (the part before ':').
  const std::string& name() const { return name_; }
  /// All options in the order given (parse preserves the input order;
  /// print() sorts).
  const std::vector<std::pair<std::string, SpecValue>>& options() const {
    return options_;
  }

  /// True iff `key` was given.
  bool has(std::string_view key) const { return find(key) != nullptr; }
  /// The value of `key`, or nullptr when absent.
  const SpecValue* find(std::string_view key) const;

  /// Canonical text of `key`'s value, or `def` when absent.
  std::string get(std::string_view key, std::string_view def) const;
  /// Unsigned value of `key` (throws std::invalid_argument when the value
  /// is nested or not an unsigned integer), or `def` when absent.
  std::uint64_t get_u64(std::string_view key, std::uint64_t def) const;
  /// Boolean value of `key` ("0" or "1"; throws otherwise), or `def`.
  bool get_bool(std::string_view key, bool def) const;
  /// Nested-spec value of `key` (scalars promoted via SpecValue::as_spec),
  /// or `parse(def)` when absent.
  Spec get_spec(std::string_view key, std::string_view def) const;

  /// Appends an option; throws std::invalid_argument on an empty key, a
  /// duplicate, or a key/scalar containing grammar metacharacters
  /// (brackets, ',', ':'; '=' additionally for keys) — rejecting them here
  /// is what makes the parse(print) round-trip guarantee total.
  void set(std::string key, SpecValue value);

 private:
  std::string name_;
  std::vector<std::pair<std::string, SpecValue>> options_;
};

/// Fluent Spec construction: `SpecBuilder("striped").opt("stripes", 8)`.
/// Converts implicitly to Spec, so builders nest directly as option values.
class SpecBuilder {
 public:
  /// Starts a spec named `name`.
  explicit SpecBuilder(std::string name) : spec_(std::move(name)) {}

  /// Adds a scalar option. Throws std::invalid_argument on a duplicate key.
  SpecBuilder& opt(std::string key, std::string_view value) {
    spec_.set(std::move(key), SpecValue(std::string(value)));
    return *this;
  }
  /// Adds a numeric option (rendered in decimal; bools render as 0/1).
  SpecBuilder& opt(std::string key, std::uint64_t value) {
    spec_.set(std::move(key), SpecValue(std::to_string(value)));
    return *this;
  }
  /// Adds a nested-spec option.
  SpecBuilder& opt(std::string key, Spec nested) {
    spec_.set(std::move(key), SpecValue(std::move(nested)));
    return *this;
  }
  /// \copydoc opt(std::string,Spec)
  SpecBuilder& opt(std::string key, const SpecBuilder& nested) {
    return opt(std::move(key), nested.build());
  }

  /// The built spec.
  Spec build() const { return spec_; }
  /// Canonical text of the built spec (shorthand for build().print()).
  std::string str() const { return spec_.print(); }
  /// Builders convert to Spec wherever one is expected.
  operator Spec() const { return spec_; }

 private:
  Spec spec_;
};

}  // namespace renamelib::api
