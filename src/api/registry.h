/// \file
/// \brief The object registry: string spec -> shared object.
///
/// One facade for every renaming/counting implementation in the library.
/// Tests, benches, and examples construct objects from spec strings and
/// iterate list()/counters()/renamings() instead of hand-wiring concrete
/// classes, turning N objects x M scenarios into N + M.
///
/// Spec grammar (full reference: docs/SPEC_GRAMMAR.md):
///     name[:key=value[,key=value]...]
/// e.g. "adaptive_strong", "bounded_fai:m=1024", "bitonic_countnet:w=64",
/// "bit_batching:n=128,tas=ratrace". A value may itself be a bracketed
/// spec — "difftree:depth=3,leaf=[striped:stripes=8]" — resolved through the
/// registry by the enclosing implementation; commas inside brackets do not
/// split parameters. Unknown names or keys throw std::invalid_argument
/// (catching typos beats silently using defaults), and unknown-key errors
/// list the keys the family accepts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/counter.h"
#include "renaming/renaming.h"

namespace renamelib::api {

/// Parsed key=value options of a spec string.
class Params {
 public:
  /// Appends a key/value pair; throws std::invalid_argument on a duplicate.
  void set(std::string key, std::string value);
  /// True iff `key` was given in the spec.
  bool has(std::string_view key) const;
  /// String value of `key`, or `def` when absent.
  std::string get(std::string_view key, std::string_view def) const;
  /// Unsigned value of `key` (throws std::invalid_argument when the value is
  /// not an unsigned integer), or `def` when absent.
  std::uint64_t get_u64(std::string_view key, std::uint64_t def) const;

  /// All key/value pairs in spec order.
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return kv_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// A parsed spec string: implementation name plus its options.
struct Spec {
  std::string name;  ///< implementation name (the part before ':')
  Params params;     ///< parsed key=value options
};

/// Parses "name:k=v,k=v"; throws std::invalid_argument on malformed input.
Spec parse_spec(const std::string& spec);

/// Implementation family, for enumeration and reporting.
enum class Family {
  kRenaming,         ///< renaming protocols (IRenaming)
  kFaiCounting,      ///< renaming-derived fetch-and-increment counters
  kCountingNetwork,  ///< balancer networks used as counters
  kSharded,          ///< striped / diffracting-tree sharded counters
  kBaseline,         ///< hardware reference points
};

/// Human-readable family label ("renaming", "sharded", ...).
const char* family_name(Family f);

/// Registry entry describing one counter implementation.
struct CounterInfo {
  std::string name;                          ///< spec name, unique registry-wide
  Family family = Family::kFaiCounting;      ///< family, for enumeration
  std::string summary;                       ///< one-line description
  Consistency consistency = Consistency::kLinearizable;  ///< declared level
  std::vector<std::string> keys;             ///< accepted param keys
  /// Factory: constructs the counter from validated params.
  std::function<std::unique_ptr<ICounter>(const Params&)> make;
};

/// Registry entry describing one renaming implementation.
struct RenamingInfo {
  std::string name;                  ///< spec name, unique registry-wide
  Family family = Family::kRenaming; ///< family, for enumeration
  std::string summary;               ///< one-line description
  bool adaptive = false;  ///< namespace bound depends only on participants k
  std::vector<std::string> keys;  ///< accepted param keys
  /// Largest legal name when k dense-id requests run under these params.
  std::function<std::uint64_t(int k, const Params&)> name_bound;
  /// Max supported requests under these params (harnesses must not exceed).
  std::function<int(const Params&)> max_requests;
  /// Factory: constructs the renaming protocol from validated params.
  std::function<std::unique_ptr<renaming::IRenaming>(const Params&)> make;
};

/// The spec-string factory over every registered implementation.
class Registry {
 public:
  /// The process-wide registry, pre-populated with every built-in
  /// implementation. Safe to extend at startup (not thread-safe to mutate
  /// concurrently with use).
  static Registry& global();

  /// An empty registry (rarely useful; prefer global()).
  Registry() = default;

  /// Registers a counter entry; throws std::invalid_argument on a duplicate
  /// name (across both kinds).
  void add_counter(CounterInfo info);
  /// Registers a renaming entry; throws std::invalid_argument on a duplicate
  /// name (across both kinds).
  void add_renaming(RenamingInfo info);

  /// Constructs from a spec string; throws std::invalid_argument for unknown
  /// names, unknown keys, or malformed specs.
  std::unique_ptr<ICounter> make_counter(const std::string& spec) const;
  /// \copydoc make_counter
  std::unique_ptr<renaming::IRenaming> make_renaming(const std::string& spec) const;

  /// Entry for `name`, or nullptr if no such counter is registered.
  const CounterInfo* find_counter(std::string_view name) const;
  /// Entry for `name`, or nullptr if no such renaming is registered.
  const RenamingInfo* find_renaming(std::string_view name) const;

  /// All registered counter entries, in registration order.
  const std::vector<CounterInfo>& counters() const { return counters_; }
  /// All registered renaming entries, in registration order.
  const std::vector<RenamingInfo>& renamings() const { return renamings_; }

  /// Every registered implementation name (renamings, then counters).
  std::vector<std::string> list() const;

 private:
  std::vector<CounterInfo> counters_;
  std::vector<RenamingInfo> renamings_;
};

}  // namespace renamelib::api
