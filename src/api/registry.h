/// \file
/// \brief The multi-role object registry: structured spec -> shared object,
/// per facet, with typed option schemas and programmatic introspection.
///
/// One facade for every renaming/counting implementation in the library.
/// The registry is organized by *facet* — the public role an object plays:
///
///   * ICounter          (make_counter)  — value dispensers, next(),
///   * IRenaming         (make_renaming) — acquire/release name objects,
///   * IReadableCounter  (make_readable) — increment/read counters.
///
/// Each facet owns its own factory table; names are unique per facet, not
/// registry-wide, so one implementation may serve several roles under one
/// name (e.g. "striped" is both a dispenser counter and a readable
/// statistic counter). Tests, benches, and examples construct objects from
/// specs and iterate the facet tables instead of hand-wiring concrete
/// classes, turning N objects x M scenarios into N + M — and a new facet
/// joins by adding one Info struct and one table, without touching the
/// existing ones.
///
/// Spec v2 (api/spec.h, full reference: docs/SPEC_GRAMMAR.md): every entry
/// declares a typed OptionSchema per option — kind (int/bool/enum/spec),
/// range or choices, default, one-line doc. The registry validates a parsed
/// Spec against the schema *before* the factory runs, so unknown-name,
/// unknown-key, out-of-range, and wrong-type errors are uniform across all
/// facets: unknown names and keys carry did-you-mean suggestions (edit
/// distance <= 2) plus the valid alternatives, wrong-facet errors name the
/// facet that does know the spec, and nested spec options (e.g.
/// `difftree:leaf=[striped:stripes=8]`) are validated recursively against
/// their target facet. `describe()` exposes the whole catalog — every
/// entry, every option schema — programmatically; the `renamectl` CLI and
/// docs/SPEC_GRAMMAR.md's key tables are rendered from it.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/counter.h"
#include "api/readable.h"
#include "api/renaming.h"
#include "api/spec.h"

namespace renamelib::api {

/// Implementation family, for enumeration and reporting.
enum class Family {
  kRenaming,         ///< renaming protocols (one-shot and long-lived)
  kFaiCounting,      ///< renaming-derived fetch-and-increment counters
  kCountingNetwork,  ///< balancer networks used as counters
  kSharded,          ///< striped / diffracting-tree sharded counters
  kBaseline,         ///< hardware reference points
  kEscrow,           ///< escrow range-leasing wrappers over inner dispensers
};

/// Human-readable family label ("renaming", "sharded", ...).
const char* family_name(Family f);

/// The public role a registry entry plays — one factory table per facet.
enum class Facet {
  kCounter,   ///< ICounter: value dispensers (next())
  kRenaming,  ///< IRenaming: acquire/release name objects
  kReadable,  ///< IReadableCounter: increment/read counters
};

/// Human-readable facet label ("counter", "renaming", "readable-counter").
const char* facet_name(Facet f);

/// Facet for its facet_name() label; throws std::invalid_argument on an
/// unknown label (the error lists the valid ones).
Facet facet_from_name(std::string_view name);

/// The typed schema of one spec option: what the registry checks before an
/// entry's factory ever sees the Spec. Declared per registration, rendered
/// by Registry::describe() / `renamectl describe` / docs/SPEC_GRAMMAR.md.
struct OptionSchema {
  /// Option value kind.
  enum class Type {
    kInt,   ///< unsigned integer, checked against [min, max] (and pow2)
    kBool,  ///< "0" or "1"
    kEnum,  ///< one of `choices`
    kSpec,  ///< nested spec, validated against `spec_facet`'s table
  };

  std::string key;          ///< option key
  Type type = Type::kInt;   ///< value kind
  std::string doc;          ///< one-line description
  std::string def;          ///< default, as canonical spec text
  std::uint64_t min = 0;    ///< kInt: smallest accepted value
  std::uint64_t max = std::numeric_limits<std::uint64_t>::max();  ///< kInt
  bool pow2 = false;        ///< kInt: additionally require a power of two
  std::vector<std::string> choices;       ///< kEnum: accepted values
  Facet spec_facet = Facet::kCounter;     ///< kSpec: facet resolving the value

  /// An integer option in [lo, hi] with default `def`.
  static OptionSchema u64(std::string key, std::uint64_t def, std::uint64_t lo,
                          std::uint64_t hi, std::string doc);
  /// A power-of-two integer option in [lo, hi] (lo, hi powers of two).
  static OptionSchema pow2_u64(std::string key, std::uint64_t def,
                               std::uint64_t lo, std::uint64_t hi,
                               std::string doc);
  /// A boolean (0/1) option.
  static OptionSchema boolean(std::string key, bool def, std::string doc);
  /// An enumerated option; `def` must be one of `choices`.
  static OptionSchema choice(std::string key, std::string def,
                             std::vector<std::string> choices, std::string doc);
  /// A nested-spec option resolved through `facet`'s table.
  static OptionSchema spec(std::string key, std::string def, Facet facet,
                           std::string doc);

  /// Human-readable type+constraint text for catalogs: "int in [1, 4096]",
  /// "power of two in [2, 1024]", "enum {rnd, hw}", "spec<counter>", "bool".
  std::string type_text() const;
};

/// Registry entry describing one counter implementation.
struct CounterInfo {
  std::string name;                          ///< spec name, unique per facet
  Family family = Family::kFaiCounting;      ///< family, for enumeration
  std::string summary;                       ///< one-line description
  Consistency consistency = Consistency::kLinearizable;  ///< declared level
  std::vector<OptionSchema> options;         ///< typed option schemas
  /// Factory: constructs the counter from a schema-validated spec.
  std::function<std::unique_ptr<ICounter>(const Spec&)> make;
};

/// Registry entry describing one renaming implementation (IRenaming facet:
/// one-shot protocols behind the dense-id adapter, long-lived natively).
struct RenamingInfo {
  std::string name;                  ///< spec name, unique per facet
  Family family = Family::kRenaming; ///< family, for enumeration
  std::string summary;               ///< one-line description
  bool adaptive = false;  ///< namespace bound depends only on participants k
  bool reusable = false;  ///< release() recycles names (long-lived family)
  std::vector<OptionSchema> options;  ///< typed option schemas
  /// Largest legal name when k dense-id requests run under these options
  /// (for reusable entries: k concurrent holders).
  std::function<std::uint64_t(int k, const Spec&)> name_bound;
  /// Max supported requests under these options (harnesses must not exceed;
  /// for reusable entries this bounds *concurrent holders*, not requests).
  std::function<int(const Spec&)> max_requests;
  /// Factory: constructs the facet object from a schema-validated spec.
  std::function<std::unique_ptr<IRenaming>(const Spec&)> make;
};

/// Registry entry describing one readable (increment/read) counter.
struct ReadableInfo {
  std::string name;                      ///< spec name, unique per facet
  Family family = Family::kFaiCounting;  ///< family, for enumeration
  std::string summary;                   ///< one-line description
  Consistency consistency = Consistency::kMonotone;  ///< declared level
  std::vector<OptionSchema> options;     ///< typed option schemas
  /// Factory: constructs the readable counter from a schema-validated spec.
  std::function<std::unique_ptr<IReadableCounter>(const Spec&)> make;
};

/// One entry of the programmatic catalog (Registry::describe): the
/// facet-independent projection of a registration, option schemas included.
struct EntryDescription {
  Facet facet = Facet::kCounter;  ///< the table this entry lives in
  std::string name;               ///< spec name (unique within the facet)
  Family family = Family::kRenaming;  ///< family, for grouping
  std::string summary;            ///< one-line description
  /// consistency_name() of the declared level; "" for the renaming facet,
  /// whose contract (uniqueness/tightness) is not a consistency level.
  std::string consistency;
  bool adaptive = false;   ///< renaming facet: k-only namespace bound
  bool reusable = false;   ///< renaming facet: release() recycles names
  std::vector<OptionSchema> options;  ///< typed option schemas
};

/// One facet's factory table: registration order preserved, names unique
/// within the table. Info must have `name` and `options` members.
template <typename Info>
class FacetTable {
 public:
  /// Registers an entry; throws std::invalid_argument on a duplicate name
  /// or a malformed schema (e.g. an enum default outside its choices).
  void add(Info info);
  /// Entry for `name`, or nullptr.
  const Info* find(std::string_view name) const;
  /// All entries, in registration order.
  const std::vector<Info>& entries() const { return entries_; }
  /// All entry names, in registration order.
  std::vector<std::string> names() const;

 private:
  std::vector<Info> entries_;
};

/// The spec factory over every registered implementation, keyed by facet.
class Registry {
 public:
  /// The process-wide registry, pre-populated with every built-in
  /// implementation. Safe to extend at startup (not thread-safe to mutate
  /// concurrently with use).
  static Registry& global();

  /// An empty registry (rarely useful; prefer global()).
  Registry() = default;

  /// Registers an entry in the facet's table; throws std::invalid_argument
  /// on a duplicate name within that facet.
  void add_counter(CounterInfo info);
  /// \copydoc add_counter
  void add_renaming(RenamingInfo info);
  /// \copydoc add_counter
  void add_readable(ReadableInfo info);

  /// Constructs from a spec string; throws std::invalid_argument for
  /// malformed specs and for any schema violation (see validate()).
  std::unique_ptr<ICounter> make_counter(const std::string& spec) const;
  /// \copydoc make_counter
  std::unique_ptr<IRenaming> make_renaming(const std::string& spec) const;
  /// \copydoc make_counter
  std::unique_ptr<IReadableCounter> make_readable(const std::string& spec) const;

  /// Constructs from a parsed Spec (validated first); the path nested-spec
  /// options take, so composite factories never re-tokenize.
  std::unique_ptr<ICounter> make_counter(const Spec& spec) const;
  /// \copydoc make_counter(const Spec&)
  std::unique_ptr<IRenaming> make_renaming(const Spec& spec) const;
  /// \copydoc make_counter(const Spec&)
  std::unique_ptr<IReadableCounter> make_readable(const Spec& spec) const;

  /// Validates `spec` against `facet`'s tables and schemas without
  /// constructing: throws std::invalid_argument naming the problem —
  /// unknown name (did-you-mean + other facets knowing it), unknown key
  /// (did-you-mean + valid keys), type/range/enum violations, recursively
  /// for nested spec options.
  void validate(Facet facet, const Spec& spec) const;

  /// validate() + canonical printing: the stable identifier reports and
  /// bench_compare.py match runs by.
  std::string canonical(Facet facet, const std::string& spec) const;

  /// Entry for `name` in the counter facet, or nullptr.
  const CounterInfo* find_counter(std::string_view name) const;
  /// Entry for `name` in the renaming facet, or nullptr.
  const RenamingInfo* find_renaming(std::string_view name) const;
  /// Entry for `name` in the readable facet, or nullptr.
  const ReadableInfo* find_readable(std::string_view name) const;

  /// All registered counter entries, in registration order.
  const std::vector<CounterInfo>& counters() const {
    return counters_.entries();
  }
  /// All registered renaming entries, in registration order.
  const std::vector<RenamingInfo>& renamings() const {
    return renamings_.entries();
  }
  /// All registered readable entries, in registration order.
  const std::vector<ReadableInfo>& readables() const {
    return readables_.entries();
  }

  /// Every facet with at least one registered entry.
  std::vector<Facet> facets() const;
  /// Every name registered under `facet`, in registration order.
  std::vector<std::string> list(Facet facet) const;
  /// Every registered implementation name across all facets (renamings,
  /// counters, readables; a multi-facet name appears once per facet).
  std::vector<std::string> list() const;

  /// The full catalog: one EntryDescription per registered entry of every
  /// facet (renamings, counters, readables, each in registration order).
  std::vector<EntryDescription> describe() const;
  /// The catalog restricted to `facet`, in registration order.
  std::vector<EntryDescription> describe(Facet facet) const;
  /// The catalog entry for `name` under `facet`; throws the same
  /// unknown-name error as make_*() when absent.
  EntryDescription describe(Facet facet, std::string_view name) const;

 private:
  /// Facets other than `self` that know `name` — feeds the unknown-name
  /// error's "did you mean another facet" hint.
  std::vector<Facet> facets_knowing(std::string_view name, Facet self) const;
  /// Schema of `spec.name()` under `facet`; throws the unknown-name error.
  const std::vector<OptionSchema>& schema_of(Facet facet,
                                             std::string_view name) const;

  FacetTable<CounterInfo> counters_;
  FacetTable<RenamingInfo> renamings_;
  FacetTable<ReadableInfo> readables_;
};

}  // namespace renamelib::api
