/// \file
/// \brief The multi-role object registry: string spec -> shared object, per
/// facet.
///
/// One facade for every renaming/counting implementation in the library.
/// The registry is organized by *facet* — the public role an object plays:
///
///   * ICounter          (make_counter)  — value dispensers, next(),
///   * IRenaming         (make_renaming) — acquire/release name objects,
///   * IReadableCounter  (make_readable) — increment/read counters.
///
/// Each facet owns its own factory table; names are unique per facet, not
/// registry-wide, so one implementation may serve several roles under one
/// name (e.g. "striped" is both a dispenser counter and a readable
/// statistic counter). Tests, benches, and examples construct objects from
/// spec strings and iterate the facet tables instead of hand-wiring concrete
/// classes, turning N objects x M scenarios into N + M — and a new facet
/// joins by adding one Info struct and one table, without touching the
/// existing ones.
///
/// Spec grammar (full reference: docs/SPEC_GRAMMAR.md):
///     name[:key=value[,key=value]...]
/// e.g. "adaptive_strong", "bounded_fai:m=1024", "longlived:cap=256",
/// "bit_batching:n=128,tas=ratrace". A value may itself be a bracketed
/// spec — "difftree:depth=3,leaf=[striped:stripes=8]" — resolved through the
/// registry by the enclosing implementation; commas inside brackets do not
/// split parameters. Unknown names or keys throw std::invalid_argument
/// (catching typos beats silently using defaults), unknown-key errors list
/// the keys the family accepts, and unknown-name errors say which other
/// facet knows the name, if any.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/counter.h"
#include "api/readable.h"
#include "api/renaming.h"

namespace renamelib::api {

/// Parsed key=value options of a spec string.
class Params {
 public:
  /// Appends a key/value pair; throws std::invalid_argument on a duplicate.
  void set(std::string key, std::string value);
  /// True iff `key` was given in the spec.
  bool has(std::string_view key) const;
  /// String value of `key`, or `def` when absent.
  std::string get(std::string_view key, std::string_view def) const;
  /// Unsigned value of `key` (throws std::invalid_argument when the value is
  /// not an unsigned integer), or `def` when absent.
  std::uint64_t get_u64(std::string_view key, std::uint64_t def) const;

  /// All key/value pairs in spec order.
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return kv_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

/// A parsed spec string: implementation name plus its options.
struct Spec {
  std::string name;  ///< implementation name (the part before ':')
  Params params;     ///< parsed key=value options
};

/// Parses "name:k=v,k=v"; throws std::invalid_argument on malformed input.
Spec parse_spec(const std::string& spec);

/// Implementation family, for enumeration and reporting.
enum class Family {
  kRenaming,         ///< renaming protocols (one-shot and long-lived)
  kFaiCounting,      ///< renaming-derived fetch-and-increment counters
  kCountingNetwork,  ///< balancer networks used as counters
  kSharded,          ///< striped / diffracting-tree sharded counters
  kBaseline,         ///< hardware reference points
};

/// Human-readable family label ("renaming", "sharded", ...).
const char* family_name(Family f);

/// The public role a registry entry plays — one factory table per facet.
enum class Facet {
  kCounter,   ///< ICounter: value dispensers (next())
  kRenaming,  ///< IRenaming: acquire/release name objects
  kReadable,  ///< IReadableCounter: increment/read counters
};

/// Human-readable facet label ("counter", "renaming", "readable-counter").
const char* facet_name(Facet f);

/// Registry entry describing one counter implementation.
struct CounterInfo {
  std::string name;                          ///< spec name, unique per facet
  Family family = Family::kFaiCounting;      ///< family, for enumeration
  std::string summary;                       ///< one-line description
  Consistency consistency = Consistency::kLinearizable;  ///< declared level
  std::vector<std::string> keys;             ///< accepted param keys
  /// Factory: constructs the counter from validated params.
  std::function<std::unique_ptr<ICounter>(const Params&)> make;
};

/// Registry entry describing one renaming implementation (IRenaming facet:
/// one-shot protocols behind the dense-id adapter, long-lived natively).
struct RenamingInfo {
  std::string name;                  ///< spec name, unique per facet
  Family family = Family::kRenaming; ///< family, for enumeration
  std::string summary;               ///< one-line description
  bool adaptive = false;  ///< namespace bound depends only on participants k
  bool reusable = false;  ///< release() recycles names (long-lived family)
  std::vector<std::string> keys;  ///< accepted param keys
  /// Largest legal name when k dense-id requests run under these params (for
  /// reusable entries: k concurrent holders).
  std::function<std::uint64_t(int k, const Params&)> name_bound;
  /// Max supported requests under these params (harnesses must not exceed;
  /// for reusable entries this bounds *concurrent holders*, not requests).
  std::function<int(const Params&)> max_requests;
  /// Factory: constructs the facet object from validated params.
  std::function<std::unique_ptr<IRenaming>(const Params&)> make;
};

/// Registry entry describing one readable (increment/read) counter.
struct ReadableInfo {
  std::string name;                      ///< spec name, unique per facet
  Family family = Family::kFaiCounting;  ///< family, for enumeration
  std::string summary;                   ///< one-line description
  Consistency consistency = Consistency::kMonotone;  ///< declared level
  std::vector<std::string> keys;         ///< accepted param keys
  /// Factory: constructs the readable counter from validated params.
  std::function<std::unique_ptr<IReadableCounter>(const Params&)> make;
};

/// One facet's factory table: registration order preserved, names unique
/// within the table. Info must have `name` and `keys` members.
template <typename Info>
class FacetTable {
 public:
  /// Registers an entry; throws std::invalid_argument on a duplicate name.
  void add(Info info);
  /// Entry for `name`, or nullptr.
  const Info* find(std::string_view name) const;
  /// All entries, in registration order.
  const std::vector<Info>& entries() const { return entries_; }
  /// All entry names, in registration order.
  std::vector<std::string> names() const;

 private:
  std::vector<Info> entries_;
};

/// The spec-string factory over every registered implementation, keyed by
/// facet.
class Registry {
 public:
  /// The process-wide registry, pre-populated with every built-in
  /// implementation. Safe to extend at startup (not thread-safe to mutate
  /// concurrently with use).
  static Registry& global();

  /// An empty registry (rarely useful; prefer global()).
  Registry() = default;

  /// Registers an entry in the facet's table; throws std::invalid_argument
  /// on a duplicate name within that facet.
  void add_counter(CounterInfo info);
  /// \copydoc add_counter
  void add_renaming(RenamingInfo info);
  /// \copydoc add_counter
  void add_readable(ReadableInfo info);

  /// Constructs from a spec string; throws std::invalid_argument for unknown
  /// names, unknown keys, or malformed specs. The unknown-name error names
  /// any other facet that does know the name.
  std::unique_ptr<ICounter> make_counter(const std::string& spec) const;
  /// \copydoc make_counter
  std::unique_ptr<IRenaming> make_renaming(const std::string& spec) const;
  /// \copydoc make_counter
  std::unique_ptr<IReadableCounter> make_readable(const std::string& spec) const;

  /// Entry for `name` in the counter facet, or nullptr.
  const CounterInfo* find_counter(std::string_view name) const;
  /// Entry for `name` in the renaming facet, or nullptr.
  const RenamingInfo* find_renaming(std::string_view name) const;
  /// Entry for `name` in the readable facet, or nullptr.
  const ReadableInfo* find_readable(std::string_view name) const;

  /// All registered counter entries, in registration order.
  const std::vector<CounterInfo>& counters() const {
    return counters_.entries();
  }
  /// All registered renaming entries, in registration order.
  const std::vector<RenamingInfo>& renamings() const {
    return renamings_.entries();
  }
  /// All registered readable entries, in registration order.
  const std::vector<ReadableInfo>& readables() const {
    return readables_.entries();
  }

  /// Every facet with at least one registered entry.
  std::vector<Facet> facets() const;
  /// Every name registered under `facet`, in registration order.
  std::vector<std::string> list(Facet facet) const;
  /// Every registered implementation name across all facets (renamings,
  /// counters, readables; a multi-facet name appears once per facet).
  std::vector<std::string> list() const;

 private:
  /// Facets other than `self` that know `name` — feeds the unknown-name
  /// error's "did you mean another facet" hint.
  std::vector<Facet> facets_knowing(std::string_view name, Facet self) const;

  FacetTable<CounterInfo> counters_;
  FacetTable<RenamingInfo> renamings_;
  FacetTable<ReadableInfo> readables_;
};

}  // namespace renamelib::api
