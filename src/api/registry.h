// The object registry: string spec -> shared object.
//
// One facade for every renaming/counting implementation in the library.
// Tests, benches, and examples construct objects from spec strings and
// iterate list()/counters()/renamings() instead of hand-wiring concrete
// classes, turning N objects x M scenarios into N + M.
//
// Spec grammar:
//     name[:key=value[,key=value]...]
// e.g. "adaptive_strong", "bounded_fai:m=1024", "bitonic_countnet:w=64",
//      "bit_batching:n=128,tas=ratrace". Unknown names or keys throw
// std::invalid_argument (catching typos beats silently using defaults).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/counter.h"
#include "renaming/renaming.h"

namespace renamelib::api {

/// Parsed key=value options of a spec string.
class Params {
 public:
  void set(std::string key, std::string value);
  bool has(std::string_view key) const;
  std::string get(std::string_view key, std::string_view def) const;
  std::uint64_t get_u64(std::string_view key, std::uint64_t def) const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return kv_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
};

struct Spec {
  std::string name;
  Params params;
};

/// Parses "name:k=v,k=v"; throws std::invalid_argument on malformed input.
Spec parse_spec(const std::string& spec);

/// Implementation family, for enumeration and reporting.
enum class Family { kRenaming, kFaiCounting, kCountingNetwork, kBaseline };

const char* family_name(Family f);

struct CounterInfo {
  std::string name;
  Family family = Family::kFaiCounting;
  std::string summary;
  Consistency consistency = Consistency::kLinearizable;
  std::vector<std::string> keys;  ///< accepted param keys
  std::function<std::unique_ptr<ICounter>(const Params&)> make;
};

struct RenamingInfo {
  std::string name;
  Family family = Family::kRenaming;
  std::string summary;
  bool adaptive = false;  ///< namespace bound depends only on participants k
  std::vector<std::string> keys;  ///< accepted param keys
  /// Largest legal name when k dense-id requests run under these params.
  std::function<std::uint64_t(int k, const Params&)> name_bound;
  /// Max supported requests under these params (harnesses must not exceed).
  std::function<int(const Params&)> max_requests;
  std::function<std::unique_ptr<renaming::IRenaming>(const Params&)> make;
};

class Registry {
 public:
  /// The process-wide registry, pre-populated with every built-in
  /// implementation. Safe to extend at startup (not thread-safe to mutate
  /// concurrently with use).
  static Registry& global();

  Registry() = default;

  void add_counter(CounterInfo info);
  void add_renaming(RenamingInfo info);

  /// Constructs from a spec string; throws std::invalid_argument for unknown
  /// names, unknown keys, or malformed specs.
  std::unique_ptr<ICounter> make_counter(const std::string& spec) const;
  std::unique_ptr<renaming::IRenaming> make_renaming(const std::string& spec) const;

  const CounterInfo* find_counter(std::string_view name) const;
  const RenamingInfo* find_renaming(std::string_view name) const;

  const std::vector<CounterInfo>& counters() const { return counters_; }
  const std::vector<RenamingInfo>& renamings() const { return renamings_; }

  /// Every registered implementation name (renamings, then counters).
  std::vector<std::string> list() const;

 private:
  std::vector<CounterInfo> counters_;
  std::vector<RenamingInfo> renamings_;
};

}  // namespace renamelib::api
