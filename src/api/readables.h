/// \file
/// \brief IReadableCounter facet adapters over the concrete read/increment
/// counters.
///
/// Same shape as api/counters.h: forward increment()/read(), declare the
/// honest consistency level, expose the native object via impl().
///
///   * MonotoneCounterAdapter — the paper's Sec. 8.1 monotone counter
///     (rename, then write_max). Monotone-consistent, NOT linearizable
///     (the Sec. 8.1 three-process counterexample), so it declares
///     kMonotone.
///   * MaxRegTreeCounterAdapter — the deterministic linearizable counter of
///     Aspnes–Attiya–Censor [17] the paper compares against: single-writer
///     leaf counts under a tree of max registers. Declares kLinearizable;
///     the conformance suite Wing–Gong-checks recorded inc/read histories.
///   * StripedStatisticAdapter — StripedCounter's statistic mode: one
///     pid-striped fetch&add per increment, a full-collect read. Reads are
///     monotone across non-overlapping reads, so it declares kMonotone.
///   * CountnetReadableAdapter — a counting network's quiescent read side:
///     increment() shepherds one token through the balancers, read()
///     collects the per-wire exit counts. Exact at quiescence (the step
///     property is a statement about settled exit counts), so it declares
///     kQuiescent.
#pragma once

#include <atomic>
#include <cstdint>

#include "api/readable.h"
#include "counting/baselines.h"
#include "counting/monotone_counter.h"
#include "countnet/counting_network.h"
#include "sharded/striped_counter.h"

namespace renamelib::api {

/// The Sec. 8.1 monotone counter behind the readable facet.
class MonotoneCounterAdapter final : public IReadableCounter {
 public:
  /// Wraps a fresh monotone counter; `options` selects comparator
  /// arbitration of the inner adaptive strong renaming.
  explicit MonotoneCounterAdapter(
      renaming::AdaptiveStrongRenaming::Options options = {})
      : counter_(options) {}

  void increment(Ctx& ctx) override { counter_.increment(ctx); }
  std::uint64_t read(Ctx& ctx) override { return counter_.read(ctx); }
  Consistency consistency() const override { return Consistency::kMonotone; }

  /// The native monotone counter (instrumented increment lives here).
  counting::MonotoneCounter& impl() { return counter_; }

 private:
  counting::MonotoneCounter counter_;
};

/// The [17] deterministic linearizable counter behind the readable facet.
class MaxRegTreeCounterAdapter final : public IReadableCounter {
 public:
  /// Builds the tree for up to `n` processes with value bound `capacity`.
  MaxRegTreeCounterAdapter(std::size_t n, std::uint64_t capacity)
      : counter_(n, capacity), procs_(static_cast<int>(n)), capacity_(capacity) {}

  void increment(Ctx& ctx) override { counter_.increment(ctx); }
  std::uint64_t read(Ctx& ctx) override { return counter_.read(ctx); }
  std::uint64_t capacity() const override { return capacity_; }
  /// Leaf ownership is by pid: only pids < n may operate.
  int max_procs() const override { return procs_; }
  Consistency consistency() const override { return Consistency::kLinearizable; }

  /// The native max-register-tree counter.
  counting::MaxRegTreeCounter& impl() { return counter_; }

 private:
  counting::MaxRegTreeCounter counter_;
  int procs_;
  std::uint64_t capacity_;
};

/// StripedCounter's statistic mode behind the readable facet. Must not share
/// an instance with dispenser-mode next() use (see sharded/striped_counter.h).
class StripedStatisticAdapter final : public IReadableCounter {
 public:
  /// Builds the underlying StripedCounter with `options` (elimination only
  /// affects dispenser mode and is left off).
  explicit StripedStatisticAdapter(sharded::StripedCounter::Options options)
      : counter_(options) {}

  void increment(Ctx& ctx) override { counter_.increment(ctx); }
  std::uint64_t read(Ctx& ctx) override { return counter_.read(ctx); }
  Consistency consistency() const override { return Consistency::kMonotone; }

  /// The native striped counter.
  sharded::StripedCounter& impl() { return counter_; }

 private:
  sharded::StripedCounter counter_;
};

/// A counting network [26] behind the readable facet. Entry-wire choice is
/// meta-level routing input (like CountingNetworkCounter's spray — see
/// docs/ARCHITECTURE.md "Invariants worth knowing"), charged zero steps.
class CountnetReadableAdapter final : public IReadableCounter {
 public:
  /// Takes ownership of a constructed counting network.
  explicit CountnetReadableAdapter(countnet::CountingNetwork net)
      : net_(std::move(net)) {}

  void increment(Ctx& ctx) override {
    const std::size_t wire =
        spray_.fetch_add(1, std::memory_order_relaxed) % net_.width();
    (void)net_.next_value(ctx, wire);
  }
  std::uint64_t read(Ctx& ctx) override { return net_.read_count(ctx); }
  Consistency consistency() const override { return Consistency::kQuiescent; }

  /// The native counting network.
  countnet::CountingNetwork& impl() { return net_; }

 private:
  countnet::CountingNetwork net_;
  std::atomic<std::uint64_t> spray_{0};
};

}  // namespace renamelib::api
