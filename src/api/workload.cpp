#include "api/workload.h"

#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "core/assert.h"
#include "core/rng.h"
#include "sim/executor.h"

namespace renamelib::api {

std::vector<std::uint64_t> Run::values() const {
  std::vector<std::uint64_t> out;
  out.reserve(ops.size());
  for (const auto& op : ops) out.push_back(op.value);
  return out;
}

std::vector<double> Run::op_steps() const {
  std::vector<double> out;
  out.reserve(ops.size());
  for (const auto& op : ops) out.push_back(static_cast<double>(op.steps));
  return out;
}

double Run::mean_proc_steps() const {
  if (proc_steps.empty()) return 0.0;
  double total = 0;
  for (double s : proc_steps) total += s;
  return total / static_cast<double>(proc_steps.size());
}

namespace {

std::unique_ptr<sim::Adversary> make_adversary(const Scenario& s) {
  switch (s.sched) {
    case Sched::kRoundRobin:
      return std::make_unique<sim::RoundRobinAdversary>();
    case Sched::kObstruction:
      return std::make_unique<sim::ObstructionAdversary>(/*budget=*/16);
    case Sched::kRandom:
      break;
  }
  // Same derivation bench_common used, so ported benches reproduce.
  return std::make_unique<sim::RandomAdversary>(s.seed * 7919 + 13);
}

}  // namespace

Run Workload::run_metered(const std::function<std::uint64_t(Ctx&)>& op,
                          const char* history_kind) const {
  Run run;
  std::mutex mu;  // meta-level instrumentation, not part of any protocol
  std::optional<sim::HistoryRecorder> recorder;
  if (scenario_.record_history) recorder.emplace();

  auto body = [&](Ctx& ctx) {
    for (int i = 0; i < scenario_.ops_per_proc; ++i) {
      const std::uint64_t token = recorder ? recorder->invoke() : 0;
      OpMeter meter(ctx);
      const std::uint64_t v = op(ctx);
      if (recorder) recorder->respond(ctx.pid(), history_kind, 0, v, token);
      std::scoped_lock lock{mu};
      meter.commit(run.metrics);
      run.ops.push_back(OpSample{ctx.pid(), v, meter.op_steps()});
    }
  };
  execute(body, mu, run);

  if (recorder) run.history = recorder->history();
  return run;
}

Run Workload::run_ops(const std::function<std::uint64_t(Ctx&)>& op) const {
  return run_metered(op, scenario_.history_kind.c_str());
}

Run Workload::run(ICounter& counter) const {
  return run_metered([&counter](Ctx& ctx) { return counter.next(ctx); }, "fai");
}

Run Workload::run(renaming::IRenaming& obj) const {
  // Dense initial ids 1..nproc*ops_per_proc: request r of process p uses
  // p*ops_per_proc + r + 1. Each element of `next_request` is touched by one
  // process only.
  std::vector<int> next_request(scenario_.nproc, 0);
  const int per = scenario_.ops_per_proc;
  return run_metered(
      [&obj, &next_request, per](Ctx& ctx) {
        const int r = next_request[ctx.pid()]++;
        const std::uint64_t id =
            static_cast<std::uint64_t>(ctx.pid()) * per + r + 1;
        return obj.rename(ctx, id);
      },
      "rename");
}

Run Workload::run_body(const std::function<void(Ctx&)>& body) const {
  Run run;
  std::mutex mu;
  // Proc-granular run: aggregate whole-process Ctx counters into Metrics at
  // body completion (no per-op samples, so ops stays 0).
  auto wrapped = [&](Ctx& ctx) {
    body(ctx);
    std::scoped_lock lock{mu};
    run.metrics.steps += ctx.steps();
    run.metrics.shared_steps += ctx.shared_steps();
    run.metrics.coin_flips += ctx.coin_flips();
  };
  execute(wrapped, mu, run);
  return run;
}

void Workload::execute(const std::function<void(Ctx&)>& body, std::mutex& mu,
                       Run& run) const {
  RENAMELIB_ENSURE(scenario_.nproc > 0, "scenario needs at least one process");
  // Appends the finishing process's totals; only reached by processes that
  // complete their body (crashed ones stop at the throw).
  auto with_totals = [&](Ctx& ctx) {
    body(ctx);
    std::scoped_lock lock{mu};
    run.proc_steps.push_back(static_cast<double>(ctx.steps()));
    run.finished_procs += 1;
    if (ctx.steps() > run.metrics.max_proc_steps) {
      run.metrics.max_proc_steps = ctx.steps();
    }
  };

  if (scenario_.backend == Backend::kHardware) {
    std::vector<std::thread> threads;
    threads.reserve(scenario_.nproc);
    for (int p = 0; p < scenario_.nproc; ++p) {
      threads.emplace_back([&, p] {
        Ctx ctx(p, Rng::derive(scenario_.seed, static_cast<std::uint64_t>(p)));
        with_totals(ctx);
      });
    }
    for (auto& t : threads) t.join();
    return;
  }

  auto adversary = make_adversary(scenario_);
  sim::RunOptions options;
  options.seed = scenario_.seed;
  options.max_total_steps = scenario_.max_total_steps;
  const auto result =
      sim::run_simulation(scenario_.nproc, with_totals, *adversary, options);
  // Crashed processes never ran the totals hook; fold their cost into the
  // process maximum so the metrics reflect the whole execution.
  if (result.max_proc_steps() > run.metrics.max_proc_steps) {
    run.metrics.max_proc_steps = result.max_proc_steps();
  }
}

Run Workload::run_counter_spec(const std::string& spec, const Scenario& s) {
  const auto counter = Registry::global().make_counter(spec);
  return Workload(s).run(*counter);
}

Run Workload::run_renaming_spec(const std::string& spec, const Scenario& s) {
  const auto obj = Registry::global().make_renaming(spec);
  return Workload(s).run(*obj);
}

}  // namespace renamelib::api
