#include "api/workload.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iterator>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/assert.h"
#include "core/register.h"
#include "core/rng.h"
#include "obs/emit.h"
#include "proc/proc_backend.h"
#include "proc/shm_arena.h"
#include "sim/executor.h"

namespace renamelib::api {

std::vector<std::uint64_t> Run::values() const {
  std::vector<std::uint64_t> out;
  out.reserve(ops.size());
  for (const auto& op : ops) out.push_back(op.value);
  return out;
}

std::vector<std::uint64_t> Run::values_of(std::string_view kind) const {
  std::vector<std::uint64_t> out;
  for (const auto& op : ops) {
    if (op.kind == kind) out.push_back(op.value);
  }
  return out;
}

std::vector<double> Run::op_steps() const {
  std::vector<double> out;
  out.reserve(ops.size());
  for (const auto& op : ops) out.push_back(static_cast<double>(op.steps));
  return out;
}

double Run::mean_proc_steps() const {
  if (proc_steps.empty()) return 0.0;
  double total = 0;
  for (double s : proc_steps) total += s;
  return total / static_cast<double>(proc_steps.size());
}

namespace {

std::unique_ptr<sim::Adversary> make_base_adversary(const Scenario& s) {
  switch (s.sched) {
    case Sched::kRoundRobin:
      return std::make_unique<sim::RoundRobinAdversary>();
    case Sched::kObstruction:
      return std::make_unique<sim::ObstructionAdversary>(/*budget=*/16);
    case Sched::kRandom:
      break;
  }
  // Same derivation bench_common used, so ported benches reproduce.
  return std::make_unique<sim::RandomAdversary>(s.seed * 7919 + 13);
}

std::unique_ptr<sim::Adversary> make_adversary(const Scenario& s) {
  auto base = make_base_adversary(s);
  if (!s.crashes.enabled()) return base;
  // Deterministic crash plan: victims are a seed-derived subset of the pids,
  // each killed once its shared-step count reaches a threshold drawn from
  // [1, crash_step_max]. The salt keeps the plan independent of the process
  // seeds and the base adversary's stream.
  Rng rng(Rng::derive(s.seed, /*salt=*/0xC7A54ULL));
  std::vector<int> pids(static_cast<std::size_t>(s.nproc));
  for (int p = 0; p < s.nproc; ++p) pids[static_cast<std::size_t>(p)] = p;
  for (std::size_t i = pids.size(); i > 1; --i) {
    std::swap(pids[i - 1], pids[rng.below(i)]);
  }
  std::vector<std::int64_t> crash_at(static_cast<std::size_t>(s.nproc), -1);
  const std::size_t victims =
      std::min(s.crashes.max_crashes, static_cast<std::size_t>(s.nproc));
  for (std::size_t i = 0; i < victims; ++i) {
    crash_at[static_cast<std::size_t>(pids[i])] =
        static_cast<std::int64_t>(1 + rng.below(s.crashes.crash_step_max));
  }
  return std::make_unique<sim::CrashAdversary>(std::move(base),
                                               std::move(crash_at), victims);
}

/// Zipf(s) sampler over ranks {1..n}: precomputed CDF, one uniform01 draw
/// (charged as a coin flip through Ctx::rng) plus a binary search. Rank 1 is
/// the hot value, so small think/burst lengths dominate with a heavy tail.
class ZipfDraw {
 public:
  ZipfDraw(int n, double s) : cdf_(static_cast<std::size_t>(n)) {
    double total = 0;
    for (int k = 1; k <= n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k), s);
      cdf_[static_cast<std::size_t>(k - 1)] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  /// Rank in [1, n].
  std::uint64_t draw(Rng& rng) const {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin()) + 1;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

Run Workload::run_metered(
    const std::function<std::uint64_t(Ctx&, int)>& op,
    const std::function<const char*(int)>& kind_of) const {
  using clock = std::chrono::steady_clock;
  Run run;
  std::mutex mu;  // meta-level instrumentation, not part of any protocol
  std::optional<sim::HistoryRecorder> recorder;
  if (scenario_.record_history) recorder.emplace();
  // Hardware and proc backends are wall-clock ("timed"): latency goes into
  // a lock-free per-thread recorder and samples/metrics are buffered per
  // process, merged once at completion — the metered loop stays free of
  // meta-level lock contention. (On the proc backend the per-process merge
  // point is a mailbox publication instead of a mutex, and completed ops
  // additionally go through a crash-surviving shm ring so a SIGKILLed
  // victim's ops survive, mirroring what the simulated backend's per-op
  // commits guarantee.)
  const bool timed = scenario_.backend != Backend::kSimulated;
  const bool proc = scenario_.backend == Backend::kProc;
  std::optional<stats::LatencyRecorder> latency;
  const int sample_period = scenario_.latency_sample_period;
  if (timed && sample_period > 0) latency.emplace(scenario_.nproc);
  // Think-time target: a harness-owned shared register, so every think step
  // is adversary-schedulable (simulated) or a real coherent load (hardware).
  // Note: on the proc backend this register lives in the parent's heap, so
  // each process thinks against its own copy-on-write copy — a local pause,
  // which is all the arrival shaping needs there.
  Register<std::uint64_t> scratch;
  // Zipf-skewed arrival draws (Scenario::zipf_s): precomputed rank CDFs,
  // shared read-only across processes.
  std::optional<ZipfDraw> zipf_think, zipf_burst;
  if (scenario_.zipf_s > 0 && scenario_.think_max > 0) {
    zipf_think.emplace(scenario_.think_max + 1, scenario_.zipf_s);
    zipf_burst.emplace(scenario_.burst_max, scenario_.zipf_s);
  }

  // Sample kinds are only materialized when something records them.
  const bool need_kind = scenario_.record_history || scenario_.keep_op_samples;

  auto body = [&](Ctx& ctx) {
    Metrics local;
    std::vector<OpSample> local_ops;
    if (timed && !proc && scenario_.keep_op_samples) {
      local_ops.reserve(static_cast<std::size_t>(scenario_.ops_per_proc));
    }
    int burst_left = 0;
    // Countdown instead of `i % period`: a per-op integer division is
    // measurable against nanosecond-scale batched operations. Starts at 1 so
    // op 0 is sampled, matching the old modulo phase.
    int until_sample = 1;
    for (int i = 0; i < scenario_.ops_per_proc; ++i) {
      if (scenario_.think_max > 0) {
        // Think before every op (steady) or before each burst (bursty).
        // Placed before the OpMeter so think steps land in process totals
        // but never inflate an operation's metered cost.
        bool pause = true;
        if (scenario_.arrival == Arrival::kBursty) {
          pause = burst_left == 0;
          if (pause) {
            burst_left = static_cast<int>(
                zipf_burst ? zipf_burst->draw(ctx.rng())
                           : 1 + ctx.rng().below(static_cast<std::uint64_t>(
                                     scenario_.burst_max)));
          }
          --burst_left;
        }
        if (pause) {
          const auto think =
              zipf_think ? zipf_think->draw(ctx.rng()) - 1
                         : ctx.rng().below(
                               static_cast<std::uint64_t>(scenario_.think_max) +
                               1);
          for (std::uint64_t t = 0; t < think; ++t) scratch.load(ctx);
        }
      }
      const char* kind = need_kind ? kind_of(i) : "";
      const std::uint64_t token = recorder ? recorder->invoke() : 0;
      OpMeter meter(ctx);
      // Latency sampling every Nth op keeps the clock reads off the fast
      // path of nanosecond-scale objects (see Scenario::latency_sample_period).
      const bool sampled = latency && --until_sample == 0;
      if (sampled) until_sample = sample_period;
      const auto t0 = sampled ? clock::now() : clock::time_point{};
      const std::uint64_t v = op(ctx, i);
      if (sampled) {
        latency->record(
            ctx.pid(),
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    clock::now() - t0)
                    .count()));
      }
      if (recorder) recorder->respond(ctx.pid(), kind, 0, v, token);
      if (proc) {
        meter.commit(local);
        // Ring publication + the worker's crash point: victims park for
        // SIGKILL inside this call once they complete their op quota.
        proc::Worker::current()->publish_op(v, meter.op_steps(), kind);
      } else if (timed) {
        meter.commit(local);
        if (scenario_.keep_op_samples) {
          local_ops.push_back(OpSample{ctx.pid(), v, meter.op_steps(), kind});
        }
      } else {
        std::scoped_lock lock{mu};
        meter.commit(run.metrics);
        if (scenario_.keep_op_samples) {
          run.ops.push_back(OpSample{ctx.pid(), v, meter.op_steps(), kind});
        }
      }
    }
    if (proc) {
      // The worker's recorder slots are its private copy-on-write pages, so
      // its snapshot holds exactly its own samples — published whole into
      // the mailbox Contribution for the gossip merge.
      proc::Worker::current()->publish_done(
          local, latency ? latency->snapshot() : stats::LatencySnapshot{},
          ctx.steps());
    } else if (timed) {
      std::scoped_lock lock{mu};
      run.metrics.merge(local);
      run.ops.insert(run.ops.end(), std::make_move_iterator(local_ops.begin()),
                     std::make_move_iterator(local_ops.end()));
    }
  };
  execute(body, mu, run);

  if (recorder) run.history = recorder->history();
  // Proc backend: run.latency was already set from the gossip fold; the
  // parent's own recorder never saw the workers' (COW-private) samples.
  if (latency && scenario_.backend != Backend::kProc) {
    run.latency = latency->snapshot();
  }
  return run;
}

Run Workload::run_ops(const std::function<std::uint64_t(Ctx&)>& op) const {
  return run_metered([&op](Ctx& ctx, int) { return op(ctx); },
                     [this](int) { return scenario_.history_kind.c_str(); });
}

namespace {

/// Proc-backend precondition: the object's shared state must live in the
/// shm arena, or each forked process would silently mutate its own
/// copy-on-write copy. The registry-spec entry points arrange this; direct
/// run(obj) callers must construct `obj` under a proc::ArenaScope.
void ensure_proc_placement(const Scenario& s, const void* obj) {
  RENAMELIB_ENSURE(
      s.backend != Backend::kProc || proc::arena_owns(obj),
      "proc backend: the object must be constructed inside the ShmArena "
      "(use Workload::run_*_spec, or build it under a proc::ArenaScope)");
}

}  // namespace

Run Workload::run(ICounter& counter) const {
  ensure_proc_placement(scenario_, &counter);
  if (scenario_.batch <= 1) {
    return run_metered([&counter](Ctx& ctx, int) { return counter.next(ctx); },
                       [](int) { return "fai"; });
  }
  // Batched mode: each process keeps a private buffer of pending value runs,
  // refilled through the counter's ranged mint whenever it runs dry. The
  // buffers are harness state (padded so neighbours don't share a line), not
  // protocol state — a crashed process simply orphans its unserved values.
  struct alignas(64) Pending {
    std::vector<ValueRange> runs;
    std::size_t run_ix = 0;
    std::uint64_t offset = 0;
  };
  auto pending = std::make_shared<std::vector<Pending>>(
      static_cast<std::size_t>(scenario_.nproc));
  const auto batch = static_cast<std::uint64_t>(scenario_.batch);
  const int ops = scenario_.ops_per_proc;
  return run_metered(
      [&counter, pending, slots = pending->data(), batch,
       ops](Ctx& ctx, int i) -> std::uint64_t {
        auto& p = slots[static_cast<std::size_t>(ctx.pid())];
        while (p.run_ix < p.runs.size() &&
               p.offset >= p.runs[p.run_ix].count) {
          ++p.run_ix;
          p.offset = 0;
        }
        if (p.run_ix >= p.runs.size()) {
          p.runs.clear();
          p.run_ix = 0;
          p.offset = 0;
          const auto remaining = static_cast<std::uint64_t>(ops - i);
          counter.next_range(ctx, std::min(batch, remaining), p.runs);
          while (p.run_ix < p.runs.size() && p.runs[p.run_ix].count == 0) {
            ++p.run_ix;
          }
          RENAMELIB_ENSURE(p.run_ix < p.runs.size(),
                           "ranged mint returned no values");
        }
        const std::uint64_t v = p.runs[p.run_ix].at(p.offset);
        ++p.offset;
        return v;
      },
      [](int) { return "fai"; });
}

Run Workload::run(IRenaming& obj) const {
  ensure_proc_placement(scenario_, &obj);
  return run_metered([&obj](Ctx& ctx, int) { return obj.acquire(ctx); },
                     [](int) { return "rename"; });
}

Run Workload::run(IReadableCounter& counter) const {
  ensure_proc_placement(scenario_, &counter);
  RENAMELIB_ENSURE(scenario_.read_period >= 1,
                   "scenario needs read_period >= 1");
  const int period = scenario_.read_period;
  auto is_read = [period](int i) { return i % period == period - 1; };
  return run_metered(
      [&counter, is_read](Ctx& ctx, int i) -> std::uint64_t {
        if (is_read(i)) return counter.read(ctx);
        counter.increment(ctx);
        return 0;
      },
      [is_read](int i) { return is_read(i) ? "read" : "inc"; });
}

Run Workload::run_body(const std::function<void(Ctx&)>& body) const {
  RENAMELIB_ENSURE(scenario_.backend != Backend::kProc,
                   "run_body is not supported on the proc backend (no per-op "
                   "publication points for the mailbox protocol); use "
                   "run_ops");
  Run run;
  std::mutex mu;
  // Proc-granular run: aggregate whole-process Ctx counters into Metrics at
  // body completion (no per-op samples, so ops stays 0).
  auto wrapped = [&](Ctx& ctx) {
    body(ctx);
    std::scoped_lock lock{mu};
    run.metrics.steps += ctx.steps();
    run.metrics.shared_steps += ctx.shared_steps();
    run.metrics.coin_flips += ctx.coin_flips();
  };
  execute(wrapped, mu, run);
  return run;
}

void Workload::execute(const std::function<void(Ctx&)>& body, std::mutex& mu,
                       Run& run) const {
  RENAMELIB_ENSURE(scenario_.nproc > 0, "scenario needs at least one process");
  RENAMELIB_ENSURE(
      scenario_.backend != Backend::kHardware || !scenario_.crashes.enabled(),
      "crash injection requires the simulated or proc backend (a hardware "
      "thread cannot be killed mid-protocol)");
  RENAMELIB_ENSURE(!scenario_.crashes.enabled() ||
                       scenario_.crashes.crash_step_max >= 1,
                   "crash plan needs crash_step_max >= 1");
  RENAMELIB_ENSURE(scenario_.think_max >= 0 && scenario_.burst_max >= 1,
                   "arrival shaping needs think_max >= 0 and burst_max >= 1");
  RENAMELIB_ENSURE(scenario_.zipf_s >= 0, "scenario needs zipf_s >= 0");
  RENAMELIB_ENSURE(scenario_.batch >= 1, "scenario needs batch >= 1");
  if (scenario_.backend == Backend::kProc) {
    RENAMELIB_ENSURE(!scenario_.record_history,
                     "history recording is not supported on the proc backend "
                     "(mailboxes carry mergeable snapshots, not histories)");
    // The raw body, not with_totals: per-process totals travel through the
    // mailbox Contributions and the gossip fold, never through a
    // parent-side mutex (which a child could only update copy-on-write).
    proc::run_proc(scenario_, body, run);
    return;
  }
  // Run-scoped event attribution: the bus is process-wide, so the run's
  // events are the snapshot delta across the execution (exact as long as
  // runs don't overlap, which no harness here does).
  const bool events_on = obs::EventBus::enabled();
  const obs::EventSnapshot events_before =
      events_on ? obs::EventBus::instance().snapshot() : obs::EventSnapshot{};
  // Appends the finishing process's totals; only reached by processes that
  // complete their body (crashed ones stop at the throw).
  auto with_totals = [&](Ctx& ctx) {
    body(ctx);
    std::scoped_lock lock{mu};
    run.proc_steps.push_back(static_cast<double>(ctx.steps()));
    run.finished_procs += 1;
    if (ctx.steps() > run.metrics.max_proc_steps) {
      run.metrics.max_proc_steps = ctx.steps();
    }
  };

  if (scenario_.backend == Backend::kHardware) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(scenario_.nproc);
    for (int p = 0; p < scenario_.nproc; ++p) {
      threads.emplace_back([&, p] {
        obs::ThreadPidScope pid_scope(p);
        Ctx ctx(p, Rng::derive(scenario_.seed, static_cast<std::uint64_t>(p)));
        with_totals(ctx);
      });
    }
    for (auto& t : threads) t.join();
    run.metrics.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (events_on) {
      run.events = obs::EventBus::instance().snapshot() - events_before;
    }
    return;
  }

  auto adversary = make_adversary(scenario_);
  sim::RunOptions options;
  options.seed = scenario_.seed;
  options.max_total_steps = scenario_.max_total_steps;
  const auto result =
      sim::run_simulation(scenario_.nproc, with_totals, *adversary, options);
  run.crashed_procs = result.crashed_count();
  // Crashed processes never ran the totals hook; fold their cost into the
  // process maximum so the metrics reflect the whole execution.
  if (result.max_proc_steps() > run.metrics.max_proc_steps) {
    run.metrics.max_proc_steps = result.max_proc_steps();
  }
  if (events_on) {
    run.events = obs::EventBus::instance().snapshot() - events_before;
  }
}

namespace {

/// Proc-backend spec runner: creates the shm arena, places the
/// registry-built object into it (ArenaScope routes every construction-time
/// allocation there), runs, and destroys the object *before* the arena —
/// the ordering the arena's wholesale deallocation requires.
template <typename MakeFn>
Run run_spec_in_arena(const Scenario& s, const MakeFn& make) {
  Registry::global();  // materialize the lazy singleton outside the arena
  proc::ShmArena arena(proc::default_arena_bytes(s), s.seed);
  auto obj = [&] {
    proc::ArenaScope scope(arena);
    return make();
  }();
  Run run = Workload(s).run(*obj);
  obj.reset();
  return run;
}

}  // namespace

Run Workload::run_counter_spec(const std::string& spec, const Scenario& s) {
  if (s.backend == Backend::kProc) {
    return run_spec_in_arena(
        s, [&] { return Registry::global().make_counter(spec); });
  }
  const auto counter = Registry::global().make_counter(spec);
  return Workload(s).run(*counter);
}

Run Workload::run_renaming_spec(const std::string& spec, const Scenario& s) {
  if (s.backend == Backend::kProc) {
    return run_spec_in_arena(
        s, [&] { return Registry::global().make_renaming(spec); });
  }
  const auto obj = Registry::global().make_renaming(spec);
  return Workload(s).run(*obj);
}

Run Workload::run_readable_spec(const std::string& spec, const Scenario& s) {
  if (s.backend == Backend::kProc) {
    return run_spec_in_arena(
        s, [&] { return Registry::global().make_readable(spec); });
  }
  const auto counter = Registry::global().make_readable(spec);
  return Workload(s).run(*counter);
}

Run Workload::run_facet_spec(Facet facet, const std::string& spec,
                             const Scenario& s) {
  switch (facet) {
    case Facet::kCounter: return run_counter_spec(spec, s);
    case Facet::kRenaming: return run_renaming_spec(spec, s);
    case Facet::kReadable: return run_readable_spec(spec, s);
  }
  throw std::invalid_argument("unknown facet");
}

}  // namespace renamelib::api
