/// \file
/// \brief IRenaming facet adapters over the concrete renaming protocols.
///
/// Same shape as api/counters.h: forward the facet operations to the native
/// object, declare the honest semantics, expose the native object via impl().
/// Two adapters cover every registered renaming:
///
///   * OneShotRenamingAdapter — wraps any renaming::IRenaming protocol. Each
///     acquire() mints the next dense initial id 1, 2, 3, ... from an
///     internal dispenser and calls rename(). Initial ids are the
///     *environment's* input to a renaming object (the paper's initial
///     namespace), not protocol state, so the dispenser is a plain atomic
///     charged zero steps — the same meta-level status as a counting
///     network's entry-wire spray. release() is a no-op: one-shot names are
///     permanent.
///   * LongLivedRenamingAdapter — wraps renaming::LongLivedRenaming, whose
///     native operations already are acquire/release.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "api/renaming.h"
#include "renaming/long_lived.h"
#include "renaming/renaming.h"

namespace renamelib::api {

/// Adapts a one-shot renaming::IRenaming protocol to the acquire/release
/// facet (see file comment for the id-dispenser rationale).
class OneShotRenamingAdapter final : public IRenaming {
 public:
  /// Takes ownership of the native one-shot protocol.
  explicit OneShotRenamingAdapter(std::unique_ptr<renaming::IRenaming> impl)
      : impl_(std::move(impl)) {}

  /// rename() under the next dense initial id.
  std::uint64_t acquire(Ctx& ctx) override {
    const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    return impl_->rename(ctx, id);
  }

  /// One-shot names are permanent; releasing is a no-op.
  void release(Ctx&, std::uint64_t) override {}

  bool reusable() const override { return false; }

  /// All-time acquire count (nothing is ever released).
  std::uint64_t holders() const override {
    return next_id_.load(std::memory_order_relaxed);
  }

  /// The native one-shot protocol.
  renaming::IRenaming& impl() { return *impl_; }

 private:
  std::unique_ptr<renaming::IRenaming> impl_;
  std::atomic<std::uint64_t> next_id_{0};
};

/// Adapts the long-lived acquire/release protocol to the facet.
class LongLivedRenamingAdapter final : public IRenaming {
 public:
  /// Builds the underlying LongLivedRenaming with `capacity` slots.
  explicit LongLivedRenamingAdapter(std::uint64_t capacity)
      : impl_(capacity) {}

  std::uint64_t acquire(Ctx& ctx) override { return impl_.acquire(ctx); }

  /// Recycles the name: a later acquire may hand it out again.
  void release(Ctx& ctx, std::uint64_t name) override {
    impl_.release(ctx, name);
  }

  bool reusable() const override { return true; }

  /// Currently taken slots.
  std::uint64_t holders() const override { return impl_.holders(); }

  /// The native long-lived object (instrumented acquire lives here).
  renaming::LongLivedRenaming& impl() { return impl_; }

 private:
  renaming::LongLivedRenaming impl_;
};

}  // namespace renamelib::api
