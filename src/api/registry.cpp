#include "api/registry.h"

#include <algorithm>
#include <charconv>
#include <iterator>
#include <limits>
#include <stdexcept>

#include "api/combining.h"
#include "api/counters.h"
#include "api/leases.h"
#include "api/readables.h"
#include "api/renamings.h"
#include "api/sharded_counters.h"
#include "countnet/periodic.h"
#include "renaming/bit_batching.h"
#include "renaming/linear_probe.h"
#include "renaming/moir_anderson.h"
#include "renaming/renaming_network.h"
#include "sortnet/bitonic.h"

namespace renamelib::api {

const char* consistency_name(Consistency c) {
  switch (c) {
    case Consistency::kLinearizable: return "linearizable";
    case Consistency::kQuiescent: return "quiescent";
    case Consistency::kDense: return "dense";
    case Consistency::kMonotone: return "monotone";
    case Consistency::kEscrow: return "escrow";
  }
  return "?";
}

const char* family_name(Family f) {
  switch (f) {
    case Family::kRenaming: return "renaming";
    case Family::kFaiCounting: return "fai-counting";
    case Family::kCountingNetwork: return "counting-network";
    case Family::kSharded: return "sharded";
    case Family::kBaseline: return "baseline";
    case Family::kEscrow: return "escrow";
  }
  return "?";
}

const char* facet_name(Facet f) {
  switch (f) {
    case Facet::kCounter: return "counter";
    case Facet::kRenaming: return "renaming";
    case Facet::kReadable: return "readable-counter";
  }
  return "?";
}

Facet facet_from_name(std::string_view name) {
  // Each facet answers to its facet_name() and a short CLI-friendly alias.
  if (name == "counter") return Facet::kCounter;
  if (name == "renaming") return Facet::kRenaming;
  if (name == "readable-counter" || name == "readable") return Facet::kReadable;
  throw std::invalid_argument("unknown facet '" + std::string(name) +
                              "' (valid: counter, renaming, readable)");
}

// ------------------------------------------------------------ OptionSchema

OptionSchema OptionSchema::u64(std::string key, std::uint64_t def,
                               std::uint64_t lo, std::uint64_t hi,
                               std::string doc) {
  OptionSchema o;
  o.key = std::move(key);
  o.type = Type::kInt;
  o.doc = std::move(doc);
  o.def = std::to_string(def);
  o.min = lo;
  o.max = hi;
  return o;
}

OptionSchema OptionSchema::pow2_u64(std::string key, std::uint64_t def,
                                    std::uint64_t lo, std::uint64_t hi,
                                    std::string doc) {
  OptionSchema o = u64(std::move(key), def, lo, hi, std::move(doc));
  o.pow2 = true;
  return o;
}

OptionSchema OptionSchema::boolean(std::string key, bool def, std::string doc) {
  OptionSchema o;
  o.key = std::move(key);
  o.type = Type::kBool;
  o.doc = std::move(doc);
  o.def = def ? "1" : "0";
  return o;
}

OptionSchema OptionSchema::choice(std::string key, std::string def,
                                  std::vector<std::string> choices,
                                  std::string doc) {
  OptionSchema o;
  o.key = std::move(key);
  o.type = Type::kEnum;
  o.doc = std::move(doc);
  o.def = std::move(def);
  o.choices = std::move(choices);
  return o;
}

OptionSchema OptionSchema::spec(std::string key, std::string def, Facet facet,
                                std::string doc) {
  OptionSchema o;
  o.key = std::move(key);
  o.type = Type::kSpec;
  o.doc = std::move(doc);
  o.def = std::move(def);
  o.spec_facet = facet;
  return o;
}

std::string OptionSchema::type_text() const {
  switch (type) {
    case Type::kInt: {
      std::string range =
          " in [" + std::to_string(min) + ", " + std::to_string(max) + "]";
      return (pow2 ? "power of two" : "int") + range;
    }
    case Type::kBool:
      return "bool";
    case Type::kEnum: {
      std::string out = "enum {";
      for (std::size_t i = 0; i < choices.size(); ++i) {
        if (i > 0) out += ", ";
        out += choices[i];
      }
      return out + "}";
    }
    case Type::kSpec:
      return std::string("spec<") + facet_name(spec_facet) + ">";
  }
  return "?";
}

// ------------------------------------------------------------ did-you-mean

namespace {

/// Levenshtein distance, early-capped: anything beyond `cap` returns cap+1.
std::size_t edit_distance(std::string_view a, std::string_view b,
                          std::size_t cap) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > cap) return cap + 1;
  std::vector<std::size_t> row(a.size() + 1);
  for (std::size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (std::size_t j = 1; j <= b.size(); ++j) {
    std::size_t prev = row[0];  // row[j-1][0]
    row[0] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      const std::size_t up = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1,
                         prev + (a[i - 1] == b[j - 1] ? 0 : 1)});
      prev = up;
    }
  }
  return row[a.size()];
}

/// The closest candidate within edit distance 2 of `got`, or "" — the
/// uniform did-you-mean source for unknown entry names and unknown keys.
std::string closest_within_two(std::string_view got,
                               const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_dist = 3;
  for (const auto& c : candidates) {
    const std::size_t d = edit_distance(got, c, 2);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

std::string joined(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

std::vector<std::string> schema_keys(const std::vector<OptionSchema>& schema) {
  std::vector<std::string> keys;
  keys.reserve(schema.size());
  for (const auto& o : schema) keys.push_back(o.key);
  return keys;
}

/// Shared unknown-name error: names the facet asked for, suggests the
/// closest name in that facet (typo repair), and — so a wrong make_*() call
/// is a one-read fix — any other facet that does know the name.
[[noreturn]] void throw_unknown(const std::string& name, Facet facet,
                                const std::vector<std::string>& known,
                                const std::vector<Facet>& elsewhere) {
  std::string msg =
      std::string("unknown ") + facet_name(facet) + " '" + name + "'";
  const std::string suggestion = closest_within_two(name, known);
  if (!suggestion.empty()) msg += " (did you mean '" + suggestion + "'?)";
  if (!known.empty()) {
    msg += " (registered " + std::string(facet_name(facet)) + "s: " +
           joined(known) + ")";
  }
  if (!elsewhere.empty()) {
    msg += " (registered under the ";
    for (std::size_t i = 0; i < elsewhere.size(); ++i) {
      if (i > 0) msg += " and ";
      msg += facet_name(elsewhere[i]);
    }
    msg += " facet" + std::string(elsewhere.size() > 1 ? "s)" : ")");
  }
  throw std::invalid_argument(msg);
}

/// "option 'x' of counter 'striped'" — the uniform error prefix.
std::string option_where(const std::string& key, Facet facet,
                         const std::string& entry) {
  return "option '" + key + "' of " + facet_name(facet) + " '" + entry + "'";
}

std::uint64_t parse_u64_or_throw(const std::string& where,
                                 const std::string& text) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument(where + " must be an unsigned integer, got '" +
                                text + "'");
  }
  return out;
}

bool is_pow2(std::uint64_t v) { return v >= 1 && (v & (v - 1)) == 0; }

/// Checks one option value against its schema (nested specs are validated
/// by the caller, which owns the registry recursion).
void check_value(const OptionSchema& schema, const SpecValue& value,
                 Facet facet, const std::string& entry) {
  const std::string where = option_where(schema.key, facet, entry);
  if (schema.type != OptionSchema::Type::kSpec && value.is_spec()) {
    throw std::invalid_argument(where + " is " + schema.type_text() +
                                ", not a nested spec (got '" + value.print() +
                                "')");
  }
  switch (schema.type) {
    case OptionSchema::Type::kInt: {
      const std::uint64_t v = parse_u64_or_throw(where, value.scalar());
      if (v < schema.min || v > schema.max || (schema.pow2 && !is_pow2(v))) {
        throw std::invalid_argument(where + " must be " + schema.type_text() +
                                    ", got " + value.scalar());
      }
      break;
    }
    case OptionSchema::Type::kBool: {
      const std::string& s = value.scalar();
      if (s != "0" && s != "1") {
        throw std::invalid_argument(where + " must be 0 or 1, got '" + s + "'");
      }
      break;
    }
    case OptionSchema::Type::kEnum: {
      const std::string& s = value.scalar();
      if (std::find(schema.choices.begin(), schema.choices.end(), s) ==
          schema.choices.end()) {
        throw std::invalid_argument(where + " must be one of {" +
                                    joined(schema.choices) + "}, got '" + s +
                                    "'");
      }
      break;
    }
    case OptionSchema::Type::kSpec:
      break;  // caller recurses through the registry
  }
}

/// Registration-time schema sanity: defaults must satisfy their own
/// declared constraints, keys must be unique. Catching a bad schema at
/// registration beats catching it when a user first omits the option.
void check_schema(const std::string& name,
                  const std::vector<OptionSchema>& schema) {
  for (std::size_t i = 0; i < schema.size(); ++i) {
    const OptionSchema& o = schema[i];
    if (o.key.empty()) {
      throw std::invalid_argument("registration '" + name +
                                  "' declares an option with an empty key");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (schema[j].key == o.key) {
        throw std::invalid_argument("registration '" + name +
                                    "' declares option '" + o.key + "' twice");
      }
    }
    const std::string where =
        "registration '" + name + "' option '" + o.key + "' default";
    switch (o.type) {
      case OptionSchema::Type::kInt: {
        const std::uint64_t v = parse_u64_or_throw(where, o.def);
        if (v < o.min || v > o.max || (o.pow2 && !is_pow2(v)) ||
            (o.pow2 && (!is_pow2(o.min) || !is_pow2(o.max)))) {
          throw std::invalid_argument(where + " violates " + o.type_text());
        }
        break;
      }
      case OptionSchema::Type::kBool:
        if (o.def != "0" && o.def != "1") {
          throw std::invalid_argument(where + " must be 0 or 1");
        }
        break;
      case OptionSchema::Type::kEnum:
        if (o.choices.empty() ||
            std::find(o.choices.begin(), o.choices.end(), o.def) ==
                o.choices.end()) {
          throw std::invalid_argument(where + " must be one of its choices");
        }
        break;
      case OptionSchema::Type::kSpec:
        Spec::parse(o.def);  // throws when the default is not a spec
        break;
    }
  }
}

/// Shared "tas=rnd|hw" option: comparator arbitration flavor. The spec is
/// schema-validated before factories run, so the value is one of the two.
renaming::AdaptiveStrongRenaming::Options adaptive_options(const Spec& p) {
  renaming::AdaptiveStrongRenaming::Options options;
  if (p.get("tas", "rnd") == "hw") {
    options.comparators = renaming::AdaptiveComparatorKind::kHardware;
  }
  return options;
}

OptionSchema adaptive_tas_schema() {
  return OptionSchema::choice(
      "tas", "rnd", {"rnd", "hw"},
      "comparator arbitration: randomized two-process TAS or hardware TAS");
}

/// Wraps a native one-shot protocol in the dense-id facet adapter.
std::unique_ptr<IRenaming> one_shot(std::unique_ptr<renaming::IRenaming> impl) {
  return std::make_unique<OneShotRenamingAdapter>(std::move(impl));
}

/// Broker geometry shared by both `lease` facet entries (the `inner` schema
/// differs per facet and is appended at the registration site).
std::vector<OptionSchema> lease_schemas() {
  return {
      OptionSchema::u64("quota", 64, 1, 2048,
                        "positions per leased range (batch size)"),
      OptionSchema::u64("window", 0, 0, 2048,
                        "positions granted per heartbeat advance; 0 = "
                        "quota/4, clamped to the quota"),
      OptionSchema::u64("procs", 128, 1, 4096,
                        "max client pids (one lease slot each)"),
      OptionSchema::u64("pool", 16, 1, 1024,
                        "escrow pool capacity (reclaimed ranges)"),
      OptionSchema::u64("reclaim", 16, 0, 1u << 20,
                        "refills between stale-lease reclaim scans; 0 "
                        "disables in-line reclaim")};
}

lease::LeaseBroker::Options lease_options(const Spec& p) {
  lease::LeaseBroker::Options o;
  o.procs = static_cast<int>(p.get_u64("procs", 128));
  o.quota = static_cast<std::uint32_t>(p.get_u64("quota", 64));
  o.window = static_cast<std::uint32_t>(p.get_u64("window", 0));
  o.pool_slots = static_cast<std::size_t>(p.get_u64("pool", 16));
  o.reclaim_period = p.get_u64("reclaim", 16);
  return o;
}

/// Funnel geometry shared by both `combine` facet entries (the `inner`
/// schema differs per facet and is appended at the registration site).
std::vector<OptionSchema> combine_schemas() {
  return {
      OptionSchema::u64("slots", 16, 1, 4096,
                        "cache-line-padded publication slots (pid mod slots)"),
      OptionSchema::u64("spin", 64, 1, 65536,
                        "bounded publication-wait loads before withdrawing "
                        "to a direct inner mint"),
      OptionSchema::u64("max_combine", 64, 1, 4096,
                        "cap on additional demand a combiner claims from "
                        "other slots per sweep (its own published want is "
                        "always served in full)")};
}

combining::CombiningFunnel::Options combine_options(const Spec& p) {
  combining::CombiningFunnel::Options o;
  o.slots = static_cast<std::size_t>(p.get_u64("slots", 16));
  o.spin = static_cast<int>(p.get_u64("spin", 64));
  o.max_combine = p.get_u64("max_combine", 64);
  return o;
}

void register_builtins(Registry& r) {
  // ------------------------------------------------------------ renamings
  r.add_renaming(RenamingInfo{
      .name = "adaptive_strong",
      .summary = "Sec. 6.2 adaptive strong renaming: tight 1..k, polylog k "
                 "steps, unbounded initial namespace",
      .adaptive = true,
      .options = {adaptive_tas_schema()},
      .name_bound = [](int k, const Spec&) { return std::uint64_t(k); },
      .max_requests = [](const Spec&) { return std::numeric_limits<int>::max(); },
      .make = [](const Spec& p) {
        return one_shot(std::make_unique<renaming::AdaptiveStrongRenaming>(
            adaptive_options(p)));
      }});
  r.add_renaming(RenamingInfo{
      .name = "linear_probe",
      .summary = "classic baseline [4,11]: probe TAS 1,2,3,... in order; "
                 "tight 1..k but Theta(k) steps",
      .adaptive = true,
      .options =
          {OptionSchema::u64("cap", 1024, 1, 1u << 20,
                             "probe-array capacity (max total requests)"),
           OptionSchema::choice("tas", "hw", {"hw", "ratrace"},
                                "per-slot test-and-set flavor")},
      .name_bound = [](int k, const Spec&) { return std::uint64_t(k); },
      .max_requests = [](const Spec& p) {
        return static_cast<int>(p.get_u64("cap", 1024));
      },
      .make = [](const Spec& p) {
        return one_shot(std::make_unique<renaming::LinearProbeRenaming>(
            p.get_u64("cap", 1024), /*hardware_tas=*/p.get("tas", "hw") == "hw"));
      }});
  r.add_renaming(RenamingInfo{
      .name = "bit_batching",
      .summary = "Sec. 4 BitBatching: non-adaptive strong renaming into 1..n, "
                 "O(log^2 n) probes w.h.p.",
      .adaptive = false,
      .options = {OptionSchema::u64("n", 64, 2, 1u << 16,
                                    "namespace size (max total requests)"),
                  OptionSchema::choice("tas", "hw", {"hw", "ratrace"},
                                       "per-slot test-and-set flavor")},
      .name_bound = [](int, const Spec& p) { return p.get_u64("n", 64); },
      .max_requests = [](const Spec& p) {
        return static_cast<int>(p.get_u64("n", 64));
      },
      .make = [](const Spec& p) {
        const auto kind = p.get("tas", "hw") == "hw"
                              ? renaming::SlotTasKind::kHardware
                              : renaming::SlotTasKind::kRatRace;
        return one_shot(
            std::make_unique<renaming::BitBatching>(p.get_u64("n", 64), kind));
      }});
  r.add_renaming(RenamingInfo{
      .name = "moir_anderson",
      .summary = "deterministic splitter-grid renaming [5,6,7]: adaptive but "
                 "loose (1..k(k+1)/2), Theta(k) steps",
      .adaptive = true,
      .options = {OptionSchema::u64(
          "n", 64, 1, 1024, "grid side length (max participants)")},
      .name_bound = [](int k, const Spec&) {
        return std::uint64_t(k) * (std::uint64_t(k) + 1) / 2;
      },
      .max_requests = [](const Spec& p) {
        return static_cast<int>(p.get_u64("n", 64));
      },
      .make = [](const Spec& p) {
        return one_shot(
            std::make_unique<renaming::MoirAndersonRenaming>(p.get_u64("n", 64)));
      }});
  r.add_renaming(RenamingInfo{
      .name = "renaming_network",
      .summary = "Sec. 5 renaming network over a bitonic sorting network: "
                 "tight 1..k in every execution, depth-bounded traversals",
      .adaptive = true,
      .options = {OptionSchema::pow2_u64("w", 32, 2, 256,
                                         "network width (max total requests)"),
                  adaptive_tas_schema()},
      .name_bound = [](int k, const Spec&) { return std::uint64_t(k); },
      .max_requests = [](const Spec& p) {
        return static_cast<int>(p.get_u64("w", 32));
      },
      .make = [](const Spec& p) {
        const auto kind = p.get("tas", "rnd") == "rnd"
                              ? renaming::ComparatorKind::kRandomized
                              : renaming::ComparatorKind::kHardware;
        return one_shot(std::make_unique<renaming::RenamingNetwork>(
            sortnet::bitonic_sort(p.get_u64("w", 32)), kind));
      }});
  r.add_renaming(RenamingInfo{
      .name = "longlived",
      .summary = "long-lived renaming (Sec. 9 direction): acquire/release "
                 "over a slot vector, names O(concurrent holders) w.h.p., "
                 "O(log k) expected probes per acquire",
      // The w.h.p. O(k) adaptivity is real but the *every-execution* bound —
      // what name_bound must declare — is the capacity; the dedicated churn
      // test asserts the probabilistic adaptivity.
      .adaptive = false,
      .reusable = true,
      .options = {OptionSchema::u64("cap", 256, 2, 1u << 20,
                                    "slot-vector capacity (max concurrent "
                                    "holders)")},
      .name_bound = [](int, const Spec& p) { return p.get_u64("cap", 256); },
      .max_requests = [](const Spec& p) {
        // Bounds *concurrent holders*: release recycles request budget.
        return static_cast<int>(p.get_u64("cap", 256));
      },
      .make = [](const Spec& p) -> std::unique_ptr<IRenaming> {
        return std::make_unique<LongLivedRenamingAdapter>(
            p.get_u64("cap", 256));
      }});
  {
    auto options = lease_schemas();
    options.push_back(OptionSchema::spec(
        "inner", "longlived", Facet::kRenaming,
        "renaming whose acquires mint one range ticket per quota names"));
    r.add_renaming(RenamingInfo{
        .name = "lease",
        .family = Family::kEscrow,
        .summary = "escrow range-leasing wrapper: pid-local name ranges "
                   "minted from the inner renaming, pid-private release "
                   "recycling, crash-aware lease reclaim (inner= nested)",
        // Names come from quota-sized ranges, so the every-execution bound
        // scales the inner's by the quota — never adaptive-tight.
        .adaptive = false,
        .reusable = true,
        .options = std::move(options),
        .name_bound = [](int k, const Spec& p) {
          const Spec inner = p.get_spec("inner", "longlived");
          const auto* info = Registry::global().find_renaming(inner.name());
          return p.get_u64("quota", 64) * info->name_bound(k, inner);
        },
        .max_requests = [](const Spec& p) {
          // Every mint pins one inner name forever, so the inner's holder
          // budget bounds total tickets; quota names per ticket.
          const Spec inner = p.get_spec("inner", "longlived");
          const auto* info = Registry::global().find_renaming(inner.name());
          const std::uint64_t total =
              p.get_u64("quota", 64) *
              static_cast<std::uint64_t>(info->max_requests(inner));
          const auto cap =
              static_cast<std::uint64_t>(std::numeric_limits<int>::max());
          return static_cast<int>(total > cap ? cap : total);
        },
        .make = [](const Spec& p) -> std::unique_ptr<IRenaming> {
          const Spec inner = p.get_spec("inner", "longlived");
          return std::make_unique<LeasedRenamingAdapter>(
              lease_options(p), Registry::global().make_renaming(inner));
        }});
  }
  {
    auto options = combine_schemas();
    options.push_back(OptionSchema::spec(
        "inner", "linear_probe", Facet::kRenaming,
        "renaming whose acquires serve each combined sweep"));
    r.add_renaming(RenamingInfo{
        .name = "combine",
        .family = Family::kSharded,
        .summary = "flat-combining front-end over any renaming: batched "
                   "name requests through publication slots, one combiner "
                   "acquiring for the whole sweep (inner= nested)",
        // Every request triggers at most two inner acquires on its behalf
        // (one combined, one direct after a timeout), so the every-execution
        // bound is the inner's at twice the request count — never
        // adaptive-tight.
        .adaptive = false,
        .options = std::move(options),
        .name_bound = [](int k, const Spec& p) {
          const Spec inner = p.get_spec("inner", "linear_probe");
          const auto* info = Registry::global().find_renaming(inner.name());
          const int doubled =
              k > std::numeric_limits<int>::max() / 2 ? k : 2 * k;
          return info->name_bound(doubled, inner);
        },
        .max_requests = [](const Spec& p) {
          const Spec inner = p.get_spec("inner", "linear_probe");
          const auto* info = Registry::global().find_renaming(inner.name());
          return info->max_requests(inner) / 2;
        },
        .make = [](const Spec& p) -> std::unique_ptr<IRenaming> {
          const Spec inner = p.get_spec("inner", "linear_probe");
          return std::make_unique<CombinedRenamingAdapter>(
              combine_options(p), Registry::global().make_renaming(inner));
        }});
  }

  // ------------------------------------------------------------- counters
  r.add_counter(CounterInfo{
      .name = "bounded_fai",
      .family = Family::kFaiCounting,
      .summary = "Sec. 8.2 m-valued linearizable fetch-and-increment, "
                 "O(log k log m) expected steps",
      .consistency = Consistency::kLinearizable,
      .options = {OptionSchema::pow2_u64("m", 1024, 2, 1u << 20,
                                         "counter range (max total values)"),
                  adaptive_tas_schema()},
      .make = [](const Spec& p) -> std::unique_ptr<ICounter> {
        return std::make_unique<BoundedFaiCounter>(p.get_u64("m", 1024),
                                                   adaptive_options(p));
      }});
  r.add_counter(CounterInfo{
      .name = "unbounded_fai",
      .family = Family::kFaiCounting,
      .summary = "epoch-chained unbounded linearizable fetch-and-increment "
                 "(Sec. 9 direction), O(log k log v) amortized",
      .consistency = Consistency::kLinearizable,
      .options = {adaptive_tas_schema()},
      .make = [](const Spec& p) -> std::unique_ptr<ICounter> {
        return std::make_unique<UnboundedFaiCounter>(adaptive_options(p));
      }});
  r.add_counter(CounterInfo{
      .name = "naming_counter",
      .family = Family::kFaiCounting,
      .summary = "rename-then-subtract dispenser: dense values, not "
                 "linearizable (Sec. 8.1 argument)",
      .consistency = Consistency::kDense,
      .options = {adaptive_tas_schema()},
      .make = [](const Spec& p) -> std::unique_ptr<ICounter> {
        return std::make_unique<NamingCounter>(adaptive_options(p));
      }});
  r.add_counter(CounterInfo{
      .name = "atomic_fai",
      .family = Family::kBaseline,
      .summary = "single fetch-and-add register: the 1-step/op hardware "
                 "reference point",
      .consistency = Consistency::kLinearizable,
      .options = {},
      .make = [](const Spec&) -> std::unique_ptr<ICounter> {
        return std::make_unique<AtomicFaiCounter>();
      }});
  r.add_counter(CounterInfo{
      .name = "striped",
      .family = Family::kSharded,
      .summary = "cache-line-striped dispenser: spray-routed per-stripe "
                 "fetch&add slots, optional elimination pair-combining",
      .consistency = Consistency::kQuiescent,
      .options =
          {OptionSchema::u64("stripes", 64, 1, 4096,
                             "cache-line-padded fetch&add stripes"),
           OptionSchema::boolean("elim", false,
                                 "pair-combining elimination on contention"),
           OptionSchema::u64("elim_width", 4, 1, 1024,
                             "elimination array slots"),
           OptionSchema::u64("elim_spins", 4, 1, 1024,
                             "spins per elimination attempt"),
           OptionSchema::u64("elim_handoff", 64, 1, 65536,
                             "claimed-waiter delivery spins before the "
                             "crash-tolerant reclaim")},
      .make = [](const Spec& p) -> std::unique_ptr<ICounter> {
        sharded::StripedCounter::Options o;
        o.stripes = p.get_u64("stripes", 64);
        o.elimination = p.get_bool("elim", false);
        o.elim_width = p.get_u64("elim_width", 4);
        o.elim_spins = static_cast<int>(p.get_u64("elim_spins", 4));
        o.elim_handoff_spins =
            static_cast<int>(p.get_u64("elim_handoff", 64));
        return std::make_unique<StripedCounterAdapter>(o);
      }});
  r.add_counter(CounterInfo{
      .name = "difftree",
      .family = Family::kSharded,
      .summary = "diffracting-tree counter: prism/toggle balancer tree over "
                 "composable leaf sub-counters (leaf= is a nested spec)",
      .consistency = Consistency::kQuiescent,
      .options =
          {OptionSchema::u64("depth", 3, 1, 10, "balancer tree depth"),
           OptionSchema::spec("leaf", "atomic_fai", Facet::kCounter,
                              "sub-counter spec behind each of the 2^depth "
                              "output wires"),
           OptionSchema::boolean("prism", true,
                                 "diffracting prism arrays in front of each "
                                 "toggle"),
           OptionSchema::u64("prism_width", 4, 1, 1024,
                             "prism array slots per balancer"),
           OptionSchema::u64("prism_spins", 4, 1, 1024,
                             "spins per prism pairing attempt")},
      .make = [](const Spec& p) -> std::unique_ptr<ICounter> {
        sharded::DiffractingTreeCounter::Options o;
        o.depth = static_cast<int>(p.get_u64("depth", 3));
        o.prism = p.get_bool("prism", true);
        o.prism_width = p.get_u64("prism_width", 4);
        o.prism_spins = static_cast<int>(p.get_u64("prism_spins", 4));
        // The leaf value is itself a spec, already schema-validated against
        // the counter facet; the factory resolves it through the registry,
        // so composed leaves never re-tokenize anything.
        const Spec leaf = p.get_spec("leaf", "atomic_fai");
        return std::make_unique<DiffractingTreeCounterAdapter>(
            o, [leaf]() { return Registry::global().make_counter(leaf); });
      }});
  r.add_counter(CounterInfo{
      .name = "bitonic_countnet",
      .family = Family::kCountingNetwork,
      .summary = "bitonic counting network [26] as a counter: quiescently "
                 "consistent, step property on output wires",
      .consistency = Consistency::kQuiescent,
      .options = {OptionSchema::pow2_u64("w", 16, 2, 256, "network width")},
      .make = [](const Spec& p) -> std::unique_ptr<ICounter> {
        return std::make_unique<CountingNetworkCounter>(
            countnet::CountingNetwork::bitonic(p.get_u64("w", 16)));
      }});
  r.add_counter(CounterInfo{
      .name = "periodic_countnet",
      .family = Family::kCountingNetwork,
      .summary = "periodic counting network [26]: log w identical blocks, "
                 "same guarantees as bitonic",
      .consistency = Consistency::kQuiescent,
      .options = {OptionSchema::pow2_u64("w", 16, 2, 256, "network width")},
      .make = [](const Spec& p) -> std::unique_ptr<ICounter> {
        return std::make_unique<CountingNetworkCounter>(
            countnet::periodic_counting_network(p.get_u64("w", 16)));
      }});
  {
    auto options = lease_schemas();
    options.push_back(OptionSchema::spec(
        "inner", "atomic_fai", Facet::kCounter,
        "dispenser minting one range ticket per quota requests"));
    r.add_counter(CounterInfo{
        .name = "lease",
        .family = Family::kEscrow,
        .summary = "escrow range-leasing wrapper: pid-local serving of "
                   "quota-sized ranges minted from the inner dispenser, "
                   "crash-aware lease reclaim (inner= is a nested spec)",
        .consistency = Consistency::kEscrow,
        .options = std::move(options),
        .make = [](const Spec& p) -> std::unique_ptr<ICounter> {
          const Spec inner = p.get_spec("inner", "atomic_fai");
          return std::make_unique<LeasedCounterAdapter>(
              lease_options(p), Registry::global().make_counter(inner));
        }});
  }
  {
    auto options = combine_schemas();
    options.push_back(OptionSchema::spec(
        "inner", "atomic_fai", Facet::kCounter,
        "dispenser whose ranged mint serves each combined sweep"));
    r.add_counter(CounterInfo{
        .name = "combine",
        .family = Family::kSharded,
        .summary = "flat-combining front-end: padded publication slots, "
                   "CAS-elected combiner, one ranged inner crossing per "
                   "sweep, batched wants (inner= is a nested spec)",
        // Values are unique (all minted by the inner) but reclaimed handoffs
        // and crashed combiners withhold minted values from the handed set,
        // so the honest level is the escrow one: after requests totalling T
        // values the inner has minted at most 2T (combining_funnel.h).
        .consistency = Consistency::kEscrow,
        .options = std::move(options),
        .make = [](const Spec& p) -> std::unique_ptr<ICounter> {
          const Spec inner = p.get_spec("inner", "atomic_fai");
          return std::make_unique<CombinedCounterAdapter>(
              combine_options(p), Registry::global().make_counter(inner));
        }});
  }

  // ------------------------------------------------------------ readables
  r.add_readable(ReadableInfo{
      .name = "monotone",
      .family = Family::kFaiCounting,
      .summary = "Sec. 8.1 monotone counter: rename then write_max, reads "
                 "between completed and started increments, O(log v) steps",
      .consistency = Consistency::kMonotone,
      .options = {adaptive_tas_schema()},
      .make = [](const Spec& p) -> std::unique_ptr<IReadableCounter> {
        return std::make_unique<MonotoneCounterAdapter>(adaptive_options(p));
      }});
  r.add_readable(ReadableInfo{
      .name = "maxregtree",
      .family = Family::kBaseline,
      .summary = "deterministic linearizable counter of [17]: single-writer "
                 "leaves under a max-register tree, O(log n log m) steps — "
                 "the log factor the monotone counter removes",
      .consistency = Consistency::kLinearizable,
      // cap's ceiling is what constructs in well under a second: the [17]
      // tree is eager in cap, so promising 2^26 here would mean a ~30 s
      // construction at the schema boundary.
      .options = {OptionSchema::u64("n", 64, 1, 4096,
                                    "single-writer leaves (max processes)"),
                  OptionSchema::u64("cap", 1u << 16, 2, 1u << 20,
                                    "max register capacity (max count)")},
      .make = [](const Spec& p) -> std::unique_ptr<IReadableCounter> {
        return std::make_unique<MaxRegTreeCounterAdapter>(
            static_cast<std::size_t>(p.get_u64("n", 64)),
            p.get_u64("cap", 1u << 16));
      }});
  r.add_readable(ReadableInfo{
      .name = "striped",
      .family = Family::kSharded,
      .summary = "striped statistic counter: pid-striped 1-step increments, "
                 "full-collect reads, monotone across non-overlapping reads",
      .consistency = Consistency::kMonotone,
      .options = {OptionSchema::u64("stripes", 64, 1, 4096,
                                    "cache-line-padded increment stripes")},
      .make = [](const Spec& p) -> std::unique_ptr<IReadableCounter> {
        sharded::StripedCounter::Options o;
        o.stripes = p.get_u64("stripes", 64);
        return std::make_unique<StripedStatisticAdapter>(o);
      }});
  r.add_readable(ReadableInfo{
      .name = "bitonic_countnet",
      .family = Family::kCountingNetwork,
      .summary = "bitonic counting network's quiescent read side [26]: one "
                 "token traverse per increment, full exit-count collect per "
                 "read, exact at quiescence",
      .consistency = Consistency::kQuiescent,
      .options = {OptionSchema::pow2_u64("w", 16, 2, 256, "network width")},
      .make = [](const Spec& p) -> std::unique_ptr<IReadableCounter> {
        return std::make_unique<CountnetReadableAdapter>(
            countnet::CountingNetwork::bitonic(p.get_u64("w", 16)));
      }});
  r.add_readable(ReadableInfo{
      .name = "periodic_countnet",
      .family = Family::kCountingNetwork,
      .summary = "periodic counting network's quiescent read side [26]: same "
                 "read/increment contract as bitonic_countnet",
      .consistency = Consistency::kQuiescent,
      .options = {OptionSchema::pow2_u64("w", 16, 2, 256, "network width")},
      .make = [](const Spec& p) -> std::unique_ptr<IReadableCounter> {
        return std::make_unique<CountnetReadableAdapter>(
            countnet::periodic_counting_network(p.get_u64("w", 16)));
      }});
}

}  // namespace

// ----------------------------------------------------------------- registry

template <typename Info>
void FacetTable<Info>::add(Info info) {
  if (find(info.name) != nullptr) {
    throw std::invalid_argument("duplicate registration '" + info.name + "'");
  }
  check_schema(info.name, info.options);
  entries_.push_back(std::move(info));
}

template <typename Info>
const Info* FacetTable<Info>::find(std::string_view name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

template <typename Info>
std::vector<std::string> FacetTable<Info>::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

template class FacetTable<CounterInfo>;
template class FacetTable<RenamingInfo>;
template class FacetTable<ReadableInfo>;

Registry& Registry::global() {
  static Registry* instance = [] {
    auto* r = new Registry();
    register_builtins(*r);
    return r;
  }();
  return *instance;
}

void Registry::add_counter(CounterInfo info) { counters_.add(std::move(info)); }
void Registry::add_renaming(RenamingInfo info) {
  renamings_.add(std::move(info));
}
void Registry::add_readable(ReadableInfo info) {
  readables_.add(std::move(info));
}

const CounterInfo* Registry::find_counter(std::string_view name) const {
  return counters_.find(name);
}

const RenamingInfo* Registry::find_renaming(std::string_view name) const {
  return renamings_.find(name);
}

const ReadableInfo* Registry::find_readable(std::string_view name) const {
  return readables_.find(name);
}

std::vector<Facet> Registry::facets_knowing(std::string_view name,
                                            Facet self) const {
  std::vector<Facet> out;
  if (self != Facet::kCounter && counters_.find(name) != nullptr) {
    out.push_back(Facet::kCounter);
  }
  if (self != Facet::kRenaming && renamings_.find(name) != nullptr) {
    out.push_back(Facet::kRenaming);
  }
  if (self != Facet::kReadable && readables_.find(name) != nullptr) {
    out.push_back(Facet::kReadable);
  }
  return out;
}

const std::vector<OptionSchema>& Registry::schema_of(
    Facet facet, std::string_view name) const {
  switch (facet) {
    case Facet::kCounter:
      if (const CounterInfo* info = counters_.find(name)) return info->options;
      break;
    case Facet::kRenaming:
      if (const RenamingInfo* info = renamings_.find(name)) return info->options;
      break;
    case Facet::kReadable:
      if (const ReadableInfo* info = readables_.find(name)) return info->options;
      break;
  }
  throw_unknown(std::string(name), facet, list(facet),
                facets_knowing(name, facet));
}

void Registry::validate(Facet facet, const Spec& spec) const {
  const std::vector<OptionSchema>& schema = schema_of(facet, spec.name());
  for (const auto& [key, value] : spec.options()) {
    const OptionSchema* found = nullptr;
    for (const auto& o : schema) {
      if (o.key == key) {
        found = &o;
        break;
      }
    }
    if (found == nullptr) {
      // A typo'd key should not force the user back to the source: suggest
      // the closest declared key and list all of them.
      const std::vector<std::string> keys = schema_keys(schema);
      std::string msg = "unknown " + option_where(key, facet, spec.name());
      const std::string suggestion = closest_within_two(key, keys);
      if (!suggestion.empty()) msg += " (did you mean '" + suggestion + "'?)";
      msg += " (valid keys: " +
             (keys.empty() ? "none — this entry takes no options"
                           : joined(keys)) +
             ")";
      throw std::invalid_argument(msg);
    }
    check_value(*found, value, facet, spec.name());
    if (found->type == OptionSchema::Type::kSpec) {
      validate(found->spec_facet, value.as_spec());
    }
  }
}

std::string Registry::canonical(Facet facet, const std::string& spec) const {
  const Spec parsed = Spec::parse(spec);
  validate(facet, parsed);
  return parsed.print();
}

std::unique_ptr<ICounter> Registry::make_counter(const Spec& spec) const {
  validate(Facet::kCounter, spec);
  return counters_.find(spec.name())->make(spec);
}

std::unique_ptr<IRenaming> Registry::make_renaming(const Spec& spec) const {
  validate(Facet::kRenaming, spec);
  return renamings_.find(spec.name())->make(spec);
}

std::unique_ptr<IReadableCounter> Registry::make_readable(
    const Spec& spec) const {
  validate(Facet::kReadable, spec);
  return readables_.find(spec.name())->make(spec);
}

std::unique_ptr<ICounter> Registry::make_counter(const std::string& spec) const {
  return make_counter(Spec::parse(spec));
}

std::unique_ptr<IRenaming> Registry::make_renaming(
    const std::string& spec) const {
  return make_renaming(Spec::parse(spec));
}

std::unique_ptr<IReadableCounter> Registry::make_readable(
    const std::string& spec) const {
  return make_readable(Spec::parse(spec));
}

std::vector<Facet> Registry::facets() const {
  std::vector<Facet> out;
  if (!counters_.entries().empty()) out.push_back(Facet::kCounter);
  if (!renamings_.entries().empty()) out.push_back(Facet::kRenaming);
  if (!readables_.entries().empty()) out.push_back(Facet::kReadable);
  return out;
}

std::vector<std::string> Registry::list(Facet facet) const {
  switch (facet) {
    case Facet::kCounter: return counters_.names();
    case Facet::kRenaming: return renamings_.names();
    case Facet::kReadable: return readables_.names();
  }
  return {};
}

std::vector<std::string> Registry::list() const {
  std::vector<std::string> out;
  for (auto name : renamings_.names()) out.push_back(std::move(name));
  for (auto name : counters_.names()) out.push_back(std::move(name));
  for (auto name : readables_.names()) out.push_back(std::move(name));
  return out;
}

namespace {

EntryDescription describe_entry(const CounterInfo& e) {
  return EntryDescription{.facet = Facet::kCounter,
                          .name = e.name,
                          .family = e.family,
                          .summary = e.summary,
                          .consistency = consistency_name(e.consistency),
                          .options = e.options};
}

EntryDescription describe_entry(const RenamingInfo& e) {
  return EntryDescription{.facet = Facet::kRenaming,
                          .name = e.name,
                          .family = e.family,
                          .summary = e.summary,
                          .consistency = {},  // renamings declare no level
                          .adaptive = e.adaptive,
                          .reusable = e.reusable,
                          .options = e.options};
}

EntryDescription describe_entry(const ReadableInfo& e) {
  return EntryDescription{.facet = Facet::kReadable,
                          .name = e.name,
                          .family = e.family,
                          .summary = e.summary,
                          .consistency = consistency_name(e.consistency),
                          .options = e.options};
}

}  // namespace

std::vector<EntryDescription> Registry::describe(Facet facet) const {
  std::vector<EntryDescription> out;
  switch (facet) {
    case Facet::kCounter:
      for (const auto& e : counters_.entries()) out.push_back(describe_entry(e));
      break;
    case Facet::kRenaming:
      for (const auto& e : renamings_.entries()) {
        out.push_back(describe_entry(e));
      }
      break;
    case Facet::kReadable:
      for (const auto& e : readables_.entries()) {
        out.push_back(describe_entry(e));
      }
      break;
  }
  return out;
}

std::vector<EntryDescription> Registry::describe() const {
  std::vector<EntryDescription> out;
  for (const Facet facet :
       {Facet::kRenaming, Facet::kCounter, Facet::kReadable}) {
    auto part = describe(facet);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  return out;
}

EntryDescription Registry::describe(Facet facet, std::string_view name) const {
  switch (facet) {
    case Facet::kCounter:
      if (const CounterInfo* e = counters_.find(name)) return describe_entry(*e);
      break;
    case Facet::kRenaming:
      if (const RenamingInfo* e = renamings_.find(name)) {
        return describe_entry(*e);
      }
      break;
    case Facet::kReadable:
      if (const ReadableInfo* e = readables_.find(name)) {
        return describe_entry(*e);
      }
      break;
  }
  throw_unknown(std::string(name), facet, list(facet),
                facets_knowing(name, facet));
}

}  // namespace renamelib::api
