#include "api/registry.h"

#include <charconv>
#include <limits>
#include <stdexcept>

#include "api/counters.h"
#include "api/readables.h"
#include "api/renamings.h"
#include "api/sharded_counters.h"
#include "countnet/periodic.h"
#include "renaming/bit_batching.h"
#include "renaming/linear_probe.h"
#include "renaming/moir_anderson.h"
#include "renaming/renaming_network.h"
#include "sortnet/bitonic.h"

namespace renamelib::api {

const char* consistency_name(Consistency c) {
  switch (c) {
    case Consistency::kLinearizable: return "linearizable";
    case Consistency::kQuiescent: return "quiescent";
    case Consistency::kDense: return "dense";
    case Consistency::kMonotone: return "monotone";
  }
  return "?";
}

const char* family_name(Family f) {
  switch (f) {
    case Family::kRenaming: return "renaming";
    case Family::kFaiCounting: return "fai-counting";
    case Family::kCountingNetwork: return "counting-network";
    case Family::kSharded: return "sharded";
    case Family::kBaseline: return "baseline";
  }
  return "?";
}

const char* facet_name(Facet f) {
  switch (f) {
    case Facet::kCounter: return "counter";
    case Facet::kRenaming: return "renaming";
    case Facet::kReadable: return "readable-counter";
  }
  return "?";
}

// ------------------------------------------------------------------ params

void Params::set(std::string key, std::string value) {
  if (has(key)) {
    throw std::invalid_argument("duplicate spec param '" + key + "'");
  }
  kv_.emplace_back(std::move(key), std::move(value));
}

bool Params::has(std::string_view key) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return true;
  }
  return false;
}

std::string Params::get(std::string_view key, std::string_view def) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return v;
  }
  return std::string(def);
}

std::uint64_t Params::get_u64(std::string_view key, std::uint64_t def) const {
  for (const auto& [k, v] : kv_) {
    if (k != key) continue;
    std::uint64_t out = 0;
    const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
    if (ec != std::errc{} || ptr != v.data() + v.size()) {
      throw std::invalid_argument("spec param '" + std::string(key) +
                                  "' is not an unsigned integer: '" + v + "'");
    }
    return out;
  }
  return def;
}

namespace {

/// Splits `rest` at top-level commas: commas inside [...] belong to a nested
/// spec value and do not separate parameters.
std::vector<std::string> split_params(const std::string& rest,
                                      const std::string& spec) {
  std::vector<std::string> items;
  std::string item;
  int depth = 0;
  for (const char c : rest) {
    if (c == '[') ++depth;
    if (c == ']' && --depth < 0) {
      throw std::invalid_argument("unbalanced ']' in spec '" + spec + "'");
    }
    if (c == ',' && depth == 0) {
      items.push_back(std::move(item));
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  if (depth != 0) {
    throw std::invalid_argument("unbalanced '[' in spec '" + spec + "'");
  }
  items.push_back(std::move(item));
  return items;
}

}  // namespace

Spec parse_spec(const std::string& spec) {
  Spec out;
  const auto colon = spec.find(':');
  out.name = spec.substr(0, colon);
  if (out.name.empty()) {
    throw std::invalid_argument("empty implementation name in spec '" + spec + "'");
  }
  if (colon == std::string::npos) return out;
  for (const std::string& item : split_params(spec.substr(colon + 1), spec)) {
    const auto eq = item.find('=');
    if (item.empty() || eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("malformed key=value '" + item + "' in spec '" +
                                  spec + "'");
    }
    std::string value = item.substr(eq + 1);
    // A bracketed value is a nested spec: strip the outer brackets, keep the
    // inside verbatim (the enclosing implementation resolves it).
    if (value.size() >= 2 && value.front() == '[' && value.back() == ']') {
      value = value.substr(1, value.size() - 2);
    }
    out.params.set(item.substr(0, eq), std::move(value));
  }
  return out;
}

namespace {

void check_keys(const Spec& spec, const std::vector<std::string>& allowed) {
  for (const auto& [k, v] : spec.params.entries()) {
    bool ok = false;
    for (const auto& a : allowed) ok |= (a == k);
    if (!ok) {
      // Name the keys this family accepts: a typo'd key should not force the
      // user back to the source to learn the valid spelling.
      std::string valid;
      for (const auto& a : allowed) {
        if (!valid.empty()) valid += ", ";
        valid += a;
      }
      throw std::invalid_argument(
          "unknown param '" + k + "' for '" + spec.name + "' (valid keys: " +
          (valid.empty() ? "none — this spec takes no params" : valid) + ")");
    }
  }
}

/// Shared "tas=rnd|hw" option: comparator arbitration flavor.
renaming::AdaptiveStrongRenaming::Options adaptive_options(const Params& p) {
  renaming::AdaptiveStrongRenaming::Options options;
  const std::string tas = p.get("tas", "rnd");
  if (tas == "hw") {
    options.comparators = renaming::AdaptiveComparatorKind::kHardware;
  } else if (tas != "rnd") {
    throw std::invalid_argument("param tas must be 'rnd' or 'hw', got '" + tas +
                                "'");
  }
  return options;
}

std::uint64_t pow2_param(const Params& p, std::string_view key,
                         std::uint64_t def) {
  const std::uint64_t v = p.get_u64(key, def);
  if (v < 2 || (v & (v - 1)) != 0) {
    throw std::invalid_argument("param '" + std::string(key) +
                                "' must be a power of two >= 2");
  }
  return v;
}

bool bool_param(const Params& p, std::string_view key, bool def) {
  const std::uint64_t v = p.get_u64(key, def ? 1 : 0);
  if (v > 1) {
    throw std::invalid_argument("param '" + std::string(key) +
                                "' must be 0 or 1");
  }
  return v == 1;
}

std::uint64_t ranged_param(const Params& p, std::string_view key,
                           std::uint64_t def, std::uint64_t lo,
                           std::uint64_t hi) {
  const std::uint64_t v = p.get_u64(key, def);
  if (v < lo || v > hi) {
    throw std::invalid_argument("param '" + std::string(key) +
                                "' must be in [" + std::to_string(lo) + ", " +
                                std::to_string(hi) + "]");
  }
  return v;
}

/// Wraps a native one-shot protocol in the dense-id facet adapter.
std::unique_ptr<IRenaming> one_shot(std::unique_ptr<renaming::IRenaming> impl) {
  return std::make_unique<OneShotRenamingAdapter>(std::move(impl));
}

void register_builtins(Registry& r) {
  // ------------------------------------------------------------ renamings
  r.add_renaming(RenamingInfo{
      .name = "adaptive_strong",
      .summary = "Sec. 6.2 adaptive strong renaming: tight 1..k, polylog k "
                 "steps, unbounded initial namespace",
      .adaptive = true,
      .keys = {"tas"},
      .name_bound = [](int k, const Params&) { return std::uint64_t(k); },
      .max_requests = [](const Params&) { return std::numeric_limits<int>::max(); },
      .make = [](const Params& p) {
        return one_shot(std::make_unique<renaming::AdaptiveStrongRenaming>(
            adaptive_options(p)));
      }});
  r.add_renaming(RenamingInfo{
      .name = "linear_probe",
      .summary = "classic baseline [4,11]: probe TAS 1,2,3,... in order; "
                 "tight 1..k but Theta(k) steps",
      .adaptive = true,
      .keys = {"cap", "tas"},
      .name_bound = [](int k, const Params&) { return std::uint64_t(k); },
      .max_requests = [](const Params& p) {
        return static_cast<int>(p.get_u64("cap", 1024));
      },
      .make = [](const Params& p) {
        const std::string tas = p.get("tas", "hw");
        if (tas != "hw" && tas != "ratrace") {
          throw std::invalid_argument("param tas must be 'hw' or 'ratrace'");
        }
        return one_shot(std::make_unique<renaming::LinearProbeRenaming>(
            p.get_u64("cap", 1024), /*hardware_tas=*/tas == "hw"));
      }});
  r.add_renaming(RenamingInfo{
      .name = "bit_batching",
      .summary = "Sec. 4 BitBatching: non-adaptive strong renaming into 1..n, "
                 "O(log^2 n) probes w.h.p.",
      .adaptive = false,
      .keys = {"n", "tas"},
      .name_bound = [](int, const Params& p) { return p.get_u64("n", 64); },
      .max_requests = [](const Params& p) {
        return static_cast<int>(p.get_u64("n", 64));
      },
      .make = [](const Params& p) {
        const std::string tas = p.get("tas", "hw");
        renaming::SlotTasKind kind;
        if (tas == "hw") {
          kind = renaming::SlotTasKind::kHardware;
        } else if (tas == "ratrace") {
          kind = renaming::SlotTasKind::kRatRace;
        } else {
          throw std::invalid_argument("param tas must be 'hw' or 'ratrace'");
        }
        return one_shot(
            std::make_unique<renaming::BitBatching>(p.get_u64("n", 64), kind));
      }});
  r.add_renaming(RenamingInfo{
      .name = "moir_anderson",
      .summary = "deterministic splitter-grid renaming [5,6,7]: adaptive but "
                 "loose (1..k(k+1)/2), Theta(k) steps",
      .adaptive = true,
      .keys = {"n"},
      .name_bound = [](int k, const Params&) {
        return std::uint64_t(k) * (std::uint64_t(k) + 1) / 2;
      },
      .max_requests = [](const Params& p) {
        return static_cast<int>(p.get_u64("n", 64));
      },
      .make = [](const Params& p) {
        return one_shot(
            std::make_unique<renaming::MoirAndersonRenaming>(p.get_u64("n", 64)));
      }});
  r.add_renaming(RenamingInfo{
      .name = "renaming_network",
      .summary = "Sec. 5 renaming network over a bitonic sorting network: "
                 "tight 1..k in every execution, depth-bounded traversals",
      .adaptive = true,
      .keys = {"w", "tas"},
      .name_bound = [](int k, const Params&) { return std::uint64_t(k); },
      .max_requests = [](const Params& p) {
        return static_cast<int>(pow2_param(p, "w", 32));
      },
      .make = [](const Params& p) {
        const std::string tas = p.get("tas", "rnd");
        renaming::ComparatorKind kind;
        if (tas == "rnd") {
          kind = renaming::ComparatorKind::kRandomized;
        } else if (tas == "hw") {
          kind = renaming::ComparatorKind::kHardware;
        } else {
          throw std::invalid_argument("param tas must be 'rnd' or 'hw'");
        }
        return one_shot(std::make_unique<renaming::RenamingNetwork>(
            sortnet::bitonic_sort(pow2_param(p, "w", 32)), kind));
      }});
  r.add_renaming(RenamingInfo{
      .name = "longlived",
      .summary = "long-lived renaming (Sec. 9 direction): acquire/release "
                 "over a slot vector, names O(concurrent holders) w.h.p., "
                 "O(log k) expected probes per acquire",
      // The w.h.p. O(k) adaptivity is real but the *every-execution* bound —
      // what name_bound must declare — is the capacity; the dedicated churn
      // test asserts the probabilistic adaptivity.
      .adaptive = false,
      .reusable = true,
      .keys = {"cap"},
      .name_bound = [](int, const Params& p) {
        return ranged_param(p, "cap", 256, 2, 1u << 20);
      },
      .max_requests = [](const Params& p) {
        // Bounds *concurrent holders*: release recycles request budget.
        return static_cast<int>(ranged_param(p, "cap", 256, 2, 1u << 20));
      },
      .make = [](const Params& p) -> std::unique_ptr<IRenaming> {
        return std::make_unique<LongLivedRenamingAdapter>(
            ranged_param(p, "cap", 256, 2, 1u << 20));
      }});

  // ------------------------------------------------------------- counters
  r.add_counter(CounterInfo{
      .name = "bounded_fai",
      .family = Family::kFaiCounting,
      .summary = "Sec. 8.2 m-valued linearizable fetch-and-increment, "
                 "O(log k log m) expected steps",
      .consistency = Consistency::kLinearizable,
      .keys = {"m", "tas"},
      .make = [](const Params& p) -> std::unique_ptr<ICounter> {
        return std::make_unique<BoundedFaiCounter>(pow2_param(p, "m", 1024),
                                                   adaptive_options(p));
      }});
  r.add_counter(CounterInfo{
      .name = "unbounded_fai",
      .family = Family::kFaiCounting,
      .summary = "epoch-chained unbounded linearizable fetch-and-increment "
                 "(Sec. 9 direction), O(log k log v) amortized",
      .consistency = Consistency::kLinearizable,
      .keys = {"tas"},
      .make = [](const Params& p) -> std::unique_ptr<ICounter> {
        return std::make_unique<UnboundedFaiCounter>(adaptive_options(p));
      }});
  r.add_counter(CounterInfo{
      .name = "naming_counter",
      .family = Family::kFaiCounting,
      .summary = "rename-then-subtract dispenser: dense values, not "
                 "linearizable (Sec. 8.1 argument)",
      .consistency = Consistency::kDense,
      .keys = {"tas"},
      .make = [](const Params& p) -> std::unique_ptr<ICounter> {
        return std::make_unique<NamingCounter>(adaptive_options(p));
      }});
  r.add_counter(CounterInfo{
      .name = "atomic_fai",
      .family = Family::kBaseline,
      .summary = "single fetch-and-add register: the 1-step/op hardware "
                 "reference point",
      .consistency = Consistency::kLinearizable,
      .keys = {},
      .make = [](const Params&) -> std::unique_ptr<ICounter> {
        return std::make_unique<AtomicFaiCounter>();
      }});
  r.add_counter(CounterInfo{
      .name = "striped",
      .family = Family::kSharded,
      .summary = "cache-line-striped dispenser: spray-routed per-stripe "
                 "fetch&add slots, optional elimination pair-combining",
      .consistency = Consistency::kQuiescent,
      .keys = {"stripes", "elim", "elim_width", "elim_spins"},
      .make = [](const Params& p) -> std::unique_ptr<ICounter> {
        sharded::StripedCounter::Options o;
        o.stripes = ranged_param(p, "stripes", 64, 1, 4096);
        o.elimination = bool_param(p, "elim", false);
        o.elim_width = ranged_param(p, "elim_width", 4, 1, 1024);
        o.elim_spins =
            static_cast<int>(ranged_param(p, "elim_spins", 4, 1, 1024));
        return std::make_unique<StripedCounterAdapter>(o);
      }});
  r.add_counter(CounterInfo{
      .name = "difftree",
      .family = Family::kSharded,
      .summary = "diffracting-tree counter: prism/toggle balancer tree over "
                 "composable leaf sub-counters (leaf= is a nested spec)",
      .consistency = Consistency::kQuiescent,
      .keys = {"depth", "leaf", "prism", "prism_width", "prism_spins"},
      .make = [](const Params& p) -> std::unique_ptr<ICounter> {
        sharded::DiffractingTreeCounter::Options o;
        o.depth = static_cast<int>(ranged_param(p, "depth", 3, 1, 10));
        o.prism = bool_param(p, "prism", true);
        o.prism_width = ranged_param(p, "prism_width", 4, 1, 1024);
        o.prism_spins =
            static_cast<int>(ranged_param(p, "prism_spins", 4, 1, 1024));
        // The leaf value is itself a spec, resolved through the registry —
        // by construction time the global instance is fully populated, and
        // unknown leaf names fail with the registry's own error message.
        const std::string leaf = p.get("leaf", "atomic_fai");
        return std::make_unique<DiffractingTreeCounterAdapter>(
            o, [leaf]() { return Registry::global().make_counter(leaf); });
      }});
  r.add_counter(CounterInfo{
      .name = "bitonic_countnet",
      .family = Family::kCountingNetwork,
      .summary = "bitonic counting network [26] as a counter: quiescently "
                 "consistent, step property on output wires",
      .consistency = Consistency::kQuiescent,
      .keys = {"w"},
      .make = [](const Params& p) -> std::unique_ptr<ICounter> {
        return std::make_unique<CountingNetworkCounter>(
            countnet::CountingNetwork::bitonic(pow2_param(p, "w", 16)));
      }});
  r.add_counter(CounterInfo{
      .name = "periodic_countnet",
      .family = Family::kCountingNetwork,
      .summary = "periodic counting network [26]: log w identical blocks, "
                 "same guarantees as bitonic",
      .consistency = Consistency::kQuiescent,
      .keys = {"w"},
      .make = [](const Params& p) -> std::unique_ptr<ICounter> {
        return std::make_unique<CountingNetworkCounter>(
            countnet::periodic_counting_network(pow2_param(p, "w", 16)));
      }});

  // ------------------------------------------------------------ readables
  r.add_readable(ReadableInfo{
      .name = "monotone",
      .family = Family::kFaiCounting,
      .summary = "Sec. 8.1 monotone counter: rename then write_max, reads "
                 "between completed and started increments, O(log v) steps",
      .consistency = Consistency::kMonotone,
      .keys = {"tas"},
      .make = [](const Params& p) -> std::unique_ptr<IReadableCounter> {
        return std::make_unique<MonotoneCounterAdapter>(adaptive_options(p));
      }});
  r.add_readable(ReadableInfo{
      .name = "maxregtree",
      .family = Family::kBaseline,
      .summary = "deterministic linearizable counter of [17]: single-writer "
                 "leaves under a max-register tree, O(log n log m) steps — "
                 "the log factor the monotone counter removes",
      .consistency = Consistency::kLinearizable,
      .keys = {"n", "cap"},
      .make = [](const Params& p) -> std::unique_ptr<IReadableCounter> {
        return std::make_unique<MaxRegTreeCounterAdapter>(
            static_cast<std::size_t>(ranged_param(p, "n", 64, 1, 4096)),
            ranged_param(p, "cap", 1u << 16, 2, 1u << 26));
      }});
  r.add_readable(ReadableInfo{
      .name = "striped",
      .family = Family::kSharded,
      .summary = "striped statistic counter: pid-striped 1-step increments, "
                 "full-collect reads, monotone across non-overlapping reads",
      .consistency = Consistency::kMonotone,
      .keys = {"stripes"},
      .make = [](const Params& p) -> std::unique_ptr<IReadableCounter> {
        sharded::StripedCounter::Options o;
        o.stripes = ranged_param(p, "stripes", 64, 1, 4096);
        return std::make_unique<StripedStatisticAdapter>(o);
      }});
  r.add_readable(ReadableInfo{
      .name = "bitonic_countnet",
      .family = Family::kCountingNetwork,
      .summary = "bitonic counting network's quiescent read side [26]: one "
                 "token traverse per increment, full exit-count collect per "
                 "read, exact at quiescence",
      .consistency = Consistency::kQuiescent,
      .keys = {"w"},
      .make = [](const Params& p) -> std::unique_ptr<IReadableCounter> {
        return std::make_unique<CountnetReadableAdapter>(
            countnet::CountingNetwork::bitonic(pow2_param(p, "w", 16)));
      }});
  r.add_readable(ReadableInfo{
      .name = "periodic_countnet",
      .family = Family::kCountingNetwork,
      .summary = "periodic counting network's quiescent read side [26]: same "
                 "read/increment contract as bitonic_countnet",
      .consistency = Consistency::kQuiescent,
      .keys = {"w"},
      .make = [](const Params& p) -> std::unique_ptr<IReadableCounter> {
        return std::make_unique<CountnetReadableAdapter>(
            countnet::periodic_counting_network(pow2_param(p, "w", 16)));
      }});
}

}  // namespace

// ----------------------------------------------------------------- registry

template <typename Info>
void FacetTable<Info>::add(Info info) {
  if (find(info.name) != nullptr) {
    throw std::invalid_argument("duplicate registration '" + info.name + "'");
  }
  entries_.push_back(std::move(info));
}

template <typename Info>
const Info* FacetTable<Info>::find(std::string_view name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

template <typename Info>
std::vector<std::string> FacetTable<Info>::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.name);
  return out;
}

template class FacetTable<CounterInfo>;
template class FacetTable<RenamingInfo>;
template class FacetTable<ReadableInfo>;

Registry& Registry::global() {
  static Registry* instance = [] {
    auto* r = new Registry();
    register_builtins(*r);
    return r;
  }();
  return *instance;
}

void Registry::add_counter(CounterInfo info) { counters_.add(std::move(info)); }
void Registry::add_renaming(RenamingInfo info) {
  renamings_.add(std::move(info));
}
void Registry::add_readable(ReadableInfo info) {
  readables_.add(std::move(info));
}

const CounterInfo* Registry::find_counter(std::string_view name) const {
  return counters_.find(name);
}

const RenamingInfo* Registry::find_renaming(std::string_view name) const {
  return renamings_.find(name);
}

const ReadableInfo* Registry::find_readable(std::string_view name) const {
  return readables_.find(name);
}

std::vector<Facet> Registry::facets_knowing(std::string_view name,
                                            Facet self) const {
  std::vector<Facet> out;
  if (self != Facet::kCounter && counters_.find(name) != nullptr) {
    out.push_back(Facet::kCounter);
  }
  if (self != Facet::kRenaming && renamings_.find(name) != nullptr) {
    out.push_back(Facet::kRenaming);
  }
  if (self != Facet::kReadable && readables_.find(name) != nullptr) {
    out.push_back(Facet::kReadable);
  }
  return out;
}

namespace {

/// Shared unknown-name error: names the facet asked for, and — so a wrong
/// make_*() call is a one-read fix — any other facet that does know the name.
[[noreturn]] void throw_unknown(const std::string& name, Facet facet,
                                const std::vector<Facet>& elsewhere) {
  std::string msg = std::string("unknown ") + facet_name(facet) + " '" + name + "'";
  if (!elsewhere.empty()) {
    msg += " (registered under the ";
    for (std::size_t i = 0; i < elsewhere.size(); ++i) {
      if (i > 0) msg += " and ";
      msg += facet_name(elsewhere[i]);
    }
    msg += " facet" + std::string(elsewhere.size() > 1 ? "s)" : ")");
  }
  throw std::invalid_argument(msg);
}

}  // namespace

std::unique_ptr<ICounter> Registry::make_counter(const std::string& spec) const {
  const Spec parsed = parse_spec(spec);
  const CounterInfo* info = counters_.find(parsed.name);
  if (info == nullptr) {
    throw_unknown(parsed.name, Facet::kCounter,
                  facets_knowing(parsed.name, Facet::kCounter));
  }
  check_keys(parsed, info->keys);
  return info->make(parsed.params);
}

std::unique_ptr<IRenaming> Registry::make_renaming(
    const std::string& spec) const {
  const Spec parsed = parse_spec(spec);
  const RenamingInfo* info = renamings_.find(parsed.name);
  if (info == nullptr) {
    throw_unknown(parsed.name, Facet::kRenaming,
                  facets_knowing(parsed.name, Facet::kRenaming));
  }
  check_keys(parsed, info->keys);
  return info->make(parsed.params);
}

std::unique_ptr<IReadableCounter> Registry::make_readable(
    const std::string& spec) const {
  const Spec parsed = parse_spec(spec);
  const ReadableInfo* info = readables_.find(parsed.name);
  if (info == nullptr) {
    throw_unknown(parsed.name, Facet::kReadable,
                  facets_knowing(parsed.name, Facet::kReadable));
  }
  check_keys(parsed, info->keys);
  return info->make(parsed.params);
}

std::vector<Facet> Registry::facets() const {
  std::vector<Facet> out;
  if (!counters_.entries().empty()) out.push_back(Facet::kCounter);
  if (!renamings_.entries().empty()) out.push_back(Facet::kRenaming);
  if (!readables_.entries().empty()) out.push_back(Facet::kReadable);
  return out;
}

std::vector<std::string> Registry::list(Facet facet) const {
  switch (facet) {
    case Facet::kCounter: return counters_.names();
    case Facet::kRenaming: return renamings_.names();
    case Facet::kReadable: return readables_.names();
  }
  return {};
}

std::vector<std::string> Registry::list() const {
  std::vector<std::string> out;
  for (auto name : renamings_.names()) out.push_back(std::move(name));
  for (auto name : counters_.names()) out.push_back(std::move(name));
  for (auto name : readables_.names()) out.push_back(std::move(name));
  return out;
}

}  // namespace renamelib::api
