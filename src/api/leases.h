/// \file
/// \brief Facet adapters over the escrow lease broker (src/lease).
///
/// Same shape as api/counters.h: forward the facet operations, declare the
/// honest semantics, expose the native object via impl(). Both adapters wrap
/// *any* registered inner dispenser of their own facet — the broker's mint
/// hook is one inner operation per `quota` client requests:
///
///   * LeasedCounterAdapter — next() serves positions
///     ticket*quota + offset from the pid's leased range. Values are unique
///     and escrow-bounded but NOT a dense prefix: a partially drained lease
///     withholds the tail of its range, so the adapter declares
///     Consistency::kEscrow and the conformance oracle checks uniqueness
///     plus the quota-rounded bound instead of density.
///   * LeasedRenamingAdapter — acquire() maps ticket ranges into names >= 1;
///     release() recycles the name through a pid-private free stack, so churn
///     is served at zero shared steps and the entry stays reusable no matter
///     what the inner renaming is. holders() sums pid-level
///     acquired-minus-released counts (meta-level diagnostics, the same
///     status as OneShotRenamingAdapter's id dispenser); a crashed holder
///     leaks exactly the names it still held, never its lease's unserved
///     tail — that tail is what LeaseBroker::reclaim returns to the pool.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "api/counter.h"
#include "api/renaming.h"
#include "core/assert.h"
#include "lease/lease_broker.h"

namespace renamelib::api {

/// Escrow-leased dispenser: thread-local ranges over any inner ICounter.
class LeasedCounterAdapter final : public ICounter {
 public:
  /// Builds a broker minting range tickets via `inner->next()`. The broker's
  /// ticket_limit is derived from the inner capacity so a saturated inner
  /// dispenser saturates the wrapper instead of duplicating values.
  LeasedCounterAdapter(lease::LeaseBroker::Options options,
                       std::unique_ptr<ICounter> inner)
      : inner_(std::move(inner)),
        broker_(
            [&options, this] {
              if (inner_->capacity() != kUnbounded) {
                options.ticket_limit = inner_->capacity();
              }
              return options;
            }(),
            [this](Ctx& ctx) { return inner_->next(ctx); }) {}

  /// Serves from the pid's leased range (see lease/lease_broker.h).
  std::uint64_t next(Ctx& ctx) override { return broker_.serve(ctx); }

  /// quota * inner capacity, saturating at kUnbounded.
  std::uint64_t capacity() const override {
    const std::uint64_t inner_cap = inner_->capacity();
    if (inner_cap == kUnbounded) return kUnbounded;
    const std::uint64_t q = broker_.quota();
    return inner_cap > (kUnbounded - 1) / q ? kUnbounded : inner_cap * q;
  }

  /// Unique, escrow-bounded, not dense (see file comment).
  Consistency consistency() const override { return Consistency::kEscrow; }

  /// The native broker (stats() and reclaim() live here).
  lease::LeaseBroker& impl() { return broker_; }

  /// The wrapped inner dispenser.
  ICounter& inner() { return *inner_; }

 private:
  std::unique_ptr<ICounter> inner_;
  lease::LeaseBroker broker_;
};

/// Escrow-leased renaming: thread-local name ranges over any inner IRenaming,
/// with pid-private recycling of released names.
class LeasedRenamingAdapter final : public IRenaming {
 public:
  /// Builds a broker minting range tickets via `inner->acquire() - 1`.
  LeasedRenamingAdapter(lease::LeaseBroker::Options options,
                        std::unique_ptr<IRenaming> inner)
      : procs_(options.procs),
        free_cap_(options.quota < kMaxFreeStack ? options.quota
                                                : kMaxFreeStack),
        inner_(std::move(inner)),
        broker_(options,
                [this](Ctx& ctx) { return inner_->acquire(ctx) - 1; }),
        local_(std::make_unique<Local[]>(static_cast<std::size_t>(procs_))) {}

  /// Pops the pid's free stack (zero shared steps) or serves a fresh
  /// position from the leased range; names are >= 1.
  std::uint64_t acquire(Ctx& ctx) override {
    Local& local = local_of(ctx);
    std::uint64_t name = 0;
    if (local.free_count > 0) {
      name = local.free_stack[--local.free_count];
    } else {
      name = broker_.serve(ctx) + 1;
    }
    local.held.fetch_add(1, std::memory_order_relaxed);
    return name;
  }

  /// Recycles `name` through the pid-private free stack. A full stack drops
  /// the name (it stays consumed in the inner namespace — bounded by the
  /// stack depth per pid and harmless to holders()).
  void release(Ctx& ctx, std::uint64_t name) override {
    Local& local = local_of(ctx);
    RENAMELIB_ENSURE(local.held.load(std::memory_order_relaxed) > 0,
                     "release without a matching acquire on this pid");
    local.held.fetch_sub(1, std::memory_order_relaxed);
    if (local.free_count < free_cap_) {
      local.free_stack[local.free_count++] = name;
    }
  }

  /// Released names come back through the free stacks.
  bool reusable() const override { return true; }

  /// Sum of per-pid acquired-minus-released counts (quiescent diagnostic).
  std::uint64_t holders() const override {
    std::uint64_t sum = 0;
    for (int p = 0; p < procs_; ++p) {
      sum += local_[p].held.load(std::memory_order_relaxed);
    }
    return sum;
  }

  /// The native broker (stats() and reclaim() live here).
  lease::LeaseBroker& impl() { return broker_; }

  /// The wrapped inner renaming.
  IRenaming& inner() { return *inner_; }

 private:
  static constexpr std::uint32_t kMaxFreeStack = 64;

  /// Pid-private recycling state; padded like the broker's Local. The held
  /// count is meta-level (relaxed atomic, zero steps): holders() is a
  /// quiescent diagnostic, not protocol state.
  struct alignas(64) Local {
    std::atomic<std::uint64_t> held{0};
    std::uint32_t free_count = 0;
    std::uint64_t free_stack[kMaxFreeStack] = {};
  };

  Local& local_of(Ctx& ctx) {
    const int pid = ctx.pid();
    RENAMELIB_ENSURE(pid >= 0 && pid < procs_,
                     "pid exceeds the lease broker's procs= geometry");
    return local_[pid];
  }

  int procs_;
  std::uint32_t free_cap_;
  std::unique_ptr<IRenaming> inner_;
  lease::LeaseBroker broker_;
  std::unique_ptr<Local[]> local_;
};

}  // namespace renamelib::api
