/// \file
/// \brief Facet adapters over the flat-combining funnel (src/combining).
///
/// Same shape as api/leases.h: forward the facet operations, declare the
/// honest semantics, expose the native object via impl(). Both adapters wrap
/// *any* registered inner object of their own facet — the funnel's mint hook
/// is one ranged inner crossing per combine sweep:
///
///   * CombinedCounterAdapter — next() publishes a one-value request;
///     next_range() publishes batched wants so the whole batch rides one
///     publication. Values are unique (they all come from the inner mint)
///     but NOT a dense prefix: a reclaimed handoff can park minted values in
///     the spill pool and a crashed combiner orphans its in-flight work
///     list, so the adapter declares Consistency::kEscrow and the oracles
///     check uniqueness plus the combining slack (inner values after at most
///     2x the requested mints — see combining_funnel.h) instead of density.
///     CombiningFunnel::drain() recovers the spill at quiescence, which is
///     how bench_combining validates exact density on both backends.
///   * CombinedRenamingAdapter — acquire() maps combined values into names
///     >= 1. One-shot (release is a no-op): the funnel recycles reclaimed
///     values through its spill pool, not released names.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "api/counter.h"
#include "api/renaming.h"
#include "combining/combining_funnel.h"

namespace renamelib::api {

/// Flat-combined dispenser: batched publication slots over any inner
/// ICounter.
class CombinedCounterAdapter final : public ICounter {
 public:
  /// Builds a funnel minting value runs via `inner->next_range()`.
  CombinedCounterAdapter(combining::CombiningFunnel::Options options,
                         std::unique_ptr<ICounter> inner)
      : inner_(std::move(inner)),
        funnel_(
            options,
            [this](Ctx& ctx, std::uint64_t k, std::vector<ValueRange>& out) {
              inner_->next_range(ctx, k, out);
            },
            [this](Ctx& ctx) { return inner_->next(ctx); }) {}

  /// Publishes a one-value request (combined, or pass-through on timeout).
  std::uint64_t next(Ctx& ctx) override { return funnel_.get_one(ctx); }

  /// Batched fast path: the whole want rides one publication per funnel
  /// round; partial answers loop.
  void next_range(Ctx& ctx, std::uint64_t k,
                  std::vector<ValueRange>& out) override {
    std::uint64_t got = 0;
    while (got < k) got += funnel_.get(ctx, k - got, out);
  }

  /// The inner dispenser's bound: every handed value was minted by it.
  std::uint64_t capacity() const override { return inner_->capacity(); }

  /// Unique, combining-slack-bounded, not dense (see file comment).
  Consistency consistency() const override { return Consistency::kEscrow; }

  /// The native funnel (stats() and drain() live here).
  combining::CombiningFunnel& impl() { return funnel_; }

  /// The wrapped inner dispenser.
  ICounter& inner() { return *inner_; }

 private:
  std::unique_ptr<ICounter> inner_;
  combining::CombiningFunnel funnel_;
};

/// Flat-combined renaming: one-shot names minted in combined batches from
/// any inner renaming (acquire() - 1 is the funnel's value stream).
class CombinedRenamingAdapter final : public IRenaming {
 public:
  /// Builds a funnel minting name ranks via `inner->acquire() - 1`. Inner
  /// renamings have no ranged operation, so a combined sweep still crosses
  /// once per name — the win is the batched publication front-end.
  CombinedRenamingAdapter(combining::CombiningFunnel::Options options,
                          std::unique_ptr<IRenaming> inner)
      : inner_(std::move(inner)),
        funnel_(
            options,
            [this](Ctx& ctx, std::uint64_t k, std::vector<ValueRange>& out) {
              for (std::uint64_t i = 0; i < k; ++i) {
                out.push_back(ValueRange{inner_->acquire(ctx) - 1, 1, 1});
              }
            },
            [this](Ctx& ctx) { return inner_->acquire(ctx) - 1; }) {}

  /// Names are combined values + 1 (>= 1 like every renaming).
  std::uint64_t acquire(Ctx& ctx) override {
    const std::uint64_t name = funnel_.get_one(ctx) + 1;
    acquired_.fetch_add(1, std::memory_order_relaxed);
    return name;
  }

  /// One-shot: names are permanent (the funnel's recycling is for values it
  /// minted but never handed out, not for released names).
  void release(Ctx&, std::uint64_t) override {}

  bool reusable() const override { return false; }

  /// All-time acquire count (the one-shot holders() convention).
  std::uint64_t holders() const override {
    return acquired_.load(std::memory_order_relaxed);
  }

  /// The native funnel (stats() and drain() live here).
  combining::CombiningFunnel& impl() { return funnel_; }

  /// The wrapped inner renaming.
  IRenaming& inner() { return *inner_; }

 private:
  std::unique_ptr<IRenaming> inner_;
  combining::CombiningFunnel funnel_;
  std::atomic<std::uint64_t> acquired_{0};  // meta-level diagnostic
};

}  // namespace renamelib::api
