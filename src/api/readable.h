/// \file
/// \brief The readable-counter interface of the public API (the
/// IReadableCounter facet).
///
/// The paper's Sec. 8.1 counters are *read/increment* objects, not value
/// dispensers: increment() bumps the count, read() observes it, and the
/// interesting guarantee is what reads may return while increments are in
/// flight. This facet brings them behind the facade next to ICounter: the
/// monotone counter (rename + write_max, Lemma 4), the deterministic
/// max-register-tree counter of [17] it is compared against, and
/// StripedCounter's statistic mode. One facet means one conformance family
/// (monotonicity, read bounds, quiescent exactness) shared by all of them.
#pragma once

#include <cstdint>
#include <limits>

#include "api/counter.h"
#include "core/ctx.h"

namespace renamelib::api {

/// Abstract read/increment counter: increment() has no return value, read()
/// observes the count. Implemented by the adapters in api/readables.h;
/// constructed from spec strings by the Registry's readable facet.
class IReadableCounter {
 public:
  /// capacity() value meaning "no saturation bound".
  static constexpr std::uint64_t kUnbounded = ~0ULL;

  virtual ~IReadableCounter() = default;

  /// Adds one to the count. Thread-safe; every shared step is charged to
  /// `ctx`.
  virtual void increment(Ctx& ctx) = 0;

  /// Observes the count. What the value may be relative to concurrent
  /// increments is declared by consistency(): kLinearizable reads respect
  /// real-time order; kMonotone reads are totally ordered and always between
  /// the completed and the started increment counts.
  virtual std::uint64_t read(Ctx& ctx) = 0;

  /// Saturation bound: reads stay < capacity(); kUnbounded if none.
  virtual std::uint64_t capacity() const { return kUnbounded; }

  /// Most processes that may operate on this instance (pid-keyed state such
  /// as single-writer leaves bounds it; unbounded otherwise).
  virtual int max_procs() const { return std::numeric_limits<int>::max(); }

  virtual Consistency consistency() const = 0;
};

}  // namespace renamelib::api
