/// \file
/// \brief The unified counter interface of the public API.
///
/// Every counting-flavored shared object in renamelib — the paper's bounded
/// and unbounded fetch-and-increment (Sec. 8.2), renaming-backed value
/// dispensers, counting networks [26], the sharded striped/diffracting-tree
/// counters, and the hardware baselines — is usable through ICounter: next()
/// hands the calling operation its value. A single interface means one
/// conformance suite, one bench harness, and N+M instead of N*M wiring
/// between objects and scenarios.
#pragma once

#include <cstdint>
#include <vector>

#include "core/ctx.h"

namespace renamelib::api {

/// What a counter's handed-out values guarantee.
enum class Consistency {
  /// Passes Wing–Gong on concurrent histories (bounded/unbounded FAI).
  kLinearizable,
  /// Values unique; exactly 0..T-1 once quiescent, but an operation's value
  /// need not respect real-time order (counting networks).
  kQuiescent,
  /// Values unique and dense per execution, order arbitrary (renaming-backed
  /// dispensers — the Sec. 8.1 non-linearizability argument applies).
  kDense,
  /// Readable-counter level (Lemma 4): reads are totally ordered, never below
  /// the completed and never above the started increment count — but need not
  /// respect real-time order (the monotone counter, striped statistic mode).
  kMonotone,
  /// Escrow-leased level: values unique, but a pid-held lease withholds the
  /// undrained tail of its range, so after T operations values are < T + p*Q
  /// (p pids, quota Q) rather than a dense prefix (the lease wrapper).
  kEscrow,
};

/// Human-readable label for a Consistency level ("linearizable", ...).
const char* consistency_name(Consistency c);

/// An arithmetic run of counter values: base, base+stride, ...,
/// base+(count-1)*stride. The unit of batched minting: one striped take of k
/// tickets lands on a stride-S run per touched stripe, one atomic fetch&add
/// of k is a single stride-1 run.
struct ValueRange {
  std::uint64_t base = 0;
  std::uint64_t stride = 1;
  std::uint64_t count = 0;

  /// The i-th value of the run (i < count).
  std::uint64_t at(std::uint64_t i) const { return base + i * stride; }
  /// Total values carried by `ranges`.
  static std::uint64_t total(const std::vector<ValueRange>& ranges) {
    std::uint64_t sum = 0;
    for (const auto& r : ranges) sum += r.count;
    return sum;
  }
};

/// Abstract counter: one next() operation, one declared consistency level,
/// an optional saturation bound. Implemented by the adapters in
/// api/counters.h and api/sharded_counters.h; constructed from spec strings
/// by the Registry.
class ICounter {
 public:
  /// capacity() value meaning "no saturation bound".
  static constexpr std::uint64_t kUnbounded = ~0ULL;

  virtual ~ICounter() = default;

  /// Returns this operation's counter value (0, 1, 2, ...). Thread-safe;
  /// every shared step is charged to `ctx`.
  virtual std::uint64_t next(Ctx& ctx) = 0;

  /// Batched mint: appends `k` of this counter's values to `out` as
  /// arithmetic runs (ValueRange). Values obey exactly the same uniqueness /
  /// density contract as k separate next() calls — the default is literally
  /// that loop. Implementations whose geometry admits a cheaper ranged mint
  /// (one fetch&add of k, a striped multi-ticket take, a lease window chunk)
  /// override it; that amortized path is what the combining layer and the
  /// Workload's Scenario::batch knob drive.
  virtual void next_range(Ctx& ctx, std::uint64_t k,
                          std::vector<ValueRange>& out) {
    for (std::uint64_t i = 0; i < k; ++i) {
      out.push_back(ValueRange{next(ctx), 1, 1});
    }
  }

  /// Saturation bound: values are < capacity(); kUnbounded if none. Bounded
  /// objects keep returning capacity()-1 once exhausted (the paper's
  /// saturating sequential specification).
  virtual std::uint64_t capacity() const { return kUnbounded; }

  virtual Consistency consistency() const = 0;
};

}  // namespace renamelib::api
