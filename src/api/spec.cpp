#include "api/spec.h"

#include <algorithm>
#include <charconv>
#include <stdexcept>

namespace renamelib::api {

SpecValue::SpecValue(Spec nested)
    : nested_(std::make_shared<const Spec>(std::move(nested))) {}

const std::string& SpecValue::scalar() const {
  if (is_spec()) {
    throw std::invalid_argument("spec value '" + print() +
                                "' is a nested spec, not a scalar");
  }
  return scalar_;
}

const Spec& SpecValue::spec() const {
  if (!is_spec()) {
    throw std::invalid_argument("spec value '" + scalar_ +
                                "' is a scalar, not a nested spec");
  }
  return *nested_;
}

Spec SpecValue::as_spec() const {
  if (is_spec()) return *nested_;
  return Spec::parse(scalar_);
}

std::string SpecValue::print() const {
  if (!is_spec()) return scalar_;
  // Bracket exactly when the nested spec carries options: `leaf=[striped]`
  // and `leaf=striped` mean the same object and must print identically.
  if (nested_->options().empty()) return nested_->name();
  std::string out = "[";
  out += nested_->print();
  out += ']';
  return out;
}

namespace {

/// Splits `rest` at top-level commas: commas inside [...] belong to a
/// nested spec value and do not separate options.
std::vector<std::string> split_options(const std::string& rest,
                                       const std::string& text) {
  std::vector<std::string> items;
  std::string item;
  int depth = 0;
  for (const char c : rest) {
    if (c == '[') ++depth;
    if (c == ']' && --depth < 0) {
      throw std::invalid_argument("unbalanced ']' in spec '" + text + "'");
    }
    if (c == ',' && depth == 0) {
      items.push_back(std::move(item));
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  if (depth != 0) {
    throw std::invalid_argument("unbalanced '[' in spec '" + text + "'");
  }
  items.push_back(std::move(item));
  return items;
}

}  // namespace

Spec Spec::parse(const std::string& text) {
  const auto colon = text.find(':');
  Spec out(text.substr(0, colon));
  if (out.name().empty()) {
    throw std::invalid_argument("empty implementation name in spec '" + text +
                                "'");
  }
  if (out.name().find_first_of("[],=") != std::string::npos) {
    throw std::invalid_argument("malformed implementation name '" + out.name() +
                                "' in spec '" + text + "'");
  }
  if (colon == std::string::npos) return out;
  for (const std::string& item : split_options(text.substr(colon + 1), text)) {
    const auto eq = item.find('=');
    if (item.empty() || eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("malformed key=value '" + item +
                                  "' in spec '" + text + "'");
    }
    const std::string key = item.substr(0, eq);
    std::string value = item.substr(eq + 1);
    if (value.size() >= 2 && value.front() == '[' && value.back() == ']') {
      // Bracketed value: a nested spec node, parsed recursively.
      out.set(key, SpecValue(parse(value.substr(1, value.size() - 2))));
    } else if (value.find_first_of("[]") != std::string::npos) {
      throw std::invalid_argument("stray bracket in value '" + value +
                                  "' of spec '" + text + "'");
    } else if (value.find(':') != std::string::npos) {
      // Unbracketed nested spec (legal while it carries no comma):
      // `leaf=striped:stripes=8` parses like `leaf=[striped:stripes=8]`.
      out.set(key, SpecValue(parse(value)));
    } else {
      out.set(key, SpecValue(std::move(value)));
    }
  }
  return out;
}

std::string Spec::print() const {
  std::string out = name_;
  if (options_.empty()) return out;
  std::vector<std::pair<std::string, std::string>> rendered;
  rendered.reserve(options_.size());
  for (const auto& [k, v] : options_) rendered.emplace_back(k, v.print());
  std::sort(rendered.begin(), rendered.end());
  out += ':';
  for (std::size_t i = 0; i < rendered.size(); ++i) {
    if (i > 0) out += ',';
    out += rendered[i].first + "=" + rendered[i].second;
  }
  return out;
}

const SpecValue* Spec::find(std::string_view key) const {
  for (const auto& [k, v] : options_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Spec::get(std::string_view key, std::string_view def) const {
  const SpecValue* v = find(key);
  return v != nullptr ? v->print() : std::string(def);
}

std::uint64_t Spec::get_u64(std::string_view key, std::uint64_t def) const {
  const SpecValue* v = find(key);
  if (v == nullptr) return def;
  const std::string& s = v->scalar();  // throws on a nested value
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("spec option '" + std::string(key) +
                                "' is not an unsigned integer: '" + s + "'");
  }
  return out;
}

bool Spec::get_bool(std::string_view key, bool def) const {
  const SpecValue* v = find(key);
  if (v == nullptr) return def;
  const std::string& s = v->scalar();
  if (s == "0") return false;
  if (s == "1") return true;
  throw std::invalid_argument("spec option '" + std::string(key) +
                              "' must be 0 or 1, got '" + s + "'");
}

Spec Spec::get_spec(std::string_view key, std::string_view def) const {
  const SpecValue* v = find(key);
  if (v == nullptr) return parse(std::string(def));
  return v->as_spec();
}

void Spec::set(std::string key, SpecValue value) {
  if (key.empty()) {
    throw std::invalid_argument("empty option key in spec '" + name_ + "'");
  }
  // Characters the grammar assigns structural meaning would make print()
  // emit text that parse() reads differently (or rejects) — the round-trip
  // guarantee holds because they cannot enter a Spec in the first place.
  // parse() never produces them in keys/scalars; this guards programmatic
  // construction (SpecBuilder and direct set()).
  if (key.find_first_of("[],=:") != std::string::npos) {
    throw std::invalid_argument("option key '" + key +
                                "' contains a spec metacharacter ([],=:)");
  }
  if (!value.is_spec() &&
      value.scalar().find_first_of("[],:") != std::string::npos) {
    throw std::invalid_argument(
        "scalar value '" + value.scalar() + "' for option '" + key +
        "' contains a spec metacharacter ([],:) — wrap nested specs in a "
        "Spec value instead");
  }
  if (has(key)) {
    throw std::invalid_argument("duplicate spec option '" + key + "'");
  }
  options_.emplace_back(std::move(key), std::move(value));
}

}  // namespace renamelib::api
