#include "api/report.h"

#include "api/spec.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

// Stamped per-build by cmake/GitDescribe.cmake (git describe --always
// --dirty, regenerated on every build so incremental builds stay honest);
// the fallback covers builds outside CMake or a git checkout.
#ifdef RENAMELIB_HAVE_GIT_STAMP
#include "renamelib_git_describe.h"
#endif
#ifndef RENAMELIB_GIT_DESCRIBE
#define RENAMELIB_GIT_DESCRIBE "unknown"
#endif

namespace renamelib::api {

std::string BenchReport::build_git_describe() { return RENAMELIB_GIT_DESCRIBE; }

// ---------------------------------------------------------------- emission

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// %.17g round-trips every finite double: strtod(fmt(x)) == x, and
/// re-formatting the parsed value reproduces the same string — which is what
/// makes to_json(from_json(j)) byte-identical.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

/// Emitted specs are canonical (api::Spec print: sorted keys, normalized
/// brackets) so reports match under key reordering; non-spec labels (and
/// "") pass through verbatim. Canonical printing is idempotent, which keeps
/// to_json(from_json(j)) byte-identical.
std::string canonical_spec(const std::string& spec) {
  if (spec.empty()) return spec;
  try {
    return Spec::parse(spec).print();
  } catch (const std::invalid_argument&) {
    return spec;
  }
}

void append_latency(std::string& out, const stats::LatencySnapshot& lat,
                    const std::string& indent) {
  out += "{\n";
  const std::string in2 = indent + "  ";
  out += in2 + "\"count\": " + fmt_u64(lat.count()) + ",\n";
  out += in2 + "\"sum\": " + fmt_double(lat.sum()) + ",\n";
  out += in2 + "\"sum_sq\": " + fmt_double(lat.sum_sq()) + ",\n";
  out += in2 + "\"min\": " + fmt_u64(lat.min()) + ",\n";
  out += in2 + "\"max\": " + fmt_u64(lat.max()) + ",\n";
  out += in2 + "\"mean\": " + fmt_double(lat.mean()) + ",\n";
  out += in2 + "\"p50\": " + fmt_u64(lat.percentile(0.50)) + ",\n";
  out += in2 + "\"p90\": " + fmt_u64(lat.percentile(0.90)) + ",\n";
  out += in2 + "\"p99\": " + fmt_u64(lat.percentile(0.99)) + ",\n";
  out += in2 + "\"p999\": " + fmt_u64(lat.percentile(0.999)) + ",\n";
  out += in2 + "\"buckets\": [";
  const auto bars = lat.nonzero_buckets();
  for (std::size_t i = 0; i < bars.size(); ++i) {
    if (i > 0) out += ", ";
    out += "[" + fmt_u64(bars[i].lower) + ", " + fmt_u64(bars[i].upper) +
           ", " + fmt_u64(bars[i].count) + "]";
  }
  out += "]\n" + indent + "}";
}

}  // namespace

std::vector<std::pair<std::string, std::uint64_t>> report_events(
    const obs::EventSnapshot& events) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [site, count] : events.nonzero()) {
    out.emplace_back(obs::site_name(site), count);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string BenchReport::to_json() const {
  std::string out = "{\n";
  out += "  \"schema\": ";
  append_escaped(out, kSchema);
  out += ",\n  \"bench\": ";
  append_escaped(out, bench);
  out += ",\n  \"git_describe\": ";
  append_escaped(out, git_describe);
  out += ",\n  \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ReportRun& r = runs[i];
    out += (i > 0 ? ",\n    {\n" : "\n    {\n");
    out += "      \"name\": ";
    append_escaped(out, r.name);
    out += ",\n      \"spec\": ";
    append_escaped(out, canonical_spec(r.spec));
    out += ",\n      \"backend\": ";
    append_escaped(out, r.backend);
    out += ",\n      \"threads\": " + std::to_string(r.threads);
    out += ",\n      \"ops\": " + fmt_u64(r.ops);
    out += ",\n      \"ops_per_sec\": " + fmt_double(r.ops_per_sec);
    out += ",\n      \"repeats\": " + std::to_string(r.repeats);
    out += ",\n      \"cv\": " + fmt_double(r.cv);
    out += ",\n      \"unit\": ";
    append_escaped(out, r.unit);
    out += ",\n      \"latency\": ";
    append_latency(out, r.latency, "      ");
    // Emitted only when nonempty: event-less runs (and reports written
    // before the field existed) keep their exact old byte form.
    if (!r.events.empty()) {
      out += ",\n      \"events\": {";
      for (std::size_t e = 0; e < r.events.size(); ++e) {
        if (e > 0) out += ", ";
        append_escaped(out, r.events[e].first);
        out += ": " + fmt_u64(r.events[e].second);
      }
      out += "}";
    }
    out += "\n    }";
  }
  out += runs.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

// ----------------------------------------------------------------- parsing

namespace {

/// Minimal recursive-descent JSON value: just enough for the report schema
/// (objects, arrays, strings, numbers, booleans, null). Numbers keep their
/// raw token so integers round-trip exactly beyond 2^53.
struct JValue {
  enum Kind { kObject, kArray, kString, kNumber, kBool, kNull };
  Kind kind = kNull;
  std::vector<std::pair<std::string, JValue>> object;
  std::vector<JValue> array;
  std::string string;
  std::string number;  ///< raw token, e.g. "12", "-3.5e7"
  bool boolean = false;

  const JValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  JValue parse() {
    JValue v = value();
    skip_ws();
    if (p_ != end_) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::invalid_argument("bench report JSON: " + why);
  }

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  char peek() {
    skip_ws();
    if (p_ == end_) fail("unexpected end of input");
    return *p_;
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" + *p_ + "'");
    ++p_;
  }

  bool try_consume(char c) {
    if (p_ != end_ && peek() == c) {
      ++p_;
      return true;
    }
    return false;
  }

  JValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JValue v;
        v.kind = JValue::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': return boolean();
      case 'n': return null();
      default: return number();
    }
  }

  JValue object() {
    expect('{');
    JValue v;
    v.kind = JValue::kObject;
    if (try_consume('}')) return v;
    for (;;) {
      std::string key = (expect_quote(), string());
      expect(':');
      v.object.emplace_back(std::move(key), value());
      if (try_consume('}')) return v;
      expect(',');
    }
  }

  void expect_quote() {
    if (peek() != '"') fail("expected object key string");
  }

  JValue array() {
    expect('[');
    JValue v;
    v.kind = JValue::kArray;
    if (try_consume(']')) return v;
    for (;;) {
      v.array.push_back(value());
      if (try_consume(']')) return v;
      expect(',');
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (p_ == end_) fail("unterminated string");
      const char c = *p_++;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p_ == end_) fail("unterminated escape");
      const char e = *p_++;
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (end_ - p_ < 4) fail("truncated \\u escape");
          unsigned code = 0;
          const auto [ptr, ec] = std::from_chars(p_, p_ + 4, code, 16);
          if (ec != std::errc{} || ptr != p_ + 4) fail("bad \\u escape");
          p_ += 4;
          // Reports only emit \u for ASCII control characters; decode the
          // BMP range as UTF-8 so foreign files still parse.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JValue number() {
    skip_ws();
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                          *p_ == 'e' || *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      ++p_;
    }
    if (p_ == start) fail("expected a JSON value");
    JValue v;
    v.kind = JValue::kNumber;
    v.number.assign(start, p_);
    return v;
  }

  JValue boolean() {
    JValue v;
    v.kind = JValue::kBool;
    if (end_ - p_ >= 4 && std::string_view(p_, 4) == "true") {
      v.boolean = true;
      p_ += 4;
    } else if (end_ - p_ >= 5 && std::string_view(p_, 5) == "false") {
      v.boolean = false;
      p_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JValue null() {
    if (end_ - p_ >= 4 && std::string_view(p_, 4) == "null") {
      p_ += 4;
      JValue v;
      v.kind = JValue::kNull;
      return v;
    }
    fail("bad literal");
  }

  const char* p_;
  const char* end_;
};

[[noreturn]] void missing(const std::string& key) {
  throw std::invalid_argument("bench report JSON: missing or mistyped field '" +
                              key + "'");
}

const std::string& get_string(const JValue& obj, const std::string& key) {
  const JValue* v = obj.find(key);
  if (v == nullptr || v->kind != JValue::kString) missing(key);
  return v->string;
}

std::uint64_t get_u64(const JValue& obj, const std::string& key) {
  const JValue* v = obj.find(key);
  if (v == nullptr || v->kind != JValue::kNumber) missing(key);
  std::uint64_t out = 0;
  const auto& s = v->number;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument("bench report JSON: field '" + key +
                                "' is not an unsigned integer: " + s);
  }
  return out;
}

double get_double(const JValue& obj, const std::string& key) {
  const JValue* v = obj.find(key);
  if (v == nullptr || v->kind != JValue::kNumber) missing(key);
  try {
    std::size_t consumed = 0;
    const double out = std::stod(v->number, &consumed);
    // Partial parses ("1.2.3", "3e5e6") must not silently truncate.
    if (consumed != v->number.size()) throw std::invalid_argument(v->number);
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("bench report JSON: field '" + key +
                                "' is not a number: " + v->number);
  }
}

std::uint64_t u64_token(const JValue& v, const char* what) {
  if (v.kind != JValue::kNumber) {
    throw std::invalid_argument(std::string("bench report JSON: ") + what +
                                " must be a number");
  }
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(v.number.data(), v.number.data() + v.number.size(), out);
  if (ec != std::errc{} || ptr != v.number.data() + v.number.size()) {
    throw std::invalid_argument(std::string("bench report JSON: ") + what +
                                " is not an unsigned integer: " + v.number);
  }
  return out;
}

stats::LatencySnapshot parse_latency(const JValue& obj) {
  const JValue* lat = obj.find("latency");
  if (lat == nullptr || lat->kind != JValue::kObject) missing("latency");
  const JValue* buckets = lat->find("buckets");
  if (buckets == nullptr || buckets->kind != JValue::kArray) missing("buckets");
  std::vector<stats::LatencySnapshot::Bar> bars;
  for (const JValue& row : buckets->array) {
    if (row.kind != JValue::kArray || row.array.size() != 3) {
      throw std::invalid_argument(
          "bench report JSON: each bucket must be [lower, upper, count]");
    }
    bars.push_back(stats::LatencySnapshot::Bar{
        u64_token(row.array[0], "bucket lower"),
        u64_token(row.array[1], "bucket upper"),
        u64_token(row.array[2], "bucket count")});
  }
  return stats::LatencySnapshot::from_parts(
      get_u64(*lat, "count"), get_double(*lat, "sum"),
      get_double(*lat, "sum_sq"), get_u64(*lat, "min"), get_u64(*lat, "max"),
      bars);
}

}  // namespace

BenchReport BenchReport::from_json(const std::string& json) {
  const JValue root = JsonParser(json).parse();
  if (root.kind != JValue::kObject) {
    throw std::invalid_argument("bench report JSON: top level must be an object");
  }
  if (get_string(root, "schema") != kSchema) {
    throw std::invalid_argument("bench report JSON: schema '" +
                                get_string(root, "schema") + "' != '" +
                                kSchema + "'");
  }
  BenchReport report;
  report.bench = get_string(root, "bench");
  report.git_describe = get_string(root, "git_describe");
  const JValue* runs = root.find("runs");
  if (runs == nullptr || runs->kind != JValue::kArray) missing("runs");
  for (const JValue& r : runs->array) {
    if (r.kind != JValue::kObject) {
      throw std::invalid_argument("bench report JSON: runs[] entries must be objects");
    }
    ReportRun run;
    run.name = get_string(r, "name");
    run.spec = get_string(r, "spec");
    run.backend = get_string(r, "backend");
    run.threads = static_cast<int>(get_u64(r, "threads"));
    run.ops = get_u64(r, "ops");
    run.ops_per_sec = get_double(r, "ops_per_sec");
    // Median-of-N metadata postdates the schema's first reports; absent
    // fields parse as a single-repeat measurement.
    run.repeats = r.find("repeats") != nullptr
                      ? static_cast<int>(get_u64(r, "repeats"))
                      : 1;
    run.cv = r.find("cv") != nullptr ? get_double(r, "cv") : 0;
    run.unit = get_string(r, "unit");
    run.latency = parse_latency(r);
    // Optional per-site event counts; absent (pre-events reports, bus-off
    // runs) parses as empty. Key order is preserved as written, which keeps
    // to_json(from_json(j)) byte-identical for foreign orderings too.
    if (const JValue* ev = r.find("events"); ev != nullptr) {
      if (ev->kind != JValue::kObject) {
        throw std::invalid_argument(
            "bench report JSON: 'events' must be an object");
      }
      for (const auto& [site, count] : ev->object) {
        run.events.emplace_back(site,
                                u64_token(count, "event count"));
      }
    }
    report.runs.push_back(std::move(run));
  }
  return report;
}

void BenchReport::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  out << to_json();
  if (!out.flush()) throw std::runtime_error("write to '" + path + "' failed");
}

BenchReport BenchReport::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str());
}

}  // namespace renamelib::api
