/// \file
/// \brief ICounter adapters over the concrete shared objects.
///
/// Thin by design: each adapter forwards next() to the object's native
/// operation and declares its consistency level, so the registry, harness,
/// and conformance suite can treat the whole family uniformly. The sharded
/// family's adapters live in api/sharded_counters.h.
#pragma once

#include <atomic>
#include <cstdint>

#include "api/counter.h"
#include "counting/baselines.h"
#include "counting/bounded_fai.h"
#include "counting/unbounded_fai.h"
#include "countnet/counting_network.h"
#include "renaming/adaptive_strong.h"

namespace renamelib::api {

/// The m-valued linearizable fetch-and-increment (Sec. 8.2, Theorem 6).
class BoundedFaiCounter final : public ICounter {
 public:
  /// Wraps an m-valued bounded FAI; `options` selects comparator arbitration.
  explicit BoundedFaiCounter(
      std::uint64_t m, renaming::AdaptiveStrongRenaming::Options options = {})
      : fai_(m, options) {}

  std::uint64_t next(Ctx& ctx) override { return fai_.fetch_and_increment(ctx); }
  std::uint64_t capacity() const override { return fai_.m(); }
  Consistency consistency() const override { return Consistency::kLinearizable; }

  /// The native bounded fetch-and-increment object.
  counting::BoundedFetchAndIncrement& impl() { return fai_; }

 private:
  counting::BoundedFetchAndIncrement fai_;
};

/// The epoch-chained unbounded linearizable fetch-and-increment (Sec. 9).
class UnboundedFaiCounter final : public ICounter {
 public:
  /// Wraps the unbounded FAI; `options` selects comparator arbitration.
  explicit UnboundedFaiCounter(
      renaming::AdaptiveStrongRenaming::Options options = {})
      : fai_(options) {}

  std::uint64_t next(Ctx& ctx) override { return fai_.fetch_and_increment(ctx); }
  Consistency consistency() const override { return Consistency::kLinearizable; }

  /// The native unbounded fetch-and-increment object.
  counting::UnboundedFetchAndIncrement& impl() { return fai_; }

 private:
  counting::UnboundedFetchAndIncrement fai_;
};

/// One fetch-and-add register: the 1-step/op hardware reference point.
class AtomicFaiCounter final : public ICounter {
 public:
  std::uint64_t next(Ctx& ctx) override {
    return counter_.fetch_and_increment(ctx);
  }
  /// Ranged mint: one fetch&add of k yields the run {base, 1, k} — the
  /// cheapest possible batch, one crossing for any k.
  void next_range(Ctx& ctx, std::uint64_t k,
                  std::vector<ValueRange>& out) override {
    if (k == 0) return;
    out.push_back(ValueRange{counter_.fetch_and_add(ctx, k), 1, k});
  }
  Consistency consistency() const override { return Consistency::kLinearizable; }

 private:
  counting::AtomicCounter counter_;
};

/// A counting network [26] used as a counter: traverse + per-wire counter.
/// Quiescently consistent, not linearizable.
class CountingNetworkCounter final : public ICounter {
 public:
  /// Takes ownership of a constructed counting network.
  explicit CountingNetworkCounter(countnet::CountingNetwork net)
      : net_(std::move(net)) {}

  std::uint64_t next(Ctx& ctx) override {
    // Entry-wire choice is external input to the network (callers spray
    // round-robin), not protocol state — like a history recorder's clock it
    // is meta-level and charged zero steps.
    const std::size_t wire =
        spray_.fetch_add(1, std::memory_order_relaxed) % net_.width();
    return net_.next_value(ctx, wire);
  }
  Consistency consistency() const override { return Consistency::kQuiescent; }

  /// The native counting network.
  countnet::CountingNetwork& impl() { return net_; }

 private:
  countnet::CountingNetwork net_;
  std::atomic<std::uint64_t> spray_{0};
};

/// Rename-then-subtract: the Sec. 8 recipe without the doorway. Values are
/// exactly {0..T-1} per execution (adaptive tight renaming) but the object is
/// not linearizable — the Sec. 8.1 counterexample applies.
class NamingCounter final : public ICounter {
 public:
  /// Wraps a fresh adaptive strong renaming instance as a value dispenser.
  explicit NamingCounter(renaming::AdaptiveStrongRenaming::Options options = {})
      : renaming_(options) {}

  std::uint64_t next(Ctx& ctx) override {
    return renaming_.rename(ctx, ctx.mint_token()) - 1;
  }
  Consistency consistency() const override { return Consistency::kDense; }

 private:
  renaming::AdaptiveStrongRenaming renaming_;
};

}  // namespace renamelib::api
