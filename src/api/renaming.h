/// \file
/// \brief The unified renaming interface of the public API (the IRenaming
/// facet).
///
/// Every renaming-flavored shared object in renamelib — the paper's one-shot
/// adaptive strong renaming and its baselines, the renaming networks, and the
/// long-lived acquire/release extension (Sec. 9's "long-lived renaming [24]"
/// direction) — is usable through this one facet: acquire() hands the calling
/// operation a name, release() gives it back. For one-shot protocols a name
/// is permanent and release() is a no-op; long-lived protocols recycle
/// released names, which reusable() declares so harnesses know whether churn
/// scenarios make sense.
#pragma once

#include <cstdint>

#include "core/ctx.h"

namespace renamelib::api {

/// Abstract renaming object: acquire a unique name, optionally release it.
/// Implemented by the adapters in api/renamings.h; constructed from spec
/// strings by the Registry's renaming facet.
class IRenaming {
 public:
  virtual ~IRenaming() = default;

  /// Acquires a name (>= 1) for the calling operation. Names of concurrent
  /// holders are distinct; the registry entry's name_bound declares how
  /// tight the namespace is. Thread-safe; every shared step is charged to
  /// `ctx`.
  virtual std::uint64_t acquire(Ctx& ctx) = 0;

  /// Releases a name this process acquired. Long-lived protocols recycle it
  /// for later acquires; one-shot protocols treat names as permanent and
  /// ignore the call.
  virtual void release(Ctx& ctx, std::uint64_t name) = 0;

  /// True iff release() recycles names for later acquires (the long-lived
  /// family). One-shot protocols return false.
  virtual bool reusable() const = 0;

  /// Names currently held: acquired and not (effectively) released. For
  /// one-shot protocols this is the all-time acquire count. Quiescent
  /// diagnostic — call only when no operation is in flight.
  virtual std::uint64_t holders() const = 0;
};

}  // namespace renamelib::api
