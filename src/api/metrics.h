/// \file
/// \brief The unified metrics contract of the public API.
///
/// Every harness, bench, and test reports cost through this one struct, in
/// the paper's cost model (shared-memory operations plus one step per batch
/// of coin flips between consecutive shared operations — see core/ctx.h).
/// Per-class instrumented variants remain for algorithm-specific diagnostics
/// (probe counts, temp-name retries, ...); cross-implementation comparison
/// goes through Metrics only, so any two registered objects are measured in
/// exactly the same units.
#pragma once

#include <cstdint>

#include "core/ctx.h"

namespace renamelib::api {

/// Aggregated cost of a set of operations in the paper's cost model, plus —
/// for the hardware backend — wall-clock throughput.
struct Metrics {
  std::uint64_t ops = 0;             ///< completed operations
  std::uint64_t steps = 0;           ///< total steps, paper cost model
  std::uint64_t shared_steps = 0;    ///< total shared-memory operations
  std::uint64_t coin_flips = 0;      ///< total raw random draws
  std::uint64_t max_op_steps = 0;    ///< most expensive single operation
  std::uint64_t max_proc_steps = 0;  ///< most loaded process (total steps)
  /// Wall time of the run region (thread spawn to last join), hardware
  /// backend only; 0 on the simulated backend, whose serialized grants make
  /// wall time meaningless.
  double wall_seconds = 0;

  /// Average paper-model steps per completed operation (0 when ops == 0).
  double mean_op_steps() const {
    return ops == 0 ? 0.0
                    : static_cast<double>(steps) / static_cast<double>(ops);
  }

  /// Hardware wall-clock throughput across all threads (0 when wall time was
  /// not measured — i.e. on the simulated backend).
  double ops_per_sec() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(ops) / wall_seconds;
  }

  /// Combines two disjoint measurements (e.g. per-process partials). Wall
  /// times of concurrent partials overlap, so the maximum is kept.
  void merge(const Metrics& o) {
    ops += o.ops;
    steps += o.steps;
    shared_steps += o.shared_steps;
    coin_flips += o.coin_flips;
    if (o.max_op_steps > max_op_steps) max_op_steps = o.max_op_steps;
    if (o.max_proc_steps > max_proc_steps) max_proc_steps = o.max_proc_steps;
    if (o.wall_seconds > wall_seconds) wall_seconds = o.wall_seconds;
  }
};

/// Meters one operation: snapshots the Ctx counters at construction; commit()
/// charges the delta to a Metrics as a single operation.
class OpMeter {
 public:
  /// Snapshots `ctx`'s step/coin counters; the meter charges deltas from here.
  explicit OpMeter(const Ctx& ctx)
      : ctx_(ctx),
        steps_(ctx.steps()),
        shared_(ctx.shared_steps()),
        coins_(ctx.coin_flips()) {}

  /// Steps this operation has cost so far.
  std::uint64_t op_steps() const { return ctx_.steps() - steps_; }

  /// Charges everything since construction to `m` as one completed operation.
  void commit(Metrics& m) const {
    const std::uint64_t op_steps = ctx_.steps() - steps_;
    m.ops += 1;
    m.steps += op_steps;
    m.shared_steps += ctx_.shared_steps() - shared_;
    m.coin_flips += ctx_.coin_flips() - coins_;
    if (op_steps > m.max_op_steps) m.max_op_steps = op_steps;
  }

 private:
  const Ctx& ctx_;
  std::uint64_t steps_;
  std::uint64_t shared_;
  std::uint64_t coins_;
};

}  // namespace renamelib::api
