/// \file
/// \brief Machine-readable bench reports: the JSON contract every bench
/// binary emits behind `--json=FILE`.
///
/// The paper's performance claims only become a recorded trajectory if every
/// bench leaves a machine-readable artifact. A BenchReport is one binary's
/// worth of runs: each run names the experiment, the registry spec it
/// measured, the backend and thread count, throughput, and the full
/// tail-faithful latency recording (stats::LatencySnapshot — exact moments,
/// percentile table, sparse log-bucket histogram). `to_json`/`from_json`
/// round-trip losslessly, so tools/bench_compare.py can diff two report
/// files and CI can track regressions across commits.
///
/// Schema (kSchema = "renamelib.bench_report.v1"):
/// \verbatim
/// {
///   "schema": "renamelib.bench_report.v1",
///   "bench": "bench_counter",
///   "git_describe": "1b67c8d",
///   "runs": [
///     {
///       "name": "shootout", "spec": "striped:stripes=16",
///       "backend": "hardware", "threads": 8, "ops": 2048,
///       "ops_per_sec": 1.2e6, "repeats": 5, "cv": 0.03, "unit": "ns",
///       "latency": {
///         "count": 2048, "sum": ..., "sum_sq": ..., "min": ..., "max": ...,
///         "mean": ..., "p50": ..., "p90": ..., "p99": ..., "p999": ...,
///         "buckets": [[lower, upper, count], ...]
///       },
///       "events": { "cas_fail": 17, "elim_pair": 5 }
///     }
///   ]
/// }
/// \endverbatim
/// `unit` says what the latency values measure: "ns" (hardware wall clock)
/// or "steps" (paper cost model, simulated backend). `mean`/`p*` are derived
/// from `count`..`buckets` and ignored on parse. `repeats`/`cv` describe
/// median-of-N measurement (bench --repeat=N): the run's numbers are the
/// median repeat's, `cv` the across-repeat throughput coefficient of
/// variation. Both are optional on parse (defaults 1 / 0) so pre-repeat
/// reports stay readable. `events` is the run's obs::EventBus delta, keyed
/// by obs::site_name and carrying only nonzero counts; it is emitted only
/// when nonempty and optional on parse (default empty), so pre-events
/// reports — and runs recorded with the bus off — are byte-identical to the
/// old format.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/event_bus.h"
#include "stats/latency_recorder.h"

namespace renamelib::api {

/// One measured configuration inside a bench report.
struct ReportRun {
  std::string name;     ///< experiment/table label within the bench
  /// Registry spec measured ("" for non-registry runs). Emission
  /// canonicalizes through api::Spec (sorted keys, normalized brackets), so
  /// written reports carry one stable identifier per configuration and
  /// tools/bench_compare.py matches runs by it, not by `name`.
  std::string spec;
  std::string backend;  ///< "hardware", "simulated", or "analytic"
  int threads = 0;      ///< process/thread count of the scenario
  std::uint64_t ops = 0;       ///< completed operations
  double ops_per_sec = 0;      ///< wall-clock throughput (0 when unmeasured)
  /// How many repeats produced this run (bench --repeat=N). When > 1,
  /// `ops_per_sec` and `latency` come from the repeat with the *median*
  /// throughput — the run is one real measurement, not a synthetic average.
  int repeats = 1;
  /// Coefficient of variation (stddev/mean) of ops_per_sec across the
  /// repeats; 0 when repeats == 1 or throughput was unmeasured. Readers use
  /// it to judge how much of a diff is noise.
  double cv = 0;
  std::string unit = "ns";     ///< latency unit: "ns" or "steps"
  stats::LatencySnapshot latency;  ///< tail-faithful latency recording
  /// The run's per-site event counts (obs::EventBus delta), as (site_name,
  /// count) pairs sorted by name with zero-count sites omitted — the sparse,
  /// name-keyed form the JSON carries. Empty when the bus was off. Stored as
  /// strings rather than obs::Site so a report written by a newer binary
  /// (more sites) still round-trips through an older one.
  std::vector<std::pair<std::string, std::uint64_t>> events;
};

/// Converts a run's event-bus delta (api::Run::events) into ReportRun::events
/// form: nonzero sites only, named via obs::site_name, sorted by name.
std::vector<std::pair<std::string, std::uint64_t>> report_events(
    const obs::EventSnapshot& events);

/// A bench binary's machine-readable result file (see the schema above).
struct BenchReport {
  /// The schema identifier emitted and required on parse.
  static constexpr const char* kSchema = "renamelib.bench_report.v1";

  /// `git describe` of the build (baked in at configure time; "unknown"
  /// when built outside a git checkout).
  static std::string build_git_describe();

  std::string bench;         ///< bench binary name
  std::string git_describe = build_git_describe();
  std::vector<ReportRun> runs;

  /// Serializes the report (stable field order, round-trippable doubles).
  std::string to_json() const;
  /// Parses a report; throws std::invalid_argument on malformed JSON, a
  /// schema mismatch, or inconsistent latency buckets.
  static BenchReport from_json(const std::string& json);

  /// Writes to_json() to `path` (throws std::runtime_error on I/O failure).
  void write_file(const std::string& path) const;
  /// Reads and parses `path` (throws on I/O or parse failure).
  static BenchReport read_file(const std::string& path);
};

}  // namespace renamelib::api
