// ICounter adapters over the sharded family (src/sharded).
//
// Same shape as api/counters.h: forward next(), declare the consistency
// level, expose the native object via impl(). Both sharded counters hand out
// a dense value prefix only at quiescence — a delayed operation can publish a
// small value after later operations completed — so both declare
// Consistency::kQuiescent even when a diffracting tree's leaves are
// individually linearizable.
#pragma once

#include <cstdint>
#include <utility>

#include "api/counter.h"
#include "sharded/diffracting_tree.h"
#include "sharded/striped_counter.h"

namespace renamelib::api {

/// Cache-line-striped dispenser: spray-routed per-stripe fetch&add slots,
/// optionally pair-combining colliding operations through elimination.
class StripedCounterAdapter final : public ICounter {
 public:
  /// Builds the underlying StripedCounter with `options`.
  explicit StripedCounterAdapter(sharded::StripedCounter::Options options)
      : counter_(options) {}

  /// Forwards to StripedCounter::next() (dispenser mode).
  std::uint64_t next(Ctx& ctx) override { return counter_.next(ctx); }

  /// Ranged mint via StripedCounter::next_batch: min(k, stripes) + 1
  /// crossings for k values, dense prefix preserved.
  void next_range(Ctx& ctx, std::uint64_t k,
                  std::vector<ValueRange>& out) override {
    std::vector<sharded::StripedCounter::Run> batch;
    counter_.next_batch(ctx, k, batch);
    for (const auto& run : batch) {
      out.push_back(ValueRange{run.base, run.stride, run.count});
    }
  }

  /// Dense prefix at quiescence only; see the class comment.
  Consistency consistency() const override { return Consistency::kQuiescent; }

  /// The native object (statistic-mode increment()/read() live here).
  sharded::StripedCounter& impl() { return counter_; }

 private:
  sharded::StripedCounter counter_;
};

/// Diffracting-tree counter: prism/toggle balancer tree over composable
/// leaf sub-counters (any registry counter spec).
class DiffractingTreeCounterAdapter final : public ICounter {
 public:
  /// Builds a tree with `options`, constructing each leaf via `make_leaf`.
  DiffractingTreeCounterAdapter(
      sharded::DiffractingTreeCounter::Options options,
      const sharded::DiffractingTreeCounter::LeafFactory& make_leaf)
      : counter_(options, make_leaf) {}

  /// Forwards to DiffractingTreeCounter::next().
  std::uint64_t next(Ctx& ctx) override { return counter_.next(ctx); }

  /// Leaves' combined bound (kUnbounded if every leaf is unbounded).
  std::uint64_t capacity() const override { return counter_.capacity(); }

  /// Quiescently consistent regardless of leaf consistency; see file comment.
  Consistency consistency() const override { return Consistency::kQuiescent; }

  /// The native tree object.
  sharded::DiffractingTreeCounter& impl() { return counter_; }

 private:
  sharded::DiffractingTreeCounter counter_;
};

}  // namespace renamelib::api
