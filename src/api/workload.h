/// \file
/// \brief The unified workload harness: one scenario description, every
/// backend.
///
/// A Scenario says *how* to run (process count, ops per process, hardware
/// threads or the adversarial simulator, adversary strategy, seed); the
/// Workload runs any registered object — or any free-form body — under it and
/// reports the one Metrics contract. Benches sweep scenarios over
/// Registry::list(); tests assert object invariants on the collected values
/// and (optionally) Wing–Gong-checkable histories.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "api/counter.h"
#include "api/metrics.h"
#include "api/registry.h"
#include "renaming/renaming.h"
#include "sim/linearizability.h"

namespace renamelib::api {

/// Which execution substrate runs the scenario's processes.
enum class Backend {
  kHardware,   ///< real threads, wall-clock interleavings
  kSimulated,  ///< deterministic adversarial scheduler (sim/)
};

/// Adversary strategy for the simulated backend.
enum class Sched {
  kRandom,       ///< uniformly random enabled process each step
  kRoundRobin,   ///< fixed rotation over enabled processes
  kObstruction,  ///< runs one process solo as long as possible
};

/// Describes one run: who executes, how often, under which scheduler.
struct Scenario {
  int nproc = 4;                          ///< processes (threads) to run
  int ops_per_proc = 1;                   ///< operations per process
  Backend backend = Backend::kSimulated;  ///< execution substrate
  Sched sched = Sched::kRandom;           ///< adversary (simulated backend)
  std::uint64_t seed = 1;                 ///< RNG + adversary seed
  /// Fill Run::history with real-time operation intervals, checkable by
  /// sim::is_linearizable.
  bool record_history = false;
  /// Operation kind recorded by run_ops (the sequential specs in
  /// sim/linearizability.h match on it). run(ICounter&) records "fai" and
  /// run(IRenaming&) "rename" regardless.
  std::string history_kind = "op";
  /// Simulated backend: abort runaway executions after this many steps.
  std::uint64_t max_total_steps = 50'000'000;
};

/// One completed operation.
struct OpSample {
  int pid = 0;
  std::uint64_t value = 0;  ///< counter value / acquired name
  std::uint64_t steps = 0;  ///< paper-model steps this op cost
};

/// Outcome of running one object under one scenario.
struct Run {
  Metrics metrics;                      ///< aggregate cost, unified contract
  std::vector<OpSample> ops;            ///< completed ops, arbitrary order
  std::vector<sim::Operation> history;  ///< only when record_history
  std::vector<double> proc_steps;       ///< finished processes' total steps
  std::size_t finished_procs = 0;       ///< bodies that ran to completion

  /// All completed ops' values (convenience for invariant checks).
  std::vector<std::uint64_t> values() const;
  /// Per-op paper-model step counts (for stats::summarize).
  std::vector<double> op_steps() const;
  /// Mean of proc_steps.
  double mean_proc_steps() const;
};

/// Runs objects or free-form bodies under a Scenario on either backend.
class Workload {
 public:
  /// Captures the scenario; run*() calls share it.
  explicit Workload(Scenario scenario) : scenario_(scenario) {}

  /// The scenario this workload runs.
  const Scenario& scenario() const { return scenario_; }

  /// Each process performs ops_per_proc next() calls.
  Run run(ICounter& counter) const;

  /// Each process performs ops_per_proc rename() calls with dense initial
  /// ids (request r of process p uses id p*ops_per_proc + r + 1, so ids are
  /// exactly 1..nproc*ops_per_proc).
  Run run(renaming::IRenaming& obj) const;

  /// Generic harness: ops_per_proc invocations of `op` per process, each
  /// metered into the unified Metrics. `op` returns the operation's value.
  Run run_ops(const std::function<std::uint64_t(Ctx&)>& op) const;

  /// Free-form body, one per process; metered at process granularity only.
  Run run_body(const std::function<void(Ctx&)>& body) const;

  /// Convenience: construct the object from the global registry and run.
  static Run run_counter_spec(const std::string& spec, const Scenario& s);
  /// \copydoc run_counter_spec
  static Run run_renaming_spec(const std::string& spec, const Scenario& s);

 private:
  Run run_metered(const std::function<std::uint64_t(Ctx&)>& op,
                  const char* history_kind) const;
  void execute(const std::function<void(Ctx&)>& body, std::mutex& mu,
               Run& run) const;

  Scenario scenario_;
};

}  // namespace renamelib::api
