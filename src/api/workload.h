/// \file
/// \brief The unified workload harness: one scenario description, every
/// backend, every facet.
///
/// A Scenario says *how* to run (process count, ops per process, hardware
/// threads or the adversarial simulator, adversary strategy, crash plan,
/// seed); the Workload runs any registered object — counter, renaming, or
/// readable counter — or any free-form body under it and reports the one
/// Metrics contract. On the hardware backend the Run additionally carries
/// wall-clock throughput (Metrics::ops_per_sec) and a tail-faithful per-op
/// latency recording (Run::latency, a stats::LatencySnapshot).
/// Benches sweep scenarios over the Registry's facet tables; tests assert
/// object invariants on the collected values and (optionally)
/// Wing–Gong-checkable histories.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "api/counter.h"
#include "api/metrics.h"
#include "api/readable.h"
#include "api/registry.h"
#include "api/renaming.h"
#include "obs/event_bus.h"
#include "sim/linearizability.h"
#include "stats/latency_recorder.h"

namespace renamelib::api {

/// Which execution substrate runs the scenario's processes.
enum class Backend {
  kHardware,   ///< real threads, wall-clock interleavings
  kSimulated,  ///< deterministic adversarial scheduler (sim/)
  /// Forked OS processes over a POSIX shared-memory arena (src/proc). The
  /// object under test must be placement-constructed inside the arena
  /// (proc::ArenaScope); run_*_spec does this automatically. Telemetry is
  /// merged coordinator-free by 3-round all-to-all gossip, and crash plans
  /// SIGKILL real processes (see proc/proc_backend.h).
  kProc,
};

/// Adversary strategy for the simulated backend. Any strategy can
/// additionally inject crashes via Scenario::crashes (sim::CrashAdversary
/// wraps the chosen strategy).
enum class Sched {
  kRandom,       ///< uniformly random enabled process each step
  kRoundRobin,   ///< fixed rotation over enabled processes
  kObstruction,  ///< runs one process solo as long as possible
};

/// Arrival shaping between a process's consecutive operations. Thinking is
/// modeled as reads of a harness-owned scratch register, so on the simulated
/// backend every think step is a scheduling point the adversary can exploit
/// (pure local delays would be invisible to it) and on hardware it is a real
/// cache-coherent pause. Think steps are charged to the process totals but
/// not to any operation's metered cost.
enum class Arrival {
  kSteady,  ///< think before every operation
  kBursty,  ///< run a burst of back-to-back ops, then think once
};

/// Crash-injection plan layered over the Sched strategy (simulated and proc
/// backends — the hardware backend cannot kill a thread mid-protocol).
/// Victims and crash points are derived deterministically from
/// Scenario::seed: on the simulated backend each victim dies once its
/// shared-step count reaches a threshold drawn from [1, crash_step_max]; on
/// the proc backend the same derivation stream picks victims and the
/// threshold becomes a completed-*operation* count (folded into
/// [1, ops_per_proc]) at which the worker process is SIGKILLed for real.
/// Both model the paper's t < n crash failures.
struct CrashPlan {
  std::size_t max_crashes = 0;        ///< processes to crash; 0 disables
  std::uint64_t crash_step_max = 12;  ///< crash thresholds drawn from [1, this]

  /// True iff this plan injects any crashes.
  bool enabled() const { return max_crashes > 0; }
};

/// Describes one run: who executes, how often, under which scheduler.
struct Scenario {
  int nproc = 4;                          ///< processes (threads) to run
  int ops_per_proc = 1;                   ///< operations per process
  Backend backend = Backend::kSimulated;  ///< execution substrate
  Sched sched = Sched::kRandom;           ///< adversary (simulated backend)
  CrashPlan crashes;                      ///< crash injection (simulated only)
  std::uint64_t seed = 1;                 ///< RNG + adversary seed
  /// Fill Run::history with real-time operation intervals, checkable by
  /// sim::is_linearizable.
  bool record_history = false;
  /// Operation kind recorded by run_ops (the sequential specs in
  /// sim/linearizability.h match on it). run(ICounter&) records "fai",
  /// run(IRenaming&) "rename", and run(IReadableCounter&) "inc"/"read"
  /// regardless.
  std::string history_kind = "op";
  /// Keep per-op samples (Run::ops). Turn off for high-volume throughput
  /// runs: metrics and the latency recording stay exact while memory stays
  /// O(1) in the op count — validation then goes through object-side
  /// invariants (e.g. IRenaming::holders) instead of Run::values().
  bool keep_op_samples = true;
  /// Think-time/arrival shaping (workload realism knobs, used heavily by the
  /// generated scenarios in src/fuzz). 0 disables thinking entirely (the
  /// default — existing scenarios are unchanged). When > 0, a process draws
  /// think in [0, think_max] scratch-register reads before an operation
  /// (kSteady) or before each burst (kBursty; burst lengths drawn from
  /// [1, burst_max]).
  int think_max = 0;
  /// Arrival pattern; only meaningful when think_max > 0.
  Arrival arrival = Arrival::kSteady;
  /// kBursty: operations per burst are drawn from [1, burst_max].
  int burst_max = 4;
  /// Hot-key skew for the arrival draws. 0 (the default) keeps them
  /// uniform. When > 0, think lengths and burst lengths are drawn
  /// Zipf(zipf_s)-distributed over their ranges instead of uniformly —
  /// short pauses/bursts dominate with a heavy tail of long ones, the
  /// classic skewed-load shape. Drawn through Ctx::rng, so the draws stay
  /// deterministic per (seed, pid) and are charged as coin flips.
  double zipf_s = 0;
  /// Readable-counter mix: every read_period-th operation is a read() (3 =
  /// the historical 2:1 inc/read mix; 1 = reads only). Must be >= 1.
  int read_period = 3;
  /// Hardware backend: record one wall-clock latency sample every N ops
  /// (1 = every op, the default). For batch-amortized objects whose fast
  /// path is a few nanoseconds (the lease wrapper), the two clock reads per
  /// op dominate the operation itself; sampling keeps the recording
  /// tail-faithful at period granularity while the loop stays tight. 0
  /// disables latency recording entirely.
  int latency_sample_period = 1;
  /// Counter workloads (run(ICounter&)): values per ranged mint. 1 (the
  /// default) keeps the plain per-op next() path — existing scenarios are
  /// unchanged. When > 1, each process refills a private pending-run buffer
  /// via ICounter::next_range in chunks of min(batch, remaining ops) and
  /// serves subsequent operations from it — the amortized-publishing leg the
  /// combining front-end is built for. The refilling operation is charged
  /// the whole mint's cost, so per-op step/latency figures are amortized.
  int batch = 1;
  /// Simulated backend: abort runaway executions after this many steps.
  std::uint64_t max_total_steps = 50'000'000;
};

/// One completed operation.
struct OpSample {
  int pid = 0;
  std::uint64_t value = 0;    ///< counter value / acquired name / read result
  std::uint64_t steps = 0;    ///< paper-model steps this op cost
  std::string kind;           ///< operation kind ("fai", "rename", "inc", ...)
};

/// Outcome of running one object under one scenario.
struct Run {
  Metrics metrics;                      ///< aggregate cost, unified contract
  std::vector<OpSample> ops;            ///< completed ops, arbitrary order
  std::vector<sim::Operation> history;  ///< only when record_history
  std::vector<double> proc_steps;       ///< finished processes' total steps
  std::size_t finished_procs = 0;       ///< bodies that ran to completion
  std::size_t crashed_procs = 0;        ///< bodies killed by crash injection
  /// Proc backend: all-to-all gossip rounds until the survivors *observed*
  /// telemetry convergence — always <= 3 (the constant-convergence bound,
  /// enforced by RENAMELIB_ENSURE in every worker). 0 on other backends.
  std::size_t gossip_rounds = 0;
  /// Hardware backend: per-op wall-clock latency in nanoseconds, recorded
  /// into a lock-free per-thread stats::LatencyRecorder (log-bucketed, no
  /// tail loss, O(1) memory in the op count). Empty (count 0) on the
  /// simulated backend, whose serialized grants make wall time meaningless.
  stats::LatencySnapshot latency;
  /// Per-site event counts this run produced on the process-wide
  /// obs::EventBus (the delta across execute(), so concurrent runs on other
  /// threads would bleed in — benches and renamectl run one at a time). All
  /// zero unless the bus was enabled (obs::EventBus::set_enabled) before the
  /// run; the default-off bus keeps hot paths at one load + branch.
  obs::EventSnapshot events;

  /// All completed ops' values (convenience for invariant checks).
  std::vector<std::uint64_t> values() const;
  /// Completed ops' values restricted to one kind, in ops order (which
  /// preserves each process's program order).
  std::vector<std::uint64_t> values_of(std::string_view kind) const;
  /// Per-op paper-model step counts (for stats::summarize).
  std::vector<double> op_steps() const;
  /// Mean of proc_steps.
  double mean_proc_steps() const;
};

/// Runs objects or free-form bodies under a Scenario on either backend.
class Workload {
 public:
  /// Captures the scenario; run*() calls share it.
  explicit Workload(Scenario scenario) : scenario_(scenario) {}

  /// The scenario this workload runs.
  const Scenario& scenario() const { return scenario_; }

  /// Each process performs ops_per_proc next() calls (kind "fai").
  Run run(ICounter& counter) const;

  /// Each process performs ops_per_proc acquire() calls and holds every
  /// name (kind "rename") — the uniqueness/tightness scenario. Churn
  /// scenarios (acquire-release cycles) go through run_ops with a free-form
  /// body.
  Run run(IRenaming& obj) const;

  /// Mixed readable workload: every third operation (i % 3 == 2) is a
  /// read() (kind "read", value = the observed count), the rest are
  /// increment() (kind "inc", value 0). Recorded histories use the same
  /// kinds as sim::CounterSpec, so linearizable readables are
  /// Wing–Gong-checkable.
  Run run(IReadableCounter& counter) const;

  /// Generic harness: ops_per_proc invocations of `op` per process, each
  /// metered into the unified Metrics. `op` returns the operation's value.
  Run run_ops(const std::function<std::uint64_t(Ctx&)>& op) const;

  /// Free-form body, one per process; metered at process granularity only.
  Run run_body(const std::function<void(Ctx&)>& body) const;

  /// Convenience: construct the object from the global registry and run.
  static Run run_counter_spec(const std::string& spec, const Scenario& s);
  /// \copydoc run_counter_spec
  static Run run_renaming_spec(const std::string& spec, const Scenario& s);
  /// \copydoc run_counter_spec
  static Run run_readable_spec(const std::string& spec, const Scenario& s);
  /// Facet-dispatching form of the three above (the `renamectl run` path):
  /// constructs `spec` under `facet` and runs the facet's standard workload
  /// (counters: next(); renamings: hold-all acquires; readables: 2:1
  /// inc/read mix).
  static Run run_facet_spec(Facet facet, const std::string& spec,
                            const Scenario& s);

 private:
  /// Shared metered loop: `op(ctx, i)` runs the process's i-th operation,
  /// `kind_of(i)` names it (for OpSample::kind and recorded histories).
  Run run_metered(const std::function<std::uint64_t(Ctx&, int)>& op,
                  const std::function<const char*(int)>& kind_of) const;
  void execute(const std::function<void(Ctx&)>& body, std::mutex& mu,
               Run& run) const;

  Scenario scenario_;
};

}  // namespace renamelib::api
