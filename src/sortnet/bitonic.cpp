#include "sortnet/bitonic.h"

#include <bit>
#include <numeric>

#include "core/assert.h"

namespace renamelib::sortnet {

std::vector<DirectedComparator> bitonic_directed(std::size_t width) {
  RENAMELIB_ENSURE(width >= 1 && std::has_single_bit(width),
                   "bitonic width must be a power of two");
  std::vector<DirectedComparator> comps;
  const std::uint32_t n = static_cast<std::uint32_t>(width);
  for (std::uint32_t k = 2; k <= n; k *= 2) {
    for (std::uint32_t j = k / 2; j >= 1; j /= 2) {
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t l = i ^ j;
        if (l <= i) continue;
        if ((i & k) == 0) {
          comps.push_back(DirectedComparator{i, l});  // ascending
        } else {
          comps.push_back(DirectedComparator{l, i});  // descending
        }
      }
    }
  }
  return comps;
}

ComparatorNetwork standardize(std::size_t width,
                              const std::vector<DirectedComparator>& comps) {
  // Knuth's untangling: walk the sequence maintaining a wire relabeling pi.
  // Each comparator (first, second) acts on current labels; emit it in
  // min-up orientation, and if it was "reversed" under the relabeling, swap
  // the labels of its two wires from here on.
  ComparatorNetwork net(width);
  std::vector<std::uint32_t> pi(width);
  std::iota(pi.begin(), pi.end(), 0);

  for (const DirectedComparator& c : comps) {
    RENAMELIB_ENSURE(c.first < width && c.second < width && c.first != c.second,
                     "bad directed comparator");
    const std::uint32_t x = pi[c.first];   // wire receiving the min
    const std::uint32_t y = pi[c.second];  // wire receiving the max
    net.add(std::min(x, y), std::max(x, y));
    if (x > y) std::swap(pi[c.first], pi[c.second]);
  }
  return net;
}

ComparatorNetwork bitonic_sort(std::size_t width) {
  return standardize(width, bitonic_directed(width));
}

}  // namespace renamelib::sortnet
