#include "sortnet/pairwise.h"

#include <bit>

#include "core/assert.h"

namespace renamelib::sortnet {

ComparatorNetwork pairwise_sort(std::size_t width) {
  RENAMELIB_ENSURE(width >= 1 && std::has_single_bit(width),
                   "pairwise width must be a power of two");
  ComparatorNetwork net(width);
  const std::uint32_t n = static_cast<std::uint32_t>(width);
  if (n < 2) return net;

  // Parberry's pairwise network, iterative form. Phase 1: recursively sort
  // the pairs (distance a = 1, 2, 4, ...).
  std::uint32_t a = 1;
  while (a < n) {
    std::uint32_t b = a;
    std::uint32_t c = 0;
    while (b < n) {
      net.add(b - a, b);
      ++b;
      ++c;
      if (c >= a) {
        c = 0;
        b += a;
      }
    }
    a *= 2;
  }

  // Phase 2: merge with comparators at odd multiples d of the stride a
  // (d = 2e+1 pattern, a halving).
  a /= 4;
  std::uint32_t e = 1;
  while (a > 0) {
    std::uint32_t d = e;
    while (d > 0) {
      std::uint32_t b = (d + 1) * a;
      std::uint32_t c = 0;
      while (b < n) {
        net.add(b - d * a, b);
        ++b;
        ++c;
        if (c >= a) {
          c = 0;
          b += a;
        }
      }
      d /= 2;
    }
    a /= 2;
    e = 2 * e + 1;
  }
  return net;
}

}  // namespace renamelib::sortnet
