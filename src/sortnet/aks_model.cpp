#include "sortnet/aks_model.h"

#include <cmath>
#include <cstdint>

namespace renamelib::sortnet {

double AksModel::depth(std::size_t n) const {
  if (n < 2) return 0;
  return depth_constant * std::log2(static_cast<double>(n));
}

double batcher_depth(std::size_t n) {
  if (n < 2) return 0;
  const double t = std::ceil(std::log2(static_cast<double>(n)));
  return t * (t + 1) / 2;
}

std::size_t AksModel::batcher_crossover() const {
  // Smallest power of two 2^t with t(t+1)/2 > a*t, i.e. t > 2a - 1.
  const double t = std::ceil(2 * depth_constant - 1);
  if (t >= 63) return SIZE_MAX;  // astronomically beyond addressable widths
  return static_cast<std::size_t>(1) << static_cast<unsigned>(t);
}

}  // namespace renamelib::sortnet
