// Bitonic sorting networks (Batcher), with Knuth standardization.
//
// The textbook bitonic network contains "descending" comparators (max to the
// lower wire). A renaming network needs standard min-up form; Knuth (TAOCP
// 5.3.4 ex. 16) shows any sorting network converts to standard form with the
// same size and depth. We implement that transformation and expose only the
// standardized network.
#pragma once

#include <cstdint>
#include <vector>

#include "sortnet/comparator_network.h"

namespace renamelib::sortnet {

/// A possibly non-standard comparator: routes min to `first` — which may be
/// the higher wire (a "descending" comparator).
struct DirectedComparator {
  std::uint32_t first = 0;   ///< receives the min
  std::uint32_t second = 0;  ///< receives the max
};

/// Knuth standardization: rewires a directed comparator sequence into
/// min-up standard form with identical size and depth; the result sorts
/// ascending iff the input sorted ascending.
ComparatorNetwork standardize(std::size_t width,
                              const std::vector<DirectedComparator>& comps);

/// The textbook bitonic sequence for width a power of two (directed form).
std::vector<DirectedComparator> bitonic_directed(std::size_t width);

/// Standard-form bitonic sorting network; width must be a power of two.
ComparatorNetwork bitonic_sort(std::size_t width);

}  // namespace renamelib::sortnet
