// Analytic depth model for AKS sorting networks.
//
// The paper obtains its O(log k) optimal bound by instantiating renaming
// networks with AKS [15], but itself notes AKS is impractical (Sec. 1
// Discussion) and that any sorting network works. We therefore *substitute*
// Batcher networks for execution (c = 2 in Theorem 2) and use this model to
// report what the AKS-based construction (c = 1) would cost, so benches can
// print both the measured Batcher series and the projected AKS series.
//
// The model is d(n) = a * log2(n) with a configurable constant. Published
// constants for AKS-family networks are enormous (thousands); Paterson's
// simplification and later work brought them down, but they remain far above
// Batcher for any feasible n — which the bench tables make visible.
#pragma once

#include <cstddef>

namespace renamelib::sortnet {

struct AksModel {
  /// Depth multiplier. Paterson 1990-style constant by default; the true
  /// AKS constant is larger still.
  double depth_constant = 1830.0;

  /// Projected comparator depth for an n-input AKS network.
  double depth(std::size_t n) const;

  /// Projected traversal cost (comparators on one value's path) — equals the
  /// depth, as for any sorting network used as a renaming network.
  double traversal_cost(std::size_t n) const { return depth(n); }

  /// Crossover width below which Batcher's O(log^2 n) is cheaper than this
  /// AKS model (i.e. the practical regime).
  std::size_t batcher_crossover() const;
};

/// Batcher odd-even depth, exact closed form t(t+1)/2 for width 2^t.
double batcher_depth(std::size_t n);

}  // namespace renamelib::sortnet
