// Quadratic-size baseline networks (insertion/bubble), used for tiny widths
// and as test oracles — their correctness is obvious by construction.
#pragma once

#include "sortnet/comparator_network.h"

namespace renamelib::sortnet {

/// Insertion-sort network: O(width^2) comparators, depth 2*width - 3.
ComparatorNetwork insertion_sort(std::size_t width);

/// Odd-even transposition ("brick wall") network: width layers of
/// alternating adjacent comparators.
ComparatorNetwork odd_even_transposition(std::size_t width);

}  // namespace renamelib::sortnet
