#include "sortnet/odd_even_merge.h"

#include <bit>

#include "core/assert.h"

namespace renamelib::sortnet {

namespace {

std::uint64_t next_pow2(std::uint64_t v) {
  RENAMELIB_ENSURE(v >= 1, "width must be >= 1");
  return std::bit_ceil(v);
}

/// Calls fn(lo, hi) for every comparator of phase (p, k) over padded width n
/// in increasing lo order. Batcher's classic formulation.
template <typename Fn>
void phase_comparators(std::uint64_t n, std::uint64_t p, std::uint64_t k, Fn&& fn) {
  for (std::uint64_t j = k % p; j + k < n; j += 2 * k) {
    const std::uint64_t imax = std::min(k, n - j - k);
    for (std::uint64_t i = 0; i < imax; ++i) {
      if ((i + j) / (2 * p) == (i + j + k) / (2 * p)) {
        fn(i + j, i + j + k);
      }
    }
  }
}

}  // namespace

ComparatorNetwork odd_even_merge_sort(std::size_t width) {
  ComparatorNetwork net(width);
  if (width < 2) return net;
  const std::uint64_t n = next_pow2(width);
  for (std::uint64_t p = 1; p < n; p *= 2) {
    for (std::uint64_t k = p; k >= 1; k /= 2) {
      phase_comparators(n, p, k, [&](std::uint64_t lo, std::uint64_t hi) {
        if (hi < width) {
          net.add(static_cast<std::uint32_t>(lo), static_cast<std::uint32_t>(hi));
        }
      });
    }
  }
  return net;
}

LazyOddEven::LazyOddEven(std::uint64_t width)
    : width_(width), padded_(next_pow2(std::max<std::uint64_t>(width, 2))) {
  const std::uint32_t t = static_cast<std::uint32_t>(std::countr_zero(padded_));
  phase_count_ = t * (t + 1) / 2;
}

LazyOddEven::Phase LazyOddEven::phase_params(std::uint32_t phase) const {
  RENAMELIB_ENSURE(phase < phase_count_, "phase out of range");
  // Phases enumerate p = 1, 2, 4, ... and for each p, k = p, p/2, ..., 1.
  std::uint64_t p = 1;
  std::uint32_t count_for_p = 1;  // p = 2^a contributes a+1 phases
  std::uint32_t remaining = phase;
  while (remaining >= count_for_p) {
    remaining -= count_for_p;
    p *= 2;
    ++count_for_p;
  }
  // remaining-th k for this p: k = p >> remaining.
  return Phase{p, p >> remaining};
}

std::optional<LazyOddEven::Hit> LazyOddEven::hit(std::uint64_t wire,
                                                 std::uint32_t phase) const {
  if (wire >= width_) return std::nullopt;
  const auto [p, k] = phase_params(phase);
  const std::uint64_t n = padded_;

  // Is `x` the lo end of a comparator in phase (p, k)?
  auto lo_partner = [&](std::uint64_t x) -> std::optional<std::uint64_t> {
    const std::uint64_t jbase = k % p;
    if (x < jbase) return std::nullopt;
    const std::uint64_t s = (x - jbase) / (2 * k);
    const std::uint64_t j = jbase + 2 * k * s;
    const std::uint64_t i = x - j;
    if (i >= k) return std::nullopt;               // x falls in partner range
    if (j + k >= n) return std::nullopt;           // j loop bound
    if (i >= n - j - k) return std::nullopt;       // i loop bound
    if (x / (2 * p) != (x + k) / (2 * p)) return std::nullopt;
    return x + k;
  };

  if (auto partner = lo_partner(wire)) {
    if (*partner < width_) return Hit{*partner, true};
    return std::nullopt;  // comparator dropped by truncation
  }
  if (wire >= k) {
    if (auto partner = lo_partner(wire - k); partner && *partner == wire) {
      return Hit{wire - k, false};
    }
  }
  return std::nullopt;
}

}  // namespace renamelib::sortnet
