// Comparator networks in standard (min-up) form.
//
// A comparator network is an ordered sequence of comparators (lo, hi) with
// lo < hi; applying a comparator routes the smaller value to wire `lo`
// ("up", toward smaller indices) and the larger to `hi`. This is exactly the
// object the paper turns into a renaming network by replacing each
// comparator with a two-process test-and-set (Sec. 5).
//
// Wires are 0-based internally; the paper's 1-based port numbers appear only
// at the renaming API level.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/assert.h"

namespace renamelib::sortnet {

struct Comparator {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;

  friend bool operator==(const Comparator&, const Comparator&) = default;
};

class ComparatorNetwork {
 public:
  explicit ComparatorNetwork(std::size_t width);

  std::size_t width() const noexcept { return width_; }
  std::size_t size() const noexcept { return comps_.size(); }
  const std::vector<Comparator>& comparators() const noexcept { return comps_; }
  const Comparator& comparator(std::size_t i) const { return comps_[i]; }

  /// Appends a comparator. `a` and `b` may be given in either order but must
  /// be distinct and within the width.
  void add(std::uint32_t a, std::uint32_t b);

  /// Appends every comparator of `other`, with its wires shifted by
  /// `wire_offset`. This implements the paper's Fig. 2 composition, where
  /// the sandwich ABC is exactly shift(A, l) ++ B ++ shift(C, l).
  void append(const ComparatorNetwork& other, std::uint32_t wire_offset = 0);

  /// Applies the network to `values` in place (values.size() == width()).
  template <typename T>
  void apply(std::vector<T>& values) const {
    RENAMELIB_ENSURE(values.size() == width_, "value count != width");
    for (const Comparator& c : comps_) {
      if (values[c.hi] < values[c.lo]) std::swap(values[c.lo], values[c.hi]);
    }
  }

  /// Greedy ASAP layering: number of parallel stages (the network's depth,
  /// i.e. the paper's bound on renaming step complexity).
  std::size_t depth() const;

  /// Layer index of each comparator under ASAP scheduling.
  std::vector<std::size_t> layer_of_comparators() const;

  /// For each wire, the indices (into comparators()) of the comparators
  /// touching it, in network order. This is the routing table a renaming
  /// network uses: a process on wire w next competes at the first untraversed
  /// comparator in per_wire()[w].
  std::vector<std::vector<std::uint32_t>> per_wire() const;

  /// Number of comparators a value traverses when entering on `wire` with
  /// every comparator decided by value order of `values` (diagnostics).
  std::size_t trace_path_length(std::size_t wire) const;

  /// Knuth's standardization (TAOCP 5.3.4 ex. 16): converts any comparator
  /// sequence that may contain "reversed" intentions into min-up form while
  /// preserving the multiset of output sequences; used to import bitonic
  /// networks whose textbook form contains descending comparators.
  /// (Implemented in bitonic.cpp where it is needed.)

  /// GraphViz rendering for the examples/visualizer.
  std::string to_dot() const;

 private:
  std::size_t width_;
  std::vector<Comparator> comps_;
};

}  // namespace renamelib::sortnet
