#include "sortnet/insertion.h"

namespace renamelib::sortnet {

ComparatorNetwork insertion_sort(std::size_t width) {
  ComparatorNetwork net(width);
  for (std::uint32_t i = 1; i < width; ++i) {
    for (std::uint32_t j = i; j >= 1; --j) {
      net.add(j - 1, j);
    }
  }
  return net;
}

ComparatorNetwork odd_even_transposition(std::size_t width) {
  ComparatorNetwork net(width);
  for (std::size_t round = 0; round < width; ++round) {
    for (std::uint32_t i = static_cast<std::uint32_t>(round % 2); i + 1 < width;
         i += 2) {
      net.add(i, i + 1);
    }
  }
  return net;
}

}  // namespace renamelib::sortnet
