#include "sortnet/verify.h"

#include <algorithm>
#include <vector>

#include "core/assert.h"

namespace renamelib::sortnet {

namespace {

bool sorts_mask(const ComparatorNetwork& net, std::uint64_t mask) {
  std::vector<std::uint8_t> v(net.width());
  for (std::size_t i = 0; i < net.width(); ++i) v[i] = (mask >> i) & 1;
  net.apply(v);
  return std::is_sorted(v.begin(), v.end());
}

}  // namespace

bool is_sorting_network_exhaustive(const ComparatorNetwork& net) {
  RENAMELIB_ENSURE(net.width() <= 22, "exhaustive check is 2^width; width too big");
  const std::uint64_t limit = 1ULL << net.width();
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    if (!sorts_mask(net, mask)) return false;
  }
  return true;
}

std::uint64_t find_unsorted_witness(const ComparatorNetwork& net) {
  RENAMELIB_ENSURE(net.width() <= 22, "witness search is 2^width; width too big");
  const std::uint64_t limit = 1ULL << net.width();
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    if (!sorts_mask(net, mask)) return mask;
  }
  return UINT64_MAX;
}

bool is_sorting_network_randomized(const ComparatorNetwork& net,
                                   std::size_t trials, std::uint64_t seed) {
  const std::size_t w = net.width();
  std::vector<std::uint8_t> v(w);

  // Threshold vectors: exactly t ones placed at the top wires (worst case for
  // truncation bugs), plus t ones at the bottom wires.
  for (std::size_t t = 0; t <= w; ++t) {
    std::fill(v.begin(), v.end(), 0);
    for (std::size_t i = 0; i < t; ++i) v[i] = 1;
    auto u = v;
    net.apply(u);
    if (!std::is_sorted(u.begin(), u.end())) return false;
    std::fill(v.begin(), v.end(), 0);
    for (std::size_t i = 0; i < t; ++i) v[w - 1 - i] = 1;
    u = v;
    net.apply(u);
    if (!std::is_sorted(u.begin(), u.end())) return false;
  }

  Rng rng(seed);
  for (std::size_t trial = 0; trial < trials; ++trial) {
    for (std::size_t i = 0; i < w; ++i) v[i] = rng.coin() ? 1 : 0;
    auto u = v;
    net.apply(u);
    if (!std::is_sorted(u.begin(), u.end())) return false;
  }
  return true;
}

}  // namespace renamelib::sortnet
