// Sorting-network verification via the Zero-One Principle (Knuth): a
// comparator network sorts every input iff it sorts every 0-1 input. The
// paper's Lemma 2 proof is exactly a zero-one argument, and these checkers
// are the test oracle for every network we construct.
#pragma once

#include <cstdint>

#include "core/rng.h"
#include "sortnet/comparator_network.h"

namespace renamelib::sortnet {

/// Exhaustive zero-one check: 2^width applications. Practical for width <= ~22.
bool is_sorting_network_exhaustive(const ComparatorNetwork& net);

/// Randomized zero-one check over `trials` random 0-1 vectors plus all
/// "threshold" vectors (sorted-descending prefixes of ones), which catch
/// off-by-one truncation errors. A false return is definitive; true means
/// "no counterexample found".
bool is_sorting_network_randomized(const ComparatorNetwork& net,
                                   std::size_t trials, std::uint64_t seed);

/// Returns a failing 0-1 input if one exists within the exhaustive search,
/// encoded as a bitmask, or UINT64_MAX if none (width must be <= 63).
std::uint64_t find_unsorted_witness(const ComparatorNetwork& net);

}  // namespace renamelib::sortnet
