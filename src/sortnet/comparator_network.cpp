#include "sortnet/comparator_network.h"

#include <algorithm>
#include <sstream>

namespace renamelib::sortnet {

ComparatorNetwork::ComparatorNetwork(std::size_t width) : width_(width) {
  RENAMELIB_ENSURE(width >= 1, "network width must be >= 1");
}

void ComparatorNetwork::add(std::uint32_t a, std::uint32_t b) {
  RENAMELIB_ENSURE(a != b, "comparator wires must differ");
  RENAMELIB_ENSURE(a < width_ && b < width_, "comparator wire out of range");
  comps_.push_back(Comparator{std::min(a, b), std::max(a, b)});
}

void ComparatorNetwork::append(const ComparatorNetwork& other,
                               std::uint32_t wire_offset) {
  RENAMELIB_ENSURE(wire_offset + other.width() <= width_,
                   "appended network does not fit");
  comps_.reserve(comps_.size() + other.size());
  for (const Comparator& c : other.comps_) {
    comps_.push_back(Comparator{c.lo + wire_offset, c.hi + wire_offset});
  }
}

std::size_t ComparatorNetwork::depth() const {
  std::vector<std::size_t> wire_depth(width_, 0);
  std::size_t depth = 0;
  for (const Comparator& c : comps_) {
    const std::size_t d = std::max(wire_depth[c.lo], wire_depth[c.hi]) + 1;
    wire_depth[c.lo] = wire_depth[c.hi] = d;
    depth = std::max(depth, d);
  }
  return depth;
}

std::vector<std::size_t> ComparatorNetwork::layer_of_comparators() const {
  std::vector<std::size_t> wire_depth(width_, 0);
  std::vector<std::size_t> layers;
  layers.reserve(comps_.size());
  for (const Comparator& c : comps_) {
    const std::size_t d = std::max(wire_depth[c.lo], wire_depth[c.hi]) + 1;
    wire_depth[c.lo] = wire_depth[c.hi] = d;
    layers.push_back(d - 1);
  }
  return layers;
}

std::vector<std::vector<std::uint32_t>> ComparatorNetwork::per_wire() const {
  std::vector<std::vector<std::uint32_t>> out(width_);
  for (std::uint32_t i = 0; i < comps_.size(); ++i) {
    out[comps_[i].lo].push_back(i);
    out[comps_[i].hi].push_back(i);
  }
  return out;
}

std::size_t ComparatorNetwork::trace_path_length(std::size_t wire) const {
  RENAMELIB_ENSURE(wire < width_, "wire out of range");
  std::size_t hits = 0;
  for (const Comparator& c : comps_) {
    if (c.lo == wire || c.hi == wire) ++hits;
  }
  return hits;
}

std::string ComparatorNetwork::to_dot() const {
  std::ostringstream os;
  os << "digraph sortnet {\n  rankdir=LR;\n";
  const auto layers = layer_of_comparators();
  for (std::size_t i = 0; i < comps_.size(); ++i) {
    os << "  c" << i << " [shape=point label=\"\"];\n";
    os << "  // layer " << layers[i] << ": wires " << comps_[i].lo << " -- "
       << comps_[i].hi << "\n";
  }
  // Chain comparators per wire to show the routing order.
  auto wires = per_wire();
  for (std::size_t w = 0; w < wires.size(); ++w) {
    os << "  in" << w << " [shape=plaintext label=\"w" << w << "\"];\n";
    std::string prev = "in" + std::to_string(w);
    for (std::uint32_t ci : wires[w]) {
      os << "  " << prev << " -> c" << ci << ";\n";
      prev = "c" + std::to_string(ci);
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace renamelib::sortnet
