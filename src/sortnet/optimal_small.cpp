#include "sortnet/optimal_small.h"

#include <initializer_list>

#include "core/assert.h"

namespace renamelib::sortnet {

namespace {

ComparatorNetwork build(std::size_t width,
                        std::initializer_list<std::pair<int, int>> comps) {
  ComparatorNetwork net(width);
  for (const auto& [a, b] : comps) {
    net.add(static_cast<std::uint32_t>(a), static_cast<std::uint32_t>(b));
  }
  return net;
}

}  // namespace

ComparatorNetwork optimal_small_sort(std::size_t width) {
  switch (width) {
    case 1:
      return ComparatorNetwork(1);
    case 2:
      return build(2, {{0, 1}});
    case 3:  // size 3, depth 3
      return build(3, {{0, 2}, {0, 1}, {1, 2}});
    case 4:  // size 5, depth 3
      return build(4, {{0, 2}, {1, 3}, {0, 1}, {2, 3}, {1, 2}});
    case 5:  // size 9, depth 5
      return build(5, {{0, 3}, {1, 4}, {0, 2}, {1, 3}, {0, 1}, {2, 4}, {1, 2},
                       {3, 4}, {2, 3}});
    case 6:  // size 12, depth 5
      return build(6, {{0, 5}, {1, 3}, {2, 4}, {1, 2}, {3, 4}, {0, 3}, {2, 5},
                       {0, 1}, {2, 3}, {4, 5}, {1, 2}, {3, 4}});
    case 7:  // size 16, depth 6
      return build(7, {{0, 6}, {2, 3}, {4, 5}, {0, 2}, {1, 4}, {3, 6}, {0, 1},
                       {2, 5}, {3, 4}, {1, 2}, {4, 6}, {2, 3}, {4, 5}, {1, 2},
                       {3, 4}, {5, 6}});
    case 8:  // Batcher's size-19, depth-6 network (size-optimal)
      return build(8, {{0, 2}, {1, 3}, {4, 6}, {5, 7}, {0, 4}, {1, 5}, {2, 6},
                       {3, 7}, {0, 1}, {2, 3}, {4, 5}, {6, 7}, {2, 4}, {3, 5},
                       {1, 4}, {3, 6}, {1, 2}, {3, 4}, {5, 6}});
    case 9:  // size 25, depth 7 (best known)
      return build(9, {{0, 3}, {1, 7}, {2, 5}, {4, 8}, {0, 7}, {2, 4}, {3, 8},
                       {5, 6}, {0, 2}, {1, 3}, {4, 5}, {7, 8}, {1, 4}, {3, 6},
                       {5, 7}, {0, 1}, {2, 4}, {3, 5}, {6, 8}, {2, 3}, {4, 5},
                       {6, 7}, {1, 2}, {3, 4}, {5, 6}});
    case 10:  // size 29, depth 8 (best known size)
      return build(10, {{0, 8}, {1, 9}, {2, 7}, {3, 5}, {4, 6}, {0, 2}, {1, 4},
                        {5, 8}, {7, 9}, {0, 3}, {2, 4}, {5, 7}, {6, 9}, {0, 1},
                        {3, 6}, {8, 9}, {1, 5}, {2, 3}, {4, 8}, {6, 7}, {1, 2},
                        {3, 5}, {4, 6}, {7, 8}, {2, 3}, {4, 5}, {6, 7}, {3, 4},
                        {5, 6}});
    case 11:  // size 35 (best known)
      return build(11, {{0, 9}, {1, 6},  {2, 4},  {3, 7},  {5, 8},  {0, 1},
                        {3, 5}, {4, 10}, {6, 9},  {7, 8},  {1, 3},  {2, 5},
                        {4, 7}, {8, 10}, {0, 4},  {1, 2},  {3, 7},  {5, 9},
                        {6, 8}, {0, 1},  {2, 6},  {4, 5},  {7, 8},  {9, 10},
                        {2, 4}, {3, 6},  {5, 7},  {8, 9},  {1, 2},  {3, 4},
                        {5, 6}, {7, 8},  {2, 3},  {4, 5},  {6, 7}});
    case 12:  // size 39 (best known)
      return build(12, {{0, 8},  {1, 7},  {2, 6},  {3, 11}, {4, 10}, {5, 9},
                        {0, 1},  {2, 5},  {3, 4},  {6, 9},  {7, 8},  {10, 11},
                        {0, 2},  {1, 6},  {5, 10}, {9, 11}, {0, 3},  {1, 2},
                        {4, 6},  {5, 7},  {8, 11}, {9, 10}, {1, 4},  {3, 5},
                        {6, 8},  {7, 10}, {1, 3},  {2, 5},  {6, 9},  {8, 10},
                        {2, 3},  {4, 5},  {6, 7},  {8, 9},  {4, 6},  {5, 7},
                        {3, 4},  {5, 6},  {7, 8}});
    default:
      RENAMELIB_ENSURE(false, "optimal_small_sort supports widths 1..12");
  }
}

std::size_t optimal_small_depth(std::size_t width) {
  switch (width) {
    case 1:
      return 0;
    case 2:
      return 1;
    case 3:
    case 4:
      return 3;
    case 5:
    case 6:
      return 5;
    case 7:
    case 8:
      return 6;
    case 9:
    case 10:
      return optimal_small_sort(width).depth();
    case 11:
    case 12:
      return optimal_small_sort(width).depth();
    default:
      RENAMELIB_ENSURE(false, "optimal_small_depth supports widths 1..12");
  }
}

}  // namespace renamelib::sortnet
