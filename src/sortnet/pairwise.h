// Pairwise sorting network (Parberry 1992) — a third constructible base with
// the same O(log^2 n) depth as Batcher's networks but a different structure
// (sort pairs first, then merge the "winner"/"loser" subsequences). Useful
// as an ablation base for renaming networks: same asymptotics, different
// constants and wire locality.
#pragma once

#include "sortnet/comparator_network.h"

namespace renamelib::sortnet {

/// Pairwise sorting network; width must be a power of two.
ComparatorNetwork pairwise_sort(std::size_t width);

}  // namespace renamelib::sortnet
