// Depth- or size-optimal sorting networks for small widths.
//
// For widths up to 12 the best known (and for most widths proven optimal)
// networks beat the generic constructions; a renaming network built on them
// gives the cheapest possible arbitration for small namespaces, and they
// serve as independent oracles in tests. Sources: Knuth TAOCP vol. 3
// (n <= 8 classics) and the catalog of best known networks (Codish et al.).
#pragma once

#include "sortnet/comparator_network.h"

namespace renamelib::sortnet {

/// Best known sorting network for `width` in [1, 12].
ComparatorNetwork optimal_small_sort(std::size_t width);

/// Best known depth for widths 1..12 (for tests/benches).
std::size_t optimal_small_depth(std::size_t width);

}  // namespace renamelib::sortnet
