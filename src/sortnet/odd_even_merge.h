// Batcher odd-even mergesort networks, materialized and lazy.
//
// Batcher's network is the paper's recommended *constructible* base
// (Sec. 1 Discussion: using constructible networks instead of AKS "trades
// constructibility for a logarithmic increase in running time", i.e. c = 2
// in Theorem 2). Its comparators are already in standard min-up form.
//
// Widths need not be powers of two: the network is generated for the next
// power of two and comparators touching wires >= width are dropped. Dropped
// comparators would only ever see the implicit +inf padding values, which
// never move up, so the truncated network still sorts.
//
// The lazy interface answers "which comparator touches wire w in phase t?"
// in O(1) without materializing anything. This is what lets the adaptive
// renaming network of Sec. 6 span an effectively unbounded namespace: a
// process traverses its own path through an astronomically wide network,
// materializing only the test-and-set objects it actually meets.
#pragma once

#include <cstdint>
#include <optional>

#include "sortnet/comparator_network.h"

namespace renamelib::sortnet {

/// Materializes the Batcher odd-even mergesort network for `width` wires.
ComparatorNetwork odd_even_merge_sort(std::size_t width);

/// Lazy view of the same network (identical comparators and phase order —
/// tested against the materialized generator).
class LazyOddEven {
 public:
  explicit LazyOddEven(std::uint64_t width);

  std::uint64_t width() const noexcept { return width_; }

  /// Number of phases (parallel layers); comparators within a phase are
  /// wire-disjoint. Equals t(t+1)/2 for padded width 2^t.
  std::uint32_t phase_count() const noexcept { return phase_count_; }

  /// The comparator touching `wire` in phase `phase`, if any.
  struct Hit {
    std::uint64_t partner = 0;  ///< the other wire of the comparator
    bool is_lo = false;         ///< true iff `wire` is the comparator's lo end
  };
  std::optional<Hit> hit(std::uint64_t wire, std::uint32_t phase) const;

  /// Phase parameters (Batcher's p and k) for a phase index.
  struct Phase {
    std::uint64_t p = 0;
    std::uint64_t k = 0;
  };
  Phase phase_params(std::uint32_t phase) const;

 private:
  std::uint64_t width_;
  std::uint64_t padded_;  ///< next power of two >= width_
  std::uint32_t phase_count_;
};

}  // namespace renamelib::sortnet
