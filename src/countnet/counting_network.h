// Counting networks (Aspnes, Herlihy, Shavit [26]) — the sibling object the
// paper's related-work section contrasts with renaming networks (Sec. 3):
// same wiring as a sorting/balancing network, but comparators are replaced
// by *balancers* (toggle bits) that route an unbounded stream of tokens
// alternately up/down, balancing the counts on the output wires.
//
// The paper notes (citing Attiya et al. [27] / Aspnes et al. [26]) that any
// sorting network used as a counting network with at most one token per
// input wire behaves exactly like our non-adaptive renaming use in Sec. 5.
// This module makes the connection executable:
//   * BitonicCountingNetwork — the classic width-2^k bitonic counting
//     network with the step property,
//   * a sorting-network-as-counting-network adapter used by tests to verify
//     the [27] observation against our renaming networks.
#pragma once

#include <cstdint>
#include <memory>

#include "core/register.h"
#include "sortnet/comparator_network.h"

namespace renamelib::countnet {

/// A balancer: tokens leave alternately on the top (0) and bottom (1) port.
/// fetch_or-free implementation: an atomic toggle via fetch_add parity.
class Balancer {
 public:
  /// Passes one token; returns the output port (0 = top, 1 = bottom).
  int traverse(Ctx& ctx) {
    return static_cast<int>(toggle_.fetch_add(ctx, 1) & 1);
  }

  /// Tokens seen so far (quiescent).
  std::uint64_t tokens() const { return toggle_.peek(); }

 private:
  Register<std::uint64_t> toggle_{0};
};

/// A counting network over an arbitrary balancing-network wiring (we reuse
/// ComparatorNetwork wirings: comparator (lo, hi) = balancer between those
/// wires; token on lo enters "top", token on hi enters "bottom" — for
/// balancers entry side is irrelevant).
class CountingNetwork {
 public:
  /// `wiring` must be a balancing network with the step property for the
  /// intended use; bitonic() builds the classic one.
  explicit CountingNetwork(sortnet::ComparatorNetwork wiring);

  /// The classic bitonic counting network of the given width (power of 2).
  static CountingNetwork bitonic(std::size_t width);

  std::size_t width() const noexcept { return wiring_.width(); }

  /// Shepherds one token from input wire `wire` (0-based; callers typically
  /// spray tokens across wires round-robin) to an output wire, toggling the
  /// balancers on the way. Returns the output wire.
  std::size_t traverse(Ctx& ctx, std::size_t wire);

  /// Takes the next counter value: traverse + per-wire local counter, the
  /// standard "counting" use (value = wire + width * visits).
  std::uint64_t next_value(Ctx& ctx, std::size_t enter_wire);

  /// The quiescent read side: collects the per-wire exit counters through
  /// ctx-charged reads. Exact once no token is in flight (every traverse
  /// has performed its exit fetch_add); monotone across non-overlapping
  /// reads (exit counters only grow, and a later collect reads every wire
  /// after an earlier one finished).
  std::uint64_t read_count(Ctx& ctx) const;

  /// Quiescent check of the step property: output-wire token counts must
  /// differ by at most one, with excess on lower wires.
  bool has_step_property() const;

  /// Tokens that exited on each output wire (quiescent).
  std::vector<std::uint64_t> output_counts() const;

 private:
  sortnet::ComparatorNetwork wiring_;
  std::vector<std::vector<std::uint32_t>> per_wire_;
  std::unique_ptr<Balancer[]> balancers_;
  std::unique_ptr<Register<std::uint64_t>[]> exit_counts_;
};

}  // namespace renamelib::countnet
