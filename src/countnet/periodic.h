// The periodic counting network (Aspnes–Herlihy–Shavit [26]): log w
// identical Block[w] stages. Same O(log^2 w) depth as the bitonic network
// but a uniform, pipelinable structure; included for completeness of the
// counting-network substrate the paper's related work discusses.
#pragma once

#include "countnet/counting_network.h"

namespace renamelib::countnet {

/// Wiring of one Block[width] (width a power of two).
sortnet::ComparatorNetwork periodic_block(std::size_t width);

/// The full periodic counting network: log2(width) blocks in sequence.
CountingNetwork periodic_counting_network(std::size_t width);

}  // namespace renamelib::countnet
