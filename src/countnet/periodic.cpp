#include "countnet/periodic.h"

#include <bit>

#include "core/assert.h"

namespace renamelib::countnet {

namespace {

/// Block[w] on an explicit wire subset: split into even/odd-indexed wires
/// (the "untangled" AHS form), recurse, then a final layer of balancers
/// between neighbors 2i and 2i+1.
void build_block(sortnet::ComparatorNetwork& net,
                 const std::vector<std::uint32_t>& wires) {
  const std::size_t w = wires.size();
  if (w <= 1) return;
  if (w == 2) {
    net.add(wires[0], wires[1]);
    return;
  }
  std::vector<std::uint32_t> even, odd;
  for (std::size_t i = 0; i < w; ++i) {
    ((i % 2 == 0) ? even : odd).push_back(wires[i]);
  }
  build_block(net, even);
  build_block(net, odd);
  for (std::size_t i = 0; i + 1 < w; i += 2) {
    net.add(wires[i], wires[i + 1]);
  }
}

}  // namespace

sortnet::ComparatorNetwork periodic_block(std::size_t width) {
  RENAMELIB_ENSURE(width >= 1 && std::has_single_bit(width),
                   "periodic width must be a power of two");
  sortnet::ComparatorNetwork net(width);
  std::vector<std::uint32_t> wires(width);
  for (std::size_t i = 0; i < width; ++i) wires[i] = static_cast<std::uint32_t>(i);
  build_block(net, wires);
  return net;
}

CountingNetwork periodic_counting_network(std::size_t width) {
  RENAMELIB_ENSURE(width >= 1 && std::has_single_bit(width),
                   "periodic width must be a power of two");
  sortnet::ComparatorNetwork net(width);
  const auto block = periodic_block(width);
  std::size_t stages = 0;
  for (std::size_t w = width; w > 1; w /= 2) ++stages;
  for (std::size_t s = 0; s < std::max<std::size_t>(stages, 1); ++s) {
    net.append(block, 0);
  }
  return CountingNetwork(std::move(net));
}

}  // namespace renamelib::countnet
