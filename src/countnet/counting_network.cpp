#include "countnet/counting_network.h"

#include <algorithm>
#include <bit>

#include "core/assert.h"
#include "obs/emit.h"
#include "sortnet/odd_even_merge.h"

namespace renamelib::countnet {

namespace {

/// Recursive AHS bitonic construction over explicit wire subsets. Appends
/// balancer positions to `net` and returns the output wire order (step
/// property: excess tokens on earlier wires of this order).
class BitonicBuilder {
 public:
  explicit BitonicBuilder(sortnet::ComparatorNetwork& net) : net_(net) {}

  std::vector<std::uint32_t> bitonic(std::vector<std::uint32_t> wires) {
    RENAMELIB_ENSURE(std::has_single_bit(wires.size()), "width must be 2^k");
    if (wires.size() == 1) return wires;
    const std::size_t half = wires.size() / 2;
    std::vector<std::uint32_t> lo(wires.begin(), wires.begin() + half);
    std::vector<std::uint32_t> hi(wires.begin() + half, wires.end());
    return merger(bitonic(std::move(lo)), bitonic(std::move(hi)));
  }

  /// Merger[2k] per Aspnes–Herlihy–Shavit: two sequences with the step
  /// property in, one combined step-property sequence out.
  std::vector<std::uint32_t> merger(std::vector<std::uint32_t> x,
                                    std::vector<std::uint32_t> y) {
    RENAMELIB_ENSURE(x.size() == y.size(), "merger halves must match");
    const std::size_t k = x.size();
    if (k == 1) {
      net_.add(x[0], y[0]);
      // The balancer's top output is its lo wire.
      return {std::min(x[0], y[0]), std::max(x[0], y[0])};
    }
    std::vector<std::uint32_t> x_even, x_odd, y_even, y_odd;
    for (std::size_t i = 0; i < k; ++i) {
      ((i % 2 == 0) ? x_even : x_odd).push_back(x[i]);
      ((i % 2 == 0) ? y_even : y_odd).push_back(y[i]);
    }
    const auto z = merger(std::move(x_even), std::move(y_odd));
    const auto zp = merger(std::move(x_odd), std::move(y_even));
    std::vector<std::uint32_t> out;
    out.reserve(2 * k);
    for (std::size_t i = 0; i < k; ++i) {
      net_.add(z[i], zp[i]);
      out.push_back(std::min(z[i], zp[i]));
      out.push_back(std::max(z[i], zp[i]));
    }
    return out;
  }

 private:
  sortnet::ComparatorNetwork& net_;
};

}  // namespace

CountingNetwork::CountingNetwork(sortnet::ComparatorNetwork wiring)
    : wiring_(std::move(wiring)),
      per_wire_(wiring_.per_wire()),
      balancers_(std::make_unique<Balancer[]>(wiring_.size())),
      exit_counts_(std::make_unique<Register<std::uint64_t>[]>(wiring_.width())) {}

CountingNetwork CountingNetwork::bitonic(std::size_t width) {
  RENAMELIB_ENSURE(width >= 1 && std::has_single_bit(width),
                   "bitonic counting network width must be a power of two");
  sortnet::ComparatorNetwork net(width);
  BitonicBuilder builder(net);
  std::vector<std::uint32_t> wires(width);
  for (std::size_t i = 0; i < width; ++i) wires[i] = static_cast<std::uint32_t>(i);
  const auto order = builder.bitonic(std::move(wires));
  // The AHS output order coincides with wire order for this construction
  // (each balancer lists its lo wire first); assert rather than assume.
  for (std::size_t i = 0; i < order.size(); ++i) {
    RENAMELIB_ENSURE(order[i] == i, "unexpected bitonic output order");
  }
  return CountingNetwork(std::move(net));
}

std::size_t CountingNetwork::traverse(Ctx& ctx, std::size_t wire) {
  RENAMELIB_ENSURE(wire < wiring_.width(), "input wire out of range");
  LabelScope label{ctx, "counting_network/traverse"};
  std::size_t next_index = 0;
  std::uint32_t w = static_cast<std::uint32_t>(wire);
  for (;;) {
    const auto& list = per_wire_[w];
    const auto it = std::lower_bound(list.begin(), list.end(),
                                     static_cast<std::uint32_t>(next_index));
    if (it == list.end()) break;
    const auto& c = wiring_.comparator(*it);
    const int port = balancers_[*it].traverse(ctx);
    // One event per balancer crossing, keyed by (balancer index, exit port):
    // the hot-path proof of obs::emit's disabled cost, and the feature that
    // tells the fuzzer which network paths an interleaving exercised.
    obs::emit(obs::Site::kNetBalancer,
              (static_cast<std::uint64_t>(*it) << 1) |
                  static_cast<std::uint64_t>(port));
    w = (port == 0) ? c.lo : c.hi;
    next_index = *it + 1;
  }
  return w;
}

std::uint64_t CountingNetwork::next_value(Ctx& ctx, std::size_t enter_wire) {
  const std::size_t out = traverse(ctx, enter_wire);
  const std::uint64_t visits = exit_counts_[out].fetch_add(ctx, 1);
  return out + wiring_.width() * visits;
}

std::uint64_t CountingNetwork::read_count(Ctx& ctx) const {
  LabelScope label{ctx, "counting_network/read"};
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < wiring_.width(); ++i) {
    total += exit_counts_[i].load(ctx);
  }
  return total;
}

std::vector<std::uint64_t> CountingNetwork::output_counts() const {
  std::vector<std::uint64_t> counts(wiring_.width());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = exit_counts_[i].peek();
  }
  return counts;
}

bool CountingNetwork::has_step_property() const {
  const auto counts = output_counts();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    for (std::size_t j = i + 1; j < counts.size(); ++j) {
      const std::int64_t diff = static_cast<std::int64_t>(counts[i]) -
                                static_cast<std::int64_t>(counts[j]);
      if (diff < 0 || diff > 1) return false;
    }
  }
  return true;
}

}  // namespace renamelib::countnet
