#include "sim/linearizability.h"

#include <algorithm>

#include "core/assert.h"

namespace renamelib::sim {

void HistoryRecorder::respond(int pid, std::string kind, std::uint64_t arg,
                              std::uint64_t result, std::uint64_t invoke_token) {
  const std::uint64_t now = clock_.fetch_add(1) + 1;
  std::scoped_lock lock{mu_};
  Operation op;
  op.pid = pid;
  op.kind = std::move(kind);
  op.arg = arg;
  op.result = result;
  op.invoked = invoke_token;
  op.responded = now;
  ops_.push_back(std::move(op));
}

std::vector<Operation> HistoryRecorder::history() const {
  std::scoped_lock lock{mu_};
  return ops_;
}

namespace {

/// Recursive Wing–Gong search over the remaining operations.
bool search(std::vector<const Operation*>& pending, SequentialSpec& spec) {
  if (pending.empty()) return true;
  // Minimal response among pending ops: any operation linearized first must
  // have invoked before that response (otherwise real-time order is broken).
  std::uint64_t min_response = UINT64_MAX;
  for (const Operation* op : pending) {
    min_response = std::min(min_response, op->responded);
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const Operation* op = pending[i];
    if (op->invoked > min_response) continue;  // would violate real time
    if (!spec.apply(*op)) continue;
    std::swap(pending[i], pending.back());
    pending.pop_back();
    if (search(pending, spec)) {
      // Leave state unwound for the caller anyway (not needed on success).
      pending.push_back(op);
      std::swap(pending[i], pending.back());
      spec.undo(*op);
      return true;
    }
    pending.push_back(op);
    std::swap(pending[i], pending.back());
    spec.undo(*op);
  }
  return false;
}

}  // namespace

bool is_linearizable(const std::vector<Operation>& history,
                     SequentialSpec& spec) {
  spec.reset();
  std::vector<const Operation*> pending;
  pending.reserve(history.size());
  for (const Operation& op : history) pending.push_back(&op);
  return search(pending, spec);
}

// ---------------------------------------------------------------- specs ---

bool LTasSpec::apply(const Operation& op) {
  RENAMELIB_ENSURE(op.kind == "tas", "LTasSpec only handles 'tas' ops");
  const bool should_win = granted_ < l_;
  if ((op.result == 1) != should_win) return false;
  if (should_win) ++granted_;
  return true;
}

void LTasSpec::undo(const Operation& op) {
  if (op.result == 1) --granted_;
}

bool BoundedFaiSpec::apply(const Operation& op) {
  RENAMELIB_ENSURE(op.kind == "fai", "BoundedFaiSpec only handles 'fai' ops");
  const std::uint64_t expected = std::min(next_, m_ - 1);
  if (op.result != expected) return false;
  ++next_;
  return true;
}

void BoundedFaiSpec::undo(const Operation&) { --next_; }

bool MaxRegisterSpec::apply(const Operation& op) {
  const std::uint64_t current = stack_.empty() ? 0 : stack_.back();
  if (op.kind == "write_max") {
    stack_.push_back(std::max(current, op.arg));
    return true;
  }
  RENAMELIB_ENSURE(op.kind == "read", "MaxRegisterSpec: unknown op");
  if (op.result != current) return false;
  stack_.push_back(current);  // uniform undo
  return true;
}

void MaxRegisterSpec::undo(const Operation&) { stack_.pop_back(); }

bool CounterSpec::apply(const Operation& op) {
  if (op.kind == "inc") {
    ++count_;
    return true;
  }
  RENAMELIB_ENSURE(op.kind == "read", "CounterSpec: unknown op");
  return op.result == count_;
}

void CounterSpec::undo(const Operation& op) {
  if (op.kind == "inc") --count_;
}

}  // namespace renamelib::sim
