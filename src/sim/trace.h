// Execution traces: the totally ordered sequence of granted shared steps.
//
// Because the simulator grants one shared-memory operation at a time, an
// execution trace is simultaneously (a) a replayable log, (b) the
// linearization order of all operations, and (c) the raw material for
// checking linearizability/monotone-consistency in tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/step.h"

namespace renamelib::sim {

/// One granted shared step (or a crash event).
struct TraceEvent {
  enum class Kind { kStep, kCrash };
  Kind kind = Kind::kStep;
  int pid = -1;
  StepInfo info{};           ///< valid for kStep
  std::uint64_t global_seq = 0;  ///< position in the total order
};

/// Append-only trace. Recording is optional (see RunOptions::record_trace);
/// traces of long executions can be large.
class Trace {
 public:
  void record_step(int pid, const StepInfo& info);
  void record_crash(int pid);
  void clear();

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  std::size_t size() const noexcept { return events_.size(); }

  /// Number of steps taken by `pid` within this trace.
  std::uint64_t steps_of(int pid) const;

  /// Renders a human-readable listing (pid, op, label) for debugging.
  std::string to_string(std::size_t max_events = 200) const;

 private:
  std::vector<TraceEvent> events_;
};

std::ostream& operator<<(std::ostream& os, const Trace& trace);

}  // namespace renamelib::sim
