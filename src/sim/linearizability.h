// Trace-based linearizability checking (Herlihy–Wing).
//
// The paper *proves* linearizability for the l-test-and-set (Lemma 5) and
// the bounded fetch-and-increment (Theorem 6); this module lets the tests
// *check* it on recorded concurrent histories: operations are recorded with
// real-time intervals [invoke, respond] from a global logical clock, and the
// checker searches for a total order that (a) respects real time and (b) is
// legal for a sequential specification, using Wing & Gong's backtracking
// algorithm.
//
// Histories of up to a few dozen operations check in microseconds; tests
// keep histories small and run many seeds/schedules instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace renamelib::sim {

/// One completed operation in a concurrent history.
struct Operation {
  int pid = -1;
  std::string kind;        ///< e.g. "tas", "fai", "write_max", "read"
  std::uint64_t arg = 0;   ///< input value (0 if none)
  std::uint64_t result = 0;///< returned value
  std::uint64_t invoked = 0;
  std::uint64_t responded = 0;
};

/// Thread-safe recorder with a global logical clock. Usable in both hardware
/// and simulated mode (the clock is meta-level instrumentation, not part of
/// the protocol's step count).
class HistoryRecorder {
 public:
  /// Marks an invocation; returns a token to pass to respond().
  std::uint64_t invoke() { return clock_.fetch_add(1) + 1; }

  /// Records the completed operation.
  void respond(int pid, std::string kind, std::uint64_t arg,
               std::uint64_t result, std::uint64_t invoke_token);

  /// Snapshot of all completed operations (call after threads joined).
  std::vector<Operation> history() const;

 private:
  std::atomic<std::uint64_t> clock_{0};
  mutable std::mutex mu_;
  std::vector<Operation> ops_;
};

/// A sequential specification: given the state (opaque to the checker) it
/// must apply an operation and say whether its recorded result is legal.
/// Implementations are given below for the paper's objects.
class SequentialSpec {
 public:
  virtual ~SequentialSpec() = default;
  virtual void reset() = 0;
  /// Attempts to apply `op` to the current state; returns false if the
  /// recorded result is illegal in this state (the checker will backtrack).
  virtual bool apply(const Operation& op) = 0;
  /// Undoes the most recent successful apply (stack discipline).
  virtual void undo(const Operation& op) = 0;
};

/// Wing–Gong linearizability check: is there a permutation of `history`
/// respecting real-time order that `spec` accepts?
bool is_linearizable(const std::vector<Operation>& history, SequentialSpec& spec);

// ---------------------------------------------------------------- specs ---

/// l-test-and-set: the first l "tas" ops return 1, the rest 0.
class LTasSpec final : public SequentialSpec {
 public:
  explicit LTasSpec(std::uint64_t l) : l_(l) {}
  void reset() override { granted_ = 0; }
  bool apply(const Operation& op) override;
  void undo(const Operation& op) override;

 private:
  std::uint64_t l_;
  std::uint64_t granted_ = 0;
};

/// m-valued fetch-and-increment: returns 0,1,...,m-1 then sticks at m-1.
class BoundedFaiSpec final : public SequentialSpec {
 public:
  explicit BoundedFaiSpec(std::uint64_t m) : m_(m) {}
  void reset() override { next_ = 0; }
  bool apply(const Operation& op) override;
  void undo(const Operation& op) override;

 private:
  std::uint64_t m_;
  std::uint64_t next_ = 0;
};

/// Max register: "write_max" (arg) and "read" (result = max written so far).
class MaxRegisterSpec final : public SequentialSpec {
 public:
  void reset() override { stack_.clear(); }
  bool apply(const Operation& op) override;
  void undo(const Operation& op) override;

 private:
  std::vector<std::uint64_t> stack_;  ///< max value history for undo
};

/// Plain counter: "inc" and "read" (result = number of incs so far).
class CounterSpec final : public SequentialSpec {
 public:
  void reset() override { count_ = 0; }
  bool apply(const Operation& op) override;
  void undo(const Operation& op) override;

 private:
  std::uint64_t count_ = 0;
};

}  // namespace renamelib::sim
